package cosched

import (
	"testing"

	"cosched/internal/degradation"
)

func mustFingerprint(t *testing.T, inst *Instance) string {
	t.Helper()
	fp, err := inst.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	if len(fp) != 64 {
		t.Fatalf("Fingerprint = %q; want 64 hex chars", fp)
	}
	return fp
}

func TestInstanceFingerprintStableAcrossRebuilds(t *testing.T) {
	build := func() *Instance {
		inst, err := NewWorkload().
			AddSerial("BT").AddSerial("LU").AddPE("PI", 2).AddPC("MG-Par", 4).
			Build(QuadCore)
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	a, b := build(), build()
	fa, fb := mustFingerprint(t, a), mustFingerprint(t, b)
	if fa != fb {
		t.Errorf("identical workloads fingerprint differently:\n  %s\n  %s", fa, fb)
	}

	// Solving must not change the identity: the memo wrapper's cache state
	// is transparent.
	if _, err := Solve(a, Options{Method: MethodPG}); err != nil {
		t.Fatal(err)
	}
	if got := mustFingerprint(t, a); got != fa {
		t.Errorf("fingerprint changed after solving: %s -> %s", fa, got)
	}
}

func TestInstanceFingerprintSensitivity(t *testing.T) {
	base, err := NewWorkload().AddSerial("BT").AddSerial("LU").Build(QuadCore)
	if err != nil {
		t.Fatal(err)
	}
	fp := mustFingerprint(t, base)

	jobsChanged, err := NewWorkload().AddSerial("BT").AddSerial("MG").Build(QuadCore)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustFingerprint(t, jobsChanged); got == fp {
		t.Error("different job set fingerprints equal")
	}

	machineChanged, err := NewWorkload().AddSerial("BT").AddSerial("LU").Build(EightCore)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustFingerprint(t, machineChanged); got == fp {
		t.Error("different machine fingerprints equal")
	}
}

func TestInstanceFingerprintPairwise(t *testing.T) {
	a, err := SyntheticLarge(24, QuadCore, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticLarge(24, QuadCore, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := SyntheticLarge(24, QuadCore, 8)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb, fc := mustFingerprint(t, a), mustFingerprint(t, b), mustFingerprint(t, c)
	if fa != fb {
		t.Errorf("same-seed pairwise instances fingerprint differently:\n  %s\n  %s", fa, fb)
	}
	if fa == fc {
		t.Error("different-seed pairwise instances fingerprint equal")
	}
}

func TestOptionsFingerprintIgnoresBudgets(t *testing.T) {
	base := Options{Method: MethodHAStar, HStrategy: 3, BeamWidth: 8, HWeight: 1.2}
	fp := base.Fingerprint()

	budgeted := base
	budgeted.TimeLimit = 123
	budgeted.MaxExpansions = 456
	budgeted.MemoryBudget = 789
	if got := budgeted.Fingerprint(); got != fp {
		t.Errorf("budget fields changed the options fingerprint: %s -> %s", fp, got)
	}

	for name, mutate := range map[string]func(*Options){
		"Method":    func(o *Options) { o.Method = MethodPG },
		"HStrategy": func(o *Options) { o.HStrategy = 1 },
		"BeamWidth": func(o *Options) { o.BeamWidth = 16 },
		"HWeight":   func(o *Options) { o.HWeight = 1.5 },
		"KPerLevel": func(o *Options) { o.KPerLevel = 4 },
	} {
		changed := base
		mutate(&changed)
		if changed.Fingerprint() == fp {
			t.Errorf("changing %s did not change the options fingerprint", name)
		}
	}
}

func TestSetOracleCacheCapacityBoundsMemo(t *testing.T) {
	inst, err := SyntheticSerial(8, QuadCore, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst.SetOracleCacheCapacity(4)
	if _, err := Solve(inst, Options{Method: MethodHAStar}); err != nil {
		t.Fatal(err)
	}
	m, ok := inst.in.Oracle.(*degradation.Memoized)
	if !ok {
		t.Fatal("synthetic instance oracle is not memoized")
	}
	if got := m.CacheSize(); got > 8 {
		t.Errorf("CacheSize = %d after capacity 4; want <= 8 (4 per query cache)", got)
	}
	if m.Evictions() == 0 {
		t.Error("expected evictions from a capacity-4 memo under a full HA* solve")
	}
}
