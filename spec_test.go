package cosched

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	data := []byte(`{
		"machine": "quad",
		"jobs": [
			{"kind": "serial", "program": "art"},
			{"kind": "serial", "program": "EP"},
			{"kind": "pe", "program": "MCM", "procs": 3},
			{"kind": "pc", "program": "MG-Par", "procs": 4}
		]
	}`)
	inst, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.NumJobs(); got != 4 {
		t.Errorf("jobs = %d; want 4", got)
	}
	if got := inst.NumProcesses(); got != 12 { // 2+3+4 = 9, padded to 12
		t.Errorf("procs = %d; want 12", got)
	}
	sched, err := Solve(inst, Options{Method: MethodHAStar})
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalDegradation <= 0 {
		t.Error("spec-built instance produced no degradation")
	}
}

func TestParseSpecDefaults(t *testing.T) {
	// empty machine -> quad; empty kind -> serial
	inst, err := ParseSpec([]byte(`{"jobs": [{"program": "BT"}, {"program": "CG"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumProcesses() != 4 { // padded to one quad machine
		t.Errorf("procs = %d; want 4", inst.NumProcesses())
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"bad json", `{`, "bad spec"},
		{"unknown machine", `{"machine":"hexa","jobs":[{"program":"BT"}]}`, "unknown machine"},
		{"no jobs", `{"machine":"quad"}`, "no jobs"},
		{"unknown kind", `{"jobs":[{"kind":"mapreduce","program":"BT"}]}`, "unknown kind"},
		{"pe without procs", `{"jobs":[{"kind":"pe","program":"MCM"}]}`, "procs"},
		{"pc without procs", `{"jobs":[{"kind":"pc","program":"MG-Par"}]}`, "procs"},
		{"unknown program", `{"jobs":[{"program":"nope"}]}`, "unknown serial program"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.data))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
