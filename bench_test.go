// Package cosched's benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation (§V). Each benchmark regenerates
// its experiment in Quick mode (the full configurations are available via
// cmd/experiments) and reports the headline quantity of the experiment as
// a custom metric where that is meaningful.
//
// Run with:
//
//	go test -bench=. -benchmem
package cosched

import (
	"os"
	"strconv"
	"testing"

	"cosched/internal/experiments"
)

// benchParallelism reads COSCHED_PARALLELISM, the knob
// scripts/benchdiff.sh --workers sweeps to produce BENCH_parallel.json
// (0/unset = the sequential baseline).
func benchParallelism(b *testing.B) int {
	v := os.Getenv("COSCHED_PARALLELISM")
	if v == "" {
		return 0
	}
	p, err := strconv.Atoi(v)
	if err != nil || p < 0 {
		b.Fatalf("bad COSCHED_PARALLELISM %q", v)
	}
	return p
}

func benchExperiment(b *testing.B, id string) *experiments.Report {
	b.Helper()
	opts := experiments.RunOptions{Quick: true, Seed: 1, Parallelism: benchParallelism(b)}
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.Run(id, opts)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return rep
}

// lastCell parses the numeric tail cell of the last row, used to surface
// a headline metric per experiment.
func lastCell(rep *experiments.Report, col int) (float64, bool) {
	if len(rep.Rows) == 0 {
		return 0, false
	}
	row := rep.Rows[len(rep.Rows)-1]
	if col >= len(row) {
		return 0, false
	}
	s := row[col]
	for len(s) > 0 && (s[len(s)-1] == '%' || s[len(s)-1] == 's') {
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// BenchmarkTable1 regenerates Table I: OA* vs IP average degradation for
// serial jobs on dual- and quad-core machines.
func BenchmarkTable1(b *testing.B) {
	rep := benchExperiment(b, "table1")
	if v, ok := lastCell(rep, 4); ok {
		b.ReportMetric(v, "avg-degradation")
	}
}

// BenchmarkTable2 regenerates Table II: OA* vs IP for mixed serial and
// parallel jobs.
func BenchmarkTable2(b *testing.B) {
	rep := benchExperiment(b, "table2")
	if v, ok := lastCell(rep, 4); ok {
		b.ReportMetric(v, "avg-degradation")
	}
}

// BenchmarkTable3 regenerates Table III: solver efficiency (four IP
// branch-and-bound configurations vs OA* vs O-SVP).
func BenchmarkTable3(b *testing.B) {
	benchExperiment(b, "table3")
}

// BenchmarkTable4 regenerates Table IV: h(v) Strategy 1 vs Strategy 2 vs
// O-SVP solving time and visited paths.
func BenchmarkTable4(b *testing.B) {
	rep := benchExperiment(b, "table4")
	if v, ok := lastCell(rep, 5); ok {
		b.ReportMetric(v, "paths-strategy2")
	}
}

// BenchmarkFig5 regenerates Figure 5 (operational form): the optimality
// gap of the n/u-trimmed search that justifies HA*'s per-level budget.
func BenchmarkFig5(b *testing.B) {
	rep := benchExperiment(b, "fig5")
	if v, ok := lastCell(rep, 6); ok {
		b.ReportMetric(v, "pct-gap<=5%")
	}
}

// BenchmarkFig6 regenerates Figure 6: OA*-PE vs OA*-SE degradation on the
// PE + serial mix.
func BenchmarkFig6(b *testing.B) {
	rep := benchExperiment(b, "fig6")
	if v, ok := lastCell(rep, 2); ok {
		b.ReportMetric(v, "avg-deg-OA*PE")
	}
}

// BenchmarkFig7 regenerates Figure 7: OA*-PC vs OA*-PE on the PC + serial
// mix.
func BenchmarkFig7(b *testing.B) {
	rep := benchExperiment(b, "fig7")
	if v, ok := lastCell(rep, 2); ok {
		b.ReportMetric(v, "avg-ccd-OA*PC")
	}
}

// BenchmarkFig8 regenerates Figure 8: solving time with and without the
// communication-aware process condensation.
func BenchmarkFig8(b *testing.B) {
	benchExperiment(b, "fig8")
}

// BenchmarkFig9 regenerates Figure 9: OA* solving-time scalability.
func BenchmarkFig9(b *testing.B) {
	benchExperiment(b, "fig9")
}

// BenchmarkFig10 regenerates Figure 10: OA*/HA*/PG per-application
// degradations on quad-core machines.
func BenchmarkFig10(b *testing.B) {
	rep := benchExperiment(b, "fig10")
	if v, ok := lastCell(rep, 1); ok {
		b.ReportMetric(v, "avg-deg-OA*")
	}
}

// BenchmarkFig11 regenerates Figure 11: the 8-core variant of Figure 10.
func BenchmarkFig11(b *testing.B) {
	rep := benchExperiment(b, "fig11")
	if v, ok := lastCell(rep, 1); ok {
		b.ReportMetric(v, "avg-deg-OA*")
	}
}

// BenchmarkFig12 regenerates Figure 12: HA* vs PG average degradation on
// large synthetic batches.
func BenchmarkFig12(b *testing.B) {
	rep := benchExperiment(b, "fig12")
	if v, ok := lastCell(rep, 4); ok {
		b.ReportMetric(v, "HA*-advantage-pct")
	}
}

// BenchmarkFig13 regenerates Figure 13: HA* solving-time scalability up
// to thousand-process batches.
func BenchmarkFig13(b *testing.B) {
	benchExperiment(b, "fig13")
}
