package cosched

import (
	"encoding/json"
	"fmt"
	"strings"
)

// SpecFile is the JSON description of a workload, the format
// cmd/coschedcli accepts via -specfile:
//
//	{
//	  "machine": "quad",
//	  "jobs": [
//	    {"kind": "serial", "program": "art"},
//	    {"kind": "pe", "program": "MCM", "procs": 4},
//	    {"kind": "pc", "program": "MG-Par", "procs": 6}
//	  ]
//	}
type SpecFile struct {
	// Machine is the machine class: "dual", "quad" or "8core".
	Machine string `json:"machine"`
	// Jobs lists the batch's jobs in order.
	Jobs []JobSpec `json:"jobs"`
}

// JobSpec describes one job of a SpecFile.
type JobSpec struct {
	// Kind is "serial", "pe" or "pc".
	Kind string `json:"kind"`
	// Program is a catalogue name matching the kind (see
	// SerialPrograms, PEPrograms, PCPrograms).
	Program string `json:"program"`
	// Procs is the process count for parallel jobs (ignored for serial
	// jobs).
	Procs int `json:"procs,omitempty"`
}

// ParseSpec builds an Instance from a JSON workload description.
func ParseSpec(data []byte) (*Instance, error) {
	var sf SpecFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("cosched: bad spec: %w", err)
	}
	return sf.Build()
}

// Build materialises the spec.
func (sf *SpecFile) Build() (*Instance, error) {
	var mk MachineKind
	switch strings.ToLower(sf.Machine) {
	case "dual", "dual-core", "2":
		mk = DualCore
	case "quad", "quad-core", "4", "":
		mk = QuadCore
	case "8core", "8-core", "eight", "8":
		mk = EightCore
	default:
		return nil, fmt.Errorf("cosched: unknown machine %q", sf.Machine)
	}
	if len(sf.Jobs) == 0 {
		return nil, fmt.Errorf("cosched: spec has no jobs")
	}
	w := NewWorkload()
	for i, j := range sf.Jobs {
		switch strings.ToLower(j.Kind) {
		case "serial", "se", "":
			w.AddSerial(j.Program)
		case "pe":
			if j.Procs < 1 {
				return nil, fmt.Errorf("cosched: job %d (%s): pe jobs need procs >= 1", i, j.Program)
			}
			w.AddPE(j.Program, j.Procs)
		case "pc":
			if j.Procs < 1 {
				return nil, fmt.Errorf("cosched: job %d (%s): pc jobs need procs >= 1", i, j.Program)
			}
			w.AddPC(j.Program, j.Procs)
		default:
			return nil, fmt.Errorf("cosched: job %d: unknown kind %q", i, j.Kind)
		}
	}
	return w.Build(mk)
}
