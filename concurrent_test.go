package cosched

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSolvesShareInstance exercises the serving daemon's
// contract: many simultaneous SolveContext and SolveRobust calls over
// ONE shared Instance — and therefore one shared memoized oracle — must
// be race-free and deterministic. Run under -race (scripts/ci.sh does).
func TestConcurrentSolvesShareInstance(t *testing.T) {
	inst, err := SyntheticSerial(8, QuadCore, 11)
	if err != nil {
		t.Fatal(err)
	}
	// A tight memo bound makes concurrent solves contend on eviction
	// paths too, not just map reads.
	inst.SetOracleCacheCapacity(64)

	methods := []Options{
		{Method: MethodOAStar},
		{Method: MethodHAStar},
		{Method: MethodHAStar, BeamWidth: 8, HWeight: 1.2, HStrategy: 3},
		{Method: MethodPG},
		{Method: MethodOSVP},
	}

	const rounds = 4
	var wg sync.WaitGroup
	costs := make([][]float64, len(methods))
	for mi := range methods {
		costs[mi] = make([]float64, rounds)
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(mi, r int) {
				defer wg.Done()
				sched, err := SolveContext(context.Background(), inst, methods[mi])
				if err != nil {
					t.Errorf("concurrent solve (method %v, round %d): %v", methods[mi].Method, r, err)
					return
				}
				costs[mi][r] = sched.TotalDegradation
			}(mi, r)
		}
	}
	// Robust ladders race alongside, with deadlines short enough that
	// some rungs abort mid-search while other goroutines keep querying
	// the same oracle.
	robustCosts := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			sched, err := SolveRobust(ctx, inst, Options{})
			if err != nil {
				t.Errorf("concurrent SolveRobust round %d: %v", r, err)
				return
			}
			robustCosts[r] = sched.TotalDegradation
		}(r)
	}
	wg.Wait()

	// Sharing an instance must not change answers: every round of a
	// deterministic method agrees with its first.
	for mi, opts := range methods {
		for r := 1; r < rounds; r++ {
			if costs[mi][r] != costs[mi][0] {
				t.Errorf("method %v: round %d cost %v != round 0 cost %v under concurrency",
					opts.Method, r, costs[mi][r], costs[mi][0])
			}
		}
	}
	// OA* is exact: every robust ladder answer is bounded below by it.
	exact := costs[0][0]
	for r, c := range robustCosts {
		if c < exact-1e-9 {
			t.Errorf("robust round %d cost %v beat the exact optimum %v", r, c, exact)
		}
	}
}
