module cosched

go 1.22
