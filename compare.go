package cosched

import (
	"fmt"
	"strings"
	"time"
)

// Comparison is the outcome of solving one instance with several methods.
type Comparison struct {
	Rows []ComparisonRow
}

// ComparisonRow is one method's result within a Comparison.
type ComparisonRow struct {
	Method    Method
	Schedule  *Schedule
	SolveTime time.Duration
	Err       error
}

// Compare solves the instance with each method and collects the results;
// per-method failures are recorded, not fatal. Methods default to
// {OA*, HA*, PG} when empty.
func Compare(inst *Instance, methods []Method, opts Options) *Comparison {
	if len(methods) == 0 {
		methods = []Method{MethodOAStar, MethodHAStar, MethodPG}
	}
	cmp := &Comparison{}
	for _, m := range methods {
		o := opts
		o.Method = m
		start := time.Now()
		sched, err := Solve(inst, o)
		cmp.Rows = append(cmp.Rows, ComparisonRow{
			Method:    m,
			Schedule:  sched,
			SolveTime: time.Since(start),
			Err:       err,
		})
	}
	return cmp
}

// Best returns the successful row with the lowest total degradation, or
// nil if every method failed.
func (c *Comparison) Best() *ComparisonRow {
	var best *ComparisonRow
	for i := range c.Rows {
		r := &c.Rows[i]
		if r.Err != nil {
			continue
		}
		if best == nil || r.Schedule.TotalDegradation < best.Schedule.TotalDegradation {
			best = r
		}
	}
	return best
}

// String renders the comparison as an aligned table.
func (c *Comparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-12s %-12s %s\n", "method", "total deg.", "avg deg.", "solve time")
	for _, r := range c.Rows {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-14s failed: %v\n", r.Method, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-14s %-12.4f %-12.4f %v\n",
			r.Method, r.Schedule.TotalDegradation, r.Schedule.AvgDegradation(),
			r.SolveTime.Round(time.Microsecond))
	}
	return sb.String()
}
