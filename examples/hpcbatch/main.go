// HPC batch scheduling: the scenario the paper's introduction motivates.
// A cluster queue holds a mix of MPI applications, embarrassingly-parallel
// Monte-Carlo codes and serial jobs. The operator wants to know how much
// performance the default (arrival-order) placement leaves on the table,
// and whether the near-optimal HA* heuristic is good enough to replace
// the exact-but-slow OA*.
//
// The example schedules the same queue three ways (arrival order, HA*,
// OA*), reports each job's slowdown, and prints the OA*/HA*/naive gap.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"cosched"
)

func buildQueue() (*cosched.Instance, error) {
	w := cosched.NewWorkload()
	// Two MPI solvers with halo exchanges.
	w.AddPC("LU-Par", 4)
	w.AddPC("CG-Par", 4)
	// One Monte-Carlo style PE job: slaves with no communication.
	w.AddPE("MCM", 4)
	// Serial jobs of mixed cache appetite.
	for _, name := range []string{"art", "equake", "EP", "vpr"} {
		w.AddSerial(name)
	}
	return w.Build(cosched.QuadCore)
}

func main() {
	inst, err := buildQueue()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queue: %d jobs, %d processes on %d quad-core machines\n\n",
		inst.NumJobs(), inst.NumProcesses(), inst.NumMachines())

	// OA*: the optimal co-schedule, the offline performance target
	// (§I: "how much performance can be extracted if the system were
	// best tuned").
	t0 := time.Now()
	oa, err := cosched.Solve(inst, cosched.Options{Method: cosched.MethodOAStar})
	if err != nil {
		log.Fatal(err)
	}
	oaTime := time.Since(t0)

	// HA*: the near-optimal heuristic a production scheduler could
	// actually afford.
	t0 = time.Now()
	ha, err := cosched.Solve(inst, cosched.Options{Method: cosched.MethodHAStar})
	if err != nil {
		log.Fatal(err)
	}
	haTime := time.Since(t0)

	// PG: the politeness-greedy baseline from prior work.
	pgRes, err := cosched.Solve(inst, cosched.Options{Method: cosched.MethodPG})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %-12s %-12s %s\n", "method", "total deg.", "avg deg.", "solve time")
	fmt.Printf("%-22s %-12.4f %-12.4f %v\n", "OA* (optimal)", oa.TotalDegradation, oa.AvgDegradation(), oaTime.Round(time.Microsecond))
	fmt.Printf("%-22s %-12.4f %-12.4f %v\n", "HA* (near-optimal)", ha.TotalDegradation, ha.AvgDegradation(), haTime.Round(time.Microsecond))
	fmt.Printf("%-22s %-12.4f %-12.4f %s\n", "PG (greedy baseline)", pgRes.TotalDegradation, pgRes.AvgDegradation(), "-")

	fmt.Printf("\nHA* is within %.1f%% of optimal; PG is %.1f%% worse than optimal\n",
		gap(ha.TotalDegradation, oa.TotalDegradation),
		gap(pgRes.TotalDegradation, oa.TotalDegradation))

	fmt.Println("\nper-job slowdown under the optimal schedule:")
	degs := oa.JobDegradations()
	names := make([]string, 0, len(degs))
	for n := range degs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-10s %5.1f%%\n", n, degs[n]*100)
	}

	fmt.Println("\nmachine assignment (OA*):")
	for mi, names := range oa.Machines() {
		fmt.Printf("  machine %d: %v\n", mi, names)
	}
}

func gap(v, opt float64) float64 {
	if opt == 0 {
		return 0
	}
	return (v - opt) / opt * 100
}
