// Accounting modes: the paper's central modelling argument (§II, Figs.
// 6-7) as a runnable demonstration. The same batch is scheduled three
// ways — treating every process as serial (SE, Eq. 12), recognising
// per-job maxima (PE, Eq. 5), and folding in communication (PC, Eq. 9) —
// and each schedule is then judged under the *full* PC objective and
// executed to wall-clock times.
//
// The output shows why the modelling matters: the SE-optimised schedule
// looks fine by its own metric but loses real time once parallel jobs
// wait for their slowest rank and MPI halos cross machines.
package main

import (
	"fmt"
	"log"

	"cosched"
)

func main() {
	w := cosched.NewWorkload()
	w.AddPC("MG-Par", 4)
	w.AddPC("CG-Par", 4)
	w.AddPE("MCM", 4)
	for _, n := range []string{"art", "EP", "vpr", "IS"} {
		w.AddSerial(n)
	}
	inst, err := w.Build(cosched.QuadCore)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: %d jobs, %d processes, %d quad-core machines\n\n",
		inst.NumJobs(), inst.NumProcesses(), inst.NumMachines())

	fmt.Printf("%-22s %-18s %-12s %s\n",
		"optimised under", "judged under PC", "makespan", "mean job finish")
	for _, acc := range []struct {
		name string
		a    cosched.Accounting
	}{
		{"SE (all serial)", cosched.AccountSE},
		{"PE (job maxima)", cosched.AccountPE},
		{"PC (full model)", cosched.AccountPC},
	} {
		sched, err := cosched.Solve(inst, cosched.Options{
			Method:     cosched.MethodOAStar,
			Accounting: acc.a,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Re-judge the schedule under the full model by re-solving the
		// assignment cost: simulate execution, which always uses the
		// PC-complete degradations.
		exec, err := sched.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-18.4f %-12.1f %.1f\n",
			acc.name, exec.SlowdownSeconds, exec.Makespan, exec.MeanJobFinish)
	}
	fmt.Println("\n(the SE-optimised schedule pays for ignoring slowest-rank and halo effects)")
}
