// Makespan: execute schedules instead of just scoring them. The
// degradation objective (Eq. 6/13) is an abstraction; what a cluster
// operator sees is wall-clock time. This example solves one batch with
// every method, simulates each schedule's execution, and prints the batch
// makespan, the mean job finish time and the total CPU-seconds lost to
// cache contention and communication.
package main

import (
	"fmt"
	"log"

	"cosched"
)

func main() {
	w := cosched.NewWorkload()
	for _, n := range []string{"art", "MG", "CG", "DC", "EP", "vpr", "ammp", "galgel"} {
		w.AddSerial(n)
	}
	w.AddPC("LU-Par", 4)
	w.AddPE("MCM", 4)
	inst, err := w.Build(cosched.QuadCore)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: %d jobs, %d processes, %d quad-core machines\n\n",
		inst.NumJobs(), inst.NumProcesses(), inst.NumMachines())

	fmt.Printf("%-14s %-12s %-12s %-16s %s\n",
		"method", "objective", "makespan", "mean job finish", "lost CPU-seconds")
	for _, m := range []cosched.Method{
		cosched.MethodOAStar, cosched.MethodHAStar, cosched.MethodIP,
		cosched.MethodPG,
	} {
		sched, err := cosched.Solve(inst, cosched.Options{Method: m})
		if err != nil {
			log.Fatal(err)
		}
		exec, err := sched.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-12.4f %-12.1f %-16.1f %.1f\n",
			m, sched.TotalDegradation, exec.Makespan, exec.MeanJobFinish, exec.SlowdownSeconds)
	}

	fmt.Println("\nper-job finish times under the optimal schedule:")
	sched, err := cosched.Solve(inst, cosched.Options{Method: cosched.MethodOAStar})
	if err != nil {
		log.Fatal(err)
	}
	exec, err := sched.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	for name, tt := range exec.JobFinish {
		fmt.Printf("  %-10s %7.1f s\n", name, tt)
	}
}
