// Solver telemetry end to end: run a Fig. 9-sized OA* search with every
// observation surface enabled — a live single-line progress bar driven
// by the rate-limited progress reports, the machine-readable JSONL event
// stream, the in-memory flight recorder, the metrics registry and its
// Prometheus rendering — then decode the trace and summarise what the
// search did (DESIGN.md §6).
//
// The same surfaces are available from the CLI:
//
//	go run ./cmd/coschedcli ... -progress -trace out.jsonl -debug-addr localhost:6060
//	go run ./cmd/coschedtrace summary out.jsonl
package main

import (
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"cosched"
	"cosched/internal/telemetry"
)

// progressBar turns the solver's rate-limited progress lines into a
// single terminal line rewritten in place. It parses the "depth d/D"
// token to draw a coarse completion bar; everything else is shown
// verbatim.
type progressBar struct {
	depthRe *regexp.Regexp
	wrote   bool
}

func (b *progressBar) Write(p []byte) (int, error) {
	line := strings.TrimRight(string(p), "\n")
	bar := ""
	if m := b.depthRe.FindStringSubmatch(line); m != nil {
		d, _ := strconv.Atoi(m[1])
		total, _ := strconv.Atoi(m[2])
		if total > 0 {
			filled := 20 * d / total
			bar = "[" + strings.Repeat("#", filled) + strings.Repeat("-", 20-filled) + "] "
		}
	}
	fmt.Fprintf(os.Stderr, "\r\x1b[K%s%s", bar, line)
	b.wrote = true
	return len(p), nil
}

// done ends the in-place line so normal output can resume.
func (b *progressBar) done() {
	if b.wrote {
		fmt.Fprint(os.Stderr, "\r\x1b[K")
	}
}

func main() {
	const n = 20 // within the Fig. 9 quad-core sweep (12..32 processes)
	inst, err := cosched.SyntheticSerial(n, cosched.QuadCore, 9)
	if err != nil {
		log.Fatal(err)
	}

	trace, err := os.CreateTemp("", "cosched-trace-*.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(trace.Name())

	reg := telemetry.New()
	recorder := telemetry.NewFlightRecorder(64)
	bar := &progressBar{depthRe: regexp.MustCompile(`depth (\d+)/(\d+)`)}
	fmt.Printf("solving a %d-process batch with OA* on the quad-core machine...\n", n)
	sched, err := cosched.Solve(inst, cosched.Options{
		Method:           cosched.MethodOAStar,
		Metrics:          reg,
		EventTraceWriter: trace,
		EventSink:        recorder,
		ProgressWriter:   bar,
		ProgressEvery:    250 * time.Millisecond,
	})
	bar.done()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved: total degradation %.4f in %v\n",
		sched.TotalDegradation, sched.Stats.Duration.Round(time.Millisecond))
	fmt.Print("phase breakdown:")
	for _, ph := range sched.Stats.Phases {
		fmt.Printf(" %s %v", ph.Name, ph.Duration.Round(time.Microsecond))
	}
	fmt.Print("\n\n")

	// Surface 1: the metrics registry (what -debug-addr serves as expvar).
	fmt.Println("metrics registry (the expvar surface):")
	snap := reg.Snapshot()
	for _, name := range []string{
		"astar.pops", "astar.expanded", "astar.generated",
		"astar.dismissed.worse", "astar.dismissed.stale", "astar.dismissed.pruned",
		"astar.pool.reused", "astar.keytable.entries",
	} {
		fmt.Printf("  %-24s %v\n", name, snap[name])
	}

	// Surface 2: the JSONL event stream, decoded back.
	if _, err := trace.Seek(0, 0); err != nil {
		log.Fatal(err)
	}
	events, err := telemetry.ReadEvents(trace)
	if err != nil {
		log.Fatal(err)
	}
	kinds := map[string]int{}
	reasons := map[string]int{}
	maxDepth := 0
	for _, e := range events {
		kinds[e.Ev]++
		if e.Ev == "dismiss" {
			reasons[e.Reason]++
		}
		if e.Depth > maxDepth {
			maxDepth = e.Depth
		}
	}
	fmt.Printf("\nJSONL trace (%s): %d events\n", trace.Name(), len(events))
	for _, k := range []string{"solve_start", "expand", "dismiss", "progress", "solution"} {
		fmt.Printf("  %-12s %d\n", k, kinds[k])
	}
	fmt.Printf("  dismissals by reason: %v\n", reasons)
	fmt.Printf("  deepest expansion: level %d of %d\n", maxDepth, n/4)

	// The invariant every search obeys (tested by TestAdmissionInvariant):
	// every admitted child is eventually expanded, superseded, trimmed, or
	// still in the frontier. Worse/pruned children are dismissed before
	// admission and never enter the count.
	st := sched.Stats
	fmt.Printf("\nadmission invariant: %d generated = %d expanded + %d superseded + %d beam-trimmed + %d in frontier\n",
		st.Generated, st.Expanded, st.Dismissed, st.BeamTrimmed, st.InFrontier)
	fmt.Printf("dismissed before admission: %d worse (Theorem 1), %d pruned (incumbent bound)\n",
		st.DismissedWorse, st.Pruned)

	// Surface 3: the flight recorder keeps the last events in memory even
	// when no trace file is configured (coschedcli dumps it on SIGQUIT
	// and serves it at /debug/trace).
	tail := recorder.Events()
	fmt.Printf("\nflight recorder: last %d of the stream retained in memory, ending with %q\n",
		len(tail), tail[len(tail)-1].Ev)

	// Surface 4: the same registry rendered as Prometheus text (what
	// -debug-addr serves at /metrics).
	var prom strings.Builder
	if err := telemetry.WritePrometheus(&prom, reg); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(prom.String(), "\n"), "\n")
	fmt.Printf("\nPrometheus exposition (%d lines; first 6):\n", len(lines))
	for _, l := range lines[:6] {
		fmt.Println(" ", l)
	}
}
