// Capacity planning: use the optimal co-scheduler as an offline analysis
// tool (the paper's second use case, §I: knowing the gap between current
// and optimal performance tells the designer whether a smarter scheduler
// is worth building).
//
// The example sweeps batch sizes on a large synthetic population and, for
// each size, reports the degradation under the greedy scheduler versus
// the near-optimal HA* schedule. The output answers: "how much faster
// would my cluster run if placement were contention-aware?"
package main

import (
	"fmt"
	"log"
	"time"

	"cosched"
)

func main() {
	fmt.Println("batch   PG avg-deg   HA* avg-deg   recoverable   HA* time")
	for _, n := range []int{48, 96, 192, 384} {
		inst, err := cosched.SyntheticLarge(n, cosched.QuadCore, 42)
		if err != nil {
			log.Fatal(err)
		}
		pgSched, err := cosched.Solve(inst, cosched.Options{Method: cosched.MethodPG})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		haSched, err := cosched.Solve(inst, cosched.Options{Method: cosched.MethodHAStar})
		if err != nil {
			log.Fatal(err)
		}
		haTime := time.Since(t0)
		recoverable := (pgSched.AvgDegradation() - haSched.AvgDegradation()) / pgSched.AvgDegradation() * 100
		fmt.Printf("%5d   %9.4f   %10.4f   %10.1f%%   %v\n",
			n, pgSched.AvgDegradation(), haSched.AvgDegradation(), recoverable,
			haTime.Round(time.Millisecond))
	}
	fmt.Println("\n\"recoverable\" is the share of contention slowdown a contention-aware")
	fmt.Println("co-scheduler would win back over the politeness-greedy baseline.")
}
