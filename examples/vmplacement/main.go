// VM placement: the paper's stated future-work scenario (§VII) mapped
// onto the co-scheduling model. Each virtual machine is a process whose
// cache profile reflects its tenant's workload; physical hosts are the
// multicore machines; the co-scheduler decides which VMs share a host so
// that noisy neighbours (cache-hungry tenants) are kept away from
// latency-sensitive ones.
//
// The example places 16 VMs of four tenant classes onto four quad-core
// hosts three ways — optimal (OA*), near-optimal (HA*) and greedy (PG) —
// and reports the worst-tenant slowdown under each placement, the metric
// a cloud operator's SLO cares about.
package main

import (
	"fmt"
	"log"
	"sort"

	"cosched"
)

// The tenant classes are drawn from the benchmark catalogue: "database"
// VMs behave like the memory-hungry DC benchmark, "analytics" like MG,
// "web" like the balanced vpr, and "batch" like the compute-bound EP.
var tenantClasses = []struct {
	class string
	model string
	count int
}{
	{"database", "DC", 4},
	{"analytics", "MG", 4},
	{"web", "vpr", 4},
	{"batch", "EP", 4},
}

func main() {
	w := cosched.NewWorkload()
	var classOf []string
	for _, tc := range tenantClasses {
		for i := 0; i < tc.count; i++ {
			w.AddSerial(tc.model)
			classOf = append(classOf, fmt.Sprintf("%s-%d", tc.class, i+1))
		}
	}
	inst, err := w.Build(cosched.QuadCore)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placing %d VMs on %d quad-core hosts\n\n", inst.NumProcesses(), inst.NumMachines())

	type row struct {
		name  string
		sched *cosched.Schedule
	}
	var rows []row
	for _, m := range []struct {
		name   string
		method cosched.Method
	}{
		{"OA* (optimal)", cosched.MethodOAStar},
		{"HA* (near-optimal)", cosched.MethodHAStar},
		{"PG (greedy)", cosched.MethodPG},
	} {
		s, err := cosched.Solve(inst, cosched.Options{Method: m.method})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{m.name, s})
	}

	fmt.Printf("%-22s %-12s %-14s %s\n", "placement", "total deg.", "worst tenant", "worst slowdown")
	for _, r := range rows {
		worstName, worstD := worstTenant(r.sched)
		fmt.Printf("%-22s %-12.4f %-14s %.1f%%\n", r.name, r.sched.TotalDegradation, worstName, worstD*100)
	}

	fmt.Println("\noptimal placement by host:")
	opt := rows[0].sched
	hosts := map[int][]string{}
	for _, p := range opt.Placements() {
		label := "(empty)"
		if p.Process-1 < len(classOf) {
			label = classOf[p.Process-1]
		}
		hosts[p.Machine] = append(hosts[p.Machine], label)
	}
	for h := 0; h < len(hosts); h++ {
		fmt.Printf("  host %d: %v\n", h, hosts[h])
	}
}

// worstTenant returns the job with the largest degradation.
func worstTenant(s *cosched.Schedule) (string, float64) {
	degs := s.JobDegradations()
	names := make([]string, 0, len(degs))
	for n := range degs {
		names = append(names, n)
	}
	sort.Strings(names)
	worstName, worstD := "", -1.0
	for _, n := range names {
		if degs[n] > worstD {
			worstName, worstD = n, degs[n]
		}
	}
	return worstName, worstD
}
