// Online scheduling vs the offline optimum: the paper's stated purpose
// for computing optimal co-schedules is to give runtime schedulers a
// performance target (§I — "knowing the gap between current and optimal
// performance"). This example simulates a stream of arriving jobs under
// four online placement policies and reports each policy's mean
// turnaround, alongside the contention floor an offline OA* schedule of
// the same batch achieves.
//
// This example uses internal packages directly (it lives inside the
// module); external users would drive the same comparison through the
// public cosched API plus their own arrival traces.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"cosched/internal/astar"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
	"cosched/internal/online"
	"cosched/internal/sim"
	"cosched/internal/telemetry"
	"cosched/internal/workload"
)

func main() {
	traceFile := flag.String("trace", "", "write each policy run's JSONL event trace to this file")
	faults := flag.Bool("faults", false, "inject a seeded fault plan: a machine crash-and-restore, transient placement failures with backoff, and a perturbed degradation oracle")
	faultSeed := flag.Int64("faultseed", 1, "seed for the -faults plan (reproducible runs)")
	flag.Parse()
	const nJobs = 16
	m := cache.QuadCore
	in, err := workload.SyntheticSerialInstance(nJobs, &m, 7)
	if err != nil {
		log.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	machines := nJobs / m.Cores

	// Jobs arrive every 5 seconds.
	arrivals := make([]online.Arrival, nJobs)
	for i := range arrivals {
		arrivals[i] = online.Arrival{Job: job.JobID(i), Time: float64(i) * 5}
	}

	// -trace captures every policy run's event stream into one file;
	// the runs stay separable by their solve ids (coschedtrace splits
	// them).
	var obs online.Observer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close() //nolint:errcheck
		obs.Events = telemetry.NewEventWriter(f)
	}

	// The fault plan is built once and replayed identically for every
	// policy, so their rows stay comparable. The horizon approximates
	// the fault-free makespan (last arrival plus a few service times).
	var plan *online.FaultPlan
	if *faults {
		plan = online.RandomFaultPlan(*faultSeed, machines, float64(nJobs)*5+40)
		fmt.Printf("fault plan (seed %d): %d machine crashes, %.0f%% transient placement failures, ±%.0f%% oracle noise\n",
			*faultSeed, len(plan.Machines), 100*plan.PlaceFailureProb, 100*plan.OracleNoise)
	}

	fmt.Printf("%d jobs arriving every 5s onto %d quad-core machines\n\n", nJobs, machines)
	fmt.Printf("%-18s %-16s %s\n", "policy", "mean turnaround", "makespan")
	policies := []online.Policy{
		online.FirstFit{},
		online.Spread{},
		online.ContentionAware{},
		online.Random{Rng: rand.New(rand.NewSource(1))},
	}
	for _, p := range policies {
		o := obs
		o.SolveID = 0 // each run self-assigns a fresh solve id
		res, err := online.SimulateWithFaults(c, in.SoloTime, machines, arrivals, p, o, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %-16.1f %.1f\n", res.Policy, res.MeanTurnaround, res.Makespan)
	}

	// The offline target: OA* sees the whole batch at once; its
	// execution gives the contention floor online policies chase.
	g := graph.New(c, in.Patterns)
	s, err := astar.NewSolver(g, astar.Options{H: astar.HPerProc, UseIncumbent: true})
	if err != nil {
		log.Fatal(err)
	}
	opt, err := s.Solve()
	if err != nil {
		log.Fatal(err)
	}
	exec, err := sim.Run(c, sim.SoloTimeFunc(in.SoloTime), opt.Groups)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noffline OA* target: all jobs co-run at the optimal placement would finish\n")
	fmt.Printf("within %.1fs of their start (mean %.1fs) — total contention cost %.1f CPU-seconds\n",
		exec.Makespan, exec.MeanJobFinish(), exec.TotalSlowdownSeconds)
}
