// Quickstart: co-schedule a small mix of serial NPB/SPEC benchmarks and
// one MPI job on quad-core machines, comparing the optimal schedule (OA*)
// with a naive one, and print where every process lands.
package main

import (
	"fmt"
	"log"

	"cosched"
)

func main() {
	// Four memory-hungry and three compute-bound serial programs plus a
	// 4-process MPI multigrid job: 11 processes, padded to 12 on three
	// quad-core machines.
	w := cosched.NewWorkload()
	for _, name := range []string{"art", "MG", "IS", "DC", "EP", "vpr", "ammp"} {
		w.AddSerial(name)
	}
	w.AddPC("MG-Par", 4)

	inst, err := w.Build(cosched.QuadCore)
	if err != nil {
		log.Fatal(err)
	}

	optimal, err := cosched.Solve(inst, cosched.Options{Method: cosched.MethodOAStar})
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := cosched.Solve(inst, cosched.Options{Method: cosched.MethodPG})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== optimal co-schedule (OA*) ===")
	fmt.Print(optimal)
	fmt.Println()
	fmt.Println("=== politeness-greedy baseline (PG) ===")
	fmt.Print(greedy)
	fmt.Println()

	imp := (greedy.TotalDegradation - optimal.TotalDegradation) / greedy.TotalDegradation * 100
	fmt.Printf("OA* reduces total degradation by %.1f%% over PG\n", imp)

	fmt.Println("\nper-core placement of the optimal schedule:")
	for _, p := range optimal.Placements() {
		name := p.Job
		if name == "" {
			name = "(idle)"
		}
		fmt.Printf("  machine %d core %d: %-8s rank %d\n", p.Machine, p.Core, name, p.Rank)
	}
}
