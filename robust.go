package cosched

import (
	"context"
	"time"
)

// robustRung is one level of the SolveRobust fallback ladder.
type robustRung struct {
	name    string
	prepare func(opts *Options)
}

// The ladder, strongest answer first: exact OA*, near-optimal HA*, a
// strictly work-bounded beam search, and finally PG — a one-pass greedy
// that always answers, whatever is left of the deadline.
var robustRungs = []robustRung{
	{"OA*", func(o *Options) {
		o.Method = MethodOAStar
		o.BeamWidth, o.HWeight = 0, 0
	}},
	{"HA*", func(o *Options) {
		o.Method = MethodHAStar
		o.BeamWidth, o.HWeight = 0, 0
	}},
	{"beam", func(o *Options) {
		o.Method = MethodHAStar
		if o.BeamWidth == 0 {
			o.BeamWidth = 8
		}
		if o.HWeight == 0 {
			o.HWeight = 1.2
		}
		o.HStrategy = 3 // the scalable per-process bound
	}},
	{"PG", func(o *Options) {
		o.Method = MethodPG
	}},
}

// SolveRobust schedules the instance under a hard deadline by walking a
// fallback ladder — OA*, then HA*, then a bounded beam search, then PG —
// splitting the context's remaining time evenly across the rungs still
// ahead. The first rung that completes without degrading answers; if
// every rung degrades, the cheapest feasible degraded schedule wins. A
// rung that aborts on its MemoryBudget is retried once on the same rung
// with the budget halved before the ladder moves on. PG runs in
// microseconds whatever the deadline, so SolveRobust returns a usable
// schedule even under an already-expired context.
//
// Stats.Fallbacks on the returned schedule records every attempt in
// order; Stats.Degraded/AbortReason describe the answering attempt. The
// Method, TimeLimit, BeamWidth and HWeight fields of opts are managed by
// the ladder (Method is ignored; BeamWidth/HWeight seed the beam rung);
// everything else — accounting, tracing, metrics, MemoryBudget,
// MaxExpansions — applies to every rung.
func SolveRobust(ctx context.Context, inst *Instance, opts Options) (*Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.TimeLimit = 0 // rung budgets come from the split deadline
	if err := opts.validate(); err != nil {
		return nil, err
	}
	deadline, hasDeadline := ctx.Deadline()

	var (
		attempts  []Fallback
		best      *Schedule
		lastErr   error
		userBeam  = opts.BeamWidth
		userHW    = opts.HWeight
		memBudget = opts.MemoryBudget
	)
	for i, rung := range robustRungs {
		ropts := opts
		ropts.BeamWidth, ropts.HWeight = userBeam, userHW
		ropts.MemoryBudget = memBudget
		rung.prepare(&ropts)

		// Split what remains of the deadline evenly over this rung and
		// the ones still below it, so a rung that stalls cannot starve
		// its fallbacks. A rung whose share has already expired is
		// skipped outright: running it on the parent context would hand
		// it everything the rungs below were promised (and solver
		// preparation runs before the first context poll, so even an
		// expired context cannot stop it promptly). The final PG rung
		// always runs — it answers in microseconds whatever is left.
		rungCtx, cancel := ctx, context.CancelFunc(func() {})
		if hasDeadline {
			share := time.Until(deadline) / time.Duration(len(robustRungs)-i)
			if share <= 0 && i < len(robustRungs)-1 {
				attempts = append(attempts, Fallback{Method: ropts.Method, Err: errRungSkipped})
				continue
			}
			if share > 0 {
				rungCtx, cancel = context.WithTimeout(ctx, share)
			}
		}

		sched, err := SolveContext(rungCtx, inst, ropts)
		// A memory-budget abort means the instance does not fit this
		// rung's frontier: retry the rung once at half budget — a much
		// shallower search that may still beat the next rung down. Only
		// retry while the rung context still has usable time: a slow
		// first attempt can exhaust it, and a retry on a spent context
		// just records a second degraded attempt without searching.
		if err == nil && sched.Stats.AbortReason == AbortMemory && ropts.MemoryBudget > 1 && rungHasTime(rungCtx) {
			attempts = append(attempts, fallbackRecord(ropts.Method, sched, nil))
			ropts.MemoryBudget /= 2
			sched, err = SolveContext(rungCtx, inst, ropts)
		}
		cancel()

		attempts = append(attempts, fallbackRecord(ropts.Method, sched, err))
		if err != nil {
			lastErr = err
			continue
		}
		if !sched.Stats.Degraded {
			sched.Stats.Fallbacks = attempts
			return sched, nil
		}
		if best == nil || sched.TotalDegradation < best.TotalDegradation {
			best = sched
		}
	}
	if best == nil {
		return nil, lastErr
	}
	best.Stats.Fallbacks = attempts
	return best, nil
}

// errRungSkipped is the Fallback.Err text recorded for a rung the ladder
// never started because its deadline share had already expired.
const errRungSkipped = "skipped: deadline share exhausted before the rung started"

// rungHasTime reports whether a rung context can still host a useful
// retry: not cancelled, and its deadline (if any) not yet reached.
func rungHasTime(ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	if d, ok := ctx.Deadline(); ok && time.Until(d) <= 0 {
		return false
	}
	return true
}

// fallbackRecord condenses one ladder attempt into its Stats.Fallbacks
// entry.
func fallbackRecord(m Method, sched *Schedule, err error) Fallback {
	f := Fallback{Method: m}
	if err != nil {
		f.Err = err.Error()
		return f
	}
	f.Degraded = sched.Stats.Degraded
	f.Aborted = sched.Stats.AbortReason
	f.Duration = sched.Stats.Duration
	return f
}
