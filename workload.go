package cosched

import (
	"fmt"
	"io"

	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
	"cosched/internal/workload"
)

// MachineKind names the three machine classes of the paper's evaluation.
type MachineKind int

const (
	// DualCore is the Intel Core 2 Duo class: 2 cores sharing a 4MB
	// 16-way L2.
	DualCore MachineKind = iota
	// QuadCore is the Intel i7-2600 class: 4 cores sharing an 8MB
	// 16-way L3.
	QuadCore
	// EightCore is the Intel Xeon E5-2450L class: 8 cores sharing a
	// 20MB 16-way L3.
	EightCore
)

// String implements fmt.Stringer.
func (m MachineKind) String() string {
	switch m {
	case DualCore:
		return "dual-core"
	case QuadCore:
		return "quad-core"
	case EightCore:
		return "8-core"
	default:
		return fmt.Sprintf("MachineKind(%d)", int(m))
	}
}

// Cores returns the core count of the machine class.
func (m MachineKind) Cores() int {
	switch m {
	case DualCore:
		return 2
	case EightCore:
		return 8
	default:
		return 4
	}
}

func (m MachineKind) machine() (*cache.Machine, error) {
	switch m {
	case DualCore:
		return &cache.DualCore, nil
	case QuadCore:
		return &cache.QuadCore, nil
	case EightCore:
		return &cache.EightCore, nil
	default:
		return nil, fmt.Errorf("cosched: unknown machine kind %d", int(m))
	}
}

// Instance is a ready-to-solve co-scheduling problem: a batch of jobs
// bound to a machine class with a degradation model.
type Instance struct {
	in *workload.Instance
}

// NumProcesses returns the number of processes including padding.
func (i *Instance) NumProcesses() int { return i.in.Batch.NumProcs() }

// NumMachines returns how many machines the schedule will fill.
func (i *Instance) NumMachines() int { return i.in.Batch.NumMachines() }

// NumJobs returns the job count.
func (i *Instance) NumJobs() int { return len(i.in.Batch.Jobs) }

// JobNames lists the batch's job names in job order.
func (i *Instance) JobNames() []string {
	names := make([]string, len(i.in.Batch.Jobs))
	for k := range i.in.Batch.Jobs {
		names[k] = i.in.Batch.Jobs[k].Name
	}
	return names
}

// WriteGraphDOT renders the instance's co-scheduling graph (the paper's
// Fig. 3 layout) as Graphviz DOT, optionally highlighting a schedule's
// valid path. Only small graphs render (maxNodes caps the node count;
// 0 means 512).
func (i *Instance) WriteGraphDOT(w io.Writer, sched *Schedule, maxNodes int) error {
	c := i.in.Cost(degradation.ModePC)
	g := graph.New(c, i.in.Patterns)
	var highlight [][]job.ProcID
	if sched != nil {
		highlight = sched.groups
	}
	return g.WriteDOT(w, highlight, maxNodes)
}

// Workload assembles an Instance job by job from the built-in benchmark
// catalogue (the paper's NPB/SPEC/MPI/PE program set, synthesised as
// described in DESIGN.md §3).
type Workload struct {
	spec *workload.Spec
	errs []error
}

// NewWorkload returns an empty workload.
func NewWorkload() *Workload { return &Workload{spec: workload.NewSpec()} }

// AddSerial adds one serial job by catalogue name (e.g. "BT", "art").
func (w *Workload) AddSerial(program string) *Workload {
	if _, err := w.spec.AddSerialByName(program); err != nil {
		w.errs = append(w.errs, err)
	}
	return w
}

// AddPE adds an embarrassingly-parallel job (e.g. "PI", "RA") with the
// given process count.
func (w *Workload) AddPE(program string, procs int) *Workload {
	p, err := workload.PEProgram(program)
	if err != nil {
		w.errs = append(w.errs, err)
		return w
	}
	w.spec.AddPE(p, procs)
	return w
}

// AddPC adds a communicating MPI job (e.g. "MG-Par") with the given
// process count; the decomposition defaults to a near-square 2D grid with
// the program's halo volumes.
func (w *Workload) AddPC(program string, procs int) *Workload {
	p, err := workload.PCProgram(program)
	if err != nil {
		w.errs = append(w.errs, err)
		return w
	}
	w.spec.AddPC(p, procs, nil)
	return w
}

// Build binds the workload to a machine class. Any error from earlier Add
// calls is reported here.
func (w *Workload) Build(m MachineKind) (*Instance, error) {
	if len(w.errs) > 0 {
		return nil, w.errs[0]
	}
	mach, err := m.machine()
	if err != nil {
		return nil, err
	}
	in, err := w.spec.Build(mach)
	if err != nil {
		return nil, err
	}
	return &Instance{in: in}, nil
}

// SerialPrograms lists the serial catalogue names.
func SerialPrograms() []string { return workload.SerialProgramNames() }

// PEPrograms lists the embarrassingly-parallel catalogue names.
func PEPrograms() []string { return workload.PEProgramNames() }

// PCPrograms lists the MPI catalogue names.
func PCPrograms() []string { return workload.PCProgramNames() }

// SyntheticSerial builds an instance of n synthetic serial jobs whose
// cache-miss ratios are drawn uniformly from [15%, 75%] (the paper's
// synthetic recipe), driven by the full SDC cache model.
func SyntheticSerial(n int, m MachineKind, seed int64) (*Instance, error) {
	mach, err := m.machine()
	if err != nil {
		return nil, err
	}
	in, err := workload.SyntheticSerialInstance(n, mach, seed)
	if err != nil {
		return nil, err
	}
	return &Instance{in: in}, nil
}

// SyntheticLarge builds a large synthetic serial instance backed by the
// O(u)-per-query additive pairwise oracle, the configuration the paper's
// large-scale HA*/PG studies use.
func SyntheticLarge(n int, m MachineKind, seed int64) (*Instance, error) {
	mach, err := m.machine()
	if err != nil {
		return nil, err
	}
	in, err := workload.SyntheticPairwiseInstance(n, mach, seed)
	if err != nil {
		return nil, err
	}
	return &Instance{in: in}, nil
}

// SyntheticMixed builds an instance of totalProcs processes of which
// parallelJobs PC jobs of procsPerJob processes each; the rest are serial.
func SyntheticMixed(totalProcs, parallelJobs, procsPerJob int, m MachineKind, seed int64) (*Instance, error) {
	mach, err := m.machine()
	if err != nil {
		return nil, err
	}
	in, err := workload.SyntheticMixedInstance(totalProcs, parallelJobs, procsPerJob, mach, seed)
	if err != nil {
		return nil, err
	}
	return &Instance{in: in}, nil
}
