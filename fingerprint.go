package cosched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"cosched/internal/degradation"
	"cosched/internal/job"
)

// fpWriter streams canonically-encoded values into a hash. Every value
// is written with a fixed-width encoding (strings length-prefixed), so
// two instances hash equal exactly when their encoded parameter streams
// are identical — there is no delimiter ambiguity to collide through.
type fpWriter struct {
	h hash.Hash
}

func (w fpWriter) str(s string) {
	w.i64(int64(len(s)))
	w.h.Write([]byte(s)) //nolint:errcheck // hash writes never fail
}

func (w fpWriter) i64(v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	w.h.Write(buf[:]) //nolint:errcheck // hash writes never fail
}

func (w fpWriter) f64(v float64) {
	w.i64(int64(math.Float64bits(v)))
}

func (w fpWriter) f64s(vs []float64) {
	w.i64(int64(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}

// Fingerprint returns a canonical content identity of the instance: a
// hex-encoded SHA-256 over the batch structure (jobs, kinds, process
// counts, padding), the machine-model parameters, the PC jobs'
// decomposition grids and halo volumes, and the degradation oracle's
// full parameter set (SDC cache profiles, or the pairwise interference
// matrix and communication factor). Two instances with equal
// fingerprints produce identical degradation queries and therefore
// identical optimal schedules — the property the serving daemon's
// solution cache (internal/solvecache) keys on.
//
// Instances backed by an oracle type this package does not know how to
// canonicalise return an error; callers (the daemon) then skip caching
// for that instance rather than risk serving a wrong schedule.
func (i *Instance) Fingerprint() (string, error) {
	h := sha256.New()
	w := fpWriter{h: h}
	w.str("cosched/instance/v1")

	m := i.in.Machine
	w.str(m.Name)
	w.i64(int64(m.Cores))
	w.i64(int64(m.SharedCacheBytes))
	w.i64(int64(m.Ways))
	w.i64(int64(m.LineBytes))
	w.f64(m.MissPenaltyCycles)
	w.f64(m.ClockGHz)
	w.f64(m.NetworkBandwidth)

	b := i.in.Batch
	w.i64(int64(len(b.Jobs)))
	for k := range b.Jobs {
		j := &b.Jobs[k]
		w.str(j.Name)
		w.i64(int64(j.Kind))
		w.i64(int64(len(j.Procs)))
	}
	w.i64(int64(b.NumProcs()))
	for k := range b.Procs {
		if b.Procs[k].Imaginary {
			w.i64(int64(b.Procs[k].ID))
		}
	}

	// PC decompositions, in job order (map iteration order must not leak
	// into the digest).
	for k := range b.Jobs {
		pt := i.in.Patterns[b.Jobs[k].ID]
		if pt == nil {
			continue
		}
		w.i64(int64(b.Jobs[k].ID))
		dims := make([]float64, len(pt.Dims))
		for d, n := range pt.Dims {
			dims[d] = float64(n)
		}
		w.f64s(dims)
		w.f64s(pt.HaloBytes)
	}

	if err := fingerprintOracle(w, b, i.in.Oracle); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// fingerprintOracle digests the oracle's answer-defining parameters. The
// memoization wrapper is transparent: a cache changes nothing about the
// answers, so wrapped and unwrapped oracles hash alike.
func fingerprintOracle(w fpWriter, b *job.Batch, o degradation.Oracle) error {
	if m, ok := o.(*degradation.Memoized); ok {
		o = m.Inner()
	}
	switch oracle := o.(type) {
	case *degradation.SDCOracle:
		w.str("oracle/sdc")
		for p := 1; p <= b.NumProcs(); p++ {
			prof := oracle.Profile(job.ProcID(p))
			if prof == nil {
				w.str("pad")
				continue
			}
			w.str(prof.Name)
			w.f64(prof.BaseCycles)
			w.f64(prof.Beyond)
			w.f64s(prof.Hits)
		}
	case *degradation.PairwiseOracle:
		w.str("oracle/pairwise")
		for _, row := range oracle.Matrix() {
			w.f64s(row)
		}
		w.f64(oracle.CommFactor())
	default:
		return fmt.Errorf("cosched: oracle %T has no canonical fingerprint", o)
	}
	return nil
}

// Fingerprint digests the answer-affecting option fields — Method,
// Accounting, HStrategy, KPerLevel, DisableCondensation, ExactParallel,
// HWeight, BeamWidth and IPConfig — into a short hex SHA-256. Combined
// with Instance.Fingerprint it keys the serving daemon's solution cache:
// two requests with equal instance and option fingerprints ask for the
// same schedule.
//
// Budget and observation fields (TimeLimit, MaxExpansions, MemoryBudget,
// tracing, metrics, progress) are deliberately excluded: they decide
// whether an answer gets proven within budget, not which answer is
// correct — and the cache only ever stores proven, non-degraded results.
// Parallelism is excluded for the same reason: the parallel engine only
// runs configurations whose optimal cost is order-independent, so worker
// count changes how fast the answer arrives, not what it costs.
func (o Options) Fingerprint() string {
	h := sha256.New()
	w := fpWriter{h: h}
	w.str("cosched/options/v1")
	w.i64(int64(o.Method))
	w.i64(int64(o.Accounting))
	w.i64(int64(o.HStrategy))
	w.i64(int64(o.KPerLevel))
	flags := int64(0)
	if o.DisableCondensation {
		flags |= 1
	}
	if o.ExactParallel {
		flags |= 2
	}
	w.i64(flags)
	w.f64(o.HWeight)
	w.i64(int64(o.BeamWidth))
	w.str(o.IPConfig)
	return hex.EncodeToString(h.Sum(nil))
}

// SetOracleCacheCapacity bounds the instance's memoized degradation
// oracle to capacity entries per query cache with least-recently-used
// eviction (capacity <= 0 restores the unbounded default). A bound
// matters for long-running processes — the serving daemon sets one on
// every instance it builds — because an unbounded memo grows with every
// distinct co-runner set ever queried. It is a no-op for instances whose
// oracle is not memoized.
func (i *Instance) SetOracleCacheCapacity(capacity int) {
	if m, ok := i.in.Oracle.(*degradation.Memoized); ok {
		m.SetCapacity(capacity)
	}
}
