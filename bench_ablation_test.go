package cosched

import (
	"testing"

	"cosched/internal/astar"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/experiments"
	"cosched/internal/graph"
	"cosched/internal/ip"
	"cosched/internal/job"
	"cosched/internal/pg"
	"cosched/internal/workload"
)

// Ablation benchmarks: the design-choice studies DESIGN.md §5 calls out,
// plus microbenchmarks of the hot components.

func benchAblation(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, experiments.RunOptions{Quick: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDismissal compares the paper's set-keyed dismissal
// with the exact-parallel dismissal.
func BenchmarkAblationDismissal(b *testing.B) { benchAblation(b, "ablation-dismissal") }

// BenchmarkAblationH compares the four admissible h(v) estimators.
func BenchmarkAblationH(b *testing.B) { benchAblation(b, "ablation-h") }

// BenchmarkAblationBeam sweeps HA*'s beam width at scale.
func BenchmarkAblationBeam(b *testing.B) { benchAblation(b, "ablation-beam") }

// BenchmarkAblationOracle measures the additive-pairwise approximation
// against the exact SDC oracle.
func BenchmarkAblationOracle(b *testing.B) { benchAblation(b, "ablation-oracle") }

// BenchmarkOAStarQuad16 measures one exact OA* solve on the Table I
// 16-job batch: the headline "optimal schedule in milliseconds" claim.
func BenchmarkOAStarQuad16(b *testing.B) {
	m := cache.QuadCore
	in, err := workload.TableIInstance(16, &m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.New(in.Cost(degradation.ModePC), in.Patterns)
		s, err := astar.NewSolver(g, astar.Options{H: astar.HPerProc, UseIncumbent: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHAStarLarge480 measures one large-scale HA* solve (the Fig. 13
// regime).
func BenchmarkHAStarLarge480(b *testing.B) {
	m := cache.QuadCore
	in, err := workload.SyntheticPairwiseInstance(480, &m, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.New(in.Cost(degradation.ModePC), nil)
		s, err := astar.NewSolver(g, astar.Options{
			H: astar.HPerProcAvg, HWeight: 1.2, KPerLevel: 120, BeamWidth: 16})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPG480 measures the politeness-greedy baseline at the same
// scale.
func BenchmarkPG480(b *testing.B) {
	m := cache.QuadCore
	in, err := workload.SyntheticPairwiseInstance(480, &m, 1)
	if err != nil {
		b.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg.Solve(c)
	}
}

// BenchmarkIPModelBuild measures pricing the full set-partitioning model
// for a 16-process quad-core batch.
func BenchmarkIPModelBuild(b *testing.B) {
	m := cache.QuadCore
	in, err := workload.TableIInstance(16, &m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.BuildModel(in.Cost(degradation.ModePC)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSDCDegradationQuery measures one uncached SDC oracle query
// (four-way co-run).
func BenchmarkSDCDegradationQuery(b *testing.B) {
	m := cache.QuadCore
	in, err := workload.TableIInstance(16, &m)
	if err != nil {
		b.Fatal(err)
	}
	// Reach the unmemoized oracle to measure the model, not the cache.
	inner := in.Oracle.(*degradation.Memoized).Inner()
	co := []job.ProcID{2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inner.Degradation(1, co)
	}
}

// BenchmarkAblationSymmetry measures the PE symmetry canonicalisation
// study.
func BenchmarkAblationSymmetry(b *testing.B) { benchAblation(b, "ablation-symmetry") }

// BenchmarkAblationWorkers measures the worker-parallel expansion study.
func BenchmarkAblationWorkers(b *testing.B) { benchAblation(b, "ablation-workers") }

// BenchmarkAblationOnline measures the online-policy vs offline-target
// study.
func BenchmarkAblationOnline(b *testing.B) { benchAblation(b, "ablation-online") }

// BenchmarkAblationSDC measures the SDC-vs-simulation accuracy study.
func BenchmarkAblationSDC(b *testing.B) { benchAblation(b, "ablation-sdc") }
