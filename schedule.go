package cosched

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cosched/internal/degradation"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// Stats summarises the solver effort behind a schedule. Graph-search
// fields (everything except the BB*/LP* block) are populated by the
// OA*, HA* and O-SVP methods and zero for IP/PG/brute-force; they
// reconcile by the admission invariant
//
//	Generated == Expanded + Dismissed + BeamTrimmed + InFrontier
//
// (see internal/astar.Stats for the per-field accounting rules).
type Stats struct {
	// VisitedPaths counts popped (expanded) priority-list elements
	// including the root (graph searches), the paper's Table IV metric.
	VisitedPaths int64
	// Expanded counts admitted (non-root) elements that were popped and
	// processed; VisitedPaths minus one on a completed solve.
	Expanded int64
	// Generated counts sub-paths admitted into the priority list (or a
	// beam depth's survivor table).
	Generated int64
	// Dismissed counts admitted sub-paths later superseded by a cheaper
	// same-process-set sub-path (stale pops, beam supersedes).
	Dismissed int64
	// DismissedWorse counts children dismissed before admission because
	// an equal-or-cheaper same-set sub-path was already recorded (the
	// Theorem 1 dismissal).
	DismissedWorse int64
	// Condensed counts candidate nodes skipped by process condensation.
	Condensed int64
	// Pruned counts children discarded against the incumbent bound.
	Pruned int64
	// BeamTrimmed counts sub-paths dropped by the beam's per-depth width
	// cap (large-batch HA* only).
	BeamTrimmed int64
	// InFrontier is the number of admitted sub-paths still awaiting
	// expansion when the solve returned.
	InFrontier int64
	// MaxQueue is the priority list's (or beam frontier's) high-water
	// mark, in elements.
	MaxQueue int
	// BBNodes counts branch-and-bound nodes whose LP relaxation was
	// solved; LPIters the total simplex pivots across relaxations;
	// BoundImprovements the incumbent updates (IP method only).
	BBNodes           int64
	LPIters           int64
	BoundImprovements int64
	// Duration is the solver wall-clock time. PrepareDuration is the
	// one-off heuristic-table precomputation before the search proper
	// (graph searches; zero elsewhere).
	Duration        time.Duration
	PrepareDuration time.Duration
	// TimedOut reports whether an IP solve hit its time limit. Degraded
	// subsumes it: it is set whenever any solve stopped before proving
	// its answer — deadline, cancellation, expansion/node cap or memory
	// budget — and returned its best incumbent instead. AbortReason then
	// says which budget broke (AbortNone on a completed solve).
	TimedOut    bool
	Degraded    bool
	AbortReason AbortReason
	// Fallbacks records, for SolveRobust only, every rung the fallback
	// ladder attempted before this schedule answered, in attempt order
	// (the last entry is the rung that produced the schedule). Empty for
	// plain Solve/SolveContext calls.
	Fallbacks []Fallback
	// ElemAllocated / ElemReused report the search's element-pool
	// behaviour (graph searches only): elements freshly allocated vs
	// served from a free list. Reuse dominating allocation by orders of
	// magnitude is the expected shape on dismissal-heavy searches.
	ElemAllocated int64
	ElemReused    int64
	// KeyTableEntries is the number of distinct dismissal keys the
	// search recorded; KeyTableLoad the final occupancy of its
	// open-addressing table in [0,1].
	KeyTableEntries int
	KeyTableLoad    float64
	// Parallelism is the number of expansion workers the graph search
	// actually ran: 1 for the sequential path (including configurations
	// where a requested Options.Parallelism could not be applied without
	// changing the answer), 0 for non-graph methods.
	Parallelism int
	// Steals counts frontier-shard pops a parallel expansion worker took
	// from a shard it does not own; Speculative counts expansions of
	// elements above the global frontier minimum at pop time; Parked
	// counts park transitions of the memory-aware load balancer. All
	// zero for sequential solves.
	Steals      int64
	Speculative int64
	Parked      int64
	// Phases is the wall-clock breakdown of the solve pipeline in
	// completion order: "oracle" (degradation precompute), then per
	// method "graph"/"prepare"/"search" (graph searches), or
	// "model"/"search" (IP), or just "search" (PG, brute force).
	// Nested phases appear after the phases they contain complete.
	Phases []Phase
	// SolveID is the telemetry identity of the solver run that produced
	// this schedule — the id stamped on every event the run emitted, so a
	// caller holding a Schedule can find its trace (coschedtrace joins on
	// it, and the serving daemon reports it per request). For SolveRobust
	// it is the answering rung's id.
	SolveID uint64
}

// Fallback is one attempt of the SolveRobust ladder (see Stats.Fallbacks).
type Fallback struct {
	// Method is the rung's algorithm (the beam rung reports MethodHAStar
	// — it is HA* with a bounded beam width).
	Method Method
	// Degraded and Aborted mirror the attempt's Stats: whether the rung
	// stopped early and why. Err carries the rung's error text when the
	// attempt failed outright instead of degrading ("" otherwise).
	Degraded bool
	Aborted  AbortReason
	Err      string
	// Duration is the attempt's wall-clock time.
	Duration time.Duration
}

// Phase is one timed stage of the solve pipeline (see Stats.Phases).
type Phase struct {
	// Name identifies the stage ("oracle", "graph", "prepare",
	// "search", "model").
	Name string
	// Duration is the stage's wall-clock time.
	Duration time.Duration
}

// Placement is one process pinned to one core.
type Placement struct {
	Machine int    // machine index, 0-based
	Core    int    // core index within the machine
	Process int    // 1-based process ID
	Job     string // job name ("" for padding processes)
	Rank    int    // rank within the job (0 for serial jobs)
}

// Schedule is a complete co-scheduling solution.
type Schedule struct {
	inst   *Instance
	cost   *degradation.Cost
	groups [][]job.ProcID

	// TotalDegradation is the Eq. 6/13 objective: serial degradations
	// summed, parallel jobs contributing their slowest process.
	TotalDegradation float64
	// Stats describes the solve.
	Stats Stats
}

func newSchedule(inst *Instance, cost *degradation.Cost, groups [][]job.ProcID, total float64, st Stats) *Schedule {
	return &Schedule{inst: inst, cost: cost, groups: groups, TotalDegradation: total, Stats: st}
}

// Placements lists every process's machine and core assignment.
func (s *Schedule) Placements() []Placement {
	b := s.cost.Batch
	var out []Placement
	for mi, g := range s.groups {
		for ci, p := range g {
			pl := Placement{Machine: mi, Core: ci, Process: int(p)}
			if j := b.JobOf(p); j != nil {
				pl.Job = j.Name
				pl.Rank = b.Proc(p).Rank
			}
			out = append(out, pl)
		}
	}
	return out
}

// Machines returns the job names co-scheduled on each machine.
func (s *Schedule) Machines() [][]string {
	b := s.cost.Batch
	out := make([][]string, len(s.groups))
	for mi, g := range s.groups {
		for _, p := range g {
			if j := b.JobOf(p); j != nil {
				out[mi] = append(out[mi], j.Name)
			} else {
				out[mi] = append(out[mi], "-")
			}
		}
	}
	return out
}

// JobDegradations returns each job's final degradation: Eq. 1/9 for
// serial jobs, the per-job maximum for parallel jobs. Keys are job names
// (duplicate names are suffixed with their job index).
func (s *Schedule) JobDegradations() map[string]float64 {
	b := s.cost.Batch
	per := s.cost.PerJobDegradation(s.groups)
	names := make(map[string]int)
	for _, j := range b.Jobs {
		names[j.Name]++
	}
	out := make(map[string]float64, len(per))
	for jid, d := range per {
		name := b.Jobs[jid].Name
		if names[name] > 1 {
			name = fmt.Sprintf("%s#%d", name, jid)
		}
		out[name] = d
	}
	return out
}

// AvgDegradation returns the objective averaged over the batch's jobs
// (the paper's "AVG" bars).
func (s *Schedule) AvgDegradation() float64 {
	n := len(s.cost.Batch.Jobs)
	if n == 0 {
		return 0
	}
	return s.TotalDegradation / float64(n)
}

// NumMachines returns the machine count of the schedule.
func (s *Schedule) NumMachines() int { return len(s.groups) }

// String renders the schedule as a small table.
func (s *Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "schedule over %d machines, total degradation %.4f (avg %.4f)\n",
		len(s.groups), s.TotalDegradation, s.AvgDegradation())
	for mi, names := range s.Machines() {
		fmt.Fprintf(&sb, "  machine %2d: %s\n", mi, strings.Join(names, ", "))
	}
	degs := s.JobDegradations()
	keys := make([]string, 0, len(degs))
	for k := range degs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-12s %.4f\n", k, degs[k])
	}
	return sb.String()
}

// Execution is the simulated wall-clock outcome of running the schedule
// (see internal/sim for the execution model).
type Execution struct {
	// Makespan is the batch completion time in seconds.
	Makespan float64
	// MeanJobFinish is the average job finish time in seconds.
	MeanJobFinish float64
	// JobFinish maps job names to finish times (duplicate names get a
	// #index suffix, as in JobDegradations).
	JobFinish map[string]float64
	// MachineBusy is each machine's busy time in seconds.
	MachineBusy []float64
	// SlowdownSeconds is the total wall-clock time lost to contention
	// and communication versus solo execution.
	SlowdownSeconds float64
}

// Simulate executes the schedule against the machine model and returns
// the wall-clock outcome: the end-to-end effect of the placement, not
// just the abstract degradation objective. Execution always uses the
// full physical model (cache contention plus communication, AccountPC),
// whatever accounting the schedule was optimised under — that is what
// makes simulating an SE- or PE-optimised schedule informative.
func (s *Schedule) Simulate() (*Execution, error) {
	physical := s.inst.in.Cost(degradation.ModePC)
	res, err := sim.Run(physical, sim.SoloTimeFunc(s.inst.in.SoloTime), s.groups)
	if err != nil {
		return nil, err
	}
	b := s.cost.Batch
	names := make(map[string]int)
	for _, j := range b.Jobs {
		names[j.Name]++
	}
	jf := make(map[string]float64, len(res.JobFinish))
	for jid, t := range res.JobFinish {
		name := b.Jobs[jid].Name
		if names[name] > 1 {
			name = fmt.Sprintf("%s#%d", name, jid)
		}
		jf[name] = t
	}
	return &Execution{
		Makespan:        res.Makespan,
		MeanJobFinish:   res.MeanJobFinish(),
		JobFinish:       jf,
		MachineBusy:     res.MachineBusy,
		SlowdownSeconds: res.TotalSlowdownSeconds,
	}, nil
}

// Groups exposes the raw partition as 1-based process IDs.
func (s *Schedule) Groups() [][]int {
	out := make([][]int, len(s.groups))
	for i, g := range s.groups {
		for _, p := range g {
			out[i] = append(out[i], int(p))
		}
	}
	return out
}
