package sdprof

import (
	"math"
	"testing"

	"cosched/internal/cache"
	"cosched/internal/cachesim"
)

func TestRecorderKnownDistances(t *testing.T) {
	r, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	// A B A C B A : distances — A cold, B cold, A=1 (B between), C cold,
	// B=2 (C,A... stack after "A B A": [A,B]; C cold -> [C,A,B];
	// B at depth 2 -> hist[2]; A at depth... after B: [B,C,A]; A -> hist[2].
	seq := []uint64{1, 2, 1, 3, 2, 1}
	for _, l := range seq {
		r.Touch(l)
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d", r.Total())
	}
	if r.beyond != 3 {
		t.Errorf("cold misses = %d; want 3", r.beyond)
	}
	if r.hist[1] != 1 {
		t.Errorf("hist[1] = %d; want 1 (A after B)", r.hist[1])
	}
	if r.hist[2] != 2 {
		t.Errorf("hist[2] = %d; want 2 (B and A at depth 2)", r.hist[2])
	}
}

func TestRecorderDepthTrim(t *testing.T) {
	r, err := NewRecorder(2)
	if err != nil {
		t.Fatal(err)
	}
	// 1 2 3 1: with depth 2 the stack forgets line 1 by the time it
	// recurs, so the reuse counts as beyond.
	for _, l := range []uint64{1, 2, 3, 1} {
		r.Touch(l)
	}
	if r.beyond != 4 {
		t.Errorf("beyond = %d; want 4 (deep reuse trimmed)", r.beyond)
	}
}

func TestRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Error("zero depth accepted")
	}
	r, _ := NewRecorder(4)
	if _, err := r.Profile("p", 4, 2, 1, 1e9); err == nil {
		t.Error("empty recorder produced a profile")
	}
	r.Touch(1)
	if _, err := r.Profile("p", 0, 2, 1, 1e9); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestProfileBucketsToWays(t *testing.T) {
	// sets=2: distances 0-1 -> way 1, 2-3 -> way 2, ...
	r, err := NewRecorder(16)
	if err != nil {
		t.Fatal(err)
	}
	// Build distance-3 reuses: touch 1,2,3,4 then 1 again (distance 3).
	for _, l := range []uint64{1, 2, 3, 4, 1} {
		r.Touch(l)
	}
	p, err := r.Profile("p", 2, 4, 5 /*accesses per kc*/, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 cold + 1 hit at distance 3 -> way index 3/2 = 1
	if p.Hits[1] <= 0 {
		t.Errorf("expected mass in way bucket 2: %v", p.Hits)
	}
	total := p.AccessRate()
	if math.Abs(total-5) > 1e-9 {
		t.Errorf("access rate = %v; want 5", total)
	}
}

// TestMeasuredProfilePredictsSimulatedContention closes the paper's
// pipeline: profile two streams (gcc-slo role), predict their co-run
// degradations with SDC (Chandra et al.), and check the prediction
// against direct co-simulation of the same streams on the same cache.
func TestMeasuredProfilePredictsSimulatedContention(t *testing.T) {
	g := cachesim.Geometry{Sets: 64, Ways: 8, LineBytes: 64, MissPenaltyCycles: 200}
	mk := func(seed int64, base uint64, ws int, rate float64) *cachesim.Stream {
		st, err := cachesim.NewStream(seed, base, ws, ws/8, 0.7, rate)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	const n = 20000
	// victim fits alone (384 of 512 lines); the aggressor floods.
	victim := func() *cachesim.Stream { return mk(1, 0, 384, 6) }
	aggressor := func() *cachesim.Stream { return mk(2, 1<<30, 4096, 12) }
	mild := func() *cachesim.Stream { return mk(3, 1<<31, 64, 1) }

	profileOf := func(st *cachesim.Stream, rate float64) *cache.Profile {
		rec, err := MeasureStream(st, g.LineBytes, g.Sets*g.Ways*2, n)
		if err != nil {
			t.Fatal(err)
		}
		p, err := rec.Profile("m", g.Sets, g.Ways, rate, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	vp := profileOf(victim(), 6)
	ap := profileOf(aggressor(), 12)
	mp := profileOf(mild(), 1)

	m := &cache.Machine{Name: "sim", Cores: 2,
		SharedCacheBytes: g.Sets * g.Ways * g.LineBytes, Ways: g.Ways,
		LineBytes: g.LineBytes, MissPenaltyCycles: g.MissPenaltyCycles, ClockGHz: 2}
	predAggr := cache.CoRunDegradations(m, []*cache.Profile{vp, ap})[0]
	predMild := cache.CoRunDegradations(m, []*cache.Profile{vp, mp})[0]

	solo, err := cachesim.SoloMissRatio(g, victim(), n)
	if err != nil {
		t.Fatal(err)
	}
	coAggr, err := cachesim.CoRunMissRatios(g, []*cachesim.Stream{victim(), aggressor()}, n)
	if err != nil {
		t.Fatal(err)
	}
	coMild, err := cachesim.CoRunMissRatios(g, []*cachesim.Stream{victim(), mild()}, n)
	if err != nil {
		t.Fatal(err)
	}
	simAggr := cachesim.Degradation(g, victim(), solo, coAggr[0])
	simMild := cachesim.Degradation(g, victim(), solo, coMild[0])

	// The prediction must order co-runners the way the simulation does,
	// and react to the aggressive co-runner at all.
	if (predAggr > predMild) != (simAggr > simMild) {
		t.Errorf("SDC prediction ordering (%v vs %v) disagrees with simulation (%v vs %v)",
			predAggr, predMild, simAggr, simMild)
	}
	if simAggr <= simMild {
		t.Fatalf("simulation setup degenerate: aggr %v <= mild %v", simAggr, simMild)
	}
	if predAggr <= 0 {
		t.Errorf("SDC predicted no degradation (%v) for an aggressive co-runner", predAggr)
	}
}
