// Package sdprof measures stack distance profiles from memory reference
// streams: the role gcc-slo [11] plays in the paper's pipeline (offline
// profiling of each program, §V). Where internal/workload *synthesises*
// profiles parametrically, this package *measures* them from the same
// synthetic reference streams internal/cachesim executes — which lets the
// test suite close the loop the paper relies on:
//
//	stream --sdprof--> SDP --SDC--> predicted co-run misses
//	stream --cachesim (direct co-simulation)--> actual co-run misses
//
// and check that prediction tracks simulation.
package sdprof

import (
	"fmt"

	"cosched/internal/cache"
	"cosched/internal/cachesim"
)

// Recorder maintains an exact LRU stack over cache lines and histograms
// the reuse (stack) distance of every access. Distances are measured in
// distinct lines touched since the previous access to the same line —
// the quantity the SDC model competes on, bucketed to the shared cache's
// associativity by Profile().
type Recorder struct {
	// stack[0] is the most recently used line.
	stack []uint64
	pos   map[uint64]int // line -> index in stack
	// hist[d] counts accesses with stack distance d (0 = immediate
	// reuse); deeper reuse and cold misses land in beyond.
	hist   []uint64
	beyond uint64
	total  uint64
	// maxDepth bounds the exact stack; reuse deeper than this counts as
	// beyond. Keeps recording O(maxDepth) per access.
	maxDepth int
}

// NewRecorder builds a recorder tracking reuse distances up to maxDepth
// lines.
func NewRecorder(maxDepth int) (*Recorder, error) {
	if maxDepth <= 0 {
		return nil, fmt.Errorf("sdprof: maxDepth must be positive")
	}
	return &Recorder{
		pos:      make(map[uint64]int),
		hist:     make([]uint64, maxDepth),
		maxDepth: maxDepth,
	}, nil
}

// Touch records one access to the given line address.
func (r *Recorder) Touch(line uint64) {
	r.total++
	if idx, ok := r.pos[line]; ok {
		r.hist[idx]++
		// move to front
		copy(r.stack[1:idx+1], r.stack[:idx])
		r.stack[0] = line
		for i := 0; i <= idx; i++ {
			r.pos[r.stack[i]] = i
		}
		return
	}
	r.beyond++
	// push front, trimming the stack at maxDepth
	if len(r.stack) == r.maxDepth {
		last := r.stack[len(r.stack)-1]
		delete(r.pos, last)
		r.stack = r.stack[:len(r.stack)-1]
	}
	r.stack = append(r.stack, 0)
	copy(r.stack[1:], r.stack[:len(r.stack)-1])
	r.stack[0] = line
	for i := range r.stack {
		r.pos[r.stack[i]] = i
	}
}

// Total returns the access count recorded so far.
func (r *Recorder) Total() uint64 { return r.total }

// Profile converts the measured histogram into a cache.Profile against a
// machine with the given associativity. The stack-distance axis is
// rescaled from lines to ways: a cache of W ways and S sets holds S
// lines per way, so distance d (in lines) maps to way ceil((d+1)/S).
// accessRate scales counts into accesses-per-kilocycle (the Profile
// convention); baseCycles fills Eq. 14's compute term.
func (r *Recorder) Profile(name string, sets, ways int, accessRate, baseCycles float64) (*cache.Profile, error) {
	if sets <= 0 || ways <= 0 {
		return nil, fmt.Errorf("sdprof: bad geometry %d sets × %d ways", sets, ways)
	}
	if r.total == 0 {
		return nil, fmt.Errorf("sdprof: no accesses recorded")
	}
	hits := make([]float64, ways)
	var beyond float64 = float64(r.beyond)
	for d, c := range r.hist {
		w := d / sets // way bucket, 0-based
		if w >= ways {
			beyond += float64(c)
			continue
		}
		hits[w] += float64(c)
	}
	scale := accessRate / float64(r.total)
	for i := range hits {
		hits[i] *= scale
	}
	return &cache.Profile{
		Name:       name,
		Hits:       hits,
		Beyond:     beyond * scale,
		BaseCycles: baseCycles,
	}, nil
}

// MeasureStream profiles a cachesim stream: n warm-up accesses followed
// by n recorded ones.
func MeasureStream(st *cachesim.Stream, lineBytes, maxDepth, n int) (*Recorder, error) {
	r, err := NewRecorder(maxDepth)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ { // warm-up primes the stack
		r.Touch(st.Next(lineBytes) / uint64(lineBytes))
	}
	r.hist = make([]uint64, r.maxDepth)
	r.beyond, r.total = 0, 0
	for i := 0; i < n; i++ {
		r.Touch(st.Next(lineBytes) / uint64(lineBytes))
	}
	return r, nil
}
