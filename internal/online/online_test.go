package online

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/job"
	"cosched/internal/telemetry"
	"cosched/internal/workload"
)

func testSetup(t *testing.T, nJobs int, seed int64) (*degradation.Cost, func(job.ProcID) float64, []Arrival) {
	t.Helper()
	m := cache.QuadCore
	in, err := workload.SyntheticSerialInstance(nJobs, &m, seed)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	arrivals := make([]Arrival, len(in.Batch.Jobs))
	for i := range arrivals {
		arrivals[i] = Arrival{Job: job.JobID(i), Time: float64(i) * 2}
	}
	return c, in.SoloTime, arrivals
}

func TestSimulateBasics(t *testing.T) {
	c, solo, arrivals := testSetup(t, 8, 1)
	res, err := Simulate(c, solo, 2, arrivals, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JobFinish) != 8 {
		t.Fatalf("finished %d jobs; want 8", len(res.JobFinish))
	}
	for j, f := range res.JobFinish {
		if f < arrivals[int(j)].Time {
			t.Errorf("job %d finished (%v) before arriving (%v)", j, f, arrivals[int(j)].Time)
		}
		// A co-run job cannot beat its solo time.
		pid := c.Batch.Jobs[j].Procs[0]
		if f-arrivals[int(j)].Time < solo(pid)-1e-9 {
			t.Errorf("job %d turnaround %v below solo time %v", j, f-arrivals[int(j)].Time, solo(pid))
		}
	}
	if res.Makespan <= 0 || res.MeanTurnaround <= 0 {
		t.Errorf("degenerate result %+v", res)
	}
}

func TestAllPoliciesComplete(t *testing.T) {
	c, solo, arrivals := testSetup(t, 12, 3)
	for _, p := range []Policy{FirstFit{}, Spread{}, ContentionAware{},
		Random{Rng: rand.New(rand.NewSource(1))}} {
		res, err := Simulate(c, solo, 3, arrivals, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.JobFinish) != 12 {
			t.Errorf("%s: finished %d jobs", p.Name(), len(res.JobFinish))
		}
	}
}

func TestContentionAwareBeatsFirstFitOnAverage(t *testing.T) {
	// Aggregated over seeds: contention-aware placement must not lose
	// to contention-oblivious packing on total turnaround.
	var ffSum, caSum float64
	for seed := int64(1); seed <= 6; seed++ {
		c, solo, arrivals := testSetup(t, 12, seed)
		ff, err := Simulate(c, solo, 3, arrivals, FirstFit{})
		if err != nil {
			t.Fatal(err)
		}
		ca, err := Simulate(c, solo, 3, arrivals, ContentionAware{})
		if err != nil {
			t.Fatal(err)
		}
		ffSum += ff.MeanTurnaround
		caSum += ca.MeanTurnaround
	}
	if caSum > ffSum*1.02 {
		t.Errorf("contention-aware mean turnaround %v worse than first-fit %v", caSum, ffSum)
	}
}

func TestQueueingWhenClusterFull(t *testing.T) {
	// One machine, jobs arriving together: later jobs must queue and
	// still finish.
	c, solo, _ := testSetup(t, 8, 5)
	arrivals := make([]Arrival, 8)
	for i := range arrivals {
		arrivals[i] = Arrival{Job: job.JobID(i), Time: 0}
	}
	res, err := Simulate(c, solo, 1, arrivals, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JobFinish) != 8 {
		t.Fatalf("finished %d jobs; want 8", len(res.JobFinish))
	}
	// With 4 cores and 8 serial jobs, at least two "waves" run: the
	// makespan must exceed the largest solo time.
	var maxSolo float64
	for p := 1; p <= 8; p++ {
		maxSolo = math.Max(maxSolo, solo(job.ProcID(p)))
	}
	if res.Makespan <= maxSolo {
		t.Errorf("makespan %v <= max solo %v despite queueing", res.Makespan, maxSolo)
	}
}

func TestSimulateValidation(t *testing.T) {
	c, solo, arrivals := testSetup(t, 8, 1)
	// unsorted arrivals
	bad := append([]Arrival(nil), arrivals...)
	bad[0], bad[1] = bad[1], bad[0]
	if _, err := Simulate(c, solo, 2, bad, FirstFit{}); err == nil {
		t.Error("unsorted arrivals accepted")
	}
	// duplicate arrival
	dup := append([]Arrival(nil), arrivals...)
	dup[1].Job = dup[0].Job
	if _, err := Simulate(c, solo, 2, dup, FirstFit{}); err == nil {
		t.Error("duplicate arrival accepted")
	}
	// missing jobs
	if _, err := Simulate(c, solo, 2, arrivals[:4], FirstFit{}); err == nil {
		t.Error("partial arrival list accepted")
	}
	// cluster too small for any placement: deadlock must be reported
	m := cache.QuadCore
	in, err := workload.SyntheticMixedInstance(8, 1, 8, &m, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm := in.Cost(degradation.ModePC)
	if _, err := Simulate(cm, in.SoloTime, 1,
		[]Arrival{{Job: 0, Time: 0}}, FirstFit{}); err == nil {
		t.Error("impossible placement did not deadlock-error")
	}
}

func TestParallelJobFinishesWithSlowestRank(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticMixedInstance(8, 1, 4, &m, 7)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	arrivals := make([]Arrival, len(in.Batch.Jobs))
	for i := range arrivals {
		arrivals[i] = Arrival{Job: job.JobID(i), Time: 0}
	}
	res, err := Simulate(c, in.SoloTime, 2, arrivals, ContentionAware{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JobFinish) != len(in.Batch.Jobs) {
		t.Fatalf("finished %d of %d jobs", len(res.JobFinish), len(in.Batch.Jobs))
	}
}

func TestArrivalGenerators(t *testing.T) {
	u := UniformArrivals(5, 3)
	if len(u) != 5 || u[4].Time != 12 || u[2].Job != 2 {
		t.Errorf("UniformArrivals = %v", u)
	}
	p := PoissonArrivals(10, 2, 7)
	if len(p) != 10 {
		t.Fatalf("PoissonArrivals = %d entries", len(p))
	}
	seen := map[job.JobID]bool{}
	for i, a := range p {
		if i > 0 && a.Time < p[i-1].Time {
			t.Fatal("Poisson arrivals not sorted")
		}
		if seen[a.Job] {
			t.Fatal("duplicate job in Poisson trace")
		}
		seen[a.Job] = true
	}
	// determinism
	p2 := PoissonArrivals(10, 2, 7)
	for i := range p {
		if p[i] != p2[i] {
			t.Fatal("Poisson trace not deterministic")
		}
	}
	b := BurstyArrivals(7, 3, 10)
	if b[0].Time != 0 || b[2].Time != 0 || b[3].Time != 10 || b[6].Time != 20 {
		t.Errorf("BurstyArrivals = %v", b)
	}
	if got := BurstyArrivals(3, 0, 5); got[1].Time != 5 {
		t.Errorf("burstSize floor failed: %v", got)
	}
}

func TestSimulateWithGeneratedTraces(t *testing.T) {
	c, solo, _ := testSetup(t, 8, 9)
	for _, arr := range [][]Arrival{
		PoissonArrivals(8, 3, 1),
		BurstyArrivals(8, 4, 20),
	} {
		res, err := Simulate(c, solo, 2, arr, ContentionAware{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.JobFinish) != 8 {
			t.Fatalf("finished %d jobs", len(res.JobFinish))
		}
	}
}

// TestSimulateTracedEmitsEvents pins the online trace contract: the
// stream opens with solve_start (method "online:<policy>"), every job
// contributes an arrival → place → job_done chain in causal simulated-
// time order with 1-based job numbers, and the closing solution event
// carries the makespan.
func TestSimulateTracedEmitsEvents(t *testing.T) {
	c, solo, arrivals := testSetup(t, 8, 1)
	var buf bytes.Buffer
	reg := telemetry.New()
	res, err := SimulateTraced(c, solo, 2, arrivals, FirstFit{},
		Observer{Metrics: reg, Events: telemetry.NewEventWriter(&buf)})
	if err != nil {
		t.Fatal(err)
	}

	events, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	first, last := events[0], events[len(events)-1]
	if first.Ev != "solve_start" || first.Method != "online:first-fit" || first.N != 8 {
		t.Errorf("bad solve_start: %+v", first)
	}
	if first.SolveID == 0 {
		t.Error("solve_id not self-assigned")
	}
	if last.Ev != "solution" || math.Abs(last.Cost-res.Makespan) > 1e-9 {
		t.Errorf("bad solution event: %+v (want makespan %v)", last, res.Makespan)
	}

	type chain struct{ arrived, placed, done bool }
	chains := map[int]*chain{}
	get := func(j int) *chain {
		if chains[j] == nil {
			chains[j] = &chain{}
		}
		return chains[j]
	}
	prevT := 0.0
	for i, ev := range events {
		if ev.SolveID != first.SolveID {
			t.Fatalf("event %d solve_id %d != %d", i, ev.SolveID, first.SolveID)
		}
		switch ev.Ev {
		case "arrival":
			get(ev.Job).arrived = true
		case "place":
			ch := get(ev.Job)
			if !ch.arrived {
				t.Fatalf("job %d placed before arriving", ev.Job)
			}
			ch.placed = true
			if len(ev.Machines) != 1 {
				t.Fatalf("place event machines = %v, want 1 per serial job", ev.Machines)
			}
		case "job_done":
			ch := get(ev.Job)
			if !ch.placed {
				t.Fatalf("job %d done before being placed", ev.Job)
			}
			ch.done = true
		}
		if ev.T < prevT-1e-9 {
			t.Fatalf("event %d simulated clock went backwards: %v after %v", i, ev.T, prevT)
		}
		if ev.T > prevT {
			prevT = ev.T
		}
	}
	if len(chains) != 8 {
		t.Fatalf("trace covers %d jobs, want 8", len(chains))
	}
	for j, ch := range chains {
		if !ch.arrived || !ch.placed || !ch.done {
			t.Errorf("job %d chain incomplete: %+v", j, ch)
		}
		if j < 1 || j > 8 {
			t.Errorf("job number %d outside the 1-based range", j)
		}
	}
	if got := reg.Counter("online.placements").Value(); got != 8 {
		t.Errorf("online.placements = %d, want 8 (metrics leg of the observer)", got)
	}
}
