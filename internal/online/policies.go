package online

import (
	"fmt"
	"math/rand"

	"cosched/internal/job"
)

// FirstFit packs each arriving job onto the lowest-numbered machines with
// free cores: the contention-oblivious default of a conventional
// scheduler.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Policy.
func (FirstFit) Place(sys *System, j job.JobID) ([]int, error) {
	need := len(sys.Cost.Batch.Jobs[j].Procs)
	if sys.totalFree() < need {
		return nil, fmt.Errorf("online: %d cores needed, %d free", need, sys.totalFree())
	}
	var out []int
	for m := 0; m < sys.Machines && len(out) < need; m++ {
		for k := 0; k < sys.Free(m) && len(out) < need; k++ {
			out = append(out, m)
		}
	}
	return out, nil
}

// Spread places processes on the idlest machines first, the
// load-balancing instinct without contention awareness.
type Spread struct{}

// Name implements Policy.
func (Spread) Name() string { return "spread" }

// Place implements Policy.
func (Spread) Place(sys *System, j job.JobID) ([]int, error) {
	need := len(sys.Cost.Batch.Jobs[j].Procs)
	if sys.totalFree() < need {
		return nil, fmt.Errorf("online: %d cores needed, %d free", need, sys.totalFree())
	}
	var out []int
	for _, m := range sys.sortMachinesByFree() {
		for k := 0; k < sys.Free(m) && len(out) < need; k++ {
			out = append(out, m)
		}
		if len(out) == need {
			break
		}
	}
	return out, nil
}

// ContentionAware greedily assigns each process to the free core whose
// machine minimises the marginal degradation (the process's own cost with
// the machine's current residents plus the extra cost it inflicts on
// them) — the online counterpart of the paper's objective.
type ContentionAware struct{}

// Name implements Policy.
func (ContentionAware) Name() string { return "contention-aware" }

// Place implements Policy.
func (ContentionAware) Place(sys *System, j job.JobID) ([]int, error) {
	procs := sys.Cost.Batch.Jobs[j].Procs
	if sys.totalFree() < len(procs) {
		return nil, fmt.Errorf("online: %d cores needed, %d free", len(procs), sys.totalFree())
	}
	// Tentative residents per machine (existing + already-placed ranks).
	resid := make([][]job.ProcID, sys.Machines)
	free := make([]int, sys.Machines)
	for m := 0; m < sys.Machines; m++ {
		resid[m] = append(resid[m], sys.Running(m)...)
		free[m] = sys.Free(m)
	}
	var out []int
	for _, pid := range procs {
		bestM, bestCost := -1, 0.0
		for m := 0; m < sys.Machines; m++ {
			if free[m] == 0 {
				continue
			}
			cost := sys.Cost.ProcCost(pid, resid[m])
			for _, q := range resid[m] {
				var co []job.ProcID
				for _, r := range resid[m] {
					if r != q {
						co = append(co, r)
					}
				}
				cost += sys.Cost.ProcCost(q, append(co, pid)) - sys.Cost.ProcCost(q, co)
			}
			if bestM < 0 || cost < bestCost {
				bestM, bestCost = m, cost
			}
		}
		if bestM < 0 {
			return nil, fmt.Errorf("online: no free core")
		}
		out = append(out, bestM)
		resid[bestM] = append(resid[bestM], pid)
		free[bestM]--
	}
	return out, nil
}

// Random places processes on uniformly random free cores; the chaos
// baseline.
type Random struct {
	Rng *rand.Rand
}

// Name implements Policy.
func (Random) Name() string { return "random" }

// Place implements Policy.
func (r Random) Place(sys *System, j job.JobID) ([]int, error) {
	need := len(sys.Cost.Batch.Jobs[j].Procs)
	var slots []int
	for m := 0; m < sys.Machines; m++ {
		for k := 0; k < sys.Free(m); k++ {
			slots = append(slots, m)
		}
	}
	if len(slots) < need {
		return nil, fmt.Errorf("online: %d cores needed, %d free", need, len(slots))
	}
	r.Rng.Shuffle(len(slots), func(a, b int) { slots[a], slots[b] = slots[b], slots[a] })
	return slots[:need], nil
}
