package online

import (
	"bytes"
	"errors"
	"testing"

	"cosched/internal/abort"
	"cosched/internal/job"
	"cosched/internal/telemetry"
)

// crashPlan is the deterministic fault schedule the tests share: one
// mid-run crash-and-restore, guaranteed transient failures, and a noisy
// oracle.
func crashPlan() *FaultPlan {
	return &FaultPlan{
		Seed:             7,
		Machines:         []MachineFault{{Machine: 0, FailAt: 5, RecoverAt: 30}},
		PlaceFailureProb: 1, // every job fails MaxPlaceFailures times
		MaxPlaceFailures: 2,
		OracleNoise:      0.1,
	}
}

func TestSimulateWithFaultsCompletes(t *testing.T) {
	c, solo, arrivals := testSetup(t, 12, 1)
	var buf bytes.Buffer
	reg := telemetry.New()
	res, err := SimulateWithFaults(c, solo, 3, arrivals, FirstFit{},
		Observer{Metrics: reg, Events: telemetry.NewEventWriter(&buf)}, crashPlan())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JobFinish) != 12 {
		t.Fatalf("finished %d jobs; want 12 despite faults", len(res.JobFinish))
	}
	for j, f := range res.JobFinish {
		if f < arrivals[int(j)].Time {
			t.Errorf("job %d finished (%v) before arriving (%v)", j, f, arrivals[int(j)].Time)
		}
	}

	events, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Ev]++
		switch ev.Ev {
		case "place_fail":
			if ev.Reason != "transient" || ev.Delay <= 0 {
				t.Errorf("bad place_fail event: %+v", ev)
			}
		case "evict":
			if ev.Job < 1 || len(ev.Machines) == 0 {
				t.Errorf("bad evict event: %+v", ev)
			}
		}
	}
	if kinds["machine_down"] != 1 || kinds["machine_up"] != 1 {
		t.Errorf("machine events down=%d up=%d; want 1 each", kinds["machine_down"], kinds["machine_up"])
	}
	if kinds["evict"] == 0 {
		t.Error("crash at t=5 with jobs running evicted nothing")
	}
	// Every job rolls PlaceFailureProb=1 until its cap of 2 failures.
	if kinds["place_fail"] != 24 {
		t.Errorf("place_fail events = %d; want 12 jobs x 2 capped failures", kinds["place_fail"])
	}

	if got := reg.Counter("online.faults.machine_down").Value(); got != 1 {
		t.Errorf("online.faults.machine_down = %d", got)
	}
	if got := reg.Counter("online.faults.evictions").Value(); got == 0 {
		t.Error("online.faults.evictions = 0")
	}
	if got := reg.Counter("online.faults.place_failures").Value(); got != 24 {
		t.Errorf("online.faults.place_failures = %d; want 24", got)
	}
}

func TestSimulateWithFaultsDeterministic(t *testing.T) {
	c, solo, arrivals := testSetup(t, 10, 2)
	plan := RandomFaultPlan(3, 3, 60)
	a, err := SimulateWithFaults(c, solo, 3, arrivals, ContentionAware{}, Observer{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateWithFaults(c, solo, 3, arrivals, ContentionAware{}, Observer{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.MeanTurnaround != b.MeanTurnaround {
		t.Errorf("same plan, different outcomes: %+v vs %+v", a, b)
	}
	for j, f := range a.JobFinish {
		if b.JobFinish[j] != f {
			t.Errorf("job %d finish %v vs %v", j, f, b.JobFinish[j])
		}
	}
}

func TestPermanentCrashShiftsLoad(t *testing.T) {
	c, solo, arrivals := testSetup(t, 8, 4)
	// Machine 0 dies at t=1 and never recovers; the survivor must absorb
	// everything, including the evicted early placements.
	plan := &FaultPlan{Seed: 1, Machines: []MachineFault{{Machine: 0, FailAt: 1, RecoverAt: 0}}}
	res, err := SimulateWithFaults(c, solo, 2, arrivals, FirstFit{}, Observer{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JobFinish) != 8 {
		t.Fatalf("finished %d jobs; want 8 on the surviving machine", len(res.JobFinish))
	}
	clean, err := Simulate(c, solo, 2, arrivals, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < clean.Makespan {
		t.Errorf("makespan %v improved by losing half the cluster (fault-free %v)",
			res.Makespan, clean.Makespan)
	}
}

func TestBackoffCapped(t *testing.T) {
	f := &faultState{plan: &FaultPlan{BackoffBase: 0.5, BackoffCap: 2}}
	for _, tc := range []struct {
		fails int
		want  float64
	}{{1, 0.5}, {2, 1}, {3, 2}, {10, 2}} {
		if got := f.backoff(tc.fails); got != tc.want {
			t.Errorf("backoff(%d) = %v; want %v", tc.fails, got, tc.want)
		}
	}
	// Defaults: base 0.1, cap 20x base.
	d := &faultState{plan: &FaultPlan{}}
	if got := d.backoff(1); got != 0.1 {
		t.Errorf("default backoff(1) = %v; want 0.1", got)
	}
	if got := d.backoff(30); got != 2 {
		t.Errorf("default backoff(30) = %v; want the 2.0 cap", got)
	}
}

// panicPolicy stands in for a buggy scheduling policy.
type panicPolicy struct{}

func (panicPolicy) Name() string                            { return "panicky" }
func (panicPolicy) Place(*System, job.JobID) ([]int, error) { panic("policy exploded") }

func TestSimulateRecoversPolicyPanic(t *testing.T) {
	c, solo, arrivals := testSetup(t, 8, 1)
	res, err := SimulateWithFaults(c, solo, 2, arrivals, panicPolicy{}, Observer{}, nil)
	if res != nil {
		t.Error("panicking policy returned a result")
	}
	var pe *abort.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v; want *abort.PanicError", err)
	}
	if pe.Value != "policy exploded" {
		t.Errorf("recovered value %v", pe.Value)
	}
}
