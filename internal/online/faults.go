package online

import (
	"math"
	"math/rand"
	"sort"

	"cosched/internal/job"
	"cosched/internal/telemetry"
)

// MachineFault takes one machine down at FailAt and (optionally) back up
// at RecoverAt, on the simulated clock. A RecoverAt at or before FailAt
// means the machine never comes back.
type MachineFault struct {
	Machine   int
	FailAt    float64
	RecoverAt float64
}

// FaultPlan is a seeded, reproducible description of everything that
// goes wrong during an online simulation: machine crashes and restores,
// transient placement failures, and a systematically misestimated
// degradation oracle. A nil plan is the no-fault fast path.
type FaultPlan struct {
	// Seed drives every random draw of the plan (placement failures and
	// oracle noise), so a run is exactly reproducible.
	Seed int64
	// Machines lists the crash/restore schedule. A crash evicts every
	// job with a process on the machine — the whole job, cluster-wide —
	// preserving each process's remaining work and requeueing the job at
	// the front of the queue.
	Machines []MachineFault
	// PlaceFailureProb is the probability that an otherwise-successful
	// placement transiently fails (an RPC timeout, a slow cgroup setup).
	// The job backs off exponentially and retries.
	PlaceFailureProb float64
	// MaxPlaceFailures caps the injected failures per job (0 = 3), so a
	// job cannot be starved forever by bad dice.
	MaxPlaceFailures int
	// BackoffBase is the first retry delay in simulated seconds (0 =
	// 0.1); each subsequent failure doubles it up to BackoffCap (0 =
	// 20 × base).
	BackoffBase float64
	BackoffCap  float64
	// OracleNoise perturbs the degradation oracle the simulator's speed
	// model uses: each process's contention estimate is scaled by a
	// stable factor drawn uniformly from [1-OracleNoise, 1+OracleNoise].
	// Zero means the oracle is exact.
	OracleNoise float64
}

// RandomFaultPlan builds a reproducible plan for a cluster: one mid-run
// crash-and-restore on a random machine, a second late crash that never
// recovers on larger clusters, 20% transient placement failures and a
// 10% noisy oracle. horizon is the expected simulated makespan the
// crash times are scattered over.
func RandomFaultPlan(seed int64, machines int, horizon float64) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	plan := &FaultPlan{
		Seed:             seed,
		PlaceFailureProb: 0.2,
		MaxPlaceFailures: 3,
		OracleNoise:      0.1,
	}
	m := rng.Intn(machines)
	fail := horizon * (0.2 + 0.3*rng.Float64())
	plan.Machines = append(plan.Machines, MachineFault{
		Machine: m, FailAt: fail, RecoverAt: fail + horizon*0.25*rng.Float64(),
	})
	if machines > 2 {
		m2 := (m + 1 + rng.Intn(machines-1)) % machines
		plan.Machines = append(plan.Machines, MachineFault{
			Machine: m2, FailAt: horizon * (0.6 + 0.3*rng.Float64()), RecoverAt: 0,
		})
	}
	return plan
}

// faultEvent is one scheduled state flip of a machine.
type faultEvent struct {
	t    float64
	m    int
	down bool
}

// faultState is the live fault machinery of one simulation.
type faultState struct {
	plan   *FaultPlan
	rng    *rand.Rand
	events []faultEvent // time-sorted; idx is the next unapplied one
	idx    int
	// noise[p-1] is the stable oracle perturbation factor of process p.
	noise []float64
	// placeFails counts injected placement failures per job; retryAt
	// holds the simulated time before which the job must not retry.
	placeFails map[job.JobID]int
	retryAt    map[job.JobID]float64
}

func newFaultState(plan *FaultPlan, machines, procs int) *faultState {
	f := &faultState{
		plan:       plan,
		rng:        rand.New(rand.NewSource(plan.Seed)),
		placeFails: make(map[job.JobID]int),
		retryAt:    make(map[job.JobID]float64),
	}
	for _, mf := range plan.Machines {
		if mf.Machine < 0 || mf.Machine >= machines {
			continue
		}
		f.events = append(f.events, faultEvent{t: mf.FailAt, m: mf.Machine, down: true})
		if mf.RecoverAt > mf.FailAt {
			f.events = append(f.events, faultEvent{t: mf.RecoverAt, m: mf.Machine, down: false})
		}
	}
	sort.SliceStable(f.events, func(a, b int) bool { return f.events[a].t < f.events[b].t })
	if plan.OracleNoise > 0 {
		f.noise = make([]float64, procs)
		for i := range f.noise {
			n := 1 + plan.OracleNoise*(2*f.rng.Float64()-1)
			if n < 0 {
				n = 0
			}
			f.noise[i] = n
		}
	}
	return f
}

// nextFaultTime returns the time of the next unapplied machine fault
// (+Inf when the schedule is exhausted).
func (f *faultState) nextFaultTime() float64 {
	if f == nil || f.idx >= len(f.events) {
		return math.Inf(1)
	}
	return f.events[f.idx].t
}

// backoff returns the retry delay after the job's n-th injected failure.
func (f *faultState) backoff(fails int) float64 {
	base := f.plan.BackoffBase
	if base <= 0 {
		base = 0.1
	}
	cap := f.plan.BackoffCap
	if cap <= 0 {
		cap = 20 * base
	}
	d := base * math.Pow(2, float64(fails-1))
	if d > cap {
		d = cap
	}
	return d
}

// failPlace rolls the dice for one placement attempt of job j; true
// means the attempt transiently fails and the caller must back off.
func (f *faultState) failPlace(j job.JobID) bool {
	if f == nil || f.plan.PlaceFailureProb <= 0 {
		return false
	}
	maxFails := f.plan.MaxPlaceFailures
	if maxFails == 0 {
		maxFails = 3
	}
	if f.placeFails[j] >= maxFails {
		return false
	}
	if f.rng.Float64() >= f.plan.PlaceFailureProb {
		return false
	}
	f.placeFails[j]++
	return true
}

// nextRetryTime returns when the queue's head job may retry placement
// (+Inf when it is not backing off, or the queue is empty).
func (s *System) nextRetryTime() float64 {
	if s.faults == nil || len(s.queue) == 0 {
		return math.Inf(1)
	}
	if t, ok := s.faults.retryAt[s.queue[0]]; ok && t > s.now {
		return t
	}
	return math.Inf(1)
}

// applyFaults flips every machine state scheduled at or before now:
// machine_up restores capacity; machine_down evicts every job with a
// process on the machine (whole jobs, cluster-wide), preserving their
// remaining work and requeueing them at the front of the queue.
func (s *System) applyFaults() {
	f := s.faults
	for f.idx < len(f.events) && f.events[f.idx].t <= s.now {
		ev := f.events[f.idx]
		f.idx++
		if !ev.down {
			s.down[ev.m] = false
			s.evs.emit(telemetry.Event{Ev: "machine_up", Machines: []int{ev.m}, T: s.now})
			continue
		}
		s.down[ev.m] = true
		if s.met != nil {
			s.met.machineDowns.Add(1)
		}
		s.evs.emit(telemetry.Event{Ev: "machine_down", Machines: []int{ev.m}, T: s.now})
		// Evict every job touching the crashed machine, in on-machine
		// order, so the outcome is deterministic.
		var victims []job.JobID
		seen := map[job.JobID]bool{}
		for _, pid := range s.perMachine[ev.m] {
			if j := s.Cost.Batch.JobOf(pid); j != nil && !seen[j.ID] {
				seen[j.ID] = true
				victims = append(victims, j.ID)
			}
		}
		for _, jid := range victims {
			s.evictJob(jid)
		}
		if len(victims) > 0 {
			s.queue = append(victims, s.queue...)
		}
	}
}

// evictJob pulls every placed process of the job off its machine,
// keeping the remaining-work counters so the job resumes where the
// crash interrupted it.
func (s *System) evictJob(jid job.JobID) {
	b := s.Cost.Batch
	var machines []int
	for _, pid := range b.Jobs[jid].Procs {
		m := s.machineOf[int(pid)-1]
		if m < 0 {
			continue
		}
		machines = append(machines, m)
		kept := s.perMachine[m][:0]
		for _, q := range s.perMachine[m] {
			if q != pid {
				kept = append(kept, q)
			}
		}
		s.perMachine[m] = kept
		s.machineOf[int(pid)-1] = -1
	}
	if s.met != nil {
		s.met.evictions.Add(1)
	}
	s.evs.emit(telemetry.Event{Ev: "evict", Job: int(jid) + 1, Machines: machines, T: s.now})
}
