// Package online simulates *online* contention-aware co-scheduling: jobs
// arrive over time and a placement policy must assign their processes to
// cores immediately, while co-runner sets — and therefore every process's
// execution speed — keep changing as jobs start and finish.
//
// This is the paper's first category of co-scheduling work (§I): practical
// runtime schedulers. The paper's own contribution, the offline optimum,
// is "the performance target other co-scheduling systems" are measured
// against — and that is exactly how this package is used: run an online
// policy, compare its outcome with the OA* bound on the same batch
// (see examples/onlinesim and the tests).
//
// Execution model: a process's instantaneous speed is 1/(1+d(p,S)) where
// S is its machine's current co-runner set (Eq. 1/9 degradations from the
// same oracle the offline solvers use); work is measured in solo-seconds;
// speeds change at every placement/completion event.
package online

import (
	"fmt"
	"math"
	"sort"

	"cosched/internal/degradation"
	"cosched/internal/job"
)

// Arrival is one job entering the system.
type Arrival struct {
	Job  job.JobID
	Time float64
}

// Policy decides where an arriving job's processes go. free lists, per
// machine, how many cores are idle; the policy returns one machine index
// per process of the job (machines may repeat up to their free count).
// Returning an error queues the job until the next completion event.
type Policy interface {
	Name() string
	// Place assigns the job's processes to machines.
	Place(sys *System, j job.JobID) ([]int, error)
}

// System is the simulated cluster.
type System struct {
	Cost     *degradation.Cost
	Solo     func(job.ProcID) float64
	Machines int
	Cores    int

	now float64
	// perMachine[m] lists the processes currently running on machine m.
	perMachine [][]job.ProcID
	// remaining[p-1] is the process's remaining work in solo-seconds;
	// NaN marks not-yet-arrived, 0 done.
	remaining []float64
	machineOf []int // machine of each running process, -1 otherwise

	queue    []job.JobID
	finished map[job.JobID]float64
}

// Result summarises one simulation.
type Result struct {
	Policy string
	// Makespan is when the last job finished.
	Makespan float64
	// MeanTurnaround averages (finish - arrival) over jobs.
	MeanTurnaround float64
	// JobFinish maps jobs to finish times.
	JobFinish map[job.JobID]float64
}

// NewSystem builds a cluster of the given size over the cost model.
func NewSystem(c *degradation.Cost, solo func(job.ProcID) float64, machines int) *System {
	n := c.Batch.NumProcs()
	s := &System{
		Cost:       c,
		Solo:       solo,
		Machines:   machines,
		Cores:      c.Batch.Cores,
		perMachine: make([][]job.ProcID, machines),
		remaining:  make([]float64, n),
		machineOf:  make([]int, n),
		finished:   make(map[job.JobID]float64),
	}
	for i := range s.remaining {
		s.remaining[i] = math.NaN()
		s.machineOf[i] = -1
	}
	return s
}

// Free returns the idle core count of machine m.
func (s *System) Free(m int) int { return s.Cores - len(s.perMachine[m]) }

// Running returns the processes currently on machine m.
func (s *System) Running(m int) []job.ProcID { return s.perMachine[m] }

// Now returns the simulation clock.
func (s *System) Now() float64 { return s.now }

// Simulate runs the arrival sequence under the policy. Arrivals must be
// time-sorted; every job of the batch must appear exactly once.
func Simulate(c *degradation.Cost, solo func(job.ProcID) float64, machines int,
	arrivals []Arrival, p Policy) (*Result, error) {
	s := NewSystem(c, solo, machines)
	b := c.Batch
	arrivalTime := make(map[job.JobID]float64, len(arrivals))
	for i, a := range arrivals {
		if i > 0 && a.Time < arrivals[i-1].Time {
			return nil, fmt.Errorf("online: arrivals not time-sorted")
		}
		if _, dup := arrivalTime[a.Job]; dup {
			return nil, fmt.Errorf("online: job %d arrives twice", a.Job)
		}
		arrivalTime[a.Job] = a.Time
	}
	if len(arrivalTime) != len(b.Jobs) {
		return nil, fmt.Errorf("online: %d arrivals for %d jobs", len(arrivalTime), len(b.Jobs))
	}

	next := 0
	for len(s.finished) < len(b.Jobs) {
		// Advance to the next event: either an arrival or the earliest
		// completion on the current speeds.
		dt, anyRunning := s.timeToNextCompletion()
		var eventTime float64
		if anyRunning {
			eventTime = s.now + dt
		} else {
			eventTime = math.Inf(1)
		}
		if next < len(arrivals) && arrivals[next].Time <= eventTime {
			s.progress(arrivals[next].Time - s.now)
			s.now = arrivals[next].Time
			s.queue = append(s.queue, arrivals[next].Job)
			next++
		} else {
			if !anyRunning {
				return nil, fmt.Errorf("online: deadlock — queue %v cannot be placed", s.queue)
			}
			s.progress(dt)
			s.now = eventTime
			s.reap(arrivalTime)
		}
		s.drainQueue(p)
	}

	res := &Result{Policy: p.Name(), JobFinish: s.finished}
	var sum float64
	for j, t := range s.finished {
		if t > res.Makespan {
			res.Makespan = t
		}
		sum += t - arrivalTime[j]
	}
	res.MeanTurnaround = sum / float64(len(s.finished))
	return res, nil
}

// drainQueue tries to place queued jobs in FIFO order; a job that cannot
// be placed blocks the ones behind it (no backfilling — conservative).
func (s *System) drainQueue(p Policy) {
	for len(s.queue) > 0 {
		j := s.queue[0]
		placement, err := p.Place(s, j)
		if err != nil {
			return
		}
		procs := s.Cost.Batch.Jobs[j].Procs
		if len(placement) != len(procs) {
			return
		}
		// validate capacity
		need := map[int]int{}
		for _, m := range placement {
			need[m]++
		}
		for m, k := range need {
			if m < 0 || m >= s.Machines || s.Free(m) < k {
				return
			}
		}
		for i, pid := range procs {
			m := placement[i]
			s.perMachine[m] = append(s.perMachine[m], pid)
			s.machineOf[int(pid)-1] = m
			s.remaining[int(pid)-1] = s.Solo(pid)
		}
		s.queue = s.queue[1:]
	}
}

// speed returns the instantaneous execution rate of a running process.
func (s *System) speed(pid job.ProcID) float64 {
	m := s.machineOf[int(pid)-1]
	var others [16]job.ProcID
	co := others[:0]
	for _, q := range s.perMachine[m] {
		if q != pid {
			co = append(co, q)
		}
	}
	return 1 / (1 + s.Cost.ProcCost(pid, co))
}

// timeToNextCompletion returns the wall-clock time until the earliest
// running process finishes at current speeds.
func (s *System) timeToNextCompletion() (float64, bool) {
	best := math.Inf(1)
	any := false
	for m := range s.perMachine {
		for _, pid := range s.perMachine[m] {
			t := s.remaining[int(pid)-1] / s.speed(pid)
			if t < best {
				best = t
			}
			any = true
		}
	}
	return best, any
}

// progress advances every running process by dt wall-clock at current
// speeds.
func (s *System) progress(dt float64) {
	if dt <= 0 {
		return
	}
	for m := range s.perMachine {
		for _, pid := range s.perMachine[m] {
			s.remaining[int(pid)-1] -= dt * s.speed(pid)
		}
	}
}

// reap removes finished processes and records job completions.
func (s *System) reap(arrivalTime map[job.JobID]float64) {
	b := s.Cost.Batch
	for m := range s.perMachine {
		kept := s.perMachine[m][:0]
		for _, pid := range s.perMachine[m] {
			if s.remaining[int(pid)-1] > 1e-9 {
				kept = append(kept, pid)
				continue
			}
			s.remaining[int(pid)-1] = 0
			s.machineOf[int(pid)-1] = -1
		}
		s.perMachine[m] = kept
	}
	// a job finishes when all its processes are done
	for ji := range b.Jobs {
		j := &b.Jobs[ji]
		if _, done := s.finished[j.ID]; done {
			continue
		}
		all := true
		for _, pid := range j.Procs {
			if s.remaining[int(pid)-1] != 0 || math.IsNaN(s.remaining[int(pid)-1]) {
				all = false
				break
			}
		}
		if all {
			s.finished[j.ID] = s.now
		}
	}
	_ = arrivalTime
}

// totalFree returns the cluster's idle core count.
func (s *System) totalFree() int {
	free := 0
	for m := range s.perMachine {
		free += s.Free(m)
	}
	return free
}

// sortMachinesByFree returns machine indices, most-idle first (stable).
func (s *System) sortMachinesByFree() []int {
	idx := make([]int, s.Machines)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.Free(idx[a]) > s.Free(idx[b]) })
	return idx
}
