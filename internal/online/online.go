package online

import (
	"fmt"
	"math"
	"sort"

	"cosched/internal/abort"
	"cosched/internal/degradation"
	"cosched/internal/job"
	"cosched/internal/telemetry"
)

// Arrival is one job entering the system.
type Arrival struct {
	Job  job.JobID
	Time float64
}

// Policy decides where an arriving job's processes go. free lists, per
// machine, how many cores are idle; the policy returns one machine index
// per process of the job (machines may repeat up to their free count).
// Returning an error queues the job until the next completion event.
type Policy interface {
	Name() string
	// Place assigns the job's processes to machines.
	Place(sys *System, j job.JobID) ([]int, error)
}

// System is the simulated cluster.
type System struct {
	Cost     *degradation.Cost
	Solo     func(job.ProcID) float64
	Machines int
	Cores    int

	now float64
	// perMachine[m] lists the processes currently running on machine m.
	perMachine [][]job.ProcID
	// remaining[p-1] is the process's remaining work in solo-seconds;
	// NaN marks not-yet-arrived, 0 done.
	remaining []float64
	machineOf []int // machine of each running process, -1 otherwise

	queue    []job.JobID
	finished map[job.JobID]float64

	// down[m] marks machine m crashed: zero free cores, nothing runs on
	// it, until the fault plan restores it. faults is the live fault
	// machinery (nil on fault-free simulations).
	down   []bool
	faults *faultState

	// arrivedAt mirrors the arrival times during a simulation so the
	// telemetry layer can compute placement delays.
	arrivedAt map[job.JobID]float64
	met       *onlineMetrics
	evs       *onlineEvents
}

// onlineEvents is the trace-event side of the online telemetry: one
// solve_start, then arrival/place/job_done events on the simulated
// clock (Event.T, not t_ms), and a closing solution event carrying the
// makespan. Job numbers are 1-based in the trace so job 0 survives the
// schema's omitempty encoding. A nil *onlineEvents disables everything.
type onlineEvents struct {
	sink    telemetry.EventSink
	solveID uint64
}

func newOnlineEvents(obs Observer) *onlineEvents {
	if obs.Events == nil {
		return nil
	}
	e := &onlineEvents{sink: obs.Events, solveID: obs.SolveID}
	if e.solveID == 0 {
		e.solveID = telemetry.NextSolveID()
	}
	return e
}

func (e *onlineEvents) emit(ev telemetry.Event) {
	if e == nil {
		return
	}
	ev.SolveID = e.solveID
	e.sink.Emit(ev) //nolint:errcheck
}

// onlineMetrics caches the registry handles of the online.* metric
// family. All uses are guarded by s.met != nil, so a simulation without
// telemetry pays nil checks only.
type onlineMetrics struct {
	sims, placements, queued, events *telemetry.Counter
	speedUpdates                     *telemetry.Counter
	// The online.faults.* family: machine crashes applied, jobs evicted
	// by crashes, and transient placement failures injected.
	machineDowns, evictions, placeFailures *telemetry.Counter
	queueLen                               *telemetry.Gauge
	placementDelay                         *telemetry.Histogram
}

func newOnlineMetrics(r *telemetry.Registry) *onlineMetrics {
	if r == nil {
		return nil
	}
	m := &onlineMetrics{
		sims:          r.Counter("online.simulations"),
		placements:    r.Counter("online.placements"),
		queued:        r.Counter("online.queued_jobs"),
		events:        r.Counter("online.events"),
		speedUpdates:  r.Counter("online.speed_updates"),
		machineDowns:  r.Counter("online.faults.machine_down"),
		evictions:     r.Counter("online.faults.evictions"),
		placeFailures: r.Counter("online.faults.place_failures"),
		queueLen:      r.Gauge("online.queue"),
		// Placement delay in simulated time units; the buckets cover
		// immediate placement through long head-of-line blocking.
		placementDelay: r.Histogram("online.placement_delay",
			[]float64{0, 0.1, 0.5, 1, 2, 5, 10, 30, 100}),
	}
	m.sims.Add(1)
	return m
}

// Result summarises one simulation.
type Result struct {
	Policy string
	// Makespan is when the last job finished.
	Makespan float64
	// MeanTurnaround averages (finish - arrival) over jobs.
	MeanTurnaround float64
	// JobFinish maps jobs to finish times.
	JobFinish map[job.JobID]float64
}

// NewSystem builds a cluster of the given size over the cost model.
func NewSystem(c *degradation.Cost, solo func(job.ProcID) float64, machines int) *System {
	n := c.Batch.NumProcs()
	s := &System{
		Cost:       c,
		Solo:       solo,
		Machines:   machines,
		Cores:      c.Batch.Cores,
		perMachine: make([][]job.ProcID, machines),
		remaining:  make([]float64, n),
		machineOf:  make([]int, n),
		finished:   make(map[job.JobID]float64),
		down:       make([]bool, machines),
	}
	for i := range s.remaining {
		s.remaining[i] = math.NaN()
		s.machineOf[i] = -1
	}
	return s
}

// Free returns the idle core count of machine m (0 while the machine is
// crashed).
func (s *System) Free(m int) int {
	if s.down[m] {
		return 0
	}
	return s.Cores - len(s.perMachine[m])
}

// Running returns the processes currently on machine m.
func (s *System) Running(m int) []job.ProcID { return s.perMachine[m] }

// Now returns the simulation clock.
func (s *System) Now() float64 { return s.now }

// Simulate runs the arrival sequence under the policy. Arrivals must be
// time-sorted; every job of the batch must appear exactly once.
func Simulate(c *degradation.Cost, solo func(job.ProcID) float64, machines int,
	arrivals []Arrival, p Policy) (*Result, error) {
	return SimulateObserved(c, solo, machines, arrivals, p, nil)
}

// Observer bundles the optional observation surfaces of a simulation:
// a metrics registry (the "online.*" family), a trace-event sink (the
// arrival/place/job_done stream an incident dump or coschedtrace
// consumes), and the solve id stamped on those events (zero
// self-assigns one from telemetry.NextSolveID).
type Observer struct {
	Metrics *telemetry.Registry
	Events  telemetry.EventSink
	SolveID uint64
}

// SimulateObserved is Simulate with metrics: a non-nil registry
// receives the "online.*" family (simulations, placements, simulation
// events, speed recomputations, queue length, and a placement-delay
// histogram in simulated time units; DESIGN.md §6).
func SimulateObserved(c *degradation.Cost, solo func(job.ProcID) float64, machines int,
	arrivals []Arrival, p Policy, reg *telemetry.Registry) (*Result, error) {
	return SimulateTraced(c, solo, machines, arrivals, p, Observer{Metrics: reg})
}

// SimulateTraced is Simulate with the full observation surface: metrics
// plus the trace-event stream. Events carry the simulated clock in T and
// 1-based job numbers; the stream opens with solve_start (method
// "online:<policy>") and closes with a solution event whose Cost is the
// makespan.
func SimulateTraced(c *degradation.Cost, solo func(job.ProcID) float64, machines int,
	arrivals []Arrival, p Policy, obs Observer) (*Result, error) {
	return SimulateWithFaults(c, solo, machines, arrivals, p, obs, nil)
}

// SimulateWithFaults is SimulateTraced under a seeded fault plan:
// machines crash and restore on schedule (crashes evict whole jobs —
// remaining work preserved, job requeued at the front), placements fail
// transiently with capped exponential backoff, and the speed model runs
// on a perturbed degradation oracle. A nil plan simulates fault-free. A
// panic thrown by the policy's Place is recovered into an
// *abort.PanicError after flushing the event sink, so one broken policy
// cannot take the whole experiment down.
func SimulateWithFaults(c *degradation.Cost, solo func(job.ProcID) float64, machines int,
	arrivals []Arrival, p Policy, obs Observer, plan *FaultPlan) (res *Result, err error) {
	s := NewSystem(c, solo, machines)
	s.met = newOnlineMetrics(obs.Metrics)
	s.evs = newOnlineEvents(obs)
	if plan != nil {
		s.faults = newFaultState(plan, machines, c.Batch.NumProcs())
	}
	b := c.Batch
	arrivalTime := make(map[job.JobID]float64, len(arrivals))
	for i, a := range arrivals {
		if i > 0 && a.Time < arrivals[i-1].Time {
			return nil, fmt.Errorf("online: arrivals not time-sorted")
		}
		if _, dup := arrivalTime[a.Job]; dup {
			return nil, fmt.Errorf("online: job %d arrives twice", a.Job)
		}
		arrivalTime[a.Job] = a.Time
	}
	if len(arrivalTime) != len(b.Jobs) {
		return nil, fmt.Errorf("online: %d arrivals for %d jobs", len(arrivalTime), len(b.Jobs))
	}
	s.arrivedAt = arrivalTime
	defer func() {
		if r := recover(); r != nil {
			if s.evs != nil {
				telemetry.FlushSink(s.evs.sink) //nolint:errcheck // keep the partial trace
			}
			res, err = nil, abort.Recovered(r)
		}
	}()
	s.evs.emit(telemetry.Event{
		Ev: "solve_start", N: b.NumProcs(), U: b.Cores, Method: "online:" + p.Name(),
	})

	next := 0
	for len(s.finished) < len(b.Jobs) {
		// Advance to the earliest of: the next arrival, the earliest
		// completion at current speeds, the next scheduled machine
		// fault, and the queue head's backoff expiry. Arrivals win ties.
		dt, anyRunning := s.timeToNextCompletion()
		tComp := math.Inf(1)
		if anyRunning {
			tComp = s.now + dt
		}
		tArr := math.Inf(1)
		if next < len(arrivals) {
			tArr = arrivals[next].Time
		}
		tFault := s.faults.nextFaultTime()
		tRetry := s.nextRetryTime()

		switch {
		case tArr <= tComp && tArr <= tFault && tArr <= tRetry:
			s.progress(tArr - s.now)
			s.now = tArr
			s.queue = append(s.queue, arrivals[next].Job)
			if s.met != nil {
				s.met.queued.Add(1)
			}
			s.evs.emit(telemetry.Event{Ev: "arrival", Job: int(arrivals[next].Job) + 1, T: s.now})
			next++
		case tFault <= tComp && tFault <= tRetry && !math.IsInf(tFault, 1):
			s.progress(tFault - s.now)
			s.now = tFault
			s.applyFaults()
		case tRetry <= tComp && !math.IsInf(tRetry, 1):
			// The backoff expired; drainQueue below retries the head.
			s.progress(tRetry - s.now)
			s.now = tRetry
		case anyRunning:
			s.progress(dt)
			s.now = tComp
			s.reap(arrivalTime)
		default:
			return nil, fmt.Errorf("online: deadlock — queue %v cannot be placed", s.queue)
		}
		if s.met != nil {
			s.met.events.Add(1)
		}
		s.drainQueue(p)
	}

	res = &Result{Policy: p.Name(), JobFinish: s.finished}
	var sum float64
	// Sum in job order, not map order, so the mean is bit-identical
	// across runs of the same plan.
	for jid := range b.Jobs {
		t := s.finished[job.JobID(jid)]
		if t > res.Makespan {
			res.Makespan = t
		}
		sum += t - arrivalTime[job.JobID(jid)]
	}
	res.MeanTurnaround = sum / float64(len(s.finished))
	if s.evs != nil {
		s.evs.emit(telemetry.Event{Ev: "solution", Cost: res.Makespan, T: s.now})
		telemetry.FlushSink(s.evs.sink) //nolint:errcheck
	}
	return res, nil
}

// drainQueue tries to place queued jobs in FIFO order; a job that cannot
// be placed blocks the ones behind it (no backfilling — conservative).
func (s *System) drainQueue(p Policy) {
	for len(s.queue) > 0 {
		j := s.queue[0]
		// A job backing off after a transient placement failure blocks
		// the queue until its retry time (conservative FIFO, as below).
		if s.faults != nil {
			if t, ok := s.faults.retryAt[j]; ok && t > s.now {
				return
			}
		}
		placement, err := p.Place(s, j)
		if err != nil {
			return
		}
		procs := s.Cost.Batch.Jobs[j].Procs
		if len(placement) != len(procs) {
			return
		}
		// validate capacity
		need := map[int]int{}
		for _, m := range placement {
			need[m]++
		}
		for m, k := range need {
			if m < 0 || m >= s.Machines || s.Free(m) < k {
				return
			}
		}
		// Inject a transient placement failure: the placement was
		// feasible, but the machinery (not the policy) failed. The job
		// stays at the head and retries after an exponential backoff.
		if s.faults != nil && s.faults.failPlace(j) {
			delay := s.faults.backoff(s.faults.placeFails[j])
			s.faults.retryAt[j] = s.now + delay
			if s.met != nil {
				s.met.placeFailures.Add(1)
			}
			s.evs.emit(telemetry.Event{
				Ev: "place_fail", Job: int(j) + 1, T: s.now,
				Reason: "transient", Delay: delay,
			})
			return
		}
		for i, pid := range procs {
			m := placement[i]
			s.perMachine[m] = append(s.perMachine[m], pid)
			s.machineOf[int(pid)-1] = m
			// NaN means never placed; anything else is the remaining
			// work an eviction preserved, which the re-place resumes.
			if math.IsNaN(s.remaining[int(pid)-1]) {
				s.remaining[int(pid)-1] = s.Solo(pid)
			}
		}
		delay := 0.0
		if at, ok := s.arrivedAt[j]; ok {
			delay = s.now - at
		}
		if s.met != nil {
			s.met.placements.Add(1)
			s.met.placementDelay.Observe(delay)
		}
		if s.evs != nil {
			s.evs.emit(telemetry.Event{
				Ev: "place", Job: int(j) + 1, T: s.now,
				Machines: append([]int(nil), placement...), Delay: delay,
			})
		}
		s.queue = s.queue[1:]
	}
	if s.met != nil {
		s.met.queueLen.Set(int64(len(s.queue)))
	}
}

// speed returns the instantaneous execution rate of a running process.
func (s *System) speed(pid job.ProcID) float64 {
	m := s.machineOf[int(pid)-1]
	var others [16]job.ProcID
	co := others[:0]
	for _, q := range s.perMachine[m] {
		if q != pid {
			co = append(co, q)
		}
	}
	d := s.Cost.ProcCost(pid, co)
	if s.faults != nil && s.faults.noise != nil {
		// The perturbed oracle: the simulator believes a systematically
		// wrong contention estimate for this process.
		d *= s.faults.noise[int(pid)-1]
	}
	return 1 / (1 + d)
}

// timeToNextCompletion returns the wall-clock time until the earliest
// running process finishes at current speeds.
func (s *System) timeToNextCompletion() (float64, bool) {
	best := math.Inf(1)
	any := false
	for m := range s.perMachine {
		for _, pid := range s.perMachine[m] {
			t := s.remaining[int(pid)-1] / s.speed(pid)
			if t < best {
				best = t
			}
			any = true
		}
	}
	return best, any
}

// progress advances every running process by dt wall-clock at current
// speeds.
func (s *System) progress(dt float64) {
	if dt <= 0 {
		return
	}
	updates := int64(0)
	for m := range s.perMachine {
		for _, pid := range s.perMachine[m] {
			s.remaining[int(pid)-1] -= dt * s.speed(pid)
			updates++
		}
	}
	if s.met != nil {
		// Each running process had its instantaneous speed recomputed for
		// this event interval: the churn Eq. 1/9 imposes on the simulator.
		s.met.speedUpdates.Add(updates)
	}
}

// reap removes finished processes and records job completions.
func (s *System) reap(arrivalTime map[job.JobID]float64) {
	b := s.Cost.Batch
	for m := range s.perMachine {
		kept := s.perMachine[m][:0]
		for _, pid := range s.perMachine[m] {
			if s.remaining[int(pid)-1] > 1e-9 {
				kept = append(kept, pid)
				continue
			}
			s.remaining[int(pid)-1] = 0
			s.machineOf[int(pid)-1] = -1
		}
		s.perMachine[m] = kept
	}
	// a job finishes when all its processes are done
	for ji := range b.Jobs {
		j := &b.Jobs[ji]
		if _, done := s.finished[j.ID]; done {
			continue
		}
		all := true
		for _, pid := range j.Procs {
			if s.remaining[int(pid)-1] != 0 || math.IsNaN(s.remaining[int(pid)-1]) {
				all = false
				break
			}
		}
		if all {
			s.finished[j.ID] = s.now
			s.evs.emit(telemetry.Event{Ev: "job_done", Job: int(j.ID) + 1, T: s.now})
		}
	}
	_ = arrivalTime
}

// totalFree returns the cluster's idle core count.
func (s *System) totalFree() int {
	free := 0
	for m := range s.perMachine {
		free += s.Free(m)
	}
	return free
}

// sortMachinesByFree returns machine indices, most-idle first (stable).
func (s *System) sortMachinesByFree() []int {
	idx := make([]int, s.Machines)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.Free(idx[a]) > s.Free(idx[b]) })
	return idx
}
