// Package online simulates *online* contention-aware co-scheduling: jobs
// arrive over time and a placement policy must assign their processes to
// cores immediately, while co-runner sets — and therefore every process's
// execution speed — keep changing as jobs start and finish.
//
// This is the paper's first category of co-scheduling work (§I): practical
// runtime schedulers. The paper's own contribution, the offline optimum,
// is "the performance target other co-scheduling systems" are measured
// against — and that is exactly how this package is used: run an online
// policy, compare its outcome with the OA* bound on the same batch
// (see examples/onlinesim and the tests).
//
// Execution model: a process's instantaneous speed is 1/(1+d(p,S)) where
// S is its machine's current co-runner set (Eq. 1/9 degradations from the
// same oracle the offline solvers use); work is measured in solo-seconds;
// speeds change at every placement/completion event.
package online
