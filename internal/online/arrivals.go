package online

import (
	"math"
	"math/rand"

	"cosched/internal/job"
)

// Arrival trace generators for the online simulator. All are seeded and
// deterministic.

// UniformArrivals spaces jobs evenly: one every gap seconds, in job-ID
// order.
func UniformArrivals(jobs int, gap float64) []Arrival {
	out := make([]Arrival, jobs)
	for i := range out {
		out[i] = Arrival{Job: job.JobID(i), Time: float64(i) * gap}
	}
	return out
}

// PoissonArrivals draws exponential inter-arrival times with the given
// mean, shuffling job order: the classic open-system workload.
func PoissonArrivals(jobs int, meanGap float64, seed int64) []Arrival {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(jobs)
	out := make([]Arrival, jobs)
	t := 0.0
	for i := range out {
		out[i] = Arrival{Job: job.JobID(order[i]), Time: t}
		t += rng.ExpFloat64() * meanGap
	}
	return out
}

// BurstyArrivals releases jobs in bursts of burstSize at burstGap
// intervals: the batch-submission pattern of cluster users.
func BurstyArrivals(jobs, burstSize int, burstGap float64) []Arrival {
	if burstSize < 1 {
		burstSize = 1
	}
	out := make([]Arrival, jobs)
	for i := range out {
		out[i] = Arrival{Job: job.JobID(i), Time: math.Floor(float64(i)/float64(burstSize)) * burstGap}
	}
	return out
}
