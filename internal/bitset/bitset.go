// Package bitset provides the fixed-capacity bit sets the search
// algorithms use to track scheduled processes. The extended A*-search
// records, for every examined sub-path, the *set* of processes it contains
// (§III-C1); with batches of up to a few thousand processes those sets
// must be compact and cheap to compare, which is what this package is for.
package bitset

import (
	"math/bits"
	"unsafe"
)

// Set is a bit set over the integers [1, capacity]. Index 0 is unused,
// matching the 1-based process IDs of the job package.
type Set struct {
	words []uint64
}

// New returns an empty set able to hold values 1..capacity.
func New(capacity int) *Set {
	return &Set{words: make([]uint64, (capacity+64)/64)}
}

// Add inserts v into the set.
func (s *Set) Add(v int) { s.words[v>>6] |= 1 << (uint(v) & 63) }

// Remove deletes v from the set.
func (s *Set) Remove(v int) { s.words[v>>6] &^= 1 << (uint(v) & 63) }

// Has reports whether v is in the set.
func (s *Set) Has(v int) bool { return s.words[v>>6]&(1<<(uint(v)&63)) != 0 }

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...)}
}

// CopyFrom overwrites s with src's contents. The two sets must have the
// same capacity; this is the allocation-free alternative to Clone the
// search's element pool relies on.
func (s *Set) CopyFrom(src *Set) {
	copy(s.words, src.words)
}

// Clear empties the set in place.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// AppendWords appends the set's raw words to dst and returns the extended
// slice. When mask is non-nil, the bits of mask are cleared from each word
// first. This is the word-packed counterpart of Key/KeyMasked: two sets of
// the same capacity append equal word sequences exactly when their
// (masked) contents are equal.
func (s *Set) AppendWords(dst []uint64, mask *Set) []uint64 {
	if mask == nil {
		return append(dst, s.words...)
	}
	for i, w := range s.words {
		if i < len(mask.words) {
			w &^= mask.words[i]
		}
		dst = append(dst, w)
	}
	return dst
}

// Key returns a map key uniquely identifying the set's contents among sets
// of the same capacity. The underlying bytes are copied into the string.
func (s *Set) Key() string {
	if len(s.words) == 0 {
		return ""
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&s.words[0])), len(s.words)*8)
	return string(b)
}

// KeyMasked returns a map key for the set's contents with the bits of
// mask cleared. The search uses it to canonicalise process sets under
// job symmetries: interchangeable processes are masked out of the key
// and re-added as counts.
func (s *Set) KeyMasked(mask *Set) string {
	if len(s.words) == 0 {
		return ""
	}
	buf := make([]byte, len(s.words)*8)
	for i, w := range s.words {
		if i < len(mask.words) {
			w &^= mask.words[i]
		}
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(w >> (8 * b))
		}
	}
	return string(buf)
}

// IntersectCount returns |s ∩ mask|.
func (s *Set) IntersectCount(mask *Set) int {
	n := 0
	for i, w := range s.words {
		if i < len(mask.words) {
			n += bits.OnesCount64(w & mask.words[i])
		}
	}
	return n
}

// SmallestAbsent returns the smallest value in [1, capacity] not in the
// set, or 0 if the set contains all of them. This is how the search finds
// the next *valid level* of the co-scheduling graph: the first level whose
// number does not appear in the sub-path's process set.
func (s *Set) SmallestAbsent(capacity int) int {
	for wi, w := range s.words {
		inv := ^w
		if wi == 0 {
			inv &^= 1 // value 0 is not a member of the domain
		}
		if inv == 0 {
			continue
		}
		v := wi*64 + bits.TrailingZeros64(inv)
		if v > capacity {
			return 0
		}
		return v
	}
	return 0
}

// ForEachAbsent calls fn for every value in [1, capacity] not in the set,
// in ascending order. fn returning false stops the iteration. Runs of
// present values are skipped word-wise (TrailingZeros64 over the inverted
// word), so dense sets — the common case late in a search — cost
// O(words + absences) rather than O(capacity).
func (s *Set) ForEachAbsent(capacity int, fn func(v int) bool) {
	for wi, w := range s.words {
		inv := ^w
		if wi == 0 {
			inv &^= 1 // value 0 is not a member of the domain
		}
		base := wi << 6
		for inv != 0 {
			v := base + bits.TrailingZeros64(inv)
			if v > capacity {
				return
			}
			if !fn(v) {
				return
			}
			inv &= inv - 1 // clear the lowest set bit
		}
	}
}

// AppendAbsent appends every value in [1, capacity] not in the set to dst
// in ascending order and returns the extended slice. Like ForEachAbsent it
// skips present runs word-wise.
func (s *Set) AppendAbsent(capacity int, dst []int) []int {
	for wi, w := range s.words {
		inv := ^w
		if wi == 0 {
			inv &^= 1
		}
		base := wi << 6
		for inv != 0 {
			v := base + bits.TrailingZeros64(inv)
			if v > capacity {
				return dst
			}
			dst = append(dst, v)
			inv &= inv - 1
		}
	}
	return dst
}
