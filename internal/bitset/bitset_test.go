package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(130)
	for _, v := range []int{1, 64, 65, 128, 130} {
		if s.Has(v) {
			t.Errorf("empty set has %d", v)
		}
		s.Add(v)
		if !s.Has(v) {
			t.Errorf("set missing %d after Add", v)
		}
	}
	if got := s.Len(); got != 5 {
		t.Errorf("Len = %d; want 5", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("set has 64 after Remove")
	}
	if got := s.Len(); got != 4 {
		t.Errorf("Len = %d; want 4", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(10)
	s.Add(3)
	c := s.Clone()
	c.Add(7)
	if s.Has(7) {
		t.Error("Clone shares storage")
	}
	if !c.Has(3) {
		t.Error("Clone lost element")
	}
}

func TestKeyUniqueness(t *testing.T) {
	// Property: two sets over the same capacity have equal keys iff they
	// have equal contents.
	f := func(a, b []uint8) bool {
		s1, s2 := New(256), New(256)
		m1, m2 := map[int]bool{}, map[int]bool{}
		for _, v := range a {
			s1.Add(int(v)%256 + 1)
			m1[int(v)%256+1] = true
		}
		for _, v := range b {
			s2.Add(int(v)%256 + 1)
			m2[int(v)%256+1] = true
		}
		same := len(m1) == len(m2)
		if same {
			for k := range m1 {
				if !m2[k] {
					same = false
					break
				}
			}
		}
		return (s1.Key() == s2.Key()) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSmallestAbsent(t *testing.T) {
	s := New(6)
	if got := s.SmallestAbsent(6); got != 1 {
		t.Errorf("SmallestAbsent(empty) = %d; want 1", got)
	}
	s.Add(1)
	s.Add(2)
	s.Add(4)
	if got := s.SmallestAbsent(6); got != 3 {
		t.Errorf("SmallestAbsent = %d; want 3", got)
	}
	for _, v := range []int{3, 5, 6} {
		s.Add(v)
	}
	if got := s.SmallestAbsent(6); got != 0 {
		t.Errorf("SmallestAbsent(full) = %d; want 0", got)
	}
}

func TestSmallestAbsentAcrossWords(t *testing.T) {
	s := New(200)
	for v := 1; v <= 150; v++ {
		s.Add(v)
	}
	if got := s.SmallestAbsent(200); got != 151 {
		t.Errorf("SmallestAbsent = %d; want 151", got)
	}
	for v := 151; v <= 200; v++ {
		s.Add(v)
	}
	if got := s.SmallestAbsent(200); got != 0 {
		t.Errorf("SmallestAbsent(full 200) = %d; want 0", got)
	}
}

func TestForEachAbsentAndAppend(t *testing.T) {
	s := New(8)
	s.Add(2)
	s.Add(5)
	var got []int
	s.ForEachAbsent(8, func(v int) bool {
		got = append(got, v)
		return true
	})
	want := []int{1, 3, 4, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("ForEachAbsent = %v; want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEachAbsent = %v; want %v", got, want)
		}
	}
	// early stop
	count := 0
	s.ForEachAbsent(8, func(v int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early-stopped iteration ran %d times; want 3", count)
	}
	app := s.AppendAbsent(8, []int{99})
	if app[0] != 99 || len(app) != 7 {
		t.Errorf("AppendAbsent = %v", app)
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(500)
	ref := map[int]bool{}
	for op := 0; op < 5000; op++ {
		v := 1 + rng.Intn(500)
		if rng.Intn(2) == 0 {
			s.Add(v)
			ref[v] = true
		} else {
			s.Remove(v)
			delete(ref, v)
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d; want %d", s.Len(), len(ref))
	}
	for v := 1; v <= 500; v++ {
		if s.Has(v) != ref[v] {
			t.Fatalf("Has(%d) = %v; want %v", v, s.Has(v), ref[v])
		}
	}
	// SmallestAbsent agrees with the reference
	want := 0
	for v := 1; v <= 500; v++ {
		if !ref[v] {
			want = v
			break
		}
	}
	if got := s.SmallestAbsent(500); got != want {
		t.Fatalf("SmallestAbsent = %d; want %d", got, want)
	}
}

func TestKeyMaskedAndIntersectCount(t *testing.T) {
	s := New(130)
	for _, v := range []int{1, 5, 64, 100, 129} {
		s.Add(v)
	}
	mask := New(130)
	mask.Add(5)
	mask.Add(100)
	mask.Add(128) // masking an absent bit is a no-op

	// The masked key must equal the key of the set minus the mask.
	want := New(130)
	for _, v := range []int{1, 64, 129} {
		want.Add(v)
	}
	if s.KeyMasked(mask) != want.Key() {
		t.Error("KeyMasked differs from key of the difference set")
	}
	if got := s.IntersectCount(mask); got != 2 {
		t.Errorf("IntersectCount = %d; want 2", got)
	}
	empty := New(130)
	if got := s.IntersectCount(empty); got != 0 {
		t.Errorf("IntersectCount(empty) = %d; want 0", got)
	}
	// Sets differing only inside the mask share a masked key.
	s2 := s.Clone()
	s2.Remove(5)
	s2.Add(100) // already set; still only-masked difference
	if s.KeyMasked(mask) != s2.KeyMasked(mask) {
		t.Error("masked keys differ despite only-masked differences")
	}
	// A difference outside the mask must show.
	s3 := s.Clone()
	s3.Add(2)
	if s.KeyMasked(mask) == s3.KeyMasked(mask) {
		t.Error("masked keys equal despite unmasked difference")
	}
}

// TestForEachAbsentWordBoundaries pins the word-wise iteration (and its
// AppendAbsent twin) at the 64-bit seams, where the TrailingZeros64 walk
// switches words: capacities and members at 63, 64, 65 and 128.
func TestForEachAbsentWordBoundaries(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		members  []int
	}{
		{"cap63-empty", 63, nil},
		{"cap63-edges", 63, []int{1, 63}},
		{"cap64-boundary", 64, []int{63, 64}},
		{"cap64-full", 64, nil}, // filled below
		{"cap65-straddle", 65, []int{64, 65}},
		{"cap65-second-word-only", 65, []int{65}},
		{"cap128-word-ends", 128, []int{1, 63, 64, 65, 127, 128}},
		{"cap128-dense", 128, nil}, // filled below
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.capacity)
			members := tc.members
			switch tc.name {
			case "cap64-full":
				for v := 1; v <= 64; v++ {
					members = append(members, v)
				}
			case "cap128-dense":
				for v := 1; v <= 128; v++ {
					if v != 64 && v != 65 {
						members = append(members, v)
					}
				}
			}
			inSet := map[int]bool{}
			for _, v := range members {
				s.Add(v)
				inSet[v] = true
			}
			var want []int
			for v := 1; v <= tc.capacity; v++ {
				if !inSet[v] {
					want = append(want, v)
				}
			}
			var got []int
			s.ForEachAbsent(tc.capacity, func(v int) bool {
				got = append(got, v)
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("ForEachAbsent = %v; want %v", got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("ForEachAbsent = %v; want %v", got, want)
				}
			}
			app := s.AppendAbsent(tc.capacity, nil)
			if len(app) != len(want) {
				t.Fatalf("AppendAbsent = %v; want %v", app, want)
			}
			for i := range app {
				if app[i] != want[i] {
					t.Fatalf("AppendAbsent = %v; want %v", app, want)
				}
			}
			wantSmallest := 0
			if len(want) > 0 {
				wantSmallest = want[0]
			}
			if got := s.SmallestAbsent(tc.capacity); got != wantSmallest {
				t.Errorf("SmallestAbsent = %d; want %d", got, wantSmallest)
			}
		})
	}
}

// TestForEachAbsentEarlyStopAcrossWords stops the iteration mid-way in the
// second word, proving the early-out fires inside the inner bit loop after
// a word transition.
func TestForEachAbsentEarlyStopAcrossWords(t *testing.T) {
	s := New(128)
	// Absences: 62, 63, 64 (word 0) then 66, 67, ... (word 1).
	for v := 1; v <= 128; v++ {
		if v != 62 && v != 63 && v != 64 && v < 66 {
			s.Add(v)
		}
	}
	var got []int
	s.ForEachAbsent(128, func(v int) bool {
		got = append(got, v)
		return len(got) < 5
	})
	want := []int{62, 63, 64, 66, 67}
	if len(got) != len(want) {
		t.Fatalf("early-stopped ForEachAbsent = %v; want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("early-stopped ForEachAbsent = %v; want %v", got, want)
		}
	}
}

// TestAppendWordsMatchesKeys ties the word-level key primitives to the
// legacy string keys: equal AppendWords output iff equal Key/KeyMasked.
func TestAppendWordsMatchesKeys(t *testing.T) {
	s := New(130)
	for _, v := range []int{1, 64, 65, 100, 129} {
		s.Add(v)
	}
	mask := New(130)
	mask.Add(100)

	words := s.AppendWords(nil, nil)
	if len(words) != (130+64)/64 {
		t.Fatalf("AppendWords length = %d; want %d", len(words), (130+64)/64)
	}
	c := s.Clone()
	cw := c.AppendWords(nil, nil)
	for i := range words {
		if words[i] != cw[i] {
			t.Fatal("AppendWords differs between a set and its clone")
		}
	}
	masked := s.AppendWords(nil, mask)
	diff := s.Clone()
	diff.Remove(100)
	dw := diff.AppendWords(nil, nil)
	for i := range masked {
		if masked[i] != dw[i] {
			t.Fatal("masked AppendWords differs from words of the difference set")
		}
	}

	var other Set
	other.CopyFrom(s) // zero-word destination: no-op by contract shape
	dst := New(130)
	dst.Add(7) // stale content must be overwritten
	dst.CopyFrom(s)
	if dst.Has(7) || !dst.Has(129) || dst.Len() != s.Len() {
		t.Error("CopyFrom did not reproduce the source set")
	}
	dst.Clear()
	if dst.Len() != 0 || dst.SmallestAbsent(130) != 1 {
		t.Error("Clear left members behind")
	}
}

func TestKeyZeroCapacity(t *testing.T) {
	s := New(0)
	if s.Key() != "" && len(s.Key()) == 0 {
		t.Error("unreachable")
	}
	// capacity 0 still allocates one word; Key is stable
	if s.Key() != s.Clone().Key() {
		t.Error("zero-capacity keys unstable")
	}
}
