package sim

import (
	"math"
	"testing"

	"cosched/internal/astar"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
	"cosched/internal/pg"
	"cosched/internal/workload"
)

func constSolo(t float64) SoloTimes {
	return SoloTimeFunc(func(job.ProcID) float64 { return t })
}

func smallInstance(t *testing.T) *workload.Instance {
	t.Helper()
	m := cache.QuadCore
	in, err := workload.SerialInstance(
		[]string{"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP"}, &m)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRunBasics(t *testing.T) {
	in := smallInstance(t)
	c := in.Cost(degradation.ModePC)
	groups := [][]job.ProcID{{1, 2, 3, 4}, {5, 6, 7, 8}}
	res, err := Run(c, SoloTimeFunc(in.SoloTime), groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MachineBusy) != 2 {
		t.Fatalf("machines = %d", len(res.MachineBusy))
	}
	if res.Makespan != math.Max(res.MachineBusy[0], res.MachineBusy[1]) {
		t.Errorf("makespan %v != max machine busy %v", res.Makespan, res.MachineBusy)
	}
	for p := 1; p <= 8; p++ {
		solo := in.SoloTime(job.ProcID(p))
		if res.ProcFinish[p-1] < solo {
			t.Errorf("process %d finished at %v, before its solo time %v", p, res.ProcFinish[p-1], solo)
		}
	}
	if res.TotalSlowdownSeconds <= 0 {
		t.Errorf("total slowdown = %v; co-running should cost time", res.TotalSlowdownSeconds)
	}
	if got := len(res.JobFinish); got != 8 {
		t.Errorf("JobFinish entries = %d; want 8", got)
	}
	if res.MeanJobFinish() <= 0 || res.MeanJobFinish() > res.Makespan {
		t.Errorf("mean job finish %v outside (0, makespan=%v]", res.MeanJobFinish(), res.Makespan)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	in := smallInstance(t)
	c := in.Cost(degradation.ModePC)
	if _, err := Run(c, constSolo(1), [][]job.ProcID{{1, 2, 3, 4}}); err == nil {
		t.Error("partial partition accepted")
	}
	bad := SoloTimeFunc(func(job.ProcID) float64 { return math.NaN() })
	if _, err := Run(c, bad, [][]job.ProcID{{1, 2, 3, 4}, {5, 6, 7, 8}}); err == nil {
		t.Error("NaN solo time accepted")
	}
}

func TestParallelJobFinishIsMaxOverRanks(t *testing.T) {
	m := cache.QuadCore
	spec := workload.NewSpec()
	pcProg, err := workload.PCProgram("MG-Par")
	if err != nil {
		t.Fatal(err)
	}
	jid := spec.AddPC(pcProg, 4, nil)
	for _, n := range []string{"EP", "vpr", "art", "IS"} {
		if _, err := spec.AddSerialByName(n); err != nil {
			t.Fatal(err)
		}
	}
	in, err := spec.Build(&m)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	// Split the MPI job across both machines so ranks see different
	// degradations and communication.
	groups := [][]job.ProcID{{1, 2, 5, 6}, {3, 4, 7, 8}}
	res, err := Run(c, SoloTimeFunc(in.SoloTime), groups)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, p := range in.Batch.Jobs[jid].Procs {
		if f := res.ProcFinish[int(p)-1]; f > worst {
			worst = f
		}
	}
	if math.Abs(res.JobFinish[jid]-worst) > 1e-12 {
		t.Errorf("parallel job finish %v != slowest rank %v", res.JobFinish[jid], worst)
	}
}

func TestImaginaryProcessesTakeNoTime(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SerialInstance([]string{"BT", "CG", "EP"}, &m) // pads to 4
	if err != nil {
		t.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	res, err := Run(c, SoloTimeFunc(in.SoloTime), [][]job.ProcID{{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcFinish[3] != 0 {
		t.Errorf("imaginary process finished at %v; want 0", res.ProcFinish[3])
	}
}

func TestBetterScheduleFinishesSooner(t *testing.T) {
	// End-to-end premise check: the OA* schedule's aggregate slowdown
	// must not exceed PG's when executed.
	for seed := int64(1); seed <= 5; seed++ {
		m := cache.QuadCore
		in, err := workload.SyntheticSerialInstance(12, &m, seed)
		if err != nil {
			t.Fatal(err)
		}
		c := in.Cost(degradation.ModePC)
		g := graph.New(c, nil)
		s, err := astar.NewSolver(g, astar.Options{H: astar.HPerProc, UseIncumbent: true})
		if err != nil {
			t.Fatal(err)
		}
		oa, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		pgRes := pg.Solve(c)
		solo := SoloTimeFunc(in.SoloTime)
		simOA, err := Run(c, solo, oa.Groups)
		if err != nil {
			t.Fatal(err)
		}
		simPG, err := Run(c, solo, pgRes.Groups)
		if err != nil {
			t.Fatal(err)
		}
		if simOA.TotalSlowdownSeconds > simPG.TotalSlowdownSeconds+1e-9 {
			t.Errorf("seed %d: optimal schedule lost more time (%v) than PG (%v)",
				seed, simOA.TotalSlowdownSeconds, simPG.TotalSlowdownSeconds)
		}
	}
}
