// Package sim executes a co-schedule against the machine model and
// reports wall-clock outcomes: per-job finish times, per-machine busy
// times and the batch makespan. It closes the loop the paper's premise
// opens — lower total degradation should mean earlier finishes — and the
// test suite uses it to check exactly that on randomised batches.
//
// The execution model matches the paper's assumptions: all processes of a
// machine start together on their own cores; a process's runtime is its
// solo computation time inflated by its co-run degradation (Eq. 1, plus
// the Eq. 9 communication term for PC processes); a serial job finishes
// with its process; a parallel job finishes when its slowest process
// finishes (§II-B); machines run independently.
package sim

import (
	"fmt"
	"math"

	"cosched/internal/degradation"
	"cosched/internal/job"
)

// SoloTimes supplies each process's stand-alone computation time in
// seconds (ct_i of Eq. 1).
type SoloTimes interface {
	SoloTime(p job.ProcID) float64
}

// SoloTimeFunc adapts a function to the SoloTimes interface.
type SoloTimeFunc func(p job.ProcID) float64

// SoloTime implements SoloTimes.
func (f SoloTimeFunc) SoloTime(p job.ProcID) float64 { return f(p) }

// Result is the outcome of executing one schedule.
type Result struct {
	// ProcFinish[p-1] is the wall-clock finish time of process p.
	ProcFinish []float64
	// JobFinish maps each job to its finish time (max over its
	// processes for parallel jobs).
	JobFinish map[job.JobID]float64
	// MachineBusy[i] is how long machine i stays busy (its slowest
	// core).
	MachineBusy []float64
	// Makespan is the batch completion time.
	Makespan float64
	// TotalSlowdownSeconds is the summed wall-clock time lost to
	// contention and communication versus solo execution, over all
	// processes.
	TotalSlowdownSeconds float64
}

// Run executes the schedule under the cost model. groups must be a valid
// partition for the cost's batch.
func Run(c *degradation.Cost, solo SoloTimes, groups [][]job.ProcID) (*Result, error) {
	if err := c.ValidatePartition(groups); err != nil {
		return nil, err
	}
	b := c.Batch
	n := b.NumProcs()
	res := &Result{
		ProcFinish:  make([]float64, n),
		JobFinish:   make(map[job.JobID]float64, len(b.Jobs)),
		MachineBusy: make([]float64, len(groups)),
	}
	var others [16]job.ProcID
	for mi, g := range groups {
		for i, p := range g {
			if b.Proc(p).Imaginary {
				continue
			}
			st := solo.SoloTime(p)
			if st < 0 || math.IsNaN(st) || math.IsInf(st, 0) {
				return nil, fmt.Errorf("sim: process %d has invalid solo time %v", p, st)
			}
			co := others[:0]
			co = append(co, g[:i]...)
			co = append(co, g[i+1:]...)
			d := c.ProcCost(p, co)
			t := st * (1 + d)
			res.ProcFinish[int(p)-1] = t
			res.TotalSlowdownSeconds += t - st
			if t > res.MachineBusy[mi] {
				res.MachineBusy[mi] = t
			}
			j := b.JobOf(p)
			if j != nil {
				if t > res.JobFinish[j.ID] {
					res.JobFinish[j.ID] = t
				}
			}
		}
		if res.MachineBusy[mi] > res.Makespan {
			res.Makespan = res.MachineBusy[mi]
		}
	}
	return res, nil
}

// MeanJobFinish returns the average job finish time: the batch-level
// responsiveness metric a scheduler's users feel.
func (r *Result) MeanJobFinish() float64 {
	if len(r.JobFinish) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.JobFinish {
		sum += t
	}
	return sum / float64(len(r.JobFinish))
}
