package cache

import "fmt"

// Profile is a stack distance profile (SDP) of one program measured against
// a W-way shared cache, plus the single-run execution parameters the
// CPU-time model (Eq. 14) needs.
//
// Hits[d] is the rate of accesses (per kilocycle of base execution) whose
// LRU stack distance is d+1, i.e. that hit a cache of at least d+1 ways.
// Beyond is the rate of accesses whose stack distance exceeds the
// associativity; those miss even when the program runs alone.
//
// The paper measures these profiles offline with gcc-slo [11]; the workload
// package synthesises them parametrically (see DESIGN.md §3).
type Profile struct {
	Name string
	// Hits[d] = access rate with stack distance d+1, accesses per 1000
	// base cycles. Length equals the shared-cache associativity the
	// profile was taken against.
	Hits []float64
	// Beyond is the rate of compulsory/capacity misses that no cache
	// share avoids.
	Beyond float64
	// BaseCycles is CPU_Clock_Cycle of Eq. 14: the cycles the program
	// spends computing, excluding shared-cache miss stalls.
	BaseCycles float64
}

// Validate reports malformed profiles.
func (p *Profile) Validate() error {
	if len(p.Hits) == 0 {
		return fmt.Errorf("cache: profile %q has no stack distance positions", p.Name)
	}
	for d, h := range p.Hits {
		if h < 0 {
			return fmt.Errorf("cache: profile %q has negative hit rate at distance %d", p.Name, d+1)
		}
	}
	if p.Beyond < 0 {
		return fmt.Errorf("cache: profile %q has negative beyond-rate", p.Name)
	}
	if p.BaseCycles <= 0 {
		return fmt.Errorf("cache: profile %q has non-positive base cycles", p.Name)
	}
	return nil
}

// AccessRate returns the total shared-cache access rate (accesses per
// kilocycle).
func (p *Profile) AccessRate() float64 {
	total := p.Beyond
	for _, h := range p.Hits {
		total += h
	}
	return total
}

// SoloMissRate returns the miss rate (misses per kilocycle) when the
// program has the whole shared cache: only beyond-associativity accesses
// miss.
func (p *Profile) SoloMissRate() float64 { return p.Beyond }

// MissRateWithWays returns the miss rate when the program's effective
// cache share is limited to the given number of ways: every access with a
// stack distance beyond the share misses.
func (p *Profile) MissRateWithWays(ways int) float64 {
	if ways < 0 {
		ways = 0
	}
	if ways > len(p.Hits) {
		ways = len(p.Hits)
	}
	miss := p.Beyond
	for d := ways; d < len(p.Hits); d++ {
		miss += p.Hits[d]
	}
	return miss
}

// MissRatio returns the solo miss ratio: misses over total accesses. The
// synthetic-workload generator draws this from [15%, 75%] as in Fig. 5.
func (p *Profile) MissRatio() float64 {
	acc := p.AccessRate()
	if acc == 0 {
		return 0
	}
	return p.Beyond / acc
}

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	return &Profile{
		Name:       p.Name,
		Hits:       append([]float64(nil), p.Hits...),
		Beyond:     p.Beyond,
		BaseCycles: p.BaseCycles,
	}
}
