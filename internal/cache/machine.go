package cache

import "fmt"

// Machine describes one multicore machine class used in the evaluation.
// The shared cache is the contended resource; private levels only shift
// the base cycle count and are folded into each program's BaseCycles.
type Machine struct {
	Name  string
	Cores int
	// SharedCacheBytes is the capacity of the cache shared by all cores
	// (L2 on the dual-core Core 2, L3 on the i7-2600 and E5-2450L).
	SharedCacheBytes int
	// Ways is the associativity of the shared cache; the SDC model
	// tracks stack distances at way granularity.
	Ways int
	// LineBytes is the cache line size.
	LineBytes int
	// MissPenaltyCycles is the additional latency of a shared-cache miss
	// (Eq. 15's Miss_Penalty).
	MissPenaltyCycles float64
	// ClockGHz converts cycles to seconds (Eq. 14's Clock_Cycle_Time is
	// 1/ClockGHz nanoseconds).
	ClockGHz float64
	// NetworkBandwidth is the inter-machine bandwidth in bytes/second
	// (the evaluation's 10 Gigabit Ethernet).
	NetworkBandwidth float64
}

// Validate reports configuration errors.
func (m *Machine) Validate() error {
	switch {
	case m.Cores < 1:
		return fmt.Errorf("cache: machine %q has %d cores", m.Name, m.Cores)
	case m.SharedCacheBytes <= 0:
		return fmt.Errorf("cache: machine %q has no shared cache", m.Name)
	case m.Ways < 1:
		return fmt.Errorf("cache: machine %q has %d ways", m.Name, m.Ways)
	case m.LineBytes <= 0:
		return fmt.Errorf("cache: machine %q has line size %d", m.Name, m.LineBytes)
	case m.MissPenaltyCycles <= 0:
		return fmt.Errorf("cache: machine %q has non-positive miss penalty", m.Name)
	case m.ClockGHz <= 0:
		return fmt.Errorf("cache: machine %q has non-positive clock", m.Name)
	}
	return nil
}

// Sets returns the number of cache sets of the shared cache.
func (m *Machine) Sets() int {
	return m.SharedCacheBytes / (m.Ways * m.LineBytes)
}

// The three machine classes of the paper's evaluation (§V).
var (
	// DualCore models the Intel Core 2 Duo machine: 4MB 16-way shared L2.
	DualCore = Machine{
		Name:              "dual-core",
		Cores:             2,
		SharedCacheBytes:  4 << 20,
		Ways:              16,
		LineBytes:         64,
		MissPenaltyCycles: 200,
		ClockGHz:          2.4,
		NetworkBandwidth:  10e9 / 8, // 10 GbE in bytes/s
	}
	// QuadCore models the Intel Core i7-2600 machine: 8MB 16-way shared L3.
	QuadCore = Machine{
		Name:              "quad-core",
		Cores:             4,
		SharedCacheBytes:  8 << 20,
		Ways:              16,
		LineBytes:         64,
		MissPenaltyCycles: 220,
		ClockGHz:          3.4,
		NetworkBandwidth:  10e9 / 8,
	}
	// EightCore models the Intel Xeon E5-2450L machine: 20MB 16-way shared L3.
	EightCore = Machine{
		Name:              "8-core",
		Cores:             8,
		SharedCacheBytes:  20 << 20,
		Ways:              16,
		LineBytes:         64,
		MissPenaltyCycles: 240,
		ClockGHz:          1.8,
		NetworkBandwidth:  10e9 / 8,
	}
)

// MachineByCores returns the evaluation machine with the given core count.
func MachineByCores(u int) (Machine, error) {
	switch u {
	case 2:
		return DualCore, nil
	case 4:
		return QuadCore, nil
	case 8:
		return EightCore, nil
	default:
		return Machine{}, fmt.Errorf("cache: no evaluation machine with %d cores", u)
	}
}
