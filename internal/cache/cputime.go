package cache

// CPU-time model of the evaluation (§V, after Patterson & Hennessy [24]):
//
//	CPUTime = (CPU_Clock_Cycle + Memory_Stall_Cycle) × Clock_Cycle_Time   (Eq. 14)
//	Memory_Stall_Cycle = Number_of_Misses × Miss_Penalty                  (Eq. 15)
//
// Profiles store access and miss *rates* per kilocycle of base execution,
// so Number_of_Misses = rate × BaseCycles/1000, and CPUTime scales linearly
// with BaseCycles. Degradations (Eq. 1) are ratios, so the kilocycle
// normalisation cancels.

// SoloCPUTime returns the single-run CPU time of the program in seconds on
// the given machine (Eq. 14 with solo misses).
func SoloCPUTime(m *Machine, p *Profile) float64 {
	return cpuTime(m, p, p.SoloMissRate())
}

// CoRunCPUTime returns the CPU time of the program when its effective
// shared-cache share yields the given miss rate.
func CoRunCPUTime(m *Machine, p *Profile, missRate float64) float64 {
	return cpuTime(m, p, missRate)
}

func cpuTime(m *Machine, p *Profile, missRate float64) float64 {
	misses := missRate * p.BaseCycles / 1000
	cycles := p.BaseCycles + misses*m.MissPenaltyCycles
	return cycles / (m.ClockGHz * 1e9)
}

// CoRunDegradations computes Eq. 1 for every process of a co-running group:
// d = (ct_co - ct_solo) / ct_solo, using SDC-predicted co-run miss rates.
// The result is index-aligned with profiles. A nil profile denotes an
// imaginary (padding) process, which neither suffers nor causes
// degradation; its entry is 0.
func CoRunDegradations(m *Machine, profiles []*Profile) []float64 {
	live := make([]*Profile, 0, len(profiles))
	for _, p := range profiles {
		if p != nil {
			live = append(live, p)
		}
	}
	missRates := CoRunMissRates(m, live)
	out := make([]float64, len(profiles))
	ri := 0
	for i, p := range profiles {
		if p == nil {
			continue
		}
		solo := SoloCPUTime(m, p)
		co := CoRunCPUTime(m, p, missRates[ri])
		ri++
		if solo > 0 {
			out[i] = (co - solo) / solo
		}
	}
	return out
}
