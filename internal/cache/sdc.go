package cache

// Stack Distance Competition (SDC) co-run cache model [14].
//
// When several processes share a cache, SDC builds a merged stack distance
// profile: walking the stack positions of the shared cache from most- to
// least-recently-used, at every position the process with the highest
// remaining hit rate wins the position. After the walk, each process's
// effective cache space is the number of positions it won; accesses whose
// stack distance exceeds that share become misses.

// EffectiveWays runs the SDC competition among the given co-running
// profiles for a cache with the given associativity and returns, for each
// profile, the number of ways it effectively occupies. The returned slice
// is index-aligned with profiles.
//
// Each profile competes with its own hit counters in stack-distance order
// (a process cannot win position d+1 before winning position d, mirroring
// the inclusion property of LRU stacks). Ties are broken toward the
// earlier profile for determinism.
func EffectiveWays(profiles []*Profile, ways int) []int {
	eff := make([]int, len(profiles))
	if ways <= 0 || len(profiles) == 0 {
		return eff
	}
	// next[i] is the stack position profile i competes with next.
	next := make([]int, len(profiles))
	remaining := ways
	// MRU guarantee: a running process always retains at least its
	// most-recently-used way under LRU, so when the cache has enough
	// ways every co-runner with measured reuse is granted one way before
	// the competition. Without this, a low-appetite (compute-bound)
	// process is starved to zero cache by any memory-intensive
	// neighbour, which real hardware does not do.
	if len(profiles) <= ways {
		for i, p := range profiles {
			if len(p.Hits) > 0 {
				eff[i], next[i] = 1, 1
				remaining--
			}
		}
	}
	for pos := 0; pos < remaining; pos++ {
		best := -1
		bestRate := -1.0
		for i, p := range profiles {
			if next[i] >= len(p.Hits) {
				continue
			}
			if r := p.Hits[next[i]]; r > bestRate {
				best, bestRate = i, r
			}
		}
		if best < 0 {
			break // every profile exhausted its measured positions
		}
		eff[best]++
		next[best]++
	}
	return eff
}

// CoRunMissRates predicts the per-process miss rate (misses per kilocycle)
// for the given co-running profiles sharing the machine's cache.
func CoRunMissRates(m *Machine, profiles []*Profile) []float64 {
	eff := EffectiveWays(profiles, m.Ways)
	rates := make([]float64, len(profiles))
	for i, p := range profiles {
		rates[i] = p.MissRateWithWays(eff[i])
	}
	return rates
}
