// Package cache models the shared last-level cache of a multicore machine
// and predicts co-run cache misses with the Stack Distance Competition
// (SDC) model of Chandra et al. [14], exactly the prediction pipeline the
// paper uses to obtain co-run degradations (§V, Eq. 14-15).
//
// The pipeline is:
//
//	per-program stack distance profile (SDP)
//	  --SDC merge-->  effective cache share per co-runner
//	  --Eq. 15---->   memory stall cycles
//	  --Eq. 14---->   co-run CPU time
//	  --Eq. 1----->   degradation
//
// The paper obtains SDPs from the gcc-slo compiler suite and single-run
// counters from perf; this package replaces both with parametric profiles
// (see internal/workload) while keeping the published equations intact.
package cache
