package cache

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniformProfile(name string, rate, beyond, base float64, ways int) *Profile {
	hits := make([]float64, ways)
	for i := range hits {
		hits[i] = rate
	}
	return &Profile{Name: name, Hits: hits, Beyond: beyond, BaseCycles: base}
}

func TestMachinePresetsValidate(t *testing.T) {
	for _, m := range []Machine{DualCore, QuadCore, EightCore} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if m.Sets() <= 0 {
			t.Errorf("%s: Sets() = %d", m.Name, m.Sets())
		}
	}
}

func TestMachineByCores(t *testing.T) {
	for _, u := range []int{2, 4, 8} {
		m, err := MachineByCores(u)
		if err != nil {
			t.Fatalf("MachineByCores(%d): %v", u, err)
		}
		if m.Cores != u {
			t.Errorf("MachineByCores(%d).Cores = %d", u, m.Cores)
		}
	}
	if _, err := MachineByCores(3); err == nil {
		t.Error("MachineByCores(3) accepted")
	}
}

func TestMachineValidateRejects(t *testing.T) {
	bad := []Machine{
		{Name: "c", Cores: 0, SharedCacheBytes: 1, Ways: 1, LineBytes: 1, MissPenaltyCycles: 1, ClockGHz: 1},
		{Name: "c", Cores: 1, SharedCacheBytes: 0, Ways: 1, LineBytes: 1, MissPenaltyCycles: 1, ClockGHz: 1},
		{Name: "c", Cores: 1, SharedCacheBytes: 1, Ways: 0, LineBytes: 1, MissPenaltyCycles: 1, ClockGHz: 1},
		{Name: "c", Cores: 1, SharedCacheBytes: 1, Ways: 1, LineBytes: 0, MissPenaltyCycles: 1, ClockGHz: 1},
		{Name: "c", Cores: 1, SharedCacheBytes: 1, Ways: 1, LineBytes: 1, MissPenaltyCycles: 0, ClockGHz: 1},
		{Name: "c", Cores: 1, SharedCacheBytes: 1, Ways: 1, LineBytes: 1, MissPenaltyCycles: 1, ClockGHz: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, m)
		}
	}
}

func TestProfileMissRates(t *testing.T) {
	p := uniformProfile("p", 1, 4, 1e9, 8) // 8 hits spread evenly, 4 beyond
	if got := p.AccessRate(); got != 12 {
		t.Errorf("AccessRate = %v; want 12", got)
	}
	if got := p.SoloMissRate(); got != 4 {
		t.Errorf("SoloMissRate = %v; want 4", got)
	}
	if got := p.MissRateWithWays(8); got != 4 {
		t.Errorf("MissRateWithWays(all) = %v; want 4", got)
	}
	if got := p.MissRateWithWays(0); got != 12 {
		t.Errorf("MissRateWithWays(0) = %v; want 12 (everything misses)", got)
	}
	if got := p.MissRateWithWays(5); got != 7 {
		t.Errorf("MissRateWithWays(5) = %v; want 7", got)
	}
	// out-of-range clamping
	if got := p.MissRateWithWays(-3); got != 12 {
		t.Errorf("MissRateWithWays(-3) = %v; want 12", got)
	}
	if got := p.MissRateWithWays(99); got != 4 {
		t.Errorf("MissRateWithWays(99) = %v; want 4", got)
	}
	if got := p.MissRatio(); math.Abs(got-4.0/12.0) > 1e-12 {
		t.Errorf("MissRatio = %v; want 1/3", got)
	}
}

func TestProfileMissRateMonotoneInWays(t *testing.T) {
	// Property: more cache never increases the miss rate.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		ways := 1 + rng.Intn(16)
		hits := make([]float64, ways)
		for i := range hits {
			hits[i] = rng.Float64() * 10
		}
		p := &Profile{Name: "r", Hits: hits, Beyond: rng.Float64() * 10, BaseCycles: 1e9}
		prev := p.MissRateWithWays(0)
		for w := 1; w <= ways; w++ {
			cur := p.MissRateWithWays(w)
			if cur > prev+1e-12 {
				t.Fatalf("miss rate increased from %v to %v at %d ways", prev, cur, w)
			}
			prev = cur
		}
	}
}

func TestProfileValidate(t *testing.T) {
	good := uniformProfile("g", 1, 1, 1e9, 4)
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	bad := []*Profile{
		{Name: "no positions", BaseCycles: 1},
		{Name: "neg hit", Hits: []float64{-1}, BaseCycles: 1},
		{Name: "neg beyond", Hits: []float64{1}, Beyond: -1, BaseCycles: 1},
		{Name: "no cycles", Hits: []float64{1}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %q", p.Name)
		}
	}
}

func TestProfileClone(t *testing.T) {
	p := uniformProfile("p", 1, 2, 1e9, 4)
	q := p.Clone()
	q.Hits[0] = 99
	q.Beyond = 99
	if p.Hits[0] == 99 || p.Beyond == 99 {
		t.Error("Clone shares state with original")
	}
}

func TestEffectiveWaysSoloGetsEverythingItCanUse(t *testing.T) {
	p := uniformProfile("p", 1, 0, 1e9, 8)
	eff := EffectiveWays([]*Profile{p}, 16)
	if eff[0] != 8 {
		t.Errorf("solo effective ways = %d; want 8 (all measured positions)", eff[0])
	}
}

func TestEffectiveWaysSumBounded(t *testing.T) {
	// Property: total awarded ways never exceed the associativity, and
	// no process wins more positions than it has counters.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprofiles := 1 + rng.Intn(4)
		ways := 1 + rng.Intn(16)
		ps := make([]*Profile, nprofiles)
		for i := range ps {
			n := 1 + rng.Intn(16)
			hits := make([]float64, n)
			for j := range hits {
				hits[j] = rng.Float64()
			}
			ps[i] = &Profile{Name: "x", Hits: hits, Beyond: rng.Float64(), BaseCycles: 1e9}
		}
		eff := EffectiveWays(ps, ways)
		total := 0
		for i, e := range eff {
			if e < 0 || e > len(ps[i].Hits) {
				return false
			}
			total += e
		}
		return total <= ways
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveWaysHungrierProcessWinsMore(t *testing.T) {
	hungry := uniformProfile("hungry", 10, 0, 1e9, 16)
	modest := uniformProfile("modest", 1, 0, 1e9, 16)
	eff := EffectiveWays([]*Profile{hungry, modest}, 16)
	if eff[0] <= eff[1] {
		t.Errorf("effective ways: hungry=%d modest=%d; hungry should win more", eff[0], eff[1])
	}
	if eff[0]+eff[1] != 16 {
		t.Errorf("total ways = %d; want 16", eff[0]+eff[1])
	}
}

func TestEffectiveWaysDegenerate(t *testing.T) {
	if got := EffectiveWays(nil, 16); len(got) != 0 {
		t.Errorf("EffectiveWays(nil) = %v", got)
	}
	p := uniformProfile("p", 1, 0, 1e9, 8)
	if got := EffectiveWays([]*Profile{p}, 0); got[0] != 0 {
		t.Errorf("EffectiveWays with 0 ways = %v", got)
	}
}

func TestCPUTimeModel(t *testing.T) {
	m := &Machine{Name: "m", Cores: 2, SharedCacheBytes: 1 << 20, Ways: 4,
		LineBytes: 64, MissPenaltyCycles: 100, ClockGHz: 1}
	p := uniformProfile("p", 1, 2, 1e9, 4) // 2 misses per kilocycle solo
	// misses = 2 * 1e9/1000 = 2e6; cycles = 1e9 + 2e6*100 = 1.2e9; at 1GHz = 1.2s
	if got := SoloCPUTime(m, p); math.Abs(got-1.2) > 1e-9 {
		t.Errorf("SoloCPUTime = %v; want 1.2", got)
	}
	// with all 6 accesses missing: misses = 6e6, cycles = 1.6e9
	if got := CoRunCPUTime(m, p, 6); math.Abs(got-1.6) > 1e-9 {
		t.Errorf("CoRunCPUTime = %v; want 1.6", got)
	}
}

func TestCoRunDegradationsSoloIsZero(t *testing.T) {
	m := &QuadCore
	p := uniformProfile("p", 1, 2, 1e9, m.Ways)
	d := CoRunDegradations(m, []*Profile{p})
	if d[0] != 0 {
		t.Errorf("solo degradation = %v; want 0", d[0])
	}
}

func TestCoRunDegradationsNonNegativeAndSymmetricSetup(t *testing.T) {
	m := &QuadCore
	a := uniformProfile("a", 8, 3, 1e9, m.Ways)
	b := uniformProfile("b", 6, 2, 2e9, m.Ways)
	d := CoRunDegradations(m, []*Profile{a, b})
	for i, v := range d {
		if v < 0 {
			t.Errorf("degradation[%d] = %v; want >= 0", i, v)
		}
	}
	// order of profiles must not change per-program results
	d2 := CoRunDegradations(m, []*Profile{b, a})
	if math.Abs(d[0]-d2[1]) > 1e-12 || math.Abs(d[1]-d2[0]) > 1e-12 {
		t.Errorf("degradations depend on argument order: %v vs %v", d, d2)
	}
}

func TestCoRunDegradationsNilProfileIsImaginary(t *testing.T) {
	m := &QuadCore
	a := uniformProfile("a", 8, 3, 1e9, m.Ways)
	d := CoRunDegradations(m, []*Profile{a, nil, nil, nil})
	if d[0] != 0 {
		t.Errorf("degradation with only imaginary co-runners = %v; want 0", d[0])
	}
	for _, v := range d[1:] {
		if v != 0 {
			t.Errorf("imaginary process degradation = %v; want 0", v)
		}
	}
}

func TestCoRunDegradationsMoreCoRunnersNeverHelp(t *testing.T) {
	// Property: adding a co-runner cannot decrease a process's
	// degradation (the SDC share can only shrink).
	m := &QuadCore
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		mk := func() *Profile {
			hits := make([]float64, m.Ways)
			for i := range hits {
				hits[i] = rng.Float64() * 5
			}
			return &Profile{Name: "r", Hits: hits, Beyond: rng.Float64() * 5, BaseCycles: 1e9}
		}
		target, b, c := mk(), mk(), mk()
		d2 := CoRunDegradations(m, []*Profile{target, b})[0]
		d3 := CoRunDegradations(m, []*Profile{target, b, c})[0]
		if d3 < d2-1e-12 {
			t.Fatalf("degradation dropped from %v to %v when adding a co-runner", d2, d3)
		}
	}
}
