package ip

import (
	"fmt"

	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
)

// parTerm is the contribution of one parallel process inside one column to
// its job's y constraint.
type parTerm struct {
	jobIdx int // dense parallel-job index
	d      float64
}

// Column is one candidate machine assignment: a u-cardinality process set
// with its objective decomposition.
type Column struct {
	Procs []job.ProcID
	// SerialCost is the summed degradation of the column's serial
	// processes (all processes under ModeSE).
	SerialCost float64
	parTerms   []parTerm
}

// Model is the complete 0-1 program for one batch.
type Model struct {
	Cost    *degradation.Cost
	Columns []Column
	// ParJobs lists the parallel jobs (y variables), in dense order.
	ParJobs []job.JobID
	// colsByProc[i] lists the column indices containing process i+1.
	colsByProc [][]int
}

// MaxColumns guards the column enumeration: C(n,u) beyond this is a sign
// the instance belongs to the graph-based methods (the paper's IP solvers
// give up beyond 24 processes too).
const MaxColumns = 3_000_000

// BuildModel enumerates all u-subsets and prices them under the cost
// model.
func BuildModel(c *degradation.Cost) (*Model, error) {
	b := c.Batch
	n := b.NumProcs()
	u := b.Cores
	if total := graph.Binomial(n, u); total > MaxColumns {
		return nil, fmt.Errorf("ip: C(%d,%d) = %d columns exceed the model guard (%d)", n, u, total, MaxColumns)
	}
	m := &Model{Cost: c}
	useY := c.Mode != degradation.ModeSE
	parIdx := make(map[job.JobID]int)
	if useY {
		for _, jid := range b.ParallelJobs() {
			parIdx[jid] = len(m.ParJobs)
			m.ParJobs = append(m.ParJobs, jid)
		}
	}
	m.colsByProc = make([][]int, n)

	procs := make([]job.ProcID, u)
	idx := make([]int, u)
	for i := range idx {
		idx[i] = i
	}
	var others [16]job.ProcID
	for {
		for i, ai := range idx {
			procs[i] = job.ProcID(ai + 1)
		}
		col := Column{Procs: append([]job.ProcID(nil), procs...)}
		for i, p := range procs {
			co := others[:0]
			co = append(co, procs[:i]...)
			co = append(co, procs[i+1:]...)
			d := c.ProcCost(p, co)
			j := b.JobOf(p)
			if !useY || j == nil || j.Kind == job.Serial {
				col.SerialCost += d
			} else {
				col.parTerms = append(col.parTerms, parTerm{jobIdx: parIdx[j.ID], d: d})
			}
		}
		ci := len(m.Columns)
		m.Columns = append(m.Columns, col)
		for _, p := range procs {
			m.colsByProc[int(p)-1] = append(m.colsByProc[int(p)-1], ci)
		}
		// next combination of n choose u
		i := u - 1
		for i >= 0 && idx[i] == n-u+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < u; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return m, nil
}

// NumVars returns the LP variable count: columns plus y variables.
func (m *Model) NumVars() int { return len(m.Columns) + len(m.ParJobs) }

// Groups decodes a 0-1 column selection into a schedule.
func (m *Model) Groups(selected []int) [][]job.ProcID {
	groups := make([][]job.ProcID, 0, len(selected))
	for _, ci := range selected {
		groups = append(groups, append([]job.ProcID(nil), m.Columns[ci].Procs...))
	}
	return groups
}
