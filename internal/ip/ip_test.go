package ip

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"cosched/internal/abort"
	"cosched/internal/bruteforce"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/telemetry"
	"cosched/internal/workload"
)

func buildCost(t *testing.T, n, u int, seed int64, mode degradation.Mode) *degradation.Cost {
	t.Helper()
	m, err := cache.MachineByCores(u)
	if err != nil {
		t.Fatal(err)
	}
	in, err := workload.SyntheticSerialInstance(n, &m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in.Cost(mode)
}

func buildMixedCost(t *testing.T, total, parJobs, per, u int, seed int64) *degradation.Cost {
	t.Helper()
	m, err := cache.MachineByCores(u)
	if err != nil {
		t.Fatal(err)
	}
	in, err := workload.SyntheticMixedInstance(total, parJobs, per, &m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in.Cost(degradation.ModePC)
}

func TestModelColumnCount(t *testing.T) {
	c := buildCost(t, 8, 2, 1, degradation.ModePC)
	m, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Columns); got != 28 { // C(8,2)
		t.Errorf("columns = %d; want 28", got)
	}
	if m.NumVars() != 28 { // serial batch: no y variables
		t.Errorf("NumVars = %d; want 28", m.NumVars())
	}
	for i, cols := range m.colsByProc {
		if len(cols) != 7 { // each process appears in C(7,1) columns
			t.Errorf("process %d appears in %d columns; want 7", i+1, len(cols))
		}
	}
}

func TestModelGuard(t *testing.T) {
	c := buildCost(t, 48, 8, 1, degradation.ModePC)
	if _, err := BuildModel(c); err == nil {
		t.Error("model guard did not trip on C(48,8)")
	}
}

func TestSolveMatchesBruteForceSerial(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := buildCost(t, 8, 2, seed, degradation.ModePC)
		m, err := BuildModel(c)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := bruteforce.Solve(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range Configs() {
			res, err := Solve(m, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %s: %v", seed, cfg.Name, err)
			}
			if !res.Optimal {
				t.Fatalf("seed %d cfg %s: not optimal", seed, cfg.Name)
			}
			if err := c.ValidatePartition(res.Groups); err != nil {
				t.Fatalf("seed %d cfg %s: %v", seed, cfg.Name, err)
			}
			if math.Abs(res.Cost-bf.Cost) > 1e-6 {
				t.Errorf("seed %d cfg %s: IP %v != optimum %v", seed, cfg.Name, res.Cost, bf.Cost)
			}
		}
	}
}

func TestSolveMatchesBruteForceQuadSerial(t *testing.T) {
	c := buildCost(t, 12, 4, 2, degradation.ModePC)
	m, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := bruteforce.Solve(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(m, ConfigA)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-bf.Cost) > 1e-6 {
		t.Errorf("IP %v != optimum %v", res.Cost, bf.Cost)
	}
}

func TestSolveMatchesBruteForceMixed(t *testing.T) {
	// The Eq. 7-8 y-linearisation must reproduce the per-job max
	// objective exactly.
	for seed := int64(1); seed <= 3; seed++ {
		c := buildMixedCost(t, 8, 1, 4, 2, seed)
		m, err := BuildModel(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.ParJobs) != 1 {
			t.Fatalf("parallel jobs = %d; want 1", len(m.ParJobs))
		}
		bf, err := bruteforce.Solve(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{ConfigA, ConfigD} {
			res, err := Solve(m, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %s: %v", seed, cfg.Name, err)
			}
			if math.Abs(res.Cost-bf.Cost) > 1e-6 {
				t.Errorf("seed %d cfg %s: IP %v != optimum %v", seed, cfg.Name, res.Cost, bf.Cost)
			}
		}
	}
}

func TestSolveMixedQuadCore(t *testing.T) {
	c := buildMixedCost(t, 12, 2, 3, 4, 5)
	m, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := bruteforce.Solve(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(m, ConfigA)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-bf.Cost) > 1e-6 {
		t.Errorf("IP %v != optimum %v", res.Cost, bf.Cost)
	}
}

func TestTimeLimit(t *testing.T) {
	c := buildCost(t, 16, 4, 1, degradation.ModePC)
	m, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConfigD
	cfg.TimeLimit = 1 * time.Nanosecond
	res, err := Solve(m, cfg)
	// Either it found nothing in time (error) or returned a non-optimal
	// incumbent; both must flag the timeout.
	if err == nil && res.Optimal {
		t.Error("nanosecond time limit produced a claimed-optimal result")
	}
}

func TestMaxNodes(t *testing.T) {
	c := buildCost(t, 12, 4, 3, degradation.ModePC)
	m, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConfigA
	cfg.MaxNodes = 1
	res, err := Solve(m, cfg)
	if err != nil {
		// acceptable: no feasible solution within one node
		return
	}
	if res.Stats.Nodes > 1 {
		t.Errorf("node limit ignored: %d nodes", res.Stats.Nodes)
	}
}

// TestSolveEmitsTraceEvents pins the branch-and-bound trace contract:
// the stream opens with solve_start (method "ip:<config>"), carries one
// monotone non-increasing incumbent event per bound improvement, and
// closes with stats + solution whose counters and cost match the Result.
func TestSolveEmitsTraceEvents(t *testing.T) {
	c := buildCost(t, 8, 2, 3, degradation.ModePC)
	m, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := ConfigA
	cfg.Events = telemetry.NewEventWriter(&buf)
	res, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}

	events, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("trace too short: %v", events)
	}
	first, last := events[0], events[len(events)-1]
	if first.Ev != "solve_start" || first.Method != "ip:bnb-best+round" || first.N != 8 {
		t.Errorf("bad solve_start: %+v", first)
	}
	if first.SolveID == 0 {
		t.Error("solve_id not self-assigned")
	}
	if last.Ev != "solution" || math.Abs(last.Cost-res.Cost) > 1e-9 {
		t.Errorf("bad solution event: %+v (want cost %v)", last, res.Cost)
	}
	prevIncumbent := math.Inf(1)
	improvements := int64(0)
	var statsEv *telemetry.Event
	for i, ev := range events {
		if ev.SolveID != first.SolveID {
			t.Fatalf("event %d solve_id %d != %d", i, ev.SolveID, first.SolveID)
		}
		switch ev.Ev {
		case "incumbent":
			improvements++
			if ev.Cost > prevIncumbent+1e-12 {
				t.Errorf("incumbent worsened: %v after %v", ev.Cost, prevIncumbent)
			}
			prevIncumbent = ev.Cost
		case "stats":
			statsEv = &events[i]
		}
	}
	if improvements != res.Stats.BoundImprovements {
		t.Errorf("trace has %d incumbent events, Stats counted %d", improvements, res.Stats.BoundImprovements)
	}
	if statsEv == nil || statsEv.Nodes != res.Stats.Nodes || statsEv.LPIters != res.Stats.LPIters {
		t.Errorf("stats event %+v disagrees with Stats %+v", statsEv, res.Stats)
	}
}

func TestConfigsOrder(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 4 {
		t.Fatalf("configs = %d; want 4", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		if names[c.Name] {
			t.Errorf("duplicate config name %q", c.Name)
		}
		names[c.Name] = true
	}
}

// TestAbortContext covers the anytime contract for branch-and-bound:
// an already-done context — cancelled or past its deadline — must yield
// a valid degraded partition immediately, never an error.
func TestAbortContext(t *testing.T) {
	c := buildCost(t, 12, 4, 1, degradation.ModePC)
	m, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	expired, cancelExp := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelExp()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		ctx  context.Context
		want abort.Reason
	}{
		{"expired", expired, abort.Deadline},
		{"cancelled", cancelled, abort.Cancel},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ConfigA
			cfg.Ctx = tc.ctx
			res, err := Solve(m, cfg)
			if err != nil {
				t.Fatalf("aborted solve errored instead of degrading: %v", err)
			}
			if !res.Stats.Degraded || res.Stats.Aborted != tc.want {
				t.Errorf("stats not flagged degraded/%v: %+v", tc.want, res.Stats)
			}
			if !res.Stats.TimedOut {
				t.Error("TimedOut compat flag not set on aborted solve")
			}
			if res.Optimal {
				t.Error("aborted solve claims optimality")
			}
			if err := c.ValidatePartition(res.Groups); err != nil {
				t.Errorf("degraded partition invalid: %v", err)
			}
		})
	}
}

// TestAbortNodeCapDegrades pins the new MaxNodes semantics: the node cap
// degrades instead of erroring, carries reason "expansions", and the
// trace ends with an abort event the solution repeats.
func TestAbortNodeCapDegrades(t *testing.T) {
	// Seed 1 needs 9 branch-and-bound nodes under ConfigA, so a cap of
	// one is guaranteed to bite.
	c := buildCost(t, 12, 4, 1, degradation.ModePC)
	m, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := ConfigA
	cfg.MaxNodes = 1
	cfg.Events = telemetry.NewEventWriter(&buf)
	res, err := Solve(m, cfg)
	if err != nil {
		t.Fatalf("node-capped solve errored instead of degrading: %v", err)
	}
	if !res.Stats.Degraded || res.Stats.Aborted != abort.Expansions {
		t.Errorf("stats not flagged degraded/expansions: %+v", res.Stats)
	}
	if err := c.ValidatePartition(res.Groups); err != nil {
		t.Errorf("degraded partition invalid: %v", err)
	}
	evs, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var abortReason, solReason string
	for _, ev := range evs {
		switch ev.Ev {
		case "abort":
			abortReason = ev.Reason
		case "solution":
			solReason = ev.Reason
		}
	}
	if abortReason != "expansions" || solReason != "expansions" {
		t.Errorf("trace abort/solution reasons = %q/%q; want expansions/expansions", abortReason, solReason)
	}
}
