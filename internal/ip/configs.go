package ip

import (
	"context"
	"time"

	"cosched/internal/telemetry"
)

// Config selects the branch-and-bound behaviour. The four presets below
// stand in for the four IP solvers the paper benchmarks in Table III
// (CPLEX, CBC, SCIP, GLPK): one shared core, four points on the
// sophistication scale, so the table's qualitative ordering — commercial
// solver fastest, basic solver slowest, all of them far behind OA* — can
// be reproduced without proprietary software (DESIGN.md §3).
type Config struct {
	Name string
	// BestFirst explores nodes in LP-bound order; false means
	// depth-first.
	BestFirst bool
	// MostFractional branches on the most fractional column; false
	// means first-fractional (Bland-style).
	MostFractional bool
	// Rounding derives incumbents from fractional LPs, tightening
	// pruning early.
	Rounding bool
	// TimeLimit aborts the search (0 = none); the paper's SCIP runs
	// gave up at 1000 seconds the same way.
	TimeLimit time.Duration
	// MaxNodes aborts after this many branch-and-bound nodes (0 =
	// none).
	MaxNodes int64
	// Ctx, when non-nil, is polled once per branch-and-bound node: a
	// cancelled or expired context aborts the solve promptly and returns
	// the incumbent as a degraded result (Stats.Aborted).
	Ctx context.Context
	// LPIterLimit caps simplex pivots per relaxation (0 = default).
	LPIterLimit int
	// Metrics, when non-nil, receives live branch-and-bound telemetry:
	// the "ip.*" counters and gauges catalogued in DESIGN.md §6 (nodes,
	// LP pivots, bound improvements, incumbent value). Deltas are
	// flushed every few hundred nodes, so the per-node cost is nil
	// checks only.
	Metrics *telemetry.Registry
	// Events, when non-nil, receives the trace-event stream of the solve
	// (solve_start, incumbent improvements, final stats, solution) so IP
	// runs land in the same JSONL traces the graph searches produce and
	// cmd/coschedtrace can account for them.
	Events telemetry.EventSink
	// SolveID tags the emitted events; zero lets the solver assign one
	// from telemetry.NextSolveID. Epoch is the monotonic origin for the
	// events' t_ms stamps; zero starts a fresh clock at Solve. cosched
	// threads its per-call id and span epoch through both.
	SolveID uint64
	Epoch   time.Time
}

// The four preset configurations, strongest first.
var (
	// ConfigA — best-first, most-fractional branching, LP rounding: the
	// "commercial solver" stand-in (CPLEX row of Table III).
	ConfigA = Config{Name: "bnb-best+round", BestFirst: true, MostFractional: true, Rounding: true}
	// ConfigB — best-first without the rounding heuristic (CBC row).
	ConfigB = Config{Name: "bnb-best", BestFirst: true, MostFractional: true}
	// ConfigC — depth-first with most-fractional branching (SCIP row).
	ConfigC = Config{Name: "bnb-depth", BestFirst: false, MostFractional: true}
	// ConfigD — depth-first, first-fractional, no heuristics: the
	// baseline solver stand-in (GLPK row).
	ConfigD = Config{Name: "bnb-basic", BestFirst: false, MostFractional: false}
)

// Configs lists the presets in Table III column order.
func Configs() []Config { return []Config{ConfigA, ConfigB, ConfigC, ConfigD} }
