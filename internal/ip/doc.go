// Package ip implements the paper's Integer-Programming method (§II): the
// co-scheduling problem is modelled as a 0-1 program and solved exactly by
// branch-and-bound over LP relaxations.
//
// The formulation is the set-partitioning equivalent of Eq. 2-8: one
// binary variable z_T per u-cardinality process set T (one candidate
// machine assignment), partition constraints Σ_{T∋i} z_T = 1 for every
// process i, and — for a mix of serial and parallel jobs — one continuous
// auxiliary variable y_j per parallel job that linearises the max of
// Eq. 5/6 via y_j ≥ Σ_{T∋i} d(i,T\{i})·z_T for each of the job's
// processes i (Eq. 7-8). Serial degradations are charged on the columns,
// parallel ones through the y variables; at the optimum each y_j equals
// the job's largest degradation, exactly Eq. 6.
//
// The paper benchmarks CPLEX, CBC, SCIP and GLPK on this model (§V-D);
// this package provides one pure-Go branch-and-bound core with four
// configurations spanning the same sophistication range (see configs.go
// and DESIGN.md §3).
package ip
