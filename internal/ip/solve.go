package ip

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"cosched/internal/abort"
	"cosched/internal/job"
	"cosched/internal/lp"
	"cosched/internal/telemetry"
)

// Stats reports branch-and-bound effort.
type Stats struct {
	// Nodes counts branch-and-bound nodes whose LP relaxation was
	// solved (nodes pruned against the incumbent before relaxation are
	// not counted).
	Nodes int64
	// LPIters is the total simplex pivots across all relaxations.
	LPIters int64
	// BoundImprovements counts incumbent updates: integral LP solutions
	// and rounding-heuristic schedules that beat the previous best.
	BoundImprovements int64
	// Duration is the wall-clock solving time.
	Duration time.Duration
	// TimedOut reports whether any budget (TimeLimit, MaxNodes, or a
	// done Ctx) cut the search short (the Result then carries the best
	// incumbent, not a proven optimum). Kept alongside the richer
	// Degraded/Aborted pair for the pre-anytime API surface.
	TimedOut bool
	// Degraded mirrors TimedOut in the anytime vocabulary every solver
	// shares; Aborted carries the reason (deadline, cancel, expansions
	// for the node cap).
	Degraded bool
	Aborted  abort.Reason
}

// ipMetrics caches the registry handles of the ip.* metric family.
type ipMetrics struct {
	reg                                           *telemetry.Registry
	solves, nodes, lpIters, improvements, solveNS *telemetry.Counter
	incumbent                                     *telemetry.FloatGauge
	last                                          Stats
}

// ipFlushEvery is the node interval between registry flushes.
const ipFlushEvery = 128

func newIPMetrics(r *telemetry.Registry) *ipMetrics {
	if r == nil {
		return nil
	}
	m := &ipMetrics{
		reg:          r,
		solves:       r.Counter("ip.solves"),
		nodes:        r.Counter("ip.nodes"),
		lpIters:      r.Counter("ip.lp_iters"),
		improvements: r.Counter("ip.bound_improvements"),
		solveNS:      r.Counter("ip.solve_ns"),
		incumbent:    r.FloatGauge("ip.incumbent"),
	}
	m.solves.Add(1)
	return m
}

func (m *ipMetrics) flush(st *Stats, incumbent float64) {
	if m == nil {
		return
	}
	m.nodes.Add(st.Nodes - m.last.Nodes)
	m.lpIters.Add(st.LPIters - m.last.LPIters)
	m.improvements.Add(st.BoundImprovements - m.last.BoundImprovements)
	m.last = *st
	if !math.IsInf(incumbent, 1) {
		m.incumbent.Set(incumbent)
	}
}

func (m *ipMetrics) finish(st *Stats, incumbent float64) {
	if m == nil {
		return
	}
	m.flush(st, incumbent)
	m.solveNS.Add(st.Duration.Nanoseconds())
}

// abortCounter bumps ip.aborts.<reason> — at most once per solve, off
// the per-node path, so the on-demand handle lookup is fine.
func (m *ipMetrics) abortCounter(r abort.Reason) {
	if m == nil {
		return
	}
	m.reg.Counter("ip.aborts." + r.String()).Add(1)
}

// ipEvents is the trace-event side of the IP telemetry: one solve_start,
// an incumbent event per bound improvement, and the closing stats +
// solution pair, all stamped with the solve id and the shared monotonic
// clock. A nil *ipEvents (Config.Events unset) disables everything.
type ipEvents struct {
	sink    telemetry.EventSink
	solveID uint64
	epoch   time.Time
	// abortReason remembers the abort event's reason so the solution
	// event repeats it (the tracetool abort-reason invariant).
	abortReason string
}

func newIPEvents(cfg *Config, n int) *ipEvents {
	if cfg.Events == nil {
		return nil
	}
	e := &ipEvents{sink: cfg.Events, solveID: cfg.SolveID, epoch: cfg.Epoch}
	if e.solveID == 0 {
		e.solveID = telemetry.NextSolveID()
	}
	if e.epoch.IsZero() {
		e.epoch = time.Now()
	}
	e.emit(telemetry.Event{Ev: "solve_start", N: n, Method: "ip:" + cfg.Name})
	return e
}

func (e *ipEvents) emit(ev telemetry.Event) {
	if e == nil {
		return
	}
	ev.SolveID = e.solveID
	ev.TMS = float64(time.Since(e.epoch)) / float64(time.Millisecond)
	e.sink.Emit(ev) //nolint:errcheck
}

// incumbent records a bound improvement (Pop carries the node count at
// which it happened, mirroring the graph searches' expansion index).
func (e *ipEvents) incumbent(cost float64, nodes int64) {
	if e == nil {
		return
	}
	e.emit(telemetry.Event{Ev: "incumbent", Cost: cost, Pop: nodes})
}

// abortEvent records an early stop: one "abort" event carrying the node
// count and the reason, which the closing solution event repeats.
func (e *ipEvents) abortEvent(nodes int64, reason string) {
	if e == nil {
		return
	}
	e.abortReason = reason
	e.emit(telemetry.Event{Ev: "abort", Pop: nodes, Reason: reason})
}

// finish closes the trace: the final accounting, the solution when one
// exists (degraded solves repeat the abort reason on it), and a sink
// flush.
func (e *ipEvents) finish(st *Stats, cost float64, groups [][]job.ProcID) {
	if e == nil {
		return
	}
	e.emit(telemetry.Event{Ev: "stats", Nodes: st.Nodes, LPIters: st.LPIters})
	if groups != nil {
		ints := make([][]int, len(groups))
		for i, g := range groups {
			ints[i] = make([]int, len(g))
			for j, p := range g {
				ints[i][j] = int(p)
			}
		}
		e.emit(telemetry.Event{Ev: "solution", Cost: cost, Groups: ints, Pop: st.Nodes, Reason: e.abortReason})
	}
	telemetry.FlushSink(e.sink) //nolint:errcheck
}

// Result is an exact (or best-found, if timed out) IP solution.
type Result struct {
	Groups  [][]job.ProcID
	Cost    float64
	Optimal bool
	Stats   Stats
}

// bbNode is one branch-and-bound node: a set of branching decisions.
type bbNode struct {
	bound  float64
	depth  int
	fixed0 []int // columns forced to 0
	fixed1 []int // columns forced to 1
	seq    int64
}

type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

const intTol = 1e-6

// Solve runs branch-and-bound under the given configuration.
func Solve(m *Model, cfg Config) (*Result, error) {
	start := time.Now()
	var stats Stats
	deadline := time.Time{}
	if cfg.TimeLimit > 0 {
		deadline = start.Add(cfg.TimeLimit)
	}

	incumbent := math.Inf(1)
	var incumbentSel []int
	met := newIPMetrics(cfg.Metrics)
	evs := newIPEvents(&cfg, m.Cost.Batch.NumProcs())

	var best nodeHeap // best-first frontier
	var stack []*bbNode
	var seq int64
	pushNode := func(nd *bbNode) {
		nd.seq = seq
		seq++
		if cfg.BestFirst {
			heap.Push(&best, nd)
		} else {
			stack = append(stack, nd)
		}
	}
	popNode := func() *bbNode {
		if cfg.BestFirst {
			if best.Len() == 0 {
				return nil
			}
			return heap.Pop(&best).(*bbNode)
		}
		if len(stack) == 0 {
			return nil
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return nd
	}

	var done <-chan struct{}
	if cfg.Ctx != nil {
		done = cfg.Ctx.Done()
	}
	aborted := abort.None
	pushNode(&bbNode{bound: math.Inf(-1)})
	for {
		nd := popNode()
		if nd == nil {
			break
		}
		if nd.bound >= incumbent-intTol {
			continue
		}
		if done != nil {
			select {
			case <-done:
				aborted = abort.FromContext(cfg.Ctx)
			default:
			}
			if aborted != abort.None {
				break
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			aborted = abort.Deadline
			break
		}
		if cfg.MaxNodes > 0 && stats.Nodes >= cfg.MaxNodes {
			aborted = abort.Expansions
			break
		}
		stats.Nodes++
		if stats.Nodes%ipFlushEvery == 0 {
			met.flush(&stats, incumbent)
		}

		sol, err := m.solveRelaxation(nd, cfg)
		if err != nil {
			return nil, err
		}
		stats.LPIters += int64(sol.Iters)
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return nil, fmt.Errorf("ip: relaxation unbounded (model bug)")
		case lp.IterLimit:
			// Treat as unresolved: keep the node's parent bound and
			// branch blindly on the first free column.
		}
		if sol.Status == lp.Optimal {
			if sol.Objective >= incumbent-intTol {
				continue
			}
			frac := fractionalColumn(m, sol.X, cfg)
			if frac < 0 {
				// Integral: a feasible schedule.
				sel := selectedColumns(m, sol.X)
				if sol.Objective < incumbent {
					incumbent = sol.Objective
					incumbentSel = sel
					stats.BoundImprovements++
					evs.incumbent(incumbent, stats.Nodes)
				}
				continue
			}
			if cfg.Rounding {
				if cost, sel := m.roundingHeuristic(sol.X); cost < incumbent {
					incumbent = cost
					incumbentSel = sel
					stats.BoundImprovements++
					evs.incumbent(incumbent, stats.Nodes)
				}
			}
			// Branch on the fractional column.
			down := &bbNode{bound: sol.Objective, depth: nd.depth + 1,
				fixed0: append(append([]int(nil), nd.fixed0...), frac),
				fixed1: nd.fixed1}
			up := &bbNode{bound: sol.Objective, depth: nd.depth + 1,
				fixed0: nd.fixed0,
				fixed1: append(append([]int(nil), nd.fixed1...), frac)}
			// Explore the "include" branch first in DFS (it reaches
			// integrality faster on partitioning models).
			pushNode(down)
			pushNode(up)
		}
	}

	stats.Duration = time.Since(start)
	if aborted != abort.None {
		stats.TimedOut = true
		stats.Degraded = true
		stats.Aborted = aborted
		met.abortCounter(aborted)
		evs.abortEvent(stats.Nodes, aborted.String())
	}
	met.finish(&stats, incumbent)
	if incumbentSel == nil {
		if aborted != abort.None {
			// Aborted before any incumbent: degrade to the trivial
			// sequential partition so the caller still gets a feasible
			// schedule instead of an error.
			groups := sequentialGroups(m)
			cost := m.Cost.PartitionCost(groups)
			evs.finish(&stats, cost, groups)
			return &Result{Groups: groups, Cost: cost, Stats: stats}, nil
		}
		evs.finish(&stats, 0, nil)
		return nil, fmt.Errorf("ip: no feasible solution found")
	}
	groups := m.Groups(incumbentSel)
	cost := m.Cost.PartitionCost(groups)
	evs.finish(&stats, cost, groups)
	return &Result{
		Groups:  groups,
		Cost:    cost,
		Optimal: !stats.TimedOut,
		Stats:   stats,
	}, nil
}

// sequentialGroups builds the trivial u-chunk partition of processes
// 1..n in ID order: the schedule every instance admits, used as the
// degraded fallback when a solve aborts before finding any incumbent.
func sequentialGroups(m *Model) [][]job.ProcID {
	b := m.Cost.Batch
	n, u := b.NumProcs(), b.Cores
	groups := make([][]job.ProcID, 0, n/u)
	for p := 1; p <= n; p += u {
		g := make([]job.ProcID, 0, u)
		for q := p; q < p+u && q <= n; q++ {
			g = append(g, job.ProcID(q))
		}
		groups = append(groups, g)
	}
	return groups
}

// solveRelaxation builds and solves the LP relaxation under the node's
// branching decisions.
func (m *Model) solveRelaxation(nd *bbNode, cfg Config) (*lp.Solution, error) {
	nCols := len(m.Columns)
	p := lp.NewProblem(m.NumVars())
	for ci, col := range m.Columns {
		p.SetObjective(ci, col.SerialCost)
	}
	for yj := range m.ParJobs {
		p.SetObjective(nCols+yj, 1)
	}
	// Partition rows.
	n := m.Cost.Batch.NumProcs()
	for i := 0; i < n; i++ {
		terms := make([]lp.Term, 0, len(m.colsByProc[i]))
		for _, ci := range m.colsByProc[i] {
			terms = append(terms, lp.Term{Var: ci, Coeff: 1})
		}
		p.AddConstraint(terms, lp.EQ, 1)
	}
	// y linking rows: for each parallel process i of job j,
	// Σ_{T∋i} d·z_T - y_j <= 0.
	b := m.Cost.Batch
	for _, jid := range m.ParJobs {
		yIdx := nCols + parIndex(m, jid)
		for _, pid := range b.Jobs[jid].Procs {
			var terms []lp.Term
			for _, ci := range m.colsByProc[int(pid)-1] {
				if d := m.parD(ci, pid); d != 0 {
					terms = append(terms, lp.Term{Var: ci, Coeff: d})
				}
			}
			terms = append(terms, lp.Term{Var: yIdx, Coeff: -1})
			p.AddConstraint(terms, lp.LE, 0)
		}
	}
	// Branching decisions.
	for _, ci := range nd.fixed0 {
		p.AddConstraint([]lp.Term{{Var: ci, Coeff: 1}}, lp.LE, 0)
	}
	for _, ci := range nd.fixed1 {
		p.AddConstraint([]lp.Term{{Var: ci, Coeff: 1}}, lp.GE, 1)
	}
	if cfg.LPIterLimit > 0 {
		p.MaxIters = cfg.LPIterLimit
	}
	return p.Solve()
}

// parIndex returns the dense index of a parallel job.
func parIndex(m *Model, jid job.JobID) int {
	for i, j := range m.ParJobs {
		if j == jid {
			return i
		}
	}
	return -1
}

// parD returns d(i, T\{i}) for process pid in column ci, or 0 if the
// process's contribution is serial-charged.
func (m *Model) parD(ci int, pid job.ProcID) float64 {
	b := m.Cost.Batch
	j := b.JobOf(pid)
	if j == nil {
		return 0
	}
	col := &m.Columns[ci]
	k := 0
	for _, p := range col.Procs {
		pj := b.JobOf(p)
		if pj == nil || pj.Kind == job.Serial {
			continue
		}
		if p == pid {
			return col.parTerms[k].d
		}
		k++
	}
	return 0
}

// fractionalColumn picks the branching column, or -1 when the column part
// of x is integral.
func fractionalColumn(m *Model, x []float64, cfg Config) int {
	nCols := len(m.Columns)
	best := -1
	bestScore := intTol
	for ci := 0; ci < nCols; ci++ {
		f := x[ci]
		frac := math.Min(f, 1-f)
		if frac <= intTol {
			continue
		}
		if !cfg.MostFractional {
			return ci // first-fractional rule
		}
		if frac > bestScore {
			bestScore = frac
			best = ci
		}
	}
	return best
}

// selectedColumns extracts the columns at value 1.
func selectedColumns(m *Model, x []float64) []int {
	var sel []int
	for ci := 0; ci < len(m.Columns); ci++ {
		if x[ci] > 1-intTol {
			sel = append(sel, ci)
		}
	}
	return sel
}

// roundingHeuristic derives a feasible schedule from a fractional LP
// solution: take columns greedily by fractional value, then cover leftover
// processes with arbitrary compatible columns.
func (m *Model) roundingHeuristic(x []float64) (float64, []int) {
	nCols := len(m.Columns)
	order := make([]int, nCols)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return x[order[a]] > x[order[b]] })
	n := m.Cost.Batch.NumProcs()
	used := make([]bool, n+1)
	var sel []int
	covered := 0
	for _, ci := range order {
		if x[ci] < intTol {
			break
		}
		col := &m.Columns[ci]
		ok := true
		for _, p := range col.Procs {
			if used[p] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, p := range col.Procs {
			used[p] = true
		}
		sel = append(sel, ci)
		covered += len(col.Procs)
		if covered == n {
			break
		}
	}
	if covered < n {
		// Cover the leftovers with any conflict-free columns (cheapest
		// first among those fully free).
		for ci := range m.Columns {
			col := &m.Columns[ci]
			ok := true
			for _, p := range col.Procs {
				if used[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, p := range col.Procs {
				used[p] = true
			}
			sel = append(sel, ci)
			covered += len(col.Procs)
			if covered == n {
				break
			}
		}
	}
	if covered < n {
		return math.Inf(1), nil
	}
	groups := m.Groups(sel)
	return m.Cost.PartitionCost(groups), sel
}
