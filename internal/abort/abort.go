// Package abort carries the shared vocabulary of the anytime solve
// pipeline: why a solver stopped before proving its answer (Reason) and
// what a recovered user-callback panic looks like (PanicError). Every
// solver (OA*/HA*/beam, IP branch-and-bound, O-SVP, brute force) maps
// its early-exit conditions onto these reasons so callers — and the
// trace schema, whose "abort" events carry Reason.String() — see one
// consistent classification.
package abort

import (
	"context"
	"fmt"
	"runtime/debug"
)

// Reason classifies why a solve stopped before completing its search.
// The zero value None means the solve ran to completion. A nonzero
// Reason accompanies a degraded result: the best incumbent the solver
// held when it stopped, returned as a usable schedule instead of an
// error.
type Reason uint8

const (
	// None: the solve completed normally.
	None Reason = iota
	// Deadline: a TimeLimit or context deadline expired.
	Deadline
	// Cancel: the context was cancelled.
	Cancel
	// Expansions: the MaxExpansions (or MaxNodes) cap was reached.
	Expansions
	// Memory: the MemoryBudget byte estimate was exceeded.
	Memory
)

// String returns the stable lowercase name the JSONL event schema and
// the astar.aborts.* metric family use ("" for None).
func (r Reason) String() string {
	switch r {
	case None:
		return ""
	case Deadline:
		return "deadline"
	case Cancel:
		return "cancel"
	case Expansions:
		return "expansions"
	case Memory:
		return "memory"
	default:
		return fmt.Sprintf("Reason(%d)", uint8(r))
	}
}

// FromContext classifies why a done context ended: Deadline for an
// expired deadline, Cancel for everything else (including a nil or
// still-live context, which conservatively maps to Cancel — callers
// only invoke this after observing ctx.Done()).
func FromContext(ctx context.Context) Reason {
	if ctx != nil && ctx.Err() == context.DeadlineExceeded {
		return Deadline
	}
	return Cancel
}

// PanicError wraps a panic recovered at a Solve/Run boundary — a
// user-supplied callback (Policy.Place, a Tracer, an EventSink) blew up
// mid-solve. The solve returns it as an ordinary error after flushing
// its event sink, so one broken callback cannot take the process down
// or lose the trace collected so far.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack at the recovery point, including the
	// panicking frames.
	Stack []byte
}

// Recovered builds a PanicError from a recover() value, capturing the
// stack. Call it directly inside the deferred function so the panicking
// frames are still on the stack.
func Recovered(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("recovered panic: %v", e.Value)
}
