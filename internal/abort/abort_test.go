package abort

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestReasonStrings(t *testing.T) {
	cases := map[Reason]string{
		None:       "",
		Deadline:   "deadline",
		Cancel:     "cancel",
		Expansions: "expansions",
		Memory:     "memory",
		Reason(9):  "Reason(9)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reason(%d).String() = %q; want %q", r, got, want)
		}
	}
}

func TestFromContext(t *testing.T) {
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if got := FromContext(expired); got != Deadline {
		t.Errorf("expired deadline classified as %v", got)
	}
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	if got := FromContext(cancelled); got != Cancel {
		t.Errorf("cancelled context classified as %v", got)
	}
	// The conservative fallbacks: nil and still-live contexts map to
	// Cancel (callers only ask after observing Done).
	if got := FromContext(nil); got != Cancel {
		t.Errorf("nil context classified as %v", got)
	}
	if got := FromContext(context.Background()); got != Cancel {
		t.Errorf("live context classified as %v", got)
	}
}

func TestRecoveredCapturesPanickingFrames(t *testing.T) {
	var pe *PanicError
	func() {
		defer func() {
			if r := recover(); r != nil {
				pe = Recovered(r)
			}
		}()
		explode()
	}()
	if pe == nil {
		t.Fatal("panic not recovered")
	}
	if pe.Value != "boom" {
		t.Errorf("Value = %v; want boom", pe.Value)
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Errorf("Error() = %q; want the panic value in it", pe.Error())
	}
	// Recovered runs inside the deferred function, so the frame that
	// panicked is still on the captured stack.
	if !bytes.Contains(pe.Stack, []byte("explode")) {
		t.Errorf("stack does not show the panicking frame:\n%s", pe.Stack)
	}
}

func explode() {
	panic("boom")
}
