package job

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderSerialOnly(t *testing.T) {
	bd := NewBuilder()
	a := bd.AddSerial("a")
	b := bd.AddSerial("b")
	batch, err := bd.Build(2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if a != 0 || b != 1 {
		t.Errorf("job IDs = %d,%d; want 0,1", a, b)
	}
	if got := batch.NumProcs(); got != 2 {
		t.Errorf("NumProcs = %d; want 2", got)
	}
	if got := batch.NumMachines(); got != 1 {
		t.Errorf("NumMachines = %d; want 1", got)
	}
	if batch.Proc(1).Job != a || batch.Proc(2).Job != b {
		t.Errorf("process->job mapping wrong: %+v", batch.Procs)
	}
}

func TestBuilderPadsToMultipleOfCores(t *testing.T) {
	bd := NewBuilder()
	bd.AddSerial("a")
	bd.AddSerial("b")
	bd.AddSerial("c")
	batch, err := bd.Build(4)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := batch.NumProcs(); got != 4 {
		t.Fatalf("NumProcs = %d; want 4 after padding", got)
	}
	pad := batch.Proc(4)
	if !pad.Imaginary || pad.Job != NoJob {
		t.Errorf("padding process = %+v; want imaginary with NoJob", pad)
	}
	if batch.JobOf(4) != nil {
		t.Errorf("JobOf(padding) = %v; want nil", batch.JobOf(4))
	}
}

func TestBuilderParallelJobs(t *testing.T) {
	bd := NewBuilder()
	pe := bd.AddPE("mc", 3)
	pc := bd.AddPC("mpi", 4)
	s := bd.AddSerial("ser")
	batch, err := bd.Build(4)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := batch.NumProcs(); got != 8 {
		t.Fatalf("NumProcs = %d; want 8", got)
	}
	if got := len(batch.Jobs[pe].Procs); got != 3 {
		t.Errorf("PE job procs = %d; want 3", got)
	}
	if got := batch.Jobs[pc].Kind; got != PC {
		t.Errorf("PC job kind = %v; want PC", got)
	}
	// ranks within a job are 0..k-1 in process order
	for r, pid := range batch.Jobs[pc].Procs {
		if batch.Proc(pid).Rank != r {
			t.Errorf("proc %d rank = %d; want %d", pid, batch.Proc(pid).Rank, r)
		}
	}
	if !batch.IsParallelProc(batch.Jobs[pe].Procs[0]) {
		t.Error("PE process not recognised as parallel")
	}
	if batch.IsParallelProc(batch.Jobs[s].Procs[0]) {
		t.Error("serial process recognised as parallel")
	}
	par := batch.ParallelJobs()
	if len(par) != 2 || par[0] != pe || par[1] != pc {
		t.Errorf("ParallelJobs = %v; want [%d %d]", par, pe, pc)
	}
}

func TestValidateRejectsBadBatches(t *testing.T) {
	cases := []struct {
		name  string
		batch Batch
		want  string
	}{
		{
			name:  "zero cores",
			batch: Batch{Cores: 0, Procs: []Process{{ID: 1, Job: NoJob, Imaginary: true}}},
			want:  "cores",
		},
		{
			name:  "empty",
			batch: Batch{Cores: 2},
			want:  "no processes",
		},
		{
			name: "not divisible",
			batch: Batch{Cores: 2, Procs: []Process{
				{ID: 1, Job: NoJob, Imaginary: true},
			}},
			want: "divisible",
		},
		{
			name: "non-dense IDs",
			batch: Batch{Cores: 2, Procs: []Process{
				{ID: 1, Job: NoJob, Imaginary: true},
				{ID: 3, Job: NoJob, Imaginary: true},
			}},
			want: "ID",
		},
		{
			name: "orphan process",
			batch: Batch{Cores: 2, Procs: []Process{
				{ID: 1, Job: NoJob},
				{ID: 2, Job: NoJob, Imaginary: true},
			}},
			want: "no job",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.batch.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.batch)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsBuilderOutput(t *testing.T) {
	// Property: every batch the builder produces validates, for any mix
	// of job kinds and any core count in 1..8.
	f := func(serial, pe, pc uint8, cores uint8) bool {
		u := int(cores%8) + 1
		bd := NewBuilder()
		for i := 0; i < int(serial%16); i++ {
			bd.AddSerial("s")
		}
		for i := 0; i < int(pe%4); i++ {
			bd.AddPE("pe", int(pe%5)+1)
		}
		for i := 0; i < int(pc%4); i++ {
			bd.AddPC("pc", int(pc%5)+1)
		}
		if bd.NumProcs() == 0 {
			bd.AddSerial("s")
		}
		b, err := bd.Build(u)
		return err == nil && b.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Serial.String() != "se" || PE.String() != "pe" || PC.String() != "pc" {
		t.Errorf("Kind strings = %q,%q,%q", Serial, PE, PC)
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestSortedProcIDs(t *testing.T) {
	in := []ProcID{5, 1, 3}
	out := SortedProcIDs(in)
	if out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Errorf("SortedProcIDs = %v", out)
	}
	if in[0] != 5 {
		t.Error("SortedProcIDs mutated its input")
	}
}

func TestBuildRejectsZeroProcJob(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddPE with 0 procs did not panic")
		}
	}()
	NewBuilder().AddPE("bad", 0)
}
