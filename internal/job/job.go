// Package job defines the workload model of the co-scheduling problem: a
// batch of processes originating from serial jobs, embarrassingly-parallel
// (PE) jobs and communicating parallel (PC) jobs, to be partitioned onto
// identical u-core machines with one process per core.
//
// Process IDs are 1-based, matching the co-scheduling-graph convention of
// the paper (level i of the graph contains the nodes whose smallest process
// ID is i). ID 0 is reserved and never used for a real process.
package job

import (
	"fmt"
	"sort"
)

// Kind classifies a job by its parallel structure.
type Kind int

const (
	// Serial is a single-process job. Its degradation enters the
	// objective directly (Eq. 2).
	Serial Kind = iota
	// PE is an embarrassingly-parallel job: several processes, no
	// inter-process communication; the job's degradation is the maximum
	// over its processes (Eq. 5).
	PE
	// PC is a parallel job with communications: the job's degradation is
	// the maximum communication-combined degradation (Eq. 9) over its
	// processes.
	PC
)

// String returns the short label used in tables ("se", "pe", "pc").
func (k Kind) String() string {
	switch k {
	case Serial:
		return "se"
	case PE:
		return "pe"
	case PC:
		return "pc"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ProcID identifies a process within a batch. IDs are 1..N and dense.
type ProcID int

// JobID identifies a job within a batch. Serial jobs and parallel jobs
// share the same ID space. IDs are 0..len(Jobs)-1.
type JobID int

// NoJob marks a process that belongs to no parallel job (i.e. a padding
// process). Real processes always have a valid JobID.
const NoJob JobID = -1

// Job is one schedulable job: a serial program or a parallel program with
// several processes.
type Job struct {
	ID   JobID
	Name string
	Kind Kind
	// Procs lists the processes of this job in rank order. A serial job
	// has exactly one process.
	Procs []ProcID
}

// Process is one schedulable entity, pinned to one core by the scheduler.
type Process struct {
	ID  ProcID
	Job JobID
	// Rank is the process's index within its job (0-based). For serial
	// jobs Rank is always 0.
	Rank int
	// Imaginary marks a padding process added so that the batch size is
	// a multiple of the machine core count. Imaginary processes have no
	// degradation with any co-runner and cause none.
	Imaginary bool
}

// Batch is a complete co-scheduling problem instance: the processes, their
// grouping into jobs, and the core count of the (identical) machines.
type Batch struct {
	Jobs  []Job
	Procs []Process // index p-1 holds process p
	Cores int       // u: cores per machine
}

// NumProcs returns n, the number of processes including padding.
func (b *Batch) NumProcs() int { return len(b.Procs) }

// NumMachines returns m = n/u.
func (b *Batch) NumMachines() int { return len(b.Procs) / b.Cores }

// Proc returns the process with the given ID.
func (b *Batch) Proc(id ProcID) *Process { return &b.Procs[int(id)-1] }

// Job returns the job a process belongs to, or nil for padding processes.
func (b *Batch) JobOf(id ProcID) *Job {
	j := b.Procs[int(id)-1].Job
	if j == NoJob {
		return nil
	}
	return &b.Jobs[j]
}

// IsParallelProc reports whether the process belongs to a PE or PC job.
func (b *Batch) IsParallelProc(id ProcID) bool {
	j := b.JobOf(id)
	return j != nil && j.Kind != Serial
}

// Validate checks the structural invariants of the batch: dense 1-based
// process IDs, consistent job membership, n divisible by u.
func (b *Batch) Validate() error {
	if b.Cores < 1 {
		return fmt.Errorf("job: batch has %d cores per machine; need >= 1", b.Cores)
	}
	n := len(b.Procs)
	if n == 0 {
		return fmt.Errorf("job: batch has no processes")
	}
	if n%b.Cores != 0 {
		return fmt.Errorf("job: %d processes not divisible by %d cores (pad the batch first)", n, b.Cores)
	}
	for i := range b.Procs {
		p := &b.Procs[i]
		if int(p.ID) != i+1 {
			return fmt.Errorf("job: process at index %d has ID %d; want %d", i, p.ID, i+1)
		}
		if p.Job != NoJob {
			if int(p.Job) < 0 || int(p.Job) >= len(b.Jobs) {
				return fmt.Errorf("job: process %d references job %d of %d", p.ID, p.Job, len(b.Jobs))
			}
			j := &b.Jobs[p.Job]
			if p.Rank < 0 || p.Rank >= len(j.Procs) || j.Procs[p.Rank] != p.ID {
				return fmt.Errorf("job: process %d rank %d inconsistent with job %q", p.ID, p.Rank, j.Name)
			}
		} else if !p.Imaginary {
			return fmt.Errorf("job: non-imaginary process %d belongs to no job", p.ID)
		}
	}
	for ji := range b.Jobs {
		j := &b.Jobs[ji]
		if int(j.ID) != ji {
			return fmt.Errorf("job: job at index %d has ID %d", ji, j.ID)
		}
		if len(j.Procs) == 0 {
			return fmt.Errorf("job: job %q has no processes", j.Name)
		}
		if j.Kind == Serial && len(j.Procs) != 1 {
			return fmt.Errorf("job: serial job %q has %d processes", j.Name, len(j.Procs))
		}
		for r, pid := range j.Procs {
			if int(pid) < 1 || int(pid) > n {
				return fmt.Errorf("job: job %q references process %d of %d", j.Name, pid, n)
			}
			p := b.Proc(pid)
			if p.Job != j.ID || p.Rank != r {
				return fmt.Errorf("job: job %q proc list inconsistent at rank %d", j.Name, r)
			}
		}
	}
	return nil
}

// ParallelJobs returns the IDs of all PE and PC jobs in the batch.
func (b *Batch) ParallelJobs() []JobID {
	var ids []JobID
	for i := range b.Jobs {
		if b.Jobs[i].Kind != Serial {
			ids = append(ids, b.Jobs[i].ID)
		}
	}
	return ids
}

// Builder incrementally assembles a Batch. Jobs are added with AddSerial /
// AddPE / AddPC; Build pads the batch with imaginary processes up to a
// multiple of the core count and validates it.
type Builder struct {
	jobs  []Job
	procs []Process
}

// NewBuilder returns an empty batch builder.
func NewBuilder() *Builder { return &Builder{} }

// AddSerial adds a one-process serial job and returns its job ID.
func (bd *Builder) AddSerial(name string) JobID {
	return bd.add(name, Serial, 1)
}

// AddPE adds an embarrassingly-parallel job with the given process count.
func (bd *Builder) AddPE(name string, procs int) JobID {
	return bd.add(name, PE, procs)
}

// AddPC adds a communicating parallel job with the given process count.
func (bd *Builder) AddPC(name string, procs int) JobID {
	return bd.add(name, PC, procs)
}

func (bd *Builder) add(name string, k Kind, nprocs int) JobID {
	if nprocs < 1 {
		panic(fmt.Sprintf("job: %q needs at least one process", name))
	}
	id := JobID(len(bd.jobs))
	j := Job{ID: id, Name: name, Kind: k}
	for r := 0; r < nprocs; r++ {
		pid := ProcID(len(bd.procs) + 1)
		bd.procs = append(bd.procs, Process{ID: pid, Job: id, Rank: r})
		j.Procs = append(j.Procs, pid)
	}
	bd.jobs = append(bd.jobs, j)
	return id
}

// NumProcs returns the number of real processes added so far.
func (bd *Builder) NumProcs() int { return len(bd.procs) }

// Build pads the batch to a multiple of cores with imaginary processes and
// returns the validated Batch.
func (bd *Builder) Build(cores int) (*Batch, error) {
	b := &Batch{
		Jobs:  append([]Job(nil), bd.jobs...),
		Procs: append([]Process(nil), bd.procs...),
		Cores: cores,
	}
	if cores > 0 {
		for len(b.Procs)%cores != 0 {
			pid := ProcID(len(b.Procs) + 1)
			b.Procs = append(b.Procs, Process{ID: pid, Job: NoJob, Imaginary: true})
		}
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// MustBuild is Build that panics on error; for use in tests and examples
// with known-good inputs.
func (bd *Builder) MustBuild(cores int) *Batch {
	b, err := bd.Build(cores)
	if err != nil {
		panic(err)
	}
	return b
}

// SortedProcIDs returns a sorted copy of the given process IDs.
func SortedProcIDs(ids []ProcID) []ProcID {
	out := append([]ProcID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
