package solvecache

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	var evicted []string
	c := New[int](2, func(key string) { evicted = append(evicted, key) })
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes coldest
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want LRU out")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted; want MRU kept")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("onEvict saw %v; want [b]", evicted)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("Stats = %+v; want Evictions 1, Entries 2", st)
	}
}

func TestDoCachesOnlyOKResults(t *testing.T) {
	c := New[string](0, nil)

	calls := 0
	uncacheable := func() (string, bool, error) { calls++; return "degraded", false, nil }
	for i := 0; i < 2; i++ {
		v, out, err := c.Do("k", uncacheable)
		if v != "degraded" || out != Miss || err != nil {
			t.Fatalf("Do #%d = (%q, %v, %v); want degraded/miss/nil", i, v, out, err)
		}
	}
	if calls != 2 {
		t.Errorf("uncacheable compute ran %d times; want 2 (never cached)", calls)
	}

	boom := errors.New("boom")
	failing := func() (string, bool, error) { return "", true, boom }
	if _, _, err := c.Do("e", failing); err != boom {
		t.Fatalf("Do error = %v; want boom", err)
	}
	if _, ok := c.Get("e"); ok {
		t.Error("failed computation was cached")
	}

	good := func() (string, bool, error) { calls = 100; return "proved", true, nil }
	if v, out, _ := c.Do("k", good); v != "proved" || out != Miss {
		t.Fatalf("Do = (%q, %v); want proved/miss", v, out)
	}
	if v, out, _ := c.Do("k", good); v != "proved" || out != Hit {
		t.Fatalf("cached Do = (%q, %v); want proved/hit", v, out)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New[int](0, nil)
	var computes atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	var leaderOutcomes, sharedOutcomes atomic.Int64
	leaderCompute := func() (int, bool, error) {
		computes.Add(1)
		close(started)
		<-release
		return 42, true, nil
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, out, _ := c.Do("k", leaderCompute)
		if v != 42 {
			t.Errorf("leader got %d; want 42", v)
		}
		if out == Miss {
			leaderOutcomes.Add(1)
		}
	}()
	<-started

	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, _ := c.Do("k", func() (int, bool, error) {
				computes.Add(1)
				return -1, true, nil
			})
			if v != 42 {
				t.Errorf("waiter got %d; want 42", v)
			}
			if out == Shared {
				sharedOutcomes.Add(1)
			}
		}()
	}
	// Hold the leader's flight open until every waiter has joined it —
	// the shared counter increments before a waiter blocks — so each
	// waiter observably shares rather than racing to a post-release Hit.
	for c.Stats().Shared < 8 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times across 9 concurrent callers; want 1", got)
	}
	if leaderOutcomes.Load() != 1 {
		t.Error("leader did not report Miss")
	}
	if got := sharedOutcomes.Load(); got != 8 {
		t.Errorf("%d waiters reported Shared; want 8", got)
	}
}

func TestDoPanicDoesNotWedgeKey(t *testing.T) {
	c := New[int](0, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Do("k", func() (int, bool, error) { panic("kaboom") }) //nolint:errcheck
	}()
	v, out, err := c.Do("k", func() (int, bool, error) { return 7, true, nil })
	if v != 7 || out != Miss || err != nil {
		t.Fatalf("Do after panic = (%d, %v, %v); want 7/miss/nil", v, out, err)
	}
}

// TestShardSelection pins the sharding policy: capacities below the
// threshold get one shard (globally exact LRU order), the threshold and
// above — and unbounded — get the full stripe set with the capacity
// split in per-shard shares.
func TestShardSelection(t *testing.T) {
	for _, tc := range []struct {
		capacity, shards, per int
	}{
		{1, 1, 1},
		{2, 1, 2},
		{63, 1, 63},
		{64, nShards, 4},
		{100, nShards, 7}, // 100/16 = 6 rem 4: shard 0 takes an extra
		{0, nShards, 0},
		{-1, nShards, 0},
	} {
		c := New[int](tc.capacity, nil)
		if len(c.shards) != tc.shards {
			t.Errorf("capacity %d: %d shards; want %d", tc.capacity, len(c.shards), tc.shards)
		}
		if got := c.shards[0].capacity; got != tc.per {
			t.Errorf("capacity %d: per-shard capacity %d; want %d", tc.capacity, got, tc.per)
		}
	}
}

// TestShardedAggregation fills a sharded cache past its capacity and
// checks that Len, Stats and the capacity bound hold across shards.
func TestShardedAggregation(t *testing.T) {
	const capacity = 64
	var evicted atomic.Int64
	c := New[int](capacity, func(string) { evicted.Add(1) })
	const total = 500
	for i := 0; i < total; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	// Per-shard bounds sum to exactly the configured capacity.
	if n := c.Len(); n > capacity || n == 0 {
		t.Errorf("Len = %d; want in (0, %d]", n, capacity)
	}
	st := c.Stats()
	if st.Entries != c.Len() {
		t.Errorf("Stats.Entries %d != Len %d", st.Entries, c.Len())
	}
	if st.Evictions != int64(total)-int64(st.Entries) {
		t.Errorf("Evictions %d + Entries %d != Puts %d", st.Evictions, st.Entries, total)
	}
	if evicted.Load() != st.Evictions {
		t.Errorf("onEvict saw %d keys; Stats says %d", evicted.Load(), st.Evictions)
	}
	hits, misses := 0, 0
	for i := 0; i < total; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); ok {
			hits++
		} else {
			misses++
		}
	}
	if hits != st.Entries {
		t.Errorf("%d keys retrievable; Stats.Entries says %d", hits, st.Entries)
	}
	st = c.Stats()
	if st.Hits != int64(hits) || st.Misses != int64(misses) {
		t.Errorf("aggregated hit/miss counters %d/%d; want %d/%d", st.Hits, st.Misses, hits, misses)
	}
}

// TestShardedConcurrentDo hammers a sharded cache from many goroutines
// (run under -race in CI): singleflight and the counters must stay
// coherent when callers spread over shards.
func TestShardedConcurrentDo(t *testing.T) {
	c := New[int](256, nil)
	var computes atomic.Int64
	var wg sync.WaitGroup
	const workers, keys = 8, 40
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("key-%d", k)
				v, _, err := c.Do(key, func() (int, bool, error) {
					computes.Add(1)
					return k, true, nil
				})
				if err != nil || v != k {
					t.Errorf("Do(%s) = (%d, %v)", key, v, err)
				}
			}
		}()
	}
	wg.Wait()
	if got := computes.Load(); got < keys || got > workers*keys {
		t.Errorf("compute ran %d times; want in [%d, %d]", got, keys, workers*keys)
	}
	st := c.Stats()
	if st.Entries != keys {
		t.Errorf("Entries = %d; want %d", st.Entries, keys)
	}
	if st.Hits+st.Misses+st.Shared != workers*keys {
		t.Errorf("outcome counters sum to %d; want %d", st.Hits+st.Misses+st.Shared, workers*keys)
	}
}

// TestShardCapacitySums is the capacity-overshoot regression test: a
// plain ceil split gave every shard ceil(capacity/nShards), so a cache
// configured for 65 entries could hold 16*5 = 80. The shares must sum
// to exactly the configured capacity, with the remainder spread over
// the leading shards.
func TestShardCapacitySums(t *testing.T) {
	for _, capacity := range []int{64, 65, 100} {
		c := New[int](capacity, nil)
		sum := 0
		for _, s := range c.shards {
			sum += s.capacity
		}
		if sum != capacity {
			t.Errorf("capacity %d: shard shares sum to %d; want exactly %d", capacity, sum, capacity)
		}
		// The bound must hold in practice, not just in configuration:
		// overfill every shard and check the resident total.
		for i := 0; i < capacity*4; i++ {
			c.Put(fmt.Sprintf("key-%d", i), i)
		}
		if n := c.Len(); n > capacity {
			t.Errorf("capacity %d: %d entries resident; want <= %d", capacity, n, capacity)
		}
	}
}

// TestDoRetryCountsOnce is the singleflight-retry regression test: when
// a flight leader panics, its 8 waiters retry — and before the fix each
// retry re-entered Do and counted a second miss/shared for the same
// logical call. Every logical call must contribute exactly one outcome;
// the extra rounds surface under Stats.Retries instead.
func TestDoRetryCountsOnce(t *testing.T) {
	c := New[int](0, nil)
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		c.Do("k", func() (int, bool, error) { //nolint:errcheck
			close(started)
			<-release
			panic("leader dies")
		})
	}()
	<-started

	const waiters = 8
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do("k", func() (int, bool, error) { return 42, true, nil })
			if err != nil || v != 42 {
				t.Errorf("waiter Do = (%d, %v); want (42, nil)", v, err)
			}
		}()
	}
	for c.Stats().Shared < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	st := c.Stats()
	if got := st.Hits + st.Misses + st.Shared; got != waiters+1 {
		t.Errorf("outcomes sum to %d for %d logical calls; want %d (retries must not inflate)",
			got, waiters+1, waiters+1)
	}
	if st.Retries == 0 {
		t.Error("Retries = 0; want > 0 after a panicked leader's waiters recomputed")
	}
}

// TestDoRetryBounded pins the retry bound: a computation that panics on
// every attempt must terminate each caller within maxDoAttempts rounds
// instead of recursing until the stack dies.
func TestDoRetryBounded(t *testing.T) {
	c := New[int](0, nil)
	var calls atomic.Int64
	alwaysPanic := func() (int, bool, error) {
		calls.Add(1)
		panic("always")
	}
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { recover() }() //nolint:errcheck
			c.Do("k", alwaysPanic)       //nolint:errcheck
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Do callers still running against an always-panicking compute; retry is unbounded")
	}
	// Each caller runs compute at most once per round, bounded by the
	// attempt budget.
	if got := calls.Load(); got > callers*maxDoAttempts {
		t.Errorf("compute ran %d times for %d callers; want <= %d", got, callers, callers*maxDoAttempts)
	}
	st := c.Stats()
	if got := st.Hits + st.Misses + st.Shared; got != callers {
		t.Errorf("outcomes sum to %d for %d logical calls; want %d", got, callers, callers)
	}
}

// TestByteBound exercises the byte-size bound: Stats.Bytes must stay
// under MaxBytes, eviction must follow LRU order, and an entry larger
// than a whole shard share must be rejected rather than flushing the
// shard.
func TestByteBound(t *testing.T) {
	var evicted []string
	c, err := NewWithConfig(Config[string]{
		Capacity: 4, // single shard: exact LRU order
		MaxBytes: 64,
		SizeOf:   func(v string) int { return len(v) },
		OnEvict:  func(key string) { evicted = append(evicted, key) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each entry costs len(key)+len(value) = 1+15 = 16 bytes; four fit
	// exactly in 64.
	pad := strings.Repeat("x", 15)
	for _, k := range []string{"a", "b", "c", "d"} {
		c.Put(k, pad)
	}
	if got := c.Stats().Bytes; got != 64 {
		t.Fatalf("Bytes = %d; want 64", got)
	}
	c.Put("e", pad) // over by one entry: a (the LRU) must go
	st := c.Stats()
	if st.Bytes > 64 {
		t.Errorf("Bytes = %d after eviction; want <= 64", st.Bytes)
	}
	if _, ok := c.Get("a"); ok {
		t.Error("a survived byte-bound eviction; want LRU out")
	}
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Errorf("onEvict saw %v; want [a]", evicted)
	}

	// An entry bigger than the whole budget is rejected at the door and
	// reported as an eviction of its own key.
	c.Put("huge", strings.Repeat("y", 100))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized entry was stored")
	}
	if evicted[len(evicted)-1] != "huge" {
		t.Errorf("oversized store reported %v; want huge last", evicted)
	}
	// Re-storing a key under a larger value re-charges the delta.
	c.Put("b", strings.Repeat("z", 40)) // b now costs 41 of 64
	if got := c.Stats().Bytes; got > 64 {
		t.Errorf("Bytes = %d after re-store; want <= 64", got)
	}
}

// TestByteBoundUnderDo drives the byte bound through Do (the daemon's
// path) and checks the invariant the ISSUE pins: Stats.Bytes never
// exceeds the configured maximum under load.
func TestByteBoundUnderDo(t *testing.T) {
	const maxBytes = 1 << 10
	c, err := NewWithConfig(Config[string]{
		MaxBytes: maxBytes,
		SizeOf:   func(v string) int { return len(v) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if _, _, err := c.Do(key, func() (string, bool, error) {
			return strings.Repeat("v", 64), true, nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := c.Stats().Bytes; got > maxBytes {
			t.Fatalf("Bytes = %d after %d stores; want <= %d", got, i+1, maxBytes)
		}
	}
	if c.Bytes() != c.Stats().Bytes {
		t.Errorf("Bytes() = %d, Stats().Bytes = %d; want equal", c.Bytes(), c.Stats().Bytes)
	}
}

func TestNewWithConfigValidation(t *testing.T) {
	if _, err := NewWithConfig(Config[int]{MaxBytes: 1}); err == nil {
		t.Error("MaxBytes without SizeOf accepted; want error")
	}
	if _, err := NewWithConfig(Config[int]{Spill: &SpillConfig[int]{}}); err == nil {
		t.Error("spill without directory accepted; want error")
	}
	if _, err := NewWithConfig(Config[int]{Spill: &SpillConfig[int]{Dir: t.TempDir()}}); err == nil {
		t.Error("spill without codec accepted; want error")
	}
}

func TestOutcomeString(t *testing.T) {
	for out, want := range map[Outcome]string{Miss: "miss", Shared: "shared", Hit: "hit", Outcome(9): "unknown"} {
		if got := out.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q; want %q", int(out), got, want)
		}
	}
}
