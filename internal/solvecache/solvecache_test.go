package solvecache

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	var evicted []string
	c := New[int](2, func(key string) { evicted = append(evicted, key) })
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes coldest
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want LRU out")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted; want MRU kept")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("onEvict saw %v; want [b]", evicted)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("Stats = %+v; want Evictions 1, Entries 2", st)
	}
}

func TestDoCachesOnlyOKResults(t *testing.T) {
	c := New[string](0, nil)

	calls := 0
	uncacheable := func() (string, bool, error) { calls++; return "degraded", false, nil }
	for i := 0; i < 2; i++ {
		v, out, err := c.Do("k", uncacheable)
		if v != "degraded" || out != Miss || err != nil {
			t.Fatalf("Do #%d = (%q, %v, %v); want degraded/miss/nil", i, v, out, err)
		}
	}
	if calls != 2 {
		t.Errorf("uncacheable compute ran %d times; want 2 (never cached)", calls)
	}

	boom := errors.New("boom")
	failing := func() (string, bool, error) { return "", true, boom }
	if _, _, err := c.Do("e", failing); err != boom {
		t.Fatalf("Do error = %v; want boom", err)
	}
	if _, ok := c.Get("e"); ok {
		t.Error("failed computation was cached")
	}

	good := func() (string, bool, error) { calls = 100; return "proved", true, nil }
	if v, out, _ := c.Do("k", good); v != "proved" || out != Miss {
		t.Fatalf("Do = (%q, %v); want proved/miss", v, out)
	}
	if v, out, _ := c.Do("k", good); v != "proved" || out != Hit {
		t.Fatalf("cached Do = (%q, %v); want proved/hit", v, out)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New[int](0, nil)
	var computes atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	var leaderOutcomes, sharedOutcomes atomic.Int64
	leaderCompute := func() (int, bool, error) {
		computes.Add(1)
		close(started)
		<-release
		return 42, true, nil
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, out, _ := c.Do("k", leaderCompute)
		if v != 42 {
			t.Errorf("leader got %d; want 42", v)
		}
		if out == Miss {
			leaderOutcomes.Add(1)
		}
	}()
	<-started

	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, _ := c.Do("k", func() (int, bool, error) {
				computes.Add(1)
				return -1, true, nil
			})
			if v != 42 {
				t.Errorf("waiter got %d; want 42", v)
			}
			if out == Shared {
				sharedOutcomes.Add(1)
			}
		}()
	}
	// Hold the leader's flight open until every waiter has joined it —
	// the shared counter increments before a waiter blocks — so each
	// waiter observably shares rather than racing to a post-release Hit.
	for c.Stats().Shared < 8 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times across 9 concurrent callers; want 1", got)
	}
	if leaderOutcomes.Load() != 1 {
		t.Error("leader did not report Miss")
	}
	if got := sharedOutcomes.Load(); got != 8 {
		t.Errorf("%d waiters reported Shared; want 8", got)
	}
}

func TestDoPanicDoesNotWedgeKey(t *testing.T) {
	c := New[int](0, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Do("k", func() (int, bool, error) { panic("kaboom") }) //nolint:errcheck
	}()
	v, out, err := c.Do("k", func() (int, bool, error) { return 7, true, nil })
	if v != 7 || out != Miss || err != nil {
		t.Fatalf("Do after panic = (%d, %v, %v); want 7/miss/nil", v, out, err)
	}
}

func TestOutcomeString(t *testing.T) {
	for out, want := range map[Outcome]string{Miss: "miss", Shared: "shared", Hit: "hit", Outcome(9): "unknown"} {
		if got := out.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q; want %q", int(out), got, want)
		}
	}
}
