// Binary serialisation for the cache's spill log: a generic
// length-prefixed, checksummed record frame (AppendRecord/DecodeRecord)
// and a concrete Solution codec for the daemon's cached solve results.
//
// Framing (all integers big-endian):
//
//	magic   u8   0xC5 — rejects files that are not a spill log at all
//	version u8   record payload version (currently 1)
//	keyLen  u32  length of the key bytes
//	valLen  u32  length of the value bytes
//	crc     u32  CRC-32 (IEEE) over key ++ value
//	key     keyLen bytes
//	value   valLen bytes
//
// The frame — magic, lengths, checksum — is fixed for all versions, so
// a reader that meets a record with an unknown version can still trust
// the lengths, verify the checksum, and skip the record whole. Only the
// value payload is versioned. Decode errors distinguish a torn tail
// (ErrTruncated: the bytes simply stop mid-record, expected after a
// crash, fixed by truncating) from corruption (ErrCorrupt: the bytes
// are there but wrong — bad magic, insane lengths, checksum mismatch —
// so nothing after them can be trusted either).
package solvecache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	recordMagic   = 0xC5
	recordVersion = 1
	// recordHeaderLen is the fixed frame prefix: magic + version +
	// keyLen + valLen + crc.
	recordHeaderLen = 1 + 1 + 4 + 4 + 4

	// maxKeyLen and maxValueLen bound what a decoder will believe. A
	// fingerprint key is ~100 bytes and a solution a few KB; anything
	// near these limits is garbage lengths from a corrupt frame, and
	// refusing them keeps a flipped length bit from making the decoder
	// "skip" gigabytes.
	maxKeyLen   = 64 << 10
	maxValueLen = 16 << 20
)

// ErrTruncated reports a record frame that stops before its declared
// end — the expected shape of a crash-torn segment tail.
var ErrTruncated = errors.New("solvecache: truncated record")

// ErrCorrupt reports a record frame that is present but fails
// validation (magic, length bounds, or checksum).
var ErrCorrupt = errors.New("solvecache: corrupt record")

// errVersionSkew reports a record whose frame validates but whose
// payload version this build does not speak; the record is skippable
// because the frame fixed its length.
var errVersionSkew = errors.New("solvecache: unknown record version")

// Record is one framed key/value pair of the spill log.
type Record struct {
	Key   string
	Value []byte
}

// AppendRecord appends rec's framed encoding to dst and returns the
// extended slice. It errors (leaving dst unchanged) when the key or
// value exceeds the frame's length bounds.
func AppendRecord(dst []byte, rec Record) ([]byte, error) {
	if len(rec.Key) > maxKeyLen {
		return dst, fmt.Errorf("solvecache: key of %d bytes exceeds the %d-byte frame limit", len(rec.Key), maxKeyLen)
	}
	if len(rec.Value) > maxValueLen {
		return dst, fmt.Errorf("solvecache: value of %d bytes exceeds the %d-byte frame limit", len(rec.Value), maxValueLen)
	}
	crc := crc32.NewIEEE()
	crc.Write([]byte(rec.Key)) //nolint:errcheck // hash writes cannot fail
	crc.Write(rec.Value)       //nolint:errcheck
	dst = append(dst, recordMagic, recordVersion)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rec.Key)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rec.Value)))
	dst = binary.BigEndian.AppendUint32(dst, crc.Sum32())
	dst = append(dst, rec.Key...)
	dst = append(dst, rec.Value...)
	return dst, nil
}

// DecodeRecord decodes the first record framed in b, returning it and
// the number of bytes it consumed. On errVersionSkew, n still covers
// the whole (validated) frame so the caller can skip it. On ErrTruncated
// or ErrCorrupt, n is 0 — the caller decides whether the remaining
// bytes are a torn tail (truncate) or rot (skip the segment).
func DecodeRecord(b []byte) (rec Record, n int, err error) {
	if len(b) < recordHeaderLen {
		return Record{}, 0, ErrTruncated
	}
	if b[0] != recordMagic {
		return Record{}, 0, fmt.Errorf("%w: bad magic 0x%02x", ErrCorrupt, b[0])
	}
	version := b[1]
	keyLen := binary.BigEndian.Uint32(b[2:6])
	valLen := binary.BigEndian.Uint32(b[6:10])
	wantCRC := binary.BigEndian.Uint32(b[10:14])
	if keyLen > maxKeyLen || valLen > maxValueLen {
		return Record{}, 0, fmt.Errorf("%w: implausible lengths key=%d value=%d", ErrCorrupt, keyLen, valLen)
	}
	total := recordHeaderLen + int(keyLen) + int(valLen)
	if len(b) < total {
		return Record{}, 0, ErrTruncated
	}
	key := b[recordHeaderLen : recordHeaderLen+int(keyLen)]
	val := b[recordHeaderLen+int(keyLen) : total]
	crc := crc32.NewIEEE()
	crc.Write(key) //nolint:errcheck
	crc.Write(val) //nolint:errcheck
	if crc.Sum32() != wantCRC {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if version != recordVersion {
		return Record{}, total, fmt.Errorf("%w: %d", errVersionSkew, version)
	}
	return Record{Key: string(key), Value: append([]byte(nil), val...)}, total, nil
}

// Solution is a solve result in cacheable form: everything the daemon
// needs to answer a repeated request — assignment, cost, and the solve
// metadata the response reports — with no live solver state, so it
// serialises and survives a restart. The server builds one from each
// *cosched.Schedule it decides to cache.
type Solution struct {
	Cost        float64
	AvgCost     float64
	Groups      [][]int
	Machines    [][]string
	Degraded    bool
	AbortReason string
	Fallbacks   []SolutionFallback
	SolveMS     float64
	SolveID     uint64
}

// SolutionFallback mirrors one entry of the solve's fallback chain.
type SolutionFallback struct {
	Method   string
	Degraded bool
	Aborted  string
	Err      string
}

// solutionFieldBounds keep a corrupt record from convincing the decoder
// to allocate absurd slices. Real instances top out at hundreds of
// jobs and a handful of fallback steps.
const (
	maxSolutionGroups    = 1 << 20
	maxSolutionFallbacks = 1 << 10
	maxSolutionStringLen = 4 << 10
)

// SizeBytes reports the solution's approximate resident size, used as
// the cache's byte-cost function. It intentionally tracks the encoded
// size (the dominant slices cost the same in either form) so the byte
// bound means the same thing in memory and on disk.
func (s *Solution) SizeBytes() int {
	n := 8 + 8 + 8 + 1 + len(s.AbortReason) + 8 + 8 // fixed fields
	for _, g := range s.Groups {
		n += 4 + 8*len(g)
	}
	for _, m := range s.Machines {
		n += 4
		for _, name := range m {
			n += 4 + len(name)
		}
	}
	for _, fb := range s.Fallbacks {
		n += 1 + len(fb.Method) + len(fb.Aborted) + len(fb.Err) + 3*4
	}
	return n
}

// Encode serialises the solution as the version-1 record payload.
func (s *Solution) Encode() ([]byte, error) {
	b := make([]byte, 0, s.SizeBytes()+64)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.Cost))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.AvgCost))
	var flags byte
	if s.Degraded {
		flags = 1
	}
	b = append(b, flags)
	var err error
	if b, err = appendString(b, s.AbortReason); err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.SolveMS))
	b = binary.BigEndian.AppendUint64(b, s.SolveID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Groups)))
	for _, g := range s.Groups {
		b = binary.BigEndian.AppendUint32(b, uint32(len(g)))
		for _, p := range g {
			b = binary.BigEndian.AppendUint64(b, uint64(int64(p)))
		}
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Machines)))
	for _, m := range s.Machines {
		b = binary.BigEndian.AppendUint32(b, uint32(len(m)))
		for _, name := range m {
			if b, err = appendString(b, name); err != nil {
				return nil, err
			}
		}
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Fallbacks)))
	for _, fb := range s.Fallbacks {
		if b, err = appendString(b, fb.Method); err != nil {
			return nil, err
		}
		var fbFlags byte
		if fb.Degraded {
			fbFlags = 1
		}
		b = append(b, fbFlags)
		if b, err = appendString(b, fb.Aborted); err != nil {
			return nil, err
		}
		if b, err = appendString(b, fb.Err); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeSolution parses a version-1 payload produced by Encode. It is
// strict: every length is bounded, every read is checked, and trailing
// bytes are an error — a record that decodes is a record that
// round-trips.
func DecodeSolution(b []byte) (*Solution, error) {
	d := &solutionDecoder{b: b}
	s := &Solution{}
	s.Cost = math.Float64frombits(d.u64())
	s.AvgCost = math.Float64frombits(d.u64())
	s.Degraded = d.u8() != 0
	s.AbortReason = d.str()
	s.SolveMS = math.Float64frombits(d.u64())
	s.SolveID = d.u64()
	nGroups := d.u32()
	if nGroups > maxSolutionGroups {
		return nil, fmt.Errorf("%w: %d groups", ErrCorrupt, nGroups)
	}
	if d.err == nil && nGroups > 0 {
		s.Groups = make([][]int, 0, min(int(nGroups), 1024))
		for i := uint32(0); i < nGroups && d.err == nil; i++ {
			nJobs := d.u32()
			if nJobs > maxSolutionGroups {
				return nil, fmt.Errorf("%w: %d jobs in group", ErrCorrupt, nJobs)
			}
			g := make([]int, 0, min(int(nJobs), 1024))
			for j := uint32(0); j < nJobs && d.err == nil; j++ {
				g = append(g, int(int64(d.u64())))
			}
			s.Groups = append(s.Groups, g)
		}
	}
	nMachines := d.u32()
	if nMachines > maxSolutionGroups {
		return nil, fmt.Errorf("%w: %d machines", ErrCorrupt, nMachines)
	}
	if d.err == nil && nMachines > 0 {
		s.Machines = make([][]string, 0, min(int(nMachines), 1024))
		for i := uint32(0); i < nMachines && d.err == nil; i++ {
			nNames := d.u32()
			if nNames > maxSolutionGroups {
				return nil, fmt.Errorf("%w: %d names in machine group", ErrCorrupt, nNames)
			}
			m := make([]string, 0, min(int(nNames), 1024))
			for j := uint32(0); j < nNames && d.err == nil; j++ {
				m = append(m, d.str())
			}
			s.Machines = append(s.Machines, m)
		}
	}
	nFallbacks := d.u32()
	if nFallbacks > maxSolutionFallbacks {
		return nil, fmt.Errorf("%w: %d fallbacks", ErrCorrupt, nFallbacks)
	}
	if d.err == nil && nFallbacks > 0 {
		s.Fallbacks = make([]SolutionFallback, 0, min(int(nFallbacks), 64))
		for i := uint32(0); i < nFallbacks && d.err == nil; i++ {
			var fb SolutionFallback
			fb.Method = d.str()
			fb.Degraded = d.u8() != 0
			fb.Aborted = d.str()
			fb.Err = d.str()
			s.Fallbacks = append(s.Fallbacks, fb)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b)-d.off)
	}
	return s, nil
}

// solutionDecoder is a cursor with sticky error state: after the first
// short or invalid read every later read returns zero values, and the
// caller checks err once at the end.
type solutionDecoder struct {
	b   []byte
	off int
	err error
}

func (d *solutionDecoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) {
		d.err = ErrTruncated
		return false
	}
	return true
}

func (d *solutionDecoder) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *solutionDecoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *solutionDecoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *solutionDecoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxSolutionStringLen {
		d.err = fmt.Errorf("%w: %d-byte string", ErrCorrupt, n)
		return ""
	}
	if !d.need(int(n)) {
		return ""
	}
	v := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return v
}

func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > maxSolutionStringLen {
		return b, fmt.Errorf("solvecache: string of %d bytes exceeds the %d-byte limit", len(s), maxSolutionStringLen)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...), nil
}
