package solvecache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// stringSpill is the test codec: values are their own bytes.
func stringSpill(dir string) *SpillConfig[string] {
	return &SpillConfig[string]{
		Dir:    dir,
		Encode: func(v string) ([]byte, error) { return []byte(v), nil },
		Decode: func(b []byte) (string, error) { return string(b), nil },
	}
}

func newSpilled(t *testing.T, dir string, cfg Config[string]) *Cache[string] {
	t.Helper()
	cfg.Spill = stringSpill(dir)
	c, err := NewWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := newSpilled(t, dir, Config[string]{})
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
	if got := c.Stats().Spilled; got != 10 {
		t.Fatalf("Spilled = %d; want 10", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory is pre-warmed.
	c2 := newSpilled(t, dir, Config[string]{})
	defer c2.Close() //nolint:errcheck
	st := c2.Stats()
	if st.Replayed != 10 || st.ReplaySkipped != 0 {
		t.Fatalf("Replayed/Skipped = %d/%d; want 10/0", st.Replayed, st.ReplaySkipped)
	}
	for i := 0; i < 10; i++ {
		v, ok := c2.Get(fmt.Sprintf("key-%d", i))
		if !ok || v != fmt.Sprintf("value-%d", i) {
			t.Errorf("key-%d = (%q, %v) after replay; want value", i, v, ok)
		}
	}
	// The restart-warm contract: a Do for a replayed key is a Hit.
	if _, out, _ := c2.Do("key-3", func() (string, bool, error) {
		t.Error("compute ran for a replayed key")
		return "", false, nil
	}); out != Hit {
		t.Errorf("Do on replayed key = %v; want Hit", out)
	}
}

func TestSpillReplayRespectsBounds(t *testing.T) {
	dir := t.TempDir()
	c := newSpilled(t, dir, Config[string]{})
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("key-%d", i), strings.Repeat("v", 32))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with tight bounds: replay must evict down to them.
	c2 := newSpilled(t, dir, Config[string]{
		Capacity: 8,
		MaxBytes: 8 * 64,
		SizeOf:   func(v string) int { return len(v) },
	})
	defer c2.Close() //nolint:errcheck
	st := c2.Stats()
	if st.Entries > 8 {
		t.Errorf("Entries = %d after bounded replay; want <= 8", st.Entries)
	}
	if st.Bytes > 8*64 {
		t.Errorf("Bytes = %d after bounded replay; want <= %d", st.Bytes, 8*64)
	}
	if st.Replayed == 0 {
		t.Error("Replayed = 0; want > 0")
	}
}

func TestSpillTornTail(t *testing.T) {
	dir := t.TempDir()
	c := newSpilled(t, dir, Config[string]{})
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record as a crash mid-append would.
	segs, _, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments = (%v, %v)", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	c2 := newSpilled(t, dir, Config[string]{})
	defer c2.Close() //nolint:errcheck
	st := c2.Stats()
	if st.Replayed != 4 || st.ReplaySkipped != 1 {
		t.Fatalf("Replayed/Skipped = %d/%d after torn tail; want 4/1", st.Replayed, st.ReplaySkipped)
	}
	// The torn bytes must be gone from disk: a third open replays clean.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3 := newSpilled(t, dir, Config[string]{})
	defer c3.Close() //nolint:errcheck
	if st := c3.Stats(); st.Replayed != 4 || st.ReplaySkipped != 0 {
		t.Errorf("Replayed/Skipped = %d/%d after truncation; want 4/0", st.Replayed, st.ReplaySkipped)
	}
}

func TestSpillCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	c := newSpilled(t, dir, Config[string]{})
	c.Put("early", "value-early")
	c.Put("mid", "value-mid")
	c.Put("late", "value-late")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the middle record's payload: the checksum must
	// reject it, and — record boundaries now being untrusted — the rest
	// of the segment is abandoned.
	segs, _, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments = (%v, %v)", segs, err)
	}
	b, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	_, n, err := DecodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	b[n+recordHeaderLen] ^= 0xFF // first key byte of the second record
	if err := os.WriteFile(segs[len(segs)-1], b, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := newSpilled(t, dir, Config[string]{})
	defer c2.Close() //nolint:errcheck
	st := c2.Stats()
	if st.Replayed != 1 {
		t.Errorf("Replayed = %d; want 1 (only the record before the rot)", st.Replayed)
	}
	if st.ReplaySkipped == 0 {
		t.Error("ReplaySkipped = 0; want > 0")
	}
	if _, ok := c2.Get("early"); !ok {
		t.Error("early entry lost")
	}
	if _, ok := c2.Get("mid"); ok {
		t.Error("corrupt entry replayed")
	}
}

func TestSpillVersionSkewSkipsRecord(t *testing.T) {
	dir := t.TempDir()
	c := newSpilled(t, dir, Config[string]{})
	c.Put("v1-a", "keep-a")
	c.Put("future", "from-a-newer-build")
	c.Put("v1-b", "keep-b")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	_, n, err := DecodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	b[n+1] = 99 // version byte of the second record
	if err := os.WriteFile(segs[len(segs)-1], b, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := newSpilled(t, dir, Config[string]{})
	defer c2.Close() //nolint:errcheck
	st := c2.Stats()
	if st.Replayed != 2 || st.ReplaySkipped != 1 {
		t.Fatalf("Replayed/Skipped = %d/%d; want 2/1 (skew skips one record, not the segment)",
			st.Replayed, st.ReplaySkipped)
	}
	if _, ok := c2.Get("v1-b"); !ok {
		t.Error("record after the skewed one was not replayed")
	}
}

func TestSpillRotation(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[string]{}
	cfg.Spill = stringSpill(dir)
	cfg.Spill.SegmentBytes = 256
	c, err := NewWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		c.Put(fmt.Sprintf("key-%02d", i), strings.Repeat("v", 32))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("%d segments after 40 stores at 256-byte rotation; want >= 2", len(segs))
	}
	// Sealed segments are manifested.
	manifest, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.TrimSpace(string(manifest))) == 0 {
		t.Error("MANIFEST empty after rotation; want sealed segment names")
	}

	cfg2 := Config[string]{}
	cfg2.Spill = stringSpill(dir)
	cfg2.Spill.SegmentBytes = 256
	c2, err := NewWithConfig(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close() //nolint:errcheck
	if st := c2.Stats(); st.Replayed != 40 {
		t.Errorf("Replayed = %d across rotated segments; want 40", st.Replayed)
	}
	// Compaction collapsed the old generation: the live set fits one
	// fresh segment... which at 256-byte rotation is several files, but
	// strictly no more than needed for 40 live entries.
	segs2, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		for _, s2 := range segs2 {
			if s == s2 {
				t.Errorf("old segment %s survived compaction", s)
			}
		}
	}
}

// TestSpillConcurrentDoSingleShard is the -race test the ISSUE asks
// for: concurrent Do traffic on ONE shard (capacity below the shard
// threshold) with byte-bound eviction running while flights for the
// same keys are in progress, over a replayed spill — eviction during an
// in-flight computation of the same key must not corrupt the flight
// table or the byte accounting.
func TestSpillConcurrentDoSingleShard(t *testing.T) {
	dir := t.TempDir()
	sized := Config[string]{
		Capacity: 32, // single shard
		MaxBytes: 512,
		SizeOf:   func(v string) int { return len(v) },
	}
	seed := newSpilled(t, dir, sized)
	for i := 0; i < 16; i++ {
		seed.Put(fmt.Sprintf("key-%d", i), strings.Repeat("s", 24))
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	c := newSpilled(t, dir, sized)
	if c.Stats().Replayed == 0 {
		t.Fatal("no replay; the test wants spill + live traffic together")
	}
	const workers, rounds, keys = 8, 50, 24
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("key-%d", (w+r)%keys)
				v, _, err := c.Do(key, func() (string, bool, error) {
					return strings.Repeat("x", 24), true, nil
				})
				if err != nil || len(v) != 24 {
					t.Errorf("Do(%s) = (%q, %v)", key, v, err)
				}
				if r%7 == 0 {
					// Interleave Puts so eviction churns while flights
					// for the same keys are registered.
					c.Put(fmt.Sprintf("churn-%d-%d", w, r), strings.Repeat("c", 24))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 512 {
		t.Errorf("Bytes = %d under concurrent load; want <= 512", st.Bytes)
	}
	if len(c.shards) != 1 {
		t.Fatalf("%d shards; the test requires the single-shard regime", len(c.shards))
	}
	if got := len(c.shards[0].flights); got != 0 {
		t.Errorf("%d flights leaked after all Do calls returned", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The log survived the churn: one more replay round-trips.
	c3 := newSpilled(t, dir, sized)
	defer c3.Close() //nolint:errcheck
	if st := c3.Stats(); st.Replayed == 0 {
		t.Error("nothing replayed after concurrent spill traffic")
	}
}

func TestSpillSurvivesCloseRace(t *testing.T) {
	dir := t.TempDir()
	c := newSpilled(t, dir, Config[string]{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Put(fmt.Sprintf("key-%d-%d", w, i), "v")
			}
		}(w)
	}
	if err := c.Close(); err != nil { // races the Puts: must not panic
		t.Fatal(err)
	}
	wg.Wait()
	c2 := newSpilled(t, dir, Config[string]{})
	defer c2.Close() //nolint:errcheck
	// Whatever made it to disk before Close replays clean; post-Close
	// Puts stayed memory-only.
	if st := c2.Stats(); st.ReplaySkipped != 0 {
		t.Errorf("ReplaySkipped = %d after Close race; want 0", st.ReplaySkipped)
	}
}
