// Write-behind disk spill for the cache: every stored entry is
// appended (asynchronously from the caller's point of view — the store
// itself never waits on fsync) to a segment log, and a cache
// constructed over the same directory replays the log to pre-warm its
// LRU.
//
// On-disk layout, inside the spill directory:
//
//	cache-00000001.seg   framed records (see codec.go), append-only
//	cache-00000002.seg   ...
//	MANIFEST             names of sealed segments, one per line, fsync'd
//
// A segment rotates once it crosses SegmentBytes: the old file is
// fsync'd, its name appended to the fsync'd MANIFEST, and a fresh
// segment opened — so everything outside the active tail is durable,
// and only the tail can be crash-torn. Replay reads the segments in
// name order: a truncated record in the final segment is treated as a
// torn tail and physically truncated away; corruption anywhere else
// abandons the rest of that segment (its framing can no longer be
// trusted) but keeps replaying the following ones. Version-skewed
// records are skipped individually. After replay, the live entries are
// compacted into a fresh segment generation and the old files deleted,
// so the log's size tracks the cache's population instead of its
// entire store history.
package solvecache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	segmentPrefix       = "cache-"
	segmentSuffix       = ".seg"
	manifestName        = "MANIFEST"
	defaultSegmentBytes = 4 << 20
)

// spillLog is the append side of the segment log. It is not
// concurrency-safe on its own: Cache serialises access under spillMu.
type spillLog struct {
	dir          string
	segmentBytes int64
	f            *os.File // active segment
	fSize        int64
	seq          int // sequence number of the active segment
}

// attachSpill opens (or creates) the spill log under cfg, replays it
// into the cache, compacts the surviving entries, and wires the log in
// for write-behind appends. Called from NewWithConfig before the cache
// is shared, so replay may use putLocked without spill re-appends.
func (c *Cache[V]) attachSpill(cfg *SpillConfig[V]) error {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("solvecache: spill dir: %w", err)
	}
	segBytes := cfg.SegmentBytes
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	segs, maxSeq, err := listSegments(cfg.Dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		replayed, skipped, err := c.replaySegment(seg, cfg.Decode, i == len(segs)-1)
		if err != nil {
			return err
		}
		c.replayed += replayed
		c.replaySkipped += skipped
	}
	log := &spillLog{dir: cfg.Dir, segmentBytes: segBytes, seq: maxSeq}
	if err := c.compact(log, cfg.Encode, segs); err != nil {
		return err
	}
	c.spill = log
	c.encode = cfg.Encode
	return nil
}

// listSegments returns the directory's segment files in name (== age)
// order, plus the highest sequence number seen. The MANIFEST is
// advisory — the directory scan is the source of truth, so a crash
// between segment creation and manifest append loses nothing.
func listSegments(dir string) (paths []string, maxSeq int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("solvecache: spill dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(name, segmentPrefix+"%08d"+segmentSuffix, &seq); err != nil {
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Strings(paths)
	return paths, maxSeq, nil
}

// replaySegment replays one segment file into the cache. A torn record
// in the log's final segment (isTail) is truncated away; any other
// decode failure skips the rest of the segment. Only I/O errors — not
// data errors — fail the replay.
func (c *Cache[V]) replaySegment(path string, decode func([]byte) (V, error), isTail bool) (replayed, skipped int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("solvecache: replay %s: %w", path, err)
	}
	off := 0
	for off < len(b) {
		rec, n, err := DecodeRecord(b[off:])
		switch {
		case err == nil:
			off += n
			v, derr := decode(rec.Value)
			if derr != nil {
				skipped++
				continue
			}
			s := c.shardFor(rec.Key)
			s.mu.Lock()
			evicted := s.putLocked(rec.Key, v)
			s.mu.Unlock()
			s.notifyEvicted(evicted)
			replayed++
		case errors.Is(err, errVersionSkew):
			// The frame validated, so n is trustworthy: skip just this
			// record and keep going.
			off += n
			skipped++
		case errors.Is(err, ErrTruncated) && isTail:
			// Crash-torn tail: drop the partial record from disk so the
			// next writer appends onto a clean prefix.
			skipped++
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return replayed, skipped, fmt.Errorf("solvecache: truncate torn tail of %s: %w", path, terr)
			}
			return replayed, skipped, nil
		default:
			// Corruption (or truncation away from the tail, which means
			// a sealed segment lost bytes): record boundaries after
			// this point are unknowable, so abandon the segment.
			skipped++
			return replayed, skipped, nil
		}
	}
	return replayed, skipped, nil
}

// compact writes the cache's current population into a fresh segment
// generation, points the manifest at it, and deletes the replayed
// files, leaving the log no larger than the live set. Entries are
// written back-to-front per shard so replaying the compacted log
// reproduces the LRU order (most recent inserted last = most recent).
func (c *Cache[V]) compact(log *spillLog, encode func(V) ([]byte, error), oldSegs []string) error {
	if err := log.openSegment(); err != nil {
		return err
	}
	var buf []byte
	for _, s := range c.shards {
		s.mu.Lock()
		for e := s.ll.Back(); e != nil; e = e.Prev() {
			ent := e.Value.(*entry[V])
			val, err := encode(ent.v)
			if err != nil {
				continue // undecodable-for-reencode: drop from the log only
			}
			buf, err = AppendRecord(buf[:0], Record{Key: ent.key, Value: val})
			if err != nil {
				continue
			}
			if _, err := log.f.Write(buf); err != nil {
				s.mu.Unlock()
				return fmt.Errorf("solvecache: compact: %w", err)
			}
			log.fSize += int64(len(buf))
		}
		s.mu.Unlock()
	}
	if err := log.f.Sync(); err != nil {
		return fmt.Errorf("solvecache: compact: %w", err)
	}
	// The compacted segment is durable; now retire the old generation.
	for _, p := range oldSegs {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("solvecache: compact: %w", err)
		}
	}
	return log.writeManifest(nil)
}

// openSegment starts the next segment file in sequence.
func (l *spillLog) openSegment() error {
	l.seq++
	path := filepath.Join(l.dir, fmt.Sprintf(segmentPrefix+"%08d"+segmentSuffix, l.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("solvecache: open segment: %w", err)
	}
	l.f, l.fSize = f, 0
	return nil
}

// writeManifest atomically replaces the MANIFEST with the sealed
// segment names (the active tail is never listed — the directory scan
// finds it).
func (l *spillLog) writeManifest(sealed []string) error {
	tmp := filepath.Join(l.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("solvecache: manifest: %w", err)
	}
	for _, name := range sealed {
		if _, err := fmt.Fprintln(f, name); err != nil {
			f.Close() //nolint:errcheck
			return fmt.Errorf("solvecache: manifest: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck
		return fmt.Errorf("solvecache: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("solvecache: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, manifestName)); err != nil {
		return fmt.Errorf("solvecache: manifest: %w", err)
	}
	return nil
}

// sealedSegments reads the MANIFEST (advisory, may trail reality).
func (l *spillLog) sealedSegments() []string {
	b, err := os.ReadFile(filepath.Join(l.dir, manifestName))
	if err != nil {
		return nil
	}
	var names []string
	for _, line := range strings.Split(string(b), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			names = append(names, line)
		}
	}
	return names
}

// append frames and writes one record to the active segment, rotating
// first when the segment is full. Write-behind: no per-record fsync —
// a crash loses at most the tail since the last rotation, which replay
// already tolerates.
func (l *spillLog) append(rec Record) error {
	buf, err := AppendRecord(nil, rec)
	if err != nil {
		return err
	}
	if l.fSize > 0 && l.fSize+int64(len(buf)) > l.segmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("solvecache: spill append: %w", err)
	}
	l.fSize += int64(len(buf))
	return nil
}

// rotate seals the active segment (fsync + manifest) and opens the
// next one.
func (l *spillLog) rotate() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("solvecache: seal segment: %w", err)
	}
	sealedName := filepath.Base(l.f.Name())
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("solvecache: seal segment: %w", err)
	}
	if err := l.writeManifest(append(l.sealedSegments(), sealedName)); err != nil {
		return err
	}
	return l.openSegment()
}

// close syncs and closes the active segment.
func (l *spillLog) close() error {
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close() //nolint:errcheck
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// spillAppend write-behinds one stored entry to the log. Failures are
// counted, never propagated: the entry stays resident, only its
// persistence is lost.
func (c *Cache[V]) spillAppend(key string, v V) {
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	if c.spill == nil {
		return
	}
	val, err := c.encode(v)
	if err != nil {
		c.spillErrors.Add(1)
		return
	}
	if err := c.spill.append(Record{Key: key, Value: val}); err != nil {
		c.spillErrors.Add(1)
		return
	}
	c.spilled.Add(1)
}

// Close flushes and closes the spill log (a no-op for memory-only
// caches). The cache itself remains usable; further stores simply stop
// being persisted.
func (c *Cache[V]) Close() error {
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	if c.spill == nil {
		return nil
	}
	err := c.spill.close()
	c.spill = nil
	return err
}
