package solvecache

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sampleSolution() *Solution {
	return &Solution{
		Cost:        3.25,
		AvgCost:     1.625,
		Groups:      [][]int{{0, 3}, {1, 2}, {4}},
		Machines:    [][]string{{"lu", "astar"}, {"mg", "bt"}, {"ft"}},
		Degraded:    false,
		AbortReason: "",
		Fallbacks: []SolutionFallback{
			{Method: "ip", Degraded: false, Aborted: "deadline", Err: "lp relaxation timed out"},
			{Method: "hastar", Degraded: false},
		},
		SolveMS: 12.5,
		SolveID: 42,
	}
}

func TestSolutionRoundTrip(t *testing.T) {
	for name, s := range map[string]*Solution{
		"full":  sampleSolution(),
		"empty": {},
		"degraded": {
			Cost: 9, AvgCost: 3, Degraded: true, AbortReason: "memory",
			Groups: [][]int{{0}}, Machines: [][]string{{"m"}},
		},
	} {
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		got, err := DecodeSolution(enc)
		if err != nil {
			t.Fatalf("%s: DecodeSolution: %v", name, err)
		}
		reenc, err := got.Encode()
		if err != nil {
			t.Fatalf("%s: re-Encode: %v", name, err)
		}
		if !bytes.Equal(enc, reenc) {
			t.Errorf("%s: round trip is not identity", name)
		}
		if got.Cost != s.Cost || got.SolveID != s.SolveID || got.Degraded != s.Degraded {
			t.Errorf("%s: decoded %+v; want %+v", name, got, s)
		}
	}
}

func TestDecodeSolutionRejectsDamage(t *testing.T) {
	enc, err := sampleSolution().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSolution(enc[:len(enc)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short payload: err = %v; want ErrTruncated", err)
	}
	if _, err := DecodeSolution(append(append([]byte(nil), enc...), 0xFF)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: err = %v; want ErrCorrupt", err)
	}
	if _, err := DecodeSolution(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty payload: err = %v; want ErrTruncated", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{Key: "fingerprint-abc", Value: []byte("payload bytes")}
	b, err := AppendRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	// Two records back to back decode in sequence.
	b, err = AppendRecord(b, Record{Key: "k2", Value: nil})
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeRecord(b)
	if err != nil || got.Key != rec.Key || !bytes.Equal(got.Value, rec.Value) {
		t.Fatalf("DecodeRecord = (%+v, %v); want %+v", got, err, rec)
	}
	got2, n2, err := DecodeRecord(b[n:])
	if err != nil || got2.Key != "k2" || len(got2.Value) != 0 {
		t.Fatalf("second DecodeRecord = (%+v, %v)", got2, err)
	}
	if n+n2 != len(b) {
		t.Errorf("records consumed %d of %d bytes", n+n2, len(b))
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	b, err := AppendRecord(nil, Record{Key: "k", Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeRecord(b[:len(b)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("torn tail: err = %v; want ErrTruncated", err)
	}
	if _, _, err := DecodeRecord(b[:5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("torn header: err = %v; want ErrTruncated", err)
	}

	badMagic := append([]byte(nil), b...)
	badMagic[0] = 0x00
	if _, _, err := DecodeRecord(badMagic); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v; want ErrCorrupt", err)
	}

	flipped := append([]byte(nil), b...)
	flipped[len(flipped)-1] ^= 0xFF // damage the value: checksum must catch it
	if _, _, err := DecodeRecord(flipped); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped payload: err = %v; want ErrCorrupt", err)
	}

	insane := append([]byte(nil), b...)
	insane[2], insane[3] = 0xFF, 0xFF // keyLen far beyond maxKeyLen
	if _, _, err := DecodeRecord(insane); !errors.Is(err, ErrCorrupt) {
		t.Errorf("insane length: err = %v; want ErrCorrupt", err)
	}

	// Version-skewed record: frame validates, n covers the record, so a
	// replayer can skip it and keep going.
	skewed := append([]byte(nil), b...)
	skewed[1] = 99
	_, n, err := DecodeRecord(skewed)
	if !errors.Is(err, errVersionSkew) {
		t.Fatalf("version skew: err = %v; want errVersionSkew", err)
	}
	if n != len(b) {
		t.Errorf("version skew: n = %d; want %d (skippable)", n, len(b))
	}
}

func TestAppendRecordBounds(t *testing.T) {
	if _, err := AppendRecord(nil, Record{Key: strings.Repeat("k", maxKeyLen+1)}); err == nil {
		t.Error("oversized key accepted")
	}
	if _, err := AppendRecord(nil, Record{Key: "k", Value: make([]byte, maxValueLen+1)}); err == nil {
		t.Error("oversized value accepted")
	}
}

// FuzzDecodeRecord feeds the record decoder arbitrary bytes: it must
// never panic, and anything it accepts must round-trip byte for byte.
func FuzzDecodeRecord(f *testing.F) {
	seed, _ := AppendRecord(nil, Record{Key: "fingerprint", Value: []byte("solution")})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{recordMagic})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeRecord(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("accepted record consumed %d of %d bytes", n, len(b))
		}
		reenc, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, b[:n]) {
			t.Fatal("accepted record does not round-trip to its input bytes")
		}
	})
}

// FuzzDecodeSolution does the same for the value payload decoder.
func FuzzDecodeSolution(f *testing.F) {
	seed, _ := sampleSolution().Encode()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSolution(b)
		if err != nil {
			return
		}
		reenc, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted solution does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, b) {
			t.Fatal("accepted solution does not round-trip to its input bytes")
		}
	})
}
