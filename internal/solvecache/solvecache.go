// Package solvecache provides the serving daemon's solved-schedule
// cache: a byte- and capacity-bounded LRU keyed by canonical
// instance+options fingerprints, with singleflight deduplication so
// that concurrent requests for the same schedule run the solver once
// and share the result, and an optional write-behind disk spill so a
// daemon restarted against the same directory keeps its hit rate.
//
// The cache is value-agnostic (a type parameter) and policy-free: the
// caller decides what is cacheable — the daemon only stores proven,
// non-degraded schedules — by returning ok=false from the compute
// callback of Do.
//
// Internally the key space is split over lock-striped shards (by a hash
// of the fingerprint string), each an independent LRU+singleflight
// behind its own mutex, so a daemon running many solver workers does not
// serialise every request on one cache lock. Small capacities stay on a
// single shard, keeping the LRU eviction order exact where tests and
// tiny deployments can observe it; see New.
//
// Bounding is byte-accurate when Config.SizeOf is supplied: every
// resident entry is charged len(key) + SizeOf(value) bytes against
// Config.MaxBytes, split over the shards, and shards evict
// least-recently-used entries until back under their share. The legacy
// entry-count bound (Config.Capacity) composes with it — an entry is
// evicted when either bound is exceeded.
//
// Persistence (Config.Spill) appends every stored entry to a
// length-prefixed, checksummed segment log (see codec.go and spill.go);
// constructing a cache over the same directory replays the valid
// records to pre-warm the LRU. Corrupt or version-skewed records are
// skipped, and a crash-torn tail is truncated, never trusted.
package solvecache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Outcome classifies how a Do call obtained its value.
type Outcome int

// Do outcomes, in increasing order of luck: the caller computed the
// value itself, waited for a concurrent caller's computation, or got an
// instant cached copy.
const (
	Miss Outcome = iota
	Shared
	Hit
)

// String names the outcome for logs and metrics labels.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Shared:
		return "shared"
	case Hit:
		return "hit"
	default:
		return "unknown"
	}
}

// Stats is a point-in-time snapshot of cache effectiveness counters,
// aggregated across shards. Hits + Misses + Shared equals the number of
// logical Get/Do calls: a Do that internally retried after a panicked
// leader still contributes exactly one outcome (the retry rounds are
// counted separately under Retries).
type Stats struct {
	// Hits counts Do/Get calls answered from the cache.
	Hits int64
	// Misses counts Do/Get calls that found no entry.
	Misses int64
	// Shared counts Do calls that waited on another caller's in-flight
	// computation instead of running their own.
	Shared int64
	// Retries counts the extra singleflight rounds Do callers ran after
	// a flight leader died without a result (panicked). Retried calls
	// keep their original outcome classification, so Retries is
	// additional work, not an additional outcome.
	Retries int64
	// Evictions counts entries removed by the capacity or byte bound
	// (including entries rejected at store time because they exceed a
	// shard's entire byte share).
	Evictions int64
	// Entries is the current cache population.
	Entries int
	// Bytes is the resident-set charge of the current population:
	// len(key) + SizeOf(value) summed over entries. Zero when the cache
	// was built without a SizeOf function.
	Bytes int64
	// Replayed counts entries pre-warmed from the spill log at
	// construction; ReplaySkipped the log records dropped during that
	// replay (corrupt, version-skewed, torn tail, or undecodable
	// values). Both are zero for caches without a spill.
	Replayed      int64
	ReplaySkipped int64
	// Spilled counts entries appended to the spill log since
	// construction (replay and compaction rewrites excluded);
	// SpillErrors the appends dropped because encoding or the log write
	// failed. Spill failures never fail the store — the entry stays
	// resident, only its persistence is lost.
	Spilled     int64
	SpillErrors int64
}

// nShards is the stripe count of a sharded cache (a power of two). 16
// keeps worst-case lock contention at 1/16th of a single mutex while
// costing only a few hundred spare bytes per idle shard.
const nShards = 16

// shardThreshold is the capacity below which the cache stays on a
// single shard: splitting a tiny capacity across 16 LRUs would make the
// effective eviction order depend on key hashes, and the contention a
// sub-64-entry deployment can generate does not need striping.
const shardThreshold = 64

// maxDoAttempts bounds the singleflight rounds of one Do call: the
// initial round plus up to maxDoAttempts-1 retries after panicked
// leaders. A caller that exhausts the budget computes alone, outside
// the flight table, so repeatedly-panicking computations can never
// recurse Do unboundedly.
const maxDoAttempts = 4

// entry is one cached key/value pair, stored as a list.Element value so
// recency updates are pointer moves. cost is the entry's byte charge at
// store time (0 when the cache is unsized).
type entry[V any] struct {
	key  string
	v    V
	cost int64
}

// flight is one in-progress computation other callers can wait on.
type flight[V any] struct {
	done  chan struct{}
	v     V
	ok    bool
	err   error
	retry bool // leader died without a result; waiters recompute
}

// shard is one lock stripe of the cache: an independent LRU with its
// own singleflight table and effectiveness counters.
type shard[V any] struct {
	c         *Cache[V]
	mu        sync.Mutex
	m         map[string]*list.Element
	ll        *list.List // front = most recently used
	flights   map[string]*flight[V]
	capacity  int
	maxBytes  int64
	bytes     int64
	onEvict   func(key string)
	hits      int64
	misses    int64
	shared    int64
	evictions int64
}

// Cache is a concurrency-safe, capacity- and byte-bounded LRU with
// singleflight computation, striped over independent shards by key
// hash, optionally persisted to a spill-log directory. The zero value
// is not usable; construct with New or NewWithConfig.
type Cache[V any] struct {
	shards []*shard[V]
	mask   uint64
	sizeOf func(V) int

	// O(1) aggregates, maintained by the shards under their locks.
	bytesTotal   atomic.Int64
	entriesTotal atomic.Int64
	retries      atomic.Int64

	// Spill state. spillMu serialises appends against Close; the
	// replay-time counters are fixed at construction.
	spillMu       sync.Mutex
	spill         *spillLog
	encode        func(V) ([]byte, error)
	spilled       atomic.Int64
	spillErrors   atomic.Int64
	replayed      int64
	replaySkipped int64
}

// SpillConfig enables the write-behind disk spill: stored entries are
// appended to a segment log under Dir, and constructing a cache over
// the same directory replays the log to pre-warm the LRU (see spill.go
// for the on-disk format and crash-tolerance rules).
type SpillConfig[V any] struct {
	// Dir is the spill directory, created if missing. One cache owns a
	// directory at a time; there is no cross-process locking.
	Dir string
	// Encode serialises a value for the log; Decode reverses it. A
	// Decode error during replay skips that record (counted under
	// Stats.ReplaySkipped) — replay never trusts a record it cannot
	// validate end to end.
	Encode func(V) ([]byte, error)
	Decode func([]byte) (V, error)
	// SegmentBytes caps each segment file before the log rotates to a
	// fresh one (<= 0 means 4 MiB). Sealed segments are recorded in a
	// synced manifest; only the active tail can be crash-torn.
	SegmentBytes int64
}

// Config sizes a cache for NewWithConfig. At least one bound (Capacity
// or MaxBytes) should be set for a long-running process; a zero Config
// is a valid unbounded, unsized, memory-only cache.
type Config[V any] struct {
	// Capacity bounds the entry count (<= 0 means unbounded). The bound
	// is exact: shards split it with the remainder distributed, so the
	// summed shard capacities equal Capacity.
	Capacity int
	// MaxBytes bounds the resident byte charge (<= 0 means unbounded);
	// requires SizeOf. Each entry is charged len(key) + SizeOf(value).
	// An entry larger than an entire shard's byte share is rejected at
	// store time (reported as an immediate eviction) rather than
	// evicting the whole shard for nothing.
	MaxBytes int64
	// SizeOf reports a value's byte cost. Required when MaxBytes > 0;
	// without it Stats.Bytes stays zero.
	SizeOf func(V) int
	// OnEvict, if non-nil, is called — outside the cache lock — with
	// each key removed by a bound (including store-time rejections of
	// oversized entries, whose keys were never resident).
	OnEvict func(key string)
	// Spill, if non-nil, enables the disk spill (see SpillConfig).
	Spill *SpillConfig[V]
}

// New returns a memory-only cache holding at most capacity entries
// (capacity <= 0 means unbounded). Capacities of shardThreshold and
// above — and the unbounded case — are striped over nShards shards;
// smaller capacities use a single shard so the LRU eviction order stays
// globally exact. The configured capacity is exact: the shard shares
// sum to it. onEvict, if non-nil, is called — outside the cache lock —
// with each key removed by the capacity bound.
func New[V any](capacity int, onEvict func(key string)) *Cache[V] {
	c, err := NewWithConfig(Config[V]{Capacity: capacity, OnEvict: onEvict})
	if err != nil {
		// Unreachable: only spill and bound-validation paths error, and
		// this configuration uses neither.
		panic(err)
	}
	return c
}

// NewWithConfig builds a cache from cfg, replaying the spill log (when
// configured) to pre-warm the LRU before returning. Replay skips — and
// physically truncates, for the crash-torn tail — records that fail
// validation; it never fails the construction. Errors are limited to
// invalid configurations and an unusable spill directory.
func NewWithConfig[V any](cfg Config[V]) (*Cache[V], error) {
	if cfg.MaxBytes > 0 && cfg.SizeOf == nil {
		return nil, fmt.Errorf("solvecache: MaxBytes requires a SizeOf function")
	}
	if cfg.Spill != nil {
		switch {
		case cfg.Spill.Dir == "":
			return nil, fmt.Errorf("solvecache: spill requires a directory")
		case cfg.Spill.Encode == nil || cfg.Spill.Decode == nil:
			return nil, fmt.Errorf("solvecache: spill requires Encode and Decode functions")
		}
	}
	n := nShards
	if cfg.Capacity > 0 && cfg.Capacity < shardThreshold {
		n = 1
	}
	c := &Cache[V]{shards: make([]*shard[V], n), mask: uint64(n - 1), sizeOf: cfg.SizeOf}
	for i := range c.shards {
		cap := 0
		if cfg.Capacity > 0 {
			// Exact split: the first Capacity%n shards take the
			// remainder, so the shard bounds sum to Capacity (a plain
			// ceil would let a 65-entry cache hold 80).
			cap = cfg.Capacity / n
			if i < cfg.Capacity%n {
				cap++
			}
		}
		var maxB int64
		if cfg.MaxBytes > 0 {
			maxB = cfg.MaxBytes / int64(n)
			if int64(i) < cfg.MaxBytes%int64(n) {
				maxB++
			}
		}
		c.shards[i] = &shard[V]{
			c:        c,
			m:        make(map[string]*list.Element),
			ll:       list.New(),
			flights:  make(map[string]*flight[V]),
			capacity: cap,
			maxBytes: maxB,
			onEvict:  cfg.OnEvict,
		}
	}
	if cfg.Spill != nil {
		if err := c.attachSpill(cfg.Spill); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// shardFor routes a key to its stripe (FNV-1a over the key bytes).
func (c *Cache[V]) shardFor(key string) *shard[V] {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h&c.mask]
}

// Get returns the cached value for key, refreshing its recency.
//
// Stats contract: every Get counts one outcome (a hit or a miss), just
// like Do. A caller that probes Get before calling Do for the same
// request therefore counts two outcomes for one logical lookup and
// skews hit-rate metrics — use a single Do per request instead.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	s.hits++
	s.ll.MoveToFront(e)
	v := e.Value.(*entry[V]).v
	s.mu.Unlock()
	return v, true
}

// Put stores a value under key (refreshing recency if it already
// exists), evicts the shard's least-recently-used entries beyond its
// capacity and byte shares, and appends the entry to the spill log when
// one is configured. Put itself counts no outcome.
func (c *Cache[V]) Put(key string, v V) {
	s := c.shardFor(key)
	s.mu.Lock()
	evicted := s.putLocked(key, v)
	s.mu.Unlock()
	s.notifyEvicted(evicted)
	c.spillAppend(key, v)
}

// putLocked inserts or refreshes an entry and applies both bounds,
// returning the evicted keys for out-of-lock notification.
func (s *shard[V]) putLocked(key string, v V) []string {
	var cost int64
	if s.c.sizeOf != nil {
		cost = int64(len(key)) + int64(s.c.sizeOf(v))
	}
	if e, ok := s.m[key]; ok {
		ent := e.Value.(*entry[V])
		s.bytes += cost - ent.cost
		s.c.bytesTotal.Add(cost - ent.cost)
		ent.v, ent.cost = v, cost
		s.ll.MoveToFront(e)
		return s.evictLocked(nil)
	}
	if s.maxBytes > 0 && cost > s.maxBytes {
		// Bigger than this shard's entire byte share: storing it would
		// evict every co-resident entry and then itself. Reject at the
		// door, reported as an immediate eviction of the new key.
		s.evictions++
		return []string{key}
	}
	s.m[key] = s.ll.PushFront(&entry[V]{key: key, v: v, cost: cost})
	s.bytes += cost
	s.c.bytesTotal.Add(cost)
	s.c.entriesTotal.Add(1)
	return s.evictLocked(nil)
}

// evictLocked removes LRU entries until the shard satisfies both its
// entry and byte bounds, appending the removed keys to evicted.
func (s *shard[V]) evictLocked(evicted []string) []string {
	for (s.capacity > 0 && s.ll.Len() > s.capacity) ||
		(s.maxBytes > 0 && s.bytes > s.maxBytes) {
		back := s.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*entry[V])
		s.ll.Remove(back)
		delete(s.m, ent.key)
		s.bytes -= ent.cost
		s.c.bytesTotal.Add(-ent.cost)
		s.c.entriesTotal.Add(-1)
		s.evictions++
		evicted = append(evicted, ent.key)
	}
	return evicted
}

func (s *shard[V]) notifyEvicted(keys []string) {
	if s.onEvict == nil {
		return
	}
	for _, k := range keys {
		s.onEvict(k)
	}
}

// Do returns the value for key, computing it at most once across
// concurrent callers. On a cache hit the computation never runs. On a
// miss, exactly one caller runs compute while the rest block and share
// its result; compute's ok return decides whether the value is stored
// (uncacheable or failed computations are handed to their callers but
// never cached, so a later Do retries). If compute panics, the panic
// propagates to that caller while waiting callers transparently retry —
// the flight is cleaned up either way, so a panic never wedges the key.
//
// Stats contract: every Do counts exactly one outcome (hit, miss or
// shared), decided on its first round; internal retry rounds after a
// panicked leader are counted under Stats.Retries instead of inflating
// the outcome counters. Retries are bounded: after maxDoAttempts rounds
// a caller runs compute alone, outside the flight table, so a
// repeatedly-panicking computation terminates instead of recursing.
func (c *Cache[V]) Do(key string, compute func() (V, bool, error)) (V, Outcome, error) {
	s := c.shardFor(key)
	counted := false
	for attempt := 1; ; attempt++ {
		s.mu.Lock()
		if e, ok := s.m[key]; ok {
			if !counted {
				s.hits++
			}
			s.ll.MoveToFront(e)
			v := e.Value.(*entry[V]).v
			s.mu.Unlock()
			return v, Hit, nil
		}
		if f, ok := s.flights[key]; ok && attempt < maxDoAttempts {
			if !counted {
				s.shared++
				counted = true
			}
			s.mu.Unlock()
			<-f.done
			if f.retry {
				// The leader's computation vanished without a result
				// (panic): its zero value is not an answer, so run
				// another round — as a fresh waiter or the new leader.
				c.retries.Add(1)
				continue
			}
			return f.v, Shared, f.err
		}
		// Leader path. Past the retry budget the flight table is left
		// untouched (f == nil): the caller computes alone, bounding the
		// damage a panicking compute can do to its waiters.
		var f *flight[V]
		if attempt < maxDoAttempts {
			f = &flight[V]{done: make(chan struct{})}
			s.flights[key] = f
		}
		if !counted {
			s.misses++
			counted = true
		}
		s.mu.Unlock()
		return c.lead(s, key, f, compute)
	}
}

// lead runs compute as the flight leader (or alone, past the retry
// budget, when f is nil), stores cacheable results, and settles the
// flight — including the panic path, where waiters are told to retry.
func (c *Cache[V]) lead(s *shard[V], key string, f *flight[V], compute func() (V, bool, error)) (V, Outcome, error) {
	if f == nil {
		v, ok, err := compute()
		if ok && err == nil {
			s.mu.Lock()
			evicted := s.putLocked(key, v)
			s.mu.Unlock()
			s.notifyEvicted(evicted)
			c.spillAppend(key, v)
		}
		return v, Miss, err
	}
	completed := false
	defer func() {
		s.mu.Lock()
		delete(s.flights, key)
		stored := completed && f.ok && f.err == nil
		var evicted []string
		if stored {
			evicted = s.putLocked(key, f.v)
		}
		if !completed {
			f.retry = true // leader panicked: waiters must recompute
		}
		s.mu.Unlock()
		s.notifyEvicted(evicted)
		close(f.done)
		if stored {
			c.spillAppend(key, f.v)
		}
	}()
	v, ok, err := compute()
	completed = true
	f.v, f.ok, f.err = v, ok, err
	return v, Miss, err
}

// Len returns the current entry count across all shards (O(1)).
func (c *Cache[V]) Len() int {
	return int(c.entriesTotal.Load())
}

// Bytes returns the resident byte charge across all shards (O(1); zero
// for unsized caches).
func (c *Cache[V]) Bytes() int64 {
	return c.bytesTotal.Load()
}

// Retries returns the singleflight retry rounds run so far (O(1); see
// Stats.Retries).
func (c *Cache[V]) Retries() int64 {
	return c.retries.Load()
}

// Spilled returns the entries appended to the spill log so far (O(1);
// see Stats.Spilled).
func (c *Cache[V]) Spilled() int64 {
	return c.spilled.Load()
}

// Stats snapshots the effectiveness counters, summed across shards.
func (c *Cache[V]) Stats() Stats {
	st := Stats{
		Retries:       c.retries.Load(),
		Bytes:         c.bytesTotal.Load(),
		Replayed:      c.replayed,
		ReplaySkipped: c.replaySkipped,
		Spilled:       c.spilled.Load(),
		SpillErrors:   c.spillErrors.Load(),
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Shared += s.shared
		st.Evictions += s.evictions
		st.Entries += s.ll.Len()
		s.mu.Unlock()
	}
	return st
}
