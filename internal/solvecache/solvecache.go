// Package solvecache provides the serving daemon's solved-schedule
// cache: a capacity-bounded LRU keyed by canonical instance+options
// fingerprints, with singleflight deduplication so that concurrent
// requests for the same schedule run the solver once and share the
// result.
//
// The cache is value-agnostic (a type parameter) and policy-free: the
// caller decides what is cacheable — the daemon only stores proven,
// non-degraded schedules — by returning ok=false from the compute
// callback of Do.
//
// Internally the key space is split over lock-striped shards (by a hash
// of the fingerprint string), each an independent LRU+singleflight
// behind its own mutex, so a daemon running many solver workers does not
// serialise every request on one cache lock. Small capacities stay on a
// single shard, keeping the LRU eviction order exact where tests and
// tiny deployments can observe it; see New.
package solvecache

import (
	"container/list"
	"sync"
)

// Outcome classifies how a Do call obtained its value.
type Outcome int

// Do outcomes, in increasing order of luck: the caller computed the
// value itself, waited for a concurrent caller's computation, or got an
// instant cached copy.
const (
	Miss Outcome = iota
	Shared
	Hit
)

// String names the outcome for logs and metrics labels.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Shared:
		return "shared"
	case Hit:
		return "hit"
	default:
		return "unknown"
	}
}

// Stats is a point-in-time snapshot of cache effectiveness counters,
// aggregated across shards.
type Stats struct {
	// Hits counts Do/Get calls answered from the cache.
	Hits int64
	// Misses counts Do/Get calls that found no entry.
	Misses int64
	// Shared counts Do calls that waited on another caller's in-flight
	// computation instead of running their own.
	Shared int64
	// Evictions counts entries removed by the capacity bound.
	Evictions int64
	// Entries is the current cache population.
	Entries int
}

// nShards is the stripe count of a sharded cache (a power of two). 16
// keeps worst-case lock contention at 1/16th of a single mutex while
// costing only a few hundred spare bytes per idle shard.
const nShards = 16

// shardThreshold is the capacity below which the cache stays on a
// single shard: splitting a tiny capacity across 16 LRUs would make the
// effective eviction order depend on key hashes, and the contention a
// sub-64-entry deployment can generate does not need striping.
const shardThreshold = 64

// entry is one cached key/value pair, stored as a list.Element value so
// recency updates are pointer moves.
type entry[V any] struct {
	key string
	v   V
}

// flight is one in-progress computation other callers can wait on.
type flight[V any] struct {
	done  chan struct{}
	v     V
	ok    bool
	err   error
	retry bool // leader died without a result; waiters recompute
}

// shard is one lock stripe of the cache: an independent LRU with its
// own singleflight table and effectiveness counters.
type shard[V any] struct {
	mu        sync.Mutex
	m         map[string]*list.Element
	ll        *list.List // front = most recently used
	flights   map[string]*flight[V]
	capacity  int
	onEvict   func(key string)
	hits      int64
	misses    int64
	shared    int64
	evictions int64
}

// Cache is a concurrency-safe, capacity-bounded LRU with singleflight
// computation, striped over independent shards by key hash. The zero
// value is not usable; construct with New.
type Cache[V any] struct {
	shards []*shard[V]
	mask   uint64
}

// New returns a cache holding at most capacity entries (capacity <= 0
// means unbounded). Capacities of shardThreshold and above — and the
// unbounded case — are striped over nShards shards, each bounded to its
// share (ceil(capacity/nShards)) of the total; smaller capacities use a
// single shard so the LRU eviction order stays globally exact. onEvict,
// if non-nil, is called — outside the cache lock — with each key
// removed by the capacity bound.
func New[V any](capacity int, onEvict func(key string)) *Cache[V] {
	n := nShards
	if capacity > 0 && capacity < shardThreshold {
		n = 1
	}
	per := 0
	if capacity > 0 {
		per = (capacity + n - 1) / n
	}
	c := &Cache[V]{shards: make([]*shard[V], n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = &shard[V]{
			m:        make(map[string]*list.Element),
			ll:       list.New(),
			flights:  make(map[string]*flight[V]),
			capacity: per,
			onEvict:  onEvict,
		}
	}
	return c
}

// shardFor routes a key to its stripe (FNV-1a over the key bytes).
func (c *Cache[V]) shardFor(key string) *shard[V] {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h&c.mask]
}

// Get returns the cached value for key, refreshing its recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	s.hits++
	s.ll.MoveToFront(e)
	v := e.Value.(*entry[V]).v
	s.mu.Unlock()
	return v, true
}

// Put stores a value under key (refreshing recency if it already
// exists) and evicts the shard's least-recently-used entries beyond its
// capacity share.
func (c *Cache[V]) Put(key string, v V) {
	s := c.shardFor(key)
	s.mu.Lock()
	evicted := s.putLocked(key, v)
	s.mu.Unlock()
	s.notifyEvicted(evicted)
}

func (s *shard[V]) putLocked(key string, v V) []string {
	if e, ok := s.m[key]; ok {
		e.Value.(*entry[V]).v = v
		s.ll.MoveToFront(e)
		return nil
	}
	s.m[key] = s.ll.PushFront(&entry[V]{key: key, v: v})
	var evicted []string
	for s.capacity > 0 && s.ll.Len() > s.capacity {
		back := s.ll.Back()
		s.ll.Remove(back)
		k := back.Value.(*entry[V]).key
		delete(s.m, k)
		s.evictions++
		evicted = append(evicted, k)
	}
	return evicted
}

func (s *shard[V]) notifyEvicted(keys []string) {
	if s.onEvict == nil {
		return
	}
	for _, k := range keys {
		s.onEvict(k)
	}
}

// Do returns the value for key, computing it at most once across
// concurrent callers. On a cache hit the computation never runs. On a
// miss, exactly one caller runs compute while the rest block and share
// its result; compute's ok return decides whether the value is stored
// (uncacheable or failed computations are handed to their callers but
// never cached, so a later Do retries). If compute panics, the panic
// propagates to that caller while waiting callers transparently restart
// their own Do — the flight is cleaned up either way, so a panic never
// wedges the key.
func (c *Cache[V]) Do(key string, compute func() (V, bool, error)) (V, Outcome, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		s.hits++
		s.ll.MoveToFront(e)
		v := e.Value.(*entry[V]).v
		s.mu.Unlock()
		return v, Hit, nil
	}
	if f, ok := s.flights[key]; ok {
		s.shared++
		s.mu.Unlock()
		<-f.done
		if !f.ok && f.err == nil {
			// The leader's computation vanished without a result (panic)
			// or produced an uncacheable value; uncacheable values are
			// still valid answers, panics leave ok=false+err=nil with a
			// zero value — retry in that case only.
			if f.retry {
				return c.Do(key, compute)
			}
		}
		return f.v, Shared, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	s.flights[key] = f
	s.misses++
	s.mu.Unlock()

	completed := false
	defer func() {
		s.mu.Lock()
		delete(s.flights, key)
		var evicted []string
		if completed && f.ok && f.err == nil {
			evicted = s.putLocked(key, f.v)
		}
		if !completed {
			f.retry = true // leader panicked: waiters must recompute
		}
		s.mu.Unlock()
		s.notifyEvicted(evicted)
		close(f.done)
	}()

	v, ok, err := compute()
	completed = true
	f.v, f.ok, f.err = v, ok, err
	return v, Miss, err
}

// Len returns the current entry count across all shards.
func (c *Cache[V]) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the effectiveness counters, summed across shards.
func (c *Cache[V]) Stats() Stats {
	var st Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Shared += s.shared
		st.Evictions += s.evictions
		st.Entries += s.ll.Len()
		s.mu.Unlock()
	}
	return st
}
