// Package solvecache provides the serving daemon's solved-schedule
// cache: a capacity-bounded LRU keyed by canonical instance+options
// fingerprints, with singleflight deduplication so that concurrent
// requests for the same schedule run the solver once and share the
// result.
//
// The cache is value-agnostic (a type parameter) and policy-free: the
// caller decides what is cacheable — the daemon only stores proven,
// non-degraded schedules — by returning ok=false from the compute
// callback of Do.
package solvecache

import (
	"container/list"
	"sync"
)

// Outcome classifies how a Do call obtained its value.
type Outcome int

// Do outcomes, in increasing order of luck: the caller computed the
// value itself, waited for a concurrent caller's computation, or got an
// instant cached copy.
const (
	Miss Outcome = iota
	Shared
	Hit
)

// String names the outcome for logs and metrics labels.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Shared:
		return "shared"
	case Hit:
		return "hit"
	default:
		return "unknown"
	}
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts Do/Get calls answered from the cache.
	Hits int64
	// Misses counts Do/Get calls that found no entry.
	Misses int64
	// Shared counts Do calls that waited on another caller's in-flight
	// computation instead of running their own.
	Shared int64
	// Evictions counts entries removed by the capacity bound.
	Evictions int64
	// Entries is the current cache population.
	Entries int
}

// entry is one cached key/value pair, stored as a list.Element value so
// recency updates are pointer moves.
type entry[V any] struct {
	key string
	v   V
}

// flight is one in-progress computation other callers can wait on.
type flight[V any] struct {
	done  chan struct{}
	v     V
	ok    bool
	err   error
	retry bool // leader died without a result; waiters recompute
}

// Cache is a concurrency-safe, capacity-bounded LRU with singleflight
// computation. The zero value is not usable; construct with New.
type Cache[V any] struct {
	mu        sync.Mutex
	m         map[string]*list.Element
	ll        *list.List // front = most recently used
	flights   map[string]*flight[V]
	capacity  int
	onEvict   func(key string)
	hits      int64
	misses    int64
	shared    int64
	evictions int64
}

// New returns a cache holding at most capacity entries (capacity <= 0
// means unbounded). onEvict, if non-nil, is called — outside the cache
// lock — with each key removed by the capacity bound.
func New[V any](capacity int, onEvict func(key string)) *Cache[V] {
	return &Cache[V]{
		m:        make(map[string]*list.Element),
		ll:       list.New(),
		flights:  make(map[string]*flight[V]),
		capacity: capacity,
		onEvict:  onEvict,
	}
}

// Get returns the cached value for key, refreshing its recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(e)
	v := e.Value.(*entry[V]).v
	c.mu.Unlock()
	return v, true
}

// Put stores a value under key (refreshing recency if it already
// exists) and evicts least-recently-used entries beyond capacity.
func (c *Cache[V]) Put(key string, v V) {
	c.mu.Lock()
	evicted := c.putLocked(key, v)
	c.mu.Unlock()
	c.notifyEvicted(evicted)
}

func (c *Cache[V]) putLocked(key string, v V) []string {
	if e, ok := c.m[key]; ok {
		e.Value.(*entry[V]).v = v
		c.ll.MoveToFront(e)
		return nil
	}
	c.m[key] = c.ll.PushFront(&entry[V]{key: key, v: v})
	var evicted []string
	for c.capacity > 0 && c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		k := back.Value.(*entry[V]).key
		delete(c.m, k)
		c.evictions++
		evicted = append(evicted, k)
	}
	return evicted
}

func (c *Cache[V]) notifyEvicted(keys []string) {
	if c.onEvict == nil {
		return
	}
	for _, k := range keys {
		c.onEvict(k)
	}
}

// Do returns the value for key, computing it at most once across
// concurrent callers. On a cache hit the computation never runs. On a
// miss, exactly one caller runs compute while the rest block and share
// its result; compute's ok return decides whether the value is stored
// (uncacheable or failed computations are handed to their callers but
// never cached, so a later Do retries). If compute panics, the panic
// propagates to that caller while waiting callers transparently restart
// their own Do — the flight is cleaned up either way, so a panic never
// wedges the key.
func (c *Cache[V]) Do(key string, compute func() (V, bool, error)) (V, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.hits++
		c.ll.MoveToFront(e)
		v := e.Value.(*entry[V]).v
		c.mu.Unlock()
		return v, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.shared++
		c.mu.Unlock()
		<-f.done
		if !f.ok && f.err == nil {
			// The leader's computation vanished without a result (panic)
			// or produced an uncacheable value; uncacheable values are
			// still valid answers, panics leave ok=false+err=nil with a
			// zero value — retry in that case only.
			if f.retry {
				return c.Do(key, compute)
			}
		}
		return f.v, Shared, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	completed := false
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		var evicted []string
		if completed && f.ok && f.err == nil {
			evicted = c.putLocked(key, f.v)
		}
		if !completed {
			f.retry = true // leader panicked: waiters must recompute
		}
		c.mu.Unlock()
		c.notifyEvicted(evicted)
		close(f.done)
	}()

	v, ok, err := compute()
	completed = true
	f.v, f.ok, f.err = v, ok, err
	return v, Miss, err
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the effectiveness counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Shared:    c.shared,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
	}
}
