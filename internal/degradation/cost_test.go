package degradation

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cosched/internal/job"
)

// fixedOracle returns canned degradations for deterministic objective
// tests: d(p,S) = base[p] + 0.1*|S∩real|, comm(p,S) = comm[p] when remote.
type fixedOracle struct {
	batch *job.Batch
	base  map[job.ProcID]float64
	comm  map[job.ProcID]float64
}

func (f *fixedOracle) Degradation(p job.ProcID, co []job.ProcID) float64 {
	if f.batch.Proc(p).Imaginary {
		return 0
	}
	n := 0
	for _, q := range co {
		if !f.batch.Proc(q).Imaginary {
			n++
		}
	}
	return f.base[p] + 0.1*float64(n)
}

func (f *fixedOracle) CommDegradation(p job.ProcID, co []job.ProcID) float64 {
	j := f.batch.JobOf(p)
	if j == nil || j.Kind != job.PC {
		return 0
	}
	return f.comm[p]
}

func mixedBatch(t *testing.T) *job.Batch {
	t.Helper()
	bd := job.NewBuilder()
	bd.AddPC("pc", 2)  // procs 1,2
	bd.AddPE("pe", 2)  // procs 3,4
	bd.AddSerial("s1") // proc 5
	bd.AddSerial("s2") // proc 6
	b, err := bd.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestModeString(t *testing.T) {
	if ModeSE.String() != "SE" || ModePE.String() != "PE" || ModePC.String() != "PC" {
		t.Error("mode strings wrong")
	}
	if !strings.Contains(Mode(7).String(), "7") {
		t.Error("unknown mode string")
	}
}

func TestPartitionCostModeSE(t *testing.T) {
	b := mixedBatch(t)
	o := &fixedOracle{batch: b,
		base: map[job.ProcID]float64{1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4, 5: 0.5, 6: 0.6},
		comm: map[job.ProcID]float64{1: 1.0, 2: 1.0}}
	c := NewCost(b, o, ModeSE)
	groups := [][]job.ProcID{{1, 2}, {3, 4}, {5, 6}}
	// ModeSE: plain sum of Eq.1 degradations, each with 1 real co-runner.
	want := (0.1 + 0.2 + 0.3 + 0.4 + 0.5 + 0.6) + 6*0.1
	if got := c.PartitionCost(groups); math.Abs(got-want) > 1e-12 {
		t.Errorf("SE cost = %v; want %v", got, want)
	}
}

func TestPartitionCostModePE(t *testing.T) {
	b := mixedBatch(t)
	o := &fixedOracle{batch: b,
		base: map[job.ProcID]float64{1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4, 5: 0.5, 6: 0.6},
		comm: map[job.ProcID]float64{1: 1.0, 2: 1.0}}
	c := NewCost(b, o, ModePE)
	groups := [][]job.ProcID{{1, 2}, {3, 4}, {5, 6}}
	// Parallel jobs contribute their max only: pc max(0.2,0.3)=0.3,
	// pe max(0.4,0.5)=0.5; serial 0.6+0.7. No comm in ModePE.
	want := 0.3 + 0.5 + 0.6 + 0.7
	if got := c.PartitionCost(groups); math.Abs(got-want) > 1e-12 {
		t.Errorf("PE cost = %v; want %v", got, want)
	}
}

func TestPartitionCostModePC(t *testing.T) {
	b := mixedBatch(t)
	o := &fixedOracle{batch: b,
		base: map[job.ProcID]float64{1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4, 5: 0.5, 6: 0.6},
		comm: map[job.ProcID]float64{1: 1.0, 2: 1.0}}
	c := NewCost(b, o, ModePC)
	groups := [][]job.ProcID{{1, 2}, {3, 4}, {5, 6}}
	// PC procs gain +1.0 comm: max(1.2, 1.3)=1.3; PE unchanged.
	want := 1.3 + 0.5 + 0.6 + 0.7
	if got := c.PartitionCost(groups); math.Abs(got-want) > 1e-12 {
		t.Errorf("PC cost = %v; want %v", got, want)
	}
}

func TestPartitionCostOrderInvariant(t *testing.T) {
	b := mixedBatch(t)
	o := &fixedOracle{batch: b,
		base: map[job.ProcID]float64{1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4, 5: 0.5, 6: 0.6},
		comm: map[job.ProcID]float64{1: 0.7, 2: 0.9}}
	c := NewCost(b, o, ModePC)
	a := c.PartitionCost([][]job.ProcID{{1, 2}, {3, 4}, {5, 6}})
	bb := c.PartitionCost([][]job.ProcID{{6, 5}, {2, 1}, {4, 3}})
	if math.Abs(a-bb) > 1e-12 {
		t.Errorf("cost depends on group order: %v vs %v", a, bb)
	}
}

func TestAccumulatorIncrementalMatchesPartitionCost(t *testing.T) {
	b := mixedBatch(t)
	o := &fixedOracle{batch: b,
		base: map[job.ProcID]float64{1: 0.15, 2: 0.25, 3: 0.35, 4: 0.45, 5: 0.55, 6: 0.65},
		comm: map[job.ProcID]float64{1: 0.5, 2: 0.1}}
	for _, mode := range []Mode{ModeSE, ModePE, ModePC} {
		c := NewCost(b, o, mode)
		groups := [][]job.ProcID{{1, 3}, {2, 5}, {4, 6}}
		acc := c.NewAccumulator()
		var last float64
		for _, g := range groups {
			last = acc.Add(g)
		}
		want := c.PartitionCost(groups)
		if math.Abs(last-want) > 1e-12 {
			t.Errorf("mode %v: incremental %v != batch %v", mode, last, want)
		}
		if math.Abs(acc.Dist()-want) > 1e-12 {
			t.Errorf("mode %v: Dist() %v != %v", mode, acc.Dist(), want)
		}
	}
}

func TestAccumulatorCloneIndependent(t *testing.T) {
	b := mixedBatch(t)
	o := &fixedOracle{batch: b,
		base: map[job.ProcID]float64{1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4, 5: 0.5, 6: 0.6}}
	c := NewCost(b, o, ModePC)
	acc := c.NewAccumulator()
	acc.Add([]job.ProcID{1, 3})
	snap := acc.Dist()
	cl := acc.Clone()
	cl.Add([]job.ProcID{2, 5})
	if acc.Dist() != snap {
		t.Error("Clone shares state with original")
	}
	if len(cl.JobMaxes()) < len(acc.JobMaxes()) {
		t.Error("clone lost job maxima")
	}
}

func TestPerJobDegradation(t *testing.T) {
	b := mixedBatch(t)
	o := &fixedOracle{batch: b,
		base: map[job.ProcID]float64{1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4, 5: 0.5, 6: 0.6},
		comm: map[job.ProcID]float64{1: 1.0, 2: 1.0}}
	c := NewCost(b, o, ModePC)
	groups := [][]job.ProcID{{1, 2}, {3, 4}, {5, 6}}
	per := c.PerJobDegradation(groups)
	if math.Abs(per[0]-1.3) > 1e-12 { // PC job: max(1.2,1.3)
		t.Errorf("PC job degradation = %v; want 1.3", per[0])
	}
	if math.Abs(per[1]-0.5) > 1e-12 { // PE job: max(0.4,0.5)
		t.Errorf("PE job degradation = %v; want 0.5", per[1])
	}
	if math.Abs(per[2]-0.6) > 1e-12 || math.Abs(per[3]-0.7) > 1e-12 {
		t.Errorf("serial degradations = %v/%v; want 0.6/0.7", per[2], per[3])
	}
	// Sum of per-job degradations equals the objective.
	var sum float64
	for _, v := range per {
		sum += v
	}
	if want := c.PartitionCost(groups); math.Abs(sum-want) > 1e-12 {
		t.Errorf("per-job sum %v != objective %v", sum, want)
	}
}

func TestValidatePartition(t *testing.T) {
	b := mixedBatch(t)
	o := &fixedOracle{batch: b, base: map[job.ProcID]float64{}}
	c := NewCost(b, o, ModePC)
	good := [][]job.ProcID{{1, 2}, {3, 4}, {5, 6}}
	if err := c.ValidatePartition(good); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	bad := []struct {
		name   string
		groups [][]job.ProcID
	}{
		{"wrong group size", [][]job.ProcID{{1, 2, 3}, {4, 5, 6}}},
		{"duplicate", [][]job.ProcID{{1, 1}, {2, 3}, {4, 5}}},
		{"unknown proc", [][]job.ProcID{{1, 9}, {2, 3}, {4, 5}}},
		{"missing procs", [][]job.ProcID{{1, 2}}},
	}
	for _, tc := range bad {
		if err := c.ValidatePartition(tc.groups); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestNodeWeightIsSumOfProcCosts(t *testing.T) {
	b := mixedBatch(t)
	o := &fixedOracle{batch: b,
		base: map[job.ProcID]float64{1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4, 5: 0.5, 6: 0.6},
		comm: map[job.ProcID]float64{1: 0.3, 2: 0.4}}
	c := NewCost(b, o, ModePC)
	node := []job.ProcID{1, 5}
	want := c.ProcCost(1, []job.ProcID{5}) + c.ProcCost(5, []job.ProcID{1})
	if got := c.NodeWeight(node); math.Abs(got-want) > 1e-12 {
		t.Errorf("NodeWeight = %v; want %v", got, want)
	}
}

func TestAccumulatorPropertyRandomPartitions(t *testing.T) {
	// Property (testing/quick): for random batches and random valid
	// partitions, the incremental Eq. 13 accumulator agrees with the
	// batch evaluation under every accounting mode, regardless of
	// group order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bd := job.NewBuilder()
		nPar := rng.Intn(3)
		for i := 0; i < nPar; i++ {
			if rng.Intn(2) == 0 {
				bd.AddPE("pe", 2+rng.Intn(3))
			} else {
				bd.AddPC("pc", 2+rng.Intn(3))
			}
		}
		for bd.NumProcs() < 8 {
			bd.AddSerial("s")
		}
		u := []int{2, 4}[rng.Intn(2)]
		b, err := bd.Build(u)
		if err != nil {
			return false
		}
		n := b.NumProcs()
		mtx := make([][]float64, n)
		for i := range mtx {
			mtx[i] = make([]float64, n)
			for j := range mtx[i] {
				if i != j && !b.Procs[i].Imaginary && !b.Procs[j].Imaginary {
					mtx[i][j] = rng.Float64()
				}
			}
		}
		o, err := NewPairwiseOracle(b, mtx, nil, 0)
		if err != nil {
			return false
		}
		// random permutation partitioned into u-sized groups
		perm := rng.Perm(n)
		var groups [][]job.ProcID
		for i := 0; i < n; i += u {
			var g []job.ProcID
			for _, v := range perm[i : i+u] {
				g = append(g, job.ProcID(v+1))
			}
			groups = append(groups, g)
		}
		for _, mode := range []Mode{ModeSE, ModePE, ModePC} {
			c := NewCost(b, o, mode)
			if err := c.ValidatePartition(groups); err != nil {
				return false
			}
			acc := c.NewAccumulator()
			for _, g := range groups {
				acc.Add(g)
			}
			if math.Abs(acc.Dist()-c.PartitionCost(groups)) > 1e-9 {
				return false
			}
			// shuffled group order gives the same objective
			shuffled := append([][]job.ProcID(nil), groups...)
			rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
			if math.Abs(c.PartitionCost(shuffled)-c.PartitionCost(groups)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
