// Package degradation supplies the co-run degradation figures every
// co-scheduling method in this repository consumes: Eq. 1 (computation
// degradation), the communication term of Eq. 9, and the objective
// evaluation of Eq. 6 / Eq. 13 over complete and partial schedules.
//
// Two oracle implementations are provided:
//
//   - SDCOracle drives the full cache pipeline (stack distance competition,
//     Eq. 14-15 CPU times) plus the comm.Pattern network model; it is the
//     faithful reproduction of the paper's measurement methodology.
//   - PairwiseOracle approximates d(i,S) as the sum of pairwise
//     interferences; it is O(u) per query and backs the large synthetic
//     sweeps (Figs. 12-13) where the SDC merge would dominate runtime.
package degradation
