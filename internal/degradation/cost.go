package degradation

import (
	"fmt"

	"cosched/internal/job"
)

// Mode selects how a method accounts for parallel jobs, matching the three
// OA* variants of the evaluation (§V-B):
//
//   - ModeSE treats every process as serial: the objective is the plain sum
//     of Eq. 1 degradations (Eq. 12). This is OA*-SE.
//   - ModePE recognises parallel jobs (per-job max, Eq. 13) but ignores
//     communication: degradations come from Eq. 1 only. This is OA*-PE.
//   - ModePC additionally folds communication time into PC process
//     degradations (Eq. 9). This is OA*-PC, the full model.
type Mode int

// The three accounting modes of the paper's evaluation (Figs. 6-7).
const (
	ModeSE Mode = iota
	ModePE
	ModePC
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSE:
		return "SE"
	case ModePE:
		return "PE"
	case ModePC:
		return "PC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Cost evaluates node weights and schedule objectives for one batch under
// one accounting mode. It is the single source of truth for Eq. 6, Eq. 12
// and Eq. 13 across OA*, HA*, O-SVP, PG, brute force and the IP model.
type Cost struct {
	Batch  *job.Batch
	Oracle Oracle
	Mode   Mode
}

// NewCost wires a cost evaluator; the oracle is memoized if it is not
// already.
func NewCost(b *job.Batch, o Oracle, mode Mode) *Cost {
	return &Cost{Batch: b, Oracle: NewMemoized(o), Mode: mode}
}

// ProcCost returns the effective degradation of process p co-running with
// coRunners: Eq. 1 under ModeSE/ModePE, Eq. 9 (computation + communication)
// under ModePC.
func (c *Cost) ProcCost(p job.ProcID, coRunners []job.ProcID) float64 {
	d := c.Oracle.Degradation(p, coRunners)
	if c.Mode == ModePC {
		d += c.Oracle.CommDegradation(p, coRunners)
	}
	return d
}

// NodeWeight returns the weight of one co-scheduling-graph node: the total
// effective degradation of the u processes placed together (§III-A).
func (c *Cost) NodeWeight(procs []job.ProcID) float64 {
	var w float64
	for i, p := range procs {
		var others [16]job.ProcID
		co := others[:0]
		co = append(co, procs[:i]...)
		co = append(co, procs[i+1:]...)
		w += c.ProcCost(p, co)
	}
	return w
}

// Accumulator tracks the Eq. 13 path distance incrementally as nodes are
// appended to a sub-path: serial degradations add directly; each parallel
// job contributes its running maximum. The zero value is an empty path.
//
// Under ModeSE the per-job maxima are bypassed and everything sums (Eq. 12),
// so OA*-SE is literally OA* with a different Accumulator behaviour.
type Accumulator struct {
	cost *Cost
	// dist is the Eq. 13 distance of the sub-path so far.
	dist float64
	// jobMax[j] is the largest effective degradation seen among the
	// scheduled processes of parallel job j (already folded into dist).
	jobMax map[job.JobID]float64
}

// NewAccumulator returns an empty-path accumulator for the cost model.
func (c *Cost) NewAccumulator() *Accumulator {
	return &Accumulator{cost: c, jobMax: make(map[job.JobID]float64)}
}

// Clone returns an independent copy of the accumulator.
func (a *Accumulator) Clone() *Accumulator {
	jm := make(map[job.JobID]float64, len(a.jobMax))
	for k, v := range a.jobMax {
		jm[k] = v
	}
	return &Accumulator{cost: a.cost, dist: a.dist, jobMax: jm}
}

// Add appends one graph node (a u-cardinality process group) to the path
// and returns the updated distance.
func (a *Accumulator) Add(procs []job.ProcID) float64 {
	b := a.cost.Batch
	for i, p := range procs {
		var others [16]job.ProcID
		co := others[:0]
		co = append(co, procs[:i]...)
		co = append(co, procs[i+1:]...)
		d := a.cost.ProcCost(p, co)
		j := b.JobOf(p)
		if a.cost.Mode == ModeSE || j == nil || j.Kind == job.Serial {
			a.dist += d
			continue
		}
		if cur, ok := a.jobMax[j.ID]; !ok || d > cur {
			if ok {
				a.dist += d - cur
			} else {
				a.dist += d
			}
			a.jobMax[j.ID] = d
		}
	}
	return a.dist
}

// Dist returns the current Eq. 13 distance of the path.
func (a *Accumulator) Dist() float64 { return a.dist }

// JobMaxes returns the per-parallel-job running maxima (used by the exact
// dismissal key, DESIGN.md §3).
func (a *Accumulator) JobMaxes() map[job.JobID]float64 { return a.jobMax }

// PartitionCost evaluates the full objective of a complete schedule: the
// groups must partition all processes into u-cardinality sets. The order of
// groups and of processes within groups is irrelevant.
func (c *Cost) PartitionCost(groups [][]job.ProcID) float64 {
	acc := c.NewAccumulator()
	for _, g := range groups {
		acc.Add(g)
	}
	return acc.Dist()
}

// PerJobDegradation reports, for a complete schedule, each job's final
// degradation: Eq. 1/9 for serial jobs, the per-job max for parallel jobs.
// Keyed by JobID. Imaginary processes are skipped.
func (c *Cost) PerJobDegradation(groups [][]job.ProcID) map[job.JobID]float64 {
	out := make(map[job.JobID]float64, len(c.Batch.Jobs))
	for _, g := range groups {
		for i, p := range g {
			j := c.Batch.JobOf(p)
			if j == nil {
				continue
			}
			var others [16]job.ProcID
			co := others[:0]
			co = append(co, g[:i]...)
			co = append(co, g[i+1:]...)
			d := c.ProcCost(p, co)
			if j.Kind == job.Serial || c.Mode == ModeSE {
				out[j.ID] += d
			} else if cur, ok := out[j.ID]; !ok || d > cur {
				out[j.ID] = d
			}
		}
	}
	return out
}

// ValidatePartition checks that groups is a legal schedule for the batch:
// every process appears exactly once and every group has exactly u members.
func (c *Cost) ValidatePartition(groups [][]job.ProcID) error {
	n := c.Batch.NumProcs()
	seen := make([]bool, n+1)
	count := 0
	for gi, g := range groups {
		if len(g) != c.Batch.Cores {
			return fmt.Errorf("degradation: group %d has %d processes; want %d", gi, len(g), c.Batch.Cores)
		}
		for _, p := range g {
			if int(p) < 1 || int(p) > n {
				return fmt.Errorf("degradation: group %d contains unknown process %d", gi, p)
			}
			if seen[p] {
				return fmt.Errorf("degradation: process %d scheduled twice", p)
			}
			seen[p] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("degradation: schedule covers %d of %d processes", count, n)
	}
	return nil
}
