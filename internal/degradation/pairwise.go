package degradation

import (
	"fmt"

	"cosched/internal/comm"
	"cosched/internal/job"
)

// PairwiseOracle approximates d(i,S) = Σ_{j∈S} M[i][j], where M[i][j] is
// the degradation process i suffers when co-running with j alone. The
// additive-interference assumption is standard in contention modelling and
// makes each query O(u); the large-scale synthetic experiments (Figs. 5,
// 12, 13) use it, as does HA*'s lazy k-smallest node enumeration.
type PairwiseOracle struct {
	batch    *job.Batch
	m        [][]float64 // m[i-1][j-1]: slowdown of i caused by j
	patterns map[job.JobID]*comm.Pattern
	// commFactor converts pattern halo bytes into a degradation term;
	// it plays the role of 1/(B·ct) of Eq. 9-10.
	commFactor float64
}

// NewPairwiseOracle builds the oracle from an interference matrix. m must
// be n×n with zero diagonal; m[i][j] ≥ 0 is the degradation process i+1
// suffers from co-running with j+1. patterns and commFactor configure the
// Eq. 9 communication term (pass nil/0 for computation-only batches).
func NewPairwiseOracle(b *job.Batch, m [][]float64, patterns map[job.JobID]*comm.Pattern, commFactor float64) (*PairwiseOracle, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	n := b.NumProcs()
	if len(m) != n {
		return nil, fmt.Errorf("degradation: interference matrix is %d×?; want %d", len(m), n)
	}
	for i := range m {
		if len(m[i]) != n {
			return nil, fmt.Errorf("degradation: interference row %d has %d entries; want %d", i, len(m[i]), n)
		}
		if m[i][i] != 0 {
			return nil, fmt.Errorf("degradation: interference matrix diagonal %d is %v; want 0", i, m[i][i])
		}
		for j := range m[i] {
			if m[i][j] < 0 {
				return nil, fmt.Errorf("degradation: negative interference m[%d][%d]", i, j)
			}
			if b.Procs[i].Imaginary || b.Procs[j].Imaginary {
				if m[i][j] != 0 {
					return nil, fmt.Errorf("degradation: imaginary process in pair (%d,%d) has non-zero interference", i+1, j+1)
				}
			}
		}
	}
	for jid, pt := range patterns {
		if int(jid) < 0 || int(jid) >= len(b.Jobs) {
			return nil, fmt.Errorf("degradation: pattern for unknown job %d", jid)
		}
		if err := pt.Validate(len(b.Jobs[jid].Procs)); err != nil {
			return nil, err
		}
	}
	return &PairwiseOracle{batch: b, m: m, patterns: patterns, commFactor: commFactor}, nil
}

// Degradation implements Oracle by summing pairwise interference.
func (o *PairwiseOracle) Degradation(p job.ProcID, coRunners []job.ProcID) float64 {
	row := o.m[int(p)-1]
	var d float64
	for _, q := range coRunners {
		d += row[int(q)-1]
	}
	return d
}

// CommDegradation implements Oracle using the same β logic as the SDC
// oracle but with a constant bytes-to-degradation factor.
func (o *PairwiseOracle) CommDegradation(p job.ProcID, coRunners []job.ProcID) float64 {
	j := o.batch.JobOf(p)
	if j == nil || j.Kind != job.PC || o.commFactor == 0 {
		return 0
	}
	pt := o.patterns[j.ID]
	if pt == nil {
		return 0
	}
	proc := o.batch.Proc(p)
	same := make(map[int]bool, len(coRunners))
	for _, q := range coRunners {
		qp := o.batch.Proc(q)
		if qp.Job == j.ID {
			same[qp.Rank] = true
		}
	}
	var bytes float64
	for _, nb := range pt.Neighbors(proc.Rank) {
		if !same[nb.Rank] {
			bytes += nb.Bytes
		}
	}
	return bytes * o.commFactor
}

// Matrix exposes the interference matrix (read-only by convention).
func (o *PairwiseOracle) Matrix() [][]float64 { return o.m }

// CommFactor returns the bytes-to-degradation conversion factor of the
// Eq. 9 communication term (0 when communication is disabled).
func (o *PairwiseOracle) CommFactor() float64 { return o.commFactor }

// Pattern returns the decomposition of the given job, or nil.
func (o *PairwiseOracle) Pattern(j job.JobID) *comm.Pattern { return o.patterns[j] }
