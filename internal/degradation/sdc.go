package degradation

import (
	"fmt"

	"cosched/internal/cache"
	"cosched/internal/comm"
	"cosched/internal/job"
)

// SDCOracle derives degradations from the full cache/communication
// pipeline: SDC co-run miss prediction (cache.EffectiveWays) feeding the
// Eq. 14-15 CPU-time model, and comm.Pattern halo traffic over the cluster
// network for the Eq. 9 communication term.
type SDCOracle struct {
	batch    *job.Batch
	machine  *cache.Machine
	profiles []*cache.Profile // index p-1; nil for imaginary procs
	patterns map[job.JobID]*comm.Pattern
}

// NewSDCOracle builds the oracle. profiles must be index-aligned with the
// batch's processes (profiles[p-1] for process p, nil for imaginary
// padding). patterns maps each PC job to its decomposition; jobs absent
// from the map (serial, PE) have no communication.
func NewSDCOracle(b *job.Batch, m *cache.Machine, profiles []*cache.Profile, patterns map[job.JobID]*comm.Pattern) (*SDCOracle, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(profiles) != b.NumProcs() {
		return nil, fmt.Errorf("degradation: %d profiles for %d processes", len(profiles), b.NumProcs())
	}
	for i, p := range profiles {
		proc := &b.Procs[i]
		if proc.Imaginary {
			if p != nil {
				return nil, fmt.Errorf("degradation: imaginary process %d has a profile", proc.ID)
			}
			continue
		}
		if p == nil {
			return nil, fmt.Errorf("degradation: real process %d has no profile", proc.ID)
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	for jid, pt := range patterns {
		if int(jid) < 0 || int(jid) >= len(b.Jobs) {
			return nil, fmt.Errorf("degradation: pattern for unknown job %d", jid)
		}
		if err := pt.Validate(len(b.Jobs[jid].Procs)); err != nil {
			return nil, fmt.Errorf("degradation: job %q: %w", b.Jobs[jid].Name, err)
		}
	}
	return &SDCOracle{batch: b, machine: m, profiles: profiles, patterns: patterns}, nil
}

// Degradation implements Oracle via the SDC merge of the co-running
// profiles.
func (o *SDCOracle) Degradation(p job.ProcID, coRunners []job.ProcID) float64 {
	prof := o.profiles[int(p)-1]
	if prof == nil {
		return 0
	}
	group := make([]*cache.Profile, 0, len(coRunners)+1)
	group = append(group, prof)
	for _, q := range coRunners {
		if qp := o.profiles[int(q)-1]; qp != nil {
			group = append(group, qp)
		}
	}
	degs := cache.CoRunDegradations(o.machine, group)
	return degs[0]
}

// CommDegradation implements Oracle: c(i,S)/ct(i) for PC processes, 0 for
// everything else.
func (o *SDCOracle) CommDegradation(p job.ProcID, coRunners []job.ProcID) float64 {
	j := o.batch.JobOf(p)
	if j == nil || j.Kind != job.PC {
		return 0
	}
	pt := o.patterns[j.ID]
	if pt == nil {
		return 0
	}
	proc := o.batch.Proc(p)
	same := make(map[int]bool, len(coRunners))
	for _, q := range coRunners {
		qp := o.batch.Proc(q)
		if qp.Job == j.ID {
			same[qp.Rank] = true
		}
	}
	ct := cache.SoloCPUTime(o.machine, o.profiles[int(p)-1])
	if ct <= 0 {
		return 0
	}
	return pt.Time(proc.Rank, same, o.machine.NetworkBandwidth) / ct
}

// Pattern returns the decomposition of the given job, or nil.
func (o *SDCOracle) Pattern(j job.JobID) *comm.Pattern { return o.patterns[j] }

// Machine returns the machine the oracle models.
func (o *SDCOracle) Machine() *cache.Machine { return o.machine }

// Profile returns the profile of a process (nil for imaginary ones).
func (o *SDCOracle) Profile(p job.ProcID) *cache.Profile { return o.profiles[int(p)-1] }
