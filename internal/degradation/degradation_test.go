package degradation

import (
	"math"
	"math/rand"
	"testing"

	"cosched/internal/cache"
	"cosched/internal/comm"
	"cosched/internal/job"
)

// testInstance builds a small mixed batch with an SDC oracle: one PC job
// with 4 ranks on a 2x2 grid, one PE job with 2 ranks, two serial jobs.
func testInstance(t *testing.T, u int) (*job.Batch, *SDCOracle) {
	t.Helper()
	bd := job.NewBuilder()
	pc := bd.AddPC("mpi", 4)
	bd.AddPE("mc", 2)
	bd.AddSerial("s1")
	bd.AddSerial("s2")
	b, err := bd.Build(u)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cache.MachineByCores(u)
	if err != nil {
		t.Fatal(err)
	}
	profiles := make([]*cache.Profile, b.NumProcs())
	rng := rand.New(rand.NewSource(42))
	for i := range b.Procs {
		if b.Procs[i].Imaginary {
			continue
		}
		hits := make([]float64, m.Ways)
		for d := range hits {
			hits[d] = 1 + rng.Float64()*4
		}
		profiles[i] = &cache.Profile{
			Name:       "p",
			Hits:       hits,
			Beyond:     1 + rng.Float64()*4,
			BaseCycles: 1e9 * (1 + rng.Float64()),
		}
	}
	patterns := map[job.JobID]*comm.Pattern{pc: comm.Grid2D(2, 2, 1e9, 2e9)}
	o, err := NewSDCOracle(b, &m, profiles, patterns)
	if err != nil {
		t.Fatal(err)
	}
	return b, o
}

func TestSDCOracleSoloZero(t *testing.T) {
	_, o := testInstance(t, 4)
	if d := o.Degradation(1, nil); d != 0 {
		t.Errorf("solo degradation = %v; want 0", d)
	}
}

func TestSDCOracleImaginaryZero(t *testing.T) {
	b, o := testInstance(t, 8) // 8 real procs on 8-core: no padding; rebuild with 4... use u=8? 8 real -> no imaginary.
	_ = b
	b2, o2 := testInstanceWithPadding(t)
	pad := job.ProcID(b2.NumProcs())
	if !b2.Proc(pad).Imaginary {
		t.Fatal("expected last process to be padding")
	}
	if d := o2.Degradation(pad, []job.ProcID{1, 2, 3}); d != 0 {
		t.Errorf("imaginary degradation = %v; want 0", d)
	}
	// imaginary co-runners change nothing
	d1 := o2.Degradation(1, []job.ProcID{2})
	d2 := o2.Degradation(1, []job.ProcID{2, pad})
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("imaginary co-runner changed degradation: %v vs %v", d1, d2)
	}
	_ = o
}

// testInstanceWithPadding returns a batch whose size forces padding.
func testInstanceWithPadding(t *testing.T) (*job.Batch, *SDCOracle) {
	t.Helper()
	bd := job.NewBuilder()
	bd.AddSerial("a")
	bd.AddSerial("b")
	bd.AddSerial("c")
	b, err := bd.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	m := cache.QuadCore
	profiles := make([]*cache.Profile, b.NumProcs())
	for i := range b.Procs {
		if b.Procs[i].Imaginary {
			continue
		}
		hits := make([]float64, m.Ways)
		for d := range hits {
			hits[d] = float64(i + 1)
		}
		profiles[i] = &cache.Profile{Name: "p", Hits: hits, Beyond: 2, BaseCycles: 1e9}
	}
	o, err := NewSDCOracle(b, &m, profiles, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b, o
}

func TestSDCOracleCommDegradation(t *testing.T) {
	b, o := testInstance(t, 4)
	// Process 1 is rank 0 of the 2x2 PC job: neighbours rank 1 (x, 1e9B)
	// and rank 2 (y, 2e9B). With no co-runners both cross the network.
	ct := cache.SoloCPUTime(o.Machine(), o.Profile(1))
	want := (1e9 + 2e9) / o.Machine().NetworkBandwidth / ct
	if got := o.CommDegradation(1, nil); math.Abs(got-want) > 1e-12 {
		t.Errorf("CommDegradation(1, none) = %v; want %v", got, want)
	}
	// With rank 1 (process 2) local, only the y exchange remains.
	want = 2e9 / o.Machine().NetworkBandwidth / ct
	if got := o.CommDegradation(1, []job.ProcID{2}); math.Abs(got-want) > 1e-12 {
		t.Errorf("CommDegradation(1, {2}) = %v; want %v", got, want)
	}
	// Serial processes never have communication.
	if got := o.CommDegradation(7, []job.ProcID{1}); got != 0 {
		t.Errorf("serial CommDegradation = %v; want 0", got)
	}
	// PE processes never have communication.
	if got := o.CommDegradation(5, []job.ProcID{6}); got != 0 {
		t.Errorf("PE CommDegradation = %v; want 0", got)
	}
	_ = b
}

func TestSDCOracleRejectsBadInputs(t *testing.T) {
	bd := job.NewBuilder()
	bd.AddSerial("a")
	bd.AddSerial("b")
	b, err := bd.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	m := cache.DualCore
	good := func() []*cache.Profile {
		ps := make([]*cache.Profile, 2)
		for i := range ps {
			ps[i] = &cache.Profile{Name: "p", Hits: make([]float64, m.Ways), Beyond: 1, BaseCycles: 1}
		}
		return ps
	}
	if _, err := NewSDCOracle(b, &m, good()[:1], nil); err == nil {
		t.Error("accepted wrong profile count")
	}
	ps := good()
	ps[0] = nil
	if _, err := NewSDCOracle(b, &m, ps, nil); err == nil {
		t.Error("accepted nil profile for real process")
	}
	if _, err := NewSDCOracle(b, &m, good(), map[job.JobID]*comm.Pattern{5: comm.Grid1D(1, 0)}); err == nil {
		t.Error("accepted pattern for unknown job")
	}
}

func TestMemoizedCaches(t *testing.T) {
	_, o := testInstance(t, 4)
	m := NewMemoized(o)
	d1 := m.Degradation(1, []job.ProcID{2, 3, 4})
	d2 := m.Degradation(1, []job.ProcID{4, 3, 2}) // different order, same set
	if d1 != d2 {
		t.Errorf("memoized results differ across co-runner orderings: %v vs %v", d1, d2)
	}
	hits, total := m.CacheStats()
	if total != 2 || hits != 1 {
		t.Errorf("cache stats = %d hits / %d total; want 1/2", hits, total)
	}
	if NewMemoized(m) != m {
		t.Error("NewMemoized re-wrapped an already-memoized oracle")
	}
	c1 := m.CommDegradation(1, []job.ProcID{2})
	c2 := m.CommDegradation(1, []job.ProcID{2})
	if c1 != c2 {
		t.Errorf("comm memoization inconsistent: %v vs %v", c1, c2)
	}
}

func TestMemoizedCapacityEvictsLRU(t *testing.T) {
	_, o := testInstance(t, 4)
	bounded := NewMemoizedCapacity(o, 2)
	unbounded := NewMemoized(o)

	queries := [][]job.ProcID{{2, 3, 4}, {2, 3, 5}, {2, 3, 6}, {2, 3, 7}}
	for _, co := range queries {
		if got, want := bounded.Degradation(1, co), unbounded.Degradation(1, co); got != want {
			t.Errorf("bounded Degradation(1,%v) = %v; want %v", co, got, want)
		}
	}
	if n := bounded.CacheSize(); n != 2 {
		t.Errorf("cache holds %d entries; want capacity 2", n)
	}
	if ev := bounded.Evictions(); ev != 2 {
		t.Errorf("evictions = %d; want 2", ev)
	}
	// The two oldest keys were evicted: re-querying them is a miss (total
	// grows, hits does not), and the recomputed value is unchanged.
	hits0, total0 := bounded.CacheStats()
	if got, want := bounded.Degradation(1, queries[0]), unbounded.Degradation(1, queries[0]); got != want {
		t.Errorf("re-query after eviction = %v; want %v", got, want)
	}
	hits1, total1 := bounded.CacheStats()
	if hits1 != hits0 || total1 != total0+1 {
		t.Errorf("stats after evicted re-query = %d/%d; want %d/%d (a miss)", hits1, total1, hits0, total0+1)
	}
	// The most recent key survived and still hits.
	bounded.Degradation(1, queries[3])
	hits2, _ := bounded.CacheStats()
	if hits2 != hits1+1 {
		t.Error("most-recently-used entry did not survive eviction")
	}
}

func TestMemoizedSetCapacityTrimsExisting(t *testing.T) {
	_, o := testInstance(t, 4)
	m := NewMemoized(o)
	for q := job.ProcID(2); q <= 6; q++ {
		m.Degradation(1, []job.ProcID{q})
		m.CommDegradation(1, []job.ProcID{q})
	}
	if n := m.CacheSize(); n != 10 {
		t.Fatalf("unbounded cache holds %d entries; want 10", n)
	}
	m.SetCapacity(3)
	if n := m.CacheSize(); n != 6 {
		t.Errorf("after SetCapacity(3) cache holds %d entries; want 3 per cache", n)
	}
	if ev := m.Evictions(); ev != 4 {
		t.Errorf("evictions = %d; want 4", ev)
	}
	// NewMemoizedCapacity on an already-memoized oracle applies the bound
	// in place.
	if got := NewMemoizedCapacity(m, 1); got != m {
		t.Error("NewMemoizedCapacity re-wrapped an already-memoized oracle")
	}
	if n := m.CacheSize(); n != 2 {
		t.Errorf("after NewMemoizedCapacity(m, 1) cache holds %d entries; want 1 per cache", n)
	}
}

func TestPairwiseOracle(t *testing.T) {
	bd := job.NewBuilder()
	bd.AddSerial("a")
	bd.AddSerial("b")
	bd.AddSerial("c")
	bd.AddSerial("d")
	b, err := bd.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	mtx := [][]float64{
		{0, 1, 2, 3},
		{4, 0, 5, 6},
		{7, 8, 0, 9},
		{10, 11, 12, 0},
	}
	o, err := NewPairwiseOracle(b, mtx, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Degradation(1, []job.ProcID{3}); got != 2 {
		t.Errorf("Degradation(1,{3}) = %v; want 2", got)
	}
	if got := o.Degradation(2, []job.ProcID{1, 4}); got != 10 {
		t.Errorf("Degradation(2,{1,4}) = %v; want 10", got)
	}
	if got := o.CommDegradation(1, nil); got != 0 {
		t.Errorf("serial pairwise CommDegradation = %v", got)
	}
}

func TestPairwiseOracleRejectsBadMatrices(t *testing.T) {
	bd := job.NewBuilder()
	bd.AddSerial("a")
	bd.AddSerial("b")
	b, err := bd.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][][]float64{
		{{0, 1}},          // wrong rows
		{{0}, {0}},        // wrong cols
		{{1, 1}, {1, 0}},  // non-zero diagonal
		{{0, -1}, {1, 0}}, // negative
	}
	for i, mtx := range cases {
		if _, err := NewPairwiseOracle(b, mtx, nil, 0); err == nil {
			t.Errorf("case %d: accepted bad matrix", i)
		}
	}
}

func TestPairwiseOracleCommTerm(t *testing.T) {
	bd := job.NewBuilder()
	pc := bd.AddPC("mpi", 2)
	b, err := bd.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	mtx := [][]float64{{0, 0}, {0, 0}}
	pat := comm.Grid1D(2, 100)
	o, err := NewPairwiseOracle(b, mtx, map[job.JobID]*comm.Pattern{pc: pat}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.CommDegradation(1, nil); got != 1.0 { // 100 bytes * 0.01
		t.Errorf("CommDegradation remote = %v; want 1.0", got)
	}
	if got := o.CommDegradation(1, []job.ProcID{2}); got != 0 {
		t.Errorf("CommDegradation local = %v; want 0", got)
	}
}
