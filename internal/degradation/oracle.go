package degradation

import (
	"encoding/binary"
	"sync"

	"cosched/internal/job"
)

// Oracle answers degradation queries for one batch on one machine class.
//
// Degradation returns Eq. 1's d(i,S): the relative slowdown of process p's
// computation when co-running with coRunners on one machine. CommDegradation
// returns Eq. 9's additive term c(i,S)/ct(i): the communication time of p
// normalised by its solo computation time, given that exactly the processes
// in coRunners share p's machine. Both must return 0 for imaginary
// (padding) processes, and imaginary co-runners must have no effect.
type Oracle interface {
	Degradation(p job.ProcID, coRunners []job.ProcID) float64
	CommDegradation(p job.ProcID, coRunners []job.ProcID) float64
}

// setKey builds a compact map key for (p, set) queries. The co-runner set
// is sorted by the caller's contract (callers pass node contents whose
// order may vary), so we sort a small stack copy here.
func setKey(p job.ProcID, coRunners []job.ProcID) string {
	var stack [16]job.ProcID
	set := stack[:0]
	set = append(set, coRunners...)
	// insertion sort: u-1 elements, u ≤ 16 in practice
	for i := 1; i < len(set); i++ {
		for j := i; j > 0 && set[j] < set[j-1]; j-- {
			set[j], set[j-1] = set[j-1], set[j]
		}
	}
	buf := make([]byte, 0, (len(set)+1)*3)
	buf = binary.AppendUvarint(buf, uint64(p))
	for _, q := range set {
		buf = binary.AppendUvarint(buf, uint64(q))
	}
	return string(buf)
}

// Memoized wraps an Oracle with a concurrency-safe query cache. Both OA*
// and the IP model builder ask for the same (p,S) pairs many times; the
// cache turns repeated SDC merges into map hits.
type Memoized struct {
	inner Oracle

	mu    sync.Mutex
	deg   map[string]float64
	comm  map[string]float64
	hits  int64
	total int64
}

// NewMemoized wraps the oracle with a cache. Wrapping an already-memoized
// oracle returns it unchanged.
func NewMemoized(inner Oracle) *Memoized {
	if m, ok := inner.(*Memoized); ok {
		return m
	}
	return &Memoized{
		inner: inner,
		deg:   make(map[string]float64),
		comm:  make(map[string]float64),
	}
}

// Degradation implements Oracle.
func (m *Memoized) Degradation(p job.ProcID, coRunners []job.ProcID) float64 {
	k := setKey(p, coRunners)
	m.mu.Lock()
	m.total++
	if v, ok := m.deg[k]; ok {
		m.hits++
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()
	v := m.inner.Degradation(p, coRunners)
	m.mu.Lock()
	m.deg[k] = v
	m.mu.Unlock()
	return v
}

// CommDegradation implements Oracle.
func (m *Memoized) CommDegradation(p job.ProcID, coRunners []job.ProcID) float64 {
	k := setKey(p, coRunners)
	m.mu.Lock()
	if v, ok := m.comm[k]; ok {
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()
	v := m.inner.CommDegradation(p, coRunners)
	m.mu.Lock()
	m.comm[k] = v
	m.mu.Unlock()
	return v
}

// Inner returns the wrapped oracle, letting solvers detect oracle
// families (e.g. the additive-pairwise oracle) through the cache.
func (m *Memoized) Inner() Oracle { return m.inner }

// CacheStats returns (hits, total) degradation queries, for tests and
// diagnostics.
func (m *Memoized) CacheStats() (hits, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.total
}
