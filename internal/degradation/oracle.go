package degradation

import (
	"container/list"
	"encoding/binary"
	"sync"

	"cosched/internal/job"
)

// Oracle answers degradation queries for one batch on one machine class.
//
// Degradation returns Eq. 1's d(i,S): the relative slowdown of process p's
// computation when co-running with coRunners on one machine. CommDegradation
// returns Eq. 9's additive term c(i,S)/ct(i): the communication time of p
// normalised by its solo computation time, given that exactly the processes
// in coRunners share p's machine. Both must return 0 for imaginary
// (padding) processes, and imaginary co-runners must have no effect.
type Oracle interface {
	Degradation(p job.ProcID, coRunners []job.ProcID) float64
	CommDegradation(p job.ProcID, coRunners []job.ProcID) float64
}

// setKey builds a compact map key for (p, set) queries. The co-runner set
// is sorted by the caller's contract (callers pass node contents whose
// order may vary), so we sort a small stack copy here.
func setKey(p job.ProcID, coRunners []job.ProcID) string {
	var stack [16]job.ProcID
	set := stack[:0]
	set = append(set, coRunners...)
	// insertion sort: u-1 elements, u ≤ 16 in practice
	for i := 1; i < len(set); i++ {
		for j := i; j > 0 && set[j] < set[j-1]; j-- {
			set[j], set[j-1] = set[j-1], set[j]
		}
	}
	buf := make([]byte, 0, (len(set)+1)*3)
	buf = binary.AppendUvarint(buf, uint64(p))
	for _, q := range set {
		buf = binary.AppendUvarint(buf, uint64(q))
	}
	return string(buf)
}

// memoEntry is one cached (key, value) pair of a memoCache, stored as a
// list.Element value so recency moves are pointer swaps.
type memoEntry struct {
	key string
	v   float64
}

// memoCache is one bounded query cache of a Memoized oracle: a map for
// O(1) lookup plus an LRU list for eviction order. Capacity 0 (or
// negative) means unbounded — the historical behaviour. All methods must
// run under the owning Memoized's mutex.
type memoCache struct {
	m         map[string]*list.Element
	ll        *list.List // front = most recently used
	capacity  int
	evictions int64
}

func newMemoCache() *memoCache {
	return &memoCache{m: make(map[string]*list.Element), ll: list.New()}
}

// get returns the cached value and refreshes its recency.
func (c *memoCache) get(k string) (float64, bool) {
	e, ok := c.m[k]
	if !ok {
		return 0, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*memoEntry).v, true
}

// put records a value (refreshing recency on re-insert) and evicts the
// least-recently-used entries beyond capacity.
func (c *memoCache) put(k string, v float64) {
	if e, ok := c.m[k]; ok {
		e.Value.(*memoEntry).v = v
		c.ll.MoveToFront(e)
		return
	}
	c.m[k] = c.ll.PushFront(&memoEntry{key: k, v: v})
	c.trim()
}

// trim evicts from the cold end until the cache fits its capacity.
func (c *memoCache) trim() {
	for c.capacity > 0 && c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*memoEntry).key)
		c.evictions++
	}
}

// Memoized wraps an Oracle with a concurrency-safe query cache. Both OA*
// and the IP model builder ask for the same (p,S) pairs many times; the
// cache turns repeated SDC merges into map hits.
//
// The cache is unbounded by default — right for a single solve, a leak
// in a long-running daemon serving many solves from one oracle. Give it
// a capacity (NewMemoizedCapacity or SetCapacity) to bound each of the
// two query caches with least-recently-used eviction; an evicted entry
// is simply recomputed (and re-cached) on its next query, so eviction
// never changes an answer.
type Memoized struct {
	inner Oracle

	mu    sync.Mutex
	deg   *memoCache
	comm  *memoCache
	hits  int64
	total int64
}

// NewMemoized wraps the oracle with an unbounded cache. Wrapping an
// already-memoized oracle returns it unchanged.
func NewMemoized(inner Oracle) *Memoized {
	if m, ok := inner.(*Memoized); ok {
		return m
	}
	return &Memoized{
		inner: inner,
		deg:   newMemoCache(),
		comm:  newMemoCache(),
	}
}

// NewMemoizedCapacity wraps the oracle with a bounded cache: each of the
// two query caches (computation and communication degradation) holds at
// most capacity entries, evicting least-recently-used. capacity <= 0
// means unbounded. Wrapping an already-memoized oracle applies the
// capacity to it and returns it unchanged.
func NewMemoizedCapacity(inner Oracle, capacity int) *Memoized {
	m := NewMemoized(inner)
	m.SetCapacity(capacity)
	return m
}

// SetCapacity bounds each query cache to capacity entries (<= 0 means
// unbounded), evicting immediately if the caches already exceed it.
func (m *Memoized) SetCapacity(capacity int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deg.capacity, m.comm.capacity = capacity, capacity
	m.deg.trim()
	m.comm.trim()
}

// Degradation implements Oracle.
func (m *Memoized) Degradation(p job.ProcID, coRunners []job.ProcID) float64 {
	k := setKey(p, coRunners)
	m.mu.Lock()
	m.total++
	if v, ok := m.deg.get(k); ok {
		m.hits++
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()
	v := m.inner.Degradation(p, coRunners)
	m.mu.Lock()
	m.deg.put(k, v)
	m.mu.Unlock()
	return v
}

// CommDegradation implements Oracle.
func (m *Memoized) CommDegradation(p job.ProcID, coRunners []job.ProcID) float64 {
	k := setKey(p, coRunners)
	m.mu.Lock()
	if v, ok := m.comm.get(k); ok {
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()
	v := m.inner.CommDegradation(p, coRunners)
	m.mu.Lock()
	m.comm.put(k, v)
	m.mu.Unlock()
	return v
}

// Inner returns the wrapped oracle, letting solvers detect oracle
// families (e.g. the additive-pairwise oracle) through the cache.
func (m *Memoized) Inner() Oracle { return m.inner }

// CacheStats returns (hits, total) degradation queries, for tests and
// diagnostics. An evicted entry's re-query counts as a miss — total
// grows, hits does not — so the ratio stays honest under eviction.
func (m *Memoized) CacheStats() (hits, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.total
}

// CacheSize returns the number of entries currently cached across both
// query caches.
func (m *Memoized) CacheSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deg.ll.Len() + m.comm.ll.Len()
}

// Evictions returns how many entries the capacity bound has evicted
// across both query caches (0 while unbounded).
func (m *Memoized) Evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deg.evictions + m.comm.evictions
}
