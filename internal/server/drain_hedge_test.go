package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// jsonReader wraps a JSON literal for http.Post.
func jsonReader(s string) io.Reader { return strings.NewReader(s) }

// decodeJSONBody decodes and closes a response body.
func decodeJSONBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close() //nolint:errcheck
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
}

// TestDrainWithInFlightHedgeCancel races a drain against a hedge
// loser's cancellation: one worker is mid-solve for a client that goes
// away (the fleet client cancelled its losing hedge attempt), a second
// request is still queued for the same vanished client, and Drain
// begins under both. The drain must complete promptly — the cancelled
// client's solve aborts instead of running to natural completion — the
// queued task must be answered 499 without ever reaching the solver
// (server.solves stays at 1, no duplicate side effects), and the
// client-gone counter must record both.
func TestDrainWithInFlightHedgeCancel(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 8, CacheEntries: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Request 1: a long uncancelled-it-would-run-for-seconds solve,
	// admitted under a client context we cancel mid-run.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	req1 := &SolveRequest{Synthetic: 26, Method: "oastar", NoCache: true}
	t1, aerr := s.admit(WithRequestID(ctx1, "hedge-loser-1"), req1, false)
	if aerr != nil {
		t.Fatalf("admit 1: %+v", aerr)
	}
	// Wait until the single worker has actually started solving it.
	deadline := time.Now().Add(5 * time.Second)
	for s.solves.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started the parked solve")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Request 2: queued behind it, same vanished client.
	ctx2, cancel2 := context.WithCancel(context.Background())
	req2 := &SolveRequest{Synthetic: 8, Method: "hastar", NoCache: true}
	t2, aerr := s.admit(WithRequestID(ctx2, "hedge-loser-2"), req2, false)
	if aerr != nil {
		t.Fatalf("admit 2: %+v", aerr)
	}
	cancel2() // the hedge's winner answered: the client cancels this attempt

	// Begin draining while the first solve is still in flight, then
	// cancel its client too — the shape of a daemon going down while a
	// fleet client abandons its hedges.
	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel1()

	select {
	case err := <-drainErr:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("drain never completed")
	}

	<-t1.done
	<-t2.done
	// The in-flight solve was cancelled, not duplicated: exactly one
	// solver run happened across both tasks.
	if got := s.solves.Value(); got != 1 {
		t.Fatalf("server.solves = %d; want 1 (queued task for a gone client must not solve)", got)
	}
	if t2.status != statusClientGone {
		t.Fatalf("queued task status = %d (%q); want %d", t2.status, t2.errMsg, statusClientGone)
	}
	if s.rejectedGone.Value() == 0 {
		t.Fatal("server.rejected.client_gone never counted")
	}
	// The cancelled in-flight solve must have ended degraded (aborted
	// early) rather than running to a proven optimum.
	if t1.errMsg == "" && t1.resp != nil && !t1.resp.Degraded {
		t.Fatalf("in-flight solve finished undegraded; cancellation did not propagate (resp=%+v)", t1.resp)
	}
}

// TestQueuedTaskForGoneClientSkipsSolve pins the fast path: a request
// whose client disconnects while the task is queued is answered 499
// without burning a worker on it.
func TestQueuedTaskForGoneClientSkipsSolve(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 8, CacheEntries: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort cleanup
	}()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // client is already gone at admission's queue hop
	req := &SolveRequest{Synthetic: 6, Method: "hastar", NoCache: true}
	tk, aerr := s.admit(WithRequestID(ctx, "gone"), req, false)
	if aerr != nil {
		t.Fatalf("admit: %+v", aerr)
	}
	select {
	case <-tk.done:
	case <-time.After(5 * time.Second):
		t.Fatal("task never resolved")
	}
	if tk.status != statusClientGone {
		t.Fatalf("status = %d; want %d", tk.status, statusClientGone)
	}
	if got := s.solves.Value(); got != 0 {
		t.Fatalf("server.solves = %d; want 0", got)
	}
}

// TestRejectionsCarryRetryAfter pins the satellite contract: 429 (queue
// full) and 503 (draining) rejections carry a Retry-After header, and
// /healthz exposes the replica ID in both states.
func TestRejectionsCarryRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1, CacheEntries: -1,
		ReplicaID:           "r-test",
		RetryAfterQueueFull: time.Second,
		RetryAfterDraining:  3 * time.Second,
	})

	// Healthy healthz names the replica.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	decodeJSONBody(t, resp, &health)
	if health["replica_id"] != "r-test" {
		t.Fatalf("healthz = %v; want replica_id r-test", health)
	}

	// Fill the worker and the queue, then overflow: the 429 must carry
	// Retry-After.
	park := parkWorker(t, s, ts, 3000)
	defer func() { <-park }()
	queued := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, ts.URL+"/v1/solve",
			`{"synthetic": 26, "method": "oastar", "deadline_ms": 3000, "no_cache": true}`)
		queued <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json",
		jsonReader(`{"synthetic": 4, "method": "hastar"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d; want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 Retry-After = %q; want \"1\"", ra)
	}

	// Draining: healthz flips to 503 with Retry-After and the replica ID.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // drain outcome checked via healthz
	}()
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		resp.Body.Close() //nolint:errcheck
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("draining healthz Retry-After = %q; want \"3\"", ra)
	}
	var drainingHealth map[string]any
	decodeJSONBody(t, resp, &drainingHealth)
	if drainingHealth["status"] != "draining" || drainingHealth["replica_id"] != "r-test" {
		t.Fatalf("draining healthz = %v", drainingHealth)
	}

	// A solve rejected during drain also carries the hint.
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json",
		jsonReader(`{"synthetic": 4, "method": "hastar"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain-time solve status = %d; want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("drain-time 503 Retry-After = %q; want \"3\"", ra)
	}
	<-queued
}
