package server

import "cosched"

// SolveRequest is the JSON body of /v1/solve and /v1/solve-robust, and
// one element of a /v1/batch request. Exactly one workload source —
// spec, synthetic or synthetic_large — must be set.
type SolveRequest struct {
	// Spec is an inline workload description (the cosched.SpecFile JSON
	// format, as accepted by coschedcli -specfile).
	Spec *cosched.SpecFile `json:"spec,omitempty"`
	// Synthetic asks for N synthetic serial jobs on the SDC cache model;
	// SyntheticLarge for N jobs on the O(u) additive pairwise oracle.
	Synthetic      int `json:"synthetic,omitempty"`
	SyntheticLarge int `json:"synthetic_large,omitempty"`
	// Seed drives the synthetic generators (0 means 1).
	Seed int64 `json:"seed,omitempty"`
	// Machine is the machine class for synthetic workloads ("dual",
	// "quad", "8core"; default quad). Spec workloads carry their own.
	Machine string `json:"machine,omitempty"`
	// Method and Accounting name the solver configuration ("oastar",
	// "hastar", "ip", "osvp", "pg", "brute" / "se", "pe", "pc"); empty
	// means the defaults (OA*, PC accounting).
	Method     string `json:"method,omitempty"`
	Accounting string `json:"accounting,omitempty"`
	// HStrategy, KPerLevel, HWeight, BeamWidth and IPConfig mirror the
	// cosched.Options fields of the same names.
	HStrategy int     `json:"h_strategy,omitempty"`
	KPerLevel int     `json:"k_per_level,omitempty"`
	HWeight   float64 `json:"h_weight,omitempty"`
	BeamWidth int     `json:"beam_width,omitempty"`
	IPConfig  string  `json:"ip_config,omitempty"`
	// DeadlineMS is this request's wall-clock budget in milliseconds,
	// counted from admission: time spent queued eats into it, and the
	// remainder becomes the solve's context deadline. 0 applies the
	// server's default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxExpansions and MemoryBudgetBytes mirror the cosched.Options
	// budget fields.
	MaxExpansions     int64 `json:"max_expansions,omitempty"`
	MemoryBudgetBytes int64 `json:"memory_budget_bytes,omitempty"`
	// Parallelism is the graph-search expansion-worker count for this
	// request: 0 applies the server's -solve-parallelism default, 1
	// forces the exact sequential path, higher values run the parallel
	// engine on eligible configurations. It does not enter the solution
	// cache key — worker count never changes the answer's cost.
	Parallelism int `json:"parallelism,omitempty"`
	// NoCache bypasses the solved-schedule cache for this request (it
	// neither reads nor populates it).
	NoCache bool `json:"no_cache,omitempty"`
	// Trace returns the solve's JSONL event stream in the response
	// (misses only — cached answers ran no solver).
	Trace bool `json:"trace,omitempty"`
	// Robust routes a /v1/batch element through the SolveRobust ladder
	// (ignored on /v1/solve and /v1/solve-robust, where the endpoint
	// decides).
	Robust bool `json:"robust,omitempty"`
}

// SolveResponse is the JSON answer to a successful solve.
type SolveResponse struct {
	// Cost is the schedule's total degradation (the paper's Eq. 6/13
	// objective); AvgCost the per-job average.
	Cost    float64 `json:"cost"`
	AvgCost float64 `json:"avg_cost"`
	// Groups is the partition as 1-based process IDs per machine;
	// Machines the same partition as job names.
	Groups   [][]int    `json:"groups"`
	Machines [][]string `json:"machines"`
	// Method names what produced the schedule ("robust" for the ladder).
	Method string `json:"method"`
	// Degraded reports a budget-breached best-effort answer, with
	// AbortReason saying which budget broke.
	Degraded    bool   `json:"degraded"`
	AbortReason string `json:"abort_reason,omitempty"`
	// Fallbacks records the SolveRobust ladder's attempts in order.
	Fallbacks []FallbackInfo `json:"fallbacks,omitempty"`
	// Cached reports a solution served from the solved-schedule cache
	// without running a solver; Shared one computed once for several
	// concurrent identical requests. Cached is always present so
	// clients (and the CI gate) can assert on both values.
	Cached bool `json:"cached"`
	Shared bool `json:"shared,omitempty"`
	// QueueMS is the time this request waited for a worker; SolveMS the
	// solver wall-clock of the answering run (the original run's, for
	// cached answers).
	QueueMS float64 `json:"queue_ms"`
	SolveMS float64 `json:"solve_ms"`
	// TraceJSONL carries the solve's event stream when the request set
	// trace and the answer was freshly computed.
	TraceJSONL string `json:"trace_jsonl,omitempty"`
	// RequestID is the request's identity (the X-Request-ID echo, in the
	// body for clients that drop headers); SolveID is the solver run that
	// produced the answer — the original run's for cached answers — the
	// join key into JSONL traces and coschedtrace timelines.
	RequestID string `json:"request_id,omitempty"`
	SolveID   uint64 `json:"solve_id,omitempty"`
}

// FallbackInfo is one SolveRobust ladder attempt on the wire.
type FallbackInfo struct {
	// Method is the rung's algorithm; Degraded/Aborted/Err mirror
	// cosched.Fallback.
	Method   string `json:"method"`
	Degraded bool   `json:"degraded,omitempty"`
	Aborted  string `json:"aborted,omitempty"`
	Err      string `json:"err,omitempty"`
}
