package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cosched/internal/telemetry"
)

// syncBuf is an io.Writer safe to read while handler goroutines write
// (the access log flushes after the response bytes are on the wire, so
// a test can observe the body before the log line lands).
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForLog polls the buffer until a line containing needle appears.
func waitForLog(t *testing.T, buf *syncBuf, needle string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.Contains(line, needle) {
				return line
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no access-log line containing %q; log so far:\n%s", needle, buf.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRequestIDEchoAccessLogAndTraceJoin(t *testing.T) {
	buf := &syncBuf{}
	rec := telemetry.NewFlightRecorder(4096)
	reg := telemetry.New()
	_, ts := newTestServer(t, Config{
		Workers:   1,
		Metrics:   reg,
		Recorder:  rec,
		AccessLog: slog.New(slog.NewJSONHandler(buf, nil)),
	})

	const reqID = "test-req-abc"
	httpReq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(specBody))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("X-Request-ID echo = %q, want %q", got, reqID)
	}
	var body SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != reqID {
		t.Errorf("body request_id = %q, want %q", body.RequestID, reqID)
	}
	if body.SolveID == 0 {
		t.Error("body solve_id = 0, want the answering run's id")
	}

	// Exactly one access-log line carries the ID, with the phase
	// breakdown and outcome fields.
	line := waitForLog(t, buf, reqID)
	if n := strings.Count(buf.String(), reqID); n != 1 {
		t.Errorf("request ID appears in %d access-log lines, want 1", n)
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access-log line is not JSON: %v\n%s", err, line)
	}
	for _, field := range []string{"req_id", "route", "status", "queue_ms", "solve_ms", "encode_ms", "total_ms", "cache", "degraded", "solve_id"} {
		if _, ok := entry[field]; !ok {
			t.Errorf("access-log line missing %q: %s", field, line)
		}
	}
	if entry["route"] != "v1_solve" || entry["cache"] != "miss" {
		t.Errorf("route/cache = %v/%v, want v1_solve/miss", entry["route"], entry["cache"])
	}

	// The request event joins the solver timeline: same solve_id as the
	// run's solver events.
	var reqEv *telemetry.Event
	solveIDs := map[uint64]bool{}
	for _, ev := range rec.Events() {
		ev := ev
		if ev.Ev == "request" && ev.ReqID == reqID {
			reqEv = &ev
			continue
		}
		if ev.SolveID != 0 {
			solveIDs[ev.SolveID] = true
		}
	}
	if reqEv == nil {
		t.Fatal("no request event in the flight recorder")
	}
	if reqEv.SolveID != body.SolveID {
		t.Errorf("request event solve_id = %d, response says %d", reqEv.SolveID, body.SolveID)
	}
	if !solveIDs[reqEv.SolveID] {
		t.Errorf("no solver events share the request's solve_id %d", reqEv.SolveID)
	}

	// RED metrics, SLO counters, and the drained in-flight gauge.
	snap := reg.Snapshot()
	if got := snap["server.http.requests.v1_solve"]; got != int64(1) {
		t.Errorf("server.http.requests.v1_solve = %v, want 1", got)
	}
	if got := snap["server.http.requests.v1_solve.2xx"]; got != int64(1) {
		t.Errorf("server.http.requests.v1_solve.2xx = %v, want 1", got)
	}
	if got := snap["server.requests_inflight"]; got != int64(0) {
		t.Errorf("server.requests_inflight = %v, want 0 after completion", got)
	}
	if got := snap["server.slo.availability.good"]; got != int64(1) {
		t.Errorf("server.slo.availability.good = %v, want 1", got)
	}
	if _, ok := snap["server.slo.latency.burn_fast"]; !ok {
		t.Error("server.slo.latency.burn_fast not registered")
	}
}

func TestGeneratedAndSanitizedRequestIDs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, header := range map[string]string{
		"absent":         "",
		"embedded-space": "bad id", // space fails the printable-ASCII token check
		"too-long":       strings.Repeat("x", 300),
	} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set("X-Request-ID", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()              //nolint:errcheck
		got := resp.Header.Get("X-Request-ID")
		if got == "" {
			t.Errorf("%s: no generated X-Request-ID on the response", name)
		}
		if header != "" && got == header {
			t.Errorf("%s: unusable inbound ID %q was echoed instead of replaced", name, header)
		}
	}
}

func TestHealthzReportsDrainState(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := newHandlerServer(t, s)

	status, body := getJSON(t, ts+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", status)
	}
	if body["status"] != "ok" {
		t.Errorf(`healthz status = %v, want "ok"`, body["status"])
	}
	for _, field := range []string{"queue_len", "queue_cap", "workers"} {
		if _, ok := body[field]; !ok {
			t.Errorf("healthz body missing %q: %v", field, body)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	status, body = getJSON(t, ts+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", status)
	}
	if body["status"] != "draining" {
		t.Errorf(`healthz status = %v, want "draining"`, body["status"])
	}
}

func TestDebugRequestsRing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RequestRing: 8})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(specBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "ring-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()              //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d, want 200", resp.StatusCode)
	}

	// The ring is written after the response bytes; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		dbg, err := http.Get(ts.URL + "/debug/requests")
		if err != nil {
			t.Fatal(err)
		}
		page, _ := io.ReadAll(dbg.Body)
		dbg.Body.Close() //nolint:errcheck
		if strings.Contains(string(page), "ring-probe-1") {
			if !strings.Contains(string(page), "v1_solve") {
				t.Errorf("/debug/requests row lacks the route:\n%s", page)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("/debug/requests never showed the request:\n%s", page)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRequestRingSeqlock(t *testing.T) {
	rr := newRequestRing(4)
	for i := 0; i < 10; i++ {
		rr.put(reqRecord{id: string(rune('a' + i)), atMS: float64(i)})
	}
	recs := rr.snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot retained %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := float64(6 + i); rec.atMS != want {
			t.Errorf("record %d atMS = %v, want %v (oldest-first)", i, rec.atMS, want)
		}
	}
}

// newHandlerServer mounts a server's handler without the auto-drain
// cleanup of newTestServer (for tests that drain explicitly).
func newHandlerServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: bad response JSON: %v", url, err)
	}
	return resp.StatusCode, out
}
