package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"cosched/internal/telemetry"
)

// scaleHarness is an autoscaler wired to a fake clock and a counting
// fake pool, so tests drive tick deterministically: no timers, no real
// workers.
type scaleHarness struct {
	a       *autoscaler
	clock   time.Time
	hist    *telemetry.Histogram
	queued  int
	size    int
	grows   int
	shrinks int
}

func newScaleHarness(minW, maxW int, upP90MS float64, idle, cooldown time.Duration) *scaleHarness {
	h := &scaleHarness{
		clock: time.Unix(1000, 0),
		hist:  telemetry.New().Histogram("queue_delay_ms", []float64{1, 5, 10, 50, 100, 500}),
		size:  minW,
	}
	h.a = &autoscaler{
		min:        minW,
		max:        maxW,
		upP90MS:    upP90MS,
		idle:       idle,
		cooldown:   cooldown,
		now:        func() time.Time { return h.clock },
		delay:      h.hist,
		queueLen:   func() int { return h.queued },
		workers:    func() int { return h.size },
		grow:       func(string) bool { h.size++; h.grows++; return true },
		shrink:     func(string) bool { h.size--; h.shrinks++; return true },
		lastActive: h.clock,
	}
	return h
}

// loadWindow records n queue-delay observations of delayMS each, i.e.
// one decision window's worth of admissions.
func (h *scaleHarness) loadWindow(n int, delayMS float64) {
	for i := 0; i < n; i++ {
		h.hist.Observe(delayMS)
	}
}

func (h *scaleHarness) advance(d time.Duration) { h.clock = h.clock.Add(d) }

func TestAutoscalerGrowsOnQueueDelay(t *testing.T) {
	h := newScaleHarness(1, 4, 25, 5*time.Second, 0)

	// A window whose p90 sits around 100ms (> 25ms threshold) must grow.
	h.loadWindow(10, 100)
	if got := h.a.tick(); got != "grow" {
		t.Fatalf("tick under 100ms p90 = %q; want grow", got)
	}
	if h.size != 2 {
		t.Fatalf("pool size = %d after one grow; want 2", h.size)
	}

	// A calm window (all sub-millisecond pops) must not grow further.
	h.advance(time.Second)
	h.loadWindow(10, 0.2)
	if got := h.a.tick(); got != "" {
		t.Fatalf("tick under 0.2ms p90 = %q; want no action", got)
	}
}

func TestAutoscalerIgnoresStaleCumulativeCounts(t *testing.T) {
	h := newScaleHarness(1, 4, 25, 5*time.Second, 0)

	// Heavy history, consumed by one tick.
	h.loadWindow(100, 500)
	if got := h.a.tick(); got != "grow" {
		t.Fatalf("first tick = %q; want grow", got)
	}
	// The next window is empty: the cumulative histogram still holds the
	// old observations, but the windowed view must not re-count them.
	h.advance(time.Second)
	if got := h.a.tick(); got == "grow" {
		t.Fatal("second tick re-grew on stale cumulative counts")
	}
}

func TestAutoscalerShrinksAfterSustainedIdle(t *testing.T) {
	h := newScaleHarness(1, 4, 25, 5*time.Second, 0)
	h.loadWindow(10, 100)
	h.a.tick() // grow to 2

	// Idle, but not for long enough: no shrink yet.
	h.advance(3 * time.Second)
	if got := h.a.tick(); got != "" {
		t.Fatalf("tick after 3s idle = %q; want no action (idle window is 5s)", got)
	}
	// A queued task counts as activity and resets the idle clock.
	h.advance(3 * time.Second)
	h.queued = 1
	if got := h.a.tick(); got != "" {
		t.Fatalf("tick with queued work = %q; want no action", got)
	}
	h.queued = 0
	// Now a full idle window with nothing queued: shrink back.
	h.advance(5 * time.Second)
	if got := h.a.tick(); got != "shrink" {
		t.Fatalf("tick after full idle window = %q; want shrink", got)
	}
	if h.size != 1 {
		t.Fatalf("pool size = %d after shrink; want 1", h.size)
	}
}

func TestAutoscalerCooldownPreventsFlapping(t *testing.T) {
	// Oscillating load with a 10s cooldown: one burst per second, each
	// heavy enough to grow and each followed by a dead-idle window (the
	// idle threshold of 1s is deliberately shorter than the cooldown).
	h := newScaleHarness(1, 8, 25, time.Second, 10*time.Second)
	for i := 0; i < 10; i++ {
		h.loadWindow(10, 500) // heavy half-window
		h.a.tick()
		h.advance(time.Second)
		h.a.tick() // idle half-window
		h.advance(time.Second)
	}
	// 20s of oscillation with a 10s cooldown admits at most 3 scale
	// events (t=0, t≥10, t≥20) — without the cooldown this load pattern
	// would flap on every iteration.
	if total := h.grows + h.shrinks; total > 3 {
		t.Fatalf("%d grows + %d shrinks under oscillating load; want <= 3 total", h.grows, h.shrinks)
	}
	if h.grows == 0 {
		t.Fatal("oscillating load never grew the pool at all")
	}
}

func TestAutoscalerClampsToMinMax(t *testing.T) {
	h := newScaleHarness(2, 3, 25, time.Second, 0)

	// Grow to the ceiling, then keep the pressure on: size must stop at max.
	for i := 0; i < 5; i++ {
		h.loadWindow(10, 500)
		h.a.tick()
		h.advance(time.Second)
	}
	if h.size != 3 {
		t.Fatalf("pool size = %d under sustained pressure; want clamped at max 3", h.size)
	}

	// Idle forever: size must stop at min.
	for i := 0; i < 5; i++ {
		h.advance(time.Minute)
		h.a.tick()
	}
	if h.size != 2 {
		t.Fatalf("pool size = %d after sustained idle; want clamped at min 2", h.size)
	}
}

func TestWorkersFixedWhenMinEqualsMax(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 3})
	if s.scaler != nil {
		t.Error("fixed-size config (min == max) started an autoscaler")
	}
	if got := s.Workers(); got != 3 {
		t.Errorf("Workers() = %d; want 3", got)
	}
	if got := s.scaleWorkers.Value(); got != 3 {
		t.Errorf("server.autoscale.workers = %d; want 3", got)
	}
}

// TestResizedPoolUnderLoadAndDrain is the -race pass over the moving
// pool: an aggressive autoscaler resizes between 1 and 4 workers while
// concurrent solves stream through, then a drain lands mid-traffic.
// Every admitted request must still resolve exactly once.
func TestResizedPoolUnderLoadAndDrain(t *testing.T) {
	rec := telemetry.NewFlightRecorder(256)
	s, ts := newTestServer(t, Config{
		WorkersMin:    1,
		WorkersMax:    4,
		ScaleInterval: 5 * time.Millisecond,
		ScaleUpP90:    time.Nanosecond, // any admission trips the grow rule
		ScaleIdle:     15 * time.Millisecond,
		ScaleCooldown: time.Millisecond,
		QueueDepth:    256,
		Recorder:      rec,
	})

	const n = 24
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _ := postJSON(t, ts.URL+"/v1/solve",
				fmt.Sprintf(`{"synthetic": 6, "seed": %d, "method": "pg", "no_cache": true}`, i%5+1))
			codes[i] = status
		}(i)
		if i%6 == 5 {
			time.Sleep(5 * time.Millisecond) // keep load arriving across several scale decisions
		}
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("request %d: status %d; want 200", i, code)
		}
	}
	if s.scaleGrows.Value() == 0 {
		t.Error("aggressive autoscaler never grew the pool under load")
	}
	if got := s.Workers(); got < 1 || got > 4 {
		t.Errorf("Workers() = %d; want within [1, 4]", got)
	}

	// Drain with traffic still arriving: the pool (whatever its size)
	// must finish admitted work and stop; late requests get 503.
	var late sync.WaitGroup
	for i := 0; i < 4; i++ {
		late.Add(1)
		go func(i int) {
			defer late.Done()
			postJSON(t, ts.URL+"/v1/solve",
				fmt.Sprintf(`{"synthetic": 6, "seed": %d, "method": "pg", "no_cache": true}`, i+40))
		}(i)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain during resize traffic: %v", err)
	}
	late.Wait()
	if got := s.Workers(); got != 0 {
		t.Errorf("Workers() = %d after drain; want 0", got)
	}

	// The flight recorder saw the pool's scale events.
	sawScale := false
	for _, ev := range rec.Events() {
		if ev.Ev == "scale" {
			sawScale = true
			if ev.Workers < 1 || ev.Workers > 4 {
				t.Errorf("scale event outside bounds: %+v", ev)
			}
			if ev.Reason == "" {
				t.Errorf("scale event with no reason: %+v", ev)
			}
		}
	}
	if !sawScale {
		t.Error("flight recorder captured no scale events")
	}
}
