package server

import (
	"context"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// bootSpilled builds a server over a spill directory and a test
// listener, returning both plus a shutdown function that drains and
// closes the cache — the full restart choreography, callable mid-test.
func bootSpilled(t *testing.T, dir string) (*Server, *httptest.Server, func()) {
	t.Helper()
	s, err := New(Config{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatalf("New with CacheDir: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts, func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		if err := s.CloseCache(); err != nil {
			t.Fatalf("CloseCache: %v", err)
		}
	}
}

// TestCacheRestartWarm is the tentpole's unit-level proof: a daemon
// restarted over the same -cache-dir answers a previously-solved
// fingerprint as a cache hit, with the identical solution.
func TestCacheRestartWarm(t *testing.T) {
	dir := t.TempDir()
	body := `{"synthetic": 6, "method": "hastar", "seed": 3}`

	s1, ts1, shutdown1 := bootSpilled(t, dir)
	status, first := postJSON(t, ts1.URL+"/v1/solve", body)
	if status != 200 {
		t.Fatalf("first solve: status %d: %v", status, first)
	}
	if first["cached"] == true {
		t.Fatal("first solve reported cached on a cold cache")
	}
	if st := s1.CacheStats(); st.Spilled == 0 {
		t.Fatalf("nothing spilled after a cacheable solve: %+v", st)
	}
	shutdown1()

	s2, ts2, shutdown2 := bootSpilled(t, dir)
	defer shutdown2()
	if st := s2.CacheStats(); st.Replayed == 0 {
		t.Fatalf("restarted server replayed nothing: %+v", st)
	}
	status, second := postJSON(t, ts2.URL+"/v1/solve", body)
	if status != 200 {
		t.Fatalf("replayed solve: status %d: %v", status, second)
	}
	if second["cached"] != true {
		t.Errorf("replayed solve not served as a hit: %v", second)
	}
	for _, field := range []string{"cost", "avg_cost"} {
		if first[field] != second[field] {
			t.Errorf("%s changed across restart: %v -> %v", field, first[field], second[field])
		}
	}
	if second["groups"] == nil || second["machines"] == nil {
		t.Error("replayed response lost its assignment")
	}
	if st := s2.CacheStats(); st.Hits == 0 {
		t.Errorf("cache Stats recorded no hit: %+v", st)
	}
}

// TestCacheStatsOneOutcomePerRequest pins the Get/Do contract at the
// server level: N requests produce exactly N outcomes in the solution
// cache's Stats — no Get probes, no double counting.
func TestCacheStatsOneOutcomePerRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	body := `{"synthetic": 6, "method": "hastar"}`
	const requests = 5
	for i := 0; i < requests; i++ {
		if status, resp := postJSON(t, ts.URL+"/v1/solve", body); status != 200 {
			t.Fatalf("solve %d: status %d: %v", i, status, resp)
		}
	}
	st := s.CacheStats()
	if got := st.Hits + st.Misses + st.Shared; got != requests {
		t.Errorf("cache outcomes sum to %d for %d requests; want exactly %d", got, requests, requests)
	}
	if st.Misses != 1 || st.Hits != requests-1 {
		t.Errorf("Stats = %+v; want 1 miss then %d hits", st, requests-1)
	}
}

// TestOraclePoolSharesInstances checks that repeated requests for one
// instance fingerprint hit the oracle pool instead of rebuilding the
// memoized oracle, and that distinct fingerprints stay separate.
func TestOraclePoolSharesInstances(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	// NoCache bypasses the solution cache, so every request reaches the
	// solver — but the pool should still dedupe the instance build.
	body := `{"synthetic": 6, "method": "hastar", "no_cache": true}`
	for i := 0; i < 3; i++ {
		if status, resp := postJSON(t, ts.URL+"/v1/solve", body); status != 200 {
			t.Fatalf("solve %d: status %d: %v", i, status, resp)
		}
	}
	if got := s.oraclePMisses.Value(); got != 1 {
		t.Errorf("oracle pool misses = %d for one fingerprint; want 1", got)
	}
	if got := s.oraclePHits.Value(); got != 2 {
		t.Errorf("oracle pool hits = %d; want 2", got)
	}
	other := `{"synthetic": 7, "method": "hastar", "no_cache": true}`
	if status, resp := postJSON(t, ts.URL+"/v1/solve", other); status != 200 {
		t.Fatalf("other solve: status %d: %v", status, resp)
	}
	if got := s.oraclePMisses.Value(); got != 2 {
		t.Errorf("oracle pool misses = %d after a second fingerprint; want 2", got)
	}
}

// TestCacheBytesMetricBounded drives enough distinct solves through a
// tightly byte-bounded cache to force evictions and checks the
// acceptance criterion: Stats.Bytes stays at or under the budget.
func TestCacheBytesMetricBounded(t *testing.T) {
	// A sub-threshold entry capacity keeps the cache on one shard, so
	// the whole byte budget is one pool and the eviction pressure of
	// the seed loop is deterministic.
	const budget = 2048
	s, ts := newTestServer(t, Config{Workers: 2, CacheEntries: 32, CacheBytes: budget})
	for seed := 1; seed <= 24; seed++ {
		status, resp := postJSON(t, ts.URL+"/v1/solve",
			`{"synthetic": 6, "method": "hastar", "seed": `+strconv.Itoa(seed)+`}`)
		if status != 200 {
			t.Fatalf("seed %d: status %d: %v", seed, status, resp)
		}
		if st := s.CacheStats(); st.Bytes > budget {
			t.Fatalf("seed %d: cache Bytes %d exceeds budget %d", seed, st.Bytes, budget)
		}
	}
	st := s.CacheStats()
	if st.Evictions == 0 {
		t.Errorf("no evictions under a %d-byte budget: %+v (test too loose?)", budget, st)
	}
	if st.Bytes == 0 {
		t.Error("Bytes = 0 after cacheable solves; byte accounting is dead")
	}
}
