package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
)

// reqRecord is one completed request as retained by the /debug/requests
// ring: identity, route, outcome, and the phase breakdown.
type reqRecord struct {
	atMS        float64 // request start, ms since server epoch
	id          string
	route       string
	cache       string
	abort       string
	fp          string
	status      int
	parallelism int
	items       int
	queueMS     float64
	solveMS     float64
	encodeMS    float64
	totalMS     float64
	solveID     uint64
	degraded    bool
}

// reqSlot pads a record with its seqlock word. Writers bump seq to odd,
// write, bump to even; readers that see an odd or changed seq skip the
// slot instead of blocking (same idiom as telemetry.FlightRecorder).
type reqSlot struct {
	seq atomic.Uint64
	rec reqRecord
}

// requestRing retains the last N completed requests without locks: one
// atomic fetch-add claims a slot, the seqlock word keeps readers from
// observing torn writes. put never blocks and never allocates beyond
// the strings already held by the caller, so enabling the ring does not
// perturb request latency.
type requestRing struct {
	slots []reqSlot
	head  atomic.Uint64 // total puts; next slot = head % len
}

// newRequestRing returns a ring retaining n requests (n must be > 0).
func newRequestRing(n int) *requestRing {
	return &requestRing{slots: make([]reqSlot, n)}
}

// put records one completed request, overwriting the oldest.
func (rr *requestRing) put(rec reqRecord) {
	pos := rr.head.Add(1) - 1
	slot := &rr.slots[pos%uint64(len(rr.slots))]
	slot.seq.Store(2*pos + 1) // odd: write in progress
	slot.rec = rec
	slot.seq.Store(2 * (pos + 1)) // even: published
}

// snapshot returns the retained requests ordered oldest-first, skipping
// slots a concurrent writer had in flight.
func (rr *requestRing) snapshot() []reqRecord {
	head := rr.head.Load()
	n := uint64(len(rr.slots))
	start := uint64(0)
	if head > n {
		start = head - n
	}
	out := make([]reqRecord, 0, head-start)
	for pos := start; pos < head; pos++ {
		slot := &rr.slots[pos%n]
		for range 4 {
			seq := slot.seq.Load()
			if seq != 2*(pos+1) {
				break // torn, overwritten, or still writing: skip
			}
			rec := slot.rec
			if slot.seq.Load() == seq {
				out = append(out, rec)
				break
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].atMS < out[j].atMS })
	return out
}

// handler serves the ring as a human-readable table (the /debug/requests
// endpoint): one row per retained request, oldest first, with the full
// phase breakdown.
func (rr *requestRing) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		recs := rr.snapshot()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "=== recent requests: %d retained (ring %d) ===\n", len(recs), len(rr.slots))
		if len(recs) == 0 {
			return
		}
		fmt.Fprintf(w, "%10s  %-24s  %-15s  %3s  %9s  %9s  %9s  %9s  %-6s  %-3s  %4s  %-12s  %8s  %s\n",
			"t_ms", "req_id", "route", "st", "queue_ms", "solve_ms", "enc_ms", "total_ms",
			"cache", "deg", "par", "fp", "solve_id", "abort")
		for _, rec := range recs {
			deg := ""
			if rec.degraded {
				deg = "yes"
			}
			fmt.Fprintf(w, "%10.1f  %-24s  %-15s  %3d  %9.2f  %9.2f  %9.2f  %9.2f  %-6s  %-3s  %4d  %-12s  %8d  %s\n",
				rec.atMS, rec.id, rec.route, rec.status,
				rec.queueMS, rec.solveMS, rec.encodeMS, rec.totalMS,
				rec.cache, deg, rec.parallelism, rec.fp, rec.solveID, rec.abort)
		}
	}
}
