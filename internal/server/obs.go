package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"cosched/internal/telemetry"
)

// RequestIDHeader is the header the daemon reads an inbound request
// identity from and echoes the effective identity back on. A fleet
// client (or a curious curl) sets it to stitch one logical request
// across hops; absent or unusable values get a generated ID.
const RequestIDHeader = "X-Request-ID"

// reqIDPrefix makes generated IDs distinguishable across daemon
// restarts and replicas: four random bytes fixed at process start.
var reqIDPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degrade to a constant prefix; the per-process counter still
		// makes IDs unique within the run.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

// reqIDSeq numbers generated request IDs within the process.
var reqIDSeq atomic.Uint64

// newRequestID returns a fresh request identity:
// "<process-prefix>-<sequence>", e.g. "9f1c02ab-00002a".
func newRequestID() string {
	return fmt.Sprintf("%s-%06x", reqIDPrefix, reqIDSeq.Add(1))
}

// newReplicaID generates a boot-stable fleet identity for a daemon
// whose operator did not name it: "r-<4 hex>".
func newReplicaID() string {
	var b [2]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r-0000"
	}
	return "r-" + hex.EncodeToString(b[:])
}

// maxInboundIDLen bounds accepted X-Request-ID values so a hostile
// client cannot make every log line megabytes long.
const maxInboundIDLen = 128

// inboundRequestID returns the request's effective ID: the caller's
// X-Request-ID when it is non-empty, printable ASCII and within length
// bounds, a generated one otherwise.
func inboundRequestID(r *http.Request) string {
	id := r.Header.Get(RequestIDHeader)
	if id == "" || len(id) > maxInboundIDLen {
		return newRequestID()
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return newRequestID()
		}
	}
	return id
}

// reqIDCtxKey keys the request ID in a context.
type reqIDCtxKey struct{}

// WithRequestID returns ctx carrying the request ID, the form handlers
// pass down through admission → queue → solve so deeper layers can
// stamp it into their own diagnostics.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDCtxKey{}, id)
}

// RequestIDFromContext returns the request ID carried by ctx ("" when
// the context is not part of an observed request).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(reqIDCtxKey{}).(string)
	return id
}

// reqInfo is one observed request's accumulated facts: the middleware
// fills identity/route/status/timing, the handler fills the solve-side
// fields it learns from its task.
type reqInfo struct {
	id          string
	route       string
	status      int
	queueMS     float64
	solveMS     float64
	encodeMS    float64
	cache       string // hit|shared|miss|bypass, "" when no solve ran
	degraded    bool
	abort       string
	parallelism int
	fp          string // fingerprint prefix, "" when not computed
	solveID     uint64
	items       int // batch requests: item count
}

// fromTask copies the solve-side facts a finished task learned into the
// request record.
func (info *reqInfo) fromTask(t *task) {
	info.queueMS = t.queueMS
	info.solveMS = t.solveMS
	info.cache = t.cacheOutcome
	info.degraded = t.degraded
	info.abort = t.abortReason
	info.parallelism = t.parallelism
	info.fp = t.fpPrefix
	info.solveID = t.solveID
}

// statusWriter captures the status code a handler wrote (200 when the
// handler only ever called Write).
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the first explicit status.
func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write defaults the status to 200 like net/http does.
func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// code returns the effective status (200 when nothing was written).
func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// routeMetrics is one endpoint's RED family: request counts split by
// status class, an error counter (5xx), and a latency histogram. All
// handles are resolved at server construction, so the request path is
// atomic adds only.
type routeMetrics struct {
	total    *telemetry.Counter
	byClass  [6]*telemetry.Counter // index status/100; 0 unused
	errors   *telemetry.Counter
	duration *telemetry.Histogram
}

// httpDurationBoundsMS buckets request round-trip times: sub-millisecond
// cache hits through multi-second deadline-bounded solves.
var httpDurationBoundsMS = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// newRouteMetrics registers an endpoint's RED series under
// server.http.{requests,errors,duration_ms}.<route>[.<class>].
func newRouteMetrics(r *telemetry.Registry, route string) *routeMetrics {
	rm := &routeMetrics{
		total:    r.Counter("server.http.requests." + route),
		errors:   r.Counter("server.http.errors." + route),
		duration: r.Histogram("server.http.duration_ms."+route, httpDurationBoundsMS),
	}
	for c := 1; c <= 5; c++ {
		rm.byClass[c] = r.Counter(fmt.Sprintf("server.http.requests.%s.%dxx", route, c))
	}
	return rm
}

// observe records one response on the endpoint's RED series.
func (rm *routeMetrics) observe(status int, totalMS float64) {
	rm.total.Add(1)
	if c := status / 100; c >= 1 && c <= 5 {
		rm.byClass[c].Add(1)
	}
	if status >= 500 {
		rm.errors.Add(1)
	}
	rm.duration.Observe(totalMS)
}

// observe wraps a handler with the request-scoped observability layer:
// request-ID assignment and echo, the in-flight gauge, RED metrics, and
// — for solve routes (full) — SLO accounting, the request ring, a
// "request" trace event, and the access log. The handler receives the
// reqInfo to fill with what it learns from its task.
func (s *Server) observe(route string, full bool, h func(http.ResponseWriter, *http.Request, *reqInfo)) http.HandlerFunc {
	rm := s.routes[route]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		info := &reqInfo{route: route, id: inboundRequestID(r)}
		w.Header().Set(RequestIDHeader, info.id)
		s.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(WithRequestID(r.Context(), info.id)), info)
		s.inflight.Add(-1)
		info.status = sw.code()
		totalMS := float64(time.Since(start)) / float64(time.Millisecond)
		if rm != nil {
			rm.observe(info.status, totalMS)
		}
		if !full {
			return
		}
		s.sloAvail.Record(info.status < http.StatusInternalServerError)
		if info.status == http.StatusOK {
			s.sloLatency.Record(totalMS <= s.sloLatencyMS)
		}
		if s.ring != nil {
			s.ring.put(reqRecord{
				atMS:        float64(start.Sub(s.epoch)) / float64(time.Millisecond),
				id:          info.id,
				route:       route,
				status:      info.status,
				queueMS:     info.queueMS,
				solveMS:     info.solveMS,
				encodeMS:    info.encodeMS,
				totalMS:     totalMS,
				cache:       info.cache,
				degraded:    info.degraded,
				abort:       info.abort,
				parallelism: info.parallelism,
				fp:          info.fp,
				solveID:     info.solveID,
				items:       info.items,
			})
		}
		if s.cfg.Recorder != nil {
			s.cfg.Recorder.Emit(telemetry.Event{ //nolint:errcheck // ring emit cannot fail
				Ev:       "request",
				Replica:  s.cfg.ReplicaID,
				TMS:      float64(start.Sub(s.epoch)) / float64(time.Millisecond),
				SolveID:  info.solveID,
				ReqID:    info.id,
				Route:    route,
				Status:   info.status,
				QueueMS:  info.queueMS,
				SolveMS:  info.solveMS,
				EncodeMS: info.encodeMS,
				TotalMS:  totalMS,
				Cache:    info.cache,
				Degraded: info.degraded,
				Reason:   info.abort,
			})
		}
		s.logAccess(info, totalMS)
	}
}

// logAccess emits the request's structured access-log line: one JSON
// object per request with the full phase breakdown. With AccessLogSlow
// set, fast successful requests are skipped — only requests at or above
// the threshold, or with status >= 400, are logged.
func (s *Server) logAccess(info *reqInfo, totalMS float64) {
	log := s.cfg.AccessLog
	if log == nil {
		return
	}
	if slow := s.cfg.AccessLogSlow; slow > 0 &&
		totalMS < float64(slow)/float64(time.Millisecond) &&
		info.status < http.StatusBadRequest {
		return
	}
	level := slog.LevelInfo
	if info.status >= http.StatusInternalServerError {
		level = slog.LevelWarn
	}
	attrs := []slog.Attr{
		slog.String("req_id", info.id),
		slog.String("replica", s.cfg.ReplicaID),
		slog.String("route", info.route),
		slog.Int("status", info.status),
		slog.Float64("queue_ms", info.queueMS),
		slog.Float64("solve_ms", info.solveMS),
		slog.Float64("encode_ms", info.encodeMS),
		slog.Float64("total_ms", totalMS),
		slog.String("cache", info.cache),
		slog.Bool("degraded", info.degraded),
		slog.String("abort", info.abort),
		slog.Int("parallelism", info.parallelism),
		slog.String("fp", info.fp),
		slog.Uint64("solve_id", info.solveID),
	}
	if info.items > 0 {
		attrs = append(attrs, slog.Int("items", info.items))
	}
	log.LogAttrs(context.Background(), level, "request", attrs...)
}
