package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosched/internal/telemetry"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort cleanup
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: bad response JSON: %v", url, err)
	}
	return resp.StatusCode, out
}

const specBody = `{"spec": {"machine": "quad", "jobs": [
	{"kind": "serial", "program": "BT"},
	{"kind": "serial", "program": "LU"},
	{"kind": "serial", "program": "MG"},
	{"kind": "serial", "program": "CG"}
]}, "method": "oastar"}`

func TestSolveServedFromCacheOnRepeat(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	status, first := postJSON(t, ts.URL+"/v1/solve", specBody)
	if status != http.StatusOK {
		t.Fatalf("first solve: status %d: %v", status, first)
	}
	if first["cached"] != false {
		t.Errorf("first solve cached = %v; want false", first["cached"])
	}
	if first["degraded"] != false {
		t.Errorf("first solve degraded = %v; want false", first["degraded"])
	}

	status, second := postJSON(t, ts.URL+"/v1/solve", specBody)
	if status != http.StatusOK {
		t.Fatalf("second solve: status %d: %v", status, second)
	}
	if second["cached"] != true {
		t.Errorf("second identical solve cached = %v; want true", second["cached"])
	}
	if second["cost"] != first["cost"] {
		t.Errorf("cached cost %v != computed cost %v", second["cost"], first["cost"])
	}
	if got := s.solves.Value(); got != 1 {
		t.Errorf("server.solves = %d after identical repeat; want 1 (second served from cache)", got)
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("CacheStats = %+v; want Hits 1, Misses 1", st)
	}

	// The robust ladder answers the same workload under a different
	// cache tag: it must not alias the single-method entry.
	status, robust := postJSON(t, ts.URL+"/v1/solve-robust", specBody)
	if status != http.StatusOK {
		t.Fatalf("robust solve: status %d: %v", status, robust)
	}
	if robust["cached"] != false {
		t.Errorf("robust solve cached = %v; want false (distinct key)", robust["cached"])
	}
	if robust["method"] != "robust" {
		t.Errorf("robust method = %v; want robust", robust["method"])
	}
	if fb, ok := robust["fallbacks"].([]any); !ok || len(fb) == 0 {
		t.Errorf("robust response has no fallbacks: %v", robust["fallbacks"])
	}
}

func TestNoCacheBypassesSolutionCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	body := `{"synthetic": 6, "seed": 3, "method": "pg", "no_cache": true}`
	for i := 0; i < 2; i++ {
		status, resp := postJSON(t, ts.URL+"/v1/solve", body)
		if status != http.StatusOK {
			t.Fatalf("solve #%d: status %d: %v", i, status, resp)
		}
		if resp["cached"] != false {
			t.Errorf("no_cache solve #%d cached = %v; want false", i, resp["cached"])
		}
	}
	if got := s.solves.Value(); got != 2 {
		t.Errorf("server.solves = %d with no_cache; want 2", got)
	}
}

func TestBatchAnswersPositionally(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"requests": [
		{"synthetic": 6, "seed": 2, "method": "hastar"},
		{"synthetic": 4, "seed": 2, "method": "nonsense"},
		{"synthetic": 6, "seed": 2, "method": "hastar"}
	]}`
	status, out := postJSON(t, ts.URL+"/v1/batch", body)
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %v", status, out)
	}
	items, ok := out["items"].([]any)
	if !ok || len(items) != 3 {
		t.Fatalf("batch items = %v; want 3", out["items"])
	}
	first := items[0].(map[string]any)
	if first["status"] != float64(http.StatusOK) || first["response"] == nil {
		t.Errorf("item 0 = %v; want 200 with response", first)
	}
	second := items[1].(map[string]any)
	if second["status"] != float64(http.StatusBadRequest) || second["error"] == nil {
		t.Errorf("item 1 = %v; want 400 with error", second)
	}
	third := items[2].(map[string]any)
	if third["status"] != float64(http.StatusOK) {
		t.Fatalf("item 2 = %v; want 200", third)
	}
	// Items 0 and 2 are identical: whichever solved first, the other
	// either shared its flight or hit the cache.
	r0 := first["response"].(map[string]any)
	r2 := third["response"].(map[string]any)
	if r0["cost"] != r2["cost"] {
		t.Errorf("identical batch items disagree on cost: %v vs %v", r0["cost"], r2["cost"])
	}
	if !(r2["cached"] == true || r2["shared"] == true || r0["cached"] == true || r0["shared"] == true) {
		t.Errorf("neither identical batch item was cache- or flight-served: %v / %v", r0, r2)
	}
}

// parkWorker sends a long OA* solve (bounded by deadline_ms) and waits
// until the single worker has popped it off the queue.
func parkWorker(t *testing.T, s *Server, ts *httptest.Server, deadlineMS int) chan int {
	t.Helper()
	done := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts.URL+"/v1/solve",
			fmt.Sprintf(`{"synthetic": 26, "method": "oastar", "deadline_ms": %d, "no_cache": true}`, deadlineMS))
		done <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.admitted.Value() >= 1 && len(s.queue) == 0 {
			return done
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the parking solve")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueueFullAndQueuedDeadlineExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Park the only worker for ~1.5s: a 26-job exact OA* cannot finish
	// inside that deadline, so the solve runs until the context expires
	// and returns a degraded answer.
	parked := parkWorker(t, s, ts, 1500)

	// Fill the queue's single slot with a request that will sit behind
	// the parked solve until long after its own deadline.
	queuedDone := make(chan struct {
		status int
		body   map[string]any
	}, 1)
	go func() {
		status, body := postJSON(t, ts.URL+"/v1/solve",
			`{"synthetic": 4, "method": "pg", "deadline_ms": 100, "no_cache": true}`)
		queuedDone <- struct {
			status int
			body   map[string]any
		}{status, body}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the next request must be rejected immediately.
	status, body := postJSON(t, ts.URL+"/v1/solve", `{"synthetic": 4, "method": "pg"}`)
	if status != http.StatusTooManyRequests {
		t.Errorf("overflow request: status %d (%v); want 429", status, body)
	}
	if s.rejectedQueue.Value() == 0 {
		t.Error("server.rejected.queue_full not incremented")
	}

	if parkedStatus := <-parked; parkedStatus != http.StatusOK {
		t.Errorf("parked solve: status %d; want 200 (degraded answer)", parkedStatus)
	}
	queued := <-queuedDone
	if queued.status != http.StatusGatewayTimeout {
		t.Errorf("queued request: status %d (%v); want 504 after its deadline expired in queue", queued.status, queued.body)
	}
	if s.rejectedDL.Value() == 0 {
		t.Error("server.rejected.deadline not incremented")
	}
}

func TestDrainRejectsNewWorkAndFinishesOldWork(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	parked := parkWorker(t, s, ts, 800)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		d := s.draining
		s.mu.Unlock()
		if d {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}

	status, _ := postJSON(t, ts.URL+"/v1/solve", `{"synthetic": 4, "method": "pg"}`)
	if status != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d; want 503", status)
	}
	if parkedStatus := <-parked; parkedStatus != http.StatusOK {
		t.Errorf("in-flight solve during drain: status %d; want 200", parkedStatus)
	}
	if err := <-drained; err != nil {
		t.Errorf("Drain: %v", err)
	}
}

func TestHealthzAndMetricsExposition(t *testing.T) {
	reg := telemetry.New()
	_, ts := newTestServer(t, Config{Workers: 1, Metrics: reg, Recorder: telemetry.NewFlightRecorder(256)})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d; want 200", resp.StatusCode)
	}

	for i := 0; i < 2; i++ {
		if status, out := postJSON(t, ts.URL+"/v1/solve", `{"synthetic": 6, "seed": 5, "method": "pg"}`); status != http.StatusOK {
			t.Fatalf("solve #%d: status %d: %v", i, status, out)
		}
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()       //nolint:errcheck
	for _, want := range []string{"cosched_server_admitted 2", "cosched_server_solves 1", "cosched_server_cache_hits 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestTraceReturnsEventStreamOnMiss(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	status, out := postJSON(t, ts.URL+"/v1/solve", `{"synthetic": 6, "seed": 9, "method": "hastar", "trace": true}`)
	if status != http.StatusOK {
		t.Fatalf("trace solve: status %d: %v", status, out)
	}
	trace, _ := out["trace_jsonl"].(string)
	if !strings.Contains(trace, `"solve_start"`) {
		t.Errorf("trace_jsonl missing solve_start event; got %.120q", trace)
	}
}

func TestBadRequestsAreRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"no workload":    `{"method": "pg"}`,
		"bad method":     `{"synthetic": 4, "method": "quantum"}`,
		"bad machine":    `{"synthetic": 4, "machine": "mainframe"}`,
		"bad accounting": `{"synthetic": 4, "accounting": "xx"}`,
		"not json":       `{{{`,
	} {
		status, out := postJSON(t, ts.URL+"/v1/solve", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v); want 400", name, status, out)
		}
	}
}
