package server

import (
	"fmt"
	"math"
	"time"

	"cosched/internal/telemetry"
)

// Autoscaler defaults: one decision every second, grow when the recent
// p90 queue delay exceeds 25ms, shrink a worker after 5s with no
// admissions and an empty queue, and never two scale events within 2s
// of each other.
const (
	defaultScaleInterval = time.Second
	defaultScaleUpP90MS  = 25.0
	defaultScaleIdle     = 5 * time.Second
	defaultScaleCooldown = 2 * time.Second
)

// autoscaler decides when the worker pool grows or shrinks. It is
// deliberately decoupled from Server: every input (clock, queue-delay
// window, queue length, current size) and output (grow, shrink) is a
// closure, so unit tests drive tick with a fake clock and synthetic
// load, and the production wiring in New supplies the real ones.
//
// Policy: each tick differences the cumulative queue-delay histogram
// against the previous tick's snapshot, giving the delay distribution
// of just that window. If the windowed p90 exceeds upP90MS, the pool
// grows by one worker. If the window admitted nothing and the queue is
// empty for idle or longer, the pool shrinks by one. A cooldown after
// every scale event and the sustained-idle requirement on the shrink
// side give the loop hysteresis: oscillating load inside one cooldown
// period cannot flap the pool.
type autoscaler struct {
	min, max int
	upP90MS  float64       // grow threshold on the windowed p90 queue delay
	idle     time.Duration // shrink after this long with no work
	cooldown time.Duration // minimum gap between scale events

	now      func() time.Time
	delay    *telemetry.Histogram // cumulative queue-delay histogram (ms)
	queueLen func() int
	workers  func() int
	grow     func(reason string) bool
	shrink   func(reason string) bool

	prevCounts []int64
	lastActive time.Time
	coolUntil  time.Time

	p90Gauge *telemetry.FloatGauge // last window's p90, for /metrics
}

// tick makes one scaling decision. It returns the action taken ("grow",
// "shrink" or "") so tests can assert on decisions directly.
func (a *autoscaler) tick() string {
	now := a.now()
	bounds, counts := a.delay.Buckets()
	window := make([]int64, len(counts))
	var admitted int64
	for i, c := range counts {
		if a.prevCounts != nil {
			window[i] = c - a.prevCounts[i]
		} else {
			window[i] = c
		}
		admitted += window[i]
	}
	a.prevCounts = counts

	p90 := telemetry.QuantileFromCounts(bounds, window, 0.9)
	if a.p90Gauge != nil {
		if admitted == 0 {
			a.p90Gauge.Set(0)
		} else {
			a.p90Gauge.Set(p90)
		}
	}
	if admitted > 0 || a.queueLen() > 0 {
		a.lastActive = now
	}
	if now.Before(a.coolUntil) {
		return ""
	}
	if admitted > 0 && p90 > a.upP90MS && a.workers() < a.max {
		if a.grow(fmt.Sprintf("queue_delay_p90=%sms>%sms", fmtMS(p90), fmtMS(a.upP90MS))) {
			a.coolUntil = now.Add(a.cooldown)
			return "grow"
		}
		return ""
	}
	if idleFor := now.Sub(a.lastActive); idleFor >= a.idle && a.workers() > a.min {
		if a.shrink(fmt.Sprintf("idle=%v", idleFor.Round(time.Millisecond))) {
			a.coolUntil = now.Add(a.cooldown)
			return "shrink"
		}
	}
	return ""
}

// fmtMS renders a millisecond value compactly for scale-event reasons
// (the p90 can be +Inf when the window's tail landed past every bucket).
func fmtMS(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%g", v)
}

// autoscaleLoop runs the production ticker until Drain stops it.
func (s *Server) autoscaleLoop() {
	defer s.scaleDone.Done()
	ticker := time.NewTicker(s.cfg.ScaleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.scaler.tick()
		case <-s.scaleStop:
			return
		}
	}
}

// addWorker grows the pool by one (respecting WorkersMax and drain) and
// reports whether it did.
func (s *Server) addWorker(reason string) bool {
	s.mu.Lock()
	if s.draining || len(s.workerQuit) >= s.cfg.WorkersMax {
		s.mu.Unlock()
		return false
	}
	quit := make(chan struct{})
	s.workerQuit = append(s.workerQuit, quit)
	n := len(s.workerQuit)
	s.workers.Add(1)
	s.mu.Unlock()
	go s.worker(quit)
	s.scaleGrows.Add(1)
	s.recordScale(n, reason)
	return true
}

// removeWorker shrinks the pool by one (respecting WorkersMin) and
// reports whether it did. The retired worker finishes the task it is
// on, if any, before exiting — shrink never abandons an admitted solve.
func (s *Server) removeWorker(reason string) bool {
	s.mu.Lock()
	if len(s.workerQuit) <= s.cfg.WorkersMin {
		s.mu.Unlock()
		return false
	}
	last := s.workerQuit[len(s.workerQuit)-1]
	s.workerQuit = s.workerQuit[:len(s.workerQuit)-1]
	n := len(s.workerQuit)
	s.mu.Unlock()
	close(last)
	s.scaleShrinks.Add(1)
	s.recordScale(n, reason)
	return true
}

// Workers returns the current worker-pool size.
func (s *Server) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.workerQuit)
}

// recordScale publishes a pool resize: the workers gauge and, when a
// recorder is attached, a "scale" trace event on the server timeline.
func (s *Server) recordScale(workers int, reason string) {
	s.scaleWorkers.Set(int64(workers))
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.Emit(telemetry.Event{ //nolint:errcheck // ring emit cannot fail
			Ev:      "scale",
			TMS:     float64(time.Since(s.epoch)) / float64(time.Millisecond),
			Workers: workers,
			Reason:  reason,
		})
	}
}
