// Package server implements the coschedd serving daemon: an HTTP/JSON
// API over the cosched solver with a bounded, autoscaling worker pool
// (grown on queue-delay pressure, shrunk after sustained idleness,
// fixed when WorkersMin == WorkersMax), an admission queue that
// propagates per-request deadlines into SolveContext, a
// fingerprint-keyed solved-schedule cache (internal/solvecache;
// byte-bounded, optionally spilled to disk and restart-warm), a
// fingerprint-keyed oracle pool that shares built instances' memoized
// degradation oracles across identical workloads, and graceful drain.
//
// Endpoints:
//
//	POST /v1/solve        — schedule one workload with one method
//	POST /v1/solve-robust — same, through the SolveRobust fallback ladder
//	POST /v1/batch        — a list of solve requests answered together
//	GET  /healthz         — liveness and drain state (503 once draining)
//	GET  /debug/requests  — recent-requests ring with phase breakdowns
//
// plus the telemetry surface (/metrics, /debug/vars, /debug/pprof,
// /debug/trace) from internal/telemetry.DebugMux. Request admission,
// queueing, solving and cache effectiveness are all measured into the
// server.* metric family (see DESIGN.md §6b).
//
// Every request carries an ID — accepted from X-Request-ID or generated
// at admission, echoed back on the response header and body — threaded
// by context through admission → queue → solve → encode, stamped into a
// "request" telemetry event (joinable to the solver's solve_id
// timeline), logged as one structured access-log line, and counted into
// per-route RED metrics and SLO burn rates (see obs.go).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cosched"
	"cosched/internal/solvecache"
	"cosched/internal/telemetry"
)

// Config sizes and wires a Server. The zero value is usable: it means
// two workers, a 64-deep queue, a 128-entry solution cache, a bounded
// oracle memo, no default or maximum deadline, and a private metrics
// registry.
type Config struct {
	// Workers is the number of solver goroutines (<= 0 means 2). Each
	// runs one solve at a time, so Workers bounds solver concurrency.
	// It seeds WorkersMin/WorkersMax when those are unset, which keeps
	// the pool fixed — the pre-autoscaler behaviour.
	Workers int
	// WorkersMin and WorkersMax bound the autoscaled pool. Unset (<= 0)
	// they both default to Workers, i.e. a fixed pool; WorkersMax below
	// WorkersMin is raised to it. When WorkersMax > WorkersMin an
	// autoscaler goroutine resizes the pool between the two: it grows on
	// queue-delay pressure and shrinks after sustained idleness (see
	// the autoscaler type and the Scale* knobs below).
	WorkersMin int
	WorkersMax int
	// ScaleInterval is how often the autoscaler decides (<= 0 means 1s).
	// Each decision looks at the queue-delay observations made since the
	// previous one.
	ScaleInterval time.Duration
	// ScaleUpP90 grows the pool when the decision window's p90 queue
	// delay exceeds it (<= 0 means 25ms).
	ScaleUpP90 time.Duration
	// ScaleIdle shrinks the pool one worker at a time after this long
	// with no admissions and an empty queue (<= 0 means 5s).
	ScaleIdle time.Duration
	// ScaleCooldown is the minimum gap between scale events (<= 0 means
	// 2s); together with ScaleIdle it is the hysteresis that stops the
	// pool flapping under oscillating load.
	ScaleCooldown time.Duration
	// QueueDepth bounds the admission queue (<= 0 means 64); a full
	// queue rejects with 429 rather than buffering unboundedly.
	QueueDepth int
	// CacheEntries bounds the solved-schedule cache's entry count (< 0
	// disables caching entirely, 0 means 128).
	CacheEntries int
	// CacheBytes bounds the solved-schedule cache's resident bytes —
	// each entry charged its key plus Solution.SizeBytes — so a cache
	// of 64-job schedules and one of 4-job schedules mean the same
	// memory (< 0 means entry-bound only, 0 means 64 MiB).
	CacheBytes int64
	// CacheDir, when non-empty, persists the solution cache to a
	// write-behind segment log under this directory and pre-warms the
	// cache from it at construction, so a restarted daemon answers
	// previously-solved fingerprints as hits (see solvecache's spill
	// documentation for the format and crash semantics).
	CacheDir string
	// OracleCacheEntries bounds each built instance's memoized
	// degradation oracle (<= 0 means 1<<16 entries per query cache).
	OracleCacheEntries int
	// OraclePoolEntries bounds the fingerprint-keyed oracle pool, which
	// shares one built instance — and so one memoized oracle — across
	// requests with identical instance fingerprints instead of
	// rebuilding SDC/pairwise memo tables per request (< 0 disables the
	// pool, 0 means 64 instances).
	OraclePoolEntries int
	// DefaultDeadline applies to requests that set no deadline_ms
	// (0 means no deadline). MaxDeadline caps every request's deadline
	// (0 means uncapped).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// SolveParallelism is the expansion-worker count applied to requests
	// that set no parallelism of their own (<= 0 means 1, the exact
	// sequential path — a daemon already runs Workers solves
	// concurrently, so per-solve parallelism is opt-in).
	SolveParallelism int
	// Metrics receives the server.* metric family (nil means a private
	// registry; pass telemetry.Default to share the process registry).
	Metrics *telemetry.Registry
	// Recorder, when non-nil, receives every solve's event stream and is
	// exposed under /debug/trace.
	Recorder *telemetry.FlightRecorder
	// AccessLog, when non-nil, receives one structured line per observed
	// request with the full phase breakdown (cmd/coschedd wires a JSON
	// handler here; see logAccess in obs.go for the field set).
	AccessLog *slog.Logger
	// AccessLogSlow gates the access log: when > 0 only requests that
	// took at least this long, or ended with status >= 400, are logged
	// (0 logs every request).
	AccessLogSlow time.Duration
	// RequestRing sizes the /debug/requests recent-requests ring
	// (< 0 disables it, 0 means 256 retained requests).
	RequestRing int
	// SLOLatency is the latency objective behind server.slo.latency: a
	// 200 response is good when served within it (<= 0 means 500ms).
	SLOLatency time.Duration
	// SLOObjective is the target good fraction for both SLOs (0 means
	// 0.99); SLOFastWindow and SLOSlowWindow override the burn-rate
	// horizons (0 means 5m and 1h).
	SLOObjective  float64
	SLOFastWindow time.Duration
	SLOSlowWindow time.Duration
	// ReplicaID names this daemon within a fleet: it appears in
	// /healthz, in every access-log line and request trace event, so a
	// fleet client's telemetry can be joined to the replica that
	// answered. Empty means a boot-generated "r-<4 hex>" ID.
	ReplicaID string
	// RetryAfterQueueFull and RetryAfterDraining are the Retry-After
	// hints sent with 429 (admission queue full) and 503 (draining)
	// rejections (<= 0 mean 1s and 2s) — the server's own estimate of
	// when retrying is worth a client's time.
	RetryAfterQueueFull time.Duration
	RetryAfterDraining  time.Duration
}

// Server is the daemon's engine: handlers feed an admission queue that
// an autoscaled worker pool drains (fixed-size when WorkersMin ==
// WorkersMax). Construct with New, mount Handler, stop with Drain.
//
// The solution cache stores *solvecache.Solution values — the rendered
// answer plus its solve metadata, not the live *cosched.Schedule — so
// cached entries serialise to the spill log and survive a restart. Each
// request consults the cache through exactly one Do call (never a Get
// probe first), so the cache's Stats count one outcome per request; the
// oracle pool is a separate cache with its own server.oracle_pool.*
// counters and never touches the solution cache's Stats.
type Server struct {
	cfg        Config
	cache      *solvecache.Cache[*solvecache.Solution]
	oraclePool *solvecache.Cache[*cosched.Instance]
	queue      chan *task
	epoch      time.Time

	workers sync.WaitGroup
	pending sync.WaitGroup

	scaler    *autoscaler
	scaleStop chan struct{}
	scaleDone sync.WaitGroup

	mu         sync.Mutex
	draining   bool
	workerQuit []chan struct{} // one per live worker; closing the last retires it

	admitted      *telemetry.Counter
	solves        *telemetry.Counter
	rejectedQueue *telemetry.Counter
	rejectedDL    *telemetry.Counter
	rejectedDrain *telemetry.Counter
	rejectedGone  *telemetry.Counter
	cacheHits     *telemetry.Counter
	cacheMisses   *telemetry.Counter
	cacheShared   *telemetry.Counter
	cacheEvicts   *telemetry.Counter
	cacheBytes    *telemetry.Gauge
	cacheEntries  *telemetry.Gauge
	cacheRetries  *telemetry.Gauge
	cacheSpilled  *telemetry.Gauge
	cacheReplayed *telemetry.Counter
	cacheSkipped  *telemetry.Counter
	oraclePHits   *telemetry.Counter
	oraclePMisses *telemetry.Counter
	queueDelay    *telemetry.Histogram
	scaleWorkers  *telemetry.Gauge
	scaleGrows    *telemetry.Counter
	scaleShrinks  *telemetry.Counter
	scaleP90      *telemetry.FloatGauge

	// Request-scoped observability (obs.go / ring.go).
	inflight     *telemetry.Gauge
	routes       map[string]*routeMetrics
	sloAvail     *telemetry.SLO
	sloLatency   *telemetry.SLO
	sloLatencyMS float64
	ring         *requestRing
}

// queueDelayBoundsMS buckets the admission-to-pop delay: sub-millisecond
// pops on an idle pool through multi-second waits behind long solves.
var queueDelayBoundsMS = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000}

// New builds the server and starts its worker pool (WorkersMin workers;
// the autoscaler, when WorkersMax > WorkersMin, grows it from there).
// When CacheDir is set the solution cache is pre-warmed from its spill
// log before New returns; an unusable cache directory fails the boot.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.WorkersMin <= 0 {
		cfg.WorkersMin = cfg.Workers
	}
	if cfg.WorkersMax < cfg.WorkersMin {
		cfg.WorkersMax = cfg.WorkersMin
	}
	if cfg.ScaleInterval <= 0 {
		cfg.ScaleInterval = defaultScaleInterval
	}
	if cfg.ScaleUpP90 <= 0 {
		cfg.ScaleUpP90 = time.Duration(defaultScaleUpP90MS * float64(time.Millisecond))
	}
	if cfg.ScaleIdle <= 0 {
		cfg.ScaleIdle = defaultScaleIdle
	}
	if cfg.ScaleCooldown <= 0 {
		cfg.ScaleCooldown = defaultScaleCooldown
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 128
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.OracleCacheEntries <= 0 {
		cfg.OracleCacheEntries = 1 << 16
	}
	if cfg.OraclePoolEntries == 0 {
		cfg.OraclePoolEntries = 64
	}
	if cfg.RequestRing == 0 {
		cfg.RequestRing = 256
	}
	if cfg.SLOLatency <= 0 {
		cfg.SLOLatency = 500 * time.Millisecond
	}
	if cfg.ReplicaID == "" {
		cfg.ReplicaID = newReplicaID()
	}
	if cfg.RetryAfterQueueFull <= 0 {
		cfg.RetryAfterQueueFull = time.Second
	}
	if cfg.RetryAfterDraining <= 0 {
		cfg.RetryAfterDraining = 2 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.New()
	}
	r := cfg.Metrics
	s := &Server{
		cfg:           cfg,
		queue:         make(chan *task, cfg.QueueDepth),
		epoch:         time.Now(),
		admitted:      r.Counter("server.admitted"),
		solves:        r.Counter("server.solves"),
		rejectedQueue: r.Counter("server.rejected.queue_full"),
		rejectedDL:    r.Counter("server.rejected.deadline"),
		rejectedDrain: r.Counter("server.rejected.draining"),
		rejectedGone:  r.Counter("server.rejected.client_gone"),
		cacheHits:     r.Counter("server.cache.hits"),
		cacheMisses:   r.Counter("server.cache.misses"),
		cacheShared:   r.Counter("server.cache.shared"),
		cacheEvicts:   r.Counter("server.cache.evictions"),
		cacheBytes:    r.Gauge("server.cache.bytes"),
		cacheEntries:  r.Gauge("server.cache.entries"),
		cacheRetries:  r.Gauge("server.cache.retries"),
		cacheSpilled:  r.Gauge("server.cache.spilled"),
		cacheReplayed: r.Counter("server.cache.replayed"),
		cacheSkipped:  r.Counter("server.cache.replay_skipped"),
		oraclePHits:   r.Counter("server.oracle_pool.hits"),
		oraclePMisses: r.Counter("server.oracle_pool.misses"),
		queueDelay:    r.Histogram("server.queue_delay_ms", queueDelayBoundsMS),
		scaleWorkers:  r.Gauge("server.autoscale.workers"),
		scaleGrows:    r.Counter("server.autoscale.grow"),
		scaleShrinks:  r.Counter("server.autoscale.shrink"),
		scaleP90:      r.FloatGauge("server.autoscale.queue_p90_ms"),
	}
	s.inflight = r.Gauge("server.requests_inflight")
	s.routes = make(map[string]*routeMetrics)
	for _, route := range []string{"v1_solve", "v1_solve_robust", "v1_batch", "healthz"} {
		s.routes[route] = newRouteMetrics(r, route)
	}
	s.sloLatencyMS = float64(cfg.SLOLatency) / float64(time.Millisecond)
	s.sloAvail = telemetry.NewSLO(r, telemetry.SLOConfig{
		Name:       "server.slo.availability",
		Objective:  cfg.SLOObjective,
		FastWindow: cfg.SLOFastWindow,
		SlowWindow: cfg.SLOSlowWindow,
	})
	s.sloLatency = telemetry.NewSLO(r, telemetry.SLOConfig{
		Name:       "server.slo.latency",
		Objective:  cfg.SLOObjective,
		FastWindow: cfg.SLOFastWindow,
		SlowWindow: cfg.SLOSlowWindow,
	})
	if cfg.RequestRing > 0 {
		s.ring = newRequestRing(cfg.RequestRing)
	}
	if cfg.CacheEntries > 0 {
		ccfg := solvecache.Config[*solvecache.Solution]{
			Capacity: cfg.CacheEntries,
			SizeOf:   (*solvecache.Solution).SizeBytes,
			OnEvict: func(string) {
				s.cacheEvicts.Add(1)
				// s.cache is nil while spill replay runs inside
				// NewWithConfig; bound-driven replay evictions count
				// but have no cache to snapshot yet.
				if s.cache != nil {
					s.refreshCacheGauges()
					s.emitCacheEvent("evict", 1)
				}
			},
		}
		if cfg.CacheBytes > 0 {
			ccfg.MaxBytes = cfg.CacheBytes
		}
		if cfg.CacheDir != "" {
			ccfg.Spill = &solvecache.SpillConfig[*solvecache.Solution]{
				Dir:    cfg.CacheDir,
				Encode: (*solvecache.Solution).Encode,
				Decode: solvecache.DecodeSolution,
			}
		}
		cache, err := solvecache.NewWithConfig(ccfg)
		if err != nil {
			return nil, err
		}
		s.cache = cache
		if st := cache.Stats(); st.Replayed > 0 || st.ReplaySkipped > 0 {
			s.cacheReplayed.Add(st.Replayed)
			s.cacheSkipped.Add(st.ReplaySkipped)
			s.emitCacheEvent("replay", st.Replayed)
		}
		s.refreshCacheGauges()
	}
	if cfg.OraclePoolEntries > 0 {
		s.oraclePool = solvecache.New[*cosched.Instance](cfg.OraclePoolEntries, nil)
	}
	for i := 0; i < cfg.WorkersMin; i++ {
		quit := make(chan struct{})
		s.workerQuit = append(s.workerQuit, quit)
		s.workers.Add(1)
		go s.worker(quit)
	}
	s.scaleWorkers.Set(int64(cfg.WorkersMin))
	if cfg.WorkersMax > cfg.WorkersMin {
		s.scaler = &autoscaler{
			min:        cfg.WorkersMin,
			max:        cfg.WorkersMax,
			upP90MS:    float64(cfg.ScaleUpP90) / float64(time.Millisecond),
			idle:       cfg.ScaleIdle,
			cooldown:   cfg.ScaleCooldown,
			now:        time.Now,
			delay:      s.queueDelay,
			queueLen:   func() int { return len(s.queue) },
			workers:    s.Workers,
			grow:       s.addWorker,
			shrink:     s.removeWorker,
			lastActive: s.epoch,
			p90Gauge:   s.scaleP90,
		}
		s.scaleStop = make(chan struct{})
		s.scaleDone.Add(1)
		go s.autoscaleLoop()
	}
	return s, nil
}

// refreshCacheGauges snapshots the solution cache's O(1) size counters
// into the server.cache.* gauges.
func (s *Server) refreshCacheGauges() {
	s.cacheBytes.Set(s.cache.Bytes())
	s.cacheEntries.Set(int64(s.cache.Len()))
	s.cacheRetries.Set(s.cache.Retries())
	s.cacheSpilled.Set(s.cache.Spilled())
}

// emitCacheEvent records one solution-cache state change ("cache"
// telemetry event) on the flight recorder, when one is wired.
func (s *Server) emitCacheEvent(reason string, n int64) {
	if s.cfg.Recorder == nil {
		return
	}
	s.cfg.Recorder.Emit(telemetry.Event{ //nolint:errcheck // ring never errors
		Ev:      "cache",
		Reason:  reason,
		N:       int(n),
		Bytes:   s.cache.Bytes(),
		TMS:     float64(time.Since(s.epoch)) / float64(time.Millisecond),
		Replica: s.cfg.ReplicaID,
	})
}

// Handler returns the daemon's full route set: the /v1 solve API,
// /healthz, /debug/requests, and the telemetry endpoints. The API
// routes are wrapped in the request-observability middleware (obs.go).
func (s *Server) Handler() http.Handler {
	mux := telemetry.DebugMux(s.cfg.Metrics, s.cfg.Recorder)
	mux.HandleFunc("POST /v1/solve", s.observe("v1_solve", true,
		func(w http.ResponseWriter, r *http.Request, info *reqInfo) { s.handleSolve(w, r, info, false) }))
	mux.HandleFunc("POST /v1/solve-robust", s.observe("v1_solve_robust", true,
		func(w http.ResponseWriter, r *http.Request, info *reqInfo) { s.handleSolve(w, r, info, true) }))
	mux.HandleFunc("POST /v1/batch", s.observe("v1_batch", true, s.handleBatch))
	mux.HandleFunc("GET /healthz", s.observe("healthz", false, s.handleHealthz))
	if s.ring != nil {
		mux.HandleFunc("GET /debug/requests", s.ring.handler())
	}
	return mux
}

// Drain stops admission (new requests get 503), waits for every
// admitted request to finish, then stops the workers. It returns
// ctx.Err() if the context expires first; the pool keeps draining in
// the background in that case.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already && s.scaleStop != nil {
		close(s.scaleStop) // no resizes once the drain begins
	}
	s.scaleDone.Wait()

	done := make(chan struct{})
	go func() {
		s.pending.Wait()
		if !already {
			close(s.queue)
		}
		s.workers.Wait()
		s.mu.Lock()
		s.workerQuit = nil // every worker has exited
		s.mu.Unlock()
		s.scaleWorkers.Set(0)
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CacheStats exposes the solution cache's counters (zero Stats when
// caching is disabled).
func (s *Server) CacheStats() solvecache.Stats {
	if s.cache == nil {
		return solvecache.Stats{}
	}
	return s.cache.Stats()
}

// CloseCache flushes and closes the solution cache's spill log, making
// everything written so far durable. Call it after Drain; the cache
// itself stays usable, its stores just stop being persisted.
func (s *Server) CloseCache() error {
	if s.cache == nil {
		return nil
	}
	return s.cache.Close()
}

// handleHealthz reports liveness: 503 {"status":"draining"} once drain
// begins — the signal a load balancer needs to stop routing before the
// listener closes — and 200 with queue and worker occupancy otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request, _ *reqInfo) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		setRetryAfter(w, s.cfg.RetryAfterDraining)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":     "draining",
			"replica_id": s.cfg.ReplicaID,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"replica_id": s.cfg.ReplicaID,
		"queue_len":  len(s.queue),
		"queue_cap":  cap(s.queue),
		"workers":    s.Workers(),
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, info *reqInfo, robust bool) {
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	t, err := s.admit(r.Context(), &req, robust)
	if err != nil {
		err.write(w)
		return
	}
	<-t.done
	info.fromTask(t)
	if t.errMsg != "" {
		writeError(w, t.status, t.errMsg)
		return
	}
	encodeStart := time.Now()
	writeJSON(w, http.StatusOK, t.resp)
	info.encodeMS = float64(time.Since(encodeStart)) / float64(time.Millisecond)
}

// BatchRequest is the /v1/batch body: requests answered positionally.
type BatchRequest struct {
	// Requests lists the solves; each may independently set robust.
	Requests []SolveRequest `json:"requests"`
}

// BatchItem is one positional result of a /v1/batch call: exactly one
// of Response or Error is populated, plus the item's HTTP-equivalent
// status code.
type BatchItem struct {
	// Status is the HTTP status this request would have received alone.
	Status int `json:"status"`
	// Response is the solve result when Status is 200.
	Response *SolveResponse `json:"response,omitempty"`
	// Error describes the failure when Status is not 200.
	Error string `json:"error,omitempty"`
}

// BatchResponse answers a BatchRequest, one item per request in order.
type BatchResponse struct {
	// Items holds each request's outcome at its request index.
	Items []BatchItem `json:"items"`
}

// handleBatch answers a batch under one umbrella request ID (every item
// shares it); the batch's access-log line aggregates its items — worst
// queue wait, summed solve time, "mixed" when cache outcomes differ.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, info *reqInfo) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no requests")
		return
	}
	info.items = len(req.Requests)
	items := make([]BatchItem, len(req.Requests))
	tasks := make([]*task, len(req.Requests))
	// Admit everything first — the queue outlives the admission loop and
	// enqueueing never blocks, so a batch wider than the queue fails its
	// overflow items with 429 instead of deadlocking behind itself.
	for i := range req.Requests {
		t, aerr := s.admit(r.Context(), &req.Requests[i], req.Requests[i].Robust)
		if aerr != nil {
			items[i] = BatchItem{Status: aerr.status, Error: aerr.msg}
			continue
		}
		tasks[i] = t
	}
	for i, t := range tasks {
		if t == nil {
			continue
		}
		<-t.done
		if t.queueMS > info.queueMS {
			info.queueMS = t.queueMS
		}
		info.solveMS += t.solveMS
		info.degraded = info.degraded || t.degraded
		if info.abort == "" {
			info.abort = t.abortReason
		}
		info.parallelism = t.parallelism
		switch {
		case info.cache == "":
			info.cache = t.cacheOutcome
		case info.cache != t.cacheOutcome:
			info.cache = "mixed"
		}
		if t.errMsg != "" {
			items[i] = BatchItem{Status: t.status, Error: t.errMsg}
		} else {
			items[i] = BatchItem{Status: http.StatusOK, Response: t.resp}
		}
	}
	encodeStart := time.Now()
	writeJSON(w, http.StatusOK, BatchResponse{Items: items})
	info.encodeMS = float64(time.Since(encodeStart)) / float64(time.Millisecond)
}

// admitError is an admission failure with its HTTP mapping; a non-zero
// retryAfter becomes the rejection's Retry-After header, telling
// well-behaved clients when a retry might succeed.
type admitError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

// write renders the rejection, header included.
func (e *admitError) write(w http.ResponseWriter) {
	setRetryAfter(w, e.retryAfter)
	writeError(w, e.status, e.msg)
}

// statusClientGone is the non-standard 499 (client closed request):
// the caller vanished — hedge duplicate cancelled, connection dropped —
// before or during its solve. Nobody receives the response; the status
// exists for the access log and metrics.
const statusClientGone = 499

// setRetryAfter stamps a Retry-After header (whole seconds, rounded up;
// 0 is a no-op).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	if d > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int((d+time.Second-1)/time.Second)))
	}
}

// admit validates the request, builds its instance and options, applies
// the deadline policy, and enqueues a task — or explains why not. The
// request ID rides in from ctx (set by the observe middleware) and is
// carried by the task across the queue hop.
func (s *Server) admit(ctx context.Context, req *SolveRequest, robust bool) (*task, *admitError) {
	inst, opts, err := s.prepare(req)
	if err != nil {
		return nil, &admitError{status: http.StatusBadRequest, msg: err.Error()}
	}

	// One fingerprint serves two tiers: the solution-cache key and the
	// oracle pool. A fingerprint error (unknown oracle kind) skips both
	// — the request still solves, uncached and unpooled.
	var ifp string
	if (s.cache != nil && !req.NoCache) || s.oraclePool != nil {
		ifp, _ = inst.Fingerprint()
	}
	if s.oraclePool != nil && ifp != "" {
		// Identical fingerprints mean identical instances, and a built
		// instance is safe to share across concurrent solves (its
		// memoized oracle is concurrency-safe), so all requests for one
		// fingerprint ride the first request's instance — and its
		// warmed SDC/pairwise memo tables — instead of rebuilding them.
		// The pool is its own cache: its outcomes land in the
		// server.oracle_pool.* counters, never in the solution cache's
		// Stats, which stay one-outcome-per-request.
		pooled, out, err := s.oraclePool.Do(ifp, func() (*cosched.Instance, bool, error) {
			return inst, true, nil
		})
		if err == nil && pooled != nil {
			inst = pooled
			if out == solvecache.Miss {
				s.oraclePMisses.Add(1)
			} else {
				s.oraclePHits.Add(1)
			}
		}
	}

	t := &task{
		inst:        inst,
		opts:        opts,
		robust:      robust,
		trace:       req.Trace,
		reqID:       RequestIDFromContext(ctx),
		clientCtx:   ctx,
		parallelism: opts.Parallelism,
		enqueued:    time.Now(),
		done:        make(chan struct{}),
	}
	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (deadline <= 0 || deadline > s.cfg.MaxDeadline) {
		deadline = s.cfg.MaxDeadline
	}
	if deadline > 0 {
		t.deadline = t.enqueued.Add(deadline)
	}
	if s.cache != nil && !req.NoCache && ifp != "" {
		tag := "solve"
		if robust {
			tag = "robust"
		}
		t.key = ifp + "|" + opts.Fingerprint() + "|" + tag
		t.fpPrefix = ifp
		if len(t.fpPrefix) > 12 {
			t.fpPrefix = t.fpPrefix[:12]
		}
	}

	// The pending count must rise under the same lock that checks the
	// drain flag: Drain sets the flag, then waits for pending — so every
	// admitted task is either counted before the flag flips or rejected.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejectedDrain.Add(1)
		return nil, &admitError{status: http.StatusServiceUnavailable, msg: "server is draining",
			retryAfter: s.cfg.RetryAfterDraining}
	}
	s.pending.Add(1)
	s.mu.Unlock()

	select {
	case s.queue <- t:
		s.admitted.Add(1)
		go func() { // release the drain gate once the task resolves
			<-t.done
			s.pending.Done()
		}()
		return t, nil
	default:
		s.pending.Done()
		s.rejectedQueue.Add(1)
		return nil, &admitError{status: http.StatusTooManyRequests, msg: "admission queue is full",
			retryAfter: s.cfg.RetryAfterQueueFull}
	}
}

// prepare turns the wire request into a ready instance and options.
func (s *Server) prepare(req *SolveRequest) (*cosched.Instance, cosched.Options, error) {
	var opts cosched.Options
	var err error
	if req.Method != "" {
		if opts.Method, err = cosched.ParseMethod(req.Method); err != nil {
			return nil, opts, err
		}
	}
	if req.Accounting != "" {
		if opts.Accounting, err = cosched.ParseAccounting(req.Accounting); err != nil {
			return nil, opts, err
		}
	}
	opts.HStrategy = req.HStrategy
	opts.KPerLevel = req.KPerLevel
	opts.HWeight = req.HWeight
	opts.BeamWidth = req.BeamWidth
	opts.IPConfig = req.IPConfig
	opts.MaxExpansions = req.MaxExpansions
	opts.MemoryBudget = req.MemoryBudgetBytes
	// cosched.Options treats 0 as "all cores"; the daemon's default is
	// explicit so an unconfigured server stays sequential per solve.
	opts.Parallelism = req.Parallelism
	if opts.Parallelism == 0 {
		opts.Parallelism = s.cfg.SolveParallelism
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	opts.Metrics = s.cfg.Metrics

	machine := cosched.QuadCore
	if req.Machine != "" {
		if machine, err = cosched.ParseMachineKind(req.Machine); err != nil {
			return nil, opts, err
		}
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	var inst *cosched.Instance
	switch {
	case req.Spec != nil:
		inst, err = req.Spec.Build()
	case req.SyntheticLarge > 0:
		inst, err = cosched.SyntheticLarge(req.SyntheticLarge, machine, seed)
	case req.Synthetic > 0:
		inst, err = cosched.SyntheticSerial(req.Synthetic, machine, seed)
	default:
		err = fmt.Errorf("request needs a spec, synthetic or synthetic_large workload")
	}
	if err != nil {
		return nil, opts, err
	}
	inst.SetOracleCacheCapacity(s.cfg.OracleCacheEntries)
	return inst, opts, nil
}

// task is one admitted solve travelling from handler to worker.
type task struct {
	inst      *cosched.Instance
	opts      cosched.Options
	robust    bool
	trace     bool
	key       string          // solution-cache key; "" = don't cache
	reqID     string          // request ID carried across the queue hop
	clientCtx context.Context // the HTTP request's context: done = caller gone

	fpPrefix    string // instance-fingerprint prefix (when the key was computed)
	parallelism int
	deadline    time.Time
	enqueued    time.Time

	// Written by the worker before closing done, read by the handler
	// after.
	resp         *SolveResponse
	traceJSONL   string
	status       int
	errMsg       string
	queueMS      float64
	solveMS      float64
	cacheOutcome string // hit|shared|miss|bypass
	degraded     bool
	abortReason  string
	solveID      uint64
	done         chan struct{}
}

// worker drains the admission queue until the queue closes (drain) or
// its quit channel does (an autoscaler shrink). Quit is only honoured
// between tasks, so a shrink never abandons a solve in flight, and the
// non-blocking check first makes retirement deterministic even when the
// queue stays ready.
func (s *Server) worker(quit chan struct{}) {
	defer s.workers.Done()
	for {
		select {
		case <-quit:
			return
		default:
		}
		select {
		case t, ok := <-s.queue:
			if !ok {
				return
			}
			s.process(t)
			close(t.done)
		case <-quit:
			return
		}
	}
}

// process runs one admitted task: deadline check, cache lookup, solve.
func (s *Server) process(t *task) {
	queueMS := float64(time.Since(t.enqueued)) / float64(time.Millisecond)
	t.queueMS = queueMS
	s.queueDelay.Observe(queueMS)
	if !t.deadline.IsZero() && !time.Now().Before(t.deadline) {
		s.rejectedDL.Add(1)
		t.status = http.StatusGatewayTimeout
		t.errMsg = "deadline expired while queued"
		return
	}

	// A caller that already went away — a cancelled hedge duplicate, a
	// dropped connection — gets no solve at all: running it would burn a
	// worker on an answer nobody reads (and, for hedges, double-count
	// the logical request's side effects).
	if t.clientCtx != nil && t.clientCtx.Err() != nil {
		s.rejectedGone.Add(1)
		t.status = statusClientGone
		t.errMsg = "client went away while queued"
		return
	}

	// Rebuild the request-scoped context on the worker side of the queue
	// hop: the handler's context dies with the HTTP goroutine's select,
	// but the identity must reach the solve.
	ctx := context.Background()
	if t.reqID != "" {
		ctx = WithRequestID(ctx, t.reqID)
	}
	if !t.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, t.deadline)
		defer cancel()
	}
	if t.clientCtx != nil {
		// Merge the caller's cancellation into the solve context: when a
		// fleet client cancels a losing hedge attempt (or disconnects),
		// the solver's next expansion check aborts instead of finishing
		// work whose answer is unread.
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		stop := context.AfterFunc(t.clientCtx, cancel)
		defer stop()
	}

	compute := func() (*solvecache.Solution, bool, error) {
		sched, solveMS, err := s.solve(ctx, t)
		if err != nil {
			return nil, false, err
		}
		// Only proven answers are cacheable: a degraded schedule is an
		// artifact of this request's budgets, not the instance's optimum.
		return solutionFromSchedule(sched, solveMS), !sched.Stats.Degraded, nil
	}

	// Exactly one cache consultation — a single Do, never a Get probe
	// first — so each request contributes one outcome to the cache's
	// Stats and the server.cache.* hit rate stays per-request truthful.
	var (
		sol     *solvecache.Solution
		outcome = solvecache.Miss
		err     error
	)
	if t.key != "" {
		sol, outcome, err = s.cache.Do(t.key, compute)
		switch outcome {
		case solvecache.Hit:
			s.cacheHits.Add(1)
			t.cacheOutcome = "hit"
		case solvecache.Shared:
			s.cacheShared.Add(1)
			t.cacheOutcome = "shared"
		default:
			s.cacheMisses.Add(1)
			t.cacheOutcome = "miss"
		}
		s.refreshCacheGauges()
		if outcome == solvecache.Miss && err == nil && sol != nil && !sol.Degraded {
			// This miss stored its answer (degraded and failed solves
			// are never cached): surface the growth on the timeline.
			s.emitCacheEvent("store", 1)
		}
	} else {
		sol, _, err = compute()
		t.cacheOutcome = "bypass"
	}
	if err != nil {
		if t.clientCtx != nil && t.clientCtx.Err() != nil {
			// The solve died because the caller went away mid-run (a
			// hedge loser's cancellation propagated in) — not a server
			// fault.
			s.rejectedGone.Add(1)
			t.status = statusClientGone
			t.errMsg = "client went away during solve"
			return
		}
		t.status = http.StatusInternalServerError
		t.errMsg = err.Error()
		return
	}
	t.solveMS = sol.SolveMS
	t.solveID = sol.SolveID
	t.degraded = sol.Degraded
	t.abortReason = sol.AbortReason
	t.resp = buildResponse(sol, outcome, queueMS)
	if t.robust {
		t.resp.Method = "robust"
	} else {
		t.resp.Method = t.opts.Method.String()
	}
	t.resp.TraceJSONL = t.traceJSONL
	t.resp.RequestID = t.reqID
	t.resp.SolveID = t.solveID
}

// solve runs the task's solver call, wiring trace capture and the
// flight recorder, and reports the wall-clock spent solving.
func (s *Server) solve(ctx context.Context, t *task) (*cosched.Schedule, float64, error) {
	opts := t.opts
	var traceBuf *bytes.Buffer
	if t.trace {
		traceBuf = &bytes.Buffer{}
		opts.EventTraceWriter = traceBuf
	}
	if s.cfg.Recorder != nil {
		opts.EventSink = s.cfg.Recorder
	}
	s.solves.Add(1)
	start := time.Now()
	var sched *cosched.Schedule
	var err error
	if t.robust {
		sched, err = cosched.SolveRobust(ctx, t.inst, opts)
	} else {
		sched, err = cosched.SolveContext(ctx, t.inst, opts)
	}
	solveMS := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return nil, solveMS, err
	}
	if traceBuf != nil {
		t.traceJSONL = traceBuf.String()
	}
	return sched, solveMS, nil
}

// solutionFromSchedule flattens a solved schedule into its cacheable
// form: everything the response needs, nothing tied to live solver
// state, so the value serialises to the spill log and is still
// renderable after a restart.
func solutionFromSchedule(sched *cosched.Schedule, solveMS float64) *solvecache.Solution {
	sol := &solvecache.Solution{
		Cost:     sched.TotalDegradation,
		AvgCost:  sched.AvgDegradation(),
		Groups:   sched.Groups(),
		Machines: sched.Machines(),
		Degraded: sched.Stats.Degraded,
		SolveMS:  solveMS,
		SolveID:  sched.Stats.SolveID,
	}
	if sched.Stats.AbortReason != cosched.AbortNone {
		sol.AbortReason = sched.Stats.AbortReason.String()
	}
	for _, fb := range sched.Stats.Fallbacks {
		sol.Fallbacks = append(sol.Fallbacks, solvecache.SolutionFallback{
			Method:   fb.Method.String(),
			Degraded: fb.Degraded,
			Aborted:  fb.Aborted.String(),
			Err:      fb.Err,
		})
	}
	return sol
}

// buildResponse renders a solution for one request. The solution is
// shared across requests (cached) and only read here.
func buildResponse(sol *solvecache.Solution, outcome solvecache.Outcome, queueMS float64) *SolveResponse {
	resp := &SolveResponse{
		Cost:        sol.Cost,
		AvgCost:     sol.AvgCost,
		Groups:      sol.Groups,
		Machines:    sol.Machines,
		Degraded:    sol.Degraded,
		AbortReason: sol.AbortReason,
		Cached:      outcome == solvecache.Hit,
		Shared:      outcome == solvecache.Shared,
		QueueMS:     queueMS,
		SolveMS:     sol.SolveMS,
	}
	for _, fb := range sol.Fallbacks {
		resp.Fallbacks = append(resp.Fallbacks, FallbackInfo{
			Method:   fb.Method,
			Degraded: fb.Degraded,
			Aborted:  fb.Aborted,
			Err:      fb.Err,
		})
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone = nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
