package integration

import (
	"math"
	"math/rand"
	"testing"

	"cosched/internal/astar"
	"cosched/internal/bruteforce"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/ip"
	"cosched/internal/job"
	"cosched/internal/osvp"
	"cosched/internal/pg"
	"cosched/internal/workload"
)

const eps = 1e-6

// randomInstance draws a random small mixed instance: a few serial jobs,
// possibly a PE and/or a PC job, on a random machine class.
func randomInstance(t *testing.T, seed int64) (*workload.Instance, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	u := []int{2, 4}[rng.Intn(2)]
	m, err := cache.MachineByCores(u)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.NewSpec()
	total := 0
	if rng.Intn(2) == 0 {
		k := 2 + rng.Intn(3)
		spec.AddPE(workload.SyntheticProgram("pe", rng), k)
		total += k
	}
	if rng.Intn(2) == 0 {
		k := 2 + rng.Intn(3)
		spec.AddPC(workload.SyntheticProgram("pc", rng), k, nil)
		total += k
	}
	for total < 8+rng.Intn(3) {
		spec.AddSerial(workload.SyntheticProgram("s", rng))
		total++
	}
	in, err := spec.Build(&m)
	if err != nil {
		t.Fatal(err)
	}
	return in, u
}

func TestAllExactMethodsAgree(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		in, u := randomInstance(t, seed)
		for _, mode := range []degradation.Mode{degradation.ModeSE, degradation.ModePE, degradation.ModePC} {
			c := in.Cost(mode)
			bf, err := bruteforce.Solve(c)
			if err != nil {
				t.Fatalf("seed %d mode %v: brute force: %v", seed, mode, err)
			}

			// OA* with the exact-parallel dismissal key.
			g := graph.New(c, in.Patterns)
			s, err := astar.NewSolver(g, astar.Options{
				H: astar.HPerProc, Condense: true, UseIncumbent: true, ExactParallel: true})
			if err != nil {
				t.Fatal(err)
			}
			oa, err := s.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(oa.Cost-bf.Cost) > eps {
				t.Errorf("seed %d u=%d mode %v: OA* %v != optimum %v", seed, u, mode, oa.Cost, bf.Cost)
			}
			if err := c.ValidatePartition(oa.Groups); err != nil {
				t.Errorf("seed %d mode %v: OA*: %v", seed, mode, err)
			}

			// IP branch-and-bound.
			model, err := ip.BuildModel(c)
			if err != nil {
				t.Fatal(err)
			}
			ipRes, err := ip.Solve(model, ip.ConfigA)
			if err != nil {
				t.Fatalf("seed %d mode %v: IP: %v", seed, mode, err)
			}
			if math.Abs(ipRes.Cost-bf.Cost) > eps {
				t.Errorf("seed %d u=%d mode %v: IP %v != optimum %v", seed, u, mode, ipRes.Cost, bf.Cost)
			}
		}
	}
}

func TestHeuristicsFeasibleAndBounded(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		in, _ := randomInstance(t, 100+seed)
		c := in.Cost(degradation.ModePC)
		bf, err := bruteforce.Solve(c)
		if err != nil {
			t.Fatal(err)
		}

		g := graph.New(c, in.Patterns)
		n, u := g.N(), g.U()
		ha, err := astar.NewSolver(g, astar.Options{
			H: astar.HPerProc, KPerLevel: n / u, Condense: true, UseIncumbent: true})
		if err != nil {
			t.Fatal(err)
		}
		haRes, err := ha.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ValidatePartition(haRes.Groups); err != nil {
			t.Errorf("seed %d: HA*: %v", seed, err)
		}
		if haRes.Cost < bf.Cost-eps {
			t.Errorf("seed %d: HA* %v beat the optimum %v", seed, haRes.Cost, bf.Cost)
		}

		pgRes := pg.Solve(c)
		if err := c.ValidatePartition(pgRes.Groups); err != nil {
			t.Errorf("seed %d: PG: %v", seed, err)
		}
		if pgRes.Cost < bf.Cost-eps {
			t.Errorf("seed %d: PG %v beat the optimum %v", seed, pgRes.Cost, bf.Cost)
		}
	}
}

func TestOSVPAgreesOnSerialBatches(t *testing.T) {
	m := cache.QuadCore
	for seed := int64(1); seed <= 6; seed++ {
		in, err := workload.SyntheticSerialInstance(12, &m, seed)
		if err != nil {
			t.Fatal(err)
		}
		c := in.Cost(degradation.ModePC)
		bf, err := bruteforce.Solve(c)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.New(c, nil)
		res, err := osvp.Solve(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Cost-bf.Cost) > eps {
			t.Errorf("seed %d: O-SVP %v != optimum %v", seed, res.Cost, bf.Cost)
		}
	}
}

func TestSmoothAndNoisyPopulationsDiffer(t *testing.T) {
	m := cache.QuadCore
	smooth, err := workload.SyntheticPairwiseSmoothInstance(24, &m, 5)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := workload.SyntheticPairwiseInstance(24, &m, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The noisy population must have visibly larger pair-degradation
	// dispersion than the smooth one.
	disp := func(in *workload.Instance) float64 {
		var lo, hi = math.Inf(1), 0.0
		for i := 1; i <= 24; i++ {
			for j := 1; j <= 24; j++ {
				if i == j {
					continue
				}
				d := in.Oracle.Degradation(job.ProcID(i), []job.ProcID{job.ProcID(j)})
				if d < lo {
					lo = d
				}
				if d > hi {
					hi = d
				}
			}
		}
		return hi / lo
	}
	if ds, dn := disp(smooth), disp(noisy); dn < ds*1.5 {
		t.Errorf("noisy dispersion %v not clearly above smooth %v", dn, ds)
	}
}
