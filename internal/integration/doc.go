// Package integration holds cross-solver validation suites: randomised
// instances solved by every method in the repository, with the exact
// methods (OA* with exact-parallel dismissal, IP branch-and-bound, O-SVP,
// brute force) required to agree and the heuristics (HA*, PG) required to
// stay feasible and no better than the optimum. This is the repository's
// strongest correctness evidence beyond per-package unit tests.
package integration
