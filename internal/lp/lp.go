// Package lp is a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimise cᵀx  subject to  Ax {≤,=,≥} b,  x ≥ 0.
//
// It is the LP substrate under the branch-and-bound 0-1 IP solver
// (internal/ip) that stands in for the commercial/open IP solvers the
// paper benchmarks (CPLEX, CBC, SCIP, GLPK — §V-D). The problems the IP
// method generates are small set-partitioning LPs (tens of rows, up to a
// few thousand columns), for which a dense tableau is simple and fast
// enough.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of one constraint.
type Relation int

// The three constraint senses.
const (
	LE Relation = iota // ≤
	GE                 // ≥
	EQ                 // =
)

// Status classifies the outcome of a solve.
type Status int

// The solve outcomes, in decreasing order of usefulness.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Term is one non-zero coefficient of a constraint.
type Term struct {
	Var   int
	Coeff float64
}

type constraint struct {
	terms []Term
	rel   Relation
	rhs   float64
}

// Problem is a linear program under construction.
type Problem struct {
	numVars int
	c       []float64
	cons    []constraint
	// MaxIters bounds total simplex pivots (both phases); 0 means the
	// default.
	MaxIters int
}

// NewProblem creates a problem with the given number of structural
// variables, all with zero objective coefficient initially.
func NewProblem(numVars int) *Problem {
	return &Problem{numVars: numVars, c: make([]float64, numVars)}
}

// SetObjective sets the cost of one variable (minimisation).
func (p *Problem) SetObjective(v int, cost float64) { p.c[v] = cost }

// AddConstraint appends a constraint. Terms with duplicate variables are
// summed.
func (p *Problem) AddConstraint(terms []Term, rel Relation, rhs float64) {
	p.cons = append(p.cons, constraint{terms: append([]Term(nil), terms...), rel: rel, rhs: rhs})
}

// NumVars returns the structural variable count.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the constraint count.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // values of the structural variables
	Iters     int
}

const (
	eps        = 1e-9
	defaultMax = 200000
)

// Solve runs two-phase primal simplex.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.cons)
	// Column layout: [structural | slack/surplus | artificial], then RHS.
	nStruct := p.numVars
	nSlack := 0
	for _, c := range p.cons {
		if c.rel != EQ {
			nSlack++
		}
	}
	// Artificial variables: for GE and EQ rows (and LE rows with
	// negative RHS after normalisation, handled by flipping the row
	// first).
	type rowSpec struct {
		terms []Term
		rel   Relation
		rhs   float64
	}
	rows := make([]rowSpec, m)
	for i, c := range p.cons {
		r := rowSpec{terms: c.terms, rel: c.rel, rhs: c.rhs}
		if r.rhs < 0 {
			// Flip the row so RHS is non-negative.
			flipped := make([]Term, len(r.terms))
			for k, t := range r.terms {
				flipped[k] = Term{Var: t.Var, Coeff: -t.Coeff}
			}
			r.terms = flipped
			r.rhs = -r.rhs
			switch r.rel {
			case LE:
				r.rel = GE
			case GE:
				r.rel = LE
			}
		}
		rows[i] = r
	}
	nArt := 0
	for _, r := range rows {
		if r.rel != LE {
			nArt++
		}
	}
	total := nStruct + nSlack + nArt
	// Tableau: m rows × (total+1) columns (last is RHS).
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol := nStruct
	artCol := nStruct + nSlack
	for i, r := range rows {
		tab[i] = make([]float64, total+1)
		for _, t := range r.terms {
			if t.Var < 0 || t.Var >= nStruct {
				return nil, fmt.Errorf("lp: constraint %d references variable %d of %d", i, t.Var, nStruct)
			}
			tab[i][t.Var] += t.Coeff
		}
		tab[i][total] = r.rhs
		switch r.rel {
		case LE:
			tab[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			tab[i][slackCol] = -1
			slackCol++
			tab[i][artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			tab[i][artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	maxIters := p.MaxIters
	if maxIters == 0 {
		maxIters = defaultMax
	}
	iters := 0

	// Phase 1: minimise the sum of artificial variables.
	if nArt > 0 {
		phase1 := make([]float64, total)
		for j := nStruct + nSlack; j < total; j++ {
			phase1[j] = 1
		}
		st, it := simplex(tab, basis, phase1, maxIters)
		iters += it
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iters: iters}, nil
		}
		var artSum float64
		for i, b := range basis {
			if b >= nStruct+nSlack {
				artSum += tab[i][total]
			}
		}
		if artSum > 1e-7 {
			return &Solution{Status: Infeasible, Iters: iters}, nil
		}
		// Pivot remaining (degenerate) artificials out of the basis
		// where possible.
		for i, b := range basis {
			if b < nStruct+nSlack {
				continue
			}
			for j := 0; j < nStruct+nSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					break
				}
			}
		}
	}

	// Phase 2: original objective over structural columns. Artificial
	// columns get a big-M cost so a degenerate basic artificial can
	// still leave the basis without destabilising the arithmetic.
	bigM := 1.0
	for _, cv := range p.c {
		if a := math.Abs(cv); a > bigM {
			bigM = a
		}
	}
	bigM *= 1e7
	phase2 := make([]float64, total)
	copy(phase2, p.c)
	for j := nStruct + nSlack; j < total; j++ {
		phase2[j] = bigM
	}
	st, it := simplex(tab, basis, phase2, maxIters-iters)
	iters += it
	switch st {
	case Unbounded:
		return &Solution{Status: Unbounded, Iters: iters}, nil
	case IterLimit:
		return &Solution{Status: IterLimit, Iters: iters}, nil
	}

	x := make([]float64, nStruct)
	for i, b := range basis {
		if b < nStruct {
			x[b] = tab[i][total]
		}
	}
	var obj float64
	for j, v := range x {
		obj += p.c[j] * v
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Iters: iters}, nil
}

// simplex runs primal simplex on the tableau with the given objective,
// mutating tab and basis. Dantzig pricing with a Bland fallback after
// stalling protects against cycling.
func simplex(tab [][]float64, basis []int, c []float64, maxIters int) (Status, int) {
	m := len(tab)
	if m == 0 {
		return Optimal, 0
	}
	total := len(tab[0]) - 1
	// reduced costs: r_j = c_j - c_B B^{-1} A_j; with the tableau kept in
	// canonical form, r_j = c_j - sum_i c_basis[i] * tab[i][j].
	reduced := func(j int) float64 {
		r := c[j]
		for i := 0; i < m; i++ {
			if cb := c[basis[i]]; cb != 0 {
				r -= cb * tab[i][j]
			}
		}
		return r
	}
	iters := 0
	stall := 0
	for ; iters < maxIters; iters++ {
		// Entering variable.
		enter := -1
		best := -eps
		useBland := stall > 2*m+50
		for j := 0; j <= total-1; j++ {
			r := reduced(j)
			if useBland {
				if r < -eps {
					enter = j
					break
				}
			} else if r < best {
				best = r
				enter = j
			}
		}
		if enter < 0 {
			return Optimal, iters
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a > eps {
				ratio := tab[i][total] / a
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, iters
		}
		if bestRatio < eps {
			stall++
		} else {
			stall = 0
		}
		pivot(tab, basis, leave, enter)
	}
	return IterLimit, iters
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func pivot(tab [][]float64, basis []int, row, col int) {
	m := len(tab)
	w := len(tab[0])
	pv := tab[row][col]
	inv := 1 / pv
	prow := tab[row]
	for j := 0; j < w; j++ {
		prow[j] *= inv
	}
	prow[col] = 1
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		trow := tab[i]
		for j := 0; j < w; j++ {
			trow[j] -= f * prow[j]
		}
		trow[col] = 0
	}
	basis[row] = col
}

// ErrBadModel reports structural model errors.
var ErrBadModel = errors.New("lp: malformed model")
