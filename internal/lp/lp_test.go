package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  => min -(x+y); optimum x=1.6,y=1.2.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, LE, 4)
	p.AddConstraint([]Term{{0, 3}, {1, 1}}, LE, 6)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, -2.8) || !approx(s.X[0], 1.6) || !approx(s.X[1], 1.2) {
		t.Errorf("solution = %v obj %v; want x=(1.6,1.2) obj=-2.8", s.X, s.Objective)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x+3y s.t. x+y=10, x>=4  => x=10? No: y>=0, so x in [4,10];
	// cost 2x+3(10-x) = 30 - x minimised at x=10 => 20.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 10)
	p.AddConstraint([]Term{{0, 1}}, GE, 4)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 20) || !approx(s.X[0], 10) {
		t.Errorf("got %+v; want x=10 obj=20", s)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{0, 1}}, GE, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v; want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]Term{{0, 1}}, GE, 1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v; want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalisation(t *testing.T) {
	// -x <= -3  <=>  x >= 3; min x => 3.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[0], 3) {
		t.Errorf("got %+v; want x=3", s)
	}
}

func TestDuplicateTermsAreSummed(t *testing.T) {
	// (1+1)x <= 4, min -x => x=2.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]Term{{0, 1}, {0, 1}}, LE, 4)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[0], 2) {
		t.Errorf("got %+v; want x=2", s)
	}
}

func TestBadVariableIndex(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{5, 1}}, LE, 1)
	if _, err := p.Solve(); err == nil {
		t.Error("constraint with unknown variable accepted")
	}
}

func TestSetPartitioningRelaxationIntegral(t *testing.T) {
	// A tiny set-partitioning LP: 4 items, pair columns; the LP optimum
	// of this structure is the same as the IP optimum here.
	// Columns: {1,2}:20 {3,4}:20 {1,3}:8 {2,4}:8 {1,4}:1 {2,3}:1
	cols := []struct {
		a, b int
		cost float64
	}{{0, 1, 20}, {2, 3, 20}, {0, 2, 8}, {1, 3, 8}, {0, 3, 1}, {1, 2, 1}}
	p := NewProblem(len(cols))
	for j, c := range cols {
		p.SetObjective(j, c.cost)
	}
	for item := 0; item < 4; item++ {
		var terms []Term
		for j, c := range cols {
			if c.a == item || c.b == item {
				terms = append(terms, Term{j, 1})
			}
		}
		p.AddConstraint(terms, EQ, 1)
	}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 2) {
		t.Errorf("objective = %v (%v); want 2", s.Objective, s.Status)
	}
}

func TestRandomisedAgainstBruteForce(t *testing.T) {
	// Property: for random bounded 2-variable LPs, simplex matches a
	// fine grid search within tolerance.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		c0, c1 := rng.Float64()*4-2, rng.Float64()*4-2
		// box constraints keep it bounded and feasible at (0,0)
		ub0, ub1 := 1+rng.Float64()*5, 1+rng.Float64()*5
		a0, a1 := rng.Float64()*2, rng.Float64()*2
		rhs := 1 + rng.Float64()*6
		p := NewProblem(2)
		p.SetObjective(0, c0)
		p.SetObjective(1, c1)
		p.AddConstraint([]Term{{0, 1}}, LE, ub0)
		p.AddConstraint([]Term{{1, 1}}, LE, ub1)
		p.AddConstraint([]Term{{0, a0}, {1, a1}}, LE, rhs)
		s, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		best := math.Inf(1)
		const steps = 200
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := ub0 * float64(i) / steps
				y := ub1 * float64(j) / steps
				if a0*x+a1*y <= rhs+1e-12 {
					if v := c0*x + c1*y; v < best {
						best = v
					}
				}
			}
		}
		if s.Objective > best+1e-6 || s.Objective < best-0.1 {
			t.Errorf("trial %d: simplex %v vs grid %v", trial, s.Objective, best)
		}
	}
}

func TestIterLimit(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.MaxIters = 0 // default is plenty
	s, err := p.Solve()
	if err != nil || s.Status != Optimal {
		t.Fatalf("default iters: %v %v", err, s)
	}
	if s.Iters <= 0 {
		t.Error("iteration counter not populated")
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible", Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
}

func TestTinyIterLimitReported(t *testing.T) {
	// A deliberately tiny pivot budget must surface as IterLimit, not
	// as a wrong answer.
	p := NewProblem(3)
	p.SetObjective(0, -1)
	p.SetObjective(1, -2)
	p.SetObjective(2, -3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}}, LE, 10)
	p.AddConstraint([]Term{{0, 2}, {1, 1}}, LE, 8)
	p.AddConstraint([]Term{{1, 1}, {2, 2}}, GE, 1)
	p.MaxIters = 1
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status == Optimal {
		// With artificials, one pivot cannot complete both phases.
		t.Errorf("status = %v with MaxIters=1", s.Status)
	}
}

func TestZeroConstraintProblem(t *testing.T) {
	// No constraints, non-negative costs: optimum is x = 0.
	p := NewProblem(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 5)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Objective != 0 {
		t.Errorf("got %+v; want zero optimum", s)
	}
}
