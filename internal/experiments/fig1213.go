package experiments

import (
	"fmt"
	"time"

	"cosched/internal/astar"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/pg"
	"cosched/internal/workload"
)

func init() {
	register("fig12", fig12)
	register("fig13", fig13)
}

// haLargeOptions is the large-scale HA* configuration: the paper's
// per-level budget k = n/u, the average-cost estimator, a mild depth bias
// and a bounded beam (DESIGN.md §3 records why the thousand-process runs
// need the estimator/beam instead of the priority-list search).
func haLargeOptions(n, u int) astar.Options {
	opts := astar.Options{
		H:           astar.HPerProcAvg,
		HWeight:     1.2,
		KPerLevel:   n / u,
		BeamWidth:   16,
		Parallelism: activeParallelism,
		Metrics:     activeMetrics,
	}
	if activeSink != nil {
		opts.Tracer = astar.NewEventTracer(activeSink)
	}
	return opts
}

// fig12 reproduces Figure 12: average degradation of HA* vs PG on large
// synthetic batches (quad-core and 8-core machines).
func fig12(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig12",
		Title:   "HA* vs PG average degradation on synthetic jobs",
		Headers: []string{"machine", "jobs", "HA*", "PG", "HA* advantage"},
	}
	sizes := []int{120, 480, 720, 1200}
	machines := []int{4, 8}
	if opts.Quick {
		sizes = []int{120, 240}
		machines = []int{4}
	}
	for _, u := range machines {
		m, err := machineFor(u)
		if err != nil {
			return nil, err
		}
		for _, n := range sizes {
			in, err := workload.SyntheticPairwiseInstance(n, m, opts.Seed+int64(n))
			if err != nil {
				return nil, err
			}
			c := in.Cost(degradation.ModePC)
			g := graph.New(c, in.Patterns)
			s, err := astar.NewSolver(g, haLargeOptions(n, u))
			if err != nil {
				return nil, err
			}
			ha, err := s.Solve()
			if err != nil {
				return nil, err
			}
			pgRes := pg.Solve(c)
			haAvg := ha.Cost / float64(len(in.Batch.Jobs))
			pgAvg := pgRes.Cost / float64(len(in.Batch.Jobs))
			adv := (pgAvg - haAvg) / pgAvg * 100
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%d-core", u), fmt.Sprint(n),
				fmtDeg(haAvg), fmtDeg(pgAvg), fmt.Sprintf("%.1f%%", adv)})
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: HA* beats PG everywhere (paper: 20-25% on quad-core, 16-18% on 8-core)")
	return rep, nil
}

// fig13 reproduces Figure 13: HA* solving-time scalability on quad-core
// and 8-core machines up to 1208 jobs.
func fig13(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig13",
		Title:   "Scalability of HA* (seconds vs number of jobs)",
		Headers: []string{"machine", "jobs", "time (s)", "visited paths"},
	}
	sizes := []int{48, 144, 240, 432, 624, 816, 1008, 1208}
	machines := []int{4, 8}
	if opts.Quick {
		sizes = []int{48, 144, 240}
		machines = []int{4}
	}
	for _, u := range machines {
		m, err := machineFor(u)
		if err != nil {
			return nil, err
		}
		for _, n := range sizes {
			in, err := workload.SyntheticPairwiseInstance(n, m, opts.Seed+int64(n))
			if err != nil {
				return nil, err
			}
			c := in.Cost(degradation.ModePC)
			g := graph.New(c, in.Patterns)
			s, err := astar.NewSolver(g, haLargeOptions(n, u))
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := s.Solve()
			el := time.Since(start).Seconds()
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%d-core", u), fmt.Sprint(n), fmtSec(el),
				fmt.Sprint(res.Stats.VisitedPaths)})
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: polynomial-looking growth; 8-core runs faster than quad-core at equal n (smaller k = n/u budget per level)")
	return rep, nil
}
