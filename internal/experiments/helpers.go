package experiments

import (
	"fmt"
	"time"

	"cosched/internal/astar"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/ip"
	"cosched/internal/job"
	"cosched/internal/workload"
)

// solveOA runs the optimal A* search with the evaluation's standard
// configuration: h Strategy 2 where levels are enumerable (the paper's
// setting), the scalable per-process bound otherwise, condensation on,
// greedy incumbent pruning on. ExactParallel strengthens the dismissal
// key with per-job maxima: the paper's plain set-keyed dismissal
// (Theorem 1) can miss the optimum on mixed batches (DESIGN.md §3, and
// Table II in EXPERIMENTS.md shows the case that exposed it).
func solveOA(in *workload.Instance, mode degradation.Mode) (*astar.Result, error) {
	return solveOAOpt(in, mode, astar.Options{Condense: true, UseIncumbent: true, ExactParallel: true})
}

func solveOAOpt(in *workload.Instance, mode degradation.Mode, opts astar.Options) (*astar.Result, error) {
	c := in.Cost(mode)
	g := graph.New(c, in.Patterns)
	if opts.Metrics == nil {
		opts.Metrics = activeMetrics
	}
	if opts.Tracer == nil && activeSink != nil {
		opts.Tracer = astar.NewEventTracer(activeSink)
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = activeParallelism
	}
	if opts.H == astar.HNone && opts.KPerLevel == 0 && !opts.UseIncumbent {
		// caller asked for raw defaults; leave as-is (O-SVP style)
	} else if opts.H == astar.HNone {
		// HPerProc is the tightest admissible estimator this repo has
		// (it dominates the paper's Strategy 2, which Table IV still
		// exercises explicitly).
		opts.H = astar.HPerProc
	}
	s, err := astar.NewSolver(g, opts)
	if err != nil {
		return nil, err
	}
	return s.Solve()
}

// capErr converts a degraded (budget-capped) search result into an
// error. The anytime solvers return a best-incumbent schedule when a
// cap breaks — right for production callers, wrong for experiment
// tables, which must report ">cap" rather than pass an unproven cost
// off as the optimum.
func capErr(res *astar.Result, err error) (*astar.Result, error) {
	if err == nil && res.Stats.Degraded {
		return nil, fmt.Errorf("search budget hit (%s)", res.Stats.Aborted)
	}
	return res, err
}

// solveOACapped is solveOA with an expansion cap, for experiment arms
// that may exceed laptop budgets; the caller degrades gracefully on
// error.
func solveOACapped(in *workload.Instance, mode degradation.Mode) (*astar.Result, error) {
	return capErr(solveOAOpt(in, mode, astar.Options{
		Condense: true, UseIncumbent: true, ExactParallel: true,
		MaxExpansions: 2_000_000, TimeLimit: 2 * time.Minute}))
}

// solveOAPlain runs OA* exactly as the paper specifies it — set-keyed
// dismissal without the per-job-max extension — which is what keeps the
// figure-scale parallel mixes tractable: the exact-parallel key carries
// continuous running maxima that defeat the symmetry canonicalisation
// (DESIGN.md §5a). Capped as a safety net.
func solveOAPlain(in *workload.Instance, mode degradation.Mode) (*astar.Result, error) {
	return capErr(solveOAOpt(in, mode, astar.Options{
		Condense: true, UseIncumbent: true,
		MaxExpansions: 1_500_000, TimeLimit: 2 * time.Minute}))
}

// solveHA runs the heuristic A* with the paper's MER budget k = n/u.
func solveHA(in *workload.Instance, mode degradation.Mode) (*astar.Result, error) {
	c := in.Cost(mode)
	g := graph.New(c, in.Patterns)
	n, u := g.N(), g.U()
	opts := astar.Options{KPerLevel: n / u, Condense: true, UseIncumbent: true,
		Parallelism: activeParallelism, Metrics: activeMetrics}
	if activeSink != nil {
		opts.Tracer = astar.NewEventTracer(activeSink)
	}
	if n > 40 {
		opts.H = astar.HPerProcAvg
		opts.HWeight = 1.2
		opts.BeamWidth = 16
	} else {
		opts.H = astar.HPerProc
	}
	s, err := astar.NewSolver(g, opts)
	if err != nil {
		return nil, err
	}
	return s.Solve()
}

// avgJobDegradation evaluates a schedule under the given accounting mode
// and averages the per-job degradations.
func avgJobDegradation(in *workload.Instance, mode degradation.Mode, groups [][]job.ProcID) float64 {
	c := in.Cost(mode)
	per := c.PerJobDegradation(groups)
	if len(per) == 0 {
		return 0
	}
	var sum float64
	for _, d := range per {
		sum += d
	}
	return sum / float64(len(per))
}

// solveIPBest runs the strongest branch-and-bound preset with a safety
// time limit.
func solveIPBest(in *workload.Instance, mode degradation.Mode, limit time.Duration) (*ip.Result, error) {
	model, err := ip.BuildModel(in.Cost(mode))
	if err != nil {
		return nil, err
	}
	cfg := ip.ConfigA
	cfg.TimeLimit = limit
	cfg.Metrics = activeMetrics
	cfg.Events = activeSink
	return ip.Solve(model, cfg)
}

// machineFor maps core counts to the evaluation machines.
func machineFor(u int) (*cache.Machine, error) {
	m, err := cache.MachineByCores(u)
	if err != nil {
		return nil, err
	}
	return &m, nil
}

// tableIIPEInstance mirrors workload.TableIIInstance but with the
// parallel jobs as PE (no communication), the "(pe)" rows of Table III.
func tableIIPEInstance(totalProcs int, m *cache.Machine) (*workload.Instance, error) {
	var serial []string
	var parProcs int
	switch totalProcs {
	case 8:
		serial = []string{"applu", "art", "equake", "vpr"}
		parProcs = 2
	case 12:
		serial = []string{"applu", "art", "ammp", "equake", "galgel", "vpr"}
		parProcs = 3
	case 16:
		serial = []string{"BT", "IS", "applu", "art", "ammp", "equake", "galgel", "vpr"}
		parProcs = 4
	default:
		return nil, fmt.Errorf("experiments: PE mix defined for 8/12/16 processes; got %d", totalProcs)
	}
	s := workload.NewSpec()
	mg, err := workload.PCProgram("MG-Par")
	if err != nil {
		return nil, err
	}
	lu, err := workload.PCProgram("LU-Par")
	if err != nil {
		return nil, err
	}
	s.AddPE(mg, parProcs)
	s.AddPE(lu, parProcs)
	for _, n := range serial {
		if _, err := s.AddSerialByName(n); err != nil {
			return nil, err
		}
	}
	return s.Build(m)
}
