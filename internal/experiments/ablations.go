package experiments

import (
	"fmt"
	"time"

	"cosched/internal/astar"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/workload"
)

// Ablations of the design choices DESIGN.md §5 calls out. These go beyond
// the paper: they isolate the effect of each mechanism this repository
// adds or reproduces.

func init() {
	register("ablation-dismissal", ablationDismissal)
	register("ablation-h", ablationH)
	register("ablation-beam", ablationBeam)
	register("ablation-oracle", ablationOracle)
}

// ablationDismissal compares the paper's set-keyed dismissal (Theorem 1)
// with this repo's exact-parallel dismissal on mixed batches: cost gap
// and search-size cost of exactness.
func ablationDismissal(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:    "ablation-dismissal",
		Title: "Set-keyed (paper) vs exact-parallel dismissal on mixed batches",
		Headers: []string{"seed", "plain cost", "exact cost", "gap",
			"plain paths", "exact paths"},
	}
	m, err := machineFor(4)
	if err != nil {
		return nil, err
	}
	seeds := 8
	if opts.Quick {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		in, err := workload.SyntheticMixedInstance(12, 2, 3, m, opts.Seed*100+seed)
		if err != nil {
			return nil, err
		}
		run := func(exact bool) (*astar.Result, error) {
			g := graph.New(in.Cost(degradation.ModePC), in.Patterns)
			s, err := astar.NewSolver(g, astar.Options{
				H: astar.HPerProc, Condense: true, UseIncumbent: true, ExactParallel: exact})
			if err != nil {
				return nil, err
			}
			return s.Solve()
		}
		plain, err := run(false)
		if err != nil {
			return nil, err
		}
		exact, err := run(true)
		if err != nil {
			return nil, err
		}
		gap := 0.0
		if exact.Cost > 0 {
			gap = (plain.Cost - exact.Cost) / exact.Cost * 100
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(seed), fmtDeg(plain.Cost), fmtDeg(exact.Cost),
			fmt.Sprintf("%.2f%%", gap),
			fmt.Sprint(plain.Stats.VisitedPaths), fmt.Sprint(exact.Stats.VisitedPaths)})
	}
	rep.Notes = append(rep.Notes,
		"gap 0%: plain dismissal found the optimum anyway; positive gaps are Theorem 1's blind spot under Eq. 13")
	return rep, nil
}

// ablationH compares all four admissible h estimators on one instance
// family: visited paths and time.
func ablationH(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "ablation-h",
		Title:   "h(v) estimators: visited paths and time (serial synthetic, quad-core)",
		Headers: []string{"jobs", "h", "visited paths", "time (s)"},
	}
	m, err := machineFor(4)
	if err != nil {
		return nil, err
	}
	sizes := []int{12, 16}
	if !opts.Quick {
		sizes = append(sizes, 20)
	}
	for _, n := range sizes {
		in, err := workload.SyntheticSerialInstance(n, m, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, h := range []astar.HStrategy{astar.HNone, astar.HStrategy1, astar.HStrategy2, astar.HPerProc} {
			g := graph.New(in.Cost(degradation.ModePC), in.Patterns)
			s, err := astar.NewSolver(g, astar.Options{H: h})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := s.Solve()
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(n), h.String(),
				fmt.Sprint(res.Stats.VisitedPaths), fmtSec(time.Since(start).Seconds())})
		}
	}
	rep.Notes = append(rep.Notes,
		"expected: perproc <= strategy2 <= strategy1 <= none in visited paths")
	return rep, nil
}

// ablationBeam sweeps HA*'s beam width on a large batch: quality vs time.
func ablationBeam(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "ablation-beam",
		Title:   "HA* beam width: schedule quality vs solving time (quad-core)",
		Headers: []string{"jobs", "beam", "avg degradation", "time (s)"},
	}
	m, err := machineFor(4)
	if err != nil {
		return nil, err
	}
	n := 480
	beams := []int{4, 16, 64}
	if opts.Quick {
		n = 120
		beams = []int{4, 16}
	}
	in, err := workload.SyntheticPairwiseInstance(n, m, opts.Seed)
	if err != nil {
		return nil, err
	}
	for _, b := range beams {
		g := graph.New(in.Cost(degradation.ModePC), nil)
		s, err := astar.NewSolver(g, astar.Options{
			H: astar.HPerProcAvg, HWeight: 1.2, KPerLevel: n / 4, BeamWidth: b})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := s.Solve()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(b),
			fmtDeg(res.Cost / float64(len(in.Batch.Jobs))),
			fmtSec(time.Since(start).Seconds())})
	}
	rep.Notes = append(rep.Notes, "expected: wider beams buy small quality gains at roughly linear time cost")
	return rep, nil
}

// ablationOracle measures the additive-pairwise approximation against the
// exact SDC oracle: schedule-quality loss when the fast oracle drives the
// search but the SDC oracle judges the result.
func ablationOracle(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "ablation-oracle",
		Title:   "SDC oracle vs additive pairwise approximation (quad-core)",
		Headers: []string{"seed", "jobs", "SDC-driven cost", "pairwise-driven cost", "excess"},
	}
	m, err := machineFor(4)
	if err != nil {
		return nil, err
	}
	seeds := 5
	if opts.Quick {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		in, err := workload.SyntheticSerialInstance(12, m, opts.Seed*10+seed)
		if err != nil {
			return nil, err
		}
		cost := in.Cost(degradation.ModePC)
		exact, err := solveOA(in, degradation.ModePC)
		if err != nil {
			return nil, err
		}
		// Drive the search with the additive approximation sampled from
		// the SDC oracle, then judge its schedule with the SDC cost.
		pw, err := workload.PairwiseFromOracle(in)
		if err != nil {
			return nil, err
		}
		approx, err := solveOA(pw, degradation.ModePC)
		if err != nil {
			return nil, err
		}
		judged := cost.PartitionCost(approx.Groups)
		excess := 0.0
		if exact.Cost > 0 {
			excess = (judged - exact.Cost) / exact.Cost * 100
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(seed), "12", fmtDeg(exact.Cost), fmtDeg(judged),
			fmt.Sprintf("%.2f%%", excess)})
	}
	rep.Notes = append(rep.Notes,
		"excess is the quality paid for the O(u)-per-query oracle that the large-scale experiments need")
	return rep, nil
}
