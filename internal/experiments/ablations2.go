package experiments

import (
	"fmt"
	"runtime"
	"time"

	"cosched/internal/astar"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/workload"
)

func init() {
	register("ablation-workers", ablationWorkers)
	register("ablation-symmetry", ablationSymmetry)
}

// ablationWorkers measures the worker-parallel expansion (the paper's
// §VII future-work direction): same search, increasing worker counts,
// identical results required.
func ablationWorkers(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "ablation-workers",
		Title:   "Worker-parallel expansion: OA* solve time vs workers (quad-core)",
		Headers: []string{"jobs", "workers", "time (s)", "cost"},
	}
	m, err := machineFor(4)
	if err != nil {
		return nil, err
	}
	n := 16
	if !opts.Quick {
		n = 20
	}
	in, err := workload.SyntheticSerialInstance(n, m, opts.Seed)
	if err != nil {
		return nil, err
	}
	workers := []int{1, 2, 4}
	if max := runtime.NumCPU(); max >= 8 && !opts.Quick {
		workers = append(workers, 8)
	}
	var baseline float64
	for _, w := range workers {
		g := graph.New(in.Cost(degradation.ModePC), in.Patterns)
		s, err := astar.NewSolver(g, astar.Options{
			H: astar.HPerProc, UseIncumbent: true, Workers: w})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := s.Solve()
		if err != nil {
			return nil, err
		}
		if w == 1 {
			baseline = res.Cost
		} else if res.Cost != baseline {
			return nil, fmt.Errorf("ablation-workers: workers=%d changed the optimum", w)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(w),
			fmtSec(time.Since(start).Seconds()), fmtDeg(res.Cost)})
	}
	rep.Notes = append(rep.Notes,
		"results are bit-identical across worker counts (deterministic admission order)")
	return rep, nil
}

// ablationSymmetry isolates this repo's sub-path symmetry machinery
// (PE-rank key canonicalisation + class-based candidate enumeration) on a
// PE-heavy mix: generated sub-paths and time with and without it.
func ablationSymmetry(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "ablation-symmetry",
		Title:   "PE symmetry canonicalisation: search size with and without (quad-core)",
		Headers: []string{"procs/job", "raw generated", "canonical generated", "raw time (s)", "canonical time (s)"},
	}
	m, err := machineFor(4)
	if err != nil {
		return nil, err
	}
	perJob := []int{3, 4}
	if opts.Quick {
		perJob = []int{3}
	}
	for _, k := range perJob {
		in, err := workload.PEMixInstance(k, m)
		if err != nil {
			return nil, err
		}
		run := func(condense bool, cap int64) (*astar.Result, float64, error) {
			g := graph.New(in.Cost(degradation.ModePE), in.Patterns)
			s, err := astar.NewSolver(g, astar.Options{
				H: astar.HPerProc, Condense: condense, UseIncumbent: true,
				MaxExpansions: cap, TimeLimit: 90 * time.Second})
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			res, err := capErr(s.Solve())
			return res, time.Since(start).Seconds(), err
		}
		canonical, tCanon, err := run(true, 4_000_000)
		if err != nil {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("sweep stopped at procs/job=%d: canonical search hit the budget", k))
			break
		}
		rawCell, rawTime := ">cap", ">cap"
		raw, tRaw, err := run(false, 400_000)
		if err == nil {
			rawCell = fmt.Sprint(raw.Stats.Generated)
			rawTime = fmtSec(tRaw)
			if raw.Cost < canonical.Cost-1e-9 {
				return nil, fmt.Errorf("ablation-symmetry: canonical search missed the optimum at k=%d", k)
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(k), rawCell, fmt.Sprint(canonical.Stats.Generated),
			rawTime, fmtSec(tCanon)})
	}
	rep.Notes = append(rep.Notes,
		"canonicalisation collapses equivalent PE-rank permutations; the gap widens with ranks per job")
	return rep, nil
}
