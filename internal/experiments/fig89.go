package experiments

import (
	"fmt"
	"time"

	"cosched/internal/astar"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/workload"
)

func init() {
	register("fig8", fig8)
	register("fig9", fig9)
}

// fig8 reproduces Figure 8: OA*-PC solving time with and without the
// communication-aware process condensation as the number of processes per
// parallel job grows (fixed total process count, 6 PC jobs, quad-core).
func fig8(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig8",
		Title:   "Solving time with and without process condensation (quad-core)",
		Headers: []string{"procs/job", "without (s)", "with (s)", "condensed nodes"},
	}
	// The paper runs 72 processes; exact OA*-PC over six multi-rank PC
	// jobs explodes beyond ~24 processes in this implementation (PC
	// ranks, unlike PE ranks, cannot be canonicalised in the dismissal
	// key), so the sweep is scaled down and the contrast direction is
	// what is reproduced.
	total := 20
	perJob := []int{1, 2, 3}
	if opts.Quick {
		total = 16
		perJob = []int{1, 2}
	}
	m, err := machineFor(4)
	if err != nil {
		return nil, err
	}
	for _, k := range perJob {
		in, err := workload.SyntheticMixedInstance(total, 6, k, m, opts.Seed)
		if err != nil {
			return nil, err
		}
		run := func(condense bool) (float64, int64, error) {
			start := time.Now()
			res, err := capErr(solveOAOpt(in, degradation.ModePC, astar.Options{
				H: astar.HPerProc, Condense: condense, UseIncumbent: true,
				MaxExpansions: 1_000_000, TimeLimit: 90 * time.Second}))
			if err != nil {
				return 0, 0, err
			}
			return time.Since(start).Seconds(), res.Stats.Condensed, nil
		}
		withoutCell := ""
		without, _, err := run(false)
		if err != nil {
			withoutCell = ">cap"
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("procs/job=%d without condensation hit the search budget", k))
		} else {
			withoutCell = fmtSec(without)
		}
		with, condensed, err := run(true)
		if err != nil {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("sweep stopped at procs/job=%d: condensed search hit the budget too", k))
			break
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(k), withoutCell, fmtSec(with), fmt.Sprint(condensed)})
	}
	rep.Notes = append(rep.Notes,
		"paper uses 72 total processes; scaled to keep the exact OA* solves tractable (EXPERIMENTS.md)",
		"expected shape: the condensation advantage grows with processes per parallel job")
	return rep, nil
}

// fig9 reproduces Figure 9: OA* solving-time scalability on dual-core and
// quad-core machines as the number of serial processes grows.
func fig9(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig9",
		Title:   "Scalability of OA* (seconds vs number of serial processes)",
		Headers: []string{"machine", "procs", "time (s)", "visited paths"},
	}
	type sweep struct {
		u     int
		sizes []int
	}
	sweeps := []sweep{
		{u: 2, sizes: []int{12, 24, 36, 48, 60, 72, 84, 96, 108, 120}},
		{u: 4, sizes: []int{12, 16, 20, 24, 28, 32}},
	}
	if opts.Quick {
		sweeps = []sweep{
			{u: 2, sizes: []int{12, 24, 36}},
			{u: 4, sizes: []int{12, 16}},
		}
	}
	budget := 60 * time.Second
	const maxExp = 2_000_000
	for _, sw := range sweeps {
		m, err := machineFor(sw.u)
		if err != nil {
			return nil, err
		}
		for _, n := range sw.sizes {
			in, err := workload.SyntheticPairwiseSmoothInstance(n, m, opts.Seed)
			if err != nil {
				return nil, err
			}
			c := in.Cost(degradation.ModePC)
			g := graph.New(c, in.Patterns)
			s, err := astar.NewSolver(g, astar.Options{
				H: astar.HPerProc, UseIncumbent: true, Parallelism: activeParallelism,
				MaxExpansions: maxExp, TimeLimit: 90 * time.Second})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := capErr(s.Solve())
			el := time.Since(start)
			if err != nil {
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("%d-core sweep stopped at %d processes (expansion cap %d)", sw.u, n, maxExp))
				break
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%d-core", sw.u), fmt.Sprint(n),
				fmtSec(el.Seconds()), fmt.Sprint(res.Stats.VisitedPaths)})
			if el > budget {
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("%d-core sweep stopped at %d processes (per-point budget %v exceeded)", sw.u, n, budget))
				break
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: solving time grows steeply with n and with the core count")
	return rep, nil
}
