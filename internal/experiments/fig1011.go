package experiments

import (
	"fmt"

	"cosched/internal/degradation"
	"cosched/internal/job"
	"cosched/internal/pg"
	"cosched/internal/workload"
)

func init() {
	register("fig10", fig10)
	register("fig11", fig11)
}

// fig10 reproduces Figure 10: per-application degradation of the twelve
// NPB/SPEC benchmarks on quad-core machines under OA*, HA* and PG.
func fig10(opts RunOptions) (*Report, error) {
	return benchmarkComparison("fig10", 4, workload.Fig10Names(), opts)
}

// fig11 reproduces Figure 11: the sixteen-application comparison on
// 8-core machines.
func fig11(opts RunOptions) (*Report, error) {
	return benchmarkComparison("fig11", 8, workload.Fig11Names(), opts)
}

func benchmarkComparison(id string, u int, names []string, opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      id,
		Title:   fmt.Sprintf("Per-application degradation under OA*, HA* and PG (%d-core)", u),
		Headers: []string{"job", "OA*", "HA*", "PG"},
	}
	if opts.Quick && len(names) > 8 {
		names = names[:8]
	}
	m, err := machineFor(u)
	if err != nil {
		return nil, err
	}
	in, err := workload.SerialInstance(names, m)
	if err != nil {
		return nil, err
	}
	oa, err := solveOA(in, degradation.ModePC)
	if err != nil {
		return nil, err
	}
	ha, err := solveHA(in, degradation.ModePC)
	if err != nil {
		return nil, err
	}
	pgRes := pg.Solve(in.Cost(degradation.ModePC))

	c := in.Cost(degradation.ModePC)
	pers := []map[job.JobID]float64{
		c.PerJobDegradation(oa.Groups),
		c.PerJobDegradation(ha.Groups),
		c.PerJobDegradation(pgRes.Groups),
	}
	avgs := make([]float64, 3)
	for _, j := range in.Batch.Jobs {
		row := []string{j.Name}
		for i := range pers {
			d := pers[i][j.ID]
			avgs[i] += d
			row = append(row, fmtDeg(d))
		}
		rep.Rows = append(rep.Rows, row)
	}
	row := []string{"AVG"}
	for i := range avgs {
		row = append(row, fmtDeg(avgs[i]/float64(len(in.Batch.Jobs))))
	}
	rep.Rows = append(rep.Rows, row)
	rep.Notes = append(rep.Notes,
		"expected shape: AVG(OA*) <= AVG(HA*) <= AVG(PG), HA* within ~10% of OA* (paper: 9.8% quad, 4.6% 8-core; PG 12-15% worse)")
	return rep, nil
}
