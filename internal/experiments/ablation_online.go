package experiments

import (
	"fmt"
	"math/rand"

	"cosched/internal/astar"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/online"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

func init() {
	register("ablation-online", ablationOnline)
}

// ablationOnline quantifies the paper's motivating gap (§I): how far
// online placement policies sit from the offline optimum. Jobs arrive as
// a Poisson stream; each policy's mean turnaround is reported next to the
// offline OA* schedule's contention cost on the same batch.
func ablationOnline(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "ablation-online",
		Title:   "Online policies vs the offline OA* target (quad-core, Poisson arrivals)",
		Headers: []string{"seed", "policy", "mean turnaround (s)", "makespan (s)"},
	}
	m, err := machineFor(4)
	if err != nil {
		return nil, err
	}
	nJobs := 16
	seeds := 3
	if opts.Quick {
		nJobs = 12
		seeds = 2
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		in, err := workload.SyntheticSerialInstance(nJobs, m, opts.Seed*10+seed)
		if err != nil {
			return nil, err
		}
		c := in.Cost(degradation.ModePC)
		machines := nJobs / 4
		arrivals := online.PoissonArrivals(nJobs, 6, seed)
		for _, p := range []online.Policy{
			online.FirstFit{},
			online.Spread{},
			online.ContentionAware{},
			online.Random{Rng: rand.New(rand.NewSource(seed))},
		} {
			res, err := online.Simulate(c, in.SoloTime, machines, arrivals, p)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(seed), res.Policy,
				fmt.Sprintf("%.1f", res.MeanTurnaround),
				fmt.Sprintf("%.1f", res.Makespan)})
		}
		// The offline target: the optimal static co-schedule of the
		// same batch, executed.
		g := graph.New(c, in.Patterns)
		s, err := astar.NewSolver(g, astar.Options{H: astar.HPerProc, UseIncumbent: true})
		if err != nil {
			return nil, err
		}
		opt, err := s.Solve()
		if err != nil {
			return nil, err
		}
		exec, err := sim.Run(c, sim.SoloTimeFunc(in.SoloTime), opt.Groups)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(seed), "offline OA* (batch)",
			fmt.Sprintf("%.1f", exec.MeanJobFinish()),
			fmt.Sprintf("%.1f", exec.Makespan)})
	}
	rep.Notes = append(rep.Notes,
		"the offline row assumes all jobs present at t=0: the floor online policies chase (§I)")
	return rep, nil
}
