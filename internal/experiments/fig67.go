package experiments

import (
	"fmt"
	"sort"

	"cosched/internal/degradation"
	"cosched/internal/job"
	"cosched/internal/workload"
)

func init() {
	register("fig6", fig6)
	register("fig7", fig7)
}

// fig6 reproduces Figure 6: the benefit of the parallel-aware path
// distance (Eq. 13) for PE jobs. OA*-SE optimises the plain sum (Eq. 12)
// while OA*-PE optimises per-job maxima; both schedules are then
// evaluated under the PE objective per benchmark and on average.
func fig6(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig6",
		Title:   "Degradation under OA*-PE vs OA*-SE (PE + serial mix)",
		Headers: []string{"machine", "job", "OA*-PE", "OA*-SE"},
	}
	// The paper runs 10 processes per PE job (55 processes in all); the
	// exact searches here stay laptop-scale at 4 (25 processes), which
	// preserves the SE-vs-PE contrast (EXPERIMENTS.md).
	procsPerJob := 4
	machines := []int{4, 8}
	if opts.Quick {
		procsPerJob = 3
		machines = []int{4}
	}
	for _, u := range machines {
		m, err := machineFor(u)
		if err != nil {
			return nil, err
		}
		in, err := workload.PEMixInstance(procsPerJob, m)
		if err != nil {
			return nil, err
		}
		pe, err := solveOAPlain(in, degradation.ModePE)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%d-core arm skipped: %v", u, err))
			continue
		}
		se, err := solveOAPlain(in, degradation.ModeSE)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%d-core arm skipped: %v", u, err))
			continue
		}
		if err := appendPerJobRows(rep, in, degradation.ModePE, fmt.Sprintf("%d-core", u),
			[][][]job.ProcID{pe.Groups, se.Groups}); err != nil {
			return nil, err
		}
	}
	rep.Notes = append(rep.Notes,
		"both schedules evaluated under the Eq. 13 per-job-max objective (Eq. 1 degradations)",
		"expected shape: OA*-SE average worse than OA*-PE by tens of percent (paper: 31.9% quad, 34.8% 8-core)")
	return rep, nil
}

// fig7 reproduces Figure 7: the benefit of folding communication into the
// degradation (Eq. 9) for PC jobs. OA*-PE ignores communication when
// optimising; OA*-PC includes it; both are evaluated under the full
// communication-combined objective.
func fig7(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "fig7",
		Title:   "Communication-combined degradation under OA*-PC vs OA*-PE (PC + serial mix)",
		Headers: []string{"machine", "job", "OA*-PC", "OA*-PE"},
	}
	// The paper runs 11 processes per MPI job. Two deviations keep the
	// exact OA*-PC search feasible and the contrast honest
	// (EXPERIMENTS.md): (1) 11 is prime, so its near-square
	// decomposition is a chain whose rank adjacency coincides with
	// process-ID order, letting the comm-oblivious schedule look
	// comm-friendly by tie-breaking luck — 4-process jobs give genuine
	// 2x2 grids; (2) PC ranks cannot be canonicalised in the dismissal
	// key, so larger jobs put the exact search out of laptop reach.
	procsPerJob := 4
	machines := []int{4, 8}
	if opts.Quick {
		machines = []int{4}
	}
	for _, u := range machines {
		m, err := machineFor(u)
		if err != nil {
			return nil, err
		}
		in, err := workload.PCMixInstance(procsPerJob, m)
		if err != nil {
			return nil, err
		}
		pc, err := solveOAPlain(in, degradation.ModePC)
		if err != nil {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("%d-core arm skipped: %v", u, err))
			continue
		}
		pe, err := solveOAPlain(in, degradation.ModePE)
		if err != nil {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("%d-core arm skipped: %v", u, err))
			continue
		}
		if err := appendPerJobRows(rep, in, degradation.ModePC, fmt.Sprintf("%d-core", u),
			[][][]job.ProcID{pc.Groups, pe.Groups}); err != nil {
			return nil, err
		}
	}
	rep.Notes = append(rep.Notes,
		"both schedules evaluated under the Eq. 9 + Eq. 13 objective",
		"expected shape: OA*-PE average worse than OA*-PC by tens of percent (paper: 36.1% quad, 39.5% 8-core)")
	return rep, nil
}

// appendPerJobRows evaluates several schedules of the same instance under
// one objective and appends one row per job plus the AVG row.
func appendPerJobRows(rep *Report, in *workload.Instance, mode degradation.Mode,
	machine string, groups [][][]job.ProcID) error {
	c := in.Cost(mode)
	pers := make([]map[job.JobID]float64, len(groups))
	for i, g := range groups {
		if err := c.ValidatePartition(g); err != nil {
			return err
		}
		pers[i] = c.PerJobDegradation(g)
	}
	jobs := append([]job.Job(nil), in.Batch.Jobs...)
	sort.SliceStable(jobs, func(a, b int) bool {
		// parallel jobs first, then serial, preserving insertion order
		pa, pb := jobs[a].Kind != job.Serial, jobs[b].Kind != job.Serial
		if pa != pb {
			return pa
		}
		return jobs[a].ID < jobs[b].ID
	})
	avgs := make([]float64, len(groups))
	for _, j := range jobs {
		row := []string{machine, j.Name}
		for i := range groups {
			d := pers[i][j.ID]
			avgs[i] += d
			row = append(row, fmtDeg(d))
		}
		rep.Rows = append(rep.Rows, row)
	}
	row := []string{machine, "AVG"}
	for i := range avgs {
		row = append(row, fmtDeg(avgs[i]/float64(len(jobs))))
	}
	rep.Rows = append(rep.Rows, row)
	return nil
}
