package experiments

import (
	"fmt"
	"math"

	"cosched/internal/cache"
	"cosched/internal/cachesim"
	"cosched/internal/sdprof"
)

func init() {
	register("ablation-sdc", ablationSDC)
}

// ablationSDC measures the SDC prediction model [14] against direct cache
// simulation: for K random victim/aggressor stream pairs, the victim's
// stack distance profile is *measured* (internal/sdprof, the gcc-slo
// role), its co-run degradation *predicted* by SDC, and the same co-run
// *simulated* exactly (internal/cachesim). Reported per pair: predicted
// vs simulated degradation; the summary row gives the rank agreement
// across pairs — the property the co-schedulers actually rely on.
func ablationSDC(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "ablation-sdc",
		Title:   "SDC prediction vs direct cache simulation (victim degradation)",
		Headers: []string{"pair", "victim ws", "aggr ws", "predicted", "simulated"},
	}
	g := cachesim.Geometry{Sets: 64, Ways: 8, LineBytes: 64, MissPenaltyCycles: 200}
	m := &cache.Machine{Name: "sim", Cores: 2,
		SharedCacheBytes: g.Sets * g.Ways * g.LineBytes, Ways: g.Ways,
		LineBytes: g.LineBytes, MissPenaltyCycles: g.MissPenaltyCycles, ClockGHz: 2}
	pairs := 8
	accesses := 20000
	if opts.Quick {
		pairs = 4
		accesses = 8000
	}

	type sample struct{ pred, sim float64 }
	var samples []sample
	for i := 0; i < pairs; i++ {
		seed := opts.Seed*100 + int64(i)
		vWS := 256 + (i%4)*96   // victim working sets around the cache size
		aWS := 512 + (i%5)*1024 // aggressors from mild to flooding
		vRate := 4.0 + float64(i%3)*3
		aRate := 2.0 + float64(i%4)*5

		victim := func() *cachesim.Stream {
			st, _ := cachesim.NewStream(seed, 0, vWS, vWS/8, 0.7, vRate)
			return st
		}
		aggr := func() *cachesim.Stream {
			st, _ := cachesim.NewStream(seed+50, 1<<30, aWS, aWS/8, 0.5, aRate)
			return st
		}

		// Measure profiles (the profiling pipeline).
		profile := func(st *cachesim.Stream, rate float64) (*cache.Profile, error) {
			rec, err := sdprof.MeasureStream(st, g.LineBytes, g.Sets*g.Ways*2, accesses)
			if err != nil {
				return nil, err
			}
			return rec.Profile("m", g.Sets, g.Ways, rate, 1e9)
		}
		vp, err := profile(victim(), vRate)
		if err != nil {
			return nil, err
		}
		ap, err := profile(aggr(), aRate)
		if err != nil {
			return nil, err
		}
		pred := cache.CoRunDegradations(m, []*cache.Profile{vp, ap})[0]

		// Simulate the co-run directly.
		solo, err := cachesim.SoloMissRatio(g, victim(), accesses)
		if err != nil {
			return nil, err
		}
		co, err := cachesim.CoRunMissRatios(g, []*cachesim.Stream{victim(), aggr()}, accesses)
		if err != nil {
			return nil, err
		}
		simD := cachesim.Degradation(g, victim(), solo, co[0])

		samples = append(samples, sample{pred: pred, sim: simD})
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(i + 1), fmt.Sprint(vWS), fmt.Sprint(aWS),
			fmtDeg(pred), fmtDeg(simD)})
	}

	// Rank agreement (Kendall-style over all pairs of samples).
	agree, total := 0, 0
	for i := 0; i < len(samples); i++ {
		for j := i + 1; j < len(samples); j++ {
			if math.Abs(samples[i].sim-samples[j].sim) < 1e-9 {
				continue
			}
			total++
			if (samples[i].pred > samples[j].pred) == (samples[i].sim > samples[j].sim) {
				agree++
			}
		}
	}
	if total > 0 {
		rep.Rows = append(rep.Rows, []string{"rank agreement", "-", "-",
			fmt.Sprintf("%d/%d", agree, total),
			fmt.Sprintf("%.0f%%", 100*float64(agree)/float64(total))})
	}
	rep.Notes = append(rep.Notes,
		"the schedulers need ordering fidelity, not absolute accuracy; SDC's known bias (it ignores timing interleaving) shows in the absolute values")
	return rep, nil
}
