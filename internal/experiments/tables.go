package experiments

import (
	"fmt"
	"time"

	"cosched/internal/astar"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/ip"
	"cosched/internal/osvp"
	"cosched/internal/workload"
)

func init() {
	register("table1", table1)
	register("table2", table2)
	register("table3", table3)
	register("table4", table4)
}

// table1 reproduces Table I: OA* and the IP method must report identical
// average degradations for all-serial batches of 8/12/16 jobs on
// dual-core and quad-core machines.
func table1(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "table1",
		Title:   "Comparison between OA* and IP for serial jobs (avg degradation)",
		Headers: []string{"jobs", "dual IP", "dual OA*", "quad IP", "quad OA*"},
	}
	sizes := []int{8, 12, 16}
	if opts.Quick {
		sizes = []int{8, 12}
	}
	for _, n := range sizes {
		row := []string{fmt.Sprint(n)}
		for _, u := range []int{2, 4} {
			m, err := machineFor(u)
			if err != nil {
				return nil, err
			}
			in, err := workload.TableIInstance(n, m)
			if err != nil {
				return nil, err
			}
			ipRes, err := solveIPBest(in, degradation.ModePC, 5*time.Minute)
			if err != nil {
				return nil, err
			}
			oaRes, err := solveOA(in, degradation.ModePC)
			if err != nil {
				return nil, err
			}
			row = append(row,
				fmtDeg(avgJobDegradation(in, degradation.ModePC, ipRes.Groups)),
				fmtDeg(avgJobDegradation(in, degradation.ModePC, oaRes.Groups)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "expected shape: IP and OA* columns identical per machine (both optimal)")
	return rep, nil
}

// table2 reproduces Table II: the same optimality check for the mixed
// serial + parallel batches (MG-Par and LU-Par with 2-4 processes).
func table2(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:      "table2",
		Title:   "Comparison of IP and OA* for serial and parallel jobs (avg degradation)",
		Headers: []string{"procs", "dual IP", "dual OA*", "quad IP", "quad OA*"},
	}
	sizes := []int{8, 12, 16}
	if opts.Quick {
		sizes = []int{8, 12}
	}
	for _, n := range sizes {
		row := []string{fmt.Sprint(n)}
		for _, u := range []int{2, 4} {
			m, err := machineFor(u)
			if err != nil {
				return nil, err
			}
			in, err := workload.TableIIInstance(n, m)
			if err != nil {
				return nil, err
			}
			ipRes, err := solveIPBest(in, degradation.ModePC, 5*time.Minute)
			if err != nil {
				return nil, err
			}
			oaRes, err := solveOA(in, degradation.ModePC)
			if err != nil {
				return nil, err
			}
			row = append(row,
				fmtDeg(avgJobDegradation(in, degradation.ModePC, ipRes.Groups)),
				fmtDeg(avgJobDegradation(in, degradation.ModePC, oaRes.Groups)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "expected shape: IP and OA* columns identical per machine (both optimal)")
	return rep, nil
}

// table3 reproduces Table III: solving time of the four IP solver
// configurations, OA* and O-SVP on quad-core machines for 8/12/16
// processes in serial (se), serial+PE (pe) and serial+PC (pc) mixes.
func table3(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:    "table3",
		Title: "Efficiency of the methods on quad-core machines (seconds)",
		Headers: []string{"batch",
			ip.ConfigA.Name, ip.ConfigB.Name, ip.ConfigC.Name, ip.ConfigD.Name,
			"OA*", "O-SVP"},
	}
	m, err := machineFor(4)
	if err != nil {
		return nil, err
	}
	sizes := []int{8, 12, 16}
	if opts.Quick {
		sizes = []int{8, 12}
	}
	ipLimit := 60 * time.Second
	for _, n := range sizes {
		for _, kind := range []string{"se", "pe", "pc"} {
			var in *workload.Instance
			var err error
			switch kind {
			case "se":
				in, err = workload.TableIInstance(n, m)
			case "pe":
				in, err = tableIIPEInstance(n, m)
			case "pc":
				in, err = workload.TableIIInstance(n, m)
			}
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%d(%s)", n, kind)}
			// Warm the degradation cache once so every solver below is
			// timed on model work, not on first-touch oracle queries.
			if _, err := ip.BuildModel(in.Cost(degradation.ModePC)); err != nil {
				return nil, err
			}
			for _, cfg := range ip.Configs() {
				cfg.TimeLimit = ipLimit
				start := time.Now()
				model, err := ip.BuildModel(in.Cost(degradation.ModePC))
				if err != nil {
					return nil, err
				}
				res, err := ip.Solve(model, cfg)
				el := time.Since(start).Seconds()
				cell := fmtSec(el)
				if err != nil || (res != nil && res.Stats.TimedOut) {
					cell = ">" + fmtSec(ipLimit.Seconds())
				}
				row = append(row, cell)
			}
			start := time.Now()
			if _, err := solveOA(in, degradation.ModePC); err != nil {
				return nil, err
			}
			row = append(row, fmtSec(time.Since(start).Seconds()))
			start = time.Now()
			g := graph.New(in.Cost(degradation.ModePC), in.Patterns)
			if _, err := osvp.Solve(g); err != nil {
				return nil, err
			}
			row = append(row, fmtSec(time.Since(start).Seconds()))
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"CPLEX/CBC/SCIP/GLPK are reproduced by four configurations of this repo's pure-Go branch-and-bound (DESIGN.md §3)",
		"expected shape: OA* fastest, O-SVP close behind, every IP configuration slower")
	return rep, nil
}

// table4 reproduces Table IV: solving time and visited paths of OA* under
// h Strategy 1 vs Strategy 2 vs O-SVP on 16/20/24 synthetic serial jobs
// (quad-core).
func table4(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:    "table4",
		Title: "h(v) strategies: solving time (s) and visited paths (quad-core)",
		Headers: []string{"jobs", "time S1", "time S2", "time O-SVP",
			"paths S1", "paths S2", "paths O-SVP"},
	}
	m, err := machineFor(4)
	if err != nil {
		return nil, err
	}
	// The paper runs 16/20/24 jobs; exact search on our continuous
	// synthetic data grows steeply past 20 (EXPERIMENTS.md), so the
	// sweep tops out there.
	sizes := []int{12, 16, 20}
	if opts.Quick {
		sizes = []int{12, 16}
	}
	for _, n := range sizes {
		in, err := workload.SyntheticSerialInstance(n, m, opts.Seed)
		if err != nil {
			return nil, err
		}
		type meas struct {
			sec   float64
			paths int64
		}
		run := func(o astar.Options) (meas, error) {
			o.Parallelism = activeParallelism
			g := graph.New(in.Cost(degradation.ModePC), in.Patterns)
			s, err := astar.NewSolver(g, o)
			if err != nil {
				return meas{}, err
			}
			start := time.Now()
			res, err := s.Solve()
			if err != nil {
				return meas{}, err
			}
			return meas{sec: time.Since(start).Seconds(), paths: res.Stats.VisitedPaths}, nil
		}
		s1, err := run(astar.Options{H: astar.HStrategy1})
		if err != nil {
			return nil, err
		}
		s2, err := run(astar.Options{H: astar.HStrategy2})
		if err != nil {
			return nil, err
		}
		sv, err := run(astar.Options{H: astar.HNone})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n),
			fmtSec(s1.sec), fmtSec(s2.sec), fmtSec(sv.sec),
			fmt.Sprint(s1.paths), fmt.Sprint(s2.paths), fmt.Sprint(sv.paths),
		})
	}
	rep.Notes = append(rep.Notes,
		"expected shape: Strategy 2 visits far fewer paths than Strategy 1; O-SVP (h=0) visits the most")
	return rep, nil
}
