package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"ablation-beam", "ablation-dismissal", "ablation-h", "ablation-online",
		"ablation-oracle", "ablation-sdc", "ablation-symmetry", "ablation-workers"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v; want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs[%d] = %q; want %q (canonical order)", i, ids[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("table9", RunOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{
		ID:      "x",
		Title:   "demo",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	out := rep.String()
	for _, want := range []string{"=== x: demo ===", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("report rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTable1QuickShape(t *testing.T) {
	rep, err := Run("table1", RunOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rep.Rows {
		if len(row) != 5 {
			t.Fatalf("row %v has %d cells", row, len(row))
		}
		// IP and OA* must agree per machine (both exact).
		if row[1] != row[2] {
			t.Errorf("dual-core IP %s != OA* %s", row[1], row[2])
		}
		if row[3] != row[4] {
			t.Errorf("quad-core IP %s != OA* %s", row[3], row[4])
		}
	}
}

func TestTable2QuickShape(t *testing.T) {
	rep, err := Run("table2", RunOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[1] != row[2] || row[3] != row[4] {
			t.Errorf("IP and OA* disagree in row %v", row)
		}
	}
}

func TestFig10QuickShape(t *testing.T) {
	rep, err := Run("fig10", RunOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last[0] != "AVG" {
		t.Fatalf("last row %v is not AVG", last)
	}
	oa, _ := strconv.ParseFloat(last[1], 64)
	ha, _ := strconv.ParseFloat(last[2], 64)
	pg, _ := strconv.ParseFloat(last[3], 64)
	if !(oa <= ha+1e-9) {
		t.Errorf("AVG(OA*)=%v > AVG(HA*)=%v", oa, ha)
	}
	if !(oa <= pg+1e-9) {
		t.Errorf("AVG(OA*)=%v > AVG(PG)=%v", oa, pg)
	}
}

func TestFig12QuickShape(t *testing.T) {
	rep, err := Run("fig12", RunOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		ha, _ := strconv.ParseFloat(row[2], 64)
		pg, _ := strconv.ParseFloat(row[3], 64)
		if ha >= pg {
			t.Errorf("HA* %v not better than PG %v in row %v", ha, pg, row)
		}
	}
}

func TestFig13QuickShape(t *testing.T) {
	rep, err := Run("fig13", RunOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 2 {
		t.Fatal("too few rows")
	}
	for _, row := range rep.Rows {
		if _, err := strconv.ParseFloat(row[2], 64); err != nil {
			t.Errorf("time cell %q not numeric", row[2])
		}
	}
}

func TestFig5QuickShape(t *testing.T) {
	rep, err := Run("fig5", RunOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		pct := strings.TrimSuffix(row[6], "%")
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			t.Fatalf("P[gap<=5%%] cell %q not a percentage", row[6])
		}
		if v < 80 {
			t.Errorf("P[gap <= 5%%] = %v%% in row %v; the trimming hypothesis should hold for most graphs", v, row)
		}
	}
}
