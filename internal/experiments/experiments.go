// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each experiment is registered under the paper's label
// ("table1".."table4", "fig5".."fig13") and produces a Report whose rows
// mirror the published table/series; EXPERIMENTS.md records paper-vs-
// measured for each. Run them through cmd/experiments or the root
// bench_test.go harness.
package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cosched/internal/telemetry"
)

// RunOptions scales an experiment run.
type RunOptions struct {
	// Quick shrinks graph counts and sweep ranges so the experiment
	// finishes in benchmark-friendly time; the full configuration
	// matches the paper as closely as feasibility allows (deviations
	// are printed in the report notes and recorded in EXPERIMENTS.md).
	Quick bool
	// Seed drives all synthetic workload generation.
	Seed int64
	// Verbose adds per-iteration detail rows where applicable.
	Verbose bool
	// Metrics, when non-nil, receives live solver telemetry (the
	// "astar.*" and "ip.*" families of DESIGN.md §6) from the searches
	// and branch-and-bound solves the experiment performs. Intended for
	// cmd/experiments' -debug-addr endpoint; experiments sharing one
	// registry accumulate into the same counters.
	Metrics *telemetry.Registry
	// Events, when non-nil, receives the JSONL event trace of every
	// solve the experiment performs (cmd/experiments' -trace flag).
	// Solves are distinguished by their self-assigned solve_id, so one
	// sink may span many experiments; split with coschedtrace.
	Events telemetry.EventSink
	// Parallelism sets the graph searches' expansion-worker count
	// (cmd/experiments -parallel, scripts/benchdiff.sh --workers). 0 and
	// 1 run the exact sequential path; ineligible configurations fall
	// back to it silently, so timing columns stay comparable.
	Parallelism int
}

// activeMetrics / activeSink carry the currently running experiment's
// observation hooks; Run installs them so the solve helpers can attach
// telemetry without every runner threading them explicitly. Experiments
// run one at a time per process (cmd/experiments), so plain package
// variables suffice.
var (
	activeMetrics *telemetry.Registry
	activeSink    telemetry.EventSink
	// activeParallelism is RunOptions.Parallelism for the running
	// experiment, applied by the solve helpers to every graph search
	// that does not pick its own worker count.
	activeParallelism int
)

// Report is the regenerated table/figure.
type Report struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// JSON renders the report as indented JSON for machine consumption.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Runner regenerates one experiment.
type Runner func(RunOptions) (*Report, error)

var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs lists the registered experiment labels in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return orderKey(ids[i]) < orderKey(ids[j]) })
	return ids
}

func orderKey(id string) string {
	// tables, then figures, then ablations; numeric order within
	var kind string
	var num int
	switch {
	case strings.HasPrefix(id, "table"):
		kind = "a"
		fmt.Sscanf(id, "table%d", &num)
	case strings.HasPrefix(id, "fig"):
		kind = "b"
		fmt.Sscanf(id, "fig%d", &num)
	default:
		return "c" + id
	}
	return fmt.Sprintf("%s%03d", kind, num)
}

// Run regenerates one experiment by label.
func Run(id string, opts RunOptions) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	activeMetrics = opts.Metrics
	activeSink = opts.Events
	activeParallelism = opts.Parallelism
	defer func() { activeMetrics, activeSink, activeParallelism = nil, nil, 0 }()
	rep, err := r(opts)
	if ferr := telemetry.FlushSink(opts.Events); err == nil && ferr != nil {
		return rep, fmt.Errorf("experiments: flushing event trace: %w", ferr)
	}
	return rep, err
}

// fmtSec renders seconds with adaptive precision.
func fmtSec(sec float64) string {
	switch {
	case sec < 0.001:
		return fmt.Sprintf("%.5f", sec)
	case sec < 1:
		return fmt.Sprintf("%.4f", sec)
	default:
		return fmt.Sprintf("%.2f", sec)
	}
}

// fmtDeg renders a degradation value.
func fmtDeg(d float64) string { return fmt.Sprintf("%.4f", d) }
