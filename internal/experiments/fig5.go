package experiments

import (
	"fmt"
	"sort"

	"cosched/internal/astar"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/workload"
)

func init() {
	register("fig5", fig5)
}

// fig5 reproduces Figure 5's finding in its operational form. The paper
// records the Maximum Effective Rank of the optimal path over K random
// graphs and concludes that trimming each level to the first n/u valid
// nodes (by weight) almost always preserves the shortest path. The rank
// statistic itself rides on the heavy cost ties of their
// hardware-counter-derived data — on continuous synthetic data the rank
// of a co-optimal node is essentially arbitrary — so this experiment
// measures what the statistic is *used for* directly: the optimality gap
// of the trimmed search at the paper's budget,
//
//	gap(n/u) = (HA*(k = n/u) cost - OA* cost) / OA* cost,
//
// over K random graphs per configuration. The paper's hypothesis
// corresponds to this gap being zero or tiny for almost all graphs.
func fig5(opts RunOptions) (*Report, error) {
	rep := &Report{
		ID:    "fig5",
		Title: "Optimality gap of the n/u-trimmed search over random graphs",
		Headers: []string{"machine", "jobs", "graphs", "n/u", "P[gap=0]",
			"P[gap<=1%]", "P[gap<=5%]", "median gap", "max gap"},
	}
	type cfg struct {
		u      int
		sizes  []int
		graphs int
	}
	cfgs := []cfg{
		{u: 4, sizes: []int{12, 16, 20}, graphs: 12},
		{u: 8, sizes: []int{16}, graphs: 10},
	}
	if opts.Quick {
		cfgs = []cfg{
			{u: 4, sizes: []int{12, 16}, graphs: 8},
			{u: 8, sizes: []int{16}, graphs: 4},
		}
	}
	for _, c := range cfgs {
		m, err := machineFor(c.u)
		if err != nil {
			return nil, err
		}
		for _, n := range c.sizes {
			var gaps []float64
			for gi := 0; gi < c.graphs; gi++ {
				in, err := workload.SyntheticPairwiseSmoothInstance(n, m, opts.Seed+int64(1000*n+gi))
				if err != nil {
					return nil, err
				}
				opt, err := solveOACapped(in, degradation.ModePC)
				if err != nil {
					return nil, err
				}
				g := graph.New(in.Cost(degradation.ModePC), in.Patterns)
				s, err := astar.NewSolver(g, astar.Options{
					H: astar.HPerProc, KPerLevel: n / c.u, UseIncumbent: true})
				if err != nil {
					return nil, err
				}
				ha, err := s.Solve()
				if err != nil {
					return nil, err
				}
				gap := 0.0
				if opt.Cost > 0 {
					gap = (ha.Cost - opt.Cost) / opt.Cost
				}
				gaps = append(gaps, gap)
			}
			sort.Float64s(gaps)
			atMost := func(x float64) float64 {
				cnt := 0
				for _, g := range gaps {
					if g <= x+1e-12 {
						cnt++
					}
				}
				return 100 * float64(cnt) / float64(len(gaps))
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%d-core", c.u),
				fmt.Sprint(n),
				fmt.Sprint(len(gaps)),
				fmt.Sprint(n / c.u),
				fmt.Sprintf("%.1f%%", atMost(0)),
				fmt.Sprintf("%.1f%%", atMost(0.01)),
				fmt.Sprintf("%.1f%%", atMost(0.05)),
				fmt.Sprintf("%.2f%%", gaps[len(gaps)/2]*100),
				fmt.Sprintf("%.2f%%", gaps[len(gaps)-1]*100),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"gap(n/u) reformulates the paper's MER statistic operationally (see EXPERIMENTS.md)",
		"expected shape: gaps at or near zero for almost all graphs, justifying HA*'s per-level budget")
	return rep, nil
}
