package comm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoordsRankRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := make([]int, 1+rng.Intn(3))
		n := 1
		for i := range dims {
			dims[i] = 1 + rng.Intn(4)
			n *= dims[i]
		}
		halo := make([]float64, len(dims))
		pt := &Pattern{Dims: dims, HaloBytes: halo}
		for r := 0; r < n; r++ {
			if pt.Rank(pt.Coords(r)) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighbors2DInterior(t *testing.T) {
	// 3x3 grid, rank 4 is the centre: p5 of the paper's Fig. 2.
	pt := Grid2D(3, 3, 100, 200)
	nbs := pt.Neighbors(4)
	if len(nbs) != 4 {
		t.Fatalf("centre of 3x3 has %d neighbours; want 4", len(nbs))
	}
	wantRanks := map[int]bool{1: true, 3: true, 5: true, 7: true}
	var xBytes, yBytes float64
	for _, nb := range nbs {
		if !wantRanks[nb.Rank] {
			t.Errorf("unexpected neighbour rank %d", nb.Rank)
		}
		switch nb.Dim {
		case 0:
			xBytes += nb.Bytes
		case 1:
			yBytes += nb.Bytes
		}
	}
	if xBytes != 200 || yBytes != 400 {
		t.Errorf("x/y volumes = %v/%v; want 200/400", xBytes, yBytes)
	}
}

func TestNeighborsCornerAndEdge(t *testing.T) {
	pt := Grid2D(3, 3, 1, 1)
	if got := len(pt.Neighbors(0)); got != 2 {
		t.Errorf("corner has %d neighbours; want 2", got)
	}
	if got := len(pt.Neighbors(1)); got != 3 {
		t.Errorf("edge has %d neighbours; want 3", got)
	}
}

func TestNeighbors1DAnd3D(t *testing.T) {
	line := Grid1D(5, 10)
	if got := len(line.Neighbors(2)); got != 2 {
		t.Errorf("1D interior has %d neighbours; want 2", got)
	}
	if got := len(line.Neighbors(0)); got != 1 {
		t.Errorf("1D end has %d neighbours; want 1", got)
	}
	cube := Grid3D(3, 3, 3, 1, 1, 1)
	if got := len(cube.Neighbors(13)); got != 6 { // centre of 3x3x3
		t.Errorf("3D centre has %d neighbours; want 6", got)
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	// Property: if a is a neighbour of b, b is a neighbour of a with the
	// same volume.
	pt := Grid3D(2, 3, 2, 5, 7, 11)
	n := pt.NumRanks()
	for a := 0; a < n; a++ {
		for _, nb := range pt.Neighbors(a) {
			found := false
			for _, back := range pt.Neighbors(nb.Rank) {
				if back.Rank == a && back.Bytes == nb.Bytes && back.Dim == nb.Dim {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbour relation not symmetric between %d and %d", a, nb.Rank)
			}
		}
	}
}

func TestTimeMatchesPaperExample(t *testing.T) {
	// Paper Fig. 2: 3x3 decomposition, p5 (rank 4) co-scheduled with p6
	// (rank 5). Its communication is alpha5(1)+alpha5(3)+alpha5(4): both
	// x-direction... wait: p5 communicates with p2,p4,p6,p8; p6 is local.
	// Remaining: p4 (x), p2 and p8 (y). With haloX=hx and haloY=hy the
	// time is (hx + 2*hy)/B.
	hx, hy := 100.0, 200.0
	pt := Grid2D(3, 3, hx, hy)
	b := 1000.0
	got := pt.Time(4, map[int]bool{5: true}, b)
	want := (hx + 2*hy) / b
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Time = %v; want %v", got, want)
	}
}

func TestTimeAllNeighboursLocalIsZero(t *testing.T) {
	pt := Grid1D(3, 50)
	got := pt.Time(1, map[int]bool{0: true, 2: true}, 10)
	if got != 0 {
		t.Errorf("Time with all neighbours local = %v; want 0", got)
	}
}

func TestTimeNilPatternAndZeroBandwidth(t *testing.T) {
	var pt *Pattern
	if got := pt.Time(0, nil, 10); got != 0 {
		t.Errorf("nil pattern Time = %v", got)
	}
	g := Grid1D(2, 10)
	if got := g.Time(0, nil, 0); got != 0 {
		t.Errorf("zero-bandwidth Time = %v", got)
	}
}

func TestPropertyMatchesPaperFig4(t *testing.T) {
	// Paper Fig. 4: 3x3 2D decomposition (ranks 0..8 = processes 1..9).
	// Node <1,2> (ranks 0,1) has communication property (1,2): one
	// x-direction exchange (p2-p3) and two y-direction (p1-p4, p2-p5).
	pt := Grid2D(3, 3, 1, 1)
	prop := pt.Property([]int{0, 1})
	if len(prop) != 2 || prop[0] != 1 || prop[1] != 2 {
		t.Errorf("Property(<1,2>) = %v; want [1 2]", prop)
	}
	// Node <1,3> (ranks 0,2): property (2,2) per Fig. 4.
	prop = pt.Property([]int{0, 2})
	if prop[0] != 2 || prop[1] != 2 {
		t.Errorf("Property(<1,3>) = %v; want [2 2]", prop)
	}
	// Node <1,5> (ranks 0,4): property (3,3) per Fig. 4.
	prop = pt.Property([]int{0, 4})
	if prop[0] != 3 || prop[1] != 3 {
		t.Errorf("Property(<1,5>) = %v; want [3 3]", prop)
	}
	// Fig. 4 condenses <1,7> and <1,9> with <1,3>: all have property (2,2).
	for _, r := range []int{6, 8} {
		prop = pt.Property([]int{0, r})
		if prop[0] != 2 || prop[1] != 2 {
			t.Errorf("Property(<1,%d>) = %v; want [2 2]", r+1, prop)
		}
	}
}

func TestPropertyNilPattern(t *testing.T) {
	var pt *Pattern
	if got := pt.Property([]int{0}); got != nil {
		t.Errorf("nil pattern Property = %v", got)
	}
}

func TestValidate(t *testing.T) {
	good := Grid2D(2, 3, 1, 1)
	if err := good.Validate(6); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	cases := []struct {
		pt     *Pattern
		nprocs int
	}{
		{&Pattern{Dims: []int{}, HaloBytes: []float64{}}, 1},
		{&Pattern{Dims: []int{1, 1, 1, 1}, HaloBytes: []float64{1, 1, 1, 1}}, 1},
		{&Pattern{Dims: []int{2}, HaloBytes: []float64{1, 2}}, 2},
		{&Pattern{Dims: []int{0}, HaloBytes: []float64{1}}, 0},
		{&Pattern{Dims: []int{2}, HaloBytes: []float64{-1}}, 2},
		{Grid2D(2, 2, 1, 1), 5}, // wrong rank count
	}
	for i, tc := range cases {
		if err := tc.pt.Validate(tc.nprocs); err == nil {
			t.Errorf("case %d: Validate accepted %+v for %d procs", i, tc.pt, tc.nprocs)
		}
	}
	var nilPt *Pattern
	if err := nilPt.Validate(5); err != nil {
		t.Errorf("nil pattern rejected: %v", err)
	}
}

func TestNearSquareGrid2D(t *testing.T) {
	cases := []struct {
		n      int
		nx, ny int
	}{
		{9, 3, 3},
		{12, 3, 4},
		{11, 1, 11}, // prime: degenerates to 1D-like
		{16, 4, 4},
		{1, 1, 1},
	}
	for _, tc := range cases {
		pt := NearSquareGrid2D(tc.n, 1, 1)
		if pt.Dims[0] != tc.nx || pt.Dims[1] != tc.ny {
			t.Errorf("NearSquareGrid2D(%d) = %v; want [%d %d]", tc.n, pt.Dims, tc.nx, tc.ny)
		}
		if err := pt.Validate(tc.n); err != nil {
			t.Errorf("NearSquareGrid2D(%d): %v", tc.n, err)
		}
	}
}

func TestNumRanks(t *testing.T) {
	if got := Grid3D(2, 3, 4, 0, 0, 0).NumRanks(); got != 24 {
		t.Errorf("NumRanks = %d; want 24", got)
	}
	var pt *Pattern
	if got := pt.NumRanks(); got != 0 {
		t.Errorf("nil NumRanks = %d; want 0", got)
	}
}
