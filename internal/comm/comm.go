// Package comm models the inter-process communication of PC (parallel,
// communicating) jobs: the 1D/2D/3D domain decomposition that determines
// each process's neighbours, the per-neighbour data volumes α_i(k), and the
// communication time c(i,S) of Eq. 10-11.
//
// The model follows the paper's assumptions: regular communication
// patterns; intra-machine communication is free (it overlaps with, and is
// faster than, inter-machine traffic); inter-machine bandwidth B is uniform
// across the cluster; in a typical decomposition the two neighbours of a
// process in the same dimension carry the same volume (α_i(1)=α_i(3),
// α_i(2)=α_i(4) in the paper's Fig. 2 example).
package comm

import "fmt"

// Pattern describes the communication structure of one PC job: a dense
// process grid with halo exchange between grid-adjacent ranks.
type Pattern struct {
	// Dims is the process grid shape; len(Dims) ∈ {1,2,3} and the product
	// of the dims equals the job's process count. Ranks are laid out
	// row-major (x fastest).
	Dims []int
	// HaloBytes[d] is α: the bytes process i exchanges with each of its
	// neighbours along dimension d per data-set pass.
	HaloBytes []float64
}

// Validate reports malformed patterns.
func (pt *Pattern) Validate(nprocs int) error {
	if pt == nil {
		return nil
	}
	if len(pt.Dims) < 1 || len(pt.Dims) > 3 {
		return fmt.Errorf("comm: pattern has %d dimensions; want 1..3", len(pt.Dims))
	}
	if len(pt.HaloBytes) != len(pt.Dims) {
		return fmt.Errorf("comm: %d halo volumes for %d dimensions", len(pt.HaloBytes), len(pt.Dims))
	}
	total := 1
	for d, n := range pt.Dims {
		if n < 1 {
			return fmt.Errorf("comm: dimension %d has extent %d", d, n)
		}
		total *= n
	}
	if total != nprocs {
		return fmt.Errorf("comm: grid %v holds %d ranks; job has %d processes", pt.Dims, total, nprocs)
	}
	for d, h := range pt.HaloBytes {
		if h < 0 {
			return fmt.Errorf("comm: negative halo volume in dimension %d", d)
		}
	}
	return nil
}

// NumRanks returns the total number of ranks in the grid.
func (pt *Pattern) NumRanks() int {
	if pt == nil {
		return 0
	}
	total := 1
	for _, n := range pt.Dims {
		total *= n
	}
	return total
}

// Coords returns the grid coordinates of a rank (row-major, x fastest).
func (pt *Pattern) Coords(rank int) []int {
	coords := make([]int, len(pt.Dims))
	for d, n := range pt.Dims {
		coords[d] = rank % n
		rank /= n
	}
	return coords
}

// Rank is the inverse of Coords.
func (pt *Pattern) Rank(coords []int) int {
	rank := 0
	stride := 1
	for d, n := range pt.Dims {
		rank += coords[d] * stride
		stride *= n
	}
	return rank
}

// Neighbor is one halo-exchange partner of a rank.
type Neighbor struct {
	Rank  int     // the b_i(k) of Eq. 10: the neighbouring rank
	Dim   int     // decomposition dimension the exchange runs along
	Bytes float64 // α_i(k): volume exchanged with this neighbour
}

// Neighbors returns the grid-adjacent ranks of the given rank with their
// exchange volumes. Boundaries are non-periodic: edge ranks have fewer
// neighbours.
func (pt *Pattern) Neighbors(rank int) []Neighbor {
	if pt == nil {
		return nil
	}
	coords := pt.Coords(rank)
	var out []Neighbor
	for d, n := range pt.Dims {
		for _, dir := range [2]int{-1, +1} {
			c := coords[d] + dir
			if c < 0 || c >= n {
				continue
			}
			coords[d] = c
			out = append(out, Neighbor{Rank: pt.Rank(coords), Dim: d, Bytes: pt.HaloBytes[d]})
			coords[d] -= dir
		}
	}
	return out
}

// Time computes c(i,S) of Eq. 10-11: the inter-machine communication time
// (seconds) of the given rank when the ranks in sameMachine share its
// machine. Neighbours on the same machine communicate through memory and
// contribute nothing (β=0); every other neighbour's volume crosses the
// network at bandwidth bw bytes/second (β=1).
func (pt *Pattern) Time(rank int, sameMachine map[int]bool, bw float64) float64 {
	if pt == nil || bw <= 0 {
		return 0
	}
	var bytes float64
	for _, nb := range pt.Neighbors(rank) {
		if !sameMachine[nb.Rank] {
			bytes += nb.Bytes
		}
	}
	return bytes / bw
}

// Property computes the communication property of a job inside one graph
// node (§III-E): for each decomposition dimension, the number of
// halo exchanges the job's ranks inside the node must perform with ranks
// outside the node. Two level nodes with equal serial content, equal
// parallel membership and equal properties are condensed into one.
func (pt *Pattern) Property(ranksInNode []int) []int {
	if pt == nil {
		return nil
	}
	in := make(map[int]bool, len(ranksInNode))
	for _, r := range ranksInNode {
		in[r] = true
	}
	counts := make([]int, len(pt.Dims))
	for _, r := range ranksInNode {
		for _, nb := range pt.Neighbors(r) {
			if !in[nb.Rank] {
				counts[nb.Dim]++
			}
		}
	}
	return counts
}

// Grid1D builds the pattern of a 1D (slab) domain decomposition.
func Grid1D(n int, halo float64) *Pattern {
	return &Pattern{Dims: []int{n}, HaloBytes: []float64{halo}}
}

// Grid2D builds the pattern of a 2D (pencil) domain decomposition.
func Grid2D(nx, ny int, haloX, haloY float64) *Pattern {
	return &Pattern{Dims: []int{nx, ny}, HaloBytes: []float64{haloX, haloY}}
}

// Grid3D builds the pattern of a 3D (block) domain decomposition.
func Grid3D(nx, ny, nz int, haloX, haloY, haloZ float64) *Pattern {
	return &Pattern{Dims: []int{nx, ny, nz}, HaloBytes: []float64{haloX, haloY, haloZ}}
}

// NearSquareGrid2D factors n into the most square nx×ny grid (nx ≤ ny),
// matching how MPI codes lay out 2D decompositions for arbitrary process
// counts.
func NearSquareGrid2D(n int, haloX, haloY float64) *Pattern {
	nx := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			nx = f
		}
	}
	return Grid2D(nx, n/nx, haloX, haloY)
}
