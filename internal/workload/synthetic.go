package workload

import (
	"fmt"
	"math"
	"math/rand"

	"cosched/internal/cache"
	"cosched/internal/comm"
	"cosched/internal/degradation"
	"cosched/internal/job"
)

// Synthetic workload generators for the statistical and scalability
// studies (Fig. 5, Fig. 8, Fig. 12, Fig. 13, Table IV). All generation is
// seeded and deterministic.

// SyntheticProgram draws one program whose solo cache-miss ratio is
// uniform in [15%, 75%], the paper's synthetic recipe (§IV): *only* the
// miss ratio varies between synthetic jobs — memory appetite, locality
// and length stay fixed, so the population differs in how much cache
// pressure each job exerts and suffers, not in program character.
func SyntheticProgram(name string, rng *rand.Rand) Program {
	miss := 0.15 + 0.60*rng.Float64()
	return Program{
		Name:        name,
		Class:       classify(miss),
		AccessRate:  8.0,
		MissRatio:   miss,
		Reuse:       0.85,
		BaseGCycles: 120,
	}
}

func classify(missRatio float64) Class {
	switch {
	case missRatio < 0.30:
		return Compute
	case missRatio < 0.55:
		return Balanced
	default:
		return Memory
	}
}

// SyntheticSerialInstance builds an all-serial instance of n synthetic
// jobs driven by the full SDC oracle.
func SyntheticSerialInstance(n int, m *cache.Machine, seed int64) (*Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	s := NewSpec()
	for i := 0; i < n; i++ {
		s.AddSerial(SyntheticProgram(fmt.Sprintf("syn%03d", i+1), rng))
	}
	return s.Build(m)
}

// SyntheticMixedInstance builds an instance with parallelJobs PC jobs of
// procsPerJob processes each, the remainder serial, totalling totalProcs
// real processes (Fig. 8's 72-process batches). Processes of the same
// parallel job share one profile, which is what makes condensation
// effective.
func SyntheticMixedInstance(totalProcs, parallelJobs, procsPerJob int, m *cache.Machine, seed int64) (*Instance, error) {
	if parallelJobs*procsPerJob > totalProcs {
		return nil, fmt.Errorf("workload: %d×%d parallel processes exceed total %d",
			parallelJobs, procsPerJob, totalProcs)
	}
	rng := rand.New(rand.NewSource(seed))
	s := NewSpec()
	for i := 0; i < parallelJobs; i++ {
		p := SyntheticProgram(fmt.Sprintf("par%02d", i+1), rng)
		halo := (0.5 + rng.Float64()) * 2e9
		pat := comm.NearSquareGrid2D(procsPerJob, halo, halo)
		s.AddPC(p, procsPerJob, pat)
	}
	for s.NumProcs() < totalProcs {
		s.AddSerial(SyntheticProgram(fmt.Sprintf("ser%03d", s.NumProcs()+1), rng))
	}
	return s.Build(m)
}

// SyntheticPairwiseInstance builds an all-serial instance of n jobs backed
// by the additive pairwise-interference oracle: process i suffers
// sensitivity(i)·aggression(j)·affinity(i,j) from each co-runner j.
// Sensitivities and aggressions derive from per-job miss ratios drawn
// uniformly from [15%, 75%]; the idiosyncratic affinity factor models
// profile-overlap effects (see the comment in the builder). This is the
// population behind the large-scale HA*/PG comparisons (Figs. 12-13).
func SyntheticPairwiseInstance(n int, m *cache.Machine, seed int64) (*Instance, error) {
	return syntheticPairwise(n, m, seed, true)
}

// SyntheticPairwiseSmoothInstance is the paper-faithful variant: the
// interference is the pure rank-1 product sensitivity(i)·aggression(j)
// with no pair idiosyncrasy, matching the paper's synthetic recipe where
// only the cache-miss rate varies between jobs. The smooth structure
// keeps admissible bounds tight, which is what the exact-search studies
// (Fig. 5, Fig. 9, Table IV) rely on.
func SyntheticPairwiseSmoothInstance(n int, m *cache.Machine, seed int64) (*Instance, error) {
	return syntheticPairwise(n, m, seed, false)
}

func syntheticPairwise(n int, m *cache.Machine, seed int64, idiosyncratic bool) (*Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	bd := job.NewBuilder()
	for i := 0; i < n; i++ {
		bd.AddSerial(fmt.Sprintf("syn%04d", i+1))
	}
	b, err := bd.Build(m.Cores)
	if err != nil {
		return nil, err
	}
	nn := b.NumProcs()
	sens := make([]float64, nn)
	aggr := make([]float64, nn)
	for i := 0; i < nn; i++ {
		if b.Procs[i].Imaginary {
			continue
		}
		miss := 0.15 + 0.60*rng.Float64()
		if idiosyncratic {
			// Miss-heavy programs pollute the cache (aggression) and,
			// with some independent variation, suffer from pollution
			// (sensitivity).
			aggr[i] = miss
			sens[i] = 0.2*rng.Float64() + 0.8*miss
		} else {
			// The smooth population varies mostly in *aggression* (how
			// much cache pressure a job exerts) and only mildly in
			// sensitivity. That is what the paper's Fig. 5 statistics
			// imply: the optimal path's nodes almost always rank within
			// the first n/u of their level by weight, which requires
			// per-level weight order to track global optimality — true
			// when sensitivities are nearly uniform, degenerate ties
			// included.
			aggr[i] = 0.4 + 0.6*miss
			sens[i] = 0.6 + 0.2*miss
		}
	}
	// Real SDC interference is not a rank-1 product of per-program
	// scalars: how much j hurts i also depends on how their stack
	// distance profiles overlap. The idiosyncratic factor below models
	// that pair affinity; without it a scalar politeness sort (PG)
	// would already be near-optimal and the search methods would have
	// nothing to find.
	mtx := make([][]float64, nn)
	for i := range mtx {
		mtx[i] = make([]float64, nn)
		for j := range mtx[i] {
			if i == j || b.Procs[i].Imaginary || b.Procs[j].Imaginary {
				continue
			}
			affinity := 1.0
			if idiosyncratic {
				affinity = 0.4 + 1.2*rng.Float64()
			}
			d := 0.25 * sens[i] * aggr[j] * affinity
			if !idiosyncratic {
				// The paper derives degradations from hardware
				// counters, which carry limited precision; quantising
				// the smooth population the same way produces the tie
				// structure its Fig. 5 statistics (tiny effective
				// ranks) and fast exact searches rest on.
				const grid = 0.005
				d = math.Round(d/grid) * grid
			}
			mtx[i][j] = d
		}
	}
	oracle, err := degradation.NewPairwiseOracle(b, mtx, nil, 0)
	if err != nil {
		return nil, err
	}
	return &Instance{Batch: b, Machine: m, Oracle: oracle}, nil
}

// PairwiseFromOracle converts any instance into an equivalent
// pairwise-oracle instance by sampling all pair degradations from the
// exact oracle. Useful for ablating the additive approximation.
func PairwiseFromOracle(in *Instance) (*Instance, error) {
	b := in.Batch
	n := b.NumProcs()
	mtx := make([][]float64, n)
	for i := range mtx {
		mtx[i] = make([]float64, n)
	}
	for i := 1; i <= n; i++ {
		if b.Procs[i-1].Imaginary {
			continue
		}
		for j := 1; j <= n; j++ {
			if i == j || b.Procs[j-1].Imaginary {
				continue
			}
			mtx[i-1][j-1] = in.Oracle.Degradation(job.ProcID(i), []job.ProcID{job.ProcID(j)})
		}
	}
	oracle, err := degradation.NewPairwiseOracle(b, mtx, in.Patterns, pairwiseCommFactor(in))
	if err != nil {
		return nil, err
	}
	return &Instance{Batch: b, Machine: in.Machine, Oracle: oracle, Patterns: in.Patterns}, nil
}

// pairwiseCommFactor estimates the bytes→degradation factor for the
// pairwise oracle from the machine's bandwidth and a nominal solo time.
func pairwiseCommFactor(in *Instance) float64 {
	if in.Machine == nil || in.Machine.NetworkBandwidth <= 0 || len(in.Patterns) == 0 {
		return 0
	}
	// Nominal solo computation time of 60 seconds: the mid-range of the
	// benchmark programs' BaseGCycles at the evaluation clock rates.
	const nominalSolo = 60.0
	return 1 / (in.Machine.NetworkBandwidth * nominalSolo)
}
