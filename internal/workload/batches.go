package workload

import (
	"fmt"

	"cosched/internal/cache"
)

// The batch constructors below reproduce the specific program mixes named
// in the paper's evaluation (§V-A, §V-B, §V-E).

// TableIInstance builds the all-serial batches of Table I: the first
// nJobs programs from NPB3.3-SER + SPEC CPU 2000 on the given machine.
func TableIInstance(nJobs int, m *cache.Machine) (*Instance, error) {
	names, err := FirstSerialNames(nJobs)
	if err != nil {
		return nil, err
	}
	return SerialInstance(names, m)
}

// TableIIInstance builds the mixed serial+parallel batches of Table II:
// MG-Par and LU-Par (parProcs processes each, 2..4 in the paper) combined
// with the serial programs the paper lists for each total process count.
//
//	 8 procs: MG-Par, LU-Par + applu, art, equake, vpr
//	12 procs: MG-Par, LU-Par + applu, art, ammp, equake, galgel, vpr
//	16 procs: MG-Par, LU-Par + BT, IS, applu, art, ammp, equake, galgel, vpr
func TableIIInstance(totalProcs int, m *cache.Machine) (*Instance, error) {
	var serial []string
	var parProcs int
	switch totalProcs {
	case 8:
		serial = []string{"applu", "art", "equake", "vpr"}
		parProcs = 2
	case 12:
		serial = []string{"applu", "art", "ammp", "equake", "galgel", "vpr"}
		parProcs = 3
	case 16:
		serial = []string{"BT", "IS", "applu", "art", "ammp", "equake", "galgel", "vpr"}
		parProcs = 4
	default:
		return nil, fmt.Errorf("workload: Table II defines 8, 12 or 16 processes; got %d", totalProcs)
	}
	s := NewSpec()
	mg, err := PCProgram("MG-Par")
	if err != nil {
		return nil, err
	}
	lu, err := PCProgram("LU-Par")
	if err != nil {
		return nil, err
	}
	s.AddPC(mg, parProcs, nil)
	s.AddPC(lu, parProcs, nil)
	for _, n := range serial {
		if _, err := s.AddSerialByName(n); err != nil {
			return nil, err
		}
	}
	if s.NumProcs() != totalProcs {
		return nil, fmt.Errorf("workload: Table II batch built %d processes; want %d", s.NumProcs(), totalProcs)
	}
	return s.Build(m)
}

// PEMixInstance builds the Fig. 6 batches: the five PE programs with
// procsPerJob slave processes each (10 in the paper), mixed with serial
// programs from NPB-SER plus art.
func PEMixInstance(procsPerJob int, m *cache.Machine) (*Instance, error) {
	s := NewSpec()
	for _, name := range PEProgramNames() {
		p, err := PEProgram(name)
		if err != nil {
			return nil, err
		}
		s.AddPE(p, procsPerJob)
	}
	for _, name := range []string{"BT", "DC", "UA", "IS", "art"} {
		if _, err := s.AddSerialByName(name); err != nil {
			return nil, err
		}
	}
	return s.Build(m)
}

// PCMixInstance builds the Fig. 7 batches: BT-Par, LU-Par, MG-Par and
// CG-Par with procsPerJob processes each (11 in the paper), mixed with the
// serial jobs UA, DC, FT and IS.
func PCMixInstance(procsPerJob int, m *cache.Machine) (*Instance, error) {
	s := NewSpec()
	for _, name := range PCProgramNames() {
		p, err := PCProgram(name)
		if err != nil {
			return nil, err
		}
		s.AddPC(p, procsPerJob, nil)
	}
	for _, name := range []string{"UA", "DC", "FT", "IS"} {
		if _, err := s.AddSerialByName(name); err != nil {
			return nil, err
		}
	}
	return s.Build(m)
}

// Fig10Names returns the twelve applications of the Quad-core HA*/PG
// comparison (Fig. 10).
func Fig10Names() []string {
	return []string{"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP", "UA", "DC", "art", "ammp"}
}

// Fig11Names returns the sixteen applications of the 8-core comparison
// (Fig. 11).
func Fig11Names() []string {
	return []string{"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP", "UA", "DC",
		"applu", "art", "equake", "galgel", "vpr", "ammp"}
}
