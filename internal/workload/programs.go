// Package workload supplies the program profiles and batch constructors
// behind every experiment in the paper's evaluation (§V): parametric
// stand-ins for the NPB3.3-SER, SPEC CPU 2000, NPB3.3-MPI and
// embarrassingly-parallel benchmark programs, the three machine classes,
// and the synthetic job generators used for the large-scale studies.
//
// The paper profiles real binaries with perf and gcc-slo; this package
// synthesises stack distance profiles from four per-program parameters
// (access rate, solo miss ratio, locality decay, base cycle count) chosen
// so that the programs keep their published contention character:
// memory-intensive codes (art, RA, MG, DC, FT) are cache-hungry and
// cache-sensitive, compute-bound codes (EP, PI, MMS) barely notice
// co-runners, and the rest sit in between. See DESIGN.md §3.
package workload

import (
	"fmt"
	"math"

	"cosched/internal/cache"
)

// Class is the contention character of a program.
type Class int

const (
	// Compute programs rarely touch the shared cache.
	Compute Class = iota
	// Balanced programs have moderate cache appetite.
	Balanced
	// Memory programs are both cache-hungry and cache-sensitive.
	Memory
)

// Program holds the parametric profile of one benchmark program.
type Program struct {
	Name  string
	Class Class
	// AccessRate is shared-cache accesses per kilocycle of base
	// execution.
	AccessRate float64
	// MissRatio is the solo miss fraction (beyond-associativity
	// accesses / all accesses).
	MissRatio float64
	// Reuse is the geometric stack-distance decay in (0,1): hit mass at
	// distance d+1 is proportional to Reuse^d. Values near 1 spread hits
	// across many ways (large working set, cache-sensitive); small
	// values concentrate hits near the top of the stack.
	Reuse float64
	// BaseGCycles is CPU_Clock_Cycle of Eq. 14 in billions of cycles.
	BaseGCycles float64
}

// Profile materialises the program's stack distance profile against the
// given machine's shared cache.
func (p Program) Profile(m *cache.Machine) *cache.Profile {
	w := m.Ways
	hits := make([]float64, w)
	// Normalise the geometric weights so that total hit rate is
	// AccessRate·(1-MissRatio).
	var norm float64
	for d := 0; d < w; d++ {
		norm += math.Pow(p.Reuse, float64(d))
	}
	hitMass := p.AccessRate * (1 - p.MissRatio)
	for d := 0; d < w; d++ {
		hits[d] = hitMass * math.Pow(p.Reuse, float64(d)) / norm
	}
	return &cache.Profile{
		Name:       p.Name,
		Hits:       hits,
		Beyond:     p.AccessRate * p.MissRatio,
		BaseCycles: p.BaseGCycles * 1e9,
	}
}

// Serial benchmark programs of the evaluation. The first ten mirror
// NPB3.3-SER (problem size C), the rest SPEC CPU 2000.
var serialPrograms = []Program{
	{Name: "BT", Class: Balanced, AccessRate: 6.0, MissRatio: 0.28, Reuse: 0.82, BaseGCycles: 210},
	{Name: "CG", Class: Memory, AccessRate: 11.0, MissRatio: 0.42, Reuse: 0.90, BaseGCycles: 95},
	{Name: "EP", Class: Compute, AccessRate: 0.8, MissRatio: 0.18, Reuse: 0.45, BaseGCycles: 160},
	{Name: "FT", Class: Memory, AccessRate: 9.5, MissRatio: 0.38, Reuse: 0.88, BaseGCycles: 140},
	{Name: "IS", Class: Memory, AccessRate: 8.0, MissRatio: 0.52, Reuse: 0.86, BaseGCycles: 35},
	{Name: "LU", Class: Balanced, AccessRate: 5.5, MissRatio: 0.26, Reuse: 0.80, BaseGCycles: 190},
	{Name: "MG", Class: Memory, AccessRate: 12.0, MissRatio: 0.47, Reuse: 0.92, BaseGCycles: 80},
	{Name: "SP", Class: Balanced, AccessRate: 7.0, MissRatio: 0.31, Reuse: 0.84, BaseGCycles: 200},
	{Name: "UA", Class: Balanced, AccessRate: 6.5, MissRatio: 0.29, Reuse: 0.83, BaseGCycles: 170},
	{Name: "DC", Class: Memory, AccessRate: 10.5, MissRatio: 0.55, Reuse: 0.91, BaseGCycles: 120},
	{Name: "applu", Class: Balanced, AccessRate: 5.0, MissRatio: 0.24, Reuse: 0.78, BaseGCycles: 150},
	{Name: "art", Class: Memory, AccessRate: 14.0, MissRatio: 0.60, Reuse: 0.94, BaseGCycles: 70},
	{Name: "ammp", Class: Balanced, AccessRate: 4.5, MissRatio: 0.22, Reuse: 0.76, BaseGCycles: 130},
	{Name: "equake", Class: Memory, AccessRate: 8.5, MissRatio: 0.40, Reuse: 0.87, BaseGCycles: 110},
	{Name: "galgel", Class: Balanced, AccessRate: 6.0, MissRatio: 0.27, Reuse: 0.81, BaseGCycles: 125},
	{Name: "vpr", Class: Balanced, AccessRate: 3.5, MissRatio: 0.20, Reuse: 0.70, BaseGCycles: 100},
}

// Embarrassingly-parallel programs (§II-B1, Fig. 6): multiple slave
// processes, no inter-process communication.
var peprograms = []Program{
	{Name: "PI", Class: Compute, AccessRate: 0.5, MissRatio: 0.15, Reuse: 0.40, BaseGCycles: 90},
	{Name: "MMS", Class: Compute, AccessRate: 0.9, MissRatio: 0.17, Reuse: 0.50, BaseGCycles: 110},
	{Name: "RA", Class: Memory, AccessRate: 15.0, MissRatio: 0.70, Reuse: 0.95, BaseGCycles: 60},
	{Name: "EP-Par", Class: Compute, AccessRate: 0.8, MissRatio: 0.18, Reuse: 0.45, BaseGCycles: 160},
	{Name: "MCM", Class: Balanced, AccessRate: 3.0, MissRatio: 0.25, Reuse: 0.72, BaseGCycles: 140},
}

// MPI (PC) programs from NPB3.3-MPI. Decomposition shapes and halo
// volumes are set in batches.go when the process count is known.
var pcPrograms = []Program{
	{Name: "BT-Par", Class: Balanced, AccessRate: 6.0, MissRatio: 0.28, Reuse: 0.82, BaseGCycles: 210},
	{Name: "LU-Par", Class: Balanced, AccessRate: 5.5, MissRatio: 0.26, Reuse: 0.80, BaseGCycles: 190},
	{Name: "MG-Par", Class: Memory, AccessRate: 12.0, MissRatio: 0.47, Reuse: 0.92, BaseGCycles: 80},
	{Name: "CG-Par", Class: Memory, AccessRate: 11.0, MissRatio: 0.42, Reuse: 0.90, BaseGCycles: 95},
}

// SerialProgram looks up a serial program by name.
func SerialProgram(name string) (Program, error) {
	for _, p := range serialPrograms {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("workload: unknown serial program %q", name)
}

// PEProgram looks up an embarrassingly-parallel program by name.
func PEProgram(name string) (Program, error) {
	for _, p := range peprograms {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("workload: unknown PE program %q", name)
}

// PCProgram looks up an MPI program by name.
func PCProgram(name string) (Program, error) {
	for _, p := range pcPrograms {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("workload: unknown PC program %q", name)
}

// SerialProgramNames returns the evaluation's serial program names in
// their canonical order (NPB-SER first, then SPEC CPU 2000).
func SerialProgramNames() []string {
	names := make([]string, len(serialPrograms))
	for i, p := range serialPrograms {
		names[i] = p.Name
	}
	return names
}

// PEProgramNames returns the five PE program names.
func PEProgramNames() []string {
	names := make([]string, len(peprograms))
	for i, p := range peprograms {
		names[i] = p.Name
	}
	return names
}

// PCProgramNames returns the NPB-MPI program names.
func PCProgramNames() []string {
	names := make([]string, len(pcPrograms))
	for i, p := range pcPrograms {
		names[i] = p.Name
	}
	return names
}
