package workload

import (
	"fmt"
	"math"

	"cosched/internal/cache"
	"cosched/internal/comm"
	"cosched/internal/degradation"
	"cosched/internal/job"
)

// Instance is a ready-to-solve co-scheduling problem: the batch, the
// machine class, and a degradation oracle wired to them.
type Instance struct {
	Batch   *job.Batch
	Machine *cache.Machine
	Oracle  degradation.Oracle
	// Patterns maps PC jobs to their decompositions (also held by the
	// oracle; exposed for condensation and diagnostics).
	Patterns map[job.JobID]*comm.Pattern
}

// Cost returns an objective evaluator for the instance under the given
// accounting mode.
func (in *Instance) Cost(mode degradation.Mode) *degradation.Cost {
	return degradation.NewCost(in.Batch, in.Oracle, mode)
}

// nominalSoloSeconds is the stand-alone runtime assumed for processes of
// pairwise-oracle instances, which carry no cache profiles (the mid-range
// of the benchmark programs at the evaluation clock rates).
const nominalSoloSeconds = 60.0

// SoloTime returns the stand-alone computation time of a process in
// seconds: from its cache profile and the Eq. 14 CPU-time model when the
// instance is SDC-backed, a nominal constant for pairwise-backed
// instances. Imaginary processes take zero time.
func (in *Instance) SoloTime(p job.ProcID) float64 {
	if in.Batch.Proc(p).Imaginary {
		return 0
	}
	var inner degradation.Oracle = in.Oracle
	if m, ok := inner.(*degradation.Memoized); ok {
		inner = m.Inner()
	}
	if sdc, ok := inner.(*degradation.SDCOracle); ok {
		return cache.SoloCPUTime(sdc.Machine(), sdc.Profile(p))
	}
	return nominalSoloSeconds
}

// Spec assembles an Instance job by job.
type Spec struct {
	builder  *job.Builder
	programs []Program // indexed by JobID
	patterns map[job.JobID]*comm.Pattern
}

// NewSpec returns an empty workload specification.
func NewSpec() *Spec {
	return &Spec{builder: job.NewBuilder(), patterns: make(map[job.JobID]*comm.Pattern)}
}

// AddSerial adds one serial job running the given program.
func (s *Spec) AddSerial(p Program) job.JobID {
	id := s.builder.AddSerial(p.Name)
	s.programs = append(s.programs, p)
	return id
}

// AddSerialByName adds a serial job by benchmark name.
func (s *Spec) AddSerialByName(name string) (job.JobID, error) {
	p, err := SerialProgram(name)
	if err != nil {
		return 0, err
	}
	return s.AddSerial(p), nil
}

// AddPE adds an embarrassingly-parallel job with nprocs slave processes,
// each running the program's profile.
func (s *Spec) AddPE(p Program, nprocs int) job.JobID {
	id := s.builder.AddPE(p.Name, nprocs)
	s.programs = append(s.programs, p)
	return id
}

// AddPC adds a communicating parallel job. If pattern is nil a
// near-square 2D decomposition with the program's default halo volumes is
// used; the per-neighbour halo shrinks with the subdomain side
// (∝ 1/sqrt(nprocs)), as a 2D domain decomposition's boundary does.
func (s *Spec) AddPC(p Program, nprocs int, pattern *comm.Pattern) job.JobID {
	if pattern == nil {
		hx, hy := DefaultHalo(p.Name)
		scale := 1 / math.Sqrt(float64(nprocs))
		pattern = comm.NearSquareGrid2D(nprocs, hx*scale, hy*scale)
	}
	id := s.builder.AddPC(p.Name, nprocs)
	s.programs = append(s.programs, p)
	s.patterns[id] = pattern
	return id
}

// NumProcs returns the number of real processes added so far.
func (s *Spec) NumProcs() int { return s.builder.NumProcs() }

// Build materialises the instance for the given machine, padding the batch
// with imaginary processes up to a multiple of the core count.
func (s *Spec) Build(m *cache.Machine) (*Instance, error) {
	b, err := s.builder.Build(m.Cores)
	if err != nil {
		return nil, err
	}
	profiles := make([]*cache.Profile, b.NumProcs())
	for i := range b.Procs {
		p := &b.Procs[i]
		if p.Imaginary {
			continue
		}
		prog := s.programs[p.Job]
		if k := len(b.Jobs[p.Job].Procs); k > 1 {
			// Strong scaling: a k-way parallel job splits its
			// computation across ranks, so each rank's base cycle
			// count is 1/k of the program's. Degradations (stall/base
			// ratios) are unaffected; the communication-to-computation
			// ratio grows with k, as it does for real MPI codes.
			prog.BaseGCycles /= float64(k)
		}
		profiles[i] = prog.Profile(m)
	}
	oracle, err := degradation.NewSDCOracle(b, m, profiles, s.patterns)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Batch:    b,
		Machine:  m,
		Oracle:   degradation.NewMemoized(oracle),
		Patterns: s.patterns,
	}, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (s *Spec) MustBuild(m *cache.Machine) *Instance {
	in, err := s.Build(m)
	if err != nil {
		panic(err)
	}
	return in
}

// DefaultHalo returns per-dimension halo volumes (bytes exchanged with each
// neighbour over the whole run) for the NPB-MPI programs. Values are sized
// so that communication degradations land in the same few-percent to
// tens-of-percent band as cache degradations, matching Fig. 7's CCD scale.
func DefaultHalo(name string) (hx, hy float64) {
	switch name {
	case "BT-Par":
		return 2.5e9, 2.5e9
	case "LU-Par":
		return 1.5e9, 1.5e9
	case "MG-Par":
		return 3.0e9, 3.0e9
	case "CG-Par":
		return 2.0e9, 2.0e9
	default:
		return 2.0e9, 2.0e9
	}
}

// SerialInstance builds an all-serial instance from benchmark names.
func SerialInstance(names []string, m *cache.Machine) (*Instance, error) {
	s := NewSpec()
	for _, n := range names {
		if _, err := s.AddSerialByName(n); err != nil {
			return nil, err
		}
	}
	return s.Build(m)
}

// FirstSerialNames returns the first n serial benchmark names in canonical
// order (NPB-SER then SPEC), the subsets Tables I/III draw from.
func FirstSerialNames(n int) ([]string, error) {
	all := SerialProgramNames()
	if n > len(all) {
		return nil, fmt.Errorf("workload: %d serial programs requested; only %d defined", n, len(all))
	}
	return all[:n], nil
}
