package workload

import (
	"math"
	"testing"

	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/job"
)

func TestParallelRanksStrongScale(t *testing.T) {
	// A k-way parallel job's ranks each carry 1/k of the program's base
	// cycles, so a rank's solo time is ~1/k of the serial program's.
	m := cache.QuadCore
	serialSpec := NewSpec()
	prog, err := PCProgram("MG-Par")
	if err != nil {
		t.Fatal(err)
	}
	serialSpec.AddSerial(prog)
	serialSpec.AddSerial(prog)
	serialSpec.AddSerial(prog)
	serialSpec.AddSerial(prog)
	serialIn, err := serialSpec.Build(&m)
	if err != nil {
		t.Fatal(err)
	}
	parSpec := NewSpec()
	parSpec.AddPC(prog, 4, nil)
	parIn, err := parSpec.Build(&m)
	if err != nil {
		t.Fatal(err)
	}
	soloSerial := serialIn.SoloTime(1)
	soloRank := parIn.SoloTime(1)
	if math.Abs(soloRank*4-soloSerial) > 1e-9*soloSerial {
		t.Errorf("rank solo time %v; want 1/4 of serial %v", soloRank, soloSerial)
	}
	// Degradations are ratios and must be unaffected by the scaling.
	dSerial := serialIn.Oracle.Degradation(1, []job.ProcID{2, 3, 4})
	dRank := parIn.Oracle.Degradation(1, []job.ProcID{2, 3, 4})
	if math.Abs(dSerial-dRank) > 1e-12 {
		t.Errorf("strong scaling changed computation degradation: %v vs %v", dSerial, dRank)
	}
}

func TestDefaultHaloShrinksWithRankCount(t *testing.T) {
	m := cache.QuadCore
	mk := func(k int) *Instance {
		s := NewSpec()
		prog, err := PCProgram("CG-Par")
		if err != nil {
			t.Fatal(err)
		}
		s.AddPC(prog, k, nil)
		in, err := s.Build(&m)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	in4, in16 := mk(4), mk(16)
	h4 := in4.Patterns[0].HaloBytes[0]
	h16 := in16.Patterns[0].HaloBytes[0]
	if math.Abs(h16-h4/2) > 1e-6*h4 { // sqrt(16)/sqrt(4) = 2
		t.Errorf("halo at 16 ranks = %v; want half of %v", h16, h4)
	}
}

func TestSmoothPairwiseQuantised(t *testing.T) {
	m := cache.QuadCore
	in, err := SyntheticPairwiseSmoothInstance(16, &m, 3)
	if err != nil {
		t.Fatal(err)
	}
	const grid = 0.005
	for i := 1; i <= 16; i++ {
		for j := 1; j <= 16; j++ {
			if i == j {
				continue
			}
			d := in.Oracle.Degradation(job.ProcID(i), []job.ProcID{job.ProcID(j)})
			q := math.Round(d/grid) * grid
			if math.Abs(d-q) > 1e-12 {
				t.Fatalf("pair degradation %v not on the %v grid", d, grid)
			}
		}
	}
}

func TestSoloTimePaths(t *testing.T) {
	m := cache.QuadCore
	sdc, err := SerialInstance([]string{"BT", "CG", "EP"}, &m)
	if err != nil {
		t.Fatal(err)
	}
	if sdc.SoloTime(1) <= 0 {
		t.Error("SDC-backed solo time not positive")
	}
	if sdc.SoloTime(4) != 0 { // padding
		t.Error("imaginary solo time not zero")
	}
	pw, err := SyntheticPairwiseInstance(8, &m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := pw.SoloTime(1); got != 60 {
		t.Errorf("pairwise solo time = %v; want the 60s nominal", got)
	}
}

func TestCostModesShareOracle(t *testing.T) {
	m := cache.QuadCore
	in, err := SyntheticSerialInstance(8, &m, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := in.Cost(degradation.ModePC).ProcCost(1, []job.ProcID{2})
	b := in.Cost(degradation.ModePE).ProcCost(1, []job.ProcID{2})
	if a != b { // serial process: modes agree
		t.Errorf("mode-dependent cost on a serial process: %v vs %v", a, b)
	}
}
