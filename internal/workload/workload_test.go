package workload

import (
	"math"
	"math/rand"
	"testing"

	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/job"
)

func TestProgramTablesComplete(t *testing.T) {
	if got := len(SerialProgramNames()); got != 16 {
		t.Errorf("serial programs = %d; want 16 (10 NPB + 6 SPEC)", got)
	}
	if got := len(PEProgramNames()); got != 5 {
		t.Errorf("PE programs = %d; want 5", got)
	}
	if got := len(PCProgramNames()); got != 4 {
		t.Errorf("PC programs = %d; want 4", got)
	}
}

func TestProgramLookups(t *testing.T) {
	if _, err := SerialProgram("art"); err != nil {
		t.Errorf("SerialProgram(art): %v", err)
	}
	if _, err := SerialProgram("nope"); err == nil {
		t.Error("SerialProgram accepted unknown name")
	}
	if _, err := PEProgram("RA"); err != nil {
		t.Errorf("PEProgram(RA): %v", err)
	}
	if _, err := PEProgram("BT"); err == nil {
		t.Error("PEProgram accepted serial name")
	}
	if _, err := PCProgram("MG-Par"); err != nil {
		t.Errorf("PCProgram(MG-Par): %v", err)
	}
	if _, err := PCProgram("MG"); err == nil {
		t.Error("PCProgram accepted serial name")
	}
}

func TestProfilesValidateOnAllMachines(t *testing.T) {
	machines := []*cache.Machine{&cache.DualCore, &cache.QuadCore, &cache.EightCore}
	for _, names := range [][]string{SerialProgramNames(), PEProgramNames(), PCProgramNames()} {
		for _, name := range names {
			var p Program
			var err error
			if p, err = SerialProgram(name); err != nil {
				if p, err = PEProgram(name); err != nil {
					p, err = PCProgram(name)
				}
			}
			if err != nil {
				t.Fatalf("lookup %q: %v", name, err)
			}
			for _, m := range machines {
				prof := p.Profile(m)
				if err := prof.Validate(); err != nil {
					t.Errorf("%s on %s: %v", name, m.Name, err)
				}
				if got := prof.MissRatio(); math.Abs(got-p.MissRatio) > 1e-9 {
					t.Errorf("%s: profile miss ratio %v != parameter %v", name, got, p.MissRatio)
				}
			}
		}
	}
}

func TestContentionCharacterPreserved(t *testing.T) {
	// The substitution promise of DESIGN.md §3: memory-intensive programs
	// must suffer more from an aggressive co-runner than compute-bound
	// programs do.
	m := &cache.QuadCore
	art, _ := SerialProgram("art")
	ep, _ := SerialProgram("EP")
	mg, _ := SerialProgram("MG")
	aggressor := art.Profile(m)
	dArt := cache.CoRunDegradations(m, []*cache.Profile{mg.Profile(m), aggressor, aggressor, aggressor})[0]
	dEP := cache.CoRunDegradations(m, []*cache.Profile{ep.Profile(m), aggressor, aggressor, aggressor})[0]
	if dArt <= dEP {
		t.Errorf("MG degradation %v <= EP degradation %v; memory code should suffer more", dArt, dEP)
	}
	if dEP > 0.10 {
		t.Errorf("EP degradation = %v; compute-bound code should barely degrade", dEP)
	}
	if dArt < 0.02 {
		t.Errorf("MG degradation = %v; memory code should degrade noticeably", dArt)
	}
}

func TestSerialInstance(t *testing.T) {
	in, err := SerialInstance([]string{"BT", "CG", "EP", "FT"}, &cache.QuadCore)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Batch.NumProcs(); got != 4 {
		t.Errorf("NumProcs = %d; want 4", got)
	}
	c := in.Cost(degradation.ModePC)
	cost := c.PartitionCost([][]job.ProcID{{1, 2, 3, 4}})
	if cost <= 0 {
		t.Errorf("co-running 4 programs has cost %v; want > 0", cost)
	}
	if _, err := SerialInstance([]string{"nope"}, &cache.QuadCore); err == nil {
		t.Error("SerialInstance accepted unknown program")
	}
}

func TestFirstSerialNames(t *testing.T) {
	names, err := FirstSerialNames(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 8 || names[0] != "BT" {
		t.Errorf("FirstSerialNames(8) = %v", names)
	}
	if _, err := FirstSerialNames(99); err == nil {
		t.Error("FirstSerialNames(99) accepted")
	}
}

func TestTableIInstance(t *testing.T) {
	for _, n := range []int{8, 12, 16} {
		in, err := TableIInstance(n, &cache.DualCore)
		if err != nil {
			t.Fatalf("TableIInstance(%d): %v", n, err)
		}
		if got := in.Batch.NumProcs(); got != n {
			t.Errorf("TableIInstance(%d) procs = %d", n, got)
		}
		for _, j := range in.Batch.Jobs {
			if j.Kind != job.Serial {
				t.Errorf("TableIInstance(%d) contains non-serial job %q", n, j.Name)
			}
		}
	}
}

func TestTableIIInstance(t *testing.T) {
	wantPar := map[int]int{8: 2, 12: 3, 16: 4}
	for _, n := range []int{8, 12, 16} {
		in, err := TableIIInstance(n, &cache.QuadCore)
		if err != nil {
			t.Fatalf("TableIIInstance(%d): %v", n, err)
		}
		if got := in.Batch.NumProcs(); got != n {
			t.Errorf("TableIIInstance(%d) procs = %d", n, got)
		}
		var pcJobs int
		for _, j := range in.Batch.Jobs {
			if j.Kind == job.PC {
				pcJobs++
				if len(j.Procs) != wantPar[n] {
					t.Errorf("TableIIInstance(%d): job %q has %d procs; want %d",
						n, j.Name, len(j.Procs), wantPar[n])
				}
				if in.Patterns[j.ID] == nil {
					t.Errorf("TableIIInstance(%d): job %q has no pattern", n, j.Name)
				}
			}
		}
		if pcJobs != 2 {
			t.Errorf("TableIIInstance(%d): %d PC jobs; want 2 (MG-Par, LU-Par)", n, pcJobs)
		}
	}
	if _, err := TableIIInstance(10, &cache.QuadCore); err == nil {
		t.Error("TableIIInstance(10) accepted")
	}
}

func TestPEMixInstance(t *testing.T) {
	in, err := PEMixInstance(10, &cache.QuadCore)
	if err != nil {
		t.Fatal(err)
	}
	var peJobs, serial int
	for _, j := range in.Batch.Jobs {
		switch j.Kind {
		case job.PE:
			peJobs++
			if len(j.Procs) != 10 {
				t.Errorf("PE job %q has %d procs; want 10", j.Name, len(j.Procs))
			}
		case job.Serial:
			serial++
		}
	}
	if peJobs != 5 {
		t.Errorf("PE jobs = %d; want 5", peJobs)
	}
	if serial != 5 {
		t.Errorf("serial jobs = %d; want 5", serial)
	}
	// batch padded to multiple of 4
	if in.Batch.NumProcs()%4 != 0 {
		t.Errorf("batch size %d not padded", in.Batch.NumProcs())
	}
}

func TestPCMixInstance(t *testing.T) {
	in, err := PCMixInstance(11, &cache.EightCore)
	if err != nil {
		t.Fatal(err)
	}
	var pcJobs int
	for _, j := range in.Batch.Jobs {
		if j.Kind == job.PC {
			pcJobs++
			if in.Patterns[j.ID] == nil {
				t.Errorf("PC job %q missing pattern", j.Name)
			}
		}
	}
	if pcJobs != 4 {
		t.Errorf("PC jobs = %d; want 4", pcJobs)
	}
}

func TestFigNames(t *testing.T) {
	if got := len(Fig10Names()); got != 12 {
		t.Errorf("Fig10Names = %d entries; want 12", got)
	}
	if got := len(Fig11Names()); got != 16 {
		t.Errorf("Fig11Names = %d entries; want 16", got)
	}
	for _, n := range append(Fig10Names(), Fig11Names()...) {
		if _, err := SerialProgram(n); err != nil {
			t.Errorf("figure name %q not a serial program", n)
		}
	}
}

func TestSyntheticProgramMissRatioRange(t *testing.T) {
	// Fig. 5 recipe: solo miss ratios uniform in [15%, 75%].
	rng := rand.New(rand.NewSource(11))
	var lo, hi float64 = 1, 0
	for i := 0; i < 500; i++ {
		p := SyntheticProgram("s", rng)
		if p.MissRatio < 0.15 || p.MissRatio > 0.75 {
			t.Fatalf("miss ratio %v outside [0.15, 0.75]", p.MissRatio)
		}
		lo = math.Min(lo, p.MissRatio)
		hi = math.Max(hi, p.MissRatio)
		if p.AccessRate <= 0 || p.Reuse <= 0 || p.Reuse >= 1 || p.BaseGCycles <= 0 {
			t.Fatalf("implausible synthetic program %+v", p)
		}
	}
	if lo > 0.20 || hi < 0.70 {
		t.Errorf("miss ratios span [%v,%v]; expected to fill most of [0.15,0.75]", lo, hi)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := SyntheticSerialInstance(12, &cache.QuadCore, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticSerialInstance(12, &cache.QuadCore, 99)
	if err != nil {
		t.Fatal(err)
	}
	da := a.Oracle.Degradation(1, []job.ProcID{2, 3, 4})
	db := b.Oracle.Degradation(1, []job.ProcID{2, 3, 4})
	if da != db {
		t.Errorf("same seed gave different degradations: %v vs %v", da, db)
	}
	c, err := SyntheticSerialInstance(12, &cache.QuadCore, 100)
	if err != nil {
		t.Fatal(err)
	}
	dc := c.Oracle.Degradation(1, []job.ProcID{2, 3, 4})
	if dc == da {
		t.Errorf("different seeds gave identical degradations: %v", dc)
	}
}

func TestSyntheticMixedInstance(t *testing.T) {
	in, err := SyntheticMixedInstance(72, 6, 8, &cache.QuadCore, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Batch.NumProcs(); got != 72 {
		t.Errorf("NumProcs = %d; want 72", got)
	}
	var pc, serial int
	for _, j := range in.Batch.Jobs {
		if j.Kind == job.PC {
			pc++
		} else {
			serial++
		}
	}
	if pc != 6 || serial != 72-48 {
		t.Errorf("pc=%d serial=%d; want 6/24", pc, serial)
	}
	if _, err := SyntheticMixedInstance(10, 3, 4, &cache.QuadCore, 5); err == nil {
		t.Error("oversubscribed mixed instance accepted")
	}
}

func TestSyntheticPairwiseInstance(t *testing.T) {
	in, err := SyntheticPairwiseInstance(100, &cache.QuadCore, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Batch.NumProcs(); got != 100 {
		t.Errorf("NumProcs = %d; want 100", got)
	}
	d := in.Oracle.Degradation(1, []job.ProcID{2, 3, 4})
	if d < 0 || d > 1.0 {
		t.Errorf("pairwise degradation = %v; want a plausible fraction", d)
	}
	// additive: d(1,{2,3}) = d(1,{2}) + d(1,{3})
	d23 := in.Oracle.Degradation(1, []job.ProcID{2, 3})
	d2 := in.Oracle.Degradation(1, []job.ProcID{2})
	d3 := in.Oracle.Degradation(1, []job.ProcID{3})
	if math.Abs(d23-(d2+d3)) > 1e-12 {
		t.Errorf("pairwise oracle not additive: %v vs %v", d23, d2+d3)
	}
}

func TestPairwiseFromOracle(t *testing.T) {
	in, err := SerialInstance([]string{"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP"}, &cache.DualCore)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := PairwiseFromOracle(in)
	if err != nil {
		t.Fatal(err)
	}
	// pair degradations must agree exactly with the SDC oracle
	for p := job.ProcID(1); int(p) <= 8; p++ {
		for q := job.ProcID(1); int(q) <= 8; q++ {
			if p == q {
				continue
			}
			want := in.Oracle.Degradation(p, []job.ProcID{q})
			got := pw.Oracle.Degradation(p, []job.ProcID{q})
			if math.Abs(want-got) > 1e-12 {
				t.Fatalf("pair (%d,%d): pairwise %v != sdc %v", p, q, got, want)
			}
		}
	}
}

func TestDefaultHalo(t *testing.T) {
	for _, name := range append(PCProgramNames(), "unknown") {
		hx, hy := DefaultHalo(name)
		if hx <= 0 || hy <= 0 {
			t.Errorf("DefaultHalo(%q) = %v,%v", name, hx, hy)
		}
	}
}
