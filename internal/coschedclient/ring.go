package coschedclient

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// hashRing places each replica at vnodes pseudo-random points on a
// 64-bit ring; a key routes to the replica owning the first point at or
// after the key's hash. Virtual nodes smooth the load split (with a
// single point per replica, one replica can own almost the whole ring),
// and the ring gives every key a deterministic preference order: the
// home replica first, then each further replica in ring order — the
// spillover sequence the client walks when the home is open-circuited.
type hashRing struct {
	points []ringPoint // sorted by hash
	n      int         // replica count
}

// ringPoint is one virtual node: a position and the replica owning it.
type ringPoint struct {
	hash    uint64
	replica int
}

// newRing builds the ring for n replicas with vnodes points each.
func newRing(n, vnodes int) *hashRing {
	r := &hashRing{n: n}
	r.points = make([]ringPoint, 0, n*vnodes)
	for rep := 0; rep < n; rep++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("replica-%d|vnode-%d", rep, v)),
				replica: rep,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// order returns every replica exactly once, in the key's deterministic
// preference order: the home replica (owner of the key's position)
// first, then each subsequent distinct replica walking the ring.
func (r *hashRing) order(key string) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// hash64 is FNV-1a over s with a splitmix64 finalizer — stable across
// processes, which is what keeps a fingerprint's home replica the same
// for every client in the fleet. The finalizer matters: bare FNV-1a
// barely avalanches short keys that differ in one trailing byte, so
// "vnode-1" and "vnode-2" land adjacent on the ring and each replica
// owns a few huge contiguous arcs instead of many small ones.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv cannot fail
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
