package coschedclient

import (
	"sync"
	"time"
)

// BreakerConfig tunes one backend's circuit breaker. The zero value
// means: a 20-outcome window, 5 minimum samples, trip at a 50% failure
// rate, stay open 2s, close after 1 half-open success.
type BreakerConfig struct {
	// Window is how many recent outcomes the failure rate is computed
	// over (<= 0 means 20).
	Window int
	// MinSamples is the least outcomes the window needs before the rate
	// can trip the breaker (<= 0 means 5) — one early failure must not
	// open a cold circuit.
	MinSamples int
	// FailureRate opens the breaker when the window's failure fraction
	// reaches it (<= 0 means 0.5).
	FailureRate float64
	// OpenFor is how long an open breaker rejects before letting one
	// half-open probe through (<= 0 means 2s).
	OpenFor time.Duration
	// HalfOpenProbes is how many consecutive half-open successes close
	// the breaker (<= 0 means 1); any half-open failure reopens it.
	HalfOpenProbes int
}

// withDefaults fills the documented defaults.
func (cfg BreakerConfig) withDefaults() BreakerConfig {
	if cfg.Window <= 0 {
		cfg.Window = 20
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 5
	}
	if cfg.FailureRate <= 0 {
		cfg.FailureRate = 0.5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 2 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	return cfg
}

// breakerState is the classic three-state circuit.
type breakerState int

const (
	stateClosed breakerState = iota
	stateHalfOpen
	stateOpen
)

// String renders the state for events and /metrics-adjacent output.
func (s breakerState) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker is one backend's circuit: a ring of recent outcomes drives
// closed→open on failure rate; open→half-open on a timer; half-open
// lets a single probe through at a time and closes after
// HalfOpenProbes successes. A drain signal (the backend announced it
// is going away) forces open immediately regardless of the window.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time
	// transition, when non-nil, observes every state change (telemetry
	// hooks live there, not here).
	transition func(from, to breakerState, reason string)

	mu            sync.Mutex
	state         breakerState
	window        []bool // true = failure
	widx, wlen    int
	fails         int
	openedAt      time.Time
	probeInFlight bool
	probeWins     int
}

// newBreaker builds a closed breaker.
func newBreaker(cfg BreakerConfig, now func() time.Time, transition func(from, to breakerState, reason string)) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{
		cfg:        cfg,
		now:        now,
		transition: transition,
		window:     make([]bool, cfg.Window),
	}
}

// currentState reports the state without advancing it.
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// allow reports whether a request may go to this backend right now.
// Closed always allows; open allows nothing until OpenFor has elapsed,
// at which point the breaker half-opens and admits one probe;
// half-open admits one probe at a time.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.setState(stateHalfOpen, "open interval elapsed")
		b.probeInFlight = true
		return true
	default: // half-open
		if b.probeInFlight {
			return false
		}
		b.probeInFlight = true
		return true
	}
}

// force admits one probe through an open breaker ahead of its OpenFor
// timer. The client uses it when every backend is open-circuited: at
// that point rejecting is strictly worse than probing the key's home.
func (b *breaker) force() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stateOpen {
		return
	}
	b.setState(stateHalfOpen, "all backends open; forced probe")
	b.probeInFlight = true
}

// abandonProbe releases a half-open probe slot whose outcome was
// discarded before reaching onSuccess/onFailure — the attempt was
// cancelled because another attempt won the round or the caller went
// away. The probe neither confirms nor condemns the backend, so no
// outcome is recorded; the next allow() may probe again.
func (b *breaker) abandonProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == stateHalfOpen {
		b.probeInFlight = false
	}
}

// onSuccess records a healthy outcome.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.push(false)
	switch b.state {
	case stateHalfOpen:
		b.probeInFlight = false
		b.probeWins++
		if b.probeWins >= b.cfg.HalfOpenProbes {
			b.reset()
			b.setState(stateClosed, "probe succeeded")
		}
	case stateOpen:
		// A straggler launched before the trip finished well; the window
		// records it but open only exits through allow/force probes.
	}
}

// onFailure records a failed outcome; drain marks the backend as
// announcing its own departure, which opens the circuit immediately.
func (b *breaker) onFailure(drain bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.push(true)
	switch b.state {
	case stateClosed:
		if drain {
			b.open("backend draining")
			return
		}
		if b.wlen >= b.cfg.MinSamples && float64(b.fails)/float64(b.wlen) >= b.cfg.FailureRate {
			b.open("failure rate tripped")
		}
	case stateHalfOpen:
		b.probeInFlight = false
		reason := "probe failed"
		if drain {
			reason = "backend draining"
		}
		b.open(reason)
	}
}

// open transitions to open and stamps the reopen timer. Callers hold mu.
func (b *breaker) open(reason string) {
	b.openedAt = b.now()
	b.probeWins = 0
	b.probeInFlight = false
	b.setState(stateOpen, reason)
}

// reset clears the outcome window (a freshly closed circuit should not
// re-trip on stale history). Callers hold mu.
func (b *breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.widx, b.wlen, b.fails = 0, 0, 0
	b.probeWins = 0
	b.probeInFlight = false
}

// push records one outcome in the ring window. Callers hold mu.
func (b *breaker) push(failed bool) {
	if b.wlen == len(b.window) {
		if b.window[b.widx] {
			b.fails--
		}
	} else {
		b.wlen++
	}
	b.window[b.widx] = failed
	if failed {
		b.fails++
	}
	b.widx = (b.widx + 1) % len(b.window)
}

// setState flips the state and notifies the transition hook. Callers
// hold mu; the hook must not call back into the breaker.
func (b *breaker) setState(to breakerState, reason string) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.transition != nil {
		b.transition(from, to, reason)
	}
}
