package coschedclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosched/internal/server"
	"cosched/internal/telemetry"
)

// --- ring ---

func TestRingOrderIsDeterministicAndComplete(t *testing.T) {
	r := newRing(5, 64)
	for _, key := range []string{"a", "b", "fingerprint-1", "fingerprint-2"} {
		o1 := r.order(key)
		o2 := r.order(key)
		if len(o1) != 5 {
			t.Fatalf("order(%q) has %d entries; want 5", key, len(o1))
		}
		seen := make(map[int]bool)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("order(%q) not deterministic: %v vs %v", key, o1, o2)
			}
			if seen[o1[i]] {
				t.Fatalf("order(%q) repeats replica %d: %v", key, o1[i], o1)
			}
			seen[o1[i]] = true
		}
	}
}

func TestRingSpreadsKeysAcrossReplicas(t *testing.T) {
	r := newRing(3, 64)
	homes := make(map[int]int)
	for i := 0; i < 300; i++ {
		homes[r.order(fmt.Sprintf("key-%d", i))[0]]++
	}
	for rep := 0; rep < 3; rep++ {
		if homes[rep] == 0 {
			t.Fatalf("replica %d is home to no keys: %v", rep, homes)
		}
	}
}

// --- breaker ---

// fakeClock is an adjustable time source for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestBreakerTripsHalfOpensAndCloses(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var transitions []string
	b := newBreaker(BreakerConfig{Window: 10, MinSamples: 4, FailureRate: 0.5, OpenFor: time.Second},
		clk.now, func(from, to breakerState, reason string) {
			transitions = append(transitions, from.String()+"->"+to.String())
		})

	// Below MinSamples nothing trips.
	b.onFailure(false)
	b.onFailure(false)
	if got := b.currentState(); got != stateClosed {
		t.Fatalf("state after 2 failures = %v; want closed (below MinSamples)", got)
	}
	// Two more failures cross MinSamples at 100% failure rate.
	b.onFailure(false)
	b.onFailure(false)
	if got := b.currentState(); got != stateOpen {
		t.Fatalf("state after 4 failures = %v; want open", got)
	}
	if b.allow() {
		t.Fatal("open breaker allowed a request before OpenFor elapsed")
	}
	// After OpenFor: one probe allowed, the rest rejected.
	clk.advance(1100 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after OpenFor")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.onSuccess()
	if got := b.currentState(); got != stateClosed {
		t.Fatalf("state after probe success = %v; want closed", got)
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v; want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v; want %v", transitions, want)
		}
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(BreakerConfig{Window: 10, MinSamples: 2, FailureRate: 0.5, OpenFor: time.Second}, clk.now, nil)
	b.onFailure(false)
	b.onFailure(false)
	clk.advance(1100 * time.Millisecond)
	if !b.allow() {
		t.Fatal("no half-open probe")
	}
	b.onFailure(false)
	if got := b.currentState(); got != stateOpen {
		t.Fatalf("state after failed probe = %v; want open", got)
	}
	// The reopen restarts the OpenFor timer.
	if b.allow() {
		t.Fatal("reopened breaker allowed traffic immediately")
	}
}

func TestBreakerDrainOpensImmediately(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(BreakerConfig{Window: 20, MinSamples: 10, FailureRate: 0.9, OpenFor: time.Second}, clk.now, nil)
	b.onSuccess()
	b.onFailure(true) // drain signal: no window math required
	if got := b.currentState(); got != stateOpen {
		t.Fatalf("state after drain failure = %v; want open", got)
	}
}

func TestBreakerForceProbesOpenCircuit(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: time.Hour}, clk.now, nil)
	b.onFailure(false)
	b.onFailure(false)
	if b.allow() {
		t.Fatal("open breaker allowed before force")
	}
	b.force()
	if got := b.currentState(); got != stateHalfOpen {
		t.Fatalf("state after force = %v; want half-open", got)
	}
}

func TestBreakerAbandonProbeReleasesSlot(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: time.Second}, clk.now, nil)
	b.onFailure(false)
	b.onFailure(false)
	clk.advance(1100 * time.Millisecond)
	if !b.allow() {
		t.Fatal("no half-open probe")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.abandonProbe()
	if got := b.currentState(); got != stateHalfOpen {
		t.Fatalf("state after abandon = %v; want still half-open", got)
	}
	if !b.allow() {
		t.Fatal("abandoned probe slot was not released for the next probe")
	}
}

// --- client plumbing helpers ---

// solveBody is a minimal valid wire request.
func solveBody() *server.SolveRequest {
	return &server.SolveRequest{Synthetic: 4, Seed: 1, Method: "hastar"}
}

// okHandler answers 200 with a decodable SolveResponse and records the
// deadline_ms each attempt carried.
func okHandler(name string, deadlines *[]int64, mu *sync.Mutex, delay time.Duration) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req server.SolveRequest
		body, _ := io.ReadAll(r.Body)
		json.Unmarshal(body, &req) //nolint:errcheck
		if mu != nil {
			mu.Lock()
			*deadlines = append(*deadlines, req.DeadlineMS)
			mu.Unlock()
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.SolveResponse{ //nolint:errcheck
			Method:    name,
			RequestID: r.Header.Get(server.RequestIDHeader),
		})
	}
}

// newClient builds a test client over the given replica URLs with fast
// backoff and hedging disabled unless overridden.
func newClient(t *testing.T, mutate func(*Config), urls ...string) *Client {
	t.Helper()
	cfg := Config{
		Replicas:      urls,
		MaxAttempts:   3,
		BackoffBase:   time.Millisecond,
		BackoffCap:    5 * time.Millisecond,
		HedgeQuantile: -1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSolveRoutesToHomeAndSucceeds(t *testing.T) {
	var mu sync.Mutex
	var deadlines []int64
	srv := httptest.NewServer(okHandler("s1", &deadlines, &mu, 0))
	defer srv.Close()
	c := newClient(t, nil, srv.URL)
	res, err := c.Solve(context.Background(), solveBody())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || res.Response == nil || res.Response.Method != "s1" {
		t.Fatalf("result = %+v", res)
	}
	if res.Attempts != 1 || res.Retries != 0 || res.Hedged {
		t.Fatalf("attempt accounting = %+v; want single clean attempt", res)
	}
	if res.Replica != srv.URL || res.Home != srv.URL {
		t.Fatalf("replica/home = %q/%q; want %q", res.Replica, res.Home, srv.URL)
	}
	if got := c.Stats(); got.Requests != 1 || got.Attempts != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestFailoverRetriesOnAnotherReplicaWithSameRequestID(t *testing.T) {
	var mu sync.Mutex
	var deadlines []int64
	var ids []string
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get(server.RequestIDHeader))
		var req server.SolveRequest
		body, _ := io.ReadAll(r.Body)
		json.Unmarshal(body, &req) //nolint:errcheck
		deadlines = append(deadlines, req.DeadlineMS)
		mu.Unlock()
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer dead.Close()
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get(server.RequestIDHeader))
		var req server.SolveRequest
		body, _ := io.ReadAll(r.Body)
		json.Unmarshal(body, &req) //nolint:errcheck
		deadlines = append(deadlines, req.DeadlineMS)
		mu.Unlock()
		okHandler("alive", nil, nil, 0)(w, r)
	}))
	defer alive.Close()

	// Find a key whose ring home is replica 0 (the dead one), so the
	// retry demonstrably fails over to replica 1.
	c := newClient(t, nil, dead.URL, alive.URL)
	key := ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.ring.order(k)[0] == 0 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key homed on replica 0 in 64 probes")
	}
	req := solveBody()
	req.DeadlineMS = 5000
	start := time.Now()
	res, err := c.SolveKeyed(context.Background(), key, "req-failover", req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 {
		t.Fatalf("status = %d; want 200 via failover", res.Status)
	}
	if res.Replica != alive.URL || res.Home != dead.URL {
		t.Fatalf("replica = %q home = %q; want failover from %q to %q", res.Replica, res.Home, dead.URL, alive.URL)
	}
	if res.Attempts != 2 || res.Retries != 1 {
		t.Fatalf("attempts/retries = %d/%d; want 2/1", res.Attempts, res.Retries)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 2 || ids[0] != "req-failover" || ids[1] != "req-failover" {
		t.Fatalf("request IDs across attempts = %v; want the same ID twice", ids)
	}
	// Deadline propagation: the second attempt's wire deadline must have
	// shrunk by the elapsed client time (backoff included).
	if len(deadlines) != 2 || deadlines[1] > deadlines[0] || deadlines[0] > 5000 {
		t.Fatalf("wire deadlines = %v; want second attempt below first, both <= 5000", deadlines)
	}
	elapsed := time.Since(start)
	if slack := 5000 - deadlines[1]; time.Duration(slack)*time.Millisecond > elapsed+50*time.Millisecond {
		t.Fatalf("second attempt gave up %dms of budget but only %v elapsed", slack, elapsed)
	}
	st := c.Stats()
	if st.Retries != 1 || st.Failovers != 1 {
		t.Fatalf("stats = %+v; want 1 retry, 1 failover", st)
	}
}

func TestTotalWallTimeNeverExceedsCallerDeadline(t *testing.T) {
	// Every replica black-holes until the attempt context expires; with
	// 3 attempts plus backoff the naive client would take ~3x the
	// deadline. The budget anchor must cap the whole request at the
	// caller's deadline.
	hang := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck // unread body hides client disconnects
		<-r.Context().Done()
	})
	s1 := httptest.NewServer(hang)
	defer s1.Close()
	s2 := httptest.NewServer(hang)
	defer s2.Close()

	c := newClient(t, func(cfg *Config) {
		cfg.BackoffBase = 20 * time.Millisecond
		cfg.BackoffCap = 100 * time.Millisecond
	}, s1.URL, s2.URL)
	req := solveBody()
	req.DeadlineMS = 300
	start := time.Now()
	_, err := c.Solve(context.Background(), req)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("hung fleet produced a success")
	}
	if elapsed > 450*time.Millisecond {
		t.Fatalf("request took %v against a 300ms caller deadline", elapsed)
	}
	if st := c.Stats(); st.Failures != 1 || st.DeadlineExhausted != 1 {
		t.Fatalf("stats = %+v; want the failure classified as deadline exhaustion", st)
	}
}

func TestCallerContextDeadlineBoundsBudget(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck // unread body hides client disconnects
		<-r.Context().Done()
	}))
	defer hang.Close()
	c := newClient(t, nil, hang.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Solve(ctx, solveBody()) // no DeadlineMS: budget comes from ctx
	if err == nil {
		t.Fatal("hung replica produced a success")
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("request took %v against a 200ms context deadline", elapsed)
	}
}

func TestDegradedAnswerIsNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.SolveResponse{Degraded: true}) //nolint:errcheck
	}))
	defer srv.Close()
	c := newClient(t, nil, srv.URL)
	res, err := c.Solve(context.Background(), solveBody())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || !res.Response.Degraded {
		t.Fatalf("result = %+v; want the degraded 200 passed through", res)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("degraded answer provoked %d calls; want 1 (no retry)", n)
	}
}

func TestHedgeFiresAndFastReplicaWins(t *testing.T) {
	var slowCancelled atomic.Bool
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck // unread body hides client disconnects
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			slowCancelled.Store(true)
			return
		}
		okHandler("slow", nil, nil, 0)(w, r)
	}))
	defer slow.Close()
	fast := httptest.NewServer(okHandler("fast", nil, nil, 0))
	defer fast.Close()

	c := newClient(t, func(cfg *Config) {
		cfg.HedgeQuantile = 0.9
		cfg.HedgeMin = 10 * time.Millisecond
		cfg.HedgeMax = 10 * time.Millisecond // force the hedge at 10ms
	}, slow.URL, fast.URL)
	// Pick a key homed on the slow replica.
	key := ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.ring.order(k)[0] == 0 {
			key = k
			break
		}
	}
	req := solveBody()
	req.DeadlineMS = 5000
	start := time.Now()
	res, err := c.SolveKeyed(context.Background(), key, "req-hedge", req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || res.Replica != fast.URL {
		t.Fatalf("result = %+v; want the fast replica's answer", res)
	}
	if !res.Hedged || !res.HedgeWon {
		t.Fatalf("result = %+v; want a winning hedge recorded", res)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged request took %v; the 2s slow replica must not gate it", elapsed)
	}
	// The losing attempt's context must be cancelled promptly.
	deadline := time.Now().Add(time.Second)
	for !slowCancelled.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !slowCancelled.Load() {
		t.Fatal("losing hedge attempt was not cancelled")
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v; want one hedge, one hedge win", st)
	}
}

func TestBreakerOpensRoutesAwayThenRecovers(t *testing.T) {
	var broken atomic.Bool
	broken.Store(true)
	var flaky *httptest.Server
	flaky = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"boom"}`, http.StatusServiceUnavailable)
			return
		}
		okHandler("flaky", nil, nil, 0)(w, r)
	}))
	defer flaky.Close()
	steady := httptest.NewServer(okHandler("steady", nil, nil, 0))
	defer steady.Close()

	var events []telemetry.Event
	var evMu sync.Mutex
	sink := telemetry.EventSinkFunc(func(ev telemetry.Event) error {
		evMu.Lock()
		events = append(events, ev)
		evMu.Unlock()
		return nil
	})
	c := newClient(t, func(cfg *Config) {
		cfg.Breaker = BreakerConfig{Window: 8, MinSamples: 2, FailureRate: 0.5, OpenFor: 50 * time.Millisecond}
		cfg.EventSink = sink
	}, flaky.URL, steady.URL)
	key := ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.ring.order(k)[0] == 0 {
			key = k
			break
		}
	}

	// Hammer the flaky home until its breaker opens.
	for i := 0; i < 4; i++ {
		res, err := c.SolveKeyed(context.Background(), key, fmt.Sprintf("warm-%d", i), solveBody())
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != 200 {
			t.Fatalf("failover result = %+v", res)
		}
	}
	st := c.Stats()
	if st.BreakerOpens == 0 {
		t.Fatalf("stats = %+v; want the flaky replica's breaker opened", st)
	}
	// With the breaker open the home is skipped at pick time: a request
	// should go straight to the steady replica with no retry round.
	res, err := c.SolveKeyed(context.Background(), key, "spill", solveBody())
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica != steady.URL || res.Retries != 0 {
		t.Fatalf("spillover result = %+v; want a first-attempt answer from the steady replica", res)
	}
	if got := c.Stats(); got.Spillovers == 0 {
		t.Fatalf("stats = %+v; want a spillover recorded", got)
	}

	// Heal the replica; after OpenFor the half-open probe closes the
	// breaker and the home serves again.
	broken.Store(false)
	time.Sleep(60 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := c.SolveKeyed(context.Background(), key, "recover", solveBody())
		if err != nil {
			t.Fatal(err)
		}
		if res.Replica == flaky.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered the healed home replica")
		}
		time.Sleep(20 * time.Millisecond)
	}
	st = c.Stats()
	if st.BreakerHalfOpens == 0 || st.BreakerCloses == 0 {
		t.Fatalf("stats = %+v; want half-open and close transitions", st)
	}
	// Breaker transitions must be visible in the event stream.
	evMu.Lock()
	defer evMu.Unlock()
	var sawOpen, sawClose bool
	for _, ev := range events {
		if ev.Ev == "client_breaker" && ev.Replica == flaky.URL {
			switch ev.Breaker {
			case "open":
				sawOpen = true
			case "closed":
				sawClose = true
			}
		}
	}
	if !sawOpen || !sawClose {
		t.Fatalf("client_breaker events missing transitions: open=%v close=%v", sawOpen, sawClose)
	}
}

func TestAbandonedHalfOpenProbeDoesNotWedgeBreaker(t *testing.T) {
	// The review scenario: replica 0 (the key's home) breaks, then
	// "revives" as a slow node — every half-open probe sent to it is
	// beaten by the hedge on replica 1 and abandoned mid-flight. A leaked
	// probe slot would pin the breaker half-open forever (force() only
	// acts on open circuits) and the home could never rejoin the fleet;
	// the round's outcome drain must release the slot so that once the
	// home is fast again a probe completes and the breaker closes.
	var mode atomic.Int32 // 0 = broken, 1 = revived but slow, 2 = fast
	home := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case 0:
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"boom"}`, http.StatusServiceUnavailable)
		case 1:
			io.Copy(io.Discard, r.Body) //nolint:errcheck // unread body hides client disconnects
			select {
			case <-time.After(2 * time.Second):
			case <-r.Context().Done():
				return
			}
			okHandler("home", nil, nil, 0)(w, r)
		default:
			okHandler("home", nil, nil, 0)(w, r)
		}
	}))
	defer home.Close()
	other := httptest.NewServer(okHandler("other", nil, nil, 0))
	defer other.Close()

	c := newClient(t, func(cfg *Config) {
		cfg.Breaker = BreakerConfig{Window: 8, MinSamples: 2, FailureRate: 0.5, OpenFor: 30 * time.Millisecond}
		cfg.HedgeQuantile = 0.9
		cfg.HedgeMin = 10 * time.Millisecond
		cfg.HedgeMax = 10 * time.Millisecond // force the hedge at 10ms
	}, home.URL, other.URL)
	key := ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.ring.order(k)[0] == 0 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key homed on replica 0 in 64 probes")
	}

	// Trip the home's breaker.
	for i := 0; i < 4; i++ {
		if _, err := c.SolveKeyed(context.Background(), key, fmt.Sprintf("trip-%d", i), solveBody()); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.BreakerOpens == 0 {
		t.Fatalf("stats = %+v; want the home breaker opened", st)
	}

	// Revive the home as a slow node: half-open probes go out but lose
	// to the hedge on the healthy replica and are abandoned.
	mode.Store(1)
	time.Sleep(40 * time.Millisecond) // past OpenFor
	for i := 0; i < 5; i++ {
		res, err := c.SolveKeyed(context.Background(), key, fmt.Sprintf("slow-%d", i), solveBody())
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != 200 {
			t.Fatalf("result during slow revival = %+v", res)
		}
		time.Sleep(15 * time.Millisecond)
	}
	if st := c.Stats(); st.BreakerHalfOpens == 0 {
		t.Fatalf("stats = %+v; want at least one half-open probe attempted", st)
	}

	// Make the home fast: a fresh probe must be admitted, succeed, and
	// close the breaker. A leaked slot would keep the home out forever.
	mode.Store(2)
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := c.SolveKeyed(context.Background(), key, "rejoin", solveBody())
		if err != nil {
			t.Fatal(err)
		}
		if res.Replica == home.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("home replica never rejoined after abandoned probes; stats = %+v", c.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := c.Stats(); st.BreakerCloses == 0 {
		t.Fatalf("stats = %+v; want the home breaker closed again", st)
	}
}

func TestCallerCancellationIsNotDeadlineExhaustion(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck // unread body hides client disconnects
		<-r.Context().Done()
	}))
	defer hang.Close()
	c := newClient(t, nil, hang.URL)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := c.Solve(ctx, solveBody())
	if err == nil {
		t.Fatal("cancelled request produced a success")
	}
	if errors.Is(err, ErrDeadlineExhausted) {
		t.Fatalf("plain cancellation misclassified as deadline exhaustion: %v", err)
	}
	if st := c.Stats(); st.Failures != 1 || st.DeadlineExhausted != 0 {
		t.Fatalf("stats = %+v; want a failure but no deadline exhaustion", st)
	}
}

func TestLosingHedgeFinalFailureDoesNotClaimHedgeWin(t *testing.T) {
	// The home hangs; the hedge replica answers a final (non-retryable)
	// 400. The request hedged, but nothing "won": HedgeWon must stay
	// false on a failing final attempt, matching the hedge_wins counter.
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck // unread body hides client disconnects
		<-r.Context().Done()
	}))
	defer hang.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer bad.Close()
	c := newClient(t, func(cfg *Config) {
		cfg.HedgeQuantile = 0.9
		cfg.HedgeMin = 10 * time.Millisecond
		cfg.HedgeMax = 10 * time.Millisecond
	}, hang.URL, bad.URL)
	key := ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.ring.order(k)[0] == 0 {
			key = k
			break
		}
	}
	req := solveBody()
	req.DeadlineMS = 2000
	res, err := c.SolveKeyed(context.Background(), key, "req-hedge-fail", req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusBadRequest || !res.Hedged {
		t.Fatalf("result = %+v; want the hedge's final 400", res)
	}
	if res.HedgeWon {
		t.Fatalf("result = %+v; a failing final attempt must not claim a hedge win", res)
	}
	if st := c.Stats(); st.HedgeWins != 0 {
		t.Fatalf("stats = %+v; want no hedge win counted", st)
	}
}

func TestNewDoesNotMutateCallerReplicaSlice(t *testing.T) {
	urls := []string{"http://a/", "http://b/"}
	if _, err := New(Config{Replicas: urls}); err != nil {
		t.Fatal(err)
	}
	if urls[0] != "http://a/" || urls[1] != "http://b/" {
		t.Fatalf("New mutated the caller's replica slice: %v", urls)
	}
}

func TestRetryAfterHTTPDateIsHonored(t *testing.T) {
	var calls atomic.Int64
	var firstRetryAt atomic.Int64
	start := time.Now()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// The HTTP-date form of Retry-After (RFC 9110). TimeFormat has
			// second resolution, so +2s leaves >= ~1s after truncation.
			w.Header().Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
		firstRetryAt.Store(int64(time.Since(start)))
		okHandler("s", nil, nil, 0)(w, r)
	}))
	defer srv.Close()
	c := newClient(t, nil, srv.URL) // backoff base 1ms: any long wait is Retry-After's
	res, err := c.Solve(context.Background(), solveBody())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 {
		t.Fatalf("status = %d", res.Status)
	}
	if gap := time.Duration(firstRetryAt.Load()); gap < 900*time.Millisecond {
		t.Fatalf("retry arrived after %v; want the HTTP-date Retry-After honoured", gap)
	}
}

func TestAttemptEventsAreNumberedAndJoinable(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		okHandler("s", nil, nil, 0)(w, r)
	}))
	defer srv.Close()
	var events []telemetry.Event
	var mu sync.Mutex
	c := newClient(t, func(cfg *Config) {
		cfg.EventSink = telemetry.EventSinkFunc(func(ev telemetry.Event) error {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
			return nil
		})
	}, srv.URL)
	if _, err := c.SolveKeyed(context.Background(), "k", "req-events", solveBody()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var attempts []int
	var final *telemetry.Event
	for i := range events {
		switch events[i].Ev {
		case "client_attempt":
			if events[i].ReqID != "req-events" {
				t.Fatalf("attempt event carries req_id %q; want req-events", events[i].ReqID)
			}
			attempts = append(attempts, events[i].Attempt)
		case "client_request":
			final = &events[i]
		}
	}
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Fatalf("attempt numbering = %v; want [1 2]", attempts)
	}
	if final == nil || final.ReqID != "req-events" || final.Status != 200 || final.Attempt != 2 {
		t.Fatalf("client_request summary = %+v; want status 200 after 2 attempts", final)
	}
}

func TestRoutingKeyMatchesFingerprintEquivalence(t *testing.T) {
	a := &server.SolveRequest{Synthetic: 6, Seed: 42, Machine: "quad"}
	b := &server.SolveRequest{Synthetic: 6, Seed: 42, Machine: "quad", Method: "beam", NoCache: true}
	cDiff := &server.SolveRequest{Synthetic: 6, Seed: 43, Machine: "quad"}
	if RoutingKey(a) != RoutingKey(b) {
		t.Fatal("method/cache knobs changed the routing key; only the workload identity should")
	}
	if RoutingKey(a) == RoutingKey(cDiff) {
		t.Fatal("different seeds share a routing key")
	}
}

func TestRetryAfterIsHonored(t *testing.T) {
	var calls atomic.Int64
	var firstRetryAt atomic.Int64
	start := time.Now()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
		firstRetryAt.Store(int64(time.Since(start)))
		okHandler("s", nil, nil, 0)(w, r)
	}))
	defer srv.Close()
	c := newClient(t, nil, srv.URL) // backoff base 1ms: any long wait is Retry-After's
	res, err := c.Solve(context.Background(), solveBody())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 {
		t.Fatalf("status = %d", res.Status)
	}
	if gap := time.Duration(firstRetryAt.Load()); gap < 900*time.Millisecond {
		t.Fatalf("retry arrived after %v; want >= ~1s per Retry-After", gap)
	}
}
