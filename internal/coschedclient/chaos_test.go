package coschedclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cosched/internal/chaosproxy"
	"cosched/internal/server"
	"cosched/internal/telemetry"
)

// bootReplica starts a real solving daemon and a chaos proxy in front
// of it, returning the proxied base URL the client should dial.
func bootReplica(t *testing.T, faults chaosproxy.Config) (*chaosproxy.Proxy, string) {
	t.Helper()
	s, err := server.New(server.Config{Workers: 2, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort cleanup
	})
	faults.Target = ts.Listener.Addr().String()
	p, err := chaosproxy.Listen(faults)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() }) //nolint:errcheck
	return p, "http://" + p.Addr()
}

// TestChaosFleetSurvivesMixedFaults drives a ladder of solves through
// the full client against two real daemons behind fault-injecting
// proxies. Roughly a third of connections to each replica misbehave
// (dropped, 503-rejected, or reset mid-body); retries, hedging and
// failover must keep the logical success rate at 100% while staying
// inside each request's deadline, and the client telemetry must retain
// attempt-numbered events for the requests that failed over.
func TestChaosFleetSurvivesMixedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos ladder is seconds-long")
	}
	_, url1 := bootReplica(t, chaosproxy.Config{Seed: 11, DropProb: 0.15, Err503Prob: 0.1, ResetProb: 0.08, RetryAfter: time.Second})
	_, url2 := bootReplica(t, chaosproxy.Config{Seed: 12, DropProb: 0.15, Err503Prob: 0.1, ResetProb: 0.08, RetryAfter: time.Second})

	var mu sync.Mutex
	var events []telemetry.Event
	c, err := New(Config{
		Replicas: []string{url1, url2},
		// One fault draw per request: faults are per TCP connection.
		HTTPClient:  &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		MaxAttempts: 4,
		BackoffBase: 5 * time.Millisecond,
		BackoffCap:  50 * time.Millisecond,
		Seed:        3,
		// Hedge aggressively so black-hole-free slowness also gets
		// covered by the second replica.
		HedgeQuantile: 0.9,
		HedgeMin:      150 * time.Millisecond,
		HedgeMax:      500 * time.Millisecond,
		Breaker:       BreakerConfig{Window: 16, MinSamples: 6, FailureRate: 0.7, OpenFor: 200 * time.Millisecond},
		EventSink: telemetry.EventSinkFunc(func(ev telemetry.Event) error {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	const total = 60
	okCount := 0
	for i := 0; i < total; i++ {
		req := &server.SolveRequest{Synthetic: 5, Seed: int64(i % 7), Method: "hastar", DeadlineMS: 10000}
		start := time.Now()
		res, err := c.Solve(context.Background(), req)
		elapsed := time.Since(start)
		if elapsed > 11*time.Second {
			t.Fatalf("request %d took %v against a 10s deadline", i, elapsed)
		}
		if err == nil && res.Status == 200 {
			okCount++
			if res.Response == nil || len(res.Response.Groups) == 0 {
				t.Fatalf("request %d: 200 with undecodable/empty answer: %+v", i, res)
			}
		}
	}
	if okCount < total*95/100 {
		t.Fatalf("only %d/%d logical requests succeeded; want >= 95%%", okCount, total)
	}

	st := c.Stats()
	if st.Retries == 0 && st.Hedges == 0 {
		t.Fatalf("stats = %+v; fault mix exercised neither retries nor hedges", st)
	}

	// Every retried request must have attempt-numbered events under one
	// request ID: attempt 1..n with no gaps, then a client_request
	// summary with the same ID.
	mu.Lock()
	defer mu.Unlock()
	attemptsByID := make(map[string][]int)
	finals := make(map[string]telemetry.Event)
	for _, ev := range events {
		switch ev.Ev {
		case "client_attempt":
			attemptsByID[ev.ReqID] = append(attemptsByID[ev.ReqID], ev.Attempt)
		case "client_request":
			finals[ev.ReqID] = ev
		}
	}
	multi := 0
	for id, ns := range attemptsByID {
		if _, ok := finals[id]; !ok {
			t.Fatalf("request %s has attempts but no client_request summary", id)
		}
		seen := make(map[int]bool, len(ns))
		maxN := 0
		for _, n := range ns {
			if seen[n] {
				t.Fatalf("request %s numbered attempt %d twice: %v", id, n, ns)
			}
			seen[n] = true
			if n > maxN {
				maxN = n
			}
		}
		if maxN != len(ns) {
			t.Fatalf("request %s attempts are gappy: %v", id, ns)
		}
		if len(ns) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no request needed more than one attempt; the fault mix did not exercise failover")
	}
	if len(finals) != total {
		t.Fatalf("client_request summaries = %d; want %d", len(finals), total)
	}
}

// TestChaosBreakerIsolatesDeadReplica kills one replica's proxy target
// entirely (every connection dropped) and checks the fleet keeps
// answering from the survivor while the dead replica's breaker opens,
// then recovers once the faults are lifted.
func TestChaosBreakerIsolatesDeadReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos ladder is seconds-long")
	}
	p1, url1 := bootReplica(t, chaosproxy.Config{Seed: 21})
	_, url2 := bootReplica(t, chaosproxy.Config{Seed: 22})
	c, err := New(Config{
		Replicas:      []string{url1, url2},
		HTTPClient:    &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		MaxAttempts:   3,
		BackoffBase:   2 * time.Millisecond,
		BackoffCap:    20 * time.Millisecond,
		HedgeQuantile: -1,
		Breaker:       BreakerConfig{Window: 8, MinSamples: 3, FailureRate: 0.5, OpenFor: 150 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	solveOK := func(i int) string {
		t.Helper()
		req := &server.SolveRequest{Synthetic: 4, Seed: int64(i), Method: "hastar", DeadlineMS: 10000}
		res, err := c.Solve(context.Background(), req)
		if err != nil || res.Status != 200 {
			t.Fatalf("request %d failed: res=%+v err=%v", i, res, err)
		}
		return res.Replica
	}
	for i := 0; i < 6; i++ {
		solveOK(i)
	}
	// Kill replica 1 (all connections dropped at the proxy).
	p1.SetFaults(chaosproxy.Config{DropProb: 1})
	for i := 6; i < 20; i++ {
		if rep := solveOK(i); rep == url1 {
			t.Fatalf("request %d answered by the dead replica", i)
		}
	}
	if st := c.Stats(); st.BreakerOpens == 0 {
		t.Fatalf("stats = %+v; want the dead replica's breaker opened", st)
	}
	// Revive and wait for the breaker to probe its way closed.
	p1.SetFaults(chaosproxy.Config{})
	time.Sleep(200 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for i := 20; time.Now().Before(deadline); i++ {
		if solveOK(i) == url1 {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("revived replica never served again")
	}
	st := c.Stats()
	if st.BreakerHalfOpens == 0 || st.BreakerCloses == 0 {
		t.Fatalf("stats = %+v; want half-open and close transitions after revival", st)
	}
}
