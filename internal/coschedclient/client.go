// Package coschedclient is the fleet-serving client for a set of
// coschedd replicas: one logical Solve call survives replica crashes,
// slow nodes and overload instead of surfacing every transient failure
// to the caller.
//
// The client layers five mechanisms over the daemon's HTTP/JSON API:
//
//   - Deadline propagation. The caller's budget (request deadline_ms
//     and/or a context deadline) is anchored once, at the logical
//     request's start; every physical attempt re-computes the remaining
//     budget and sends it as the attempt's deadline_ms, so a retried
//     request never asks a replica for more time than the caller has
//     left, and total wall time never exceeds the caller's deadline.
//   - Retries. Only idempotent failures retry — connect/transport
//     errors and 429/503/504 verdicts; a 200 (even degraded) or any
//     other status is final. Backoff is capped exponential with seeded
//     jitter, and a server-sent Retry-After raises the wait: the
//     server's own estimate beats the client's guess.
//   - Hedging. After the client's observed latency quantile (a window
//     of recent successful attempt latencies), a speculative duplicate
//     fires at the next replica in the key's ring order;
//     first-success-wins and the loser's context is cancelled, which
//     the daemon propagates into the solver.
//   - Circuit breaking. Each backend has a closed/open/half-open
//     breaker over a failure-rate window; a 503 "draining" answer
//     (the /healthz drain signal, passively observed on rejected
//     requests) opens the circuit immediately.
//   - Consistent-hash routing. The workload's fingerprint key picks a
//     home replica on a virtual-node hash ring, keeping each
//     fingerprint's solution cache hot on one node; when the home is
//     open-circuited the request spills deterministically to the next
//     replica on the ring.
//
// Every physical attempt emits a client_attempt event (attempt number,
// replica, hedge flag, status) and each logical request a
// client_request summary, all carrying the caller's request ID — the
// same ID every replica logs — so a failed-over request remains one
// traceable unit of work across the fleet. Counters land in the
// client.* metric family.
package coschedclient

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cosched/internal/server"
	"cosched/internal/telemetry"
)

// Config wires a Client. Replicas is required; everything else has a
// usable zero value.
type Config struct {
	// Replicas are the daemon base URLs (e.g. "http://127.0.0.1:8080"),
	// in a fleet-wide agreed order: the consistent-hash ring is built
	// over the indexes, so every client listing the same replicas in
	// the same order routes a fingerprint to the same home node.
	Replicas []string
	// HTTPClient issues the physical attempts (nil means a default
	// transport client with no overall timeout — per-attempt budgets
	// come from the deadline machinery, not http.Client.Timeout).
	HTTPClient *http.Client
	// MaxAttempts bounds the sequential retry rounds of one logical
	// request (<= 0 means 3). Hedged duplicates ride inside a round and
	// do not consume rounds.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between rounds (<= 0 mean 25ms and 1s); the wait for round r is
	// min(cap, base<<r) with seeded half-jitter, raised to any
	// server-sent Retry-After.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the backoff jitter (0 means 1) — deterministic
	// sequences keep chaos tests reproducible.
	Seed int64
	// HedgeQuantile is the observed-latency quantile after which a
	// round hedges to the next replica (0 means 0.9; negative disables
	// hedging). HedgeMin/HedgeMax clamp the resulting delay (<= 0 mean
	// 5ms and 1s); until hedgeWarmup successes are observed the delay
	// is HedgeMax.
	HedgeQuantile float64
	HedgeMin      time.Duration
	HedgeMax      time.Duration
	// VNodes is the ring's virtual-node count per replica (<= 0 means
	// 128 — enough points that a two-replica ring splits keys near
	// 50/50; 64 leaves visible arc lumps).
	VNodes int
	// Breaker tunes every backend's circuit breaker.
	Breaker BreakerConfig
	// Metrics receives the client.* family (nil means a private
	// registry).
	Metrics *telemetry.Registry
	// EventSink, when non-nil, receives client_attempt, client_request
	// and client_breaker events.
	EventSink telemetry.EventSink
}

// Stats is a snapshot of the client.* counters, for reports and tests.
type Stats struct {
	// Requests counts logical Solve calls; Attempts physical HTTP
	// calls; Retries rounds after the first; Hedges speculative
	// duplicates and HedgeWins the ones that answered first; Failovers
	// successes won by a non-home replica; Spillovers routes that
	// skipped an open-circuited home at pick time.
	Requests   int64 `json:"requests"`
	Attempts   int64 `json:"attempts"`
	Retries    int64 `json:"retries"`
	Hedges     int64 `json:"hedges"`
	HedgeWins  int64 `json:"hedge_wins"`
	Failovers  int64 `json:"failovers"`
	Spillovers int64 `json:"spillovers"`
	// Failures counts logical requests that returned no usable answer;
	// DeadlineExhausted the subset that ran out of caller budget.
	Failures          int64 `json:"failures"`
	DeadlineExhausted int64 `json:"deadline_exhausted"`
	// Breaker transition counts, summed over backends.
	BreakerOpens     int64 `json:"breaker_opens"`
	BreakerHalfOpens int64 `json:"breaker_half_opens"`
	BreakerCloses    int64 `json:"breaker_closes"`
}

// Result is one logical request's outcome. Status is the final HTTP
// verdict (200 on success; the last attempt's status otherwise);
// Response is decoded on 200.
type Result struct {
	Status   int
	Response *server.SolveResponse
	// Body is the final attempt's raw response body.
	Body []byte
	// Replica is the answering backend's base URL; Home the key's
	// ring-home backend (equal unless the request failed or hedged
	// over).
	Replica string
	Home    string
	// Attempts is the physical HTTP calls made; Retries the rounds
	// after the first; Hedged whether a duplicate fired and HedgeWon
	// whether it answered first.
	Attempts int
	Retries  int
	Hedged   bool
	HedgeWon bool
}

// ErrDeadlineExhausted reports that the caller's budget ran out before
// any attempt could succeed (wrapped in the returned error).
var ErrDeadlineExhausted = errors.New("caller deadline exhausted")

// minAttemptBudget is the least remaining budget worth spending an
// attempt (or a backoff sleep) on.
const minAttemptBudget = 2 * time.Millisecond

// hedgeWarmup is how many successful attempts the latency window needs
// before the hedge delay trusts its quantile.
const hedgeWarmup = 8

// latencyWindow bounds the recent-success latency ring the hedge delay
// is computed from.
const latencyWindow = 256

// hedgeRefreshEvery is how many recorded latencies between hedge-delay
// recomputations (sorting the window per record would be waste).
const hedgeRefreshEvery = 16

// Client is a fleet client over a fixed replica set. Construct with
// New; methods are safe for concurrent use.
type Client struct {
	cfg   Config
	httpc *http.Client
	ring  *hashRing
	brk   []*breaker
	epoch time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	latMu    sync.Mutex
	lats     [latencyWindow]float64
	latIdx   int
	latN     int
	latSince int
	hedgeMS  atomic.Uint64 // float64 bits of the cached hedge delay

	reqSeq atomic.Uint64

	requests, attempts, retries  *telemetry.Counter
	hedges, hedgeWins, failovers *telemetry.Counter
	spillovers, failures         *telemetry.Counter
	deadlineExhausted            *telemetry.Counter
	brkOpens, brkHalfs, brkClose *telemetry.Counter
	attemptMS                    *telemetry.Histogram
	backendState                 []*telemetry.Gauge
}

// attemptBoundsMS buckets physical attempt latencies (successes only).
var attemptBoundsMS = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// New validates cfg and builds the client.
func New(cfg Config) (*Client, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("coschedclient: config needs at least one replica")
	}
	// Normalize a private copy: the caller may reuse its slice.
	cfg.Replicas = append([]string(nil), cfg.Replicas...)
	for i, r := range cfg.Replicas {
		if r == "" {
			return nil, fmt.Errorf("coschedclient: replica %d is empty", i)
		}
		cfg.Replicas[i] = strings.TrimRight(r, "/")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.HedgeQuantile == 0 {
		cfg.HedgeQuantile = 0.9
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 5 * time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = time.Second
	}
	if cfg.HedgeMax < cfg.HedgeMin {
		cfg.HedgeMax = cfg.HedgeMin
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 128
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.New()
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{}
	}
	r := cfg.Metrics
	c := &Client{
		cfg:               cfg,
		httpc:             httpc,
		ring:              newRing(len(cfg.Replicas), cfg.VNodes),
		epoch:             time.Now(),
		rng:               rand.New(rand.NewSource(cfg.Seed)),
		requests:          r.Counter("client.requests"),
		attempts:          r.Counter("client.attempts"),
		retries:           r.Counter("client.retries"),
		hedges:            r.Counter("client.hedges"),
		hedgeWins:         r.Counter("client.hedge_wins"),
		failovers:         r.Counter("client.failovers"),
		spillovers:        r.Counter("client.spillovers"),
		failures:          r.Counter("client.failures"),
		deadlineExhausted: r.Counter("client.deadline_exhausted"),
		brkOpens:          r.Counter("client.breaker.opens"),
		brkHalfs:          r.Counter("client.breaker.half_opens"),
		brkClose:          r.Counter("client.breaker.closes"),
		attemptMS:         r.Histogram("client.attempt_ms", attemptBoundsMS),
	}
	c.hedgeMS.Store(floatBits(float64(cfg.HedgeMax) / float64(time.Millisecond)))
	c.brk = make([]*breaker, len(cfg.Replicas))
	c.backendState = make([]*telemetry.Gauge, len(cfg.Replicas))
	for i := range cfg.Replicas {
		i := i
		c.backendState[i] = r.Gauge(fmt.Sprintf("client.backend.%d.state", i))
		c.brk[i] = newBreaker(cfg.Breaker, time.Now, func(from, to breakerState, reason string) {
			c.onBreakerTransition(i, from, to, reason)
		})
	}
	return c, nil
}

// Stats snapshots the client.* counters.
func (c *Client) Stats() Stats {
	return Stats{
		Requests:          c.requests.Value(),
		Attempts:          c.attempts.Value(),
		Retries:           c.retries.Value(),
		Hedges:            c.hedges.Value(),
		HedgeWins:         c.hedgeWins.Value(),
		Failovers:         c.failovers.Value(),
		Spillovers:        c.spillovers.Value(),
		Failures:          c.failures.Value(),
		DeadlineExhausted: c.deadlineExhausted.Value(),
		BreakerOpens:      c.brkOpens.Value(),
		BreakerHalfOpens:  c.brkHalfs.Value(),
		BreakerCloses:     c.brkClose.Value(),
	}
}

// RoutingKey derives the request's consistent-hash key from the fields
// that determine its Instance.Fingerprint — the workload source (spec /
// synthetic / synthetic_large), seed and machine. Wire-identical
// workloads share a key exactly when they share a fingerprint, so
// routing on it sends every repeat of a workload to the node whose
// solution cache already holds its answer. Callers that hold a built
// *cosched.Instance can route on inst.Fingerprint() via SolveKeyed
// instead.
func RoutingKey(req *server.SolveRequest) string {
	h := sha256.New()
	json.NewEncoder(h).Encode(struct { //nolint:errcheck // hash write cannot fail
		Spec           any    `json:"spec,omitempty"`
		Synthetic      int    `json:"synthetic"`
		SyntheticLarge int    `json:"synthetic_large"`
		Seed           int64  `json:"seed"`
		Machine        string `json:"machine"`
	}{
		Spec:           req.Spec,
		Synthetic:      req.Synthetic,
		SyntheticLarge: req.SyntheticLarge,
		Seed:           req.Seed,
		Machine:        req.Machine,
	})
	return hex.EncodeToString(h.Sum(nil))
}

// Solve runs one logical request: routing on RoutingKey(req) with a
// generated request ID.
func (c *Client) Solve(ctx context.Context, req *server.SolveRequest) (*Result, error) {
	return c.SolveKeyed(ctx, RoutingKey(req), "", req)
}

// SolveKeyed runs one logical request routed on an explicit
// consistent-hash key (an Instance.Fingerprint, typically). reqID is
// the identity sent as X-Request-ID on every attempt ("" generates
// one); req.DeadlineMS, when set, is the caller's total budget across
// all attempts, not a per-attempt allowance.
func (c *Client) SolveKeyed(ctx context.Context, key, reqID string, req *server.SolveRequest) (*Result, error) {
	if reqID == "" {
		reqID = fmt.Sprintf("cc-%06x", c.reqSeq.Add(1))
	}
	return c.do(ctx, key, reqID, req)
}

// DoJSON runs one logical request from a pre-marshalled /v1/solve body
// (the loadgen path). The body is decoded into the wire schema so the
// client can route it and re-compute deadline_ms per attempt.
func (c *Client) DoJSON(ctx context.Context, reqID string, body []byte) (*Result, error) {
	var req server.SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("coschedclient: undecodable request body: %w", err)
	}
	return c.SolveKeyed(ctx, RoutingKey(&req), reqID, &req)
}

// attemptOut is one physical attempt's outcome crossing back to the
// round loop.
type attemptOut struct {
	status     int
	body       []byte
	retryAfter time.Duration
	err        error
	drain      bool // a 503 that announced the backend is draining
	replica    int
	n          int // attempt number, 1-based per logical request
	hedged     bool
	durMS      float64
}

// retryable reports whether the outcome may be retried on another
// attempt: transport errors and the three idempotent rejection
// verdicts. A 200 — even a degraded one — and every other status are
// final.
func (o *attemptOut) retryable() bool {
	if o.err != nil {
		return true
	}
	switch o.status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do is the logical-request engine: rounds of (primary + optional
// hedge) attempts walking the key's ring order, with breaker gating,
// budget re-computation, and backoff between rounds.
func (c *Client) do(ctx context.Context, key, reqID string, req *server.SolveRequest) (*Result, error) {
	c.requests.Add(1)
	start := time.Now()

	// The caller's budget: explicit deadline_ms and/or a context
	// deadline, whichever is tighter, anchored once at request start.
	budget := time.Duration(req.DeadlineMS) * time.Millisecond
	if dl, ok := ctx.Deadline(); ok {
		if r := time.Until(dl); budget <= 0 || r < budget {
			budget = r
		}
	}
	remaining := func() time.Duration {
		if budget <= 0 {
			return 0 // no budget: unlimited
		}
		return budget - time.Since(start)
	}

	order := c.ring.order(key)
	home := order[0]
	route := "/v1/solve"
	if req.Robust {
		route = "/v1/solve-robust"
	}

	var (
		attemptN int
		hedged   bool
		last     *attemptOut
		failedOn = make(map[int]bool, len(order))
		finish   = func(out *attemptOut, retriesDone int) (*Result, error) {
			return c.finish(reqID, start, home, out, attemptN, retriesDone, hedged)
		}
	)
	for round := 0; round < c.cfg.MaxAttempts; round++ {
		if round > 0 {
			c.retries.Add(1)
		}
		if budget > 0 && remaining() < minAttemptBudget {
			break
		}
		primary, forced, spilled := c.pick(order, failedOn)
		if spilled {
			c.spillovers.Add(1)
		}
		if forced {
			c.brk[primary].force()
		}

		out, hedgeFired := c.round(ctx, route, reqID, req, order, primary, budget, remaining, &attemptN, failedOn)
		hedged = hedged || hedgeFired
		if out == nil { // caller context died mid-round
			return nil, c.callerGone(ctx, reqID, start, attemptN, hedged)
		}
		last = out
		if !out.retryable() {
			return finish(out, round)
		}

		// Retryable: back off (the server's Retry-After beats the
		// client's schedule) within the remaining budget.
		if round == c.cfg.MaxAttempts-1 {
			break
		}
		wait := c.backoff(round, out.retryAfter)
		if budget > 0 {
			if rem := remaining() - minAttemptBudget; wait > rem {
				// Sleeping would exhaust the budget; stop with what we
				// know rather than oversleep the caller's deadline.
				if rem <= 0 {
					break
				}
				wait = rem
			}
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, c.callerGone(ctx, reqID, start, attemptN, hedged)
			}
		}
	}

	// Out of rounds or budget without a final answer.
	c.failures.Add(1)
	if budget > 0 && remaining() < minAttemptBudget {
		c.deadlineExhausted.Add(1)
	}
	if last != nil && last.err == nil {
		// The fleet's last word was an HTTP verdict (429/503/504):
		// surface it as the result so callers and load generators can
		// classify it.
		res, _ := c.finish(reqID, start, home, last, attemptN, c.cfg.MaxAttempts-1, hedged)
		return res, fmt.Errorf("coschedclient: no success after %d attempts; last status %d", attemptN, last.status)
	}
	reason := "no attempt completed"
	if last != nil && last.err != nil {
		reason = last.err.Error()
	}
	c.emitRequest(reqID, start, 0, attemptN, hedged, "", reason)
	if budget > 0 && remaining() < minAttemptBudget {
		return nil, fmt.Errorf("coschedclient: %w after %d attempts: %s", ErrDeadlineExhausted, attemptN, reason)
	}
	return nil, fmt.Errorf("coschedclient: no success after %d attempts: %s", attemptN, reason)
}

// callerGone classifies a caller-context death mid-request: a blown
// context deadline counts as deadline exhaustion, a plain cancellation
// is just a cancelled request.
func (c *Client) callerGone(ctx context.Context, reqID string, start time.Time, attemptN int, hedged bool) error {
	c.failures.Add(1)
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		c.deadlineExhausted.Add(1)
		c.emitRequest(reqID, start, 0, attemptN, hedged, "", "caller deadline exhausted")
		return fmt.Errorf("coschedclient: %w after %d attempts: %v", ErrDeadlineExhausted, attemptN, ctx.Err())
	}
	c.emitRequest(reqID, start, 0, attemptN, hedged, "", "caller context cancelled")
	return fmt.Errorf("coschedclient: request cancelled after %d attempts: %w", attemptN, ctx.Err())
}

// round runs one retry round: a primary attempt, plus a hedged
// duplicate on the next ring replica if the primary is still silent
// after the hedge delay. First final answer wins and cancels the
// loser. Returns nil only when the caller's context died.
func (c *Client) round(ctx context.Context, route, reqID string, req *server.SolveRequest,
	order []int, primary int, budget time.Duration, remaining func() time.Duration,
	attemptN *int, failedOn map[int]bool) (out *attemptOut, hedgeFired bool) {

	resCh := make(chan attemptOut, 2)
	var cancels []context.CancelFunc
	launched, received := 0, 0
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
		if leftover := launched - received; leftover > 0 {
			// An abandoned attempt (the losing hedge, or every in-flight
			// attempt when the caller's context dies) still owes its
			// backend a breaker outcome: a half-open probe that never
			// reports would hold its probe slot forever and keep the
			// replica out of the fleet. Drain off the critical path.
			go func() {
				for i := 0; i < leftover; i++ {
					o := <-resCh
					if o.err != nil && errors.Is(o.err, context.Canceled) {
						// Killed by the cancels above, not a backend
						// verdict: release any probe slot it held
						// without recording an outcome.
						c.brk[o.replica].abandonProbe()
						continue
					}
					c.noteBreaker(&o)
				}
			}()
		}
	}()

	launch := func(replica int, hedge bool) {
		*attemptN++
		n := *attemptN
		var actx context.Context
		var cancel context.CancelFunc
		if budget > 0 {
			actx, cancel = context.WithTimeout(ctx, remaining())
		} else {
			actx, cancel = context.WithCancel(ctx)
		}
		cancels = append(cancels, cancel)
		c.attempts.Add(1)
		if hedge {
			c.hedges.Add(1)
		}
		launched++
		go func() { resCh <- c.attempt(actx, replica, n, hedge, route, reqID, req, remaining()) }()
	}
	launch(primary, false)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if c.hedgingEnabled() {
		if _, ok := c.pickHedge(order, primary); ok {
			d := c.hedgeDelay()
			if budget > 0 {
				if rem := remaining(); d >= rem {
					d = 0 // no room to hedge later; never fire
				}
			}
			if d > 0 {
				hedgeTimer = time.NewTimer(d)
				hedgeC = hedgeTimer.C
				defer hedgeTimer.Stop()
			}
		}
	}

	var firstFailure *attemptOut
	for received < launched {
		select {
		case o := <-resCh:
			received++
			c.noteBreaker(&o)
			if !o.retryable() {
				return &o, launched > 1
			}
			failedOn[o.replica] = true
			if firstFailure == nil {
				firstFailure = &o
			} else if o.retryAfter > firstFailure.retryAfter {
				firstFailure.retryAfter = o.retryAfter
			}
		case <-hedgeC:
			hedgeC = nil
			if rep, ok := c.pickHedge(order, primary); ok {
				if budget <= 0 || remaining() > minAttemptBudget {
					launch(rep, true)
				}
			}
		case <-ctx.Done():
			return nil, launched > 1
		}
	}
	return firstFailure, launched > 1
}

// pick chooses the round's primary replica: the first in ring order
// whose breaker allows traffic, preferring replicas that have not
// already failed this logical request. forced reports that every
// breaker was open (the home gets a forced probe); spilled that an
// open-circuited home was skipped.
func (c *Client) pick(order []int, failedOn map[int]bool) (replica int, forced, spilled bool) {
	fallback := -1
	for _, rep := range order {
		if !c.brk[rep].allow() {
			continue
		}
		if failedOn[rep] {
			if fallback < 0 {
				fallback = rep
			}
			continue
		}
		return rep, false, rep != order[0]
	}
	if fallback >= 0 {
		return fallback, false, fallback != order[0]
	}
	return order[0], true, false
}

// pickHedge returns the first breaker-allowed replica distinct from the
// primary, in ring order — without consuming a half-open probe slot
// (hedges only go to closed circuits).
func (c *Client) pickHedge(order []int, primary int) (int, bool) {
	for _, rep := range order {
		if rep != primary && c.brk[rep].currentState() == stateClosed {
			return rep, true
		}
	}
	return 0, false
}

// attempt issues one physical HTTP call and classifies the outcome.
// rem is the remaining caller budget at launch (0 = unlimited), which
// becomes the attempt's wire deadline_ms.
func (c *Client) attempt(ctx context.Context, replica, n int, hedged bool,
	route, reqID string, req *server.SolveRequest, rem time.Duration) attemptOut {

	out := attemptOut{replica: replica, n: n, hedged: hedged}
	wire := *req
	if rem > 0 {
		wire.DeadlineMS = int64(rem / time.Millisecond)
		if wire.DeadlineMS <= 0 {
			wire.DeadlineMS = 1
		}
	}
	body, err := json.Marshal(&wire)
	if err != nil {
		out.err = fmt.Errorf("marshal request: %w", err)
		return out
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.Replicas[replica]+route, bytes.NewReader(body))
	if err != nil {
		out.err = err
		return out
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(server.RequestIDHeader, reqID)

	start := time.Now()
	resp, err := c.httpc.Do(httpReq)
	out.durMS = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		out.err = err
		c.emitAttempt(&out, reqID, err.Error())
		return out
	}
	defer resp.Body.Close() //nolint:errcheck
	out.status = resp.StatusCode
	out.body, err = io.ReadAll(resp.Body)
	out.durMS = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		// A truncated body after a 200 status is a mid-body failure:
		// treat it as transport-level and retryable.
		out.err = fmt.Errorf("read response: %w", err)
		out.status = 0
		out.body = nil
		c.emitAttempt(&out, reqID, err.Error())
		return out
	}
	if ra := strings.TrimSpace(resp.Header.Get("Retry-After")); ra != "" {
		// RFC 9110 allows both delta-seconds and an HTTP-date.
		if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
			out.retryAfter = time.Duration(secs) * time.Second
		} else if at, perr := http.ParseTime(ra); perr == nil {
			if d := time.Until(at); d > 0 {
				out.retryAfter = d
			}
		}
	}
	if out.status == http.StatusServiceUnavailable && bytes.Contains(out.body, []byte("draining")) {
		out.drain = true
	}
	if out.status == http.StatusOK {
		c.recordLatency(out.durMS)
	}
	c.emitAttempt(&out, reqID, "")
	return out
}

// noteBreaker feeds one attempt outcome into its backend's circuit.
// Transport errors and 429/503/504 and 5xx count as failures; anything
// the backend answered deterministically (200, 4xx) counts as healthy.
func (c *Client) noteBreaker(o *attemptOut) {
	b := c.brk[o.replica]
	switch {
	case o.err != nil:
		b.onFailure(false)
	case o.drain:
		b.onFailure(true)
	case o.status == http.StatusTooManyRequests || o.status >= http.StatusInternalServerError:
		b.onFailure(false)
	default:
		b.onSuccess()
	}
}

// finish builds the logical result from the final attempt and emits the
// request summary event.
func (c *Client) finish(reqID string, start time.Time, home int, out *attemptOut, attempts, retriesDone int, hedged bool) (*Result, error) {
	res := &Result{
		Status:   out.status,
		Body:     out.body,
		Replica:  c.cfg.Replicas[out.replica],
		Home:     c.cfg.Replicas[home],
		Attempts: attempts,
		Retries:  retriesDone,
		Hedged:   hedged,
		// HedgeWon means the hedge answered first — a failing final
		// attempt that happened to be a hedge did not "win" anything.
		HedgeWon: out.hedged && out.status == http.StatusOK,
	}
	if out.status == http.StatusOK {
		var sr server.SolveResponse
		if err := json.Unmarshal(out.body, &sr); err == nil {
			res.Response = &sr
		}
		if out.replica != home {
			c.failovers.Add(1)
		}
		if out.hedged {
			c.hedgeWins.Add(1)
		}
	}
	c.emitRequest(reqID, start, out.status, attempts, hedged, c.cfg.Replicas[out.replica], "")
	return res, nil
}

// backoff computes the wait before retry round r+1: capped exponential
// with seeded half-jitter, raised to the server's Retry-After hint.
func (c *Client) backoff(round int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BackoffBase << uint(round)
	if d > c.cfg.BackoffCap || d <= 0 {
		d = c.cfg.BackoffCap
	}
	c.rngMu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.rngMu.Unlock()
	d = d/2 + jitter
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// hedgingEnabled reports whether the config allows hedging at all.
func (c *Client) hedgingEnabled() bool {
	return c.cfg.HedgeQuantile > 0 && len(c.cfg.Replicas) > 1
}

// hedgeDelay is the current speculative-duplicate trigger: the
// configured quantile of recent successful attempt latencies, clamped
// to [HedgeMin, HedgeMax]; HedgeMax until the window warms up.
func (c *Client) hedgeDelay() time.Duration {
	ms := bitsFloat(c.hedgeMS.Load())
	d := time.Duration(ms * float64(time.Millisecond))
	if d < c.cfg.HedgeMin {
		d = c.cfg.HedgeMin
	}
	if d > c.cfg.HedgeMax {
		d = c.cfg.HedgeMax
	}
	return d
}

// recordLatency feeds a successful attempt's latency into the hedge
// window, refreshing the cached quantile every hedgeRefreshEvery
// records.
func (c *Client) recordLatency(ms float64) {
	c.attemptMS.Observe(ms)
	c.latMu.Lock()
	c.lats[c.latIdx] = ms
	c.latIdx = (c.latIdx + 1) % latencyWindow
	if c.latN < latencyWindow {
		c.latN++
	}
	c.latSince++
	if c.cfg.HedgeQuantile > 0 && c.latN >= hedgeWarmup && c.latSince >= hedgeRefreshEvery {
		c.latSince = 0
		tmp := make([]float64, c.latN)
		copy(tmp, c.lats[:c.latN])
		c.latMu.Unlock()
		sort.Float64s(tmp)
		idx := int(c.cfg.HedgeQuantile * float64(len(tmp)))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		if idx < 0 {
			idx = 0
		}
		c.hedgeMS.Store(floatBits(tmp[idx]))
		return
	}
	c.latMu.Unlock()
}

// onBreakerTransition is the per-backend breaker hook: counters, the
// state gauge, and a client_breaker event.
func (c *Client) onBreakerTransition(replica int, _, to breakerState, reason string) {
	switch to {
	case stateOpen:
		c.brkOpens.Add(1)
	case stateHalfOpen:
		c.brkHalfs.Add(1)
	case stateClosed:
		c.brkClose.Add(1)
	}
	c.backendState[replica].Set(int64(to))
	c.emit(telemetry.Event{
		Ev:      "client_breaker",
		Replica: c.cfg.Replicas[replica],
		Breaker: to.String(),
		Reason:  reason,
	})
}

// emitAttempt records one physical attempt in the event stream.
func (c *Client) emitAttempt(o *attemptOut, reqID, errText string) {
	c.emit(telemetry.Event{
		Ev:      "client_attempt",
		ReqID:   reqID,
		Replica: c.cfg.Replicas[o.replica],
		Attempt: o.n,
		Hedged:  o.hedged,
		Status:  o.status,
		DurMS:   o.durMS,
		Reason:  errText,
	})
}

// emitRequest records the logical request's summary in the event
// stream.
func (c *Client) emitRequest(reqID string, start time.Time, status, attempts int, hedged bool, replica, reason string) {
	c.emit(telemetry.Event{
		Ev:      "client_request",
		ReqID:   reqID,
		Status:  status,
		Attempt: attempts,
		Hedged:  hedged,
		Replica: replica,
		TotalMS: float64(time.Since(start)) / float64(time.Millisecond),
		Reason:  reason,
	})
}

// emit stamps and forwards an event to the configured sink.
func (c *Client) emit(ev telemetry.Event) {
	if c.cfg.EventSink == nil {
		return
	}
	ev.TMS = float64(time.Since(c.epoch)) / float64(time.Millisecond)
	c.cfg.EventSink.Emit(ev) //nolint:errcheck // telemetry must not fail the request
}

// floatBits / bitsFloat pack a float64 into the atomic hedge cache.
func floatBits(f float64) uint64 { return math.Float64bits(f) }

// bitsFloat is the inverse of floatBits.
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
