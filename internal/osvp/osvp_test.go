package osvp

import (
	"math"
	"testing"

	"cosched/internal/abort"
	"cosched/internal/astar"
	"cosched/internal/bruteforce"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/workload"
)

func TestSolveMatchesBruteForce(t *testing.T) {
	m := cache.QuadCore
	for seed := int64(1); seed <= 4; seed++ {
		in, err := workload.SyntheticSerialInstance(12, &m, seed)
		if err != nil {
			t.Fatal(err)
		}
		c := in.Cost(degradation.ModePC)
		g := graph.New(c, in.Patterns)
		res, err := Solve(g)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := bruteforce.Solve(c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Cost-bf.Cost) > 1e-9 {
			t.Errorf("seed %d: O-SVP %v != optimum %v", seed, res.Cost, bf.Cost)
		}
	}
}

func TestSolveMatchesOAStarOnMixedBatch(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticMixedInstance(12, 2, 3, &m, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	g := graph.New(c, in.Patterns)
	res, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := astar.NewSolver(g, astar.Options{H: astar.HStrategy2})
	if err != nil {
		t.Fatal(err)
	}
	oa, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-oa.Cost) > 1e-9 {
		t.Errorf("O-SVP %v != OA* %v", res.Cost, oa.Cost)
	}
}

func TestSolveWithLimitAborts(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticSerialInstance(16, &m, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(in.Cost(degradation.ModePC), nil)
	res, err := SolveWithLimit(g, 2)
	if err != nil {
		t.Fatalf("limited O-SVP errored instead of degrading: %v", err)
	}
	if !res.Stats.Degraded || res.Stats.Aborted != abort.Expansions {
		t.Errorf("limited O-SVP not flagged degraded/expansions: %+v", res.Stats)
	}
	if err := g.Cost.ValidatePartition(res.Groups); err != nil {
		t.Errorf("degraded schedule invalid: %v", err)
	}
	full, err := SolveWithLimit(g, 1_000_000)
	if err != nil {
		t.Errorf("generous limit failed: %v", err)
	} else if full.Stats.Degraded {
		t.Errorf("generous limit flagged degraded: %+v", full.Stats)
	}
}
