// Package osvp implements the O-SVP baseline of the authors' earlier work
// [33] (MASCOTS 2014): an optimal shortest-valid-path search that extends
// Dijkstra's algorithm instead of A*. It shares the co-scheduling graph,
// the process-set dismissal strategy and the Eq. 13 distance with OA*, but
// expands sub-paths in plain distance order (h = 0) and has neither the
// h(v) pruning nor the process condensation — which is exactly the gap
// Tables III and IV quantify.
package osvp

import (
	"cosched/internal/astar"
	"cosched/internal/graph"
)

// Solve finds the optimal co-schedule by uniform-cost search.
func Solve(g *graph.Graph) (*astar.Result, error) {
	s, err := astar.NewSolver(g, astar.Options{H: astar.HNone})
	if err != nil {
		return nil, err
	}
	return s.Solve()
}

// SolveWithLimit aborts after maxExpansions pops, for bounded experiment
// runs on instances O-SVP cannot finish in reasonable time.
func SolveWithLimit(g *graph.Graph, maxExpansions int64) (*astar.Result, error) {
	s, err := astar.NewSolver(g, astar.Options{H: astar.HNone, MaxExpansions: maxExpansions})
	if err != nil {
		return nil, err
	}
	return s.Solve()
}
