// Package osvp implements the O-SVP baseline of the authors' earlier work
// [33] (MASCOTS 2014): an optimal shortest-valid-path search that extends
// Dijkstra's algorithm instead of A*. It shares the co-scheduling graph,
// the process-set dismissal strategy and the Eq. 13 distance with OA*, but
// expands sub-paths in plain distance order (h = 0) and has neither the
// h(v) pruning nor the process condensation — which is exactly the gap
// Tables III and IV quantify.
package osvp

import (
	"context"
	"time"

	"cosched/internal/astar"
	"cosched/internal/graph"
	"cosched/internal/telemetry"
)

// Options configures one O-SVP solve. The zero value runs an unbounded,
// untraced search.
type Options struct {
	// MaxExpansions aborts the search after this many pops (0 = no
	// limit); the search then returns the best incumbent as a degraded
	// result (astar.Stats.Aborted), like every other budget here.
	MaxExpansions int64
	// TimeLimit aborts the search after this much wall clock (0 = none).
	TimeLimit time.Duration
	// Ctx, when non-nil, is polled per pop: cancellation or an expired
	// deadline degrades the solve promptly.
	Ctx context.Context
	// MemoryBudget caps the search's estimated live bytes (0 = none).
	MemoryBudget int64
	// Metrics, when non-nil, receives the underlying search telemetry
	// ("astar.*" family, method "OA*" with h = 0) plus the
	// "osvp.solves" counter (DESIGN.md §6).
	Metrics *telemetry.Registry
	// Tracer receives search events exactly as astar.Options.Tracer
	// does, including the JSONL stream extensions.
	Tracer astar.Tracer
	// Progress receives rate-limited progress lines for long searches.
	Progress *telemetry.ProgressReporter
}

// Solve finds the optimal co-schedule by uniform-cost search.
func Solve(g *graph.Graph) (*astar.Result, error) {
	return SolveOpts(g, Options{})
}

// SolveWithLimit aborts after maxExpansions pops, for bounded experiment
// runs on instances O-SVP cannot finish in reasonable time.
func SolveWithLimit(g *graph.Graph, maxExpansions int64) (*astar.Result, error) {
	return SolveOpts(g, Options{MaxExpansions: maxExpansions})
}

// SolveOpts runs the uniform-cost search with telemetry attached.
func SolveOpts(g *graph.Graph, opts Options) (*astar.Result, error) {
	if opts.Metrics != nil {
		opts.Metrics.Counter("osvp.solves").Add(1)
	}
	s, err := astar.NewSolver(g, astar.Options{
		H:             astar.HNone,
		MaxExpansions: opts.MaxExpansions,
		TimeLimit:     opts.TimeLimit,
		Ctx:           opts.Ctx,
		MemoryBudget:  opts.MemoryBudget,
		Metrics:       opts.Metrics,
		Tracer:        opts.Tracer,
		Progress:      opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	return s.Solve()
}
