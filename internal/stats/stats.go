// Package stats provides the small statistical helpers the experiment
// harness uses: CDFs over integer samples and summary aggregates.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// IntCDF is the empirical cumulative distribution of integer samples.
type IntCDF struct {
	samples []int
}

// NewIntCDF copies and sorts the samples.
func NewIntCDF(samples []int) *IntCDF {
	s := append([]int(nil), samples...)
	sort.Ints(s)
	return &IntCDF{samples: s}
}

// N returns the sample count.
func (c *IntCDF) N() int { return len(c.samples) }

// AtMost returns P[X <= v] as a percentage.
func (c *IntCDF) AtMost(v int) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	idx := sort.SearchInts(c.samples, v+1)
	return 100 * float64(idx) / float64(len(c.samples))
}

// Max returns the largest sample (0 when empty).
func (c *IntCDF) Max() int {
	if len(c.samples) == 0 {
		return 0
	}
	return c.samples[len(c.samples)-1]
}

// Percentile returns the p-th percentile (0 < p <= 100) by the
// nearest-rank method.
func (c *IntCDF) Percentile(p float64) int {
	if len(c.samples) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(c.samples))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(c.samples) {
		rank = len(c.samples) - 1
	}
	return c.samples[rank]
}

// Points renders the distinct (value, cumulative %) pairs, the series
// Fig. 5 plots.
func (c *IntCDF) Points() []CDFPoint {
	var pts []CDFPoint
	for i, v := range c.samples {
		if i+1 < len(c.samples) && c.samples[i+1] == v {
			continue
		}
		pts = append(pts, CDFPoint{Value: v, CumPct: 100 * float64(i+1) / float64(len(c.samples))})
	}
	return pts
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value  int
	CumPct float64
}

// Mean returns the arithmetic mean of float samples.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// FormatSeries renders value/percentage pairs compactly, e.g.
// "≤6:98.1% ≤8:99.8%".
func FormatSeries(pts []CDFPoint) string {
	parts := make([]string, len(pts))
	for i, p := range pts {
		parts[i] = fmt.Sprintf("≤%d:%.1f%%", p.Value, p.CumPct)
	}
	return strings.Join(parts, " ")
}
