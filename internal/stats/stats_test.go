package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntCDFBasics(t *testing.T) {
	c := NewIntCDF([]int{3, 1, 4, 1, 5, 9, 2, 6})
	if c.N() != 8 {
		t.Errorf("N = %d; want 8", c.N())
	}
	if got := c.AtMost(4); math.Abs(got-62.5) > 1e-9 { // 1,1,2,3,4 = 5/8
		t.Errorf("AtMost(4) = %v; want 62.5", got)
	}
	if got := c.AtMost(0); got != 0 {
		t.Errorf("AtMost(0) = %v; want 0", got)
	}
	if got := c.AtMost(9); got != 100 {
		t.Errorf("AtMost(9) = %v; want 100", got)
	}
	if c.Max() != 9 {
		t.Errorf("Max = %d; want 9", c.Max())
	}
	if got := c.Percentile(50); got != 3 {
		t.Errorf("P50 = %d; want 3", got)
	}
	if got := c.Percentile(100); got != 9 {
		t.Errorf("P100 = %d; want 9", got)
	}
}

func TestIntCDFEmpty(t *testing.T) {
	c := NewIntCDF(nil)
	if c.N() != 0 || c.Max() != 0 || c.AtMost(5) != 0 || c.Percentile(50) != 0 {
		t.Error("empty CDF misbehaves")
	}
	if pts := c.Points(); len(pts) != 0 {
		t.Errorf("empty CDF points = %v", pts)
	}
}

func TestIntCDFPointsMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		samples := make([]int, len(raw))
		for i, v := range raw {
			samples[i] = int(v % 20)
		}
		c := NewIntCDF(samples)
		pts := c.Points()
		prevV := -1
		prevP := 0.0
		for _, p := range pts {
			if p.Value <= prevV || p.CumPct < prevP {
				return false
			}
			prevV, prevP = p.Value, p.CumPct
		}
		if len(samples) > 0 && (len(pts) == 0 || math.Abs(pts[len(pts)-1].CumPct-100) > 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v; want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v; want 0", got)
	}
}

func TestFormatSeries(t *testing.T) {
	s := FormatSeries([]CDFPoint{{Value: 6, CumPct: 98.1}, {Value: 8, CumPct: 99.8}})
	if !strings.Contains(s, "≤6:98.1%") || !strings.Contains(s, "≤8:99.8%") {
		t.Errorf("FormatSeries = %q", s)
	}
}
