// Package loadgen generates open-loop request load against a coschedd
// daemon and measures what comes back. Open-loop means the arrival
// process is fixed ahead of time — requests fire on a precomputed
// schedule at the offered rate whether or not earlier requests have
// completed — so, unlike a closed loop of N looping clients, a slow
// server cannot throttle its own load and queueing delay shows up in
// the measured latency instead of hiding in the generator (the
// methodology of open-loop serving benchmarks such as sigmaos's
// loadgen; see BENCHMARKS.md).
//
// A run is described by a Config: an RPS ladder (rungs of offered rate
// × duration), a warm/cold request mix drawn from a seeded pool of
// workload fingerprints, and per-request solver parameters.
// BuildSchedule expands it deterministically — same Config, same
// byte-identical schedule — a Runner fires the schedule at a daemon,
// and the per-rung results (achieved vs offered RPS, HDR-style latency
// percentiles, status and cache breakdowns) land in a Report, the
// BENCH_serving.json document.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Rung is one step of the offered-load ladder: hold RPS for Duration.
type Rung struct {
	// RPS is the offered arrival rate in requests per second.
	RPS float64
	// Duration is how long the rung holds that rate.
	Duration time.Duration
}

// ParseRungs parses a ladder flag of the form "5x3s,10x3s,20x5s" —
// comma-separated rungs, each RPS "x" duration.
func ParseRungs(s string) ([]Rung, error) {
	var out []Rung
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rps, dur, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("rung %q: want <rps>x<duration>, e.g. 10x3s", part)
		}
		r, err := strconv.ParseFloat(rps, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("rung %q: bad rps %q", part, rps)
		}
		d, err := time.ParseDuration(dur)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("rung %q: bad duration %q", part, dur)
		}
		out = append(out, Rung{RPS: r, Duration: d})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty ladder %q", s)
	}
	return out, nil
}

// Config describes one load run. The zero values of the optional
// fields are filled by BuildSchedule: 8 warm fingerprints, a 50% warm
// fraction, seed 1, 6-job synthetic workloads, method "hastar".
type Config struct {
	// Rungs is the offered-load ladder, run in order.
	Rungs []Rung
	// PoolSize is the number of distinct warm workload fingerprints
	// (<= 0 means 8). A warm request re-asks one of these, so after its
	// first occurrence it exercises the daemon's solution cache.
	PoolSize int
	// WarmFraction is the probability a request draws from the warm
	// pool rather than using a never-repeated cold fingerprint
	// (< 0 means 0.5; clamp at 1).
	WarmFraction float64
	// Seed drives both the warm/cold choice sequence and the workload
	// seeds, making the whole schedule reproducible (0 means 1).
	Seed int64
	// Synthetic is the per-request workload size in jobs (<= 0 means 6).
	Synthetic int
	// Method is the per-request solver method ("" means "hastar").
	Method string
	// DeadlineMS is the per-request deadline forwarded to the daemon
	// (0 means none: the server's default applies).
	DeadlineMS int64
}

// withDefaults returns cfg with the documented defaults filled in.
func (cfg Config) withDefaults() Config {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 8
	}
	if cfg.WarmFraction < 0 {
		cfg.WarmFraction = 0.5
	}
	if cfg.WarmFraction > 1 {
		cfg.WarmFraction = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Synthetic <= 0 {
		cfg.Synthetic = 6
	}
	if cfg.Method == "" {
		cfg.Method = "hastar"
	}
	return cfg
}

// Request is one scheduled call: fire Body at the daemon At after the
// run starts.
type Request struct {
	// ID is the request's deterministic identity
	// ("lg<seed>-r<rung>-<index>"), sent as X-Request-ID so the daemon's
	// access log, /debug/requests ring, and trace events all carry it —
	// a slow benchmark number is then one grep away from its cause.
	ID string
	// At is the request's arrival offset from the run start.
	At time.Duration
	// Rung indexes Config.Rungs for result aggregation.
	Rung int
	// Warm marks a pool-drawn fingerprint (a cache exercise); cold
	// requests use a unique workload seed and can never hit.
	Warm bool
	// Seed is the workload seed the request carries.
	Seed int64
	// Body is the /v1/solve JSON payload.
	Body []byte
}

// solveBody is the subset of the coschedd SolveRequest wire format the
// generator emits (kept in sync by the runner test; internal/server
// owns the schema).
type solveBody struct {
	Synthetic  int    `json:"synthetic"`
	Seed       int64  `json:"seed"`
	Method     string `json:"method,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// coldSeedBase offsets the never-repeated cold workload seeds far away
// from the warm pool's 1..PoolSize range.
const coldSeedBase = 1 << 20

// BuildSchedule expands the config into the full, deterministic request
// schedule: arrivals on a fixed grid at each rung's offered rate (the
// open-loop arrival process), each assigned a warm or cold fingerprint
// by the seeded mix. Identical configs yield identical schedules.
func BuildSchedule(cfg Config) ([]Request, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Rungs) == 0 {
		return nil, fmt.Errorf("loadgen: config has no rungs")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var (
		out      []Request
		offset   time.Duration
		coldSeed int64 = coldSeedBase
	)
	for ri, rung := range cfg.Rungs {
		interval := time.Duration(float64(time.Second) / rung.RPS)
		n := int(rung.RPS * rung.Duration.Seconds())
		for i := 0; i < n; i++ {
			req := Request{
				ID:   fmt.Sprintf("lg%d-r%d-%05d", cfg.Seed, ri, i),
				At:   offset + time.Duration(i)*interval,
				Rung: ri,
			}
			if rng.Float64() < cfg.WarmFraction {
				req.Warm = true
				req.Seed = int64(rng.Intn(cfg.PoolSize)) + 1
			} else {
				coldSeed++
				req.Seed = coldSeed
			}
			body, err := json.Marshal(solveBody{
				Synthetic:  cfg.Synthetic,
				Seed:       req.Seed,
				Method:     cfg.Method,
				DeadlineMS: cfg.DeadlineMS,
			})
			if err != nil {
				return nil, fmt.Errorf("loadgen: marshal request: %w", err)
			}
			req.Body = body
			out = append(out, req)
		}
		offset += rung.Duration
	}
	return out, nil
}
