package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Rungs:        []Rung{{RPS: 50, Duration: time.Second}, {RPS: 100, Duration: 2 * time.Second}},
		PoolSize:     4,
		WarmFraction: 0.5,
		Seed:         7,
		Synthetic:    6,
		Method:       "pg",
	}
}

func TestBuildScheduleIsDeterministic(t *testing.T) {
	a, err := BuildSchedule(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs produced different schedules")
	}
	if len(a) != 50+200 {
		t.Fatalf("schedule has %d requests; want 250 (50x1s + 100x2s)", len(a))
	}

	// A different seed must produce a different warm/cold assignment.
	cfg := testConfig()
	cfg.Seed = 8
	c, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Warm != c[i].Warm || a[i].Seed != c[i].Seed {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical warm/cold sequences")
	}
}

func TestBuildScheduleShape(t *testing.T) {
	sched, err := BuildSchedule(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	coldSeen := map[int64]bool{}
	var warm, cold int
	for i, req := range sched {
		if i > 0 && req.At < sched[i-1].At {
			t.Fatalf("request %d arrives at %v, before its predecessor %v", i, req.At, sched[i-1].At)
		}
		var body solveBody
		if err := json.Unmarshal(req.Body, &body); err != nil {
			t.Fatalf("request %d body: %v", i, err)
		}
		if body.Seed != req.Seed || body.Synthetic != 6 || body.Method != "pg" {
			t.Fatalf("request %d body %s disagrees with schedule %+v", i, req.Body, req)
		}
		if req.Warm {
			warm++
			if req.Seed < 1 || req.Seed > 4 {
				t.Fatalf("warm request %d has seed %d outside pool 1..4", i, req.Seed)
			}
		} else {
			cold++
			if req.Seed < coldSeedBase {
				t.Fatalf("cold request %d has pool-range seed %d", i, req.Seed)
			}
			if coldSeen[req.Seed] {
				t.Fatalf("cold seed %d repeats — cold requests must never hit the cache", req.Seed)
			}
			coldSeen[req.Seed] = true
		}
	}
	// The mix is a seeded coin flip; with 250 requests at 50% both
	// sides are overwhelmingly likely well away from zero.
	if warm < 80 || cold < 80 {
		t.Errorf("warm/cold split %d/%d; want both near half of 250", warm, cold)
	}
	// Rung 1's arrivals come at its own rate: the last request lands
	// within the ladder's total span.
	if last := sched[len(sched)-1].At; last >= 3*time.Second {
		t.Errorf("last arrival at %v; want inside the 3s ladder", last)
	}
}

func TestParseRungs(t *testing.T) {
	got, err := ParseRungs("5x3s, 12.5x500ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rung{{RPS: 5, Duration: 3 * time.Second}, {RPS: 12.5, Duration: 500 * time.Millisecond}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseRungs = %+v; want %+v", got, want)
	}
	for _, bad := range []string{"", "5", "x3s", "5x", "0x3s", "5x0s", "-2x3s"} {
		if _, err := ParseRungs(bad); err == nil {
			t.Errorf("ParseRungs(%q) accepted; want error", bad)
		}
	}
}

// TestHistQuantilesOnKnownDistribution checks the HDR-style histogram
// against distributions whose quantiles are known exactly: estimates
// must never fall below the true quantile and must stay within the
// documented ~5% bucket width above it.
func TestHistQuantilesOnKnownDistribution(t *testing.T) {
	// Uniform 1..10000ms, recorded in shuffled order.
	h := NewHist()
	vals := make([]time.Duration, 0, 10000)
	for i := 1; i <= 10000; i++ {
		vals = append(vals, time.Duration(i)*time.Millisecond)
	}
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		h.Record(v)
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d; want 10000", h.Count())
	}
	for _, tc := range []struct {
		q    float64
		want float64 // true quantile, ms
	}{
		{0.50, 5000}, {0.90, 9000}, {0.99, 9900}, {0.999, 9990},
	} {
		got := float64(h.Quantile(tc.q)) / float64(time.Millisecond)
		if got < tc.want {
			t.Errorf("p%g = %.1fms under-reports true quantile %.0fms", tc.q*100, got, tc.want)
		}
		if got > tc.want*1.06 {
			t.Errorf("p%g = %.1fms; want within 6%% above %.0fms", tc.q*100, got, tc.want)
		}
	}
	if mean := h.Mean(); mean != 5000500*time.Microsecond {
		t.Errorf("Mean = %v; want exactly 5000.5ms", mean)
	}
	if max := h.Max(); max != 10*time.Second {
		t.Errorf("Max = %v; want exactly 10s", max)
	}

	// A bimodal distribution: 90% fast (2ms), 10% slow (800ms). p50/p90
	// sit on the fast mode, p99 on the slow one.
	b := NewHist()
	for i := 0; i < 900; i++ {
		b.Record(2 * time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		b.Record(800 * time.Millisecond)
	}
	if p50 := float64(b.Quantile(0.5)) / float64(time.Millisecond); p50 < 2 || p50 > 2.2 {
		t.Errorf("bimodal p50 = %.2fms; want ~2ms", p50)
	}
	if p99 := float64(b.Quantile(0.99)) / float64(time.Millisecond); p99 < 800 || p99 > 850 {
		t.Errorf("bimodal p99 = %.2fms; want ~800ms", p99)
	}
}

func TestHistEdges(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Record(0)                // below the tracked floor
	h.Record(10 * time.Minute) // above the tracked ceiling
	if h.Count() != 2 {
		t.Fatalf("Count = %d; want 2", h.Count())
	}
	if got := h.Quantile(1); got != 10*time.Minute {
		t.Errorf("top-bucket quantile = %v; want the exact max 10m", got)
	}
	if math.IsNaN(float64(h.Quantile(0.5))) {
		t.Error("quantile with clamped observations is NaN")
	}
}

// TestRunnerAgainstFakeDaemon drives a tiny open-loop ladder at a fake
// coschedd and checks the aggregation end to end: statuses split by
// class, cache hits counted, achieved RPS and validation positive.
func TestRunnerAgainstFakeDaemon(t *testing.T) {
	var (
		mu    sync.Mutex
		seen  = map[int64]bool{}
		calls int
	)
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body solveBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Errorf("fake daemon got bad body: %v", err)
		}
		mu.Lock()
		calls++
		reject := calls%10 == 0 // every 10th request is turned away
		cached := seen[body.Seed]
		if !reject {
			seen[body.Seed] = true // repeat fingerprints "hit"
		}
		mu.Unlock()
		if reject {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"}) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"cost": 1.0, "cached": cached}) //nolint:errcheck
	}))
	defer fake.Close()

	cfg := Config{
		Rungs:        []Rung{{RPS: 100, Duration: 500 * time.Millisecond}, {RPS: 200, Duration: 500 * time.Millisecond}},
		PoolSize:     3,
		WarmFraction: 0.7,
		Seed:         5,
		Method:       "pg",
	}
	sched, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{BaseURL: fake.URL}
	report, err := r.Run(context.Background(), cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Validate(); err != nil {
		t.Fatalf("report does not validate: %v", err)
	}
	if len(report.Rungs) != 2 {
		t.Fatalf("report has %d rungs; want 2", len(report.Rungs))
	}
	var ok429, hits int64
	for i, rg := range report.Rungs {
		if rg.Requests == 0 || rg.Status.OK == 0 {
			t.Errorf("rung %d: %+v; want fired requests and OK responses", i, rg)
		}
		if rg.AchievedRPS <= 0 || rg.AchievedRPS > rg.OfferedRPS*1.5 {
			t.Errorf("rung %d: achieved %.1f RPS vs offered %.1f; implausible", i, rg.AchievedRPS, rg.OfferedRPS)
		}
		ok429 += rg.Status.Rejected429
		hits += rg.CacheHits
	}
	if ok429 == 0 {
		t.Error("fake daemon's 429s never reached the breakdown")
	}
	if hits == 0 {
		t.Error("warm repeats produced no counted cache hits")
	}
}

// TestRunnerCancellation: a cancelled context stops the launch loop
// early and Run still returns a coherent (partial) report.
func TestRunnerCancellation(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"cost": 1.0}) //nolint:errcheck
	}))
	defer fake.Close()
	cfg := Config{Rungs: []Rung{{RPS: 20, Duration: 10 * time.Second}}, Seed: 2}
	sched, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	report, err := r2(fake.URL).Run(ctx, cfg, sched)
	if err != context.DeadlineExceeded {
		t.Errorf("Run under cancelled ctx returned %v; want DeadlineExceeded", err)
	}
	if report.Rungs[0].Requests == 0 || report.Rungs[0].Requests >= 200 {
		t.Errorf("cancelled run fired %d requests; want a strict prefix of 200", report.Rungs[0].Requests)
	}
}

func r2(url string) *Runner { return &Runner{BaseURL: url} }
