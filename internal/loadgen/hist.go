package loadgen

import (
	"math"
	"time"
)

// Hist tuning: geometric buckets from histMin with ratio histRatio give
// a bounded relative quantile error of (histRatio - 1) ≈ 5% across
// microseconds-to-minutes latencies in a few hundred counters — the
// HDR-histogram trade (fixed memory, bounded relative error) without
// the sub-bucket machinery.
const (
	histMin   = float64(time.Microsecond) // lowest resolvable latency, ns
	histMax   = float64(2 * time.Minute)  // highest bucketed latency, ns
	histRatio = 1.05
)

// Hist is an HDR-style latency histogram: geometrically spaced buckets
// whose width grows 5% per step, so quantile estimates carry a bounded
// ~5% relative error at any magnitude. The zero value is not usable;
// construct with NewHist. Hist is not safe for concurrent use — the
// runner serialises Record calls per rung.
type Hist struct {
	counts []int64
	count  int64
	sum    float64 // ns
	max    float64 // ns, exact
}

// NewHist returns an empty latency histogram covering 1µs..2min.
func NewHist() *Hist {
	n := int(math.Ceil(math.Log(histMax/histMin)/math.Log(histRatio))) + 1
	return &Hist{counts: make([]int64, n)}
}

// bucket maps a latency in nanoseconds to its bucket index, clamping
// below histMin and above histMax.
func (h *Hist) bucket(ns float64) int {
	if ns <= histMin {
		return 0
	}
	i := int(math.Log(ns/histMin) / math.Log(histRatio))
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	ns := float64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[h.bucket(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Mean returns the exact mean latency (0 when empty).
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count))
}

// Max returns the exact maximum latency observed.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of
// the bucket where the cumulative count crosses q·total — never under
// the true quantile, and over it by at most the ~5% bucket width. The
// top bucket reports the exact maximum. Empty histograms return 0.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i == len(h.counts)-1 {
				return time.Duration(h.max)
			}
			upper := histMin * math.Pow(histRatio, float64(i+1))
			return time.Duration(upper)
		}
	}
	return time.Duration(h.max)
}
