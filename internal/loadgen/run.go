package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Runner fires a built schedule at a coschedd daemon, open-loop: every
// request launches at its scheduled arrival time on its own goroutine,
// regardless of how many earlier requests are still in flight. The
// zero value needs BaseURL; Client defaults to a 30s-timeout client.
type Runner struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests (nil means a client with a 30s
	// timeout; the timeout is the generator's give-up bound and counts
	// as a transport error, not a server verdict).
	Client *http.Client
	// Do, when non-nil, replaces the direct HTTP POST for every
	// request: it receives the schedule-assigned request ID and the
	// marshalled /v1/solve body and returns the final HTTP verdict and
	// response body. This is the fleet-client hook — coschedclient's
	// DoJSON plugs in here so the ladder exercises retries, hedging and
	// failover while the runner keeps doing open-loop arrivals and
	// latency accounting. A zero status with a non-nil error counts as
	// a transport failure; a non-zero status counts as that verdict
	// even when err is non-nil (the daemon answered, the fleet client
	// gave up on it).
	Do func(ctx context.Context, id string, body []byte) (status int, respBody []byte, err error)
}

// solveReply is the subset of the daemon's SolveResponse the runner
// reads back for accounting.
type solveReply struct {
	Cached   bool `json:"cached"`
	Shared   bool `json:"shared"`
	Degraded bool `json:"degraded"`
}

// slowestK is how many of a rung's slowest request IDs the report keeps
// — enough to find the tail's traces, few enough to stay readable.
const slowestK = 5

// failureSampleCap bounds the per-rung failure sample so a rung that is
// 100% rejections does not bloat the report.
const failureSampleCap = 20

// rungAgg accumulates one rung's results under a lock (many in-flight
// requests finish concurrently).
type rungAgg struct {
	mu       sync.Mutex
	hist     *Hist
	status   StatusBreakdown
	hits     int64
	shared   int64
	degraded int64
	slowest  []SlowRequest    // worst-first, at most slowestK
	failures []RequestFailure // first failureSampleCap non-200 outcomes
}

func (a *rungAgg) record(id string, latency time.Duration, code int, reply *solveReply, errText string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if errText != "" {
		a.status.Errors++
		if len(a.failures) < failureSampleCap {
			a.failures = append(a.failures, RequestFailure{ID: id, Err: errText})
		}
		return // no response: nothing to time or classify further
	}
	switch code {
	case http.StatusOK:
		a.status.OK++
	case http.StatusTooManyRequests:
		a.status.Rejected429++
	case http.StatusServiceUnavailable:
		a.status.Rejected503++
	case http.StatusGatewayTimeout:
		a.status.Rejected504++
	default:
		a.status.Other++
	}
	if code != http.StatusOK && len(a.failures) < failureSampleCap {
		a.failures = append(a.failures, RequestFailure{ID: id, Status: code})
	}
	a.hist.Record(latency)
	lm := ms(latency)
	if len(a.slowest) < slowestK || lm > a.slowest[len(a.slowest)-1].LatencyMS {
		entry := SlowRequest{ID: id, LatencyMS: lm, Status: code}
		if reply != nil {
			entry.Cached = reply.Cached || reply.Shared
		}
		a.slowest = append(a.slowest, entry)
		sort.Slice(a.slowest, func(i, j int) bool { return a.slowest[i].LatencyMS > a.slowest[j].LatencyMS })
		if len(a.slowest) > slowestK {
			a.slowest = a.slowest[:slowestK]
		}
	}
	if reply != nil {
		if reply.Cached {
			a.hits++
		}
		if reply.Shared {
			a.shared++
		}
		if reply.Degraded {
			a.degraded++
		}
	}
}

// Run executes the schedule against the daemon and aggregates the
// results into a Report (BenchmarkCmd and Environment are left for the
// caller to fill). Cancelling ctx stops launching new requests; already
// fired ones are awaited. The call returns after every fired request
// has resolved, which can be up to one client-timeout past the last
// arrival.
func (r *Runner) Run(ctx context.Context, cfg Config, sched []Request) (*Report, error) {
	cfg = cfg.withDefaults()
	client := r.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	url := r.BaseURL + "/v1/solve"

	aggs := make([]*rungAgg, len(cfg.Rungs))
	fired := make([]int64, len(cfg.Rungs))
	for i := range aggs {
		aggs[i] = &rungAgg{hist: NewHist()}
	}

	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
launch:
	for i := range sched {
		req := &sched[i]
		// Open loop: wait for the arrival time, never for completions.
		if wait := req.At - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break launch
			}
		} else if ctx.Err() != nil {
			break launch
		}
		fired[req.Rung]++
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.one(ctx, client, url, req, aggs[req.Rung])
		}()
	}
	wg.Wait()

	report := &Report{
		Config: ReportConfig{
			PoolSize:     cfg.PoolSize,
			WarmFraction: cfg.WarmFraction,
			Seed:         cfg.Seed,
			Synthetic:    cfg.Synthetic,
			Method:       cfg.Method,
			DeadlineMS:   cfg.DeadlineMS,
		},
	}
	for i, rung := range cfg.Rungs {
		a := aggs[i]
		st := a.status
		responses := st.OK + st.Rejected429 + st.Rejected503 + st.Rejected504 + st.Other
		res := RungResult{
			OfferedRPS:  rung.RPS,
			DurationS:   rung.Duration.Seconds(),
			Requests:    fired[i],
			AchievedRPS: float64(responses) / rung.Duration.Seconds(),
			Latency: LatencyMS{
				P50:  ms(a.hist.Quantile(0.50)),
				P90:  ms(a.hist.Quantile(0.90)),
				P99:  ms(a.hist.Quantile(0.99)),
				P999: ms(a.hist.Quantile(0.999)),
				Mean: ms(a.hist.Mean()),
				Max:  ms(a.hist.Max()),
			},
			Status:    st,
			CacheHits: a.hits,
			Shared:    a.shared,
			Degraded:  a.degraded,
			Slowest:   a.slowest,
			Failures:  a.failures,
		}
		if st.OK > 0 {
			res.CacheHitRate = float64(a.hits) / float64(st.OK)
		}
		report.Rungs = append(report.Rungs, res)
	}
	return report, ctx.Err()
}

// one issues a single request — carrying its schedule-assigned ID as
// X-Request-ID so the daemon's observability joins on it — and records
// the outcome.
func (r *Runner) one(ctx context.Context, client *http.Client, url string, req *Request, agg *rungAgg) {
	if r.Do != nil {
		sent := time.Now()
		status, body, err := r.Do(ctx, req.ID, req.Body)
		latency := time.Since(sent)
		if status == 0 {
			errText := "request failed"
			if err != nil {
				errText = err.Error()
			}
			agg.record(req.ID, 0, 0, nil, errText)
			return
		}
		var reply *solveReply
		if status == http.StatusOK {
			reply = &solveReply{}
			if jsonErr := json.Unmarshal(body, reply); jsonErr != nil {
				reply = nil
			}
		}
		agg.record(req.ID, latency, status, reply, "")
		return
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(req.Body))
	if err != nil {
		agg.record(req.ID, 0, 0, nil, err.Error())
		return
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if req.ID != "" {
		httpReq.Header.Set("X-Request-ID", req.ID)
	}
	sent := time.Now()
	resp, err := client.Do(httpReq)
	latency := time.Since(sent)
	if err != nil {
		agg.record(req.ID, 0, 0, nil, err.Error())
		return
	}
	defer resp.Body.Close() //nolint:errcheck
	var reply *solveReply
	if resp.StatusCode == http.StatusOK {
		reply = &solveReply{}
		if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
			reply = nil
		}
	}
	agg.record(req.ID, latency, resp.StatusCode, reply, "")
}

// ms converts a duration to float milliseconds for the report.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
