package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Runner fires a built schedule at a coschedd daemon, open-loop: every
// request launches at its scheduled arrival time on its own goroutine,
// regardless of how many earlier requests are still in flight. The
// zero value needs BaseURL; Client defaults to a 30s-timeout client.
type Runner struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests (nil means a client with a 30s
	// timeout; the timeout is the generator's give-up bound and counts
	// as a transport error, not a server verdict).
	Client *http.Client
}

// solveReply is the subset of the daemon's SolveResponse the runner
// reads back for accounting.
type solveReply struct {
	Cached   bool `json:"cached"`
	Shared   bool `json:"shared"`
	Degraded bool `json:"degraded"`
}

// rungAgg accumulates one rung's results under a lock (many in-flight
// requests finish concurrently).
type rungAgg struct {
	mu       sync.Mutex
	hist     *Hist
	status   StatusBreakdown
	hits     int64
	shared   int64
	degraded int64
}

func (a *rungAgg) record(latency time.Duration, code int, reply *solveReply, transportErr bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case transportErr:
		a.status.Errors++
		return // no response: nothing to time or classify further
	case code == http.StatusOK:
		a.status.OK++
	case code == http.StatusTooManyRequests:
		a.status.Rejected429++
	case code == http.StatusServiceUnavailable:
		a.status.Rejected503++
	case code == http.StatusGatewayTimeout:
		a.status.Rejected504++
	default:
		a.status.Other++
	}
	a.hist.Record(latency)
	if reply != nil {
		if reply.Cached {
			a.hits++
		}
		if reply.Shared {
			a.shared++
		}
		if reply.Degraded {
			a.degraded++
		}
	}
}

// Run executes the schedule against the daemon and aggregates the
// results into a Report (BenchmarkCmd and Environment are left for the
// caller to fill). Cancelling ctx stops launching new requests; already
// fired ones are awaited. The call returns after every fired request
// has resolved, which can be up to one client-timeout past the last
// arrival.
func (r *Runner) Run(ctx context.Context, cfg Config, sched []Request) (*Report, error) {
	cfg = cfg.withDefaults()
	client := r.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	url := r.BaseURL + "/v1/solve"

	aggs := make([]*rungAgg, len(cfg.Rungs))
	fired := make([]int64, len(cfg.Rungs))
	for i := range aggs {
		aggs[i] = &rungAgg{hist: NewHist()}
	}

	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
launch:
	for i := range sched {
		req := &sched[i]
		// Open loop: wait for the arrival time, never for completions.
		if wait := req.At - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break launch
			}
		} else if ctx.Err() != nil {
			break launch
		}
		fired[req.Rung]++
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.one(ctx, client, url, req, aggs[req.Rung])
		}()
	}
	wg.Wait()

	report := &Report{
		Config: ReportConfig{
			PoolSize:     cfg.PoolSize,
			WarmFraction: cfg.WarmFraction,
			Seed:         cfg.Seed,
			Synthetic:    cfg.Synthetic,
			Method:       cfg.Method,
			DeadlineMS:   cfg.DeadlineMS,
		},
	}
	for i, rung := range cfg.Rungs {
		a := aggs[i]
		st := a.status
		responses := st.OK + st.Rejected429 + st.Rejected503 + st.Rejected504 + st.Other
		res := RungResult{
			OfferedRPS:  rung.RPS,
			DurationS:   rung.Duration.Seconds(),
			Requests:    fired[i],
			AchievedRPS: float64(responses) / rung.Duration.Seconds(),
			Latency: LatencyMS{
				P50:  ms(a.hist.Quantile(0.50)),
				P90:  ms(a.hist.Quantile(0.90)),
				P99:  ms(a.hist.Quantile(0.99)),
				P999: ms(a.hist.Quantile(0.999)),
				Mean: ms(a.hist.Mean()),
				Max:  ms(a.hist.Max()),
			},
			Status:    st,
			CacheHits: a.hits,
			Shared:    a.shared,
			Degraded:  a.degraded,
		}
		if st.OK > 0 {
			res.CacheHitRate = float64(a.hits) / float64(st.OK)
		}
		report.Rungs = append(report.Rungs, res)
	}
	return report, ctx.Err()
}

// one issues a single request and records its outcome.
func (r *Runner) one(ctx context.Context, client *http.Client, url string, req *Request, agg *rungAgg) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(req.Body))
	if err != nil {
		agg.record(0, 0, nil, true)
		return
	}
	httpReq.Header.Set("Content-Type", "application/json")
	sent := time.Now()
	resp, err := client.Do(httpReq)
	latency := time.Since(sent)
	if err != nil {
		agg.record(0, 0, nil, true)
		return
	}
	defer resp.Body.Close() //nolint:errcheck
	var reply *solveReply
	if resp.StatusCode == http.StatusOK {
		reply = &solveReply{}
		if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
			reply = nil
		}
	}
	agg.record(latency, resp.StatusCode, reply, false)
}

// ms converts a duration to float milliseconds for the report.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
