package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the BENCH_serving.json document: one serving-benchmark run,
// self-describing in the style of BENCH_astar.json/BENCH_parallel.json
// (the command that produced it, the environment it ran in, and the
// measured numbers — here per ladder rung).
type Report struct {
	// BenchmarkCmd is the command line that produced this report.
	BenchmarkCmd string `json:"benchmark_cmd"`
	// Environment records where the numbers were measured; serving
	// latencies are meaningless without it.
	Environment Environment `json:"environment"`
	// Config echoes the load mix so a reader can regenerate the run.
	Config ReportConfig `json:"config"`
	// Rungs holds one result per ladder rung, in run order.
	Rungs []RungResult `json:"rungs"`
	// Fleet summarises the fleet client's work when the ladder ran
	// through coschedclient (-replicas); nil for a direct single-daemon
	// run.
	Fleet *FleetStats `json:"fleet,omitempty"`
}

// FleetStats is the fleet client's whole-run accounting: how much
// retrying, hedging and failing-over it took to deliver the per-rung
// numbers. Mirrors coschedclient.Stats.
type FleetStats struct {
	// Requests is logical requests; Attempts physical HTTP calls
	// (Attempts ≥ Requests — the excess is retries and hedges).
	Requests int64 `json:"requests"`
	Attempts int64 `json:"attempts"`
	Retries  int64 `json:"retries"`
	// Hedges counts speculative duplicates; HedgeWins the ones that
	// answered first; Failovers successes served by a non-home replica;
	// Spillovers routes that skipped an open-circuited home.
	Hedges     int64 `json:"hedges"`
	HedgeWins  int64 `json:"hedge_wins"`
	Failovers  int64 `json:"failovers"`
	Spillovers int64 `json:"spillovers"`
	// Failures is logical requests with no usable answer;
	// DeadlineExhausted the subset that ran out of caller budget.
	Failures          int64 `json:"failures"`
	DeadlineExhausted int64 `json:"deadline_exhausted"`
	// Breaker transition counts, summed over backends.
	BreakerOpens     int64 `json:"breaker_opens"`
	BreakerHalfOpens int64 `json:"breaker_half_opens"`
	BreakerCloses    int64 `json:"breaker_closes"`
	// Replicas lists the backend base URLs the client routed across.
	Replicas []string `json:"replicas,omitempty"`
}

// Environment describes the measuring machine and the daemon's pool
// limits during the run.
type Environment struct {
	// CPUs and GOMAXPROCS bound what the daemon could possibly do in
	// parallel; Go and OSArch pin the toolchain.
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
	OSArch     string `json:"os_arch"`
	// WorkersMin and WorkersMax are the daemon's autoscaler bounds
	// (equal for a fixed pool); 0 when attaching to a daemon whose
	// configuration the generator cannot see.
	WorkersMin int `json:"workers_min,omitempty"`
	WorkersMax int `json:"workers_max,omitempty"`
	// Note carries any caveat about reading the numbers (e.g. a
	// single-CPU builder measuring queueing, not parallel speedup).
	Note string `json:"note,omitempty"`
}

// ReportConfig echoes the generator settings that shaped the load.
type ReportConfig struct {
	// PoolSize, WarmFraction and Seed pin the warm/cold mix;
	// Synthetic, Method and DeadlineMS the per-request solve.
	PoolSize     int     `json:"pool"`
	WarmFraction float64 `json:"warm_fraction"`
	Seed         int64   `json:"seed"`
	Synthetic    int     `json:"synthetic"`
	Method       string  `json:"method"`
	DeadlineMS   int64   `json:"deadline_ms,omitempty"`
}

// LatencyMS summarises a rung's request latencies in milliseconds.
// Percentiles come from the HDR-style histogram (≈5% relative error,
// never under-reported); Mean and Max are exact.
type LatencyMS struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// StatusBreakdown counts a rung's responses by outcome class.
type StatusBreakdown struct {
	// OK is HTTP 200; Rejected429/503/504 are the daemon's admission
	// verdicts (queue full / draining / deadline expired in queue);
	// Other is any different HTTP status; Errors is transport failures
	// (connection refused, client timeout) that produced no status.
	OK          int64 `json:"ok"`
	Rejected429 int64 `json:"rejected_429"`
	Rejected503 int64 `json:"rejected_503"`
	Rejected504 int64 `json:"rejected_504"`
	Other       int64 `json:"other,omitempty"`
	Errors      int64 `json:"errors"`
}

// SlowRequest names one of a rung's slowest responses: the request ID
// to grep for in the daemon's access log, /debug/requests ring, or
// trace (`coschedtrace requests`), plus enough context to triage
// without leaving the report.
type SlowRequest struct {
	ID        string  `json:"id"`
	LatencyMS float64 `json:"latency_ms"`
	Status    int     `json:"status"`
	// Cached marks an answer served from the daemon's solution cache or
	// a shared in-flight solve — a slow cached answer points at queueing,
	// not the solver.
	Cached bool `json:"cached,omitempty"`
}

// RequestFailure samples one failed or rejected request. Status is the
// HTTP verdict; transport failures that produced no status carry Err
// instead.
type RequestFailure struct {
	ID     string `json:"id"`
	Status int    `json:"status,omitempty"`
	Err    string `json:"err,omitempty"`
}

// RungResult is one ladder rung's measurement.
type RungResult struct {
	// OfferedRPS and DurationS restate the rung; Requests is the number
	// of arrivals the open-loop schedule fired.
	OfferedRPS float64 `json:"offered_rps"`
	DurationS  float64 `json:"duration_s"`
	Requests   int64   `json:"requests"`
	// AchievedRPS is responses (any status) per second of rung
	// duration — the throughput the daemon actually delivered against
	// the offered rate.
	AchievedRPS float64 `json:"achieved_rps"`
	// Latency covers request round-trips that got an HTTP response.
	Latency LatencyMS `json:"latency_ms"`
	// Status classifies every fired request's outcome.
	Status StatusBreakdown `json:"status"`
	// CacheHits/Shared/CacheHitRate report how many 200s were served
	// from the daemon's solution cache or a shared in-flight solve;
	// Degraded counts budget-breached best-effort answers.
	CacheHits    int64   `json:"cache_hits"`
	Shared       int64   `json:"shared,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Degraded     int64   `json:"degraded"`
	// Slowest names the rung's slowest responses worst-first (at most
	// slowestK); Failures samples up to failureSampleCap non-200
	// outcomes. Both carry the request IDs the daemon logged, so a bad
	// rung is one grep away from its traces.
	Slowest  []SlowRequest    `json:"slowest,omitempty"`
	Failures []RequestFailure `json:"failures,omitempty"`
}

// Validate checks the report is internally consistent: at least one
// rung, every rung with arrivals and throughput, ordered percentiles,
// and outcome counts that add up to the request count. It is the
// substance of coschedload -check and the CI gate on BENCH_serving.json.
func (r *Report) Validate() error {
	if len(r.Rungs) == 0 {
		return fmt.Errorf("report has no rungs")
	}
	for i, rg := range r.Rungs {
		if rg.Requests <= 0 {
			return fmt.Errorf("rung %d: no requests fired", i)
		}
		if rg.AchievedRPS <= 0 {
			return fmt.Errorf("rung %d: achieved RPS %.3f; want > 0", i, rg.AchievedRPS)
		}
		l := rg.Latency
		if !(l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.P999) {
			return fmt.Errorf("rung %d: latency percentiles not ordered: %+v", i, l)
		}
		total := rg.Status.OK + rg.Status.Rejected429 + rg.Status.Rejected503 +
			rg.Status.Rejected504 + rg.Status.Other + rg.Status.Errors
		if total != rg.Requests {
			return fmt.Errorf("rung %d: outcomes (%d) != requests (%d)", i, total, rg.Requests)
		}
		if rg.CacheHits+rg.Shared > rg.Status.OK {
			return fmt.Errorf("rung %d: cache hits+shared (%d) exceed OK responses (%d)",
				i, rg.CacheHits+rg.Shared, rg.Status.OK)
		}
		for j, s := range rg.Slowest {
			if s.ID == "" {
				return fmt.Errorf("rung %d: slowest[%d] has no request id", i, j)
			}
			if j > 0 && s.LatencyMS > rg.Slowest[j-1].LatencyMS {
				return fmt.Errorf("rung %d: slowest not ordered worst-first at %d", i, j)
			}
		}
	}
	if f := r.Fleet; f != nil {
		if f.Attempts < f.Requests {
			return fmt.Errorf("fleet: attempts (%d) < requests (%d)", f.Attempts, f.Requests)
		}
		if f.HedgeWins > f.Hedges {
			return fmt.Errorf("fleet: hedge wins (%d) exceed hedges (%d)", f.HedgeWins, f.Hedges)
		}
		if f.DeadlineExhausted > f.Failures {
			return fmt.Errorf("fleet: deadline-exhausted (%d) exceed failures (%d)",
				f.DeadlineExhausted, f.Failures)
		}
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads and decodes a BENCH_serving.json file (it does not
// validate; call Validate for that).
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
