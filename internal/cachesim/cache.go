// Package cachesim is a direct set-associative LRU cache simulator: the
// "offline profiling" route to co-run degradations that the paper's §VI-B
// contrasts with SDC prediction. Programs are modelled as synthetic memory
// reference streams; co-running streams interleave on the shared cache and
// the simulator counts each stream's hits and misses exactly.
//
// It is far slower than the analytical SDC model (internal/cache) — which
// is precisely the trade-off the paper describes — so it serves as ground
// truth in tests and ablations rather than as the solvers' oracle: the
// test suite checks that SDC's predicted degradations order co-run pairs
// the same way the simulated cache does.
package cachesim

import "fmt"

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	sets      int
	ways      int
	lineBytes int
	// lines[set][way] holds the cached line address (tag+set combined)
	// or 0 for an invalid way; age[set][way] is the LRU clock value.
	lines [][]uint64
	age   [][]uint64
	clock uint64

	// Hits and Misses are counted per owner ID passed to Access.
	Hits   []uint64
	Misses []uint64
}

// New builds a cache with the given geometry for the given number of
// access owners (co-running processes).
func New(sets, ways, lineBytes, owners int) (*Cache, error) {
	if sets <= 0 || ways <= 0 || lineBytes <= 0 || owners <= 0 {
		return nil, fmt.Errorf("cachesim: invalid geometry %d sets × %d ways × %dB for %d owners",
			sets, ways, lineBytes, owners)
	}
	// sets must be a power of two for the address mapping below.
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cachesim: %d sets is not a power of two", sets)
	}
	c := &Cache{
		sets:      sets,
		ways:      ways,
		lineBytes: lineBytes,
		lines:     make([][]uint64, sets),
		age:       make([][]uint64, sets),
		Hits:      make([]uint64, owners),
		Misses:    make([]uint64, owners),
	}
	for s := range c.lines {
		c.lines[s] = make([]uint64, ways)
		c.age[s] = make([]uint64, ways)
	}
	return c, nil
}

// Access simulates one memory reference by the given owner and reports
// whether it hit.
func (c *Cache) Access(owner int, addr uint64) bool {
	line := addr / uint64(c.lineBytes)
	set := int(line) & (c.sets - 1)
	key := line + 1 // 0 marks an invalid way
	c.clock++
	ways := c.lines[set]
	ages := c.age[set]
	for w, l := range ways {
		if l == key {
			ages[w] = c.clock
			c.Hits[owner]++
			return true
		}
	}
	// Miss: evict the LRU way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if ages[w] < ages[victim] {
			victim = w
		}
	}
	ways[victim] = key
	ages[victim] = c.clock
	c.Misses[owner]++
	return false
}

// MissRatio returns the owner's miss ratio so far.
func (c *Cache) MissRatio(owner int) float64 {
	total := c.Hits[owner] + c.Misses[owner]
	if total == 0 {
		return 0
	}
	return float64(c.Misses[owner]) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for s := range c.lines {
		for w := range c.lines[s] {
			c.lines[s][w] = 0
			c.age[s][w] = 0
		}
	}
	for i := range c.Hits {
		c.Hits[i] = 0
		c.Misses[i] = 0
	}
	c.clock = 0
}
