package cachesim

import (
	"fmt"
	"math/rand"
)

// Stream generates a synthetic memory reference trace for one process: a
// hot set reused with high probability embedded in a larger working set,
// the classic two-level locality model. Disjoint base addresses keep
// co-running streams from sharing lines (the paper's jobs share nothing).
type Stream struct {
	// WorkingSetLines is the stream's total footprint in cache lines.
	WorkingSetLines int
	// HotLines is the size of the frequently-reused subset.
	HotLines int
	// HotProb is the probability an access goes to the hot subset.
	HotProb float64
	// AccessRate weighs the stream in co-run interleaving and converts
	// misses to stall cycles (accesses per kilocycle, as in
	// cache.Profile).
	AccessRate float64

	base uint64
	line int
	rng  *rand.Rand
}

// NewStream builds a reproducible stream. base gives the stream a private
// address region; pass distinct values per co-runner.
func NewStream(seed int64, base uint64, workingSetLines, hotLines int, hotProb, accessRate float64) (*Stream, error) {
	switch {
	case workingSetLines <= 0:
		return nil, fmt.Errorf("cachesim: working set must be positive")
	case hotLines <= 0 || hotLines > workingSetLines:
		return nil, fmt.Errorf("cachesim: hot set %d outside (0, %d]", hotLines, workingSetLines)
	case hotProb < 0 || hotProb > 1:
		return nil, fmt.Errorf("cachesim: hot probability %v outside [0,1]", hotProb)
	case accessRate <= 0:
		return nil, fmt.Errorf("cachesim: access rate must be positive")
	}
	return &Stream{
		WorkingSetLines: workingSetLines,
		HotLines:        hotLines,
		HotProb:         hotProb,
		AccessRate:      accessRate,
		base:            base,
		rng:             rand.New(rand.NewSource(seed)),
	}, nil
}

// Next returns the next referenced address (line-granular).
func (st *Stream) Next(lineBytes int) uint64 {
	var line int
	if st.rng.Float64() < st.HotProb {
		line = st.rng.Intn(st.HotLines)
	} else {
		line = st.HotLines + st.rng.Intn(st.WorkingSetLines-st.HotLines+1)
	}
	return st.base + uint64(line*lineBytes)
}

// Geometry describes the simulated shared cache plus the timing constants
// of the Eq. 14-15 CPU-time model.
type Geometry struct {
	Sets              int
	Ways              int
	LineBytes         int
	MissPenaltyCycles float64
}

// SoloMissRatio simulates the stream alone on the cache for n accesses
// (after a warm-up of the same length) and returns its miss ratio.
func SoloMissRatio(g Geometry, st *Stream, n int) (float64, error) {
	c, err := New(g.Sets, g.Ways, g.LineBytes, 1)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ { // warm-up
		c.Access(0, st.Next(g.LineBytes))
	}
	c.Hits[0], c.Misses[0] = 0, 0
	for i := 0; i < n; i++ {
		c.Access(0, st.Next(g.LineBytes))
	}
	return c.MissRatio(0), nil
}

// CoRunMissRatios interleaves the streams on one shared cache, weighting
// each stream by its access rate (a deficit-round-robin schedule), and
// returns per-stream miss ratios measured after a warm-up pass.
func CoRunMissRatios(g Geometry, streams []*Stream, accessesPerStream int) ([]float64, error) {
	c, err := New(g.Sets, g.Ways, g.LineBytes, len(streams))
	if err != nil {
		return nil, err
	}
	run := func(count bool) {
		credits := make([]float64, len(streams))
		issued := make([]int, len(streams))
		for done := 0; done < len(streams); {
			done = 0
			for i, st := range streams {
				if issued[i] >= accessesPerStream {
					done++
					continue
				}
				credits[i] += st.AccessRate
				for credits[i] >= 1 && issued[i] < accessesPerStream {
					credits[i]--
					c.Access(i, st.Next(g.LineBytes))
					issued[i]++
				}
			}
		}
		if !count {
			for i := range streams {
				c.Hits[i], c.Misses[i] = 0, 0
			}
		}
	}
	run(false) // warm-up
	run(true)
	out := make([]float64, len(streams))
	for i := range streams {
		out[i] = c.MissRatio(i)
	}
	return out, nil
}

// Degradation converts a solo/co-run miss-ratio pair into the Eq. 1
// degradation via the Eq. 14-15 CPU-time model: per kilocycle of base
// execution the stream spends rate·ratio·penalty cycles stalled.
func Degradation(g Geometry, st *Stream, soloRatio, coRatio float64) float64 {
	soloStall := st.AccessRate * soloRatio * g.MissPenaltyCycles
	coStall := st.AccessRate * coRatio * g.MissPenaltyCycles
	return (coStall - soloStall) / (1000 + soloStall)
}
