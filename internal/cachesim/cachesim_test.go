package cachesim

import (
	"testing"

	"cosched/internal/cache"
)

func TestCacheBasics(t *testing.T) {
	c, err := New(4, 2, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0, 0) { // cold miss
		t.Error("cold access hit")
	}
	if !c.Access(0, 0) { // now resident
		t.Error("warm access missed")
	}
	if c.Hits[0] != 1 || c.Misses[0] != 1 {
		t.Errorf("counters = %d hits / %d misses", c.Hits[0], c.Misses[0])
	}
	if got := c.MissRatio(0); got != 0.5 {
		t.Errorf("MissRatio = %v; want 0.5", got)
	}
	c.Reset()
	if c.Hits[0] != 0 || c.Misses[0] != 0 || c.MissRatio(0) != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set, 2 ways: the third distinct line evicts the least recently
	// used.
	c, err := New(1, 2, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, 0*64)
	c.Access(0, 1*64)
	c.Access(0, 0*64) // line 0 becomes MRU
	c.Access(0, 2*64) // evicts line 1
	if !c.Access(0, 0*64) {
		t.Error("MRU line was evicted")
	}
	if c.Access(0, 1*64) {
		t.Error("LRU line survived eviction")
	}
}

func TestCacheRejectsBadGeometry(t *testing.T) {
	cases := [][4]int{{0, 2, 64, 1}, {4, 0, 64, 1}, {4, 2, 0, 1}, {4, 2, 64, 0}, {3, 2, 64, 1}}
	for _, tc := range cases {
		if _, err := New(tc[0], tc[1], tc[2], tc[3]); err == nil {
			t.Errorf("geometry %v accepted", tc)
		}
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(1, 0, 0, 1, 0.5, 1); err == nil {
		t.Error("empty working set accepted")
	}
	if _, err := NewStream(1, 0, 10, 20, 0.5, 1); err == nil {
		t.Error("hot set larger than working set accepted")
	}
	if _, err := NewStream(1, 0, 10, 5, 1.5, 1); err == nil {
		t.Error("bad hot probability accepted")
	}
	if _, err := NewStream(1, 0, 10, 5, 0.5, 0); err == nil {
		t.Error("zero access rate accepted")
	}
}

func TestStreamStaysInRegion(t *testing.T) {
	st, err := NewStream(7, 1<<30, 100, 10, 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a := st.Next(64)
		if a < 1<<30 || a > 1<<30+uint64(101*64) {
			t.Fatalf("address %#x outside the stream's region", a)
		}
	}
}

func TestSoloMissRatioTracksWorkingSet(t *testing.T) {
	// A working set that fits in the cache should mostly hit; one that
	// vastly exceeds it should mostly miss.
	g := Geometry{Sets: 64, Ways: 8, LineBytes: 64, MissPenaltyCycles: 200}
	small, err := NewStream(1, 0, 128, 32, 0.7, 5) // 128 lines vs 512-line cache
	if err != nil {
		t.Fatal(err)
	}
	rSmall, err := SoloMissRatio(g, small, 20000)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewStream(2, 1<<30, 8192, 64, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := SoloMissRatio(g, big, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if rSmall > 0.05 {
		t.Errorf("fitting working set missed %.1f%%", rSmall*100)
	}
	if rBig < 0.4 {
		t.Errorf("oversized working set missed only %.1f%%", rBig*100)
	}
}

func TestCoRunDegradesSensitiveStream(t *testing.T) {
	// A stream that fits alone but not alongside an aggressor must lose
	// hits when co-run.
	g := Geometry{Sets: 64, Ways: 8, LineBytes: 64, MissPenaltyCycles: 200}
	victim, err := NewStream(3, 0, 384, 64, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := SoloMissRatio(g, victim, 30000)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh streams for the co-run (same seeds) keep it reproducible.
	victim2, _ := NewStream(3, 0, 384, 64, 0.6, 5)
	aggressor2, _ := NewStream(4, 1<<30, 4096, 64, 0.1, 15)
	co, err := CoRunMissRatios(g, []*Stream{victim2, aggressor2}, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if co[0] <= solo {
		t.Errorf("victim miss ratio did not rise: solo %.3f vs co-run %.3f", solo, co[0])
	}
	d := Degradation(g, victim, solo, co[0])
	if d <= 0 {
		t.Errorf("degradation = %v; want positive", d)
	}
}

func TestSimAgreesWithSDCOrdering(t *testing.T) {
	// Cross-model check: the analytical SDC model (internal/cache) and
	// the direct simulation must agree on which of two co-runners hurts
	// a victim more.
	// 512 sets × 16 ways = 8192 lines: the victim's working set fits
	// alone but is squeezed out by the harsh co-runner.
	g := Geometry{Sets: 512, Ways: 16, LineBytes: 64, MissPenaltyCycles: 200}
	mkStream := func(seed int64, base uint64, ws int, rate float64) *Stream {
		st, err := NewStream(seed, base, ws, ws/8, 0.6, rate)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	const accesses = 60000
	victim := func() *Stream { return mkStream(1, 0, 6000, 8) }
	mild := func() *Stream { return mkStream(2, 1<<30, 1000, 2) }
	harsh := func() *Stream { return mkStream(3, 1<<31, 120000, 14) }

	solo, err := SoloMissRatio(g, victim(), accesses)
	if err != nil {
		t.Fatal(err)
	}
	coMild, err := CoRunMissRatios(g, []*Stream{victim(), mild()}, accesses)
	if err != nil {
		t.Fatal(err)
	}
	coHarsh, err := CoRunMissRatios(g, []*Stream{victim(), harsh()}, accesses)
	if err != nil {
		t.Fatal(err)
	}
	dMildSim := Degradation(g, victim(), solo, coMild[0])
	dHarshSim := Degradation(g, victim(), solo, coHarsh[0])

	// SDC-side: profiles qualitatively matching the streams.
	m := &cache.Machine{Name: "sim", Cores: 2, SharedCacheBytes: g.Sets * g.Ways * g.LineBytes,
		Ways: g.Ways, LineBytes: g.LineBytes, MissPenaltyCycles: g.MissPenaltyCycles, ClockGHz: 2}
	prof := func(rate, miss, reuse float64) *cache.Profile {
		hits := make([]float64, m.Ways)
		norm := 0.0
		for d := range hits {
			norm += pow(reuse, d)
		}
		for d := range hits {
			hits[d] = rate * (1 - miss) * pow(reuse, d) / norm
		}
		return &cache.Profile{Name: "p", Hits: hits, Beyond: rate * miss, BaseCycles: 1e9}
	}
	victimP := prof(8, 0.1, 0.9)
	mildP := prof(2, 0.1, 0.6)
	harshP := prof(14, 0.6, 0.95)
	dMildSDC := cache.CoRunDegradations(m, []*cache.Profile{victimP, mildP})[0]
	dHarshSDC := cache.CoRunDegradations(m, []*cache.Profile{victimP, harshP})[0]

	if (dHarshSim > dMildSim) != (dHarshSDC > dMildSDC) {
		t.Errorf("models disagree on ordering: sim %v/%v, SDC %v/%v",
			dMildSim, dHarshSim, dMildSDC, dHarshSDC)
	}
	if dHarshSim <= dMildSim {
		t.Errorf("simulated cache: harsh co-runner (%v) not worse than mild (%v)", dHarshSim, dMildSim)
	}
}

func pow(b float64, e int) float64 {
	r := 1.0
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
