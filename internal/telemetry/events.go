package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one line of the structured JSONL solver trace. Ev identifies
// the event type; the other fields are populated per type (zero-valued
// fields are omitted from the encoding):
//
//	solve_start  n, u, method          — one per solve, first line
//	expand       pop, depth, q, g, h, leader
//	dismiss      pop, q, g, reason     — reason: worse|stale|pruned|beam_trim
//	progress     pop, frontier, pops_per_sec, eta_sec, elapsed_sec
//	solution     cost, groups, pop     — one per solve, last line
//
// pop is the 1-based expansion index at which the event happened (for
// dismiss events, the expansion that generated the child), depth the path
// depth in machines, q the number of scheduled processes, g/h the Eq. 13
// distance and heuristic estimate of the sub-path in degradation units.
// The schema is append-only: decoders must ignore unknown fields.
type Event struct {
	Ev string `json:"ev"`

	// Solve identification (solve_start).
	N      int    `json:"n,omitempty"`
	U      int    `json:"u,omitempty"`
	Method string `json:"method,omitempty"`

	// Search-span fields (expand, dismiss, progress, solution).
	Pop    int64   `json:"pop,omitempty"`
	Depth  int     `json:"depth,omitempty"`
	Q      int     `json:"q,omitempty"`
	G      float64 `json:"g,omitempty"`
	H      float64 `json:"h,omitempty"`
	Leader int     `json:"leader,omitempty"`
	Reason string  `json:"reason,omitempty"`

	// Progress fields.
	Frontier   int     `json:"frontier,omitempty"`
	PopsPerSec float64 `json:"pops_per_sec,omitempty"`
	ETASec     float64 `json:"eta_sec,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`

	// Solution fields.
	Cost   float64 `json:"cost,omitempty"`
	Groups [][]int `json:"groups,omitempty"`
}

// EventWriter encodes Events as JSON Lines. It buffers internally; call
// Flush (or Close the underlying writer after Flush) when the trace must
// be durable — the astar JSONLTracer flushes on every solution event.
// Emit is safe for concurrent use.
type EventWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewEventWriter returns an EventWriter emitting to w.
func NewEventWriter(w io.Writer) *EventWriter {
	bw := bufio.NewWriter(w)
	return &EventWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event as a single JSON line. The first encoding error
// is sticky and returned by this and every later call.
func (ew *EventWriter) Emit(ev Event) error {
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.err != nil {
		return ew.err
	}
	ew.err = ew.enc.Encode(&ev)
	return ew.err
}

// Flush pushes buffered lines to the underlying writer.
func (ew *EventWriter) Flush() error {
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.err != nil {
		return ew.err
	}
	ew.err = ew.bw.Flush()
	return ew.err
}

// ReadEvents decodes a JSONL event stream produced by EventWriter,
// returning the events in order. Blank lines are skipped; a malformed
// line aborts with an error naming its line number.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
