package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Event is one line of the structured JSONL solver trace. Ev identifies
// the event type; the other fields are populated per type (zero-valued
// fields are omitted from the encoding):
//
//	solve_start  n, u, method, h, sample, dismiss_sample, parallelism
//	             — one per solve, first search event; parallelism is the
//	             expansion-worker count, present only when > 1 (parallel
//	             workers interleave expand events, so order-sensitive
//	             consumers must relax per-stream invariants)
//	expand       pop, depth, q, g, h_est, leader
//	dismiss      pop, q, g, reason     — reason: worse|stale|pruned|beam_trim
//	progress     pop, frontier, pops_per_sec, eta_sec, elapsed_sec
//	span_start   span                  — a solve-pipeline phase opened
//	span_end     span, dur_ms          — the phase closed
//	stats        visited, expanded, generated, dismissed_*, pruned,
//	             beam_trimmed, in_frontier, condensed (graph searches)
//	             or nodes, lp_iters (IP) — final accounting, before the
//	             solution event
//	incumbent    cost, pop             — IP bound improvement
//	abort        pop, reason           — the solve stopped early; reason:
//	             deadline|cancel|expansions|memory. At most one per solve,
//	             before the stats/solution pair; the solution event then
//	             repeats the reason.
//	arrival      job, t                — online simulation: job queued
//	place        job, t, machines, delay — online: job placed
//	place_fail   job, t, reason, delay — online: transient placement
//	             failure injected by a fault plan; the job retries after
//	             delay simulated seconds
//	evict        job, t, machines      — online: a machine crash evicted
//	             the job (remaining work preserved, job requeued)
//	machine_down machines, t           — online: machine crashed
//	machine_up   machines, t           — online: machine restored
//	job_done     job, t                — online: job finished
//	scale        workers, reason, t_ms — serving layer: the coschedd
//	             autoscaler resized its worker pool to workers; reason
//	             explains the trigger ("queue_delay_p90=..." on grow,
//	             "idle=..." on shrink). Scale events carry no solve_id —
//	             they describe the pool, not a solve — and t_ms counts
//	             from server start
//	cache        reason, n, bytes, t_ms — serving layer: the coschedd
//	             solution cache changed shape; reason is the operation
//	             (replay: n log records pre-warmed the LRU at boot;
//	             store: a solve's answer became resident; evict: a bound
//	             pushed entries out, n of them). bytes is the cache's
//	             resident byte charge after the operation. Cache events
//	             carry no solve_id — they describe the tier, not a solve
//	             — and t_ms counts from server start
//	request      req_id, route, status, queue_ms, solve_ms, encode_ms,
//	             total_ms, cache, degraded, reason — serving layer: one
//	             HTTP request's lifecycle summary, emitted at response
//	             write. solve_id is the solve that answered it (the
//	             original run's for cache hits), which is the join key
//	             between the HTTP timeline and the solver timeline;
//	             requests that ran no solver (rejections, bad requests)
//	             carry solve_id 0. cache is hit|shared|miss|bypass (""
//	             when the route does not consult the cache); reason
//	             repeats the abort reason of a degraded answer. t_ms
//	             counts from server start
//	solution     cost, groups, pop, reason — one per solve, last line;
//	             reason is non-empty on degraded solves and matches the
//	             abort event
//
// pop is the 1-based expansion index at which the event happened (for
// dismiss events, the expansion that generated the child), depth the path
// depth in machines, q the number of scheduled processes, g/h the Eq. 13
// distance and heuristic estimate of the sub-path in degradation units.
//
// Every event may additionally carry t_ms (monotonic milliseconds since
// the solve epoch) and solve_id (a process-unique solve tag from
// NextSolveID, separating interleaved or concatenated multi-solve
// traces). Online-simulation events use t — the simulated clock — instead
// of t_ms, and 1-based job numbers. The schema is append-only: decoders
// must ignore unknown fields.
type Event struct {
	Ev string `json:"ev"`

	// Timing and identity (any event; both optional, absent in traces
	// recorded before the span/flight-recorder era).
	TMS     float64 `json:"t_ms,omitempty"`
	SolveID uint64  `json:"solve_id,omitempty"`

	// Solve identification (solve_start). HName names the h strategy;
	// Sample/DismissSample record the tracer's expand/dismiss sampling
	// intervals (0 or 1 = every event emitted), which tells trace
	// consumers whether event counts reconcile with the stats event.
	N             int    `json:"n,omitempty"`
	U             int    `json:"u,omitempty"`
	Method        string `json:"method,omitempty"`
	HName         string `json:"h,omitempty"`
	Sample        int64  `json:"sample,omitempty"`
	DismissSample int64  `json:"dismiss_sample,omitempty"`
	Parallelism   int    `json:"parallelism,omitempty"`

	// Search-span fields (expand, dismiss, progress, solution).
	Pop    int64   `json:"pop,omitempty"`
	Depth  int     `json:"depth,omitempty"`
	Q      int     `json:"q,omitempty"`
	G      float64 `json:"g,omitempty"`
	H      float64 `json:"h_est,omitempty"`
	Leader int     `json:"leader,omitempty"`
	Reason string  `json:"reason,omitempty"`

	// Progress fields.
	Frontier   int     `json:"frontier,omitempty"`
	PopsPerSec float64 `json:"pops_per_sec,omitempty"`
	ETASec     float64 `json:"eta_sec,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`

	// Phase-span fields (span_start, span_end).
	Span  string  `json:"span,omitempty"`
	DurMS float64 `json:"dur_ms,omitempty"`

	// Final-accounting fields (stats). Graph searches fill the admission
	// block — Generated == Expanded + DismissedStale + BeamTrimmed +
	// InFrontier — and IP solves the Nodes/LPIters pair.
	Visited        int64 `json:"visited,omitempty"`
	Expanded       int64 `json:"expanded,omitempty"`
	Generated      int64 `json:"generated,omitempty"`
	DismissedStale int64 `json:"dismissed_stale,omitempty"`
	DismissedWorse int64 `json:"dismissed_worse,omitempty"`
	Pruned         int64 `json:"pruned,omitempty"`
	BeamTrimmed    int64 `json:"beam_trimmed,omitempty"`
	InFrontier     int64 `json:"in_frontier,omitempty"`
	Condensed      int64 `json:"condensed,omitempty"`
	Nodes          int64 `json:"nodes,omitempty"`
	LPIters        int64 `json:"lp_iters,omitempty"`

	// Online-simulation fields (arrival, place, job_done). Job is
	// 1-based (JobID + 1, so job 0 survives omitempty); T is the
	// simulated clock; Delay the placement delay in simulated time.
	Job      int     `json:"job,omitempty"`
	T        float64 `json:"t,omitempty"`
	Machines []int   `json:"machines,omitempty"`
	Delay    float64 `json:"delay,omitempty"`

	// Solution fields.
	Cost   float64 `json:"cost,omitempty"`
	Groups [][]int `json:"groups,omitempty"`

	// Serving-layer fields (scale): the worker-pool size after an
	// autoscale event.
	Workers int `json:"workers,omitempty"`

	// Serving-layer fields (cache): the solution cache's resident byte
	// charge after the operation named by Reason (replay|store|evict);
	// N counts the records the operation touched.
	Bytes int64 `json:"bytes,omitempty"`

	// Request-lifecycle fields (request): the coschedd serving layer's
	// per-request summary. ReqID is the request's identity (generated at
	// admission or accepted from an X-Request-ID header); Route the
	// endpoint; Status the HTTP status written; QueueMS/SolveMS/EncodeMS/
	// TotalMS the phase breakdown in wall-clock milliseconds; Cache the
	// solution-cache outcome (hit|shared|miss|bypass); Degraded whether
	// the answer was a budget-breached incumbent (Reason then names the
	// broken budget). SolveID on a request event is the answering solve,
	// joining the HTTP lifecycle to the solver timeline.
	ReqID    string  `json:"req_id,omitempty"`
	Route    string  `json:"route,omitempty"`
	Status   int     `json:"status,omitempty"`
	QueueMS  float64 `json:"queue_ms,omitempty"`
	SolveMS  float64 `json:"solve_ms,omitempty"`
	EncodeMS float64 `json:"encode_ms,omitempty"`
	TotalMS  float64 `json:"total_ms,omitempty"`
	Cache    string  `json:"cache,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`

	// Fleet-client fields (client_attempt, client_request,
	// client_breaker) — and, on a server "request" event, Replica is the
	// answering daemon's replica_id. Attempt numbers the physical HTTP
	// calls of one logical request (1-based, shared req_id); Hedged
	// marks a speculative duplicate fired after the hedge delay; Replica
	// names the backend the attempt went to (the winning backend, on
	// client_request); Breaker is the per-backend circuit state after a
	// client_breaker transition (closed|open|half-open).
	Attempt int    `json:"attempt,omitempty"`
	Hedged  bool   `json:"hedged,omitempty"`
	Replica string `json:"replica,omitempty"`
	Breaker string `json:"breaker,omitempty"`
}

// EventSink receives trace events one at a time. EventWriter (durable
// JSONL) and FlightRecorder (in-memory ring) are the two implementations
// this package provides; MultiSink fans an event out to several.
// Implementations must be safe for concurrent Emit calls.
type EventSink interface {
	Emit(Event) error
}

// EventSinkFunc adapts a function to the EventSink interface, the
// http.HandlerFunc pattern — handy for tests and inline fan-outs.
type EventSinkFunc func(Event) error

// Emit calls f.
func (f EventSinkFunc) Emit(ev Event) error { return f(ev) }

// flusher is the optional buffered-sink extension: EventWriter implements
// it, FlightRecorder does not need to.
type flusher interface {
	Flush() error
}

// FlushSink flushes s when it buffers (EventWriter, a MultiSink holding
// one); a nil or unbuffered sink is a no-op.
func FlushSink(s EventSink) error {
	if f, ok := s.(flusher); ok && f != nil {
		return f.Flush()
	}
	return nil
}

// multiSink fans events out to several sinks.
type multiSink []EventSink

// Emit implements EventSink: the first error wins but every sink still
// receives the event.
func (m multiSink) Emit(ev Event) error {
	var first error
	for _, s := range m {
		if err := s.Emit(ev); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush implements the buffered-sink extension.
func (m multiSink) Flush() error {
	var first error
	for _, s := range m {
		if err := FlushSink(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MultiSink combines sinks into one; nils are dropped. It returns nil
// when nothing remains, the sink itself when exactly one does.
func MultiSink(sinks ...EventSink) EventSink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// solveIDCounter backs NextSolveID.
var solveIDCounter atomic.Uint64

// NextSolveID returns a process-unique solve tag (1, 2, 3, ...) for the
// Event.SolveID field, letting consumers separate the solves of a
// multi-solve trace without relying on solve_start ordering.
func NextSolveID() uint64 { return solveIDCounter.Add(1) }

// EventWriter encodes Events as JSON Lines. It buffers internally; call
// Flush (or Close the underlying writer after Flush) when the trace must
// be durable — the astar EventTracer flushes on every solution event.
// Emit is safe for concurrent use.
type EventWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewEventWriter returns an EventWriter emitting to w.
func NewEventWriter(w io.Writer) *EventWriter {
	bw := bufio.NewWriter(w)
	return &EventWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event as a single JSON line. The first encoding error
// is sticky and returned by this and every later call.
func (ew *EventWriter) Emit(ev Event) error {
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.err != nil {
		return ew.err
	}
	ew.err = ew.enc.Encode(&ev)
	return ew.err
}

// Flush pushes buffered lines to the underlying writer.
func (ew *EventWriter) Flush() error {
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.err != nil {
		return ew.err
	}
	ew.err = ew.bw.Flush()
	return ew.err
}

// TraceError reports a trace whose decoding stopped mid-stream: a
// truncated or corrupt line (a crashed producer's torn last write, a
// partial download). ReadEvents returns it alongside every event parsed
// before the bad line, so consumers can analyse the intact prefix.
type TraceError struct {
	// Line is the 1-based line number of the first undecodable line.
	Line int
	// Err is the underlying JSON or scanner error.
	Err error
}

// Error implements the error interface.
func (e *TraceError) Error() string {
	return fmt.Sprintf("telemetry: trace line %d: %v", e.Line, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TraceError) Unwrap() error { return e.Err }

// ReadEvents decodes a JSONL event stream produced by EventWriter,
// returning the events in order. Blank lines are skipped, and events of
// unknown type are kept (the schema is append-only; consumers filter on
// Ev). An empty stream yields no events and no error. A malformed or
// truncated line stops the decode: ReadEvents then returns every event
// before it together with a *TraceError naming the line — callers that
// can work on a prefix (a flight-recorder dump, a trace cut off by a
// crash) check for that type instead of discarding the whole trace.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return out, &TraceError{Line: line, Err: err}
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, &TraceError{Line: line + 1, Err: err}
	}
	return out, nil
}

// AsTraceError unwraps err to a *TraceError, reporting whether the
// decode failed mid-stream (so the accompanying events are a usable
// prefix) as opposed to an I/O failure on the reader itself.
func AsTraceError(err error) (*TraceError, bool) {
	var te *TraceError
	ok := errors.As(err, &te)
	return te, ok
}
