package telemetry

import (
	"math"
	"testing"
	"time"
)

// TestQuantileFromCountsEdges pins the edge cases the autoscaler can
// feed the function after differencing two histogram snapshots: an
// empty window, a single occupied bucket, all-zero counts, and the
// quantile extremes q=0 and q=1.
func TestQuantileFromCountsEdges(t *testing.T) {
	bounds := []float64{1, 10, 100}

	t.Run("empty-window", func(t *testing.T) {
		if got := QuantileFromCounts(bounds, nil, 0.9); got != 0 {
			t.Errorf("nil counts: got %v, want 0", got)
		}
		if got := QuantileFromCounts(nil, nil, 0.9); got != 0 {
			t.Errorf("nil bounds and counts: got %v, want 0", got)
		}
	})

	t.Run("all-zero-counts", func(t *testing.T) {
		if got := QuantileFromCounts(bounds, []int64{0, 0, 0, 0}, 0.5); got != 0 {
			t.Errorf("all-zero counts: got %v, want 0", got)
		}
	})

	t.Run("single-bucket", func(t *testing.T) {
		// Everything in the 10ms bucket: every quantile reports its
		// upper bound.
		counts := []int64{0, 7, 0, 0}
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			if got := QuantileFromCounts(bounds, counts, q); got != 10 {
				t.Errorf("q=%v: got %v, want 10", q, got)
			}
		}
	})

	t.Run("single-bucket-inf", func(t *testing.T) {
		counts := []int64{0, 0, 0, 3}
		if got := QuantileFromCounts(bounds, counts, 0.5); !math.IsInf(got, 1) {
			t.Errorf("+Inf bucket: got %v, want +Inf", got)
		}
	})

	t.Run("q-zero", func(t *testing.T) {
		// q=0 still needs at least one observation's bucket: the target
		// count is clamped to 1, so it reports the lowest occupied bound.
		counts := []int64{0, 2, 3, 0}
		if got := QuantileFromCounts(bounds, counts, 0); got != 10 {
			t.Errorf("q=0: got %v, want 10 (lowest occupied bucket)", got)
		}
	})

	t.Run("q-one", func(t *testing.T) {
		counts := []int64{2, 2, 2, 0}
		if got := QuantileFromCounts(bounds, counts, 1); got != 100 {
			t.Errorf("q=1: got %v, want 100 (highest occupied bucket)", got)
		}
		withInf := []int64{2, 2, 2, 1}
		if got := QuantileFromCounts(bounds, withInf, 1); !math.IsInf(got, 1) {
			t.Errorf("q=1 with +Inf tail: got %v, want +Inf", got)
		}
	})
}

// TestSLOBurnRates drives an SLO through a controlled clock and checks
// the burn-rate gauges and breach counters.
func TestSLOBurnRates(t *testing.T) {
	now := time.Unix(0, 0)
	reg := New()
	slo := NewSLO(reg, SLOConfig{
		Name:      "test.slo",
		Objective: 0.99, // 1% budget
		Now:       func() time.Time { return now },
	})

	// 100 good observations: zero burn, no breaches.
	for i := 0; i < 100; i++ {
		slo.Record(true)
	}
	if got := slo.FastBurn(); got != 0 {
		t.Errorf("all-good fast burn = %v, want 0", got)
	}

	// 100 more, half bad: windowed bad ratio 50/200 = 0.25, burn
	// 0.25/0.01 = 25 — over both thresholds, breach counters fire once.
	for i := 0; i < 100; i++ {
		slo.Record(i%2 == 0)
	}
	if got := slo.FastBurn(); math.Abs(got-25) > 1e-9 {
		t.Errorf("fast burn = %v, want 25", got)
	}
	snap := reg.Snapshot()
	if got := snap["test.slo.breach_fast"]; got != int64(1) {
		t.Errorf("breach_fast = %v, want 1 (one upward crossing)", got)
	}
	if got := snap["test.slo.breach_slow"]; got != int64(1) {
		t.Errorf("breach_slow = %v, want 1", got)
	}
	if got := snap["test.slo.good"]; got != int64(150) {
		t.Errorf("good = %v, want 150", got)
	}
	if got := snap["test.slo.bad"]; got != int64(50) {
		t.Errorf("bad = %v, want 50", got)
	}

	// Advance past the fast window (5m default): the bad observations
	// age out and the fast burn recovers while the slow window (1h)
	// still remembers them.
	now = now.Add(6 * time.Minute)
	slo.Record(true)
	if got := slo.FastBurn(); got != 0 {
		t.Errorf("fast burn after window expiry = %v, want 0", got)
	}
	if got := slo.SlowBurn(); got == 0 {
		t.Error("slow burn forgot the bad events inside its window")
	}

	// Recovery then a second excursion increments the breach counter
	// again (once per excursion, not per bad request).
	for i := 0; i < 400; i++ {
		slo.Record(false)
	}
	snap = reg.Snapshot()
	if got := snap["test.slo.breach_fast"]; got != int64(2) {
		t.Errorf("breach_fast after second excursion = %v, want 2", got)
	}
}

// TestSLODetachedRegistry checks a nil registry yields a functional
// tracker instead of a panic.
func TestSLODetachedRegistry(t *testing.T) {
	slo := NewSLO(nil, SLOConfig{Name: "detached"})
	slo.Record(true)
	slo.Record(false)
	if got := slo.FastBurn(); got <= 0 {
		t.Errorf("detached tracker burn = %v, want > 0", got)
	}
}
