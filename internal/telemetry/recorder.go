package telemetry

import (
	"io"
	"sync/atomic"
)

// FlightRecorder keeps the last N trace events in a fixed ring so a
// misbehaving long-running solve can be diagnosed after the fact without
// having had a durable -trace enabled. Emit is lock-free and
// allocation-free: each slot is guarded by a per-slot sequence word
// (seqlock), the writer claims a global position with one atomic add and
// copies the event in place. Readers (Events, Dump, the /debug/trace
// endpoint and the coschedcli SIGQUIT handler) snapshot slots optimistically
// and drop any slot a concurrent writer touched mid-copy — a dump taken
// during a solve is a consistent subset, never a torn event.
//
// The recorder implements EventSink, so it can stand alone or fan in
// behind MultiSink alongside a durable EventWriter.
type FlightRecorder struct {
	slots []recorderSlot
	// head is the count of Emit calls; event i lives in slot i mod N.
	head atomic.Uint64
}

// recorderSlot pairs an event payload with its seqlock word. seq == 0 is
// empty; an odd value marks a write in progress; the even value 2*(pos+1)
// publishes the event written for global position pos, letting readers
// detect both torn reads and wrap-around overwrites.
type recorderSlot struct {
	seq atomic.Uint64
	ev  Event
}

// NewFlightRecorder returns a recorder holding the last n events
// (n < 1 is raised to 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{slots: make([]recorderSlot, n)}
}

// Cap returns the ring capacity.
func (fr *FlightRecorder) Cap() int { return len(fr.slots) }

// Len returns how many events are currently retained (at most Cap).
func (fr *FlightRecorder) Len() int {
	h := fr.head.Load()
	if n := uint64(len(fr.slots)); h > n {
		return int(n)
	}
	return int(fr.head.Load())
}

// Emit implements EventSink: record the event, overwriting the oldest
// when full. It never fails and never allocates (the event struct is
// copied into a preallocated slot; slice fields alias the caller's
// backing arrays).
func (fr *FlightRecorder) Emit(ev Event) error {
	pos := fr.head.Add(1) - 1
	slot := &fr.slots[pos%uint64(len(fr.slots))]
	slot.seq.Store(2*pos + 1) // odd: write in progress
	slot.ev = ev
	slot.seq.Store(2 * (pos + 1)) // even: published for position pos
	return nil
}

// Events returns the retained events, oldest first. Slots being
// overwritten during the snapshot are skipped, so the result is a
// consistent (possibly shorter) window.
func (fr *FlightRecorder) Events() []Event {
	n := uint64(len(fr.slots))
	h := fr.head.Load()
	start := uint64(0)
	if h > n {
		start = h - n
	}
	out := make([]Event, 0, h-start)
	for pos := start; pos < h; pos++ {
		slot := &fr.slots[pos%n]
		want := 2 * (pos + 1)
		for retry := 0; retry < 4; retry++ {
			s1 := slot.seq.Load()
			if s1 != want {
				// Empty, mid-write, or already overwritten by a newer
				// event (which a later pos will pick up).
				break
			}
			ev := slot.ev
			if slot.seq.Load() == s1 {
				out = append(out, ev)
				break
			}
		}
	}
	return out
}

// Dump writes the retained events to w as JSONL — the same format as a
// durable trace, so coschedtrace can analyse a flight-recorder dump
// directly.
func (fr *FlightRecorder) Dump(w io.Writer) error {
	ew := NewEventWriter(w)
	for _, ev := range fr.Events() {
		if err := ew.Emit(ev); err != nil {
			return err
		}
	}
	return ew.Flush()
}
