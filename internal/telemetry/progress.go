package telemetry

import (
	"io"
	"sync"
	"time"
)

// ProgressReporter rate-limits progress output for long solves: the
// producer calls Due on a coarse cadence (every few hundred pops) and
// formats a report only when the configured interval has elapsed. The
// zero Every defaults to two seconds. A ProgressReporter is safe for
// concurrent use, though solvers drive it from one goroutine.
type ProgressReporter struct {
	// W receives the report lines.
	W io.Writer
	// Every is the minimum interval between reports (default 2s).
	Every time.Duration

	mu    sync.Mutex
	start time.Time
	last  time.Time
}

// Due reports whether a progress line should be written now, stamping
// the report time when it returns true. The first call starts the
// elapsed clock and is never due (rates need a baseline interval).
func (p *ProgressReporter) Due(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = now
		p.last = now
		return false
	}
	every := p.Every
	if every <= 0 {
		every = 2 * time.Second
	}
	if now.Sub(p.last) < every {
		return false
	}
	p.last = now
	return true
}

// Elapsed returns the time since the first Due call (zero before it).
func (p *ProgressReporter) Elapsed(now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		return 0
	}
	return now.Sub(p.start)
}
