//go:build !race

package telemetry

// The flight recorder's seqlock protocol copies event payloads outside
// any lock: readers validate the per-slot sequence word before and after
// the copy and discard torn reads. That is correct under the Go memory
// model for the data the reader keeps, but the discarded speculative
// copies are flagged by the race detector, so this stress test is
// excluded from -race runs (scripts/ci.sh races the astar worker pool,
// not this package).

import (
	"sync"
	"testing"
)

func TestFlightRecorderConcurrentEmitAndDump(t *testing.T) {
	const writers, perWriter = 4, 5000
	fr := NewFlightRecorder(64)
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				fr.Emit(Event{Ev: "expand", Pop: int64(i), Leader: w + 1}) //nolint:errcheck
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		for _, ev := range fr.Events() {
			// Every surfaced event must be fully-formed, never torn: a
			// published slot always carries both fields of the write.
			if ev.Ev != "expand" || ev.Pop < 1 || ev.Pop > perWriter ||
				ev.Leader < 1 || ev.Leader > writers {
				t.Fatalf("torn event surfaced: %+v", ev)
			}
		}
	}

	if got := fr.Len(); got != 64 {
		t.Fatalf("recorder len = %d, want full ring 64", got)
	}
	if got := len(fr.Events()); got != 64 {
		t.Fatalf("quiescent snapshot = %d events, want 64", got)
	}
}
