package telemetry

import (
	"sync"
	"time"
)

// Default burn-rate alert thresholds, the multiwindow pairing of the SRE
// workbook: a fast window burning at 14.4x exhausts a 30-day error
// budget in ~2 days (page now), a slow window at 6x in ~5 days (ticket).
const (
	DefaultFastBurnThreshold = 14.4
	DefaultSlowBurnThreshold = 6.0
)

// SLOConfig sizes an SLO tracker. Only Name and Objective are required;
// zero values of the rest take the documented defaults.
type SLOConfig struct {
	// Name prefixes the registered metrics, e.g. "server.slo.latency"
	// registers "server.slo.latency.good", ".bad", ".burn_fast",
	// ".burn_slow", ".breach_fast" and ".breach_slow".
	Name string
	// Objective is the target good fraction in (0, 1), e.g. 0.99 means
	// at most 1% of observations may be bad. The error budget is
	// 1 - Objective; burn rate is the windowed bad fraction divided by
	// that budget (1.0 = exactly on budget).
	Objective float64
	// FastWindow and SlowWindow are the two burn-rate horizons
	// (0 means 5m and 1h). The fast window catches sharp regressions,
	// the slow window sustained slow burns.
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurnThreshold and SlowBurnThreshold are the alert lines the
	// breach counters watch (0 means the Default*BurnThreshold values).
	FastBurnThreshold float64
	SlowBurnThreshold float64
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// SLO tracks one service-level objective: cumulative good/bad counters
// plus fast- and slow-window burn rates computed over time-bucketed
// rings, all exposed through a Registry so /metrics serves them. Record
// is mutex-guarded — it sits on the per-HTTP-request path, not a solver
// hot loop — and updates the burn gauges synchronously so a scrape
// always sees the rate as of the last observation.
type SLO struct {
	mu   sync.Mutex
	cfg  SLOConfig
	fast *burnWindow
	slow *burnWindow

	good       *Counter
	bad        *Counter
	burnFast   *FloatGauge
	burnSlow   *FloatGauge
	breachFast *Counter
	breachSlow *Counter
	overFast   bool // above threshold at last Record (breach = upward crossing)
	overSlow   bool
	budget     float64
	fastLine   float64
	slowLine   float64
	now        func() time.Time
}

// burnWindowBuckets is the ring resolution of each burn window: the
// window is covered by this many rotating buckets, so the reported rate
// trails a full bucket's width at worst.
const burnWindowBuckets = 30

// NewSLO registers the tracker's metric family in r and returns the
// tracker. A nil registry returns a tracker whose metrics are detached
// (still functional, never scraped) so callers need not guard.
func NewSLO(r *Registry, cfg SLOConfig) *SLO {
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		cfg.Objective = 0.99
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 5 * time.Minute
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = time.Hour
	}
	if cfg.FastBurnThreshold <= 0 {
		cfg.FastBurnThreshold = DefaultFastBurnThreshold
	}
	if cfg.SlowBurnThreshold <= 0 {
		cfg.SlowBurnThreshold = DefaultSlowBurnThreshold
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if r == nil {
		r = New()
	}
	s := &SLO{
		cfg:        cfg,
		fast:       newBurnWindow(cfg.FastWindow, cfg.Now()),
		slow:       newBurnWindow(cfg.SlowWindow, cfg.Now()),
		good:       r.Counter(cfg.Name + ".good"),
		bad:        r.Counter(cfg.Name + ".bad"),
		burnFast:   r.FloatGauge(cfg.Name + ".burn_fast"),
		burnSlow:   r.FloatGauge(cfg.Name + ".burn_slow"),
		breachFast: r.Counter(cfg.Name + ".breach_fast"),
		breachSlow: r.Counter(cfg.Name + ".breach_slow"),
		budget:     1 - cfg.Objective,
		fastLine:   cfg.FastBurnThreshold,
		slowLine:   cfg.SlowBurnThreshold,
		now:        cfg.Now,
	}
	return s
}

// Record counts one observation against the objective and refreshes the
// burn gauges. An upward crossing of a burn threshold increments the
// matching breach counter (once per excursion, not per request).
func (s *SLO) Record(good bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if good {
		s.good.Add(1)
	} else {
		s.bad.Add(1)
	}
	now := s.now()
	s.fast.record(good, now)
	s.slow.record(good, now)
	fb := s.fast.badRatio() / s.budget
	sb := s.slow.badRatio() / s.budget
	s.burnFast.Set(fb)
	s.burnSlow.Set(sb)
	if over := fb > s.fastLine; over != s.overFast {
		if over {
			s.breachFast.Add(1)
		}
		s.overFast = over
	}
	if over := sb > s.slowLine; over != s.overSlow {
		if over {
			s.breachSlow.Add(1)
		}
		s.overSlow = over
	}
}

// FastBurn returns the fast-window burn rate as of the last Record.
func (s *SLO) FastBurn() float64 { return s.burnFast.Value() }

// SlowBurn returns the slow-window burn rate as of the last Record.
func (s *SLO) SlowBurn() float64 { return s.burnSlow.Value() }

// burnWindow is a rotating ring of good/bad buckets covering one burn
// horizon. Buckets older than the window are zeroed as the head
// advances, so ratios always cover at most the window.
type burnWindow struct {
	bucketDur time.Duration
	good      []int64
	bad       []int64
	head      int
	headStart time.Time
}

func newBurnWindow(window time.Duration, now time.Time) *burnWindow {
	return &burnWindow{
		bucketDur: window / burnWindowBuckets,
		good:      make([]int64, burnWindowBuckets),
		bad:       make([]int64, burnWindowBuckets),
		headStart: now,
	}
}

// advance rotates the head forward to cover now, zeroing buckets that
// fell out of the window.
func (w *burnWindow) advance(now time.Time) {
	steps := int(now.Sub(w.headStart) / w.bucketDur)
	if steps <= 0 {
		return
	}
	if steps > len(w.good) {
		steps = len(w.good)
	}
	for i := 0; i < steps; i++ {
		w.head = (w.head + 1) % len(w.good)
		w.good[w.head] = 0
		w.bad[w.head] = 0
	}
	w.headStart = w.headStart.Add(time.Duration(steps) * w.bucketDur)
	// A gap longer than the whole window leaves headStart stale; snap it.
	if now.Sub(w.headStart) >= w.bucketDur {
		w.headStart = now
	}
}

func (w *burnWindow) record(good bool, now time.Time) {
	w.advance(now)
	if good {
		w.good[w.head]++
	} else {
		w.bad[w.head]++
	}
}

// badRatio returns the window's bad fraction (0 when empty).
func (w *burnWindow) badRatio() float64 {
	var good, bad int64
	for i := range w.good {
		good += w.good[i]
		bad += w.bad[i]
	}
	if good+bad == 0 {
		return 0
	}
	return float64(bad) / float64(good+bad)
}
