package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryHandlesAreStable(t *testing.T) {
	r := New()
	c := r.Counter("a.pops")
	if r.Counter("a.pops") != c {
		t.Fatal("Counter lookup not stable")
	}
	c.Add(3)
	c.Add(4)
	if got := r.Counter("a.pops").Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	g := r.Gauge("a.frontier")
	g.Set(41)
	g.Set(42)
	fg := r.FloatGauge("a.load")
	fg.Set(0.5)
	h := r.Histogram("a.delay", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	snap := r.Snapshot()
	if snap["a.pops"] != int64(7) || snap["a.frontier"] != int64(42) || snap["a.load"] != 0.5 {
		t.Fatalf("snapshot = %v", snap)
	}
	hs := snap["a.delay"].(map[string]any)
	if hs["count"] != int64(3) || math.Abs(hs["sum"].(float64)-55.5) > 1e-9 {
		t.Fatalf("histogram snapshot = %v", hs)
	}
	if names := r.Names(); len(names) != 4 || names[0] != "a.pops" {
		t.Fatalf("names = %v", names)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", []float64{10})
			for i := 0; i < 1000; i++ {
				c.Add(1)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Sum(); got != 8000 {
		t.Fatalf("histogram sum = %g, want 8000", got)
	}
}

func TestEventRoundTrip(t *testing.T) {
	var sb strings.Builder
	ew := NewEventWriter(&sb)
	in := []Event{
		{Ev: "solve_start", N: 12, U: 4, Method: "OA*"},
		{Ev: "expand", Pop: 1, Depth: 0, Q: 4, G: 1.25, H: 0.5, Leader: 5},
		{Ev: "dismiss", Pop: 1, Q: 8, G: 2.5, Reason: "worse"},
		{Ev: "progress", Pop: 1000, Frontier: 64, PopsPerSec: 1234.5, ETASec: 3.25, ElapsedSec: 1.5},
		{Ev: "solution", Cost: 4.75, Groups: [][]int{{1, 2}, {3, 4}}, Pop: 1000},
	}
	for _, ev := range in {
		if err := ew.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		a, _ := json.Marshal(in[i])
		b, _ := json.Marshal(out[i])
		if string(a) != string(b) {
			t.Errorf("event %d round-trip mismatch:\n in: %s\nout: %s", i, a, b)
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"ev\":\"expand\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestProgressReporterRateLimits(t *testing.T) {
	p := &ProgressReporter{W: io.Discard, Every: 100 * time.Millisecond}
	t0 := time.Now()
	if p.Due(t0) {
		t.Fatal("first call must not be due (it sets the baseline)")
	}
	if p.Due(t0.Add(50 * time.Millisecond)) {
		t.Fatal("due before the interval elapsed")
	}
	if !p.Due(t0.Add(150 * time.Millisecond)) {
		t.Fatal("not due after the interval elapsed")
	}
	if p.Due(t0.Add(160 * time.Millisecond)) {
		t.Fatal("due again immediately after a report")
	}
	if got := p.Elapsed(t0.Add(time.Second)); got != time.Second {
		t.Fatalf("elapsed = %v, want 1s", got)
	}
}

func TestServeDebugExposesVarsAndPprof(t *testing.T) {
	r := New()
	r.Counter("astar.pops").Add(99)
	addr, closeFn, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "\"cosched\"") || !strings.Contains(vars, "astar.pops") {
		t.Errorf("expvar output missing cosched metrics: %.200s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index unexpected: %.200s", idx)
	}
}
