package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryHandlesAreStable(t *testing.T) {
	r := New()
	c := r.Counter("a.pops")
	if r.Counter("a.pops") != c {
		t.Fatal("Counter lookup not stable")
	}
	c.Add(3)
	c.Add(4)
	if got := r.Counter("a.pops").Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	g := r.Gauge("a.frontier")
	g.Set(41)
	g.Set(42)
	fg := r.FloatGauge("a.load")
	fg.Set(0.5)
	h := r.Histogram("a.delay", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	snap := r.Snapshot()
	if snap["a.pops"] != int64(7) || snap["a.frontier"] != int64(42) || snap["a.load"] != 0.5 {
		t.Fatalf("snapshot = %v", snap)
	}
	hs := snap["a.delay"].(map[string]any)
	if hs["count"] != int64(3) || math.Abs(hs["sum"].(float64)-55.5) > 1e-9 {
		t.Fatalf("histogram snapshot = %v", hs)
	}
	if names := r.Names(); len(names) != 4 || names[0] != "a.pops" {
		t.Fatalf("names = %v", names)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", []float64{10})
			for i := 0; i < 1000; i++ {
				c.Add(1)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Sum(); got != 8000 {
		t.Fatalf("histogram sum = %g, want 8000", got)
	}
}

func TestEventRoundTrip(t *testing.T) {
	var sb strings.Builder
	ew := NewEventWriter(&sb)
	in := []Event{
		{Ev: "solve_start", N: 12, U: 4, Method: "OA*"},
		{Ev: "expand", Pop: 1, Depth: 0, Q: 4, G: 1.25, H: 0.5, Leader: 5},
		{Ev: "dismiss", Pop: 1, Q: 8, G: 2.5, Reason: "worse"},
		{Ev: "progress", Pop: 1000, Frontier: 64, PopsPerSec: 1234.5, ETASec: 3.25, ElapsedSec: 1.5},
		{Ev: "solution", Cost: 4.75, Groups: [][]int{{1, 2}, {3, 4}}, Pop: 1000},
	}
	for _, ev := range in {
		if err := ew.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		a, _ := json.Marshal(in[i])
		b, _ := json.Marshal(out[i])
		if string(a) != string(b) {
			t.Errorf("event %d round-trip mismatch:\n in: %s\nout: %s", i, a, b)
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	prefix, err := ReadEvents(strings.NewReader("{\"ev\":\"expand\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
	te, ok := AsTraceError(err)
	if !ok || te.Line != 2 {
		t.Fatalf("want *TraceError{Line: 2}, got %#v (ok=%v)", te, ok)
	}
	if len(prefix) != 1 || prefix[0].Ev != "expand" {
		t.Fatalf("want 1-event parsed prefix, got %v", prefix)
	}
}

func TestReadEventsTruncatedTrailingLine(t *testing.T) {
	// A crashed producer's torn final write: valid lines followed by a
	// partial JSON object with no closing brace.
	trace := "{\"ev\":\"solve_start\",\"n\":8}\n{\"ev\":\"expand\",\"pop\":1}\n{\"ev\":\"solu"
	prefix, err := ReadEvents(strings.NewReader(trace))
	te, ok := AsTraceError(err)
	if !ok || te.Line != 3 {
		t.Fatalf("want *TraceError{Line: 3}, got %v", err)
	}
	if len(prefix) != 2 || prefix[0].Ev != "solve_start" || prefix[1].Ev != "expand" {
		t.Fatalf("parsed prefix = %v, want the 2 intact events", prefix)
	}
}

func TestReadEventsEmptyTrace(t *testing.T) {
	events, err := ReadEvents(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Fatalf("empty trace: events=%v err=%v, want none/nil", events, err)
	}
	events, err = ReadEvents(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Fatalf("blank-line trace: events=%v err=%v, want none/nil", events, err)
	}
}

func TestReadEventsKeepsUnknownEventTypes(t *testing.T) {
	// Append-only schema: future event types and fields must decode, not
	// fail — consumers filter on Ev.
	trace := "{\"ev\":\"from_the_future\",\"warp\":9}\n{\"ev\":\"expand\",\"pop\":2}\n"
	events, err := ReadEvents(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Ev != "from_the_future" || events[1].Pop != 2 {
		t.Fatalf("events = %v, want unknown type preserved", events)
	}
}

func TestMultiSinkFansOutAndCollapses(t *testing.T) {
	if MultiSink(nil, nil) != nil {
		t.Fatal("MultiSink of nils should be nil")
	}
	fr := NewFlightRecorder(4)
	if MultiSink(nil, fr) != EventSink(fr) {
		t.Fatal("MultiSink of one sink should return it unchanged")
	}
	var sb strings.Builder
	ew := NewEventWriter(&sb)
	both := MultiSink(ew, fr)
	if err := both.Emit(Event{Ev: "expand", Pop: 7}); err != nil {
		t.Fatal(err)
	}
	if err := FlushSink(both); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"pop\":7") {
		t.Fatalf("writer leg missed the event: %q", sb.String())
	}
	if evs := fr.Events(); len(evs) != 1 || evs[0].Pop != 7 {
		t.Fatalf("recorder leg missed the event: %v", evs)
	}
}

func TestNextSolveIDMonotone(t *testing.T) {
	a, b := NextSolveID(), NextSolveID()
	if a == 0 || b <= a {
		t.Fatalf("solve ids not increasing: %d, %d", a, b)
	}
}

func TestFlightRecorderRetainsLastN(t *testing.T) {
	fr := NewFlightRecorder(4)
	if fr.Cap() != 4 || fr.Len() != 0 {
		t.Fatalf("fresh recorder: cap=%d len=%d", fr.Cap(), fr.Len())
	}
	for i := 1; i <= 10; i++ {
		if err := fr.Emit(Event{Ev: "expand", Pop: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if fr.Len() != 4 {
		t.Fatalf("len = %d, want 4", fr.Len())
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.Pop != want {
			t.Fatalf("event %d pop = %d, want %d (oldest-first window)", i, ev.Pop, want)
		}
	}

	var sb strings.Builder
	if err := fr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 4 || decoded[0].Pop != 7 || decoded[3].Pop != 10 {
		t.Fatalf("dump round-trip = %v", decoded)
	}
}

func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	sp := r.Start("anything")
	sp.End() // must not panic
	sp.End() // double-End must not panic either
	if got := r.Results(); got != nil {
		t.Fatalf("nil recorder results = %v", got)
	}
	if !r.Epoch().IsZero() || r.SinceMS() != 0 {
		t.Fatal("nil recorder clock should be zero")
	}
}

func TestSpanRecorderRecordsPhases(t *testing.T) {
	reg := New()
	fr := NewFlightRecorder(16)
	r := NewSpanRecorder(reg, fr, 42)

	outer := r.Start("solve")
	inner := r.Start("search")
	time.Sleep(2 * time.Millisecond)
	inner.End()
	inner.End() // idempotent
	outer.End()

	res := r.Results()
	if len(res) != 2 {
		t.Fatalf("results = %v, want 2 spans", res)
	}
	if res[0].Name != "search" || res[1].Name != "solve" {
		t.Fatalf("completion order = %v, want search then solve", res)
	}
	if res[0].Depth != 1 || res[1].Depth != 0 {
		t.Fatalf("nesting depths = %v", res)
	}
	if res[0].DurMS <= 0 || res[1].DurMS < res[0].DurMS {
		t.Fatalf("durations inconsistent: %v", res)
	}

	snap := reg.Snapshot()
	hs, ok := snap["span.search_ms"].(map[string]any)
	if !ok || hs["count"] != int64(1) {
		t.Fatalf("span.search_ms missing from registry: %v", snap)
	}
	if reg.Counter("span.solve_ns").Value() <= 0 {
		t.Fatal("span.solve_ns counter not advanced")
	}

	evs := fr.Events()
	var kinds []string
	for _, ev := range evs {
		kinds = append(kinds, ev.Ev+":"+ev.Span)
		if ev.SolveID != 42 {
			t.Fatalf("event %v missing solve_id", ev)
		}
	}
	want := "span_start:solve,span_start:search,span_end:search,span_end:solve"
	if strings.Join(kinds, ",") != want {
		t.Fatalf("event order = %v, want %s", kinds, want)
	}
	last := evs[len(evs)-1]
	if last.TMS <= 0 || last.DurMS <= 0 {
		t.Fatalf("span_end not stamped: %+v", last)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// 10 observations uniform in (0,1], 10 in (1,2].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("p50 = %g, want within (0,1]", q)
	}
	if q := h.Quantile(0.75); q <= 1 || q > 2 {
		t.Fatalf("p75 = %g, want within (1,2]", q)
	}
	h.Observe(100) // +Inf bucket
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("p100 with +Inf sample = %g, want highest finite bound 4", q)
	}
	qs := h.QuantileSummary()
	if len(qs) != 3 || qs[0] > qs[1] || qs[1] > qs[2] {
		t.Fatalf("quantile summary not monotone: %v", qs)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("astar.pops").Add(12)
	r.Gauge("astar.frontier").Set(3)
	r.FloatGauge("astar.pops_per_sec").Set(1.5)
	h := r.Histogram("online.placement_delay", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(9)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cosched_astar_pops counter\ncosched_astar_pops 12\n",
		"# TYPE cosched_astar_frontier gauge\ncosched_astar_frontier 3\n",
		"cosched_astar_pops_per_sec 1.5\n",
		"# TYPE cosched_online_placement_delay histogram\n",
		"cosched_online_placement_delay_bucket{le=\"0.5\"} 1\n",
		"cosched_online_placement_delay_bucket{le=\"1\"} 2\n",
		"cosched_online_placement_delay_bucket{le=\"+Inf\"} 3\n",
		"cosched_online_placement_delay_sum 10\n",
		"cosched_online_placement_delay_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := WritePrometheus(io.Discard, nil); err != nil {
		t.Fatalf("nil registry should be a no-op, got %v", err)
	}
}

func TestProgressReporterRateLimits(t *testing.T) {
	p := &ProgressReporter{W: io.Discard, Every: 100 * time.Millisecond}
	t0 := time.Now()
	if p.Due(t0) {
		t.Fatal("first call must not be due (it sets the baseline)")
	}
	if p.Due(t0.Add(50 * time.Millisecond)) {
		t.Fatal("due before the interval elapsed")
	}
	if !p.Due(t0.Add(150 * time.Millisecond)) {
		t.Fatal("not due after the interval elapsed")
	}
	if p.Due(t0.Add(160 * time.Millisecond)) {
		t.Fatal("due again immediately after a report")
	}
	if got := p.Elapsed(t0.Add(time.Second)); got != time.Second {
		t.Fatalf("elapsed = %v, want 1s", got)
	}
}

func TestServeDebugExposesVarsAndPprof(t *testing.T) {
	r := New()
	r.Counter("astar.pops").Add(99)
	addr, closeFn, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "\"cosched\"") || !strings.Contains(vars, "astar.pops") {
		t.Errorf("expvar output missing cosched metrics: %.200s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index unexpected: %.200s", idx)
	}
}

func TestServeDebugWithMetricsAndTrace(t *testing.T) {
	r := New()
	r.Counter("astar.pops").Add(5)
	r.Histogram("online.placement_delay", []float64{1, 10}).Observe(2)
	fr := NewFlightRecorder(8)
	fr.Emit(Event{Ev: "expand", Pop: 3, G: 1.5}) //nolint:errcheck

	addr, closeFn, err := ServeDebugWith("127.0.0.1:0", r, fr)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE cosched_astar_pops counter",
		"cosched_astar_pops 5",
		"# TYPE cosched_online_placement_delay histogram",
		"cosched_online_placement_delay_bucket{le=\"+Inf\"} 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	trace := get("/debug/trace")
	events, err := ReadEvents(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("/debug/trace not valid JSONL: %v\n%s", err, trace)
	}
	if len(events) != 1 || events[0].Pop != 3 {
		t.Fatalf("/debug/trace events = %v", events)
	}
}
