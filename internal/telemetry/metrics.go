package telemetry

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; updates are single atomic adds.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0 to keep the counter
// monotone; this is not enforced, producers flush non-negative deltas).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 metric (frontier size, table entries).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the current value by n (negative n decrements) — the shape
// an in-flight gauge wants: increment at admission, decrement at
// completion, no read-modify-write race.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 metric (rates, load factors),
// stored as atomic bits. The zero value is ready to use and reads as 0.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last recorded value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds (the last bucket is +Inf and always implicit). Observe is
// a binary search plus two atomic adds; bounds are fixed at registration
// so observation never allocates.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, excluding +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// QuantileFromCounts estimates the q-quantile (0 < q <= 1) of bucketed
// observations: counts[i] observations at most bounds[i], with
// counts[len(bounds)] the +Inf bucket. Unlike Histogram.Quantile it
// works on a caller-supplied count vector, so consumers that difference
// two Buckets() snapshots can take quantiles over a time window of a
// cumulative histogram (the serving layer's autoscaler reads its
// "recent" p90 queue delay this way). It returns the upper bound of the
// bucket where the cumulative count crosses q·total — a conservative
// (never under-reporting) estimate whose error is bounded by the bucket
// width. Empty counts return 0; a quantile landing in the +Inf bucket
// returns +Inf.
func QuantileFromCounts(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i < len(bounds) {
				return bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the histogram state as a plain map: count, sum, and
// one cumulative-free "le_<bound>" entry per bucket (the +Inf bucket is
// "le_inf").
func (h *Histogram) Snapshot() map[string]any {
	out := map[string]any{"count": h.Count(), "sum": h.Sum()}
	buckets := make(map[string]int64, len(h.buckets))
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if i < len(h.bounds) {
			buckets[formatBound(h.bounds[i])] = n
		} else {
			buckets["inf"] = n
		}
	}
	if len(buckets) > 0 {
		out["buckets"] = buckets
	}
	return out
}

func formatBound(b float64) string {
	// Bounds are registration-time constants, so formatting cost is
	// snapshot-only.
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Registry is a named collection of metrics. Lookups get-or-create under
// a mutex and return stable pointers, so producers resolve their handles
// once (at solve start) and update lock-free afterwards. A nil *Registry
// is the disabled state: callers must guard, the methods do not accept
// nil receivers.
type Registry struct {
	mu      sync.Mutex
	order   []string
	metrics map[string]any
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// Default is the process-wide registry the CLIs publish over expvar.
// Library code takes an explicit *Registry instead of using this.
var Default = New()

func lookup[T any](r *Registry, name string, mk func() *T) *T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if t, ok := m.(*T); ok {
			return t
		}
		// Name collision across kinds: a programming error; return a
		// detached metric rather than panic in production solves.
		return mk()
	}
	t := mk()
	r.metrics[name] = t
	r.order = append(r.order, name)
	return t
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the int gauge registered under name, creating it if
// needed.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// FloatGauge returns the float gauge registered under name, creating it
// if needed.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	return lookup(r, name, func() *FloatGauge { return &FloatGauge{} })
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket upper bounds if needed (bounds are ignored
// on later calls for the same name).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return lookup(r, name, func() *Histogram { return newHistogram(bounds) })
}

// Snapshot returns every metric's current value keyed by name: int64 for
// counters and gauges, float64 for float gauges, a nested map for
// histograms. The result is JSON-encodable, which is what expvar serves.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.order))
	for _, name := range r.order {
		switch m := r.metrics[name].(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *FloatGauge:
			out[name] = m.Value()
		case *Histogram:
			out[name] = m.Snapshot()
		}
	}
	return out
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}
