package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

var publishMu sync.Mutex

// PublishExpvar exposes the registry's Snapshot under the given expvar
// name (conventionally "cosched"). Publishing the same name twice is a
// no-op rather than the expvar.Publish panic, so CLIs can call it
// unconditionally.
func PublishExpvar(name string, r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// ServeDebug starts an HTTP debug endpoint on addr serving
//
//	/debug/vars    — expvar (Go runtime vars plus the registry under
//	                 the "cosched" key)
//	/debug/pprof/  — the standard net/http/pprof profile handlers
//	/metrics       — the registry in Prometheus text exposition format
//	                 (WritePrometheus)
//
// It binds synchronously (so address errors surface to the caller) and
// serves in a background goroutine. The returned closer shuts the
// listener down; CLIs typically defer it and otherwise let process exit
// clean up. This is the -debug-addr flag of cmd/coschedcli and
// cmd/experiments.
func ServeDebug(addr string, r *Registry) (string, func() error, error) {
	return ServeDebugWith(addr, r, nil)
}

// ServeDebugWith is ServeDebug plus a flight recorder: a non-nil fr adds
//
//	/debug/trace   — the recorder's retained event window as JSONL
//	                 (FlightRecorder.Dump), directly consumable by
//	                 cmd/coschedtrace
func ServeDebugWith(addr string, r *Registry, fr *FlightRecorder) (string, func() error, error) {
	PublishExpvar("cosched", r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: debug endpoint: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(r, fr), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}

// DebugMux builds the observability mux behind ServeDebugWith — expvar
// under /debug/vars, the pprof handlers, the registry in Prometheus
// format under /metrics, and (with a non-nil fr) the flight recorder's
// retained events as JSONL under /debug/trace — without binding a
// listener, so servers that already own one (the coschedd daemon) can
// mount these routes next to their own.
func DebugMux(r *Registry, fr *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r) //nolint:errcheck // best-effort scrape
	})
	if fr != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
			fr.Dump(w) //nolint:errcheck // best-effort dump
		})
	}
	return mux
}
