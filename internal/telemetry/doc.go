// Package telemetry is the solver-observability layer: a small
// counter/gauge/histogram registry with an atomic, allocation-free update
// path, a structured JSONL event stream, per-phase spans on a monotonic
// clock, a fixed-size lock-free flight recorder, a rate-limited progress
// reporter, a hand-rolled Prometheus text encoder, and an opt-in
// expvar + net/http/pprof debug endpoint.
//
// Every solver in this repository (OA*/HA* in internal/astar, the IP
// branch-and-bound in internal/ip, the O-SVP and PG baselines, the online
// simulator in internal/online) can publish its per-phase counters and
// rates into a Registry, which makes a long-running search observable
// while it runs instead of only through the final Stats struct. The
// design follows the load/metric introspection argument of the
// memory-aware parallel branch-and-bound literature (Silva et al.,
// arXiv:1302.5679): search-tree executions become tunable at scale only
// when their internal rates are visible.
//
// # Zero overhead when disabled
//
// Telemetry is off by default and must stay invisible to the search hot
// path (the dismissed-child path of internal/astar is guarded at 0
// allocations by bench_hotpath_test.go). The contract has three parts:
//
//  1. A nil *Registry disables everything; producers guard with a single
//     pointer test resolved once per solve, never per child.
//  2. Metric handles (Counter, Gauge, ...) are resolved by name once, at
//     solve start; updates afterwards are plain atomic operations on
//     preallocated cells — no map lookups, no interface calls, no
//     allocation.
//  3. Hot loops do not update the registry per event: internal/astar
//     accumulates into its stack-local Stats and flushes deltas into the
//     registry every few thousand pops, so the per-child cost is an
//     ordinary integer increment whether telemetry is on or off.
//
// # Surfaces
//
// The consumers sitting on top of a Registry and the event stream:
//
//   - Registry.Snapshot / PublishExpvar expose the current values as one
//     expvar map, and ServeDebug / ServeDebugWith serve /debug/vars,
//     /debug/pprof, /metrics (Prometheus text format via
//     WritePrometheus), and optionally /debug/trace on an opt-in
//     address (the -debug-addr flag of cmd/coschedcli and
//     cmd/experiments).
//   - EventWriter / ReadEvents define the machine-readable JSONL trace:
//     one Event per line, round-trippable, produced by the astar
//     EventTracer (expansions, dismissals with reason, progress spans,
//     final accounting, the solution) and analysed offline by
//     cmd/coschedtrace. Producers target the EventSink interface, so
//     the same stream can feed a durable EventWriter, an in-memory
//     FlightRecorder (last-N ring for post-hoc incident capture), or
//     both through MultiSink.
//   - SpanRecorder times the named phases of a solve pipeline (oracle
//     precompute, graph construction, condensation, search, IP model
//     build/solve) against one monotonic epoch, exporting each phase as
//     span.<name>_ms histograms, span_start/span_end trace events, and
//     the cosched.Stats phase breakdown.
//   - ProgressReporter rate-limits human-readable progress lines (pops,
//     pops/sec, frontier size, ETA) for long searches.
//
// Metric names are dotted lowercase paths ("astar.pops",
// "online.placement_delay"); the full catalogue every producer uses is
// documented in DESIGN.md §6.
package telemetry
