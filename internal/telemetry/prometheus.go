package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), hand-rolled so the repository stays
// dependency-free. Metric names are prefixed "cosched_" with dots and
// other separators mapped to underscores: the counter "astar.pops"
// becomes
//
//	# TYPE cosched_astar_pops counter
//	cosched_astar_pops 1234
//
// and a histogram such as "online.placement_delay" becomes the standard
// cumulative series
//
//	# TYPE cosched_online_placement_delay histogram
//	cosched_online_placement_delay_bucket{le="0.1"} 3
//	...
//	cosched_online_placement_delay_bucket{le="+Inf"} 17
//	cosched_online_placement_delay_sum 41.5
//	cosched_online_placement_delay_count 17
//
// Counters map to counter, Gauge and FloatGauge to gauge. This is what
// the debug endpoint serves at /metrics.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make(map[string]any, len(names))
	for _, n := range names {
		metrics[n] = r.metrics[n]
	}
	r.mu.Unlock()

	for _, name := range names {
		pn := promName(name)
		var err error
		switch m := metrics[name].(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, m.Value())
		case *FloatGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(m.Value()))
		case *Histogram:
			err = writePromHistogram(w, pn, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, pn string, h *Histogram) error {
	bounds, counts := h.Buckets()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	cum := int64(0)
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatBound(b), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	// The +Inf bucket makes the series cumulative-complete; cum equals
	// the observation count by construction.
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", pn, cum)
	return err
}

// promName maps a dotted registry name onto the Prometheus identifier
// charset [a-zA-Z0-9_:], prefixed with the cosched_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 8)
	b.WriteString("cosched_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects (NaN/Inf spelled
// out, shortest round-trip decimal otherwise).
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return formatBound(v)
}

// Buckets returns the histogram's upper bounds (excluding +Inf) and the
// per-bucket (non-cumulative) observation counts; the returned counts
// slice has len(bounds)+1 entries, the last being the +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []int64) {
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return append([]float64(nil), h.bounds...), counts
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the containing bucket — the same
// estimate Prometheus's histogram_quantile computes server-side. It
// returns NaN when the histogram is empty; a quantile landing in the
// +Inf bucket reports the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum)+float64(n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: report the highest finite bound (or the
				// mean when there are no finite bounds at all).
				if len(h.bounds) == 0 {
					return h.Sum() / float64(total)
				}
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return h.Sum() / float64(total)
	}
	return h.bounds[len(h.bounds)-1]
}

// summaryQuantiles is the fixed set summary consumers print.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// QuantileSummary returns the p50/p90/p99 estimates of the histogram,
// in that order, for human-readable phase summaries.
func (h *Histogram) QuantileSummary() []float64 {
	out := make([]float64, len(summaryQuantiles))
	for i, q := range summaryQuantiles {
		out[i] = h.Quantile(q)
	}
	return out
}
