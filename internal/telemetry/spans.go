package telemetry

import (
	"sync"
	"time"
)

// spanBoundsMS are the histogram bucket upper bounds (milliseconds) used
// for span-duration metrics: sub-millisecond phases (condensation on
// small instances) through multi-minute searches.
var spanBoundsMS = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 30000, 120000}

// SpanResult is one completed phase recorded by a SpanRecorder.
type SpanResult struct {
	// Name is the phase name ("oracle", "search", ...).
	Name string
	// StartMS is the span's start in milliseconds since the recorder
	// epoch, DurMS its duration in milliseconds.
	StartMS float64
	DurMS   float64
	// Depth is the nesting depth at Start (0 = top level), so consumers
	// can re-indent a phase tree.
	Depth int
}

// SpanRecorder times the named phases of a solve pipeline against one
// monotonic epoch. Start opens a span, the returned Span's End closes it;
// spans nest (Depth tracks the open count). Each completed span is
//
//   - kept in order for Results (the cosched.Stats phase breakdown),
//   - observed into the registry as a "span.<name>_ms" histogram and a
//     "span.<name>_ns" counter (scrapeable totals), and
//   - emitted to the event sink as span_start/span_end trace events
//     stamped with t_ms on the shared epoch.
//
// A nil *SpanRecorder is the disabled state: Start returns a nil *Span
// and both are safe to call, so instrumented code needs no guards. The
// recorder serialises Start/End under a mutex — phases are pipeline-level
// (a handful per solve), never per-node.
type SpanRecorder struct {
	epoch   time.Time
	reg     *Registry
	sink    EventSink
	solveID uint64

	mu    sync.Mutex
	depth int
	done  []SpanResult
}

// NewSpanRecorder returns a recorder with a fresh monotonic epoch.
// Registry and sink may be nil (that surface is then skipped); solveID
// tags the emitted events (0 leaves them untagged).
func NewSpanRecorder(reg *Registry, sink EventSink, solveID uint64) *SpanRecorder {
	return &SpanRecorder{epoch: time.Now(), reg: reg, sink: sink, solveID: solveID}
}

// Epoch returns the recorder's monotonic time origin so other producers
// (the astar EventTracer) can stamp t_ms on the same clock.
func (r *SpanRecorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// SinceMS returns the monotonic milliseconds elapsed since the epoch.
func (r *SpanRecorder) SinceMS() float64 {
	if r == nil {
		return 0
	}
	return float64(time.Since(r.epoch)) / float64(time.Millisecond)
}

// Span is one open phase; see SpanRecorder.Start.
type Span struct {
	rec   *SpanRecorder
	name  string
	start time.Time
	depth int
	ended bool
}

// Start opens a named span and emits its span_start event. Safe on a nil
// recorder (returns nil).
func (r *SpanRecorder) Start(name string) *Span {
	if r == nil {
		return nil
	}
	start := time.Now()
	r.mu.Lock()
	depth := r.depth
	r.depth++
	r.mu.Unlock()
	if r.sink != nil {
		r.sink.Emit(Event{ //nolint:errcheck // sink errors surface on flush
			Ev:      "span_start",
			Span:    name,
			TMS:     float64(start.Sub(r.epoch)) / float64(time.Millisecond),
			SolveID: r.solveID,
		})
	}
	return &Span{rec: r, name: name, start: start, depth: depth}
}

// End closes the span, recording its duration into the recorder, the
// registry, and the sink. Safe on a nil span; a second End is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	r := s.rec
	end := time.Now()
	dur := end.Sub(s.start)
	res := SpanResult{
		Name:    s.name,
		StartMS: float64(s.start.Sub(r.epoch)) / float64(time.Millisecond),
		DurMS:   float64(dur) / float64(time.Millisecond),
		Depth:   s.depth,
	}
	r.mu.Lock()
	r.depth--
	r.done = append(r.done, res)
	r.mu.Unlock()
	if r.reg != nil {
		r.reg.Histogram("span."+s.name+"_ms", spanBoundsMS).Observe(res.DurMS)
		r.reg.Counter("span." + s.name + "_ns").Add(dur.Nanoseconds())
	}
	if r.sink != nil {
		r.sink.Emit(Event{ //nolint:errcheck // sink errors surface on flush
			Ev:      "span_end",
			Span:    s.name,
			TMS:     float64(end.Sub(r.epoch)) / float64(time.Millisecond),
			DurMS:   res.DurMS,
			SolveID: r.solveID,
		})
	}
}

// Results returns the completed spans in completion order. Safe on a nil
// recorder (returns nil).
func (r *SpanRecorder) Results() []SpanResult {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanResult(nil), r.done...)
}
