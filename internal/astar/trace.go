package astar

import (
	"fmt"
	"io"

	"cosched/internal/graph"
	"cosched/internal/job"
)

// Tracer receives search events; attach one through Options.Tracer to
// watch OA*/HA* work (teaching, debugging h strategies, understanding why
// a sub-path was dismissed). The zero-overhead default is no tracer.
type Tracer interface {
	// Expand is called when an element is popped for expansion.
	Expand(popIndex int64, depth int, g, h float64, leader job.ProcID)
	// Solution is called once with the final schedule.
	Solution(cost float64, groups [][]job.ProcID)
}

// WriterTracer renders search events as text lines, one per expansion.
type WriterTracer struct {
	W io.Writer
	// Every reduces volume: only each Every-th expansion is printed
	// (the solution line always is). Zero means every expansion.
	Every int64
}

// Expand implements Tracer.
func (t *WriterTracer) Expand(popIndex int64, depth int, g, h float64, leader job.ProcID) {
	if t.Every > 1 && popIndex%t.Every != 0 {
		return
	}
	fmt.Fprintf(t.W, "pop %6d depth %3d g=%.4f h=%.4f next-level=%d\n", popIndex, depth, g, h, leader)
}

// Solution implements Tracer.
func (t *WriterTracer) Solution(cost float64, groups [][]job.ProcID) {
	fmt.Fprintf(t.W, "solution cost=%.4f machines=%d:", cost, len(groups))
	for _, g := range groups {
		fmt.Fprintf(t.W, " %s", graph.NodeID(g))
	}
	fmt.Fprintln(t.W)
}
