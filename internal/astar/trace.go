package astar

import (
	"fmt"
	"io"

	"cosched/internal/graph"
	"cosched/internal/job"
)

// Tracer receives search events; attach one through Options.Tracer to
// watch OA*/HA* work (teaching, debugging h strategies, understanding why
// a sub-path was dismissed). The zero-overhead default is no tracer.
//
// Tracer carries the two events every renderer needs; the optional
// extension interfaces below (StartTracer, DismissTracer, ProgressTracer)
// add the rest of the machine-readable stream. The solver type-asserts
// the extensions once per solve, so implementing only Tracer costs
// nothing extra.
type Tracer interface {
	// Expand is called when an element is popped for expansion.
	Expand(popIndex int64, depth int, g, h float64, leader job.ProcID)
	// Solution is called once with the final schedule.
	Solution(cost float64, groups [][]job.ProcID)
}

// DismissReason classifies why a sub-path left the search without being
// expanded; it is the per-reason breakdown behind Stats.DismissedWorse,
// Stats.Dismissed, Stats.Pruned and Stats.BeamTrimmed.
type DismissReason uint8

const (
	// DismissWorse: a same-key sub-path at least as cheap was already
	// recorded (Theorem 1 dismissal before admission).
	DismissWorse DismissReason = iota
	// DismissStale: the sub-path was admitted but superseded by a cheaper
	// same-key one before its expansion (stale pop / beam supersede).
	DismissStale
	// DismissPruned: the sub-path's f exceeded the incumbent bound.
	DismissPruned
	// DismissBeamTrim: the beam's per-depth width cap dropped it.
	DismissBeamTrim
)

// String implements fmt.Stringer with the stable names the JSONL event
// schema uses.
func (r DismissReason) String() string {
	switch r {
	case DismissWorse:
		return "worse"
	case DismissStale:
		return "stale"
	case DismissPruned:
		return "pruned"
	case DismissBeamTrim:
		return "beam_trim"
	default:
		return fmt.Sprintf("DismissReason(%d)", uint8(r))
	}
}

// StartTracer is an optional Tracer extension: SolveStart is called once
// at the beginning of each solve with the batch geometry and the search
// mode ("OA*", "HA*" or "beam").
type StartTracer interface {
	SolveStart(n, u int, method string)
}

// DismissTracer is an optional Tracer extension receiving one event per
// dismissed sub-path: popIndex is the expansion that generated it (the
// current pop for pre-admission dismissals), q its scheduled-process
// count and g its Eq. 13 distance.
type DismissTracer interface {
	Dismiss(popIndex int64, q int, g float64, reason DismissReason)
}

// ProgressTracer is an optional Tracer extension mirroring the
// rate-limited progress reports of Options.Progress into the trace
// stream (etaSec < 0 means no estimate yet).
type ProgressTracer interface {
	Progress(popIndex int64, frontier int, popsPerSec, etaSec, elapsedSec float64)
}

// AbortTracer is an optional Tracer extension: Abort is called once when
// the search stops early (deadline, cancellation, expansion cap or
// memory budget), before the final stats and solution events, with the
// pop index at which the abort was detected and the stable reason name
// (abort.Reason.String()).
type AbortTracer interface {
	Abort(popIndex int64, reason string)
}

// ParallelismTracer is an optional Tracer extension: SetParallelism is
// called once per solve, before SolveStart, with the number of
// expansion workers the solve will actually run (parsolve.go). Trace
// consumers use the recorded value to relax order-sensitive invariants
// — parallel workers interleave expand events, so f-monotonicity only
// holds per worker, not across the stream. Sequential solves do not
// call it.
type ParallelismTracer interface {
	SetParallelism(p int)
}

// StatsTracer is an optional Tracer extension: SolveStats is called once
// per solve, after the search ends and before Solution, with the final
// counters. A trace carrying it is self-verifying — cmd/coschedtrace
// replays the event stream and reconciles it against these counts (the
// admission identity, dismissal totals, expansion totals).
type StatsTracer interface {
	SolveStats(st *Stats)
}

// tracerHooks caches the per-solve type assertions of the optional
// tracer extensions, so the hot loop pays one nil check per event kind.
type tracerHooks struct {
	base     Tracer
	start    StartTracer
	dismiss  DismissTracer
	progress ProgressTracer
	stats    StatsTracer
	abort    AbortTracer
}

func newTracerHooks(t Tracer) tracerHooks {
	h := tracerHooks{base: t}
	if t != nil {
		h.start, _ = t.(StartTracer)
		h.dismiss, _ = t.(DismissTracer)
		h.progress, _ = t.(ProgressTracer)
		h.stats, _ = t.(StatsTracer)
		h.abort, _ = t.(AbortTracer)
	}
	return h
}

// WriterTracer renders search events as text lines, one per expansion.
type WriterTracer struct {
	W io.Writer
	// Every reduces volume: only each Every-th expansion is printed
	// (the solution line always is). Zero means every expansion.
	Every int64
}

// Expand implements Tracer.
func (t *WriterTracer) Expand(popIndex int64, depth int, g, h float64, leader job.ProcID) {
	if t.Every > 1 && popIndex%t.Every != 0 {
		return
	}
	fmt.Fprintf(t.W, "pop %6d depth %3d g=%.4f h=%.4f next-level=%d\n", popIndex, depth, g, h, leader)
}

// Solution implements Tracer.
func (t *WriterTracer) Solution(cost float64, groups [][]job.ProcID) {
	fmt.Fprintf(t.W, "solution cost=%.4f machines=%d:", cost, len(groups))
	for _, g := range groups {
		fmt.Fprintf(t.W, " %s", graph.NodeID(g))
	}
	fmt.Fprintln(t.W)
}
