package astar

import (
	"sync/atomic"

	"cosched/internal/bitset"
	"cosched/internal/job"
)

// elemPool is a free list of search elements with their backing storage
// (bit set words, node slice, per-job maxima, key words) preallocated at
// the solver's fixed capacities. Under the Theorem-1 dismiss strategy the
// vast majority of generated children are discarded before ever entering
// the priority list; recycling them turns the per-child cost from several
// heap allocations into plain copies into warm storage.
//
// A pool is single-goroutine: the solver owns one for the serial path and
// the persistent expansion workers own one per chunk (see parallel.go).
// Elements remember their owning pool, so the admit path — which always
// runs on the solver goroutine, while the workers are parked between
// expansions — can return a dismissed child wherever it came from.
//
// Only never-admitted children (and stale popped elements, which were
// skipped without being expanded) are recycled: anything pushed into the
// priority list may be a parent on the winning path and stays live until
// the solver is garbage-collected, which is what keeps reconstruct safe
// without reference counting.
type elemPool struct {
	s     *Solver
	free  []*element
	gets  int64 // elements handed out
	reuse int64 // of those, served from the free list
	// allocCount, when non-nil, is additionally bumped on every fresh
	// allocation (the slow path only, so the warm 0-alloc path stays
	// counter-free). The parallel engine points every worker pool at one
	// shared atomic so its memory-footprint estimate can be read from
	// any goroutine without touching the unsynchronised gets/reuse pair.
	allocCount *atomic.Int64
}

// newPool creates a pool bound to the solver's capacities and registers
// it for end-of-solve stats aggregation.
func (s *Solver) newPool() *elemPool {
	p := &elemPool{s: s}
	s.allPools = append(s.allPools, p)
	return p
}

// get returns a reset element with all backing storage sized for the
// solver. Set contents, node, jobMax and keyWords are the caller's to
// fill; scalar fields are zeroed here.
func (p *elemPool) get() *element {
	p.gets++
	var e *element
	if n := len(p.free); n > 0 {
		e = p.free[n-1]
		p.free = p.free[:n-1]
		p.reuse++
	} else {
		s := p.s
		e = &element{
			set:      bitset.New(s.n),
			node:     make([]job.ProcID, 0, s.u),
			keyWords: make([]uint64, 0, s.keyStride),
			home:     p,
		}
		if len(s.parJobs) > 0 {
			e.jobMax = make([]float64, 0, len(s.parJobs))
		}
		if p.allocCount != nil {
			p.allocCount.Add(1)
		}
	}
	e.q = 0
	e.g = 0
	e.h = 0
	e.hSerial = 0
	e.parent = nil
	e.keyRef = -1
	e.stripe = -1
	e.home = p
	return e
}

// put recycles an element. The caller must guarantee nothing references
// it (no heap entry, no child, not bestComplete).
func (p *elemPool) put(e *element) {
	e.parent = nil
	p.free = append(p.free, e)
}

// recycle returns a dead element to its owning pool.
func (s *Solver) recycle(e *element) {
	if e.home != nil {
		e.home.put(e)
	}
}

// allocStats sums pool and key-table counters into st after a solve.
func (s *Solver) fillAllocStats(st *Stats) {
	for _, p := range s.allPools {
		st.ElemAllocated += p.gets - p.reuse
		st.ElemReused += p.reuse
	}
	if s.table != nil {
		st.KeyTableEntries = s.table.count
		st.KeyTableLoad = s.table.load()
	}
}
