package astar

import (
	"testing"

	"cosched/internal/bitset"
	"cosched/internal/degradation"
	"cosched/internal/job"
)

// greedyReference is an allocation-per-candidate reimplementation of
// greedySchedule: every candidate node gets a fresh backing array, so no
// aliasing between the node under construction and the probed candidates
// is possible. It is the oracle the scratch-buffer implementation is
// checked against.
func greedyReference(s *Solver) [][]job.ProcID {
	set := bitset.New(s.n)
	var groups [][]job.ProcID
	for {
		leader := set.SmallestAbsent(s.n)
		if leader == 0 {
			return groups
		}
		node := []job.ProcID{job.ProcID(leader)}
		set.Add(leader)
		for len(node) < s.u {
			bestP := 0
			bestW := 0.0
			first := true
			set.ForEachAbsent(s.n, func(v int) bool {
				cand := make([]job.ProcID, 0, len(node)+1)
				cand = append(cand, node...)
				cand = append(cand, job.ProcID(v))
				if w := s.cost.NodeWeight(cand); first || w < bestW {
					bestW, bestP, first = w, v, false
				}
				return true
			})
			if bestP == 0 {
				return nil
			}
			node = append(node, job.ProcID(bestP))
			set.Add(bestP)
		}
		groups = append(groups, job.SortedProcIDs(node))
	}
}

// TestGreedyScheduleScratchIsolation is the regression test for the
// aliasing hazard greedySchedule used to carry: with u >= 3 the candidate
// was built as append(node, v), sharing node's backing array across
// NodeWeight probes of the same machine. The scratch-buffer version must
// match an implementation that provably cannot alias, on machines deep
// enough (u = 4) that the shared-array window spans several probe rounds.
func TestGreedyScheduleScratchIsolation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := syntheticGraph(t, 24, 4, seed, degradation.ModePC)
		sv, err := NewSolver(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := greedyReference(sv)
		got := sv.greedySchedule()
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d groups; want %d", seed, len(got), len(want))
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("seed %d: group %d = %v; want %v", seed, i, got[i], want[i])
				}
			}
		}
		if err := g.Cost.ValidatePartition(got); err != nil {
			t.Fatalf("seed %d: invalid greedy schedule: %v", seed, err)
		}

		// The returned schedule must own its memory: poisoning the
		// solver's scratch buffers afterwards must not reach it.
		snapshot := make([][]job.ProcID, len(got))
		for i := range got {
			snapshot[i] = append([]job.ProcID(nil), got[i]...)
		}
		for i := range sv.greedyNd[:cap(sv.greedyNd)] {
			sv.greedyNd[:cap(sv.greedyNd)][i] = 9999
		}
		for i := range sv.greedyCd[:cap(sv.greedyCd)] {
			sv.greedyCd[:cap(sv.greedyCd)][i] = 9999
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != snapshot[i][j] {
					t.Fatalf("seed %d: schedule aliases solver scratch", seed)
				}
			}
		}
		// And a second run on the same solver (warm scratch) must agree.
		again := sv.greedySchedule()
		for i := range again {
			for j := range again[i] {
				if again[i][j] != snapshot[i][j] {
					t.Fatalf("seed %d: warm-scratch rerun diverged", seed)
				}
			}
		}
	}
}
