package astar

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"cosched/internal/abort"
	"cosched/internal/bitset"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
)

// Solver runs OA*/HA* searches over one co-scheduling graph. A Solver is
// not safe for concurrent use; build one per goroutine (they share the
// memoized oracle safely).
type Solver struct {
	gr   *graph.Graph
	cost *degradation.Cost
	opts Options
	n, u int

	// Parallel-job bookkeeping: parJobs lists PE/PC jobs, procPar maps
	// process -> dense parallel-job index (-1 for serial/imaginary).
	parJobs []job.JobID
	procPar []int

	// dminAll[p-1] is the cheapest pair degradation of process p: an
	// admissible per-process cost floor (co-runners never help, so
	// d(p,S) >= min_q d(p,{q}) for any non-empty S).
	dminAll []float64
	// dminSerial is dminAll for serial processes and 0 for parallel
	// ones (their cost enters through per-job maxima instead).
	dminSerial []float64
	hSerialAll float64 // sum of dminSerial over all processes

	// levelMin caches per-level minimum node weights (exact when the
	// level is enumerable, pair-based lower bound otherwise).
	levelMin     []float64
	levelMinDone []bool

	// pairW[i][j] is the symmetric pair cost m[i][j]+m[j][i] when the
	// oracle is additive-pairwise and the batch is all-serial; nil
	// otherwise. Enables lazy k-smallest node enumeration at scale.
	pairW [][]float64
	// pairM is the raw interference matrix behind pairW, letting the
	// hot child-extension path bypass the memoized oracle.
	pairM [][]float64

	// PE-symmetry canonicalisation (active with Condense): processes of
	// an embarrassingly-parallel job are interchangeable, so dismissal
	// keys replace their identities with per-job counts. peAll masks all
	// PE processes; peJobMask holds one mask per PE job.
	peAll     *bitset.Set
	peJobMask []*bitset.Set

	// Word-packed dismissal-key geometry (see keytable.go): the key is
	// keyStride uint64 words — the (masked) set words, the packed PE
	// counts, and, under ExactParallel, one word per parallel job.
	keySetWords   int
	keyCountWords int
	keyJobWords   int
	keyStride     int

	// Hot-path storage, reused across expansions within one solve: the
	// best-g table, the element free lists (one per producing goroutine),
	// and the scratch buffers of available / candidate gathering.
	table       *gTable
	pool        *elemPool
	allPools    []*elemPool
	workerPools []*elemPool // per-chunk free lists, reused by every crew
	availBuf    []job.ProcID
	nodeFlat    []job.ProcID // gathered candidate nodes, u entries each
	childBuf    []*element   // per-expansion children, candidate order
	greedyNd    []job.ProcID // greedySchedule's node under construction
	greedyCd    []job.ProcID // greedySchedule's candidate scratch (never aliases greedyNd)

	// Candidate-enumeration scratch (expand.go): the full-enumeration
	// fallback's flat node store + weights + sort permutation, and the
	// anchored generator's sorted availability, membership mask, node
	// under construction and word-packed dedup set.
	candFlat   []job.ProcID
	candW      []float64
	candIdx    []int32
	anchSorted []job.ProcID
	anchInNode []bool
	anchNode   []job.ProcID
	anchSeen   *wordSet
	anchKeyBuf []uint64

	// prepDur is the NewSolver heuristic-precomputation time, consumed
	// (reported and zeroed) by the first Solve call's telemetry.
	prepDur time.Duration

	// ncs is the mutex-guarded node-cost memo, held behind a pointer so
	// the per-worker solver clones of the parallel engine (parsolve.go)
	// share one cache instead of copying the mutex.
	ncs *nodeCostState

	// parClones are the per-worker shallow solver copies of the parallel
	// best-first engine, created on first parallel solve and reused (warm
	// pools and scratch) by every later one.
	parClones []*Solver
}

// element is one priority-list entry: a sub-path recorded as the set of
// processes it contains (§III-C1). Elements come from elemPool free lists
// (pool.go) with all backing storage preallocated at solver capacities.
type element struct {
	set      *bitset.Set
	keyWords []uint64 // word-packed dismissal key (keytable.go layout)
	keyRef   int32    // gTable entry index once admitted; -1 before
	stripe   int32    // stripedTable stripe of keyRef (parallel solves); -1 before
	q        int      // processes scheduled
	g        float64  // Eq. 13 distance of the sub-path
	h        float64
	hSerial  float64   // remaining per-process serial bound (HPerProc)
	jobMax   []float64 // per parallel job: running max degradation
	parent   *element
	node     []job.ProcID // the node whose addition created this element
	home     *elemPool    // owning free list
}

type heapEntry struct {
	f, g float64
	seq  int64
	e    *element
}

// pqueue is a hand-rolled binary min-heap over heapEntry. container/heap
// boxes every Push/Pop through interface{}, heap-allocating one 48-byte
// entry per generated child; inlining the sift loops keeps the priority
// list entirely inside one growing slice.
type pqueue []heapEntry

func (q pqueue) less(i, j int) bool {
	if q[i].f != q[j].f {
		return q[i].f < q[j].f
	}
	if q[i].g != q[j].g {
		return q[i].g > q[j].g // deeper paths first among equals
	}
	return q[i].seq < q[j].seq
}

func (q *pqueue) push(e heapEntry) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *pqueue) pop() heapEntry {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = heapEntry{} // release the element pointer
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && h.less(r, l) {
			c = r
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

// NewSolver builds a solver for the given graph and options.
func NewSolver(g *graph.Graph, opts Options) (*Solver, error) {
	s := &Solver{
		gr:   g,
		cost: g.Cost,
		opts: opts,
		n:    g.N(),
		u:    g.U(),
	}
	s.ncs = &nodeCostState{nodeCostCache: make(map[string][]float64)}
	if s.n == 0 || s.n%s.u != 0 {
		return nil, fmt.Errorf("astar: %d processes not schedulable on %d-core machines", s.n, s.u)
	}
	b := g.Batch
	s.procPar = make([]int, s.n)
	for i := range s.procPar {
		s.procPar[i] = -1
	}
	for _, jid := range b.ParallelJobs() {
		idx := len(s.parJobs)
		s.parJobs = append(s.parJobs, jid)
		for _, p := range b.Jobs[jid].Procs {
			s.procPar[int(p)-1] = idx
		}
	}
	prepStart := time.Now()
	if err := s.prepare(); err != nil {
		return nil, err
	}
	s.prepDur = time.Since(prepStart)
	return s, nil
}

// prepare precomputes the heuristic tables the selected strategy needs.
func (s *Solver) prepare() error {
	if err := s.validateAvgUse(); err != nil {
		return err
	}
	if err := s.validateWorkers(); err != nil {
		return err
	}
	s.pairW = s.pairWeights()
	if s.opts.H == HPerProcAvg {
		s.computeAvgEstimates()
	}
	needDmin := s.opts.H == HPerProc || s.opts.H == HStrategy2 || s.opts.UseIncumbent ||
		(s.opts.H == HStrategy1 && len(s.parJobs) > 0)
	if needDmin && s.opts.H != HPerProcAvg {
		s.computeDmin()
	}
	switch s.opts.H {
	case HStrategy1:
		// Strategy 1 merges sorted node weights across whole levels,
		// so every level must be enumerable.
		for l := 1; l <= s.n-s.u+1; l++ {
			if _, ok := s.gr.LevelStats(job.ProcID(l)); !ok {
				return fmt.Errorf("astar: level %d too large for h strategy 1 (use strategy 2 or perproc)", l)
			}
		}
	case HStrategy2:
		s.levelMin = make([]float64, s.n+1)
		s.levelMinDone = make([]bool, s.n+1)
	}
	if s.opts.KPerLevel > 0 && s.pairW == nil {
		// HA* without the lazy enumerator must enumerate levels.
		if graph.Binomial(s.n-1, s.u-1) > int64(graph.DefaultEnumLimit) {
			return fmt.Errorf("astar: HA* needs enumerable levels or an additive pairwise oracle at n=%d u=%d", s.n, s.u)
		}
	}
	if s.opts.Condense {
		b := s.gr.Batch
		for _, jid := range b.ParallelJobs() {
			if !s.symmetricJob(b.Jobs[jid].Kind) {
				continue
			}
			if s.peAll == nil {
				s.peAll = bitset.New(s.n)
			}
			jm := bitset.New(s.n)
			for _, p := range b.Jobs[jid].Procs {
				jm.Add(int(p))
				s.peAll.Add(int(p))
			}
			s.peJobMask = append(s.peJobMask, jm)
		}
		// Padding processes are interchangeable too: zero degradation,
		// no identity. They form one more symmetry class.
		var im *bitset.Set
		for i := range b.Procs {
			if b.Procs[i].Imaginary {
				if im == nil {
					im = bitset.New(s.n)
				}
				im.Add(int(b.Procs[i].ID))
			}
		}
		if im != nil {
			if s.peAll == nil {
				s.peAll = bitset.New(s.n)
			}
			for i := range b.Procs {
				if b.Procs[i].Imaginary {
					s.peAll.Add(int(b.Procs[i].ID))
				}
			}
			s.peJobMask = append(s.peJobMask, im)
		}
	}
	s.keySetWords = (s.n + 64) / 64
	s.keyCountWords = (len(s.peJobMask) + 7) / 8
	if s.opts.ExactParallel && len(s.parJobs) > 0 {
		s.keyJobWords = len(s.parJobs)
	}
	s.keyStride = s.keySetWords + s.keyCountWords + s.keyJobWords
	s.pool = s.newPool()
	return nil
}

// symmetricJob reports whether the ranks of a parallel job of this kind
// are interchangeable under the active cost mode: PE ranks always are
// (identical profiles, no communication); PC ranks are too when the mode
// ignores communication (ModeSE/ModePE), since nothing then distinguishes
// one rank from another.
func (s *Solver) symmetricJob(k job.Kind) bool {
	if k == job.PE {
		return true
	}
	return k == job.PC && s.cost.Mode != degradation.ModePC
}

// elementKey builds the legacy string dismissal key for a process set:
// the raw set, or — when PE symmetry canonicalisation is active — the set
// with PE processes replaced by per-job counts, collapsing equivalent
// rank permutations into one sub-path family.
//
// The hot path no longer uses strings: packKey (keytable.go) produces the
// word-packed equivalent. This function is kept as the readable reference
// semantics; the property test in keytable_test.go pins the two to
// collide and order identically.
func (s *Solver) elementKey(set *bitset.Set) string {
	if s.peAll == nil {
		return set.Key()
	}
	key := set.KeyMasked(s.peAll)
	counts := make([]byte, len(s.peJobMask))
	for i, jm := range s.peJobMask {
		counts[i] = byte(set.IntersectCount(jm))
	}
	return key + string(counts)
}

// computeDmin fills the per-process admissible cost floors from pair
// degradations: for additive-pairwise oracles the sum of the u-1 cheapest
// pair degradations (exact additivity), for general monotone oracles the
// single cheapest pair (d(p,S) >= min_q d(p,{q}) because co-runners never
// help).
func (s *Solver) computeDmin() {
	if s.dminAll != nil {
		return
	}
	s.dminAll = make([]float64, s.n)
	s.dminSerial = make([]float64, s.n)
	b := s.gr.Batch
	row := make([]float64, 0, s.n)
	for p := 1; p <= s.n; p++ {
		if b.Procs[p-1].Imaginary {
			continue
		}
		row = row[:0]
		for q := 1; q <= s.n; q++ {
			if q == p {
				continue
			}
			row = append(row, s.cost.ProcCost(job.ProcID(p), []job.ProcID{job.ProcID(q)}))
		}
		var bound float64
		if len(row) > 0 {
			sort.Float64s(row)
			if s.pairW != nil {
				for i := 0; i < s.u-1 && i < len(row); i++ {
					bound += row[i]
				}
			} else {
				bound = row[0]
			}
		}
		s.dminAll[p-1] = bound
		if s.procPar[p-1] < 0 || s.cost.Mode == degradation.ModeSE {
			// Under SE accounting every process contributes to the sum
			// directly, so parallel processes get per-process floors
			// too (their per-job-max treatment only applies to the
			// other modes).
			s.dminSerial[p-1] = bound
			s.hSerialAll += bound
		}
	}
}

// Solve runs the search and returns the best schedule it can prove (the
// optimal one for OA*; the trimmed-search result for HA*). With
// BeamWidth set it runs the layered beam search instead.
func (s *Solver) Solve() (*Result, error) {
	if s.opts.BeamWidth > 0 {
		return s.solveBeam()
	}
	if p := s.eligibleParallelism(); p > 1 {
		return s.solveParallel(p)
	}
	start := time.Now()
	var stats Stats
	stats.Parallelism = 1
	var pq pqueue
	qMax := 0
	hooks := newTracerHooks(s.opts.Tracer)
	met := newSolverMetrics(s.opts.Metrics)
	prog := s.progressReporter(&hooks)
	met.begin(s)
	stats.PrepareDuration = s.prepDur
	s.prepDur = 0
	if hooks.start != nil {
		hooks.start.SolveStart(s.n, s.u, s.searchMethod())
	}
	// The deferred flush publishes final (or, on aborted solves, partial)
	// counters whatever the return path.
	defer func() {
		met.flush(&stats, len(pq), qMax/s.u, s.table, time.Since(start))
		met.finish(&stats)
	}()
	ub := math.Inf(1)
	var greedyGroups [][]job.ProcID
	if s.opts.UseIncumbent {
		if greedyGroups = s.greedySchedule(); greedyGroups != nil {
			ub = s.cost.PartitionCost(greedyGroups)
		}
	}
	// Incumbent pruning is only sound when f never overestimates: an
	// admissible h at weight 1. Inadmissible or weighted searches keep
	// the incumbent purely as a fallback result.
	pruneExact := s.opts.H != HPerProcAvg && s.opts.HWeight <= 1
	var bestComplete *element

	s.table = newGTable(s.keyStride)
	root := s.rootElement()
	var wp *workerPool
	if s.opts.Workers > 1 {
		wp = s.startWorkers()
		defer wp.stop()
	}

	hw := s.opts.HWeight
	if hw < 1 {
		hw = 1
	}
	root.keyRef = s.table.insert(root.keyWords, 0, nil)
	var seq int64
	pq.push(heapEntry{f: 0, g: 0, seq: seq, e: root})
	seq++
	done := s.abortDone()

	for len(pq) > 0 {
		// Abort conditions are polled before the pop so an aborted trace
		// stays invariant-clean: every counted pop keeps its expand
		// event, and len(pq) is the exact admission-identity frontier —
		// except before the very first pop, when the never-Generated
		// root is still queued and must not count as in-frontier.
		if reason := s.pollAbort(done, &stats, start, len(pq)); reason != abort.None {
			inFrontier := int64(len(pq))
			if stats.VisitedPaths == 0 {
				inFrontier--
			}
			groups, cost := s.degradedGroups(bestComplete, greedyGroups)
			return s.finishAbort(reason, &stats, inFrontier, groups, cost, start, &hooks, met)
		}
		if len(pq) > stats.MaxQueue {
			stats.MaxQueue = len(pq)
		}
		ent := pq.pop()
		e := ent.e
		if s.table.gs[e.keyRef] < e.g {
			// Stale entry superseded by a shorter same-set sub-path. It
			// was never expanded, so nothing references it and it can be
			// recycled — unless it is the incumbent complete schedule.
			stats.Dismissed++
			if hooks.dismiss != nil {
				hooks.dismiss.Dismiss(stats.VisitedPaths, e.q, e.g, DismissStale)
			}
			if e != bestComplete {
				s.recycle(e)
			}
			continue
		}
		stats.VisitedPaths++
		if e.q > 0 {
			stats.Expanded++
			if e.q > qMax {
				qMax = e.q
			}
		}
		if stats.VisitedPaths&255 == 0 {
			s.maybeProgress(prog, &hooks, &stats, len(pq), qMax, start)
			if stats.VisitedPaths&(flushEvery-1) == 0 {
				met.flush(&stats, len(pq), qMax/s.u, s.table, time.Since(start))
			}
		}
		leader := e.set.SmallestAbsent(s.n)
		if hooks.base != nil {
			hooks.base.Expand(stats.VisitedPaths, e.q/s.u, e.g, e.h, job.ProcID(leader))
		}
		if leader == 0 {
			if bestComplete != nil && bestComplete.g < e.g {
				e = bestComplete
			}
			stats.InFrontier = int64(len(pq))
			stats.Duration = time.Since(start)
			s.fillAllocStats(&stats)
			groups := reconstruct(e)
			if hooks.stats != nil {
				hooks.stats.SolveStats(&stats)
			}
			if hooks.base != nil {
				hooks.base.Solution(e.g, groups)
			}
			return &Result{Groups: groups, Cost: e.g, Stats: stats}, nil
		}
		avail := s.available(e, job.ProcID(leader))

		admit := func(child *element) {
			ref := s.table.find(child.keyWords)
			if ref >= 0 && s.table.gs[ref] <= child.g {
				stats.DismissedWorse++
				if hooks.dismiss != nil {
					hooks.dismiss.Dismiss(stats.VisitedPaths, child.q, child.g, DismissWorse)
				}
				s.recycle(child)
				return
			}
			f := child.g + hw*child.h
			if pruneExact && f > ub {
				stats.Pruned++
				if hooks.dismiss != nil {
					hooks.dismiss.Dismiss(stats.VisitedPaths, child.q, child.g, DismissPruned)
				}
				s.recycle(child)
				return
			}
			// With a concrete schedule achieving ub in hand, ties are
			// prunable too: a path with f == ub cannot beat it.
			if pruneExact && f >= ub-1e-12 && (bestComplete != nil || greedyGroups != nil) && child.q < s.n {
				stats.Pruned++
				if hooks.dismiss != nil {
					hooks.dismiss.Dismiss(stats.VisitedPaths, child.q, child.g, DismissPruned)
				}
				s.recycle(child)
				return
			}
			if child.q == s.n {
				if child.g < ub {
					ub = child.g // every completed child tightens the bound
				}
				if bestComplete == nil || child.g < bestComplete.g {
					bestComplete = child
				}
			}
			if ref >= 0 {
				s.table.gs[ref] = child.g
			} else {
				ref = s.table.insert(child.keyWords, child.g, nil)
			}
			child.keyRef = ref
			pq.push(heapEntry{f: f, g: child.g, seq: seq, e: child})
			seq++
			stats.Generated++
		}
		if wp != nil {
			s.expandParallel(wp, e, job.ProcID(leader), avail, &stats, admit)
		} else {
			s.forEachCandidate(e, job.ProcID(leader), avail, &stats, func(node []job.ProcID) {
				child := s.makeChildIn(s.pool, e, node)
				if ref := s.table.find(child.keyWords); ref >= 0 && s.table.gs[ref] <= child.g {
					stats.DismissedWorse++
					if hooks.dismiss != nil {
						hooks.dismiss.Dismiss(stats.VisitedPaths, child.q, child.g, DismissWorse)
					}
					s.recycle(child)
					return // dismissed before spending h work
				}
				child.h = s.heuristic(child)
				admit(child)
			})
		}
	}
	// Exhausted queue: fall back to the best complete schedule seen. The
	// trace still ends with stats + solution events so offline analysis
	// (coschedtrace check) can account for fully-drained searches too.
	stats.Duration = time.Since(start)
	s.fillAllocStats(&stats)
	if hooks.stats != nil {
		hooks.stats.SolveStats(&stats)
	}
	if bestComplete != nil {
		groups := reconstruct(bestComplete)
		if hooks.base != nil {
			hooks.base.Solution(bestComplete.g, groups)
		}
		return &Result{Groups: groups, Cost: bestComplete.g, Stats: stats}, nil
	}
	if greedyGroups != nil {
		cost := s.cost.PartitionCost(greedyGroups)
		if hooks.base != nil {
			hooks.base.Solution(cost, greedyGroups)
		}
		return &Result{Groups: greedyGroups, Cost: cost, Stats: stats}, nil
	}
	return nil, errors.New("astar: priority list exhausted without a complete schedule")
}

// rootElement builds the empty sub-path from the solver's pool.
func (s *Solver) rootElement() *element {
	root := s.pool.get()
	root.set.Clear()
	root.hSerial = s.hSerialAll
	root.node = root.node[:0]
	if len(s.parJobs) > 0 {
		root.jobMax = root.jobMax[:0]
		for range s.parJobs {
			root.jobMax = append(root.jobMax, 0)
		}
	} else {
		root.jobMax = nil
	}
	root.keyWords = s.packKey(root.keyWords[:0], root.set, root.jobMax)
	return root
}

// available lists the unscheduled processes excluding the leader. The
// returned slice is the solver's scratch buffer, valid until the next
// call (each expansion consumes it before the next begins).
func (s *Solver) available(e *element, leader job.ProcID) []job.ProcID {
	avail := s.availBuf[:0]
	e.set.ForEachAbsent(s.n, func(v int) bool {
		if job.ProcID(v) != leader {
			avail = append(avail, job.ProcID(v))
		}
		return true
	})
	s.availBuf = avail
	return avail
}

// makeChildIn extends a sub-path with one node, maintaining the Eq. 13
// distance and the per-parallel-job maxima incrementally. The child comes
// from the given free list (the solver's own on the serial path, a
// per-chunk one under worker parallelism) and touches no heap once the
// list is warm.
func (s *Solver) makeChildIn(pl *elemPool, e *element, node []job.ProcID) *element {
	child := pl.get()
	child.set.CopyFrom(e.set)
	child.q = e.q + len(node)
	child.g = e.g
	child.hSerial = e.hSerial
	child.parent = e
	child.node = append(child.node[:0], node...)
	if len(s.parJobs) > 0 {
		child.jobMax = append(child.jobMax[:0], e.jobMax...)
	} else {
		child.jobMax = nil
	}
	var costs []float64
	if s.pairM == nil {
		costs = s.nodeCosts(node)
	}
	for i, p := range node {
		child.set.Add(int(p))
		var d float64
		if s.pairM != nil {
			row := s.pairM[int(p)-1]
			for j, q := range node {
				if j != i {
					d += row[int(q)-1]
				}
			}
		} else {
			d = costs[i]
		}
		pi := s.procPar[int(p)-1]
		if s.cost.Mode == degradation.ModeSE || pi < 0 {
			child.g += d
			if s.dminSerial != nil {
				child.hSerial -= s.dminSerial[int(p)-1]
			}
			continue
		}
		if d > child.jobMax[pi] {
			child.g += d - child.jobMax[pi]
			child.jobMax[pi] = d
		}
	}
	child.keyWords = s.packKey(child.keyWords[:0], child.set, child.jobMax)
	return child
}

// jobMaxKey encodes the per-job maxima into the legacy string dismissal
// key for ExactParallel mode. Like elementKey it survives only as the
// reference semantics the word-packed keys are property-tested against.
func jobMaxKey(jm []float64) string {
	b := make([]byte, 0, 8*len(jm))
	for _, v := range jm {
		u := math.Float64bits(v)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

// reconstruct walks parent pointers back to the root, copying each node
// out of its pool-owned element so the returned schedule owns its memory
// (the winning path is the only storage a solve pins).
func reconstruct(e *element) [][]job.ProcID {
	var rev [][]job.ProcID
	for cur := e; cur != nil && len(cur.node) > 0; cur = cur.parent {
		rev = append(rev, append([]job.ProcID(nil), cur.node...))
	}
	groups := make([][]job.ProcID, len(rev))
	for i := range rev {
		groups[i] = rev[len(rev)-1-i]
	}
	return groups
}

// greedySchedule builds a quick feasible schedule for the incumbent
// bound: repeatedly fill the machine led by the smallest unscheduled
// process with the locally cheapest companions.
//
// Candidate nodes are assembled in a dedicated scratch buffer (greedyCd)
// that is copied from — never append-extended off — the node under
// construction: the previous `cand := append(node, …)` formulation let
// cand share node's backing array between NodeWeight calls, so any callee
// retaining or the surrounding loop growing the node would silently
// corrupt earlier candidates (regression-tested in
// TestGreedyScheduleScratchIsolation).
func (s *Solver) greedySchedule() [][]job.ProcID {
	set := bitset.New(s.n)
	if cap(s.greedyNd) < s.u {
		s.greedyNd = make([]job.ProcID, 0, s.u)
		s.greedyCd = make([]job.ProcID, 0, s.u)
	}
	var groups [][]job.ProcID
	for {
		leader := set.SmallestAbsent(s.n)
		if leader == 0 {
			return groups
		}
		node := append(s.greedyNd[:0], job.ProcID(leader))
		set.Add(leader)
		for len(node) < s.u {
			bestP := 0
			bestW := math.Inf(1)
			set.ForEachAbsent(s.n, func(v int) bool {
				cand := append(s.greedyCd[:0], node...)
				cand = append(cand, job.ProcID(v))
				if w := s.cost.NodeWeight(cand); w < bestW {
					bestW, bestP = w, v
				}
				return true
			})
			if bestP == 0 {
				return nil // not enough processes left: malformed batch
			}
			node = append(node, job.ProcID(bestP))
			set.Add(bestP)
		}
		groups = append(groups, job.SortedProcIDs(node))
	}
}
