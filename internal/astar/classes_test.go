package astar

import (
	"testing"

	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
	"cosched/internal/workload"
)

// classTestSolver builds a solver over 2 PE jobs (3 ranks each) and 2
// serial jobs on quad-core machines with condensation on.
func classTestSolver(t *testing.T, mode degradation.Mode) (*Solver, *graph.Graph) {
	t.Helper()
	m := cache.QuadCore
	spec := workload.NewSpec()
	spec.AddPE(workload.SyntheticProgram("pe1", randFor(1)), 3)
	spec.AddPE(workload.SyntheticProgram("pe2", randFor(2)), 3)
	spec.AddSerial(workload.SyntheticProgram("s1", randFor(3)))
	spec.AddSerial(workload.SyntheticProgram("s2", randFor(4)))
	in, err := spec.Build(&m)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(in.Cost(mode), in.Patterns)
	s, err := NewSolver(g, Options{H: HPerProc, Condense: true})
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func TestClassCandidateCount(t *testing.T) {
	s, _ := classTestSolver(t, degradation.ModePE)
	// Level 1: leader is rank 0 of pe1; available are ranks {2,3} of
	// pe1, ranks {4,5,6} of pe2, serial {7,8}. Classes: pe1 (2 members),
	// pe2 (3 members), s7, s8. Multisets of size 3:
	// enumerate (a from pe1 0..2, b from pe2 0..3, c7 0..1, c8 0..1 with
	// a+b+c7+c8=3): count = 12.
	avail := []job.ProcID{2, 3, 4, 5, 6, 7, 8}
	count := 0
	seen := map[string]bool{}
	s.forEachClassCandidate(1, avail, func(node []job.ProcID) bool {
		count++
		key := graph.NodeID(node)
		if seen[key] {
			t.Fatalf("duplicate representative %v", node)
		}
		seen[key] = true
		if node[0] != 1 || len(node) != 4 {
			t.Fatalf("bad node %v", node)
		}
		return true
	})
	want := 0
	for a := 0; a <= 2; a++ {
		for b := 0; b <= 3; b++ {
			for c7 := 0; c7 <= 1; c7++ {
				for c8 := 0; c8 <= 1; c8++ {
					if a+b+c7+c8 == 3 {
						want++
					}
				}
			}
		}
	}
	if count != want {
		t.Errorf("class candidates = %d; want %d (raw level has C(7,3)=35)", count, want)
	}
	if count >= 35 {
		t.Errorf("class enumeration did not shrink the level: %d nodes", count)
	}
}

func TestClassCandidateEarlyStop(t *testing.T) {
	s, _ := classTestSolver(t, degradation.ModePE)
	avail := []job.ProcID{2, 3, 4, 5, 6, 7, 8}
	n := 0
	s.forEachClassCandidate(1, avail, func(node []job.ProcID) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("enumeration continued after stop: %d", n)
	}
}

func TestSymmetricJobByMode(t *testing.T) {
	m := cache.QuadCore
	spec := workload.NewSpec()
	prog, err := workload.PCProgram("CG-Par")
	if err != nil {
		t.Fatal(err)
	}
	spec.AddPC(prog, 4, nil)
	spec.AddSerial(workload.SyntheticProgram("s", randFor(9)))
	spec.AddSerial(workload.SyntheticProgram("t", randFor(10)))
	spec.AddSerial(workload.SyntheticProgram("u", randFor(11)))
	spec.AddSerial(workload.SyntheticProgram("v", randFor(12)))
	in, err := spec.Build(&m)
	if err != nil {
		t.Fatal(err)
	}
	// Under ModePC the PC job's ranks are position-bound: no
	// canonicalisation.
	gPC := graph.New(in.Cost(degradation.ModePC), in.Patterns)
	sPC, err := NewSolver(gPC, Options{H: HPerProc, Condense: true})
	if err != nil {
		t.Fatal(err)
	}
	if sPC.peAll != nil {
		t.Error("PC ranks canonicalised under ModePC")
	}
	// Under ModePE communication is invisible, so they are symmetric.
	gPE := graph.New(in.Cost(degradation.ModePE), in.Patterns)
	sPE, err := NewSolver(gPE, Options{H: HPerProc, Condense: true})
	if err != nil {
		t.Fatal(err)
	}
	if sPE.peAll == nil {
		t.Error("PC ranks not canonicalised under ModePE")
	}
}
