package astar

import (
	"math/rand"
	"strings"
	"testing"

	"cosched/internal/bitset"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/workload"
)

// legacyKey rebuilds the string dismissal key the pre-word-packed solver
// used in its admit path: elementKey (set bytes, PE-masked + counts when
// symmetry canonicalisation is on) plus, under ExactParallel, the raw
// Float64bits of the per-parallel-job maxima.
func (s *Solver) legacyKey(set *bitset.Set, jobMax []float64) string {
	key := s.elementKey(set)
	if s.keyJobWords > 0 {
		key += jobMaxKey(jobMax)
	}
	return key
}

// randomKeyInputs draws a pool of (set, jobMax) pairs for the solver's
// capacities, with deliberate duplicates so the equality side of the
// property is exercised, not just the inequality side.
func randomKeyInputs(s *Solver, rng *rand.Rand, count int) ([]*bitset.Set, [][]float64) {
	palette := []float64{0, 0.25, 1.5} // few distinct values → jobMax collisions
	sets := make([]*bitset.Set, 0, count)
	maxes := make([][]float64, 0, count)
	for i := 0; i < count; i++ {
		var set *bitset.Set
		var jm []float64
		if i > 0 && rng.Intn(3) == 0 {
			// Duplicate an earlier set (sometimes with the same jobMax).
			j := rng.Intn(i)
			set = sets[j].Clone()
			if rng.Intn(2) == 0 && maxes[j] != nil {
				jm = append([]float64(nil), maxes[j]...)
			}
		} else {
			set = bitset.New(s.n)
			for v := 1; v <= s.n; v++ {
				if rng.Intn(2) == 0 {
					set.Add(v)
				}
			}
		}
		if jm == nil && len(s.parJobs) > 0 {
			jm = make([]float64, len(s.parJobs))
			for k := range jm {
				jm[k] = palette[rng.Intn(len(palette))]
			}
		}
		sets = append(sets, set)
		maxes = append(maxes, jm)
	}
	return sets, maxes
}

// TestPackedKeyMatchesLegacyStrings is the key-equivalence property test:
// across random process sets (and per-job maxima), the word-packed keys
// collide exactly when the legacy string keys were equal, and
// compareKeyWords orders them exactly as byte-lexicographic string
// comparison did — covering plain serial keys, PE-symmetry count suffixes
// and the ExactParallel jobMax extension.
func TestPackedKeyMatchesLegacyStrings(t *testing.T) {
	peGraph := func(t *testing.T) *graph.Graph {
		m := cache.QuadCore
		rng := rand.New(rand.NewSource(7))
		spec := workload.NewSpec()
		spec.AddPE(workload.SyntheticProgram("pe1", rng), 4)
		spec.AddPE(workload.SyntheticProgram("pe2", rng), 3)
		for i := 0; i < 5; i++ {
			spec.AddSerial(workload.SyntheticProgram("s", rng))
		}
		in, err := spec.Build(&m)
		if err != nil {
			t.Fatal(err)
		}
		return graph.New(in.Cost(degradation.ModePE), in.Patterns)
	}

	cases := []struct {
		name  string
		build func(t *testing.T) *graph.Graph
		opts  Options
	}{
		{
			name:  "serial-plain",
			build: func(t *testing.T) *graph.Graph { return syntheticGraph(t, 70, 2, 11, degradation.ModePC) },
			opts:  Options{H: HPerProc},
		},
		{
			name:  "pe-symmetry-counts",
			build: peGraph,
			opts:  Options{H: HPerProc, Condense: true},
		},
		{
			name:  "exact-parallel-jobmax",
			build: func(t *testing.T) *graph.Graph { return mixedGraph(t, 12, 2, 3, 4, 5, degradation.ModePE) },
			opts:  Options{H: HPerProc, ExactParallel: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build(t)
			sv, err := NewSolver(g, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			switch tc.name {
			case "pe-symmetry-counts":
				if sv.peAll == nil {
					t.Fatal("test premise broken: no PE symmetry masks")
				}
			case "exact-parallel-jobmax":
				if sv.keyJobWords == 0 {
					t.Fatal("test premise broken: no ExactParallel jobMax words")
				}
			}
			rng := rand.New(rand.NewSource(42))
			sets, maxes := randomKeyInputs(sv, rng, 60)
			legacy := make([]string, len(sets))
			packed := make([][]uint64, len(sets))
			for i := range sets {
				legacy[i] = sv.legacyKey(sets[i], maxes[i])
				packed[i] = sv.packKey(nil, sets[i], maxes[i])
				if len(packed[i]) != sv.keyStride {
					t.Fatalf("packed key length %d != keyStride %d", len(packed[i]), sv.keyStride)
				}
			}
			sawEqual, sawLess := false, false
			for i := 0; i < len(sets); i++ {
				for j := 0; j < len(sets); j++ {
					cmp := compareKeyWords(packed[i], packed[j])
					strCmp := strings.Compare(legacy[i], legacy[j])
					if (cmp == 0) != (strCmp == 0) {
						t.Fatalf("pair (%d,%d): packed equal=%v, legacy equal=%v", i, j, cmp == 0, strCmp == 0)
					}
					if (cmp < 0) != (strCmp < 0) {
						t.Fatalf("pair (%d,%d): packed order %d, legacy order %d", i, j, cmp, strCmp)
					}
					if i != j && cmp == 0 {
						sawEqual = true
					}
					if cmp < 0 {
						sawLess = true
					}
				}
			}
			if !sawEqual || !sawLess {
				t.Fatalf("degenerate sample: sawEqual=%v sawLess=%v", sawEqual, sawLess)
			}
		})
	}
}

// TestPackedKeyHashConsistency pins the hash/table contract: equal keys
// find each other through gTable, distinct keys never do.
func TestPackedKeyHashConsistency(t *testing.T) {
	g := syntheticGraph(t, 40, 4, 3, degradation.ModePC)
	sv, err := NewSolver(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	sets, maxes := randomKeyInputs(sv, rng, 50)
	table := newGTable(sv.keyStride)
	type entry struct {
		key string
		ref int32
	}
	var inserted []entry
	for i := range sets {
		key := sv.packKey(nil, sets[i], maxes[i])
		legacy := sv.legacyKey(sets[i], maxes[i])
		ref := table.find(key)
		want := int32(-1)
		for _, e := range inserted {
			if e.key == legacy {
				want = e.ref
				break
			}
		}
		if ref != want {
			t.Fatalf("input %d: find = %d; want %d", i, ref, want)
		}
		if ref < 0 {
			ref = table.insert(key, float64(i), nil)
			inserted = append(inserted, entry{key: legacy, ref: ref})
		}
	}
	if table.count >= len(sets) {
		t.Fatal("degenerate sample: no duplicate keys exercised find")
	}
}
