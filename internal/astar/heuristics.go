package astar

import (
	"container/heap"
	"sort"

	"cosched/internal/degradation"
	"cosched/internal/job"
)

// heuristic dispatches the configured h(v) estimator for a freshly built
// child element. All strategies are admissible: they never exceed the true
// cheapest completion of the sub-path, which by §III-D guarantees that the
// search stays optimal (for OA*).
func (s *Solver) heuristic(e *element) float64 {
	if e.q >= s.n {
		return 0
	}
	switch s.opts.H {
	case HStrategy1:
		return s.hStrategy1(e)
	case HStrategy2:
		return s.hStrategy2(e)
	case HPerProc, HPerProcAvg:
		return s.hPerProc(e)
	default:
		return 0
	}
}

// hPerProc: every unscheduled serial process must eventually pay at least
// its cheapest pair degradation (co-runners never help); every parallel
// job must eventually pay at least the largest such floor among its
// unscheduled processes, less what the sub-path already paid for it.
func (s *Solver) hPerProc(e *element) float64 {
	h := e.hSerial
	if s.cost.Mode == degradation.ModeSE {
		return h // everything is charged per-process under SE accounting
	}
	b := s.gr.Batch
	for pi, jid := range s.parJobs {
		var maxRem float64
		for _, p := range b.Jobs[jid].Procs {
			if !e.set.Has(int(p)) {
				if d := s.dminAll[int(p)-1]; d > maxRem {
					maxRem = d
				}
			}
		}
		if e.jobMax != nil && maxRem > e.jobMax[pi] {
			h += maxRem - e.jobMax[pi]
		} else if e.jobMax == nil {
			h += maxRem
		}
	}
	return h
}

// hStrategy2 (§III-D Strategy 2): the remaining (n-q)/u machines each
// cost at least the minimum node weight of one remaining valid level; the
// sum of the (n-q)/u smallest per-level minima over unscheduled-leader
// levels is therefore a lower bound.
//
// With parallel jobs the Eq. 13 objective can undercut node-weight sums
// (a job's max may already be paid), so in mixed batches the bound is
// computed from serial-only node weights via the per-process floors.
func (s *Solver) hStrategy2(e *element) float64 {
	k := (s.n - e.q) / s.u
	if k == 0 {
		return 0
	}
	if len(s.parJobs) > 0 {
		// Mixed batch: fall back to the per-process bound, which
		// handles parallel maxima correctly.
		s.computeDmin()
		return s.hPerProc(e)
	}
	// Collect per-level minima for levels led by unscheduled processes
	// and sum the k smallest. Levels beyond n-u+1 are statically empty
	// (fewer than u-1 higher-numbered processes exist) and can never
	// lead a node, so they are excluded rather than counted as zero.
	mins := make([]float64, 0, s.n-e.q)
	e.set.ForEachAbsent(s.n, func(v int) bool {
		if v <= s.n-s.u+1 {
			mins = append(mins, s.levelMinWeight(job.ProcID(v)))
		}
		return true
	})
	sort.Float64s(mins)
	var h float64
	for i := 0; i < k && i < len(mins); i++ {
		h += mins[i]
	}
	return h
}

// levelMinWeight returns (and caches) a lower bound on the minimum node
// weight of the level led by the given process: exact when the level is
// enumerable, the sum of the u cheapest per-process pair floors otherwise.
func (s *Solver) levelMinWeight(leader job.ProcID) float64 {
	if s.levelMinDone[leader] {
		return s.levelMin[leader]
	}
	var w float64
	if ls, ok := s.gr.LevelStats(leader); ok {
		w = ls.Min()
	} else {
		s.computeDmin()
		w = s.dminAll[int(leader)-1]
		rest := make([]float64, 0, s.n-int(leader))
		for p := int(leader) + 1; p <= s.n; p++ {
			rest = append(rest, s.dminAll[p-1])
		}
		sort.Float64s(rest)
		for i := 0; i < s.u-1 && i < len(rest); i++ {
			w += rest[i]
		}
	}
	s.levelMin[leader] = w
	s.levelMinDone[leader] = true
	return w
}

// hStrategy1 (§III-D Strategy 1): regardless of validity, take the
// (n-q)/u smallest node weights among all nodes of the levels below the
// element's last node and sum them. Implemented as a k-way merge over the
// per-level sorted weight arrays.
func (s *Solver) hStrategy1(e *element) float64 {
	k := (s.n - e.q) / s.u
	if k == 0 {
		return 0
	}
	if len(s.parJobs) > 0 {
		s.computeDmin()
		return s.hPerProc(e)
	}
	l := int(e.node[0])
	var mh mergeHeap
	for lv := l + 1; lv <= s.n-s.u+1; lv++ {
		ls, ok := s.gr.LevelStats(job.ProcID(lv))
		if !ok {
			// prepare() guarantees enumerability; defensive fallback
			return s.hStrategy2(e)
		}
		if ls.Size() > 0 {
			mh = append(mh, mergeCursor{w: ls.SortedWeights[0], level: lv, idx: 0})
		}
	}
	heap.Init(&mh)
	var h float64
	for i := 0; i < k && mh.Len() > 0; i++ {
		cur := mh[0]
		h += cur.w
		ls, _ := s.gr.LevelStats(job.ProcID(cur.level))
		if cur.idx+1 < ls.Size() {
			mh[0] = mergeCursor{w: ls.SortedWeights[cur.idx+1], level: cur.level, idx: cur.idx + 1}
			heap.Fix(&mh, 0)
		} else {
			heap.Pop(&mh)
		}
	}
	return h
}

type mergeCursor struct {
	w     float64
	level int
	idx   int
}

type mergeHeap []mergeCursor

func (m mergeHeap) Len() int            { return len(m) }
func (m mergeHeap) Less(i, j int) bool  { return m[i].w < m[j].w }
func (m mergeHeap) Swap(i, j int)       { m[i], m[j] = m[j], m[i] }
func (m *mergeHeap) Push(x interface{}) { *m = append(*m, x.(mergeCursor)) }
func (m *mergeHeap) Pop() interface{} {
	old := *m
	n := len(old)
	x := old[n-1]
	*m = old[:n-1]
	return x
}
