package astar

import (
	"bytes"
	"math"
	"testing"
	"time"

	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/telemetry"
	"cosched/internal/workload"
)

// pairwiseGraphTB builds a mid-size additive-pairwise instance (the
// regime where the hot path is fully allocation-free).
func pairwiseGraphTB(tb testing.TB, n, u int, seed int64) *graph.Graph {
	tb.Helper()
	m, err := cache.MachineByCores(u)
	if err != nil {
		tb.Fatal(err)
	}
	in, err := workload.SyntheticPairwiseInstance(n, &m, seed)
	if err != nil {
		tb.Fatal(err)
	}
	return graph.New(in.Cost(degradation.ModePC), in.Patterns)
}

// TestAdmissionInvariant pins the Stats accounting contract across every
// search mode: each admitted sub-path is eventually expanded, superseded,
// beam-trimmed, or still in the frontier when the solve returns —
//
//	Generated == Expanded + Dismissed + BeamTrimmed + InFrontier
//
// — and VisitedPaths exceeds Expanded by exactly the root pop. When a
// Metrics registry is attached, its counters must agree with the Stats
// the solve returned (the registry is flushed from the same fields).
func TestAdmissionInvariant(t *testing.T) {
	for _, cfg := range []struct {
		name string
		g    func(t *testing.T) *graph.Graph
		opts Options
	}{
		{"OA*-pairwise", func(t *testing.T) *graph.Graph {
			return pairwiseGraphTB(t, 16, 4, 11)
		}, Options{H: HPerProc, UseIncumbent: true}},
		{"OA*-memoized-oracle", func(t *testing.T) *graph.Graph {
			return syntheticGraphTB(t, 12, 2, 5, degradation.ModePC)
		}, Options{H: HPerProc, Condense: true, UseIncumbent: true}},
		{"HA*-trimmed", func(t *testing.T) *graph.Graph {
			return pairwiseGraphTB(t, 24, 4, 11)
		}, Options{H: HPerProc, KPerLevel: 6, UseIncumbent: true}},
		{"beam", func(t *testing.T) *graph.Graph {
			return pairwiseGraphTB(t, 48, 4, 11)
		}, Options{H: HPerProcAvg, HWeight: 1.2, KPerLevel: 12, BeamWidth: 4}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			reg := telemetry.New()
			opts := cfg.opts
			opts.Metrics = reg
			res := solveWith(t, cfg.g(t), opts)
			st := res.Stats

			if got := st.Expanded + st.Dismissed + st.BeamTrimmed + st.InFrontier; got != st.Generated {
				t.Errorf("admission invariant broken: Generated=%d but Expanded=%d + Dismissed=%d + BeamTrimmed=%d + InFrontier=%d = %d",
					st.Generated, st.Expanded, st.Dismissed, st.BeamTrimmed, st.InFrontier, got)
			}
			if st.VisitedPaths != st.Expanded+1 {
				t.Errorf("VisitedPaths=%d should exceed Expanded=%d by exactly the root pop", st.VisitedPaths, st.Expanded)
			}

			for name, want := range map[string]int64{
				"astar.solves":           1,
				"astar.pops":             st.VisitedPaths,
				"astar.expanded":         st.Expanded,
				"astar.generated":        st.Generated,
				"astar.dismissed.worse":  st.DismissedWorse,
				"astar.dismissed.stale":  st.Dismissed,
				"astar.dismissed.pruned": st.Pruned,
				"astar.condensed":        st.Condensed,
				"astar.beam.trimmed":     st.BeamTrimmed,
				"astar.pool.allocated":   st.ElemAllocated,
				"astar.pool.reused":      st.ElemReused,
			} {
				if got := reg.Counter(name).Value(); got != want {
					t.Errorf("registry %s = %d, want %d (Stats: %+v)", name, got, want, st)
				}
			}
			if got := reg.Gauge("astar.frontier").Value(); got != st.InFrontier {
				t.Errorf("registry astar.frontier = %d, want InFrontier %d", got, st.InFrontier)
			}
			if reg.Counter("astar.solve_ns").Value() <= 0 {
				t.Error("astar.solve_ns not recorded")
			}
		})
	}
}

// TestJSONLTraceRoundTrip runs a full OA* solve through the JSONL tracer
// and decodes the stream back: the event sequence must open with
// solve_start, close with the solution, and carry one dismiss event per
// dismissal the Stats counted.
func TestJSONLTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	g := pairwiseGraphTB(t, 16, 4, 7)
	res := solveWith(t, g, Options{H: HPerProc, UseIncumbent: true, Tracer: tr})

	events, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("trace too short: %d events", len(events))
	}
	first, last := events[0], events[len(events)-1]
	if first.Ev != "solve_start" || first.N != 16 || first.U != 4 || first.Method != "OA*" {
		t.Errorf("bad solve_start event: %+v", first)
	}
	if first.SolveID == 0 {
		t.Error("tracer did not self-assign a solve_id")
	}
	for i, ev := range events {
		if ev.SolveID != first.SolveID {
			t.Fatalf("event %d solve_id = %d, want %d (one solve, one id)", i, ev.SolveID, first.SolveID)
		}
	}
	if last.Ev != "solution" || math.Abs(last.Cost-res.Cost) > 1e-12 {
		t.Errorf("bad solution event: %+v (want cost %v)", last, res.Cost)
	}
	var groupsLen int
	for _, grp := range last.Groups {
		groupsLen += len(grp)
	}
	if groupsLen != 16 {
		t.Errorf("solution groups cover %d processes, want 16", groupsLen)
	}

	var expands, dismissals int64
	var statsEv *telemetry.Event
	reasons := map[string]int64{}
	for i, ev := range events[1 : len(events)-1] {
		switch ev.Ev {
		case "expand":
			expands++
			if ev.Pop <= 0 {
				t.Fatalf("expand event without pop index: %+v", ev)
			}
		case "dismiss":
			dismissals++
			reasons[ev.Reason]++
		case "progress":
			// Rate-limited; absent on fast solves.
		case "stats":
			statsEv = &events[1+i]
		default:
			t.Fatalf("unexpected event type %q", ev.Ev)
		}
	}
	if statsEv == nil {
		t.Fatal("trace missing the final stats event")
	}
	if statsEv.Generated != res.Stats.Generated || statsEv.Expanded != res.Stats.Expanded ||
		statsEv.InFrontier != res.Stats.InFrontier {
		t.Errorf("stats event %+v disagrees with Stats %+v", statsEv, res.Stats)
	}
	if expands != res.Stats.VisitedPaths {
		t.Errorf("trace has %d expand events, Stats counted %d pops", expands, res.Stats.VisitedPaths)
	}
	st := res.Stats
	if want := st.Dismissed + st.DismissedWorse + st.Pruned; dismissals != want {
		t.Errorf("trace has %d dismiss events, Stats counted %d", dismissals, want)
	}
	if reasons["worse"] != st.DismissedWorse || reasons["stale"] != st.Dismissed || reasons["pruned"] != st.Pruned {
		t.Errorf("dismiss reasons %v disagree with Stats %+v", reasons, st)
	}
	for r := range reasons {
		switch r {
		case "worse", "stale", "pruned", "beam_trim":
		default:
			t.Errorf("unknown dismiss reason %q", r)
		}
	}
}

// TestDismissedChildAllocFreeWithTelemetry re-runs the hot-path
// allocation guard with metrics attached: the per-child work (pooled
// construction, dismissal probe, recycle, stack-local accounting) plus a
// registry flush must still allocate nothing. This is the zero-overhead
// contract of DESIGN.md §6 — enabling telemetry must not cost the search
// its allocation-free inner loop.
func TestDismissedChildAllocFreeWithTelemetry(t *testing.T) {
	sv, root, node := hotPathSolver(t, 120, 4, true)
	sv.opts.Metrics = telemetry.New()
	met := newSolverMetrics(sv.opts.Metrics)
	met.begin(sv)
	var stats Stats
	warm := sv.makeChildIn(sv.pool, root, node)
	sv.recycle(warm)
	allocs := testing.AllocsPerRun(200, func() {
		c := sv.makeChildIn(sv.pool, root, node)
		if ref := sv.table.find(c.keyWords); ref < 0 {
			stats.DismissedWorse++
		}
		sv.recycle(c)
		// Every iteration flushes — far more often than the real
		// flushEvery cadence — and must still be allocation-free.
		met.flush(&stats, 1, 1, sv.table, time.Millisecond)
	})
	if allocs > 0 {
		t.Fatalf("dismissed child with telemetry enabled costs %.1f allocs; want 0", allocs)
	}
}

// TestDismissedChildAllocFreeWithTracing tightens the guard further:
// metrics, an open phase span, and a live event tracer emitting every
// dismiss event (t_ms-stamped, into a FlightRecorder ring) must together
// keep the dismissed-child path at 0 allocations. This is the acceptance
// bar for always-on flight recording — the durable JSONL writer allocates
// in encoding/json, so "tracing without allocation" specifically means a
// struct-copy sink.
func TestDismissedChildAllocFreeWithTracing(t *testing.T) {
	sv, root, node := hotPathSolver(t, 120, 4, true)
	sv.opts.Metrics = telemetry.New()
	met := newSolverMetrics(sv.opts.Metrics)
	met.begin(sv)

	rec := telemetry.NewFlightRecorder(256)
	spans := telemetry.NewSpanRecorder(sv.opts.Metrics, rec, 7)
	tr := NewEventTracer(rec)
	tr.SolveID = 7
	tr.Epoch = spans.Epoch()
	tr.SolveStart(120, 4, "OA*")
	search := spans.Start("search")
	hooks := newTracerHooks(tr)
	if hooks.dismiss == nil {
		t.Fatal("EventTracer must implement DismissTracer")
	}

	var stats Stats
	warm := sv.makeChildIn(sv.pool, root, node)
	sv.recycle(warm)
	allocs := testing.AllocsPerRun(200, func() {
		c := sv.makeChildIn(sv.pool, root, node)
		if ref := sv.table.find(c.keyWords); ref < 0 {
			stats.DismissedWorse++
		}
		hooks.dismiss.Dismiss(stats.VisitedPaths, c.q, c.g, DismissWorse)
		sv.recycle(c)
		met.flush(&stats, 1, 1, sv.table, time.Millisecond)
	})
	search.End()
	if allocs > 0 {
		t.Fatalf("dismissed child with tracing+spans enabled costs %.1f allocs; want 0", allocs)
	}
	dismissed := 0
	for _, ev := range rec.Events() {
		if ev.SolveID != 7 || ev.TMS <= 0 {
			t.Fatalf("recorded event not stamped: %+v", ev)
		}
		if ev.Ev == "dismiss" {
			dismissed++
		}
	}
	if dismissed < 200 {
		t.Fatalf("flight recorder retained %d dismiss events, want >= 200", dismissed)
	}
	if res := spans.Results(); len(res) != 1 || res[0].Name != "search" {
		t.Fatalf("span results = %v", res)
	}
}

// TestSolveWithMetricsMatchesPlain pins that attaching a registry does
// not change the search result.
func TestSolveWithMetricsMatchesPlain(t *testing.T) {
	plain := solveWith(t, pairwiseGraphTB(t, 16, 4, 3), Options{H: HPerProc, UseIncumbent: true})
	observed := solveWith(t, pairwiseGraphTB(t, 16, 4, 3),
		Options{H: HPerProc, UseIncumbent: true, Metrics: telemetry.New()})
	if math.Abs(plain.Cost-observed.Cost) > 1e-12 || plain.Stats.VisitedPaths != observed.Stats.VisitedPaths {
		t.Errorf("telemetry changed the search: plain cost=%v pops=%d, observed cost=%v pops=%d",
			plain.Cost, plain.Stats.VisitedPaths, observed.Cost, observed.Stats.VisitedPaths)
	}
}
