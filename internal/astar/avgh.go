package astar

// Average-based per-process estimates for the HPerProcAvg strategy.
//
// The admissible strategies bound each unscheduled process's future cost
// from below with its *cheapest possible* co-run, which at scale
// underestimates the true completion cost several-fold and leaves the
// best-first search weakly directed. HA* is a heuristic (the trimmed graph
// already forfeits global optimality, §IV), so for large batches it pays
// to estimate instead of bound: HPerProcAvg charges every unscheduled
// process its *average* pairwise degradation times (u-1) co-runners. The
// estimate is nearly exact in expectation for additive oracles, which
// makes the search strongly goal-directed; it is not admissible, so OA*
// must not use it when optimality proofs matter (NewSolver enforces this).

import (
	"fmt"

	"cosched/internal/job"
)

// computeAvgEstimates fills dminAll/dminSerial with expected per-process
// co-run costs instead of lower bounds.
func (s *Solver) computeAvgEstimates() {
	s.dminAll = make([]float64, s.n)
	s.dminSerial = make([]float64, s.n)
	b := s.gr.Batch
	for p := 1; p <= s.n; p++ {
		if b.Procs[p-1].Imaginary {
			continue
		}
		var sum float64
		var cnt int
		for q := 1; q <= s.n; q++ {
			if q == p {
				continue
			}
			sum += s.cost.ProcCost(job.ProcID(p), []job.ProcID{job.ProcID(q)})
			cnt++
		}
		var est float64
		if cnt > 0 {
			est = sum / float64(cnt) * float64(s.u-1)
		}
		s.dminAll[p-1] = est
		if s.procPar[p-1] < 0 {
			s.dminSerial[p-1] = est
			s.hSerialAll += est
		}
	}
}

// validateAvgUse rejects configurations that would silently trade away
// OA*'s optimality guarantee.
func (s *Solver) validateAvgUse() error {
	if s.opts.H == HPerProcAvg && s.opts.KPerLevel <= 0 {
		return fmt.Errorf("astar: HPerProcAvg is not admissible; use it only with HA* (KPerLevel > 0)")
	}
	if s.opts.HWeight > 1 && s.opts.KPerLevel <= 0 {
		return fmt.Errorf("astar: HWeight %v > 1 breaks OA* optimality; use it only with HA* (KPerLevel > 0)", s.opts.HWeight)
	}
	if s.opts.BeamWidth > 0 && s.opts.KPerLevel <= 0 {
		return fmt.Errorf("astar: BeamWidth breaks OA* optimality; use it only with HA* (KPerLevel > 0)")
	}
	return nil
}
