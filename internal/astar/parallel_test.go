package astar

import (
	"math"
	"testing"

	"cosched/internal/degradation"
)

func TestParallelWorkersMatchSerial(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := syntheticGraph(t, 12, 4, seed, degradation.ModePC)
		serial := solveWith(t, g, Options{H: HPerProc, UseIncumbent: true})
		par := solveWith(t, g, Options{H: HPerProc, UseIncumbent: true, Workers: 4})
		if math.Abs(serial.Cost-par.Cost) > eps {
			t.Errorf("seed %d: workers changed the optimum: %v vs %v", seed, serial.Cost, par.Cost)
		}
		if serial.Stats.VisitedPaths != par.Stats.VisitedPaths {
			t.Errorf("seed %d: visited paths differ: %d vs %d (determinism lost)",
				seed, serial.Stats.VisitedPaths, par.Stats.VisitedPaths)
		}
	}
}

func TestParallelWorkersMixedBatch(t *testing.T) {
	g := mixedGraph(t, 12, 2, 3, 4, 5, degradation.ModePC)
	serial := solveWith(t, g, Options{H: HPerProc, ExactParallel: true})
	par := solveWith(t, g, Options{H: HPerProc, ExactParallel: true, Workers: 3})
	if math.Abs(serial.Cost-par.Cost) > eps {
		t.Errorf("workers changed the mixed-batch optimum: %v vs %v", serial.Cost, par.Cost)
	}
}

func TestWorkersRejectedForTableStrategies(t *testing.T) {
	g := syntheticGraph(t, 8, 2, 1, degradation.ModePC)
	for _, h := range []HStrategy{HStrategy1, HStrategy2} {
		if _, err := NewSolver(g, Options{H: h, Workers: 4}); err == nil {
			t.Errorf("%v accepted workers", h)
		}
	}
}
