package astar

import (
	"math"
	"testing"

	"cosched/internal/degradation"
)

func TestParallelWorkersMatchSerial(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := syntheticGraph(t, 12, 4, seed, degradation.ModePC)
		serial := solveWith(t, g, Options{H: HPerProc, UseIncumbent: true})
		par := solveWith(t, g, Options{H: HPerProc, UseIncumbent: true, Workers: 4})
		if math.Abs(serial.Cost-par.Cost) > eps {
			t.Errorf("seed %d: workers changed the optimum: %v vs %v", seed, serial.Cost, par.Cost)
		}
		if serial.Stats.VisitedPaths != par.Stats.VisitedPaths {
			t.Errorf("seed %d: visited paths differ: %d vs %d (determinism lost)",
				seed, serial.Stats.VisitedPaths, par.Stats.VisitedPaths)
		}
	}
}

func TestParallelWorkersMixedBatch(t *testing.T) {
	g := mixedGraph(t, 12, 2, 3, 4, 5, degradation.ModePC)
	serial := solveWith(t, g, Options{H: HPerProc, ExactParallel: true})
	par := solveWith(t, g, Options{H: HPerProc, ExactParallel: true, Workers: 3})
	if math.Abs(serial.Cost-par.Cost) > eps {
		t.Errorf("workers changed the mixed-batch optimum: %v vs %v", serial.Cost, par.Cost)
	}
}

// TestWorkerPoolSolveRepeatable runs the same worker-parallel solver
// twice: the crew is Solve-scoped (started and joined inside each call)
// while the per-chunk element pools persist, so the second solve must
// reproduce the first bit for bit and draw mostly on recycled elements.
func TestWorkerPoolSolveRepeatable(t *testing.T) {
	g := syntheticGraph(t, 12, 4, 2, degradation.ModePC)
	sv, err := NewSolver(g, Options{H: HPerProc, UseIncumbent: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	first, err := sv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	second, err := sv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(first.Cost-second.Cost) > eps {
		t.Errorf("repeat solve changed the optimum: %v vs %v", first.Cost, second.Cost)
	}
	if first.Stats.VisitedPaths != second.Stats.VisitedPaths {
		t.Errorf("repeat solve visited %d paths vs %d (determinism lost)",
			second.Stats.VisitedPaths, first.Stats.VisitedPaths)
	}
	// Pool counters are cumulative across solves: the second solve's
	// fresh allocations should be near zero, so reuse must dominate.
	if second.Stats.ElemReused <= first.Stats.ElemReused {
		t.Errorf("second solve reused no elements: %d then %d",
			first.Stats.ElemReused, second.Stats.ElemReused)
	}
	// Admitted elements are never recycled (they may sit on the winning
	// path), so a repeat solve re-allocates that fraction — but the
	// dismissed majority must come from the warm free lists.
	delta := second.Stats.ElemAllocated - first.Stats.ElemAllocated
	if delta > first.Stats.ElemAllocated/2 {
		t.Errorf("second solve allocated %d fresh elements (first: %d); warm pools should cover most",
			delta, first.Stats.ElemAllocated)
	}
}

func TestWorkersRejectedForTableStrategies(t *testing.T) {
	g := syntheticGraph(t, 8, 2, 1, degradation.ModePC)
	for _, h := range []HStrategy{HStrategy1, HStrategy2} {
		if _, err := NewSolver(g, Options{H: h, Workers: 4}); err == nil {
			t.Errorf("%v accepted workers", h)
		}
	}
}
