package astar

import (
	"math"
	"math/bits"

	"cosched/internal/bitset"
)

// This file implements the word-packed dismissal bookkeeping of the
// search hot path. The paper's Theorem-1 dismissal needs, per generated
// child, one lookup of "cheapest recorded distance for this process set";
// the original implementation built a string key (a byte copy of the set,
// plus PE-symmetry counts and — under ExactParallel — the per-job maxima)
// and probed a map[string]float64, costing two heap allocations and a
// byte-wise hash per child. Here the key stays in its natural form — a
// fixed-stride []uint64 — and the table is a linear-probing open-addressing
// hash over those words directly, so a dismissed child (the vast majority)
// touches no heap at all.
//
// Key layout (fixed per solver, s.keyStride words):
//
//	[0, setWords)              set words; PE bits masked out when
//	                           symmetry canonicalisation is active
//	[setWords, +countWords)    per-PE-job scheduled-rank counts, one byte
//	                           each, packed little-endian 8 per word
//	[.., +jobWords)            ExactParallel only: Float64bits of the
//	                           per-parallel-job running maxima
//
// The byte image of this layout is the legacy string key with zero
// padding at fixed offsets, so key equality — and byte-lexicographic
// order, which the beam search's deterministic tie-break relies on — are
// preserved exactly (see compareKeyWords and the equivalence property
// test in keytable_test.go).

// packKey appends the dismissal key of (set, jobMax) to dst and returns
// it. dst should have capacity s.keyStride to stay allocation-free.
func (s *Solver) packKey(dst []uint64, set *bitset.Set, jobMax []float64) []uint64 {
	dst = set.AppendWords(dst, s.peAll)
	if s.peAll != nil {
		var w uint64
		for i, jm := range s.peJobMask {
			w |= uint64(byte(set.IntersectCount(jm))) << (8 * uint(i&7))
			if i&7 == 7 {
				dst = append(dst, w)
				w = 0
			}
		}
		if len(s.peJobMask)&7 != 0 {
			dst = append(dst, w)
		}
	}
	if s.keyJobWords > 0 {
		for _, v := range jobMax {
			dst = append(dst, math.Float64bits(v))
		}
	}
	return dst
}

// hashKeyWords mixes the key words splitmix64-style. The mixer only has
// to spread the low bits (the table mask takes them); the multiply-xor
// rounds of splitmix64 do that well for the sparse, low-entropy words a
// process set produces.
func hashKeyWords(key []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range key {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// compareKeyWords orders two equal-stride keys identically to the
// byte-lexicographic order of the legacy string keys: each word holds 8
// little-endian bytes, so byte order within a word is the big-endian
// (byte-reversed) numeric order.
func compareKeyWords(a, b []uint64) int {
	for i := range a {
		if a[i] != b[i] {
			if bits.ReverseBytes64(a[i]) < bits.ReverseBytes64(b[i]) {
				return -1
			}
			return 1
		}
	}
	return 0
}

// gTable is the open-addressing best-g table: one entry per distinct
// dismissal key, holding the cheapest recorded sub-path distance and —
// for the beam search — the element that achieved it. Entries live in a
// flat arena (keys at entry*stride) and are never deleted; slots hold
// entry index + 1 with 0 meaning empty.
type gTable struct {
	stride int
	slots  []int32
	keys   []uint64
	gs     []float64
	elems  []*element
	count  int
}

const gTableInitSlots = 1 << 10

func newGTable(stride int) *gTable {
	if stride < 1 {
		stride = 1 // capacity-0 batches still need a root entry
	}
	return &gTable{
		stride: stride,
		slots:  make([]int32, gTableInitSlots),
	}
}

// reset empties the table, keeping its storage (beam search reuses one
// table across depths).
func (t *gTable) reset() {
	for i := range t.slots {
		t.slots[i] = 0
	}
	t.keys = t.keys[:0]
	t.gs = t.gs[:0]
	t.elems = t.elems[:0]
	t.count = 0
}

// key returns the stored key words of entry ei.
func (t *gTable) key(ei int32) []uint64 {
	off := int(ei) * t.stride
	return t.keys[off : off+t.stride]
}

// find returns the entry index for key, or -1 when absent. The index is
// stable for the table's lifetime (entries are never deleted), so callers
// cache it on elements for the O(1) pop-staleness check.
func (t *gTable) find(key []uint64) int32 {
	mask := uint64(len(t.slots) - 1)
	i := hashKeyWords(key) & mask
	for {
		ref := t.slots[i]
		if ref == 0 {
			return -1
		}
		ei := ref - 1
		off := int(ei) * t.stride
		stored := t.keys[off : off+t.stride]
		match := true
		for j, w := range key {
			if stored[j] != w {
				match = false
				break
			}
		}
		if match {
			return ei
		}
		i = (i + 1) & mask
	}
}

// insert adds a new entry for key (which must be absent) and returns its
// index. The key words are copied into the arena.
func (t *gTable) insert(key []uint64, g float64, e *element) int32 {
	if (t.count+1)*4 >= len(t.slots)*3 {
		t.grow()
	}
	ei := int32(t.count)
	t.keys = append(t.keys, key...)
	t.gs = append(t.gs, g)
	t.elems = append(t.elems, e)
	t.count++
	mask := uint64(len(t.slots) - 1)
	i := hashKeyWords(key) & mask
	for t.slots[i] != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = ei + 1
	return ei
}

// grow doubles the slot array and re-places every entry.
func (t *gTable) grow() {
	slots := make([]int32, len(t.slots)*2)
	mask := uint64(len(slots) - 1)
	for ei := 0; ei < t.count; ei++ {
		off := ei * t.stride
		i := hashKeyWords(t.keys[off:off+t.stride]) & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(ei) + 1
	}
	t.slots = slots
}

// load returns the slot occupancy in [0,1], surfaced in Stats.
func (t *gTable) load() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return float64(t.count) / float64(len(t.slots))
}

// wordSet is a membership-only sibling of gTable: a linear-probing set of
// fixed-stride word keys. The anchored candidate generator uses it to
// dedup emitted nodes (packed 16 bits per process), replacing the former
// map[string]bool whose nodeKey strings cost two allocations per node.
type wordSet struct {
	stride int
	slots  []int32
	keys   []uint64
	count  int
}

func newWordSet(stride int) *wordSet {
	if stride < 1 {
		stride = 1
	}
	return &wordSet{stride: stride, slots: make([]int32, 1<<8)}
}

// reset empties the set, keeping its storage for the next expansion.
func (w *wordSet) reset() {
	for i := range w.slots {
		w.slots[i] = 0
	}
	w.keys = w.keys[:0]
	w.count = 0
}

// add inserts key and reports whether it was absent.
func (w *wordSet) add(key []uint64) bool {
	if (w.count+1)*4 >= len(w.slots)*3 {
		w.grow()
	}
	mask := uint64(len(w.slots) - 1)
	i := hashKeyWords(key) & mask
	for {
		ref := w.slots[i]
		if ref == 0 {
			break
		}
		off := int(ref-1) * w.stride
		stored := w.keys[off : off+w.stride]
		match := true
		for j, kw := range key {
			if stored[j] != kw {
				match = false
				break
			}
		}
		if match {
			return false
		}
		i = (i + 1) & mask
	}
	w.keys = append(w.keys, key...)
	w.count++
	w.slots[i] = int32(w.count)
	return true
}

func (w *wordSet) grow() {
	slots := make([]int32, len(w.slots)*2)
	mask := uint64(len(slots) - 1)
	for ei := 0; ei < w.count; ei++ {
		off := ei * w.stride
		i := hashKeyWords(w.keys[off:off+w.stride]) & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(ei) + 1
	}
	w.slots = slots
}
