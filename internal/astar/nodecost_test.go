package astar

import (
	"math"
	"testing"

	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
	"cosched/internal/workload"
)

func TestNodeCostsMatchOracle(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticSerialInstance(8, &m, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	g := graph.New(c, nil)
	s, err := NewSolver(g, Options{H: HPerProc})
	if err != nil {
		t.Fatal(err)
	}
	node := []job.ProcID{1, 3, 5, 7}
	costs := s.nodeCosts(node)
	for i, p := range node {
		var co []job.ProcID
		co = append(co, node[:i]...)
		co = append(co, node[i+1:]...)
		want := c.ProcCost(p, co)
		if math.Abs(costs[i]-want) > 1e-12 {
			t.Errorf("nodeCosts[%d] = %v; want %v", i, costs[i], want)
		}
	}
	// second call hits the cache and returns the same slice
	again := s.nodeCosts(node)
	if &again[0] != &costs[0] {
		t.Error("node costs not cached")
	}
}

func TestCanonicalNodeKeySymmetry(t *testing.T) {
	m := cache.QuadCore
	spec := workload.NewSpec()
	spec.AddPE(workload.SyntheticProgram("pe", randFor(1)), 5) // procs 1-5
	spec.AddSerial(workload.SyntheticProgram("s1", randFor(2)))
	spec.AddSerial(workload.SyntheticProgram("s2", randFor(3)))
	spec.AddSerial(workload.SyntheticProgram("s3", randFor(4)))
	in, err := spec.Build(&m)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(in.Cost(degradation.ModePE), in.Patterns)
	s, err := NewSolver(g, Options{H: HPerProc, Condense: true})
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent nodes: different PE ranks, same serial members.
	a := s.canonicalNodeKey([]job.ProcID{1, 2, 6, 7})
	b := s.canonicalNodeKey([]job.ProcID{3, 5, 6, 7})
	if a != b {
		t.Error("equivalent PE nodes have different canonical keys")
	}
	// Different serial members must differ.
	cKey := s.canonicalNodeKey([]job.ProcID{1, 2, 6, 8})
	if a == cKey {
		t.Error("nodes with different serial members share a canonical key")
	}
	// Different PE counts must differ.
	dKey := s.canonicalNodeKey([]job.ProcID{1, 2, 3, 6})
	if a == dKey {
		t.Error("nodes with different PE counts share a canonical key")
	}
	// Without condensation, keys are raw and rank-sensitive.
	sRaw, err := NewSolver(g, Options{H: HPerProc})
	if err != nil {
		t.Fatal(err)
	}
	if sRaw.canonicalNodeKey([]job.ProcID{1, 2, 6, 7}) == sRaw.canonicalNodeKey([]job.ProcID{3, 5, 6, 7}) {
		t.Error("raw keys unexpectedly canonical")
	}
}
