package astar

import (
	"context"
	"sync"
	"testing"
	"time"

	"cosched/internal/abort"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/telemetry"
)

// abortModes is the search-mode matrix every abort reason is exercised
// against: plain OA*, trimmed HA*, and the beam search.
func abortModes() map[string]Options {
	return map[string]Options{
		"OA*":  {H: HNone},
		"HA*":  {H: HPerProc, KPerLevel: 3, UseIncumbent: true},
		"beam": {H: HPerProcAvg, HWeight: 1.2, KPerLevel: 3, BeamWidth: 4},
	}
}

// requireDegraded asserts the degraded-result contract: no error, the
// abort flagged with the wanted reason, a valid partition, and the
// admission identity intact on the aborted counters.
func requireDegraded(t *testing.T, g *graph.Graph, res *Result, err error, want abort.Reason) {
	t.Helper()
	if err != nil {
		t.Fatalf("aborted search errored instead of degrading: %v", err)
	}
	if !res.Stats.Degraded {
		t.Fatalf("aborted search not flagged degraded: %+v", res.Stats)
	}
	if res.Stats.Aborted != want {
		t.Fatalf("abort reason = %v; want %v", res.Stats.Aborted, want)
	}
	if err := g.Cost.ValidatePartition(res.Groups); err != nil {
		t.Errorf("degraded schedule invalid: %v", err)
	}
	st := res.Stats
	if got := st.Expanded + st.Dismissed + st.BeamTrimmed + st.InFrontier; got != st.Generated {
		t.Errorf("aborted admission identity broken: generated %d != expanded %d + dismissed %d + trimmed %d + frontier %d",
			st.Generated, st.Expanded, st.Dismissed, st.BeamTrimmed, st.InFrontier)
	}
}

func TestAbortExpiredContext(t *testing.T) {
	g := syntheticGraph(t, 16, 4, 1, degradation.ModePC)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for name, opts := range abortModes() {
		t.Run(name, func(t *testing.T) {
			opts.Ctx = ctx
			s, err := NewSolver(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			startAt := time.Now()
			res, err := s.Solve()
			requireDegraded(t, g, res, err, abort.Deadline)
			if e := time.Since(startAt); e > time.Second {
				t.Errorf("expired-context abort took %v", e)
			}
			if res.Stats.VisitedPaths != 0 {
				t.Errorf("expired context still popped %d elements", res.Stats.VisitedPaths)
			}
		})
	}
}

func TestAbortCancelledContext(t *testing.T) {
	g := syntheticGraph(t, 16, 4, 1, degradation.ModePC)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, opts := range abortModes() {
		t.Run(name, func(t *testing.T) {
			opts.Ctx = ctx
			s, err := NewSolver(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Solve()
			requireDegraded(t, g, res, err, abort.Cancel)
		})
	}
}

func TestAbortExpansionCap(t *testing.T) {
	g := syntheticGraph(t, 16, 4, 1, degradation.ModePC)
	for name, opts := range abortModes() {
		t.Run(name, func(t *testing.T) {
			opts.MaxExpansions = 2
			s, err := NewSolver(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Solve()
			requireDegraded(t, g, res, err, abort.Expansions)
			if res.Stats.VisitedPaths != 2 {
				t.Errorf("search popped %d elements, cap was 2", res.Stats.VisitedPaths)
			}
		})
	}
}

func TestAbortMemoryBudget(t *testing.T) {
	g := syntheticGraph(t, 16, 4, 1, degradation.ModePC)
	for name, opts := range abortModes() {
		t.Run(name, func(t *testing.T) {
			opts.MemoryBudget = 1 // breached by the root element alone
			s, err := NewSolver(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Solve()
			requireDegraded(t, g, res, err, abort.Memory)
		})
	}
}

// TestAbortPreservesIncumbent pins the satellite fix: a search that
// already admitted a complete schedule must hand that incumbent back on
// abort, not a from-scratch greedy fallback. MaxExpansions large enough
// to complete some paths but too small to drain the queue forces the
// situation deterministically.
func TestAbortPreservesIncumbent(t *testing.T) {
	g := syntheticGraph(t, 12, 4, 3, degradation.ModePC)
	full, err := NewSolver(g, Options{H: HNone})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := full.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Find a cap at which the aborted search holds a complete incumbent.
	for cap := int64(50); cap <= 2000; cap *= 2 {
		s, err := NewSolver(g, Options{H: HNone, MaxExpansions: cap})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.Degraded {
			return // cap exceeded the full search; nothing left to probe
		}
		requireDegraded(t, g, res, err, abort.Expansions)
		if res.Cost < opt.Cost-eps {
			t.Fatalf("degraded cost %v beats the optimum %v", res.Cost, opt.Cost)
		}
	}
}

// TestWorkerCancellationRace cancels a worker-parallel solve mid-flight
// from another goroutine; run under -race (the ci.sh astar race gate
// matches this test by name) it checks the done-channel poll against the
// expansion crew teardown.
func TestWorkerCancellationRace(t *testing.T) {
	g := syntheticGraph(t, 20, 4, 5, degradation.ModePC)
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewSolver(g, Options{H: HPerProc, Workers: 4, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	res, err := s.Solve()
	wg.Wait()
	if err != nil {
		t.Fatalf("cancelled solve errored: %v", err)
	}
	if res.Stats.Degraded {
		if res.Stats.Aborted != abort.Cancel {
			t.Errorf("abort reason = %v; want cancel", res.Stats.Aborted)
		}
	} else if res.Stats.Aborted != abort.None {
		t.Errorf("completed solve carries abort reason %v", res.Stats.Aborted)
	}
	if err := g.Cost.ValidatePartition(res.Groups); err != nil {
		t.Errorf("schedule invalid after cancellation: %v", err)
	}
}

// TestAbortEmitsTrace checks the degraded trace shape end to end: one
// abort event carrying the reason, a stats event, and a solution event
// repeating the reason, plus the astar.aborts.* counter.
func TestAbortEmitsTrace(t *testing.T) {
	g := syntheticGraph(t, 16, 4, 1, degradation.ModePC)
	reg := telemetry.New()
	rec := telemetry.NewFlightRecorder(256)
	tr := NewEventTracer(rec)
	s, err := NewSolver(g, Options{H: HNone, MaxExpansions: 2, Tracer: tr, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	requireDegraded(t, g, res, err, abort.Expansions)
	var abortEvs, solutions int
	for _, ev := range rec.Events() {
		switch ev.Ev {
		case "abort":
			abortEvs++
			if ev.Reason != "expansions" {
				t.Errorf("abort event reason %q; want expansions", ev.Reason)
			}
		case "solution":
			solutions++
			if ev.Reason != "expansions" {
				t.Errorf("solution event reason %q; want expansions", ev.Reason)
			}
		}
	}
	if abortEvs != 1 || solutions != 1 {
		t.Errorf("trace carries %d abort and %d solution events; want 1 and 1", abortEvs, solutions)
	}
	if got := reg.Counter("astar.aborts.expansions").Value(); got != 1 {
		t.Errorf("astar.aborts.expansions = %d; want 1", got)
	}
}

// TestPollAbortAllocationFree pins the cost of the per-pop abort poll:
// with a live cancellable context, an expansion cap, a time limit and a
// memory budget all armed but untriggered, polling on top of the
// dismissed-child work must keep the hot path at 0 allocations — the
// anytime machinery may not undo the pooled-search guarantee.
func TestPollAbortAllocationFree(t *testing.T) {
	sv, root, node := hotPathSolver(t, 120, 4, true)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sv.opts.Ctx = ctx
	sv.opts.MaxExpansions = 1 << 40
	sv.opts.TimeLimit = time.Hour
	sv.opts.MemoryBudget = 1 << 40
	done := sv.abortDone()
	if done == nil {
		t.Fatal("live context produced no done channel")
	}
	start := time.Now()
	var stats Stats
	warm := sv.makeChildIn(sv.pool, root, node)
	sv.recycle(warm)
	allocs := testing.AllocsPerRun(200, func() {
		if reason := sv.pollAbort(done, &stats, start, 64); reason != abort.None {
			t.Fatalf("armed-but-untriggered poll aborted: %v", reason)
		}
		c := sv.makeChildIn(sv.pool, root, node)
		if ref := sv.table.find(c.keyWords); ref < 0 {
			stats.DismissedWorse++
		}
		sv.recycle(c)
	})
	if allocs > 0 {
		t.Fatalf("abort poll on the hot path costs %.1f allocs; want 0", allocs)
	}
}
