package astar

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cosched/internal/abort"
	"cosched/internal/job"
	"cosched/internal/telemetry"
)

// This file is the parallel best-first engine: N expansion workers over
// a fingerprint-sharded frontier. Each worker owns a subset of the
// shards (per-shard heaps behind per-shard locks — there is no global
// heap mutex), pops the cheapest element it can see, and steals from the
// globally cheapest shard when its own run dry, so the expansion order
// stays cost-anchored even though it is no longer serial. A shared
// atomic incumbent bound prunes on admission exactly like the
// sequential search, and a memory-aware load balancer parks workers as
// the MemoryBudget footprint estimate grows — throttling first, hard
// abort (the sequential promise) only on an actual breach.
//
// Correctness model: the engine only runs configurations whose answer is
// order-independent — an admissible heuristic (HNone, HPerProc) at
// effective weight 1 (see eligibleParallelism). The trimmed candidate
// graph is a pure function of each element's process set, dismissal is
// the same Theorem-1 rule against one shared (striped) best-g table, and
// pruning only ever discards children that provably cannot beat an
// already-achieved bound; so whatever order workers expand in, the
// cheapest complete schedule they can prove has the same cost as the
// sequential solver's, bit for bit. Expansion counts, dismissal counts
// and which of several equal-cost optima is returned may differ — the
// admission invariant (Generated == Expanded + Dismissed + InFrontier)
// still holds for every run.
const (
	// maxParallelism caps Options.Parallelism.
	maxParallelism = 64
	// parkSoftNum/parkSoftDen place the load balancer's soft threshold
	// at 3/4 of MemoryBudget: above it workers park one by one; at the
	// budget itself the solve aborts with abort.Memory as the
	// sequential path would.
	parkSoftNum, parkSoftDen = 3, 4
	// specEps is the tolerance above the global frontier minimum within
	// which a pop still counts as on-frontier; anything above it is a
	// speculative expansion (Stats.Speculative).
	specEps = 1e-12
)

// frontierShard is one heap of the sharded frontier. topF mirrors the
// heap minimum (Float64bits, +Inf when empty) so workers and the
// termination check can scan shard minima without taking locks.
type frontierShard struct {
	mu   sync.Mutex
	pq   pqueue
	seq  int64
	topF atomic.Uint64
	_    [24]byte // keep neighbouring shard locks off one cache line
}

// refreshTop republishes the heap minimum; callers hold mu.
func (sh *frontierShard) refreshTop() {
	if len(sh.pq) == 0 {
		sh.topF.Store(math.Float64bits(math.Inf(1)))
	} else {
		sh.topF.Store(math.Float64bits(sh.pq[0].f))
	}
}

// parEngine is the shared state of one parallel solve.
type parEngine struct {
	s       *Solver
	workers []*Solver // workers[0] is s itself; the rest are clones
	shards  []*frontierShard
	table   *stripedTable

	// ubBits is the incumbent bound (Float64bits, monotone
	// non-increasing): the cheapest complete schedule achieved so far,
	// greedy or searched. completeSeen flags that at least one complete
	// child was admitted (the tie-prune precondition).
	ubBits       atomic.Uint64
	completeSeen atomic.Bool
	bestMu       sync.Mutex
	bestGroups   [][]job.ProcID
	bestCost     float64
	greedyGroups [][]job.ProcID
	greedyCost   float64

	// Termination protocol (HDA*-style double check): inflight is
	// claimed under the shard lock before a pop publishes its new shard
	// minimum, pushes counts admissions; a worker may conclude the
	// search only after seeing inflight == 0, scanning every shard
	// minimum, and re-reading inflight and pushes unchanged.
	inflight atomic.Int64
	pushes   atomic.Int64
	done     atomic.Bool
	aborted  atomic.Uint32 // abort.Reason; 0 = running

	// Search counters (Stats snapshot lives here during the solve).
	visited, expanded, generated   atomic.Int64
	dismissedStale, dismissedWorse atomic.Int64
	pruned, condensed              atomic.Int64
	frontierSize, maxQueue         atomic.Int64
	qMax                           atomic.Int64
	steals, speculative            atomic.Int64
	parks, unparks                 atomic.Int64

	// Memory-aware load balancing: allocElems is the shared fresh-
	// allocation counter every worker pool bumps, activeTarget the
	// number of workers currently allowed to expand (worker 0 always
	// is).
	allocElems   atomic.Int64
	activeTarget atomic.Int32

	// trMu serializes user tracer callbacks (Tracer implementations are
	// not required to be goroutine-safe); unused when no tracer is
	// attached.
	trMu   sync.Mutex
	hooks  *tracerHooks
	start  time.Time
	doneCh <-chan struct{}
}

// eligibleParallelism resolves Options.Parallelism for the best-first
// path: the worker count to run, or 1 when the configuration cannot be
// parallelised without changing the answer (inadmissible or weighted
// heuristics, and the lazily-built level-minima strategies whose tables
// are not goroutine-safe).
func (s *Solver) eligibleParallelism() int {
	p := s.opts.Parallelism
	if p <= 1 {
		return 1
	}
	if p > maxParallelism {
		p = maxParallelism
	}
	if s.opts.HWeight > 1 {
		return 1
	}
	switch s.opts.H {
	case HNone, HPerProc:
		return p
	default:
		return 1
	}
}

// workerClone returns a Solver sharing every read-only table of s
// (graph, oracle, heuristic floors, key geometry, the node-cost memo)
// but owning its own element pool and candidate-generation scratch, so
// an expansion worker can run makeChildIn/forEachCandidate/heuristic
// without touching another worker's buffers.
func (s *Solver) workerClone() *Solver {
	c := new(Solver)
	*c = *s
	c.table = nil
	c.pool = s.newPool() // registered on s for end-of-solve stats
	c.allPools = nil
	c.workerPools = nil
	c.availBuf = nil
	c.nodeFlat = nil
	c.childBuf = nil
	c.greedyNd = nil
	c.greedyCd = nil
	c.candFlat = nil
	c.candW = nil
	c.candIdx = nil
	c.anchSorted = nil
	c.anchInNode = nil
	c.anchNode = nil
	c.anchSeen = nil
	c.anchKeyBuf = nil
	c.prepDur = 0
	c.parClones = nil
	return c
}

// ensureClones grows the persistent worker-clone set to p-1 entries
// (worker 0 is the solver itself), reusing warm pools across solves.
func (s *Solver) ensureClones(p int) []*Solver {
	for len(s.parClones) < p-1 {
		s.parClones = append(s.parClones, s.workerClone())
	}
	workers := make([]*Solver, p)
	workers[0] = s
	copy(workers[1:], s.parClones)
	return workers
}

// shardCount picks a power-of-two shard count of at least 4 per worker
// (steals stay rare) within [8, 256].
func shardCount(p int) int {
	n := 8
	for n < 4*p && n < 256 {
		n *= 2
	}
	return n
}

// solveParallel runs the sharded-frontier engine with p >= 2 workers.
func (s *Solver) solveParallel(p int) (*Result, error) {
	start := time.Now()
	var stats Stats
	stats.Parallelism = p
	hooks := newTracerHooks(s.opts.Tracer)
	met := newSolverMetrics(s.opts.Metrics)
	pmet := newParallelMetrics(s.opts.Metrics)
	prog := s.progressReporter(&hooks)

	workers := s.ensureClones(p)
	s.table = nil // stats come from the striped table this solve
	met.begin(s)
	stats.PrepareDuration = s.prepDur
	s.prepDur = 0
	if pt, ok := s.opts.Tracer.(ParallelismTracer); ok {
		pt.SetParallelism(p)
	}
	if hooks.start != nil {
		hooks.start.SolveStart(s.n, s.u, s.searchMethod())
	}

	nShards := shardCount(p)
	en := &parEngine{
		s:       s,
		workers: workers,
		shards:  make([]*frontierShard, nShards),
		table:   newStripedTable(s.keyStride, nShards),
		hooks:   &hooks,
		start:   start,
		doneCh:  s.abortDone(),
	}
	for i := range en.shards {
		en.shards[i] = &frontierShard{}
		en.shards[i].refreshTop()
	}
	en.ubBits.Store(math.Float64bits(math.Inf(1)))
	en.activeTarget.Store(int32(p))
	var seedAlloc int64
	for _, pl := range s.allPools {
		seedAlloc += pl.gets - pl.reuse
		pl.allocCount = &en.allocElems
	}
	en.allocElems.Store(seedAlloc)

	if s.opts.UseIncumbent {
		if en.greedyGroups = s.greedySchedule(); en.greedyGroups != nil {
			en.greedyCost = s.cost.PartitionCost(en.greedyGroups)
			en.ubBits.Store(math.Float64bits(en.greedyCost))
		}
	}

	root := s.rootElement()
	root.stripe, root.keyRef, _ = en.table.admit(root.keyWords, 0)
	en.push(root, 0)

	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(id int) {
			defer wg.Done()
			en.run(id)
		}(i)
	}

	// The coordinator waits out the workers, flushing metrics and
	// progress on a coarse tick (the workers never touch the registry
	// delta state, which is not goroutine-safe).
	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	tick := time.NewTicker(50 * time.Millisecond)
	for running := true; running; {
		select {
		case <-joined:
			running = false
		case <-tick.C:
			en.snapshot(&stats)
			frontier := int(en.frontierSize.Load())
			qMax := int(en.qMax.Load())
			en.trMu.Lock()
			s.maybeProgress(prog, &hooks, &stats, frontier, qMax, start)
			en.trMu.Unlock()
			met.flush(&stats, frontier, qMax/s.u, nil, time.Since(start))
			pmet.flush(en)
		}
	}
	tick.Stop()

	en.snapshot(&stats)
	stats.KeyTableEntries = int(en.table.entries.Load())
	stats.KeyTableLoad = en.table.loadAvg()
	defer func() {
		met.flush(&stats, int(en.frontierSize.Load()), int(en.qMax.Load())/s.u, nil, time.Since(start))
		pmet.flush(en)
		met.finish(&stats)
	}()

	if r := abort.Reason(en.aborted.Load()); r != abort.None {
		inFrontier := en.frontierSize.Load()
		if stats.VisitedPaths == 0 {
			inFrontier-- // the never-Generated root is still queued
		}
		groups, cost := en.degradedGroups()
		return s.finishAbort(r, &stats, inFrontier, groups, cost, start, &hooks, met)
	}

	stats.InFrontier = en.frontierSize.Load()
	stats.Duration = time.Since(start)
	s.fillAllocStats(&stats)
	groups, cost, ok := en.result()
	if !ok {
		return nil, errors.New("astar: priority list exhausted without a complete schedule")
	}
	if hooks.stats != nil {
		hooks.stats.SolveStats(&stats)
	}
	if hooks.base != nil {
		hooks.base.Solution(cost, groups)
	}
	return &Result{Groups: groups, Cost: cost, Stats: stats}, nil
}

// result picks the proven answer after a clean termination: the best
// admitted complete schedule, or the greedy incumbent when it is at
// least as cheap (preferring greedy on ties keeps the returned
// partition deterministic across runs — which equal-cost optimum the
// racing workers admitted first is not).
func (en *parEngine) result() ([][]job.ProcID, float64, bool) {
	switch {
	case en.bestGroups != nil && (en.greedyGroups == nil || en.bestCost < en.greedyCost):
		return en.bestGroups, en.bestCost, true
	case en.greedyGroups != nil:
		return en.greedyGroups, en.greedyCost, true
	default:
		return nil, 0, false
	}
}

// degradedGroups is the abort-path answer: best complete, else greedy,
// else a fresh greedy schedule (mirrors Solver.degradedGroups).
func (en *parEngine) degradedGroups() ([][]job.ProcID, float64) {
	if g, c, ok := en.result(); ok {
		return g, c
	}
	g := en.s.greedySchedule()
	if g == nil {
		return nil, 0
	}
	return g, en.s.cost.PartitionCost(g)
}

// loadUB returns the current incumbent bound.
func (en *parEngine) loadUB() float64 {
	return math.Float64frombits(en.ubBits.Load())
}

// run is one expansion worker's main loop.
func (en *parEngine) run(id int) {
	w := en.workers[id]
	idle := 0
	parked := false
	for {
		if en.done.Load() || en.aborted.Load() != 0 {
			return
		}
		if id == 0 {
			en.rebalance()
		}
		if r := en.poll(); r != abort.None {
			en.aborted.CompareAndSwap(0, uint32(r))
			return
		}
		if id > 0 && int32(id) >= en.activeTarget.Load() {
			if !parked {
				parked = true
				en.parks.Add(1)
			}
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if parked {
			parked = false
			en.unparks.Add(1)
		}
		e, stolen := en.popBest(id)
		if e == nil {
			if en.tryTerminate() {
				en.done.Store(true)
				return
			}
			// Empty-handed but the search is live (another worker is
			// mid-expansion, or everything visible is bound-blocked):
			// back off briefly. Gosched first so single-P schedulers
			// (GOMAXPROCS=1) cannot livelock a spinning idler against
			// the worker holding the frontier.
			idle++
			if idle < 8 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
			continue
		}
		idle = 0
		if stolen {
			en.steals.Add(1)
		}
		en.expandElement(w, e)
		en.inflight.Add(-1)
	}
}

// poll mirrors Solver.pollAbort for the parallel engine: context, wall
// clock, expansion cap (checked against the shared pop counter, so the
// overshoot is at most one expansion per worker) and the hard memory
// budget.
func (en *parEngine) poll() abort.Reason {
	s := en.s
	if en.doneCh != nil {
		select {
		case <-en.doneCh:
			return abort.FromContext(s.opts.Ctx)
		default:
		}
	}
	if s.opts.MaxExpansions > 0 && en.visited.Load() >= s.opts.MaxExpansions {
		return abort.Expansions
	}
	if s.opts.TimeLimit > 0 && time.Since(en.start) > s.opts.TimeLimit {
		return abort.Deadline
	}
	if s.opts.MemoryBudget > 0 && en.footprint() > s.opts.MemoryBudget {
		return abort.Memory
	}
	return abort.None
}

// footprint estimates live bytes from shared atomics only (the parallel
// counterpart of Solver.memoryFootprint): pooled elements at solver
// capacities, striped-table entries, and frontier heap entries.
func (en *parEngine) footprint() int64 {
	s := en.s
	perElem := int64(112) + 8*int64(s.keySetWords+s.keyStride+s.u+len(s.parJobs))
	perEntry := int64(s.keyStride)*8 + 24
	return en.allocElems.Load()*perElem +
		en.table.entries.Load()*perEntry +
		en.frontierSize.Load()*48
}

// rebalance is the memory-aware load balancer, run by worker 0: below
// the soft threshold every worker expands; between soft threshold and
// budget the allowed-worker target ramps down linearly (never below
// worker 0), parking the rest instead of aborting; an actual budget
// breach is left to poll, which aborts with abort.Memory.
func (en *parEngine) rebalance() {
	budget := en.s.opts.MemoryBudget
	if budget <= 0 {
		return
	}
	soft := budget * parkSoftNum / parkSoftDen
	fp := en.footprint()
	p := int32(len(en.workers))
	switch {
	case fp <= soft:
		en.activeTarget.Store(p)
	case fp < budget:
		frac := float64(fp-soft) / float64(budget-soft)
		tgt := p - int32(frac*float64(p))
		if tgt < 1 {
			tgt = 1
		}
		en.activeTarget.Store(tgt)
	}
}

// shardOf routes a dismissal key to its frontier shard (high hash bits,
// disjoint from both the stripe and the slot-probe bits).
func (en *parEngine) shardOf(key []uint64) int {
	return int((hashKeyWords(key) >> 52) & uint64(len(en.shards)-1))
}

// push admits an element into its frontier shard. The pushes counter is
// bumped first: the termination double-check relies on every admission
// being counted before it becomes scannable.
func (en *parEngine) push(e *element, f float64) {
	en.pushes.Add(1)
	cur := en.frontierSize.Add(1)
	for {
		m := en.maxQueue.Load()
		if cur <= m || en.maxQueue.CompareAndSwap(m, cur) {
			break
		}
	}
	sh := en.shards[en.shardOf(e.keyWords)]
	sh.mu.Lock()
	sh.seq++
	sh.pq.push(heapEntry{f: f, g: e.g, seq: sh.seq, e: e})
	sh.refreshTop()
	sh.mu.Unlock()
}

// popBest pops the cheapest poppable element visible to worker id:
// first among the shards it owns (index ≡ id mod P), then — stealing —
// from the globally cheapest shard. Elements whose f has reached the
// incumbent bound are never popped: they provably cannot improve the
// answer and stay queued, preserving the sequential InFrontier
// semantics. Returns nil when nothing poppable is visible.
func (en *parEngine) popBest(id int) (*element, bool) {
	ub := en.loadUB()
	best, bestF := -1, math.Inf(1)
	for si := id; si < len(en.shards); si += len(en.workers) {
		if f := math.Float64frombits(en.shards[si].topF.Load()); f < bestF {
			best, bestF = si, f
		}
	}
	stolen := false
	if best < 0 || bestF >= ub {
		best, bestF = -1, math.Inf(1)
		for si := range en.shards {
			if f := math.Float64frombits(en.shards[si].topF.Load()); f < bestF {
				best, bestF = si, f
			}
		}
		if best < 0 || bestF >= ub {
			return nil, false
		}
		stolen = best%len(en.workers) != id
	}
	w := en.workers[id]
	sh := en.shards[best]
	sh.mu.Lock()
	for len(sh.pq) > 0 {
		if sh.pq[0].f >= en.loadUB() {
			break // bound-blocked: cannot improve, stays in frontier
		}
		// Claim the element before its removal is published: the
		// termination scan must never see "all shards empty" while a
		// popped element is between pop and expansion.
		en.inflight.Add(1)
		e := sh.pq.pop().e
		sh.refreshTop()
		if en.table.refG(e.stripe, e.keyRef) < e.g {
			// Stale: superseded by a cheaper same-key sub-path while
			// queued. Recycle into the popping worker's pool — get()
			// re-homes it there.
			en.inflight.Add(-1)
			en.frontierSize.Add(-1)
			en.dismissedStale.Add(1)
			en.traceDismiss(e.q, e.g, DismissStale)
			w.pool.put(e)
			continue
		}
		sh.mu.Unlock()
		en.frontierSize.Add(-1)
		return e, stolen
	}
	sh.mu.Unlock()
	return nil, false
}

// tryTerminate implements the double-check termination protocol: the
// search is over once no element is in flight and no scannable shard
// minimum is below the incumbent bound, with the in-flight and push
// counters unchanged across the scan (a push during the scan, or a
// worker between claim and finish, forces a retry).
func (en *parEngine) tryTerminate() bool {
	p0 := en.pushes.Load()
	if en.inflight.Load() != 0 {
		return false
	}
	minF := math.Inf(1)
	for _, sh := range en.shards {
		if f := math.Float64frombits(sh.topF.Load()); f < minF {
			minF = f
		}
	}
	if en.inflight.Load() != 0 {
		return false
	}
	if en.pushes.Load() != p0 {
		return false
	}
	return minF >= en.loadUB()
}

// expandElement runs one expansion on worker w: the expand event, the
// speculation accounting, candidate generation and child admission —
// the parallel mirror of the sequential pop-loop body.
func (en *parEngine) expandElement(w *Solver, e *element) {
	popIdx := en.visited.Add(1)
	if e.q > 0 {
		en.expanded.Add(1)
		for {
			q := en.qMax.Load()
			if int64(e.q) <= q || en.qMax.CompareAndSwap(q, int64(e.q)) {
				break
			}
		}
	}
	leader := e.set.SmallestAbsent(w.n)
	if en.hooks.base != nil {
		en.trMu.Lock()
		en.hooks.base.Expand(popIdx, e.q/w.u, e.g, e.h, job.ProcID(leader))
		en.trMu.Unlock()
	}
	if leader == 0 {
		// A complete element can only be popped before any bound
		// existed (the pop gate blocks f >= ub otherwise); offering it
		// installs the bound.
		en.offerComplete(e)
		return
	}
	if gmin := en.globalMinF(); e.g+e.h > gmin+specEps {
		// This element's f is above the best still-queued f: a
		// sequential search would have expanded that one first. The
		// expansion is speculative — harmless, because its children
		// re-enter through the shared best-g table and are superseded
		// if a cheaper route arrives.
		en.speculative.Add(1)
	}
	avail := w.available(e, job.ProcID(leader))
	var local Stats
	w.forEachCandidate(e, job.ProcID(leader), avail, &local, func(node []job.ProcID) {
		en.admitChild(w, popIdx, w.makeChildIn(w.pool, e, node))
	})
	if local.Condensed != 0 {
		en.condensed.Add(local.Condensed)
	}
}

// globalMinF scans the shard minima for the cheapest queued f.
func (en *parEngine) globalMinF() float64 {
	minF := math.Inf(1)
	for _, sh := range en.shards {
		if f := math.Float64frombits(sh.topF.Load()); f < minF {
			minF = f
		}
	}
	return minF
}

// admitChild applies the sequential admission pipeline to a freshly
// generated child: Theorem-1 dismissal (optimistic probe before the
// heuristic, re-checked under the stripe lock), incumbent pruning, the
// complete-child bound update, and the frontier push.
func (en *parEngine) admitChild(w *Solver, popIdx int64, child *element) {
	if g, ok := en.table.bestG(child.keyWords); ok && g <= child.g {
		en.dismissedWorse.Add(1)
		en.traceDismiss(child.q, child.g, DismissWorse)
		w.pool.put(child)
		return
	}
	child.h = w.heuristic(child)
	f := child.g + child.h // effective weight is 1 (eligibility)
	ub := en.loadUB()
	if f > ub {
		en.pruned.Add(1)
		en.traceDismiss(child.q, child.g, DismissPruned)
		w.pool.put(child)
		return
	}
	if f >= ub-1e-12 && child.q < w.n &&
		(en.completeSeen.Load() || en.greedyGroups != nil) {
		// A concrete schedule achieves ub: ties cannot beat it.
		en.pruned.Add(1)
		en.traceDismiss(child.q, child.g, DismissPruned)
		w.pool.put(child)
		return
	}
	if child.q == w.n {
		en.offerComplete(child)
	}
	stripe, ref, improved := en.table.admit(child.keyWords, child.g)
	if !improved {
		// Another worker admitted a same-key sub-path at least as
		// cheap between the probe and here.
		en.dismissedWorse.Add(1)
		en.traceDismiss(child.q, child.g, DismissWorse)
		w.pool.put(child)
		return
	}
	child.stripe, child.keyRef = stripe, ref
	en.push(child, f)
	en.generated.Add(1)
}

// offerComplete folds a complete schedule into the shared bound: the
// incumbent Float64bits shrink monotonically via CAS, and the concrete
// groups are reconstructed immediately under bestMu (parents of a
// complete child are expanded elements, never recycled, so the walk is
// safe while other workers run). Equal-cost completions keep the
// byte-lexicographically smallest partition, making the choice
// independent of worker arrival order.
func (en *parEngine) offerComplete(e *element) {
	g := e.g
	for {
		old := en.ubBits.Load()
		if g >= math.Float64frombits(old) {
			break
		}
		if en.ubBits.CompareAndSwap(old, math.Float64bits(g)) {
			break
		}
	}
	en.completeSeen.Store(true)
	en.bestMu.Lock()
	switch {
	case en.bestGroups == nil || g < en.bestCost:
		en.bestGroups, en.bestCost = reconstruct(e), g
	case g == en.bestCost:
		if cand := reconstruct(e); groupsLess(cand, en.bestGroups) {
			en.bestGroups = cand
		}
	}
	en.bestMu.Unlock()
}

// groupsLess orders two partitions lexicographically over their
// flattened process IDs (group count first).
func groupsLess(a, b [][]job.ProcID) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		ga, gb := a[i], b[i]
		if len(ga) != len(gb) {
			return len(ga) < len(gb)
		}
		for j := range ga {
			if ga[j] != gb[j] {
				return ga[j] < gb[j]
			}
		}
	}
	return false
}

// traceDismiss forwards a dismissal to the user tracer under trMu. The
// pop index attributes the child to the most recently counted expansion
// — with concurrent workers exact attribution is meaningless, and trace
// consumers only reconcile totals.
func (en *parEngine) traceDismiss(q int, g float64, r DismissReason) {
	if en.hooks.dismiss == nil {
		return
	}
	pop := en.visited.Load()
	en.trMu.Lock()
	en.hooks.dismiss.Dismiss(pop, q, g, r)
	en.trMu.Unlock()
}

// snapshot copies the engine's atomic counters into st (coordinator
// flushes and the final stats).
func (en *parEngine) snapshot(st *Stats) {
	st.VisitedPaths = en.visited.Load()
	st.Expanded = en.expanded.Load()
	st.Generated = en.generated.Load()
	st.Dismissed = en.dismissedStale.Load()
	st.DismissedWorse = en.dismissedWorse.Load()
	st.Pruned = en.pruned.Load()
	st.Condensed = en.condensed.Load()
	st.MaxQueue = int(en.maxQueue.Load())
	st.Steals = en.steals.Load()
	st.Speculative = en.speculative.Load()
	st.Parked = en.parks.Load()
}

// parallelMetrics is the astar.parallel.* handle set, the parallel
// engine's addition to the DESIGN.md §6 catalogue: steal / speculation
// / park-unpark counters and worker, shard-count, active-worker and
// deepest-shard gauges. Flushed by the coordinator only (the delta
// state is not goroutine-safe, like solverMetrics).
type parallelMetrics struct {
	steals, speculative *telemetry.Counter
	parks, unparks      *telemetry.Counter
	workers, shards     *telemetry.Gauge
	active, shardDepth  *telemetry.Gauge
	last                struct{ steals, spec, parks, unparks int64 }
}

// newParallelMetrics resolves the astar.parallel.* handles, or nil when
// telemetry is disabled.
func newParallelMetrics(r *telemetry.Registry) *parallelMetrics {
	if r == nil {
		return nil
	}
	return &parallelMetrics{
		steals:      r.Counter("astar.parallel.steals"),
		speculative: r.Counter("astar.parallel.speculative"),
		parks:       r.Counter("astar.parallel.parks"),
		unparks:     r.Counter("astar.parallel.unparks"),
		workers:     r.Gauge("astar.parallel.workers"),
		shards:      r.Gauge("astar.parallel.shards"),
		active:      r.Gauge("astar.parallel.active"),
		shardDepth:  r.Gauge("astar.parallel.shard_depth_max"),
	}
}

// flush folds counter deltas into the registry and refreshes the
// gauges, including the deepest shard heap (briefly locking each shard;
// the coordinator runs this a few times per second at most).
func (m *parallelMetrics) flush(en *parEngine) {
	if m == nil {
		return
	}
	steals, spec := en.steals.Load(), en.speculative.Load()
	parks, unparks := en.parks.Load(), en.unparks.Load()
	m.steals.Add(steals - m.last.steals)
	m.speculative.Add(spec - m.last.spec)
	m.parks.Add(parks - m.last.parks)
	m.unparks.Add(unparks - m.last.unparks)
	m.last.steals, m.last.spec = steals, spec
	m.last.parks, m.last.unparks = parks, unparks
	m.workers.Set(int64(len(en.workers)))
	m.shards.Set(int64(len(en.shards)))
	m.active.Set(int64(en.activeTarget.Load()))
	deepest := 0
	for _, sh := range en.shards {
		sh.mu.Lock()
		if len(sh.pq) > deepest {
			deepest = len(sh.pq)
		}
		sh.mu.Unlock()
	}
	m.shardDepth.Set(int64(deepest))
}
