package astar

import (
	"sync"

	"cosched/internal/job"
)

// nodeCosts returns the per-process effective degradations of a node
// (d(p, node\{p}) for each member, in node order), cached per node.
//
// The cache key is canonical under the active job symmetries: members of
// a symmetric parallel job contribute their job identity instead of their
// rank, so the thousands of rank permutations a PE-heavy search touches
// share one entry. Job processes occupy contiguous ID ranges, so the
// class sequence of a sorted node is identical across equivalent nodes
// and the cached values line up position by position.
//
// Only non-additive (SDC) oracles use this path; additive oracles compute
// costs directly from the interference matrix.
func (s *Solver) nodeCosts(node []job.ProcID) []float64 {
	key := s.canonicalNodeKey(node)
	ncs := s.ncs
	ncs.nodeCostMu.Lock()
	if v, ok := ncs.nodeCostCache[key]; ok {
		ncs.nodeCostMu.Unlock()
		return v
	}
	ncs.nodeCostMu.Unlock()
	v := make([]float64, len(node))
	var others [16]job.ProcID
	for i, p := range node {
		co := others[:0]
		co = append(co, node[:i]...)
		co = append(co, node[i+1:]...)
		v[i] = s.cost.ProcCost(p, co)
	}
	ncs.nodeCostMu.Lock()
	ncs.nodeCostCache[key] = v
	ncs.nodeCostMu.Unlock()
	return v
}

// canonicalNodeKey packs the node's members, replacing symmetric ranks by
// their job identity.
func (s *Solver) canonicalNodeKey(node []job.ProcID) string {
	b := make([]byte, 0, len(node)*3)
	for _, p := range node {
		if s.peAll != nil && s.peAll.Has(int(p)) {
			pi := s.procPar[int(p)-1]
			b = append(b, 0xFF, byte(pi), byte(pi>>8))
			continue
		}
		b = append(b, 0, byte(p), byte(int(p)>>8))
	}
	return string(b)
}

// nodeCostState is the node-cost memo shared by a solver and all of its
// parallel-engine worker clones (Solver.ncs). The mutex makes it safe
// for concurrent expansion workers; on the serial path it is
// uncontended.
type nodeCostState struct {
	nodeCostMu    sync.Mutex
	nodeCostCache map[string][]float64
}
