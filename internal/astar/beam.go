package astar

import (
	"errors"
	"sort"
	"time"

	"cosched/internal/abort"
	"cosched/internal/job"
)

// solveBeam runs a layered beam search over the trimmed co-scheduling
// graph: the frontier advances one machine (path depth) at a time,
// keeping at each depth the BeamWidth sub-paths with the smallest
// g + HWeight·h. Work and memory are strictly bounded by
// BeamWidth × KPerLevel per layer and (n/u) layers, which is what lets
// the thousand-process HA* runs of Figs. 12-13 finish; the price is that
// — unlike the priority-list search — a dropped sub-path can never be
// revisited.
//
// Per-depth best-by-key dedup runs on the same word-packed gTable as the
// priority-list search (reset between depths), with superseded and
// beam-trimmed children — which have no descendants yet — recycled into
// the element pool. The depth's survivors are ordered by (f, key) with
// the key compared byte-lexicographically (compareKeyWords), preserving
// the legacy string-key tie-break bit for bit.
func (s *Solver) solveBeam() (*Result, error) {
	start := time.Now()
	var stats Stats
	var frontier []*element
	qMax := 0
	hooks := newTracerHooks(s.opts.Tracer)
	met := newSolverMetrics(s.opts.Metrics)
	prog := s.progressReporter(&hooks)
	met.begin(s)
	stats.PrepareDuration = s.prepDur
	s.prepDur = 0
	if hooks.start != nil {
		hooks.start.SolveStart(s.n, s.u, s.searchMethod())
	}
	defer func() {
		met.flush(&stats, len(frontier), qMax/s.u, s.table, time.Since(start))
		met.finish(&stats)
	}()
	hw := s.opts.HWeight
	if hw < 1 {
		hw = 1
	}

	s.table = newGTable(s.keyStride)
	root := s.rootElement()
	done := s.abortDone()

	frontier = []*element{root}
	depths := s.n / s.u
	for d := 0; d < depths; d++ {
		t := s.table
		t.reset()
		for idx, e := range frontier {
			// Polled before the element is counted, so an aborted
			// trace's admission identity reconciles: this depth's
			// survivors (t.count) plus the frontier elements not yet
			// expanded (q > 0 excludes the depth-0 root, which was
			// never Generated) are exactly the in-frontier population.
			if reason := s.pollAbort(done, &stats, start, len(frontier)); reason != abort.None {
				inFrontier := int64(t.count)
				for _, rest := range frontier[idx:] {
					if rest.q > 0 {
						inFrontier++
					}
				}
				groups, cost := s.degradedGroups(nil, nil)
				return s.finishAbort(reason, &stats, inFrontier, groups, cost, start, &hooks, met)
			}
			stats.VisitedPaths++
			if e.q > 0 {
				stats.Expanded++
				if e.q > qMax {
					qMax = e.q
				}
			}
			leader := e.set.SmallestAbsent(s.n)
			if hooks.base != nil {
				hooks.base.Expand(stats.VisitedPaths, e.q/s.u, e.g, e.h, job.ProcID(leader))
			}
			if leader == 0 {
				continue
			}
			avail := s.available(e, job.ProcID(leader))
			s.forEachCandidate(e, job.ProcID(leader), avail, &stats, func(node []job.ProcID) {
				child := s.makeChildIn(s.pool, e, node)
				ref := t.find(child.keyWords)
				if ref >= 0 && t.gs[ref] <= child.g {
					stats.DismissedWorse++
					if hooks.dismiss != nil {
						hooks.dismiss.Dismiss(stats.VisitedPaths, child.q, child.g, DismissWorse)
					}
					s.recycle(child)
					return
				}
				child.h = s.heuristic(child)
				if ref >= 0 {
					// The superseded same-key child was generated this
					// depth and never expanded; recycle it.
					stats.Dismissed++
					if hooks.dismiss != nil {
						hooks.dismiss.Dismiss(stats.VisitedPaths, t.elems[ref].q, t.gs[ref], DismissStale)
					}
					s.recycle(t.elems[ref])
					t.gs[ref] = child.g
					t.elems[ref] = child
				} else {
					t.insert(child.keyWords, child.g, child)
				}
				stats.Generated++
			})
		}
		if t.count == 0 {
			return nil, errors.New("astar: beam search produced no children (malformed batch)")
		}
		next := make([]*element, 0, t.count)
		next = append(next, t.elems...)
		sort.Slice(next, func(i, j int) bool {
			fi, fj := next[i].g+hw*next[i].h, next[j].g+hw*next[j].h
			if fi != fj {
				return fi < fj
			}
			return compareKeyWords(next[i].keyWords, next[j].keyWords) < 0
		})
		if len(next) > s.opts.BeamWidth {
			for _, e := range next[s.opts.BeamWidth:] {
				stats.BeamTrimmed++
				if hooks.dismiss != nil {
					hooks.dismiss.Dismiss(stats.VisitedPaths, e.q, e.g, DismissBeamTrim)
				}
				s.recycle(e) // trimmed before expansion: no descendants
			}
			next = next[:s.opts.BeamWidth]
		}
		if len(next) > stats.MaxQueue {
			stats.MaxQueue = len(next)
		}
		frontier = next
		s.maybeProgress(prog, &hooks, &stats, len(frontier), (d+1)*s.u, start)
		met.flush(&stats, len(frontier), d+1, s.table, time.Since(start))
	}

	best := frontier[0]
	for _, e := range frontier[1:] {
		if e.g < best.g {
			best = e
		}
	}
	stats.InFrontier = int64(len(frontier))
	stats.Duration = time.Since(start)
	s.fillAllocStats(&stats)
	groups := reconstruct(best)
	if hooks.stats != nil {
		hooks.stats.SolveStats(&stats)
	}
	if hooks.base != nil {
		hooks.base.Solution(best.g, groups)
	}
	return &Result{Groups: groups, Cost: best.g, Stats: stats}, nil
}
