package astar

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cosched/internal/abort"
	"cosched/internal/job"
)

// solveBeam runs a layered beam search over the trimmed co-scheduling
// graph: the frontier advances one machine (path depth) at a time,
// keeping at each depth the BeamWidth sub-paths with the smallest
// g + HWeight·h. Work and memory are strictly bounded by
// BeamWidth × KPerLevel per layer and (n/u) layers, which is what lets
// the thousand-process HA* runs of Figs. 12-13 finish; the price is that
// — unlike the priority-list search — a dropped sub-path can never be
// revisited.
//
// Per-depth best-by-key dedup runs on the same word-packed gTable as the
// priority-list search (reset between depths), with superseded and
// beam-trimmed children — which have no descendants yet — recycled into
// the element pool. The depth's survivors are ordered by (f, key) with
// the key compared byte-lexicographically (compareKeyWords), preserving
// the legacy string-key tie-break bit for bit.
//
// With Options.Parallelism > 1 each depth's child generation (candidate
// enumeration, oracle queries, heuristics — all the expensive work) fans
// out over worker clones, while the admission merge that follows replays
// the sequential order exactly; results, stats and trace events are
// therefore bit-identical to the sequential beam search (see
// beamGenerate).
func (s *Solver) solveBeam() (*Result, error) {
	start := time.Now()
	var stats Stats
	var frontier []*element
	qMax := 0
	hooks := newTracerHooks(s.opts.Tracer)
	met := newSolverMetrics(s.opts.Metrics)
	prog := s.progressReporter(&hooks)
	met.begin(s)
	stats.PrepareDuration = s.prepDur
	s.prepDur = 0
	bp := s.beamParallelism()
	stats.Parallelism = bp
	var genWorkers []*Solver
	var gens [][]*element
	if bp > 1 {
		genWorkers = s.ensureClones(bp)
		if pt, ok := s.opts.Tracer.(ParallelismTracer); ok {
			pt.SetParallelism(bp)
		}
	}
	if hooks.start != nil {
		hooks.start.SolveStart(s.n, s.u, s.searchMethod())
	}
	defer func() {
		met.flush(&stats, len(frontier), qMax/s.u, s.table, time.Since(start))
		met.finish(&stats)
	}()
	hw := s.opts.HWeight
	if hw < 1 {
		hw = 1
	}

	s.table = newGTable(s.keyStride)
	root := s.rootElement()
	done := s.abortDone()

	frontier = []*element{root}
	depths := s.n / s.u
	for d := 0; d < depths; d++ {
		t := s.table
		t.reset()
		if bp > 1 {
			gens = make([][]*element, len(frontier))
			s.beamGenerate(genWorkers, frontier, gens, &stats, done, start)
		}
		for idx, e := range frontier {
			// Polled before the element is counted, so an aborted
			// trace's admission identity reconciles: this depth's
			// survivors (t.count) plus the frontier elements not yet
			// expanded (q > 0 excludes the depth-0 root, which was
			// never Generated) are exactly the in-frontier population.
			if reason := s.pollAbort(done, &stats, start, len(frontier)); reason != abort.None {
				// Pre-generated children of unmerged elements were
				// never admitted; return them to their pools.
				if bp > 1 {
					for _, kids := range gens[idx:] {
						for _, child := range kids {
							s.recycle(child)
						}
					}
				}
				inFrontier := int64(t.count)
				for _, rest := range frontier[idx:] {
					if rest.q > 0 {
						inFrontier++
					}
				}
				groups, cost := s.degradedGroups(nil, nil)
				return s.finishAbort(reason, &stats, inFrontier, groups, cost, start, &hooks, met)
			}
			stats.VisitedPaths++
			if e.q > 0 {
				stats.Expanded++
				if e.q > qMax {
					qMax = e.q
				}
			}
			leader := e.set.SmallestAbsent(s.n)
			if hooks.base != nil {
				hooks.base.Expand(stats.VisitedPaths, e.q/s.u, e.g, e.h, job.ProcID(leader))
			}
			if leader == 0 {
				continue
			}
			admitBeam := func(child *element) {
				ref := t.find(child.keyWords)
				if ref >= 0 && t.gs[ref] <= child.g {
					stats.DismissedWorse++
					if hooks.dismiss != nil {
						hooks.dismiss.Dismiss(stats.VisitedPaths, child.q, child.g, DismissWorse)
					}
					s.recycle(child)
					return
				}
				if bp == 1 {
					// The parallel generators precompute h; the serial
					// path spends it only on children that survive the
					// worse-check above.
					child.h = s.heuristic(child)
				}
				if ref >= 0 {
					// The superseded same-key child was generated this
					// depth and never expanded; recycle it.
					stats.Dismissed++
					if hooks.dismiss != nil {
						hooks.dismiss.Dismiss(stats.VisitedPaths, t.elems[ref].q, t.gs[ref], DismissStale)
					}
					s.recycle(t.elems[ref])
					t.gs[ref] = child.g
					t.elems[ref] = child
				} else {
					t.insert(child.keyWords, child.g, child)
				}
				stats.Generated++
			}
			if bp > 1 {
				// Serial merge of the pre-generated children, in exactly
				// the order the sequential loop would have produced them.
				for _, child := range gens[idx] {
					admitBeam(child)
				}
				gens[idx] = nil
			} else {
				avail := s.available(e, job.ProcID(leader))
				s.forEachCandidate(e, job.ProcID(leader), avail, &stats, func(node []job.ProcID) {
					admitBeam(s.makeChildIn(s.pool, e, node))
				})
			}
		}
		if t.count == 0 {
			return nil, errors.New("astar: beam search produced no children (malformed batch)")
		}
		next := make([]*element, 0, t.count)
		next = append(next, t.elems...)
		sort.Slice(next, func(i, j int) bool {
			fi, fj := next[i].g+hw*next[i].h, next[j].g+hw*next[j].h
			if fi != fj {
				return fi < fj
			}
			return compareKeyWords(next[i].keyWords, next[j].keyWords) < 0
		})
		if len(next) > s.opts.BeamWidth {
			for _, e := range next[s.opts.BeamWidth:] {
				stats.BeamTrimmed++
				if hooks.dismiss != nil {
					hooks.dismiss.Dismiss(stats.VisitedPaths, e.q, e.g, DismissBeamTrim)
				}
				s.recycle(e) // trimmed before expansion: no descendants
			}
			next = next[:s.opts.BeamWidth]
		}
		if len(next) > stats.MaxQueue {
			stats.MaxQueue = len(next)
		}
		frontier = next
		s.maybeProgress(prog, &hooks, &stats, len(frontier), (d+1)*s.u, start)
		met.flush(&stats, len(frontier), d+1, s.table, time.Since(start))
	}

	best := frontier[0]
	for _, e := range frontier[1:] {
		if e.g < best.g {
			best = e
		}
	}
	stats.InFrontier = int64(len(frontier))
	stats.Duration = time.Since(start)
	s.fillAllocStats(&stats)
	groups := reconstruct(best)
	if hooks.stats != nil {
		hooks.stats.SolveStats(&stats)
	}
	if hooks.base != nil {
		hooks.base.Solution(best.g, groups)
	}
	return &Result{Groups: groups, Cost: best.g, Stats: stats}, nil
}

// beamParallelism resolves Options.Parallelism for the beam search: the
// layered structure lets any thread-safe heuristic parallelise (the
// merge replays sequential admission exactly, so even the inadmissible
// HPerProcAvg estimator stays bit-identical); only the lazily-built
// level-minima strategies (HStrategy1/2), whose tables are not
// goroutine-safe, force the sequential path.
func (s *Solver) beamParallelism() int {
	p := s.opts.Parallelism
	if p <= 1 {
		return 1
	}
	if p > maxParallelism {
		p = maxParallelism
	}
	switch s.opts.H {
	case HNone, HPerProc, HPerProcAvg:
		return p
	default:
		return 1
	}
}

// beamGenerate fans one depth's child generation over the worker
// clones: worker wi expands frontier elements wi, wi+P, wi+2P, ... into
// gens (children in candidate order, h precomputed), touching only its
// own pool and scratch. No admission state is shared — counting,
// dedup and trace events all happen in the caller's serial merge, which
// is what keeps the parallel beam bit-identical to the sequential one.
// Workers only poll the cheap abort signals (context, wall clock); the
// merge loop re-polls per element and settles the abort accounting.
func (s *Solver) beamGenerate(workers []*Solver, frontier []*element, gens [][]*element, stats *Stats, done <-chan struct{}, start time.Time) {
	var wg sync.WaitGroup
	var stop atomic.Bool
	condensed := make([]int64, len(workers))
	wg.Add(len(workers))
	for wi := range workers {
		go func(wi int) {
			defer wg.Done()
			w := workers[wi]
			var local Stats
			for i := wi; i < len(frontier); i += len(workers) {
				if stop.Load() {
					break
				}
				if done != nil {
					select {
					case <-done:
						stop.Store(true)
					default:
					}
				}
				if w.opts.TimeLimit > 0 && time.Since(start) > w.opts.TimeLimit {
					stop.Store(true)
				}
				if stop.Load() {
					break
				}
				e := frontier[i]
				leader := e.set.SmallestAbsent(w.n)
				if leader == 0 {
					continue
				}
				avail := w.available(e, job.ProcID(leader))
				var kids []*element
				w.forEachCandidate(e, job.ProcID(leader), avail, &local, func(node []job.ProcID) {
					child := w.makeChildIn(w.pool, e, node)
					child.h = w.heuristic(child)
					kids = append(kids, child)
				})
				gens[i] = kids
			}
			condensed[wi] = local.Condensed
		}(wi)
	}
	wg.Wait()
	for _, c := range condensed {
		stats.Condensed += c
	}
}
