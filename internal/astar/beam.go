package astar

import (
	"errors"
	"sort"
	"time"

	"cosched/internal/bitset"
	"cosched/internal/job"
)

// solveBeam runs a layered beam search over the trimmed co-scheduling
// graph: the frontier advances one machine (path depth) at a time,
// keeping at each depth the BeamWidth sub-paths with the smallest
// g + HWeight·h. Work and memory are strictly bounded by
// BeamWidth × KPerLevel per layer and (n/u) layers, which is what lets
// the thousand-process HA* runs of Figs. 12-13 finish; the price is that
// — unlike the priority-list search — a dropped sub-path can never be
// revisited.
func (s *Solver) solveBeam() (*Result, error) {
	start := time.Now()
	var stats Stats
	hw := s.opts.HWeight
	if hw < 1 {
		hw = 1
	}

	root := &element{set: bitset.New(s.n), hSerial: s.hSerialAll}
	if len(s.parJobs) > 0 {
		root.jobMax = make([]float64, len(s.parJobs))
	}
	root.key = s.elementKey(root.set)

	frontier := []*element{root}
	depths := s.n / s.u
	for d := 0; d < depths; d++ {
		bestByKey := make(map[string]*element)
		for _, e := range frontier {
			stats.VisitedPaths++
			leader := e.set.SmallestAbsent(s.n)
			if leader == 0 {
				continue
			}
			avail := s.available(e, job.ProcID(leader))
			s.forEachCandidate(e, job.ProcID(leader), avail, &stats, func(node []job.ProcID) {
				child := s.makeChild(e, node)
				if prev, ok := bestByKey[child.key]; ok && prev.g <= child.g {
					return
				}
				child.h = s.heuristic(child)
				bestByKey[child.key] = child
				stats.Generated++
			})
		}
		if len(bestByKey) == 0 {
			return nil, errors.New("astar: beam search produced no children (malformed batch)")
		}
		next := make([]*element, 0, len(bestByKey))
		for _, e := range bestByKey {
			next = append(next, e)
		}
		sort.Slice(next, func(i, j int) bool {
			fi, fj := next[i].g+hw*next[i].h, next[j].g+hw*next[j].h
			if fi != fj {
				return fi < fj
			}
			return next[i].key < next[j].key
		})
		if len(next) > s.opts.BeamWidth {
			next = next[:s.opts.BeamWidth]
		}
		if len(next) > stats.MaxQueue {
			stats.MaxQueue = len(next)
		}
		frontier = next
	}

	best := frontier[0]
	for _, e := range frontier[1:] {
		if e.g < best.g {
			best = e
		}
	}
	stats.Duration = time.Since(start)
	return &Result{Groups: reconstruct(best), Cost: best.g, Stats: stats}, nil
}
