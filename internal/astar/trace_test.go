package astar

import (
	"strings"
	"testing"

	"cosched/internal/degradation"
)

func TestWriterTracer(t *testing.T) {
	g := syntheticGraph(t, 8, 2, 1, degradation.ModePC)
	var sb strings.Builder
	s, err := NewSolver(g, Options{H: HPerProc, Tracer: &WriterTracer{W: &sb}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "pop ") {
		t.Error("no expansion lines traced")
	}
	if !strings.Contains(out, "solution cost=") {
		t.Error("no solution line traced")
	}
	if !strings.Contains(out, "<1,") {
		t.Error("solution nodes not rendered")
	}
	_ = res
}

func TestWriterTracerEvery(t *testing.T) {
	g := syntheticGraph(t, 8, 2, 2, degradation.ModePC)
	var all, sampled strings.Builder
	s1, err := NewSolver(g, Options{H: HPerProc, Tracer: &WriterTracer{W: &all}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Solve(); err != nil {
		t.Fatal(err)
	}
	s2, err := NewSolver(g, Options{H: HPerProc, Tracer: &WriterTracer{W: &sampled, Every: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Solve(); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sampled.String(), "pop ") >= strings.Count(all.String(), "pop ") {
		t.Error("sampling did not reduce trace volume")
	}
}
