package astar

import (
	"sync"
	"sync/atomic"
)

// stripedTable is the concurrent best-g table of the parallel engine
// (parsolve.go): the dismissal keyspace is split over power-of-two lock
// stripes by high hash bits, each stripe holding an independent gTable
// behind its own mutex. Expansion workers therefore contend only when
// two children hash into the same stripe, and the per-stripe critical
// sections are the same few-probe find/insert the sequential table runs.
//
// Entry references are (stripe, ref) pairs: a gTable never deletes or
// reorders entries, so both halves stay stable for the table's lifetime
// and elements cache them for the O(1) pop-staleness check.
type stripedTable struct {
	mask    uint64
	stripes []tableStripe
	// entries counts admitted keys across all stripes; read lock-free by
	// the memory-footprint estimator and the end-of-solve stats.
	entries atomic.Int64
}

// tableStripe pairs one gTable shard with its lock, padded out so
// neighbouring stripe locks do not share a cache line.
type tableStripe struct {
	mu sync.Mutex
	t  *gTable
	_  [40]byte
}

// newStripedTable builds a table of nStripes (a power of two) shards,
// each starting at a fraction of the sequential table's initial slot
// count so an idle parallel solve does not cost nStripes full tables.
func newStripedTable(stride, nStripes int) *stripedTable {
	st := &stripedTable{
		mask:    uint64(nStripes - 1),
		stripes: make([]tableStripe, nStripes),
	}
	for i := range st.stripes {
		st.stripes[i].t = newGTableSized(stride, 256)
	}
	return st
}

// stripeOf maps a key hash to its stripe. The stripe index takes high
// hash bits so it stays independent of the low bits the in-stripe slot
// probe consumes (and of the frontier-shard bits, see parsolve.go).
func (st *stripedTable) stripeOf(h uint64) int32 {
	return int32((h >> 40) & st.mask)
}

// bestG returns the recorded best distance for key, or ok=false when the
// key is absent. This is the optimistic pre-heuristic probe of the
// Theorem-1 dismissal: a racing improvement between this read and a
// later admit is re-checked under the stripe lock there.
func (st *stripedTable) bestG(key []uint64) (float64, bool) {
	sp := &st.stripes[st.stripeOf(hashKeyWords(key))]
	sp.mu.Lock()
	ref := sp.t.find(key)
	if ref < 0 {
		sp.mu.Unlock()
		return 0, false
	}
	g := sp.t.gs[ref]
	sp.mu.Unlock()
	return g, true
}

// admit records key at distance g if no same-key entry at least as cheap
// exists, returning the entry handle and whether the record was made
// (improved=false is the Theorem-1 dismissal of the caller's child).
func (st *stripedTable) admit(key []uint64, g float64) (stripe, ref int32, improved bool) {
	stripe = st.stripeOf(hashKeyWords(key))
	sp := &st.stripes[stripe]
	sp.mu.Lock()
	ref = sp.t.find(key)
	if ref >= 0 {
		if sp.t.gs[ref] <= g {
			sp.mu.Unlock()
			return stripe, ref, false
		}
		sp.t.gs[ref] = g
		sp.mu.Unlock()
		return stripe, ref, true
	}
	ref = sp.t.insert(key, g, nil)
	sp.mu.Unlock()
	st.entries.Add(1)
	return stripe, ref, true
}

// refG returns the current best distance of an admitted entry — the
// pop-staleness check: an element whose g exceeds this was superseded
// while queued.
func (st *stripedTable) refG(stripe, ref int32) float64 {
	sp := &st.stripes[stripe]
	sp.mu.Lock()
	g := sp.t.gs[ref]
	sp.mu.Unlock()
	return g
}

// loadAvg returns the entry-weighted mean slot occupancy across stripes,
// the parallel counterpart of gTable.load for Stats.KeyTableLoad. Only
// called after the workers have joined.
func (st *stripedTable) loadAvg() float64 {
	var count, slots int
	for i := range st.stripes {
		count += st.stripes[i].t.count
		slots += len(st.stripes[i].t.slots)
	}
	if slots == 0 {
		return 0
	}
	return float64(count) / float64(slots)
}

// newGTableSized is newGTable with a chosen initial slot count (a power
// of two); the striped table starts its shards small.
func newGTableSized(stride, slots int) *gTable {
	if stride < 1 {
		stride = 1
	}
	return &gTable{
		stride: stride,
		slots:  make([]int32, slots),
	}
}
