package astar

import (
	"cosched/internal/job"
)

// forEachClassCandidate enumerates the candidate nodes for a level as
// multisets over process equivalence classes: every PE job forms one
// class (its ranks are interchangeable — same profile, no communication),
// while serial processes, PC ranks and padding processes stay singleton
// classes. For each multiset one representative node is produced, built
// from the lowest-ID available ranks of each PE class.
//
// The enumeration is exact under PE symmetry: every raw candidate node of
// the level is equivalent (identical weight, identical completion costs)
// to exactly one representative produced here.
func (s *Solver) forEachClassCandidate(leader job.ProcID, avail []job.ProcID, fn func(node []job.ProcID) bool) {
	r := s.u - 1
	if r == 0 {
		fn([]job.ProcID{leader})
		return
	}
	if len(avail) < r {
		return
	}
	b := s.gr.Batch
	// Build the class table: classes[i] lists available members (PE
	// classes carry all their available ranks; singleton classes one).
	var classes [][]job.ProcID
	peClass := make(map[job.JobID]int)
	imClass := -1
	for _, p := range avail {
		j := b.JobOf(p)
		if j == nil {
			// padding processes are mutually interchangeable
			if imClass < 0 {
				imClass = len(classes)
				classes = append(classes, nil)
			}
			classes[imClass] = append(classes[imClass], p)
			continue
		}
		if s.symmetricJob(j.Kind) {
			ci, ok := peClass[j.ID]
			if !ok {
				ci = len(classes)
				peClass[j.ID] = ci
				classes = append(classes, nil)
			}
			classes[ci] = append(classes[ci], p)
			continue
		}
		classes = append(classes, []job.ProcID{p})
	}

	node := make([]job.ProcID, 0, s.u)
	node = append(node, leader)
	// Recursive multiset enumeration: choose how many members to take
	// from each class in order.
	var rec func(ci, need int) bool
	rec = func(ci, need int) bool {
		if need == 0 {
			sorted := append([]job.ProcID(nil), node...)
			sortNode(sorted)
			return fn(sorted)
		}
		if ci >= len(classes) {
			return true
		}
		// Feasibility: enough members remain in later classes.
		remaining := 0
		for i := ci; i < len(classes) && remaining < need; i++ {
			remaining += len(classes[i])
		}
		if remaining < need {
			return true
		}
		maxTake := len(classes[ci])
		if maxTake > need {
			maxTake = need
		}
		for take := 0; take <= maxTake; take++ {
			node = append(node, classes[ci][:take]...)
			ok := rec(ci+1, need-take)
			node = node[:len(node)-take]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0, r)
}
