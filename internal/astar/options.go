// Package astar implements the paper's primary contribution: the Optimal
// A*-search (OA*) and Heuristic A*-search (HA*) algorithms over the
// co-scheduling graph (§III, §IV).
//
// The search extends textbook A* in the two ways §III-C describes:
//
//  1. Valid paths. The priority list holds *process sets* (sub-paths keyed
//     by the set of processes they contain), and a sub-path is dismissed
//     only when a recorded sub-path over exactly the same process set has
//     a shorter distance (Theorem 1). Plain per-node dismissal would lose
//     optimal valid paths.
//  2. Parallel-aware distances. The distance of a sub-path follows Eq. 13:
//     serial degradations add up, while each parallel job contributes the
//     running maximum over its scheduled processes.
//
// HA* is OA* with each level's candidate nodes capped to the first
// MER = n/u valid nodes in ascending weight order (§IV).
package astar

import (
	"fmt"
	"time"

	"cosched/internal/job"
)

// HStrategy selects the h(v) estimator (§III-D).
type HStrategy int

const (
	// HNone uses h = 0: the search degenerates to uniform-cost
	// (Dijkstra) search, which is exactly the O-SVP algorithm of the
	// authors' earlier work [33].
	HNone HStrategy = iota
	// HStrategy1 is the paper's Strategy 1: take the (n-q)/u smallest
	// node weights from all nodes of the levels below v, regardless of
	// validity. Requires the graph's levels to be enumerable.
	HStrategy1
	// HStrategy2 is the paper's Strategy 2: take the smallest node
	// weight of each of the (n-q)/u cheapest remaining valid levels.
	// Requires per-level minima, exact when levels are enumerable and a
	// pair-based lower bound otherwise.
	HStrategy2
	// HPerProc is this implementation's scalable tightening of Strategy
	// 2: every unscheduled serial process contributes its cheapest
	// possible pair degradation (for additive-pairwise oracles, the sum
	// of its u-1 cheapest pair degradations), and every untouched
	// parallel job the largest such bound among its processes. O(1)
	// amortised per child, admissible under the co-runner monotonicity
	// of the oracle.
	HPerProc
	// HPerProcAvg estimates instead of bounds: each unscheduled process
	// is charged its average pairwise degradation times (u-1)
	// co-runners. Not admissible — rejected for OA*; it is the strongly
	// goal-directed estimator HA* uses on large batches (Figs. 12-13
	// scale).
	HPerProcAvg
)

// String implements fmt.Stringer.
func (h HStrategy) String() string {
	switch h {
	case HNone:
		return "none"
	case HStrategy1:
		return "strategy1"
	case HStrategy2:
		return "strategy2"
	case HPerProc:
		return "perproc"
	case HPerProcAvg:
		return "perproc-avg"
	default:
		return fmt.Sprintf("HStrategy(%d)", int(h))
	}
}

// Options configures one search.
type Options struct {
	// H selects the h(v) strategy. The zero value is HNone.
	H HStrategy
	// KPerLevel, when positive, caps how many candidate nodes (in
	// ascending weight order) the search attempts per level: the HA*
	// trimming of §IV. Zero means unlimited (OA*).
	KPerLevel int
	// HWeight inflates the heuristic in the priority: f = g + HWeight·h
	// (weighted A*). Values above 1 make the search strongly
	// depth-directed, which is what lets HA* finish thousand-process
	// batches; they forfeit within-trimmed-graph optimality, so OA*
	// (KPerLevel == 0) rejects HWeight > 1. Zero means 1.
	HWeight float64
	// BeamWidth, when positive, caps how many elements the search
	// expands at each path depth (number of machines filled). It turns
	// HA* into a beam search with strictly bounded work
	// (BeamWidth × n/u expansions), the regime the thousand-process
	// experiments need. Zero means unbounded. Like HWeight > 1 it
	// forfeits optimality, so OA* rejects it.
	BeamWidth int
	// Condense enables the communication-aware process condensation of
	// §III-E: candidate nodes with identical condensation keys are
	// attempted once per expansion.
	Condense bool
	// ExactParallel extends the dismissal key with the per-parallel-job
	// running maxima, restoring provable optimality of Eq. 13 accounting
	// at the cost of a larger search space (DESIGN.md §3).
	ExactParallel bool
	// UseIncumbent primes the search with a greedy upper bound and
	// prunes children whose f exceeds it. Never affects optimality.
	UseIncumbent bool
	// MaxExpansions aborts the search after this many pops (0 = no
	// limit); the search then returns an error.
	MaxExpansions int64
	// TimeLimit aborts the search after this much wall-clock time
	// (0 = none); the search then returns an error. Unlike
	// MaxExpansions it also bounds searches whose per-expansion work is
	// huge (wide levels).
	TimeLimit time.Duration
	// Tracer, when non-nil, receives search events (expansions and the
	// final solution); see WriterTracer for a text renderer.
	Tracer Tracer
	// Workers parallelises child evaluation within each expansion (the
	// paper's §VII future-work direction). Values above 1 spread the
	// degradation-oracle queries of one expansion across goroutines;
	// the search order and result stay deterministic. Only the
	// table-free h strategies (HNone, HPerProc, HPerProcAvg) support
	// it; 0 and 1 mean serial.
	Workers int
}

// Stats reports the work a search performed.
type Stats struct {
	// VisitedPaths counts popped (expanded) priority-list elements, the
	// paper's Table IV metric.
	VisitedPaths int64
	// Generated counts child sub-paths pushed into the priority list.
	Generated int64
	// Condensed counts candidate nodes skipped by condensation.
	Condensed int64
	// Pruned counts children discarded against the incumbent bound.
	Pruned int64
	// MaxQueue is the high-water mark of the priority list.
	MaxQueue int
	// Duration is the wall-clock solving time.
	Duration time.Duration
	// ElemAllocated counts search elements newly allocated by the pools;
	// ElemReused counts elements served from a free list instead. Their
	// ratio is the headline of the pooled hot path: on large searches
	// reuse dominates by orders of magnitude.
	ElemAllocated int64
	ElemReused    int64
	// KeyTableEntries is the number of distinct dismissal keys recorded;
	// KeyTableLoad the open-addressing slot occupancy in [0,1] at the end
	// of the solve (the beam search reports its last depth).
	KeyTableEntries int
	KeyTableLoad    float64
}

// Result is a complete co-schedule found by the search.
type Result struct {
	// Groups is the partition of processes onto machines, in valid-path
	// order (ascending leaders).
	Groups [][]job.ProcID
	// Cost is the Eq. 13 objective of the schedule under the search's
	// cost model.
	Cost float64
	// Stats describes the search effort.
	Stats Stats
}
