package astar

import (
	"context"
	"fmt"
	"time"

	"cosched/internal/abort"
	"cosched/internal/job"
	"cosched/internal/telemetry"
)

// HStrategy selects the h(v) estimator (§III-D).
type HStrategy int

const (
	// HNone uses h = 0: the search degenerates to uniform-cost
	// (Dijkstra) search, which is exactly the O-SVP algorithm of the
	// authors' earlier work [33].
	HNone HStrategy = iota
	// HStrategy1 is the paper's Strategy 1: take the (n-q)/u smallest
	// node weights from all nodes of the levels below v, regardless of
	// validity. Requires the graph's levels to be enumerable.
	HStrategy1
	// HStrategy2 is the paper's Strategy 2: take the smallest node
	// weight of each of the (n-q)/u cheapest remaining valid levels.
	// Requires per-level minima, exact when levels are enumerable and a
	// pair-based lower bound otherwise.
	HStrategy2
	// HPerProc is this implementation's scalable tightening of Strategy
	// 2: every unscheduled serial process contributes its cheapest
	// possible pair degradation (for additive-pairwise oracles, the sum
	// of its u-1 cheapest pair degradations), and every untouched
	// parallel job the largest such bound among its processes. O(1)
	// amortised per child, admissible under the co-runner monotonicity
	// of the oracle.
	HPerProc
	// HPerProcAvg estimates instead of bounds: each unscheduled process
	// is charged its average pairwise degradation times (u-1)
	// co-runners. Not admissible — rejected for OA*; it is the strongly
	// goal-directed estimator HA* uses on large batches (Figs. 12-13
	// scale).
	HPerProcAvg
)

// String implements fmt.Stringer.
func (h HStrategy) String() string {
	switch h {
	case HNone:
		return "none"
	case HStrategy1:
		return "strategy1"
	case HStrategy2:
		return "strategy2"
	case HPerProc:
		return "perproc"
	case HPerProcAvg:
		return "perproc-avg"
	default:
		return fmt.Sprintf("HStrategy(%d)", int(h))
	}
}

// Options configures one search.
type Options struct {
	// H selects the h(v) strategy. The zero value is HNone.
	H HStrategy
	// KPerLevel, when positive, caps how many candidate nodes (in
	// ascending weight order) the search attempts per level: the HA*
	// trimming of §IV. Zero means unlimited (OA*).
	KPerLevel int
	// HWeight inflates the heuristic in the priority: f = g + HWeight·h
	// (weighted A*). Values above 1 make the search strongly
	// depth-directed, which is what lets HA* finish thousand-process
	// batches; they forfeit within-trimmed-graph optimality, so OA*
	// (KPerLevel == 0) rejects HWeight > 1. Zero means 1.
	HWeight float64
	// BeamWidth, when positive, caps how many elements the search
	// expands at each path depth (number of machines filled). It turns
	// HA* into a beam search with strictly bounded work
	// (BeamWidth × n/u expansions), the regime the thousand-process
	// experiments need. Zero means unbounded. Like HWeight > 1 it
	// forfeits optimality, so OA* rejects it.
	BeamWidth int
	// Condense enables the communication-aware process condensation of
	// §III-E: candidate nodes with identical condensation keys are
	// attempted once per expansion.
	Condense bool
	// ExactParallel extends the dismissal key with the per-parallel-job
	// running maxima, restoring provable optimality of Eq. 13 accounting
	// at the cost of a larger search space (DESIGN.md §3).
	ExactParallel bool
	// UseIncumbent primes the search with a greedy upper bound and
	// prunes children whose f exceeds it. Never affects optimality.
	UseIncumbent bool
	// MaxExpansions aborts the search after this many pops (0 = no
	// limit); the search then returns its best incumbent as a degraded
	// result (Stats.Aborted = abort.Expansions).
	MaxExpansions int64
	// TimeLimit aborts the search after this much wall-clock time
	// (0 = none); the search then returns its best incumbent as a
	// degraded result (Stats.Aborted = abort.Deadline). Unlike
	// MaxExpansions it also bounds searches whose per-expansion work is
	// huge (wide levels).
	TimeLimit time.Duration
	// Ctx, when non-nil, is polled once per pop: a cancelled or expired
	// context aborts the search promptly — mid-frontier, not only at the
	// next TimeLimit poll — and returns the best incumbent as a degraded
	// result (Stats.Aborted = abort.Cancel or abort.Deadline). nil means
	// no cancellation.
	Ctx context.Context
	// MemoryBudget, when positive, caps the search's estimated live byte
	// footprint: pooled elements at their preallocated capacities, the
	// dismissal key table's arenas, and the priority list. The estimate
	// is refreshed every few dozen pops; on breach the search returns its
	// best incumbent as a degraded result (Stats.Aborted = abort.Memory)
	// instead of growing the frontier until the process dies. Zero means
	// unbounded.
	MemoryBudget int64
	// Tracer, when non-nil, receives search events: Expand for every pop
	// and Solution once at the end. Tracers additionally implementing the
	// optional DismissTracer, ProgressTracer or StartTracer extensions
	// (trace.go) also receive dismissal, progress and solve-start events.
	// See WriterTracer for a text renderer and JSONLTracer for the
	// machine-readable JSONL stream. The zero-overhead default is nil.
	Tracer Tracer
	// Metrics, when non-nil, receives live solver telemetry: the
	// "astar.*" counters and gauges catalogued in DESIGN.md §6 (pops,
	// expansions, dismissals by reason, condensations, beam trims,
	// frontier size, key-table load, pops/sec). Handles are resolved once
	// per solve and the hot loop flushes deltas every few thousand pops,
	// so a nil registry leaves the allocation-free child path untouched
	// and a non-nil one adds only periodic atomic writes.
	Metrics *telemetry.Registry
	// Progress, when non-nil, receives rate-limited human-readable
	// progress lines for long searches: pops, pops/sec, frontier size,
	// path depth and a depth-extrapolated ETA. The solver polls it every
	// 256 pops; the reporter's Every field controls line frequency.
	Progress *telemetry.ProgressReporter
	// Workers parallelises child evaluation within each expansion (the
	// paper's §VII future-work direction). Values above 1 spread the
	// degradation-oracle queries of one expansion across goroutines;
	// the search order and result stay deterministic. Only the
	// table-free h strategies (HNone, HPerProc, HPerProcAvg) support
	// it; 0 and 1 mean serial. Ignored when Parallelism > 1 — whole
	// expansions are then the unit of parallel work.
	Workers int
	// Parallelism runs N independent expansion workers over a sharded
	// frontier (parsolve.go): per-shard heaps, work stealing, a shared
	// incumbent bound, and a memory-aware load balancer that parks
	// workers as the MemoryBudget footprint grows. 0 and 1 select the
	// exact legacy single-goroutine search. Values above 1 apply only
	// to configurations whose answer is provably order-independent —
	// best-first search with an admissible heuristic (HNone, HPerProc)
	// at HWeight <= 1, and the beam search with any thread-safe
	// heuristic (HNone, HPerProc, HPerProcAvg); everything else
	// silently runs sequentially. Stats.Parallelism records the worker
	// count actually used, so callers can observe the fallback.
	Parallelism int
}

// Stats reports the work a search performed. All counters are populated
// by every search mode (OA*, HA*, beam) unless noted; they reconcile by
// the admission invariant
//
//	Generated == Expanded + Dismissed + BeamTrimmed + InFrontier
//
// — every admitted sub-path is eventually expanded, superseded, trimmed
// by the beam, or still awaiting expansion when the solve returns (the
// invariant test in telemetry_test.go pins this across modes).
type Stats struct {
	// VisitedPaths counts popped (expanded) priority-list elements, the
	// paper's Table IV metric. It includes the root element, so it
	// exceeds Expanded by exactly one on a completed solve.
	VisitedPaths int64
	// Expanded counts admitted (non-root) elements that were popped and
	// processed, including the goal pop that ends an OA*/HA* solve.
	Expanded int64
	// Generated counts child sub-paths admitted into the priority list
	// (or, for the beam search, into a depth's survivor table). Children
	// dismissed before admission appear in DismissedWorse/Pruned instead.
	Generated int64
	// Dismissed counts admitted sub-paths later superseded by a cheaper
	// same-key sub-path: stale priority-list pops, and beam-depth
	// survivors replaced within their depth.
	Dismissed int64
	// DismissedWorse counts children dismissed *before* admission because
	// the best-g table already held a same-key sub-path at least as cheap
	// (the Theorem 1 dismissal, by far the most common child fate).
	DismissedWorse int64
	// Condensed counts candidate nodes skipped by condensation.
	Condensed int64
	// Pruned counts children discarded against the incumbent bound
	// (OA*/HA* with UseIncumbent only; zero otherwise).
	Pruned int64
	// BeamTrimmed counts admitted sub-paths dropped by the beam's
	// per-depth width cap (beam search only; zero otherwise).
	BeamTrimmed int64
	// InFrontier is the number of admitted sub-paths still awaiting
	// expansion when the solve returned: the final priority-list length,
	// or the beam's last frontier.
	InFrontier int64
	// MaxQueue is the high-water mark of the priority list (elements),
	// or of the beam frontier after trimming.
	MaxQueue int
	// Duration is the wall-clock solving time. PrepareDuration is the
	// one-off heuristic-table precomputation inside NewSolver, reported
	// by the solver's first Solve call only.
	Duration        time.Duration
	PrepareDuration time.Duration
	// ElemAllocated counts search elements newly allocated by the pools;
	// ElemReused counts elements served from a free list instead. Their
	// ratio is the headline of the pooled hot path: on large searches
	// reuse dominates by orders of magnitude.
	ElemAllocated int64
	ElemReused    int64
	// KeyTableEntries is the number of distinct dismissal keys recorded;
	// KeyTableLoad the open-addressing slot occupancy in [0,1] at the end
	// of the solve (the beam search reports its last depth).
	KeyTableEntries int
	KeyTableLoad    float64
	// Parallelism is the number of expansion workers the solve actually
	// ran (1 for the legacy sequential path, including configurations
	// where a requested Parallelism > 1 was ineligible and fell back).
	Parallelism int
	// Steals counts pops an expansion worker took from a frontier shard
	// it does not own (parallel solves only; zero otherwise).
	Steals int64
	// Speculative counts parallel expansions of elements whose f was
	// above the global frontier minimum at pop time — work a sequential
	// search would have deferred, admitted speculatively to keep workers
	// busy. Their children re-enter through the shared dismissal table,
	// so speculation never affects the answer.
	Speculative int64
	// Parked counts park transitions of the memory-aware load balancer:
	// workers throttled while the footprint estimate sat between the
	// soft threshold and the hard MemoryBudget (parallel solves only).
	Parked int64
	// Degraded reports that the search stopped before proving its answer
	// (deadline, cancellation, expansion cap or memory budget) and
	// returned the best incumbent it held instead: a feasible schedule,
	// not a proven-optimal one. Aborted carries the reason.
	Degraded bool
	Aborted  abort.Reason
}

// Result is a complete co-schedule found by the search.
type Result struct {
	// Groups is the partition of processes onto machines, in valid-path
	// order (ascending leaders).
	Groups [][]job.ProcID
	// Cost is the Eq. 13 objective of the schedule under the search's
	// cost model, in degradation units (a dimensionless slowdown sum).
	Cost float64
	// Stats describes the search effort. Searches aborted by
	// MaxExpansions, TimeLimit, MemoryBudget or a done Ctx still return a
	// Result — the best incumbent schedule, flagged Stats.Degraded with
	// the abort.Reason in Stats.Aborted — so a breached budget costs
	// certainty, not the answer.
	Stats Stats
}
