package astar

import (
	"math"
	"math/rand"
	"testing"

	"cosched/internal/abort"
	"cosched/internal/bruteforce"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
	"cosched/internal/workload"
)

const eps = 1e-9

func solveWith(t *testing.T, g *graph.Graph, opts Options) *Result {
	t.Helper()
	s, err := NewSolver(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Cost.ValidatePartition(res.Groups); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if got := g.Cost.PartitionCost(res.Groups); math.Abs(got-res.Cost) > eps {
		t.Fatalf("reported cost %v != recomputed %v", res.Cost, got)
	}
	return res
}

func syntheticGraph(t *testing.T, n, u int, seed int64, mode degradation.Mode) *graph.Graph {
	t.Helper()
	m, err := cache.MachineByCores(u)
	if err != nil {
		t.Fatal(err)
	}
	in, err := workload.SyntheticSerialInstance(n, &m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return graph.New(in.Cost(mode), in.Patterns)
}

func mixedGraph(t *testing.T, total, parJobs, procsPer, u int, seed int64, mode degradation.Mode) *graph.Graph {
	t.Helper()
	m, err := cache.MachineByCores(u)
	if err != nil {
		t.Fatal(err)
	}
	in, err := workload.SyntheticMixedInstance(total, parJobs, procsPer, &m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return graph.New(in.Cost(mode), in.Patterns)
}

func TestOAStarMatchesBruteForceSerial(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := syntheticGraph(t, 8, 2, seed, degradation.ModePC)
		bf, err := bruteforce.Solve(g.Cost)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []HStrategy{HNone, HStrategy1, HStrategy2, HPerProc} {
			res := solveWith(t, g, Options{H: h})
			if math.Abs(res.Cost-bf.Cost) > eps {
				t.Errorf("seed %d h=%v: OA* cost %v != brute force %v", seed, h, res.Cost, bf.Cost)
			}
		}
	}
}

func TestOAStarMatchesBruteForceQuadCore(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := syntheticGraph(t, 12, 4, seed, degradation.ModePC)
		bf, err := bruteforce.Solve(g.Cost)
		if err != nil {
			t.Fatal(err)
		}
		res := solveWith(t, g, Options{H: HStrategy2})
		if math.Abs(res.Cost-bf.Cost) > eps {
			t.Errorf("seed %d: OA* %v != brute force %v", seed, res.Cost, bf.Cost)
		}
	}
}

func TestOAStarMatchesBruteForceMixed(t *testing.T) {
	// Mixed serial+PC batches: Eq. 13 accounting with per-job maxima and
	// communication terms.
	for seed := int64(1); seed <= 6; seed++ {
		g := mixedGraph(t, 12, 2, 3, 4, seed, degradation.ModePC)
		bf, err := bruteforce.Solve(g.Cost)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{
			{H: HPerProc},
			{H: HPerProc, Condense: true},
			{H: HPerProc, ExactParallel: true},
			{H: HStrategy2},
			{H: HNone},
		} {
			res := solveWith(t, g, opts)
			if math.Abs(res.Cost-bf.Cost) > eps {
				t.Errorf("seed %d opts %+v: OA* %v != brute force %v", seed, opts, res.Cost, bf.Cost)
			}
		}
	}
}

func TestOAStarMatchesBruteForcePEJobs(t *testing.T) {
	// PE jobs through the SDC oracle (no comm): per-job max accounting.
	m := cache.QuadCore
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := workload.NewSpec()
		spec.AddPE(workload.SyntheticProgram("pe1", rng), 4)
		spec.AddPE(workload.SyntheticProgram("pe2", rng), 3)
		for i := 0; i < 5; i++ {
			spec.AddSerial(workload.SyntheticProgram("s", rng))
		}
		in, err := spec.Build(&m)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.New(in.Cost(degradation.ModePE), in.Patterns)
		bf, err := bruteforce.Solve(g.Cost)
		if err != nil {
			t.Fatal(err)
		}
		res := solveWith(t, g, Options{H: HPerProc})
		if math.Abs(res.Cost-bf.Cost) > eps {
			t.Errorf("seed %d: OA*-PE %v != brute force %v", seed, res.Cost, bf.Cost)
		}
	}
}

func TestUseIncumbentPreservesOptimality(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := syntheticGraph(t, 12, 4, seed, degradation.ModePC)
		plain := solveWith(t, g, Options{H: HStrategy2})
		pruned := solveWith(t, g, Options{H: HStrategy2, UseIncumbent: true})
		if math.Abs(plain.Cost-pruned.Cost) > eps {
			t.Errorf("seed %d: incumbent pruning changed cost %v -> %v", seed, plain.Cost, pruned.Cost)
		}
	}
}

func TestStrategy2VisitsFewerPathsThanStrategy1(t *testing.T) {
	// Table IV's qualitative claim. Aggregated over seeds to tolerate
	// individual ties.
	var v1, v2 int64
	for seed := int64(1); seed <= 5; seed++ {
		g := syntheticGraph(t, 12, 4, seed, degradation.ModePC)
		v1 += solveWith(t, g, Options{H: HStrategy1}).Stats.VisitedPaths
		v2 += solveWith(t, g, Options{H: HStrategy2}).Stats.VisitedPaths
	}
	if float64(v2) > 1.05*float64(v1) {
		t.Errorf("Strategy 2 visited %d paths; Strategy 1 %d — expected 2 <= 1", v2, v1)
	}
}

func TestOSVPVisitsMorePathsThanOAStar(t *testing.T) {
	var vn, v2 int64
	for seed := int64(1); seed <= 5; seed++ {
		g := syntheticGraph(t, 12, 4, seed, degradation.ModePC)
		vn += solveWith(t, g, Options{H: HNone}).Stats.VisitedPaths
		v2 += solveWith(t, g, Options{H: HStrategy2}).Stats.VisitedPaths
	}
	if vn <= v2 {
		t.Errorf("h=none visited %d paths <= strategy2's %d", vn, v2)
	}
}

func TestHAStarNearOptimal(t *testing.T) {
	// HA* with k = n/u must produce a valid schedule within a small
	// factor of the optimum (§IV/§V-E: within ~10% in the paper).
	var worst float64
	for seed := int64(1); seed <= 8; seed++ {
		g := syntheticGraph(t, 12, 4, seed, degradation.ModePC)
		opt := solveWith(t, g, Options{H: HStrategy2})
		ha := solveWith(t, g, Options{H: HPerProc, KPerLevel: 3})
		if ha.Cost < opt.Cost-eps {
			t.Fatalf("seed %d: HA* cost %v below optimum %v", seed, ha.Cost, opt.Cost)
		}
		if ratio := ha.Cost / opt.Cost; ratio > worst {
			worst = ratio
		}
	}
	if worst > 1.35 {
		t.Errorf("HA* worst-case ratio %v; want near-optimal (< 1.35)", worst)
	}
}

func TestHAStarKPerLevelOneIsGreedyLike(t *testing.T) {
	g := syntheticGraph(t, 12, 4, 3, degradation.ModePC)
	res := solveWith(t, g, Options{H: HPerProc, KPerLevel: 1})
	if len(res.Groups) != 3 {
		t.Errorf("HA*(k=1) groups = %d; want 3", len(res.Groups))
	}
}

func TestCondensationReducesExpansionsOnPEJobs(t *testing.T) {
	// Processes of a PE job are interchangeable, so condensation must
	// collapse their permutations.
	g := mixedGraph(t, 12, 1, 8, 4, 7, degradation.ModePC)
	plain := solveWith(t, g, Options{H: HPerProc})
	cond := solveWith(t, g, Options{H: HPerProc, Condense: true})
	if math.Abs(plain.Cost-cond.Cost) > eps {
		t.Fatalf("condensation changed the optimum: %v vs %v", plain.Cost, cond.Cost)
	}
	if cond.Stats.Generated >= plain.Stats.Generated {
		t.Errorf("condensation did not reduce generated elements: %d vs %d",
			cond.Stats.Generated, plain.Stats.Generated)
	}
}

func TestCondensationFiresOnPCJobs(t *testing.T) {
	// PC ranks stay raw in the class enumeration, so the node-level
	// condensation dedup (§III-E) must fire on them.
	g := mixedGraph(t, 12, 1, 8, 4, 7, degradation.ModePC)
	cond := solveWith(t, g, Options{H: HPerProc, Condense: true})
	if cond.Stats.Condensed == 0 {
		t.Error("condensation never fired on an 8-process PC job")
	}
}

func TestLazyKSmallestMatchesSort(t *testing.T) {
	// The lazy enumerator must emit exactly the k cheapest nodes, in
	// ascending weight order, for a pairwise oracle.
	m := cache.QuadCore
	in, err := workload.SyntheticPairwiseInstance(16, &m, 21)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(in.Cost(degradation.ModePC), nil)
	s, err := NewSolver(g, Options{H: HPerProc, KPerLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.pairW == nil {
		t.Fatal("pairwise fast path not detected")
	}
	avail := make([]job.ProcID, 0, 15)
	for p := 2; p <= 16; p++ {
		avail = append(avail, job.ProcID(p))
	}
	// Reference: enumerate and sort.
	type cand struct {
		w float64
	}
	var ws []float64
	g.ForEachNode(1, avail, func(node []job.ProcID) bool {
		ws = append(ws, g.Cost.NodeWeight(node))
		return true
	})
	sortFloats(ws)
	var got []float64
	s.lazyKSmallest(1, avail, func(node []job.ProcID) bool {
		got = append(got, g.Cost.NodeWeight(node))
		return len(got) < 10
	})
	if len(got) != 10 {
		t.Fatalf("lazy enumerator emitted %d nodes; want 10", len(got))
	}
	for i := range got {
		if math.Abs(got[i]-ws[i]) > eps {
			t.Fatalf("lazy emission %d = %v; want %v (full order %v...)", i, got[i], ws[i], ws[:10])
		}
		if i > 0 && got[i] < got[i-1]-eps {
			t.Fatalf("lazy emissions not ascending: %v", got)
		}
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestHAStarLargeScalePairwise(t *testing.T) {
	// The large-scale configuration of Figs. 12-13 in miniature: the
	// lazy enumerator must let HA* handle a batch whose levels are far
	// beyond full enumeration... here just big enough to be meaningful.
	m := cache.QuadCore
	in, err := workload.SyntheticPairwiseInstance(96, &m, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(in.Cost(degradation.ModePC), nil)
	res := solveWith(t, g, Options{H: HPerProcAvg, KPerLevel: 24, UseIncumbent: true})
	if len(res.Groups) != 24 {
		t.Fatalf("groups = %d; want 24", len(res.Groups))
	}
}

func TestHPerProcAvgRejectedForOAStar(t *testing.T) {
	g := syntheticGraph(t, 8, 2, 1, degradation.ModePC)
	if _, err := NewSolver(g, Options{H: HPerProcAvg}); err == nil {
		t.Error("OA* accepted the inadmissible HPerProcAvg strategy")
	}
}

func TestHPerProcAvgQualityOnSmallInstance(t *testing.T) {
	// The inadmissible estimator must still land near the optimum when
	// the trimmed graph contains it.
	var worst float64
	for seed := int64(1); seed <= 6; seed++ {
		g := syntheticGraph(t, 12, 4, seed, degradation.ModePC)
		opt := solveWith(t, g, Options{H: HStrategy2})
		ha := solveWith(t, g, Options{H: HPerProcAvg, KPerLevel: 3})
		if ha.Cost < opt.Cost-eps {
			t.Fatalf("seed %d: HA*(avg) cost %v below optimum %v", seed, ha.Cost, opt.Cost)
		}
		if r := ha.Cost / opt.Cost; r > worst {
			worst = r
		}
	}
	if worst > 1.5 {
		t.Errorf("HA*(avg) worst-case ratio %v; want < 1.5", worst)
	}
}

func TestSolverRejectsBadConfigs(t *testing.T) {
	// Indivisible batch sizes are impossible by construction (builder
	// pads), so hand-roll a bad one.
	bd := job.NewBuilder()
	bd.AddSerial("a")
	bd.AddSerial("b")
	b, err := bd.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	mtx := [][]float64{{0, 0}, {0, 0}}
	o, err := degradation.NewPairwiseOracle(b, mtx, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := degradation.NewCost(b, o, degradation.ModePC)
	b.Cores = 3 // corrupt after construction
	if _, err := NewSolver(graph.New(c, nil), Options{}); err == nil {
		t.Error("solver accepted n not divisible by u")
	}
}

func TestMaxExpansionsAborts(t *testing.T) {
	g := syntheticGraph(t, 12, 4, 1, degradation.ModePC)
	s, err := NewSolver(g, Options{H: HNone, MaxExpansions: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("expansion-limited search errored instead of degrading: %v", err)
	}
	if !res.Stats.Degraded || res.Stats.Aborted != abort.Expansions {
		t.Errorf("expansion-limited search not flagged degraded/expansions: %+v", res.Stats)
	}
	if res.Stats.VisitedPaths != 3 {
		t.Errorf("search popped %d elements, cap was 3", res.Stats.VisitedPaths)
	}
	if err := g.Cost.ValidatePartition(res.Groups); err != nil {
		t.Errorf("degraded schedule invalid: %v", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	g := syntheticGraph(t, 8, 2, 2, degradation.ModePC)
	res := solveWith(t, g, Options{H: HStrategy2})
	st := res.Stats
	if st.VisitedPaths <= 0 || st.Generated <= 0 || st.MaxQueue <= 0 || st.Duration <= 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestHStrategyString(t *testing.T) {
	for h, want := range map[HStrategy]string{
		HNone: "none", HStrategy1: "strategy1", HStrategy2: "strategy2", HPerProc: "perproc",
	} {
		if h.String() != want {
			t.Errorf("%d.String() = %q; want %q", h, h.String(), want)
		}
	}
	if HStrategy(9).String() == "" {
		t.Error("unknown strategy string empty")
	}
}

func TestDismissStrategyKeepsShortestSameSetSubpath(t *testing.T) {
	// The §III-C1 example: with node weights 11, 9, 9, 7, 4 on nodes
	// <1,5>,<1,6>,<2,3>,<4,5>,<4,6>, plain A* dismisses the sub-path
	// <1,5>,<2,3> (distance 20) in favour of <1,6>,<2,3> (18) and ends
	// at 25, while the optimal valid path <1,5>,<2,3>,<4,6> costs 24.
	// The set-keyed dismissal must recover 24.
	bd := job.NewBuilder()
	for i := 0; i < 6; i++ {
		bd.AddSerial("s")
	}
	b, err := bd.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	// Weights are on *nodes*; realise them through a pairwise matrix
	// where w(<i,j>) = m[i][j] + m[j][i]. Use m[i][j] = half the target
	// node weight for the five nodes of interest, and large values
	// elsewhere so the optimum uses only the paper's nodes.
	big := 100.0
	target := map[[2]int]float64{
		{1, 5}: 11, {1, 6}: 9, {2, 3}: 9, {4, 5}: 7, {4, 6}: 4,
	}
	n := b.NumProcs()
	mtx := make([][]float64, n)
	for i := range mtx {
		mtx[i] = make([]float64, n)
		for j := range mtx[i] {
			if i != j {
				mtx[i][j] = big
			}
		}
	}
	for k, w := range target {
		i, j := k[0]-1, k[1]-1
		mtx[i][j], mtx[j][i] = w/2, w/2
	}
	o, err := degradation.NewPairwiseOracle(b, mtx, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(degradation.NewCost(b, o, degradation.ModePC), nil)
	res := solveWith(t, g, Options{H: HNone})
	if math.Abs(res.Cost-24) > eps {
		t.Errorf("shortest valid path cost = %v; want 24 (the paper's example)", res.Cost)
	}
}
