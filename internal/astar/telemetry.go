package astar

import (
	"fmt"
	"io"
	"time"

	"cosched/internal/abort"
	"cosched/internal/job"
	"cosched/internal/telemetry"
)

// This file is the solver side of the telemetry layer (see
// internal/telemetry and DESIGN.md §6): the JSONL event tracer, the
// registry flush, and the progress/ETA reports. Nothing here runs per
// generated child — per-child accounting stays in the stack-local Stats
// struct and is folded into the registry every flushEvery pops, which is
// what preserves the 0-alloc dismissed-child guarantee of
// bench_hotpath_test.go when telemetry is enabled.

// flushEvery is the pop interval between registry flushes (and progress
// polls, at a finer 256-pop cadence). Chosen so that even million-pop
// searches pay a few hundred atomic writes total.
const flushEvery = 4096

// EventTracer renders the full search event stream into a
// telemetry.EventSink (telemetry.Event, one per event): solve_start,
// sampled expansions, dismissals with reason, progress spans, the final
// stats accounting, and the solution. It implements Tracer plus all four
// optional extensions. The sink decides durability: a
// telemetry.EventWriter gives the JSONL trace file, a FlightRecorder the
// in-memory last-N window, MultiSink both.
//
// JSONLTracer is the historical name for the EventWriter-backed use; it
// remains as an alias.
type EventTracer struct {
	sink telemetry.EventSink
	// Every samples expand events: only each Every-th expansion is
	// emitted (0 or 1 means all). Dismiss events follow DismissEvery the
	// same way. solve_start, progress, stats and solution events are
	// always emitted.
	Every        int64
	DismissEvery int64
	// SolveID tags every event of this solve
	// (telemetry.Event.SolveID); when zero the tracer assigns itself one
	// from telemetry.NextSolveID at SolveStart, so multi-solve traces
	// stay separable. Callers coordinating several producers (cosched
	// threading one id through search and IP) set it explicitly.
	SolveID uint64
	// HName names the heuristic strategy for the solve_start event
	// (Options.H.String(); empty omits the field).
	HName string
	// Epoch is the monotonic origin for the t_ms stamps. When zero the
	// tracer starts its own clock at SolveStart; cosched passes its
	// SpanRecorder epoch so search events and phase spans share one
	// timeline.
	Epoch time.Time
	u     int
	// abortReason remembers the abort event's reason so the solution
	// event repeats it (the tracetool abort-reason invariant ties them).
	abortReason string
	// parallelism is the expansion-worker count recorded by
	// SetParallelism for the next solve_start event; consumed (emitted
	// and cleared) there so a reused tracer never mislabels a later
	// sequential solve.
	parallelism int
}

// JSONLTracer is the original name of EventTracer, kept as an alias for
// the PR-2 API surface.
type JSONLTracer = EventTracer

// NewJSONLTracer returns a tracer writing JSONL events to w. The stream
// is buffered; Solution flushes it, and Flush forces it at any time.
func NewJSONLTracer(w io.Writer) *EventTracer {
	return NewEventTracer(telemetry.NewEventWriter(w))
}

// NewEventTracer returns a tracer emitting into sink.
func NewEventTracer(sink telemetry.EventSink) *EventTracer {
	return &EventTracer{sink: sink}
}

// stamp fills the cross-cutting fields every event carries: the shared
// monotonic clock and the solve tag. It runs on the dismissal hot path,
// so it must stay allocation-free (time.Since and two field writes).
func (t *EventTracer) stamp(ev *telemetry.Event) {
	if !t.Epoch.IsZero() {
		ev.TMS = float64(time.Since(t.Epoch)) / float64(time.Millisecond)
	}
	ev.SolveID = t.SolveID
}

// SolveStart implements StartTracer.
func (t *EventTracer) SolveStart(n, u int, method string) {
	t.u = u
	t.abortReason = "" // a reused tracer must not leak a prior solve's abort
	if t.SolveID == 0 {
		t.SolveID = telemetry.NextSolveID()
	}
	if t.Epoch.IsZero() {
		t.Epoch = time.Now()
	}
	ev := telemetry.Event{
		Ev: "solve_start", N: n, U: u, Method: method, HName: t.HName,
	}
	if t.parallelism > 1 {
		ev.Parallelism = t.parallelism
	}
	t.parallelism = 0
	if t.Every > 1 {
		ev.Sample = t.Every
	}
	if t.DismissEvery > 1 {
		ev.DismissSample = t.DismissEvery
	}
	t.stamp(&ev)
	t.sink.Emit(ev) //nolint:errcheck
}

// SetParallelism implements ParallelismTracer: the next solve_start
// event will carry the worker count in its parallelism field.
func (t *EventTracer) SetParallelism(p int) { t.parallelism = p }

// Expand implements Tracer.
func (t *EventTracer) Expand(popIndex int64, depth int, g, h float64, leader job.ProcID) {
	if t.Every > 1 && popIndex%t.Every != 0 {
		return
	}
	ev := telemetry.Event{
		Ev: "expand", Pop: popIndex, Depth: depth, Q: depth * t.u,
		G: g, H: h, Leader: int(leader),
	}
	t.stamp(&ev)
	t.sink.Emit(ev) //nolint:errcheck
}

// Dismiss implements DismissTracer.
func (t *EventTracer) Dismiss(popIndex int64, q int, g float64, reason DismissReason) {
	if t.DismissEvery > 1 && popIndex%t.DismissEvery != 0 {
		return
	}
	ev := telemetry.Event{Ev: "dismiss", Pop: popIndex, Q: q, G: g, Reason: reason.String()}
	t.stamp(&ev)
	t.sink.Emit(ev) //nolint:errcheck
}

// Progress implements ProgressTracer.
func (t *EventTracer) Progress(popIndex int64, frontier int, popsPerSec, etaSec, elapsedSec float64) {
	ev := telemetry.Event{
		Ev: "progress", Pop: popIndex, Frontier: frontier,
		PopsPerSec: popsPerSec, ElapsedSec: elapsedSec,
	}
	if etaSec >= 0 {
		ev.ETASec = etaSec
	}
	t.stamp(&ev)
	t.sink.Emit(ev) //nolint:errcheck
}

// SolveStats implements StatsTracer: the final search accounting as one
// "stats" event, which makes the trace self-verifying (coschedtrace
// check reconciles the event stream against these counters).
func (t *EventTracer) SolveStats(st *Stats) {
	ev := telemetry.Event{
		Ev:             "stats",
		Visited:        st.VisitedPaths,
		Expanded:       st.Expanded,
		Generated:      st.Generated,
		DismissedStale: st.Dismissed,
		DismissedWorse: st.DismissedWorse,
		Pruned:         st.Pruned,
		BeamTrimmed:    st.BeamTrimmed,
		InFrontier:     st.InFrontier,
		Condensed:      st.Condensed,
	}
	t.stamp(&ev)
	t.sink.Emit(ev) //nolint:errcheck
}

// Abort implements AbortTracer: one "abort" event with the pop index at
// which the abort was detected and the stable reason name. The
// subsequent solution event repeats the reason, so a degraded trace is
// self-describing and coschedtrace check can tie the two together.
func (t *EventTracer) Abort(popIndex int64, reason string) {
	t.abortReason = reason
	ev := telemetry.Event{Ev: "abort", Pop: popIndex, Reason: reason}
	t.stamp(&ev)
	t.sink.Emit(ev) //nolint:errcheck
}

// Solution implements Tracer and flushes the sink. On degraded solves
// the event carries the abort reason recorded by Abort.
func (t *EventTracer) Solution(cost float64, groups [][]job.ProcID) {
	ints := make([][]int, len(groups))
	for i, g := range groups {
		ints[i] = make([]int, len(g))
		for j, p := range g {
			ints[i][j] = int(p)
		}
	}
	ev := telemetry.Event{Ev: "solution", Cost: cost, Groups: ints, Reason: t.abortReason}
	t.stamp(&ev)
	t.sink.Emit(ev)             //nolint:errcheck
	telemetry.FlushSink(t.sink) //nolint:errcheck
}

// Flush forces buffered events to the underlying sink (useful when a
// solve aborts before its solution event).
func (t *EventTracer) Flush() error { return telemetry.FlushSink(t.sink) }

// solverMetrics caches the registry handles of the astar.* metric
// family, resolved once per solve. All methods are nil-receiver-safe, so
// the solver calls them unconditionally; with a nil Options.Metrics the
// whole layer reduces to a handful of predictable nil checks.
type solverMetrics struct {
	reg                                 *telemetry.Registry // for the rare, on-demand astar.aborts.* handles
	solves, pops, expanded, generated   *telemetry.Counter
	dismissedWorse, dismissedStale      *telemetry.Counter
	pruned, condensed, beamTrimmed      *telemetry.Counter
	elemAllocated, elemReused           *telemetry.Counter
	prepareNS, solveNS                  *telemetry.Counter
	frontier, heapMax, ktEntries, depth *telemetry.Gauge
	ktLoad, popsPerSec                  *telemetry.FloatGauge
	last                                Stats // state at the previous flush, for delta accumulation
}

// newSolverMetrics resolves the handle set, or returns nil when
// telemetry is disabled.
func newSolverMetrics(r *telemetry.Registry) *solverMetrics {
	if r == nil {
		return nil
	}
	return &solverMetrics{
		reg:            r,
		solves:         r.Counter("astar.solves"),
		pops:           r.Counter("astar.pops"),
		expanded:       r.Counter("astar.expanded"),
		generated:      r.Counter("astar.generated"),
		dismissedWorse: r.Counter("astar.dismissed.worse"),
		dismissedStale: r.Counter("astar.dismissed.stale"),
		pruned:         r.Counter("astar.dismissed.pruned"),
		condensed:      r.Counter("astar.condensed"),
		beamTrimmed:    r.Counter("astar.beam.trimmed"),
		elemAllocated:  r.Counter("astar.pool.allocated"),
		elemReused:     r.Counter("astar.pool.reused"),
		prepareNS:      r.Counter("astar.prepare_ns"),
		solveNS:        r.Counter("astar.solve_ns"),
		frontier:       r.Gauge("astar.frontier"),
		heapMax:        r.Gauge("astar.frontier.max"),
		ktEntries:      r.Gauge("astar.keytable.entries"),
		depth:          r.Gauge("astar.depth"),
		ktLoad:         r.FloatGauge("astar.keytable.load"),
		popsPerSec:     r.FloatGauge("astar.pops_per_sec"),
	}
}

// begin records the solve start: the solves counter, the one-off
// preparation timing (charged to the solver's first solve only) and the
// pool baseline (pool counters are cumulative per solver, so finish must
// publish this solve's delta only).
func (m *solverMetrics) begin(s *Solver) {
	if m == nil {
		return
	}
	m.solves.Add(1)
	if s.prepDur > 0 {
		m.prepareNS.Add(s.prepDur.Nanoseconds())
	}
	for _, p := range s.allPools {
		m.last.ElemAllocated += p.gets - p.reuse
		m.last.ElemReused += p.reuse
	}
}

// flush folds the counter deltas since the previous flush into the
// registry and refreshes the gauges. frontierLen is the current
// priority-list (or beam frontier) length; depth the deepest path depth
// reached, in machines.
func (m *solverMetrics) flush(st *Stats, frontierLen, depth int, t *gTable, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.pops.Add(st.VisitedPaths - m.last.VisitedPaths)
	m.expanded.Add(st.Expanded - m.last.Expanded)
	m.generated.Add(st.Generated - m.last.Generated)
	m.dismissedWorse.Add(st.DismissedWorse - m.last.DismissedWorse)
	m.dismissedStale.Add(st.Dismissed - m.last.Dismissed)
	m.pruned.Add(st.Pruned - m.last.Pruned)
	m.condensed.Add(st.Condensed - m.last.Condensed)
	m.beamTrimmed.Add(st.BeamTrimmed - m.last.BeamTrimmed)
	// Preserve the pool baseline: those fields are only populated at the
	// end of the solve (fillAllocStats) and belong to finish.
	ea, er := m.last.ElemAllocated, m.last.ElemReused
	m.last = *st
	m.last.ElemAllocated, m.last.ElemReused = ea, er
	m.frontier.Set(int64(frontierLen))
	m.heapMax.Set(int64(st.MaxQueue))
	m.depth.Set(int64(depth))
	if t != nil {
		m.ktEntries.Set(int64(t.count))
		m.ktLoad.Set(t.load())
	}
	if s := elapsed.Seconds(); s > 0 {
		m.popsPerSec.Set(float64(st.VisitedPaths) / s)
	}
}

// finish adds the end-of-solve aggregates (pool behaviour, solve time)
// after fillAllocStats has populated them.
func (m *solverMetrics) finish(st *Stats) {
	if m == nil {
		return
	}
	m.elemAllocated.Add(st.ElemAllocated - m.last.ElemAllocated)
	m.elemReused.Add(st.ElemReused - m.last.ElemReused)
	m.last.ElemAllocated = st.ElemAllocated
	m.last.ElemReused = st.ElemReused
	m.solveNS.Add(st.Duration.Nanoseconds())
}

// abort bumps the astar.aborts.<reason> counter. Aborts happen at most
// once per solve and off the hot path, so the on-demand handle lookup
// (and its key allocation) is fine here.
func (m *solverMetrics) abort(r abort.Reason) {
	if m == nil {
		return
	}
	m.reg.Counter("astar.aborts." + r.String()).Add(1)
}

// searchMethod names the active search mode for the solve_start event.
func (s *Solver) searchMethod() string {
	switch {
	case s.opts.BeamWidth > 0:
		return "beam"
	case s.opts.KPerLevel > 0:
		return "HA*"
	default:
		return "OA*"
	}
}

// progressReporter picks the active reporter for this solve:
// Options.Progress when set, a default-cadence internal one when only the
// tracer wants progress events, nil when nobody does.
func (s *Solver) progressReporter(hooks *tracerHooks) *telemetry.ProgressReporter {
	if s.opts.Progress != nil {
		return s.opts.Progress
	}
	if hooks.progress != nil {
		return &telemetry.ProgressReporter{}
	}
	return nil
}

// maybeProgress emits a progress report (to the reporter's writer and,
// when the tracer implements ProgressTracer, into the trace) if one is
// due. qMax is the deepest scheduled-process count reached; the ETA
// extrapolates elapsed time linearly over remaining depth, a deliberately
// coarse estimate that is primarily useful for beam/HA* searches whose
// work per depth is bounded.
func (s *Solver) maybeProgress(p *telemetry.ProgressReporter, hooks *tracerHooks, st *Stats, frontierLen, qMax int, start time.Time) {
	if p == nil {
		return
	}
	now := time.Now()
	if !p.Due(now) {
		return
	}
	elapsed := now.Sub(start)
	rate := float64(st.VisitedPaths) / elapsed.Seconds()
	eta := -1.0
	if qMax > 0 && qMax < s.n {
		eta = elapsed.Seconds() * float64(s.n-qMax) / float64(qMax)
	}
	if p.W != nil {
		line := fmt.Sprintf("astar: pop %d depth %d/%d frontier %d %.0f pops/s elapsed %s",
			st.VisitedPaths, qMax/s.u, s.n/s.u, frontierLen, rate, elapsed.Round(time.Second))
		if eta >= 0 {
			line += fmt.Sprintf(" eta ~%s", (time.Duration(eta * float64(time.Second))).Round(time.Second))
		}
		fmt.Fprintln(p.W, line) //nolint:errcheck
	}
	if hooks.progress != nil {
		hooks.progress.Progress(st.VisitedPaths, frontierLen, rate, eta, elapsed.Seconds())
	}
}
