// Package astar implements the paper's primary contribution: the Optimal
// A*-search (OA*) and Heuristic A*-search (HA*) algorithms over the
// co-scheduling graph (§III, §IV).
//
// The search extends textbook A* in the two ways §III-C describes:
//
//  1. Valid paths. The priority list holds *process sets* (sub-paths keyed
//     by the set of processes they contain), and a sub-path is dismissed
//     only when a recorded sub-path over exactly the same process set has
//     a shorter distance (Theorem 1). Plain per-node dismissal would lose
//     optimal valid paths.
//  2. Parallel-aware distances. The distance of a sub-path follows Eq. 13:
//     serial degradations add up, while each parallel job contributes the
//     running maximum over its scheduled processes.
//
// HA* is OA* with each level's candidate nodes capped to the first
// MER = n/u valid nodes in ascending weight order (§IV).
//
// # File map
//
// The solver is split by concern: solver.go holds the priority-list
// search (OA*/HA*) and the element admission logic; beam.go the layered
// beam search large batches use; expand.go candidate enumeration and
// condensation; heuristics.go the h(v) strategies of §III-D; keytable.go
// the word-packed dismissal table; pool.go the element free lists behind
// the allocation-free hot path; parallel.go the intra-expansion worker
// pool; trace.go the Tracer interfaces; telemetry.go the metrics/JSONL/
// progress layer (DESIGN.md §6); options.go the Options/Stats/Result
// surface.
package astar
