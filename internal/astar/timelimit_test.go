package astar

import (
	"testing"
	"time"

	"cosched/internal/degradation"
)

func TestTimeLimitAborts(t *testing.T) {
	g := syntheticGraph(t, 16, 4, 1, degradation.ModePC)
	s, err := NewSolver(g, Options{H: HNone, TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err == nil {
		t.Error("time-limited search did not abort")
	}
	s2, err := NewSolver(g, Options{H: HPerProc, UseIncumbent: true, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Solve(); err != nil {
		t.Errorf("generous time limit failed: %v", err)
	}
}
